package lakeharbor

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md. Run everything with:
//
//	go test -bench=. -benchmem .
//
// BenchmarkFig7* regenerates Figure 7 (TPC-H Q5' execution time vs
// selectivity for the scan/hash-join baseline, ReDe without SMPE, and ReDe
// with SMPE, sharing one simulated cluster and cost model). The reported
// ns/op of the three families, compared at equal sel= values, are the three
// curves of the figure. cmd/redebench prints the same data as one table.
//
// BenchmarkFig9* regenerates Figure 9 (record accesses of the claims
// queries on the normalized warehouse vs ReDe over raw nested claims); the
// "accesses/op" metric is the figure's y-axis before normalization.
//
// BenchmarkAblation* quantifies individual design choices: SMPE pool size,
// inline referencers, broadcast vs routed index probes.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/claims"
	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/planner"
	"lakeharbor/internal/sim"
	"lakeharbor/internal/tpch"
)

// ---- Figure 7 ----

const (
	fig7SF     = 0.2
	fig7Nodes  = 4
	fig7Region = "ASIA"
)

var fig7Sels = []float64{0.0001, 0.001, 0.01, 0.1, 1.0}

var fig7State struct {
	once    sync.Once
	cluster *dfs.Cluster
	ds      *tpch.Dataset
	eng     *baseline.Engine
	err     error
}

func fig7Setup(b *testing.B) (*dfs.Cluster, *tpch.Dataset, *baseline.Engine) {
	b.Helper()
	fig7State.once.Do(func() {
		ctx := context.Background()
		cluster := dfs.NewCluster(dfs.Config{Nodes: fig7Nodes, Cost: sim.HDDProfile()})
		ds := tpch.Generate(tpch.Config{SF: fig7SF, Seed: 1})
		if err := tpch.Load(ctx, cluster, ds, 0); err != nil {
			fig7State.err = err
			return
		}
		if err := tpch.BuildStructures(ctx, cluster); err != nil {
			fig7State.err = err
			return
		}
		fig7State.cluster = cluster
		fig7State.ds = ds
		fig7State.eng = baseline.New(cluster, 16)
	})
	if fig7State.err != nil {
		b.Fatal(fig7State.err)
	}
	return fig7State.cluster, fig7State.ds, fig7State.eng
}

func fig7Range(sel float64) (int, int) {
	lo, hi := tpch.DateRange(sel)
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi
}

// BenchmarkFig7Impala is the baseline curve: full scans + grace hash joins
// with static per-node parallelism.
func BenchmarkFig7Impala(b *testing.B) {
	cluster, ds, eng := fig7Setup(b)
	ctx := context.Background()
	for _, sel := range fig7Sels {
		b.Run(fmt.Sprintf("sel=%g", sel), func(b *testing.B) {
			lo, hi := fig7Range(sel)
			want := ds.OracleQ5(fig7Region, lo, hi)
			for i := 0; i < b.N; i++ {
				got, err := tpch.RunQ5Baseline(ctx, eng, cluster, fig7Region, lo, hi)
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("rows = %d, want %d", got, want)
				}
			}
			b.ReportMetric(float64(want), "rows")
		})
	}
}

// BenchmarkFig7ReDeNoSMPE is the "ReDe (w/o SMPE)" curve: index-based plans
// with only the cluster's partitioned parallelism.
func BenchmarkFig7ReDeNoSMPE(b *testing.B) {
	cluster, ds, _ := fig7Setup(b)
	ctx := context.Background()
	for _, sel := range fig7Sels {
		b.Run(fmt.Sprintf("sel=%g", sel), func(b *testing.B) {
			lo, hi := fig7Range(sel)
			want := ds.OracleQ5(fig7Region, lo, hi)
			job, err := tpch.Q5Job(ctx, cluster, fig7Region, lo, hi)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.ExecutePlain(ctx, job, cluster, cluster, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Count != want {
					b.Fatalf("rows = %d, want %d", res.Count, want)
				}
			}
			b.ReportMetric(float64(want), "rows")
		})
	}
}

// BenchmarkFig7ReDeSMPE is the "ReDe (w/ SMPE)" curve: the same plans
// executed with scalable massively parallel execution.
func BenchmarkFig7ReDeSMPE(b *testing.B) {
	cluster, ds, _ := fig7Setup(b)
	ctx := context.Background()
	for _, sel := range fig7Sels {
		b.Run(fmt.Sprintf("sel=%g", sel), func(b *testing.B) {
			lo, hi := fig7Range(sel)
			want := ds.OracleQ5(fig7Region, lo, hi)
			job, err := tpch.Q5Job(ctx, cluster, fig7Region, lo, hi)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Count != want {
					b.Fatalf("rows = %d, want %d", res.Count, want)
				}
			}
			b.ReportMetric(float64(want), "rows")
		})
	}
}

// ---- Figure 9 ----

const fig9Claims = 5000

var fig9State struct {
	once   sync.Once
	lakeC  *dfs.Cluster
	whC    *dfs.Cluster
	corpus *claims.Corpus
	err    error
}

func fig9Setup(b *testing.B) (*dfs.Cluster, *dfs.Cluster, *claims.Corpus) {
	b.Helper()
	fig9State.once.Do(func() {
		ctx := context.Background()
		corpus := claims.Generate(claims.Config{Claims: fig9Claims, Seed: 2024})
		lakeC := dfs.NewCluster(dfs.Config{Nodes: fig7Nodes})
		if err := claims.LoadLake(ctx, lakeC, corpus, 0); err != nil {
			fig9State.err = err
			return
		}
		whC := dfs.NewCluster(dfs.Config{Nodes: fig7Nodes})
		if err := claims.LoadWarehouse(ctx, whC, corpus, 0); err != nil {
			fig9State.err = err
			return
		}
		fig9State.lakeC, fig9State.whC, fig9State.corpus = lakeC, whC, corpus
	})
	if fig9State.err != nil {
		b.Fatal(fig9State.err)
	}
	return fig9State.lakeC, fig9State.whC, fig9State.corpus
}

// BenchmarkFig9Warehouse measures the normalized-warehouse arm; the
// accesses/op metric is Fig. 9's unit (the DW bar, later normalized
// to 1.0).
func BenchmarkFig9Warehouse(b *testing.B) {
	_, whC, corpus := fig9Setup(b)
	ctx := context.Background()
	for _, q := range claims.Queries {
		b.Run(q.Name, func(b *testing.B) {
			var accesses int64
			for i := 0; i < b.N; i++ {
				res, err := claims.RunWarehouse(ctx, whC, q, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				wantClaims, wantExpense := corpus.Oracle(q.Disease, q.MedicineClass)
				if res.Claims != wantClaims || res.Expense != wantExpense {
					b.Fatalf("result (%d,%d) != oracle (%d,%d)", res.Claims, res.Expense, wantClaims, wantExpense)
				}
				accesses = res.RecordAccesses
			}
			b.ReportMetric(float64(accesses), "accesses/op")
		})
	}
}

// BenchmarkFig9ReDe measures the LakeHarbor arm of Fig. 9: raw nested
// claims + post hoc index, no joins.
func BenchmarkFig9ReDe(b *testing.B) {
	lakeC, _, corpus := fig9Setup(b)
	ctx := context.Background()
	for _, q := range claims.Queries {
		b.Run(q.Name, func(b *testing.B) {
			var accesses int64
			for i := 0; i < b.N; i++ {
				res, err := claims.RunReDe(ctx, lakeC, q, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				wantClaims, wantExpense := corpus.Oracle(q.Disease, q.MedicineClass)
				if res.Claims != wantClaims || res.Expense != wantExpense {
					b.Fatalf("result (%d,%d) != oracle (%d,%d)", res.Claims, res.Expense, wantClaims, wantExpense)
				}
				accesses = res.RecordAccesses
			}
			b.ReportMetric(float64(accesses), "accesses/op")
		})
	}
}

// ---- Ablations ----

// BenchmarkAblationThreads sweeps the SMPE pool size on Q5' at a fixed
// selectivity: the transition from 1 (w/o SMPE) through the paper's 1000
// shows how much parallelism beyond the core count buys.
func BenchmarkAblationThreads(b *testing.B) {
	cluster, _, _ := fig7Setup(b)
	ctx := context.Background()
	lo, hi := fig7Range(0.05)
	job, err := tpch.Q5Job(ctx, cluster, fig7Region, lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 8, 64, 256, 1000} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Execute(ctx, job, cluster, cluster,
					core.Options{Threads: threads, InlineReferencers: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInlineReferencers compares running referencers inline on
// the producing worker (the paper's default, avoiding thread switches for
// CPU-light functions) against dispatching them as queue tasks.
func BenchmarkAblationInlineReferencers(b *testing.B) {
	cluster, _, _ := fig7Setup(b)
	ctx := context.Background()
	lo, hi := fig7Range(0.05)
	job, err := tpch.Q5Job(ctx, cluster, fig7Region, lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	for _, inline := range []bool{true, false} {
		name := "inline"
		if !inline {
			name = "queued"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Execute(ctx, job, cluster, cluster,
					core.Options{Threads: 256, InlineReferencers: inline}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBroadcastVsRouted compares a routed global-index probe
// (pointers carry partition keys) against the broadcast expression of the
// same join (pointers replicated to every partition).
func BenchmarkAblationBroadcastVsRouted(b *testing.B) {
	cluster, _, _ := fig7Setup(b)
	ctx := context.Background()
	for _, broadcast := range []bool{false, true} {
		name := "routed"
		if broadcast {
			name = "broadcast"
		}
		b.Run(name, func(b *testing.B) {
			job, err := partLineJoinJob(broadcast)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// partLineJoinJob builds the Fig. 3/4 Part⋈Lineitem join with the
// l_partkey index probed either routed or broadcast.
func partLineJoinJob(broadcast bool) (*core.Job, error) {
	seeds := []Pointer{{
		File:   tpch.IdxPartPrice,
		NoPart: true,
		Key:    KeyFloat64(950),
		EndKey: KeyFloat64(1050),
	}}
	return core.NewJob("part-line-ablation", seeds,
		core.RangeDeref{File: tpch.IdxPartPrice},
		core.EntryRef{Target: tpch.FilePart},
		core.LookupDeref{File: tpch.FilePart},
		core.FieldRef{Target: tpch.IdxLineitemPart, Interp: tpch.InterpPart,
			Field: "p_partkey", Encode: tpch.EncodeInt, Broadcast: broadcast},
		core.LookupDeref{File: tpch.IdxLineitemPart},
		core.EntryRef{Target: tpch.FileLineitem},
		core.LookupDeref{File: tpch.FileLineitem},
	)
}

// BenchmarkAblationMaxBatch sweeps the pointer-batch size on the Fig. 7
// SMPE arm at a fixed selectivity. The admissions/op metric is the point of
// the batching refactor: at MaxBatch=64 the job must reach storage with
// fewer gate admissions than at MaxBatch=1 (one admission covers a whole
// batch), and meanbatch/op shows the batch size the coalescer achieved.
func BenchmarkAblationMaxBatch(b *testing.B) {
	cluster, ds, _ := fig7Setup(b)
	ctx := context.Background()
	lo, hi := fig7Range(0.05)
	want := ds.OracleQ5(fig7Region, lo, hi)
	job, err := tpch.Q5Job(ctx, cluster, fig7Region, lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var admissions, batches, batched float64
			for i := 0; i < b.N; i++ {
				before := cluster.TotalMetrics()
				res, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{MaxBatch: batch})
				if err != nil {
					b.Fatal(err)
				}
				if res.Count != want {
					b.Fatalf("rows = %d, want %d", res.Count, want)
				}
				admissions = float64(cluster.TotalMetrics().Sub(before).Lookups)
				batches = float64(res.Trace.TotalBatches())
				batched = float64(res.Trace.TotalBatchedPtrs())
			}
			b.ReportMetric(admissions, "admissions/op")
			if batches > 0 {
				b.ReportMetric(batched/batches, "meanbatch/op")
			}
		})
	}
}

// BenchmarkPlannerAdaptive runs the declarative Q5'-shaped query through
// the planner (§V-A/§V-D): at each selectivity it estimates, picks index
// vs scan, and executes — so across the sweep its time should track the
// better of BenchmarkFig7Impala and BenchmarkFig7ReDeSMPE, closing the
// high-selectivity gap of Figure 7.
func BenchmarkPlannerAdaptive(b *testing.B) {
	cluster, _, _ := fig7Setup(b)
	ctx := context.Background()
	pl := planner.New(cluster, 16)
	orders := planner.Table{Name: tpch.FileOrders, Interp: tpch.InterpOrders, Key: "o_orderkey", Encode: tpch.EncodeInt}
	customer := planner.Table{Name: tpch.FileCustomer, Interp: tpch.InterpCustomer, Key: "c_custkey", Encode: tpch.EncodeInt}
	lineitem := planner.Table{Name: tpch.FileLineitem, Interp: tpch.InterpLineitem, Key: "l_orderkey", Encode: tpch.EncodeInt}
	for _, sel := range fig7Sels {
		b.Run(fmt.Sprintf("sel=%g", sel), func(b *testing.B) {
			lo, hi := fig7Range(sel)
			q := &planner.Query{
				Name:        "q5-planner",
				From:        orders,
				DriverIndex: tpch.IdxOrdersDate,
				DriverLo:    keycodec.Int64(int64(lo)),
				DriverHi:    keycodec.Int64(int64(hi - 1)),
				DriverPred: func(f core.Fields) (bool, error) {
					d, err := tpch.EncodeInt(f["o_orderdate"])
					if err != nil {
						return false, err
					}
					return d >= keycodec.Int64(int64(lo)) && d <= keycodec.Int64(int64(hi-1)), nil
				},
				Joins: []planner.Join{
					{FromField: "o_custkey", To: customer},
					{FromField: "o_orderkey", To: lineitem, ToField: "l_orderkey", Prefix: true},
				},
			}
			for i := 0; i < b.N; i++ {
				p, err := pl.Plan(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.Execute(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSpindles sweeps the per-node I/O service concurrency
// (the paper's 24-HDD arrays): SMPE's win over the baseline comes from
// saturating exactly this resource, so Q5' time at fixed selectivity
// should fall roughly linearly with spindles until the workload's own
// parallelism runs out.
func BenchmarkAblationSpindles(b *testing.B) {
	ctx := context.Background()
	for _, spindles := range []int{4, 24, 96} {
		b.Run(fmt.Sprintf("spindles=%d", spindles), func(b *testing.B) {
			cost := sim.HDDProfile()
			cost.Spindles = spindles
			cluster := dfs.NewCluster(dfs.Config{Nodes: fig7Nodes, Cost: cost})
			ds := tpch.Generate(tpch.Config{SF: fig7SF, Seed: 1})
			if err := tpch.Load(ctx, cluster, ds, 0); err != nil {
				b.Fatal(err)
			}
			if err := tpch.BuildStructures(ctx, cluster); err != nil {
				b.Fatal(err)
			}
			lo, hi := fig7Range(0.2)
			job, err := tpch.Q5Job(ctx, cluster, fig7Region, lo, hi)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTimeline measures the overhead of timeline event capture
// on the Fig. 7 query: events=on is the default (event ring + per-task
// events), events=off disables capture with EventCap -1. The acceptance
// budget for the observability layer is <=5% on the "on" arm; latency
// histograms stay enabled in both arms (they are not optional).
func BenchmarkAblationTimeline(b *testing.B) {
	cluster, ds, _ := fig7Setup(b)
	ctx := context.Background()
	lo, hi := fig7Range(0.05)
	want := ds.OracleQ5(fig7Region, lo, hi)
	job, err := tpch.Q5Job(ctx, cluster, fig7Region, lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		cap  int
	}{{"events=off", -1}, {"events=on", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			var events, dropped float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{EventCap: mode.cap})
				if err != nil {
					b.Fatal(err)
				}
				if res.Count != want {
					b.Fatalf("rows = %d, want %d", res.Count, want)
				}
				events = float64(len(res.Trace.Events))
				dropped = float64(res.Trace.EventsDropped)
			}
			b.ReportMetric(events, "events/op")
			b.ReportMetric(dropped, "dropped/op")
		})
	}
}
