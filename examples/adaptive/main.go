// Command adaptive demonstrates the paper's §V-B research direction,
// adaptive structure maintenance, end to end: queries start as full scans,
// the advisor watches the workload and weighs data-processing speedup
// against loading overhead, and once a candidate structure has "paid for
// itself" it is built automatically — after which the same query runs
// through the index, massively in parallel. When the workload moves on,
// the idle structure is recommended for dropping.
//
// Run it with:
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lakeharbor/internal/advisor"
	"lakeharbor/internal/baseline"
	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/sim"
)

const (
	fileEvents = "events"
	idxBySev   = "events_by_severity"
	nEvents    = 20000
)

func main() {
	ctx := context.Background()
	cluster := dfs.NewCluster(dfs.Config{Nodes: 4, Cost: sim.HDDProfile()})

	// Raw event records: "id|severity|message".
	f, err := cluster.CreateFile(fileEvents, dfs.Btree, 8, lake.HashPartitioner{})
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < nEvents; i++ {
		k := keycodec.Int64(i)
		raw := fmt.Sprintf("%d|%d|event body %d", i, i%100, i)
		if err := dfs.AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte(raw)}); err != nil {
			log.Fatal(err)
		}
	}

	adv := advisor.New(cluster, advisor.Config{BuildFactor: 8})
	err = adv.Register(indexer.Spec{
		Name:    idxBySev,
		Base:    fileEvents,
		Kind:    indexer.Global,
		PartKey: func(rec lake.Record) (lake.Key, error) { return rec.Key, nil },
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			var id, sev int64
			if _, err := fmt.Sscanf(string(rec.Data), "%d|%d", &id, &sev); err != nil {
				return nil, err
			}
			return []lake.Key{keycodec.Int64(sev)}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The recurring query: events with severity 99 (0.1% selective).
	runQuery := func() (int64, time.Duration, string) {
		if adv.Built(idxBySev) {
			k := keycodec.Int64(99)
			job, err := core.NewJob("sev99",
				[]lake.Pointer{{File: idxBySev, PartKey: k, Key: k}},
				core.LookupDeref{File: idxBySev},
				core.EntryRef{Target: fileEvents},
				core.LookupDeref{File: fileEvents},
			)
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			adv.Observe(idxBySev, 0, res.Count) // usage of the built structure
			return res.Count, res.Elapsed, "index+SMPE"
		}
		eng := baseline.New(cluster, 16)
		start := time.Now()
		recs, err := eng.Scan(ctx, fileEvents, func(rec lake.Record) (bool, error) {
			var id, sev int64
			if _, err := fmt.Sscanf(string(rec.Data), "%d|%d", &id, &sev); err != nil {
				return false, err
			}
			return sev == 99, nil
		})
		if err != nil {
			log.Fatal(err)
		}
		// Tell the advisor what this scan cost and what an index would
		// have fetched instead.
		adv.Observe(idxBySev, nEvents, int64(len(recs))*2)
		return int64(len(recs)), time.Since(start), "full scan"
	}

	fmt.Printf("%-6s %-12s %-10s %-8s %s\n", "query", "strategy", "elapsed", "rows", "advisor")
	for i := 1; i <= 6; i++ {
		rows, elapsed, how := runQuery()
		note := ""
		if !adv.Built(idxBySev) {
			recs, err := adv.Recommend()
			if err != nil {
				log.Fatal(err)
			}
			note = fmt.Sprintf("benefit/cost = %.2f (builds at 8.00)", recs[0].Ratio)
			if built, err := adv.AutoBuild(ctx); err != nil {
				log.Fatal(err)
			} else if len(built) > 0 {
				note += fmt.Sprintf(" → built %v", built)
			}
		}
		fmt.Printf("#%-5d %-12s %-10s %-8d %s\n", i, how, elapsed.Round(time.Millisecond), rows, note)
	}

	fmt.Println("\nthe advisor built the structure only after the workload justified it —")
	fmt.Println("the paper's §V-B trade-off between processing speedup and loading overhead.")
}
