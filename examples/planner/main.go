// Command planner demonstrates the paper's §V-A/§V-D research directions,
// implemented in internal/planner: a declarative query layer on top of
// Reference-Dereference that estimates the driving predicate's selectivity
// by sampling the index, costs an index plan (SMPE) against a scan plan
// (the Impala-like baseline), and runs the cheaper one. This is the plan
// switching the paper says would make ReDe "perform comparably with Impala
// in the high selectivity range".
//
// Run it with:
//
//	go run ./examples/planner
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/planner"
	"lakeharbor/internal/sim"
	"lakeharbor/internal/tpch"
)

func main() {
	ctx := context.Background()
	cluster := dfs.NewCluster(dfs.Config{Nodes: 4, Cost: sim.HDDProfile()})

	fmt.Println("loading TPC-H (SF 0.2) and building structures...")
	ds := tpch.Generate(tpch.Config{SF: 0.2, Seed: 1})
	if err := tpch.Load(ctx, cluster, ds, 0); err != nil {
		log.Fatal(err)
	}
	if err := tpch.BuildStructures(ctx, cluster); err != nil {
		log.Fatal(err)
	}

	pl := planner.New(cluster, 16)
	orders := planner.Table{Name: tpch.FileOrders, Interp: tpch.InterpOrders, Key: "o_orderkey", Encode: tpch.EncodeInt}
	customer := planner.Table{Name: tpch.FileCustomer, Interp: tpch.InterpCustomer, Key: "c_custkey", Encode: tpch.EncodeInt}
	lineitem := planner.Table{Name: tpch.FileLineitem, Interp: tpch.InterpLineitem, Key: "l_orderkey", Encode: tpch.EncodeInt}

	fmt.Printf("\n%-12s %-10s %-10s %-14s %-14s %-10s %s\n",
		"selectivity", "est.rows", "strategy", "est.index", "est.scan", "rows", "elapsed")
	for _, sel := range []float64{0.0005, 0.01, 0.1, 0.5, 1.0} {
		lo, hi := tpch.DateRange(sel)
		if hi <= lo {
			hi = lo + 1
		}
		q := &planner.Query{
			Name:        fmt.Sprintf("orders-lineitems@%g", sel),
			From:        orders,
			DriverIndex: tpch.IdxOrdersDate,
			DriverLo:    keycodec.Int64(int64(lo)),
			DriverHi:    keycodec.Int64(int64(hi - 1)),
			DriverPred: func(f core.Fields) (bool, error) {
				d, err := tpch.EncodeInt(f["o_orderdate"])
				if err != nil {
					return false, err
				}
				return d >= keycodec.Int64(int64(lo)) && d <= keycodec.Int64(int64(hi-1)), nil
			},
			Joins: []planner.Join{
				{FromField: "o_custkey", To: customer},
				{FromField: "o_orderkey", To: lineitem, ToField: "l_orderkey", Prefix: true},
			},
		}
		p, err := pl.Plan(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := p.Execute(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12g %-10d %-10s %-14s %-14s %-10d %s\n",
			sel, p.EstimatedDriverRows, p.Strategy,
			p.EstimatedIndexCost.Round(time.Millisecond),
			p.EstimatedScanCost.Round(time.Millisecond),
			res.Count, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nthe planner switches from the index plan to the scan plan as the")
	fmt.Println("estimated driver cardinality grows — closing the high-selectivity gap")
	fmt.Println("seen in Figure 7 (§V-A/§V-D of the paper).")
}
