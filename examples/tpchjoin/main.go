// Command tpchjoin runs the paper's Fig. 3/4 example: a parallel index
// nested-loop join between Part and Lineitem, opened by a range over the
// local secondary index on p_retailprice and crossing partitions through
// the global index on l_partkey. It executes the same job with and without
// SMPE to show the fine-grained parallelism at work.
//
// Run it with:
//
//	go run ./examples/tpchjoin
package main

import (
	"context"
	"fmt"
	"log"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/sim"
	"lakeharbor/internal/tpch"
)

func main() {
	ctx := context.Background()

	// A 4-node cluster with the HDD-like cost model, so the timing
	// difference between the execution strategies is visible.
	cluster := dfs.NewCluster(dfs.Config{Nodes: 4, Cost: sim.HDDProfile()})

	fmt.Println("generating TPC-H micro dataset (SF 0.1)...")
	ds := tpch.Generate(tpch.Config{SF: 0.1, Seed: 1})
	if err := tpch.Load(ctx, cluster, ds, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d parts, %d lineitems\n", len(ds.Parts), len(ds.Lineitems))

	fmt.Println("building structures (local price index, global l_partkey index)...")
	if err := tpch.BuildStructures(ctx, cluster); err != nil {
		log.Fatal(err)
	}

	// The join of Fig. 3/4:
	//   SELECT * FROM Part p JOIN Lineitem l ON p.p_partkey = l.l_partkey
	//   WHERE p.p_retailprice BETWEEN 950 AND 1050
	lo, hi := 950.0, 1050.0
	job, err := tpch.PartLineitemJoin(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(job.Describe())

	smpe, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nReDe w/ SMPE : %6d joined rows in %v\n", smpe.Count, smpe.Elapsed.Round(0))

	plain, err := core.ExecutePlain(ctx, job, cluster, cluster, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReDe w/o SMPE: %6d joined rows in %v\n", plain.Count, plain.Elapsed.Round(0))

	if want := ds.OraclePartLineitem(lo, hi); smpe.Count != want || plain.Count != want {
		log.Fatalf("result mismatch: SMPE=%d plain=%d oracle=%d", smpe.Count, plain.Count, want)
	}
	fmt.Println("both executions match the oracle cardinality")

	// For contrast, the scan-based baseline computes the same join by
	// scanning both tables and hash-joining them.
	eng := baseline.New(cluster, 0)
	parts, err := eng.Scan(ctx, tpch.FilePart, func(rec lake.Record) (bool, error) {
		f, err := tpch.InterpPart(rec)
		if err != nil {
			return false, err
		}
		k, err := tpch.EncodeFloat(f["p_retailprice"])
		if err != nil {
			return false, err
		}
		return k >= keycodec.Float64(lo) && k <= keycodec.Float64(hi), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	lineitems, err := eng.Scan(ctx, tpch.FileLineitem, nil)
	if err != nil {
		log.Fatal(err)
	}
	joined, err := baseline.HashJoin(
		baseline.TuplesOf(lineitems),
		baseline.TupleKey(0, func(rec lake.Record) (string, error) {
			f, err := tpch.InterpLineitem(rec)
			if err != nil {
				return "", err
			}
			return tpch.EncodeInt(f["l_partkey"])
		}),
		parts,
		func(rec lake.Record) (string, error) {
			f, err := tpch.InterpPart(rec)
			if err != nil {
				return "", err
			}
			return tpch.EncodeInt(f["p_partkey"])
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline scan+hash join: %d joined rows (scanned every record)\n", len(joined))
}
