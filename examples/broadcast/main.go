// Command broadcast demonstrates the expressibility claims of §III-B: the
// same join expressed three ways with Reference-Dereference —
//
//  1. routed: pointers carry a partition key and go straight to the
//     owning partition (a global-index-style probe);
//  2. broadcast: a Referencer emits pointers without partition
//     information, so the executor replicates them to every partition
//     (a broadcast join);
//  3. multi-way: the join extended by one more hop with carried context
//     (composite records).
//
// All three produce identical results; they differ in how pointers travel.
//
// Run it with:
//
//	go run ./examples/broadcast
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"lakeharbor"
)

func main() {
	ctx := context.Background()
	engine := lakeharbor.New(lakeharbor.Config{Nodes: 3})

	// users(id, country_id) and countries(id, name, continent_id) and
	// continents(id, name) — raw CSV payloads.
	mustCreate(engine, "users")
	mustCreate(engine, "countries")
	mustCreate(engine, "continents")

	continents := []string{"asia", "europe", "americas"}
	for i, name := range continents {
		k := lakeharbor.KeyInt64(int64(i))
		must(engine.Ingest(ctx, "continents", k,
			lakeharbor.Record{Key: k, Data: []byte(fmt.Sprintf("%d,%s", i, name))}))
	}
	for i := 0; i < 12; i++ {
		k := lakeharbor.KeyInt64(int64(i))
		must(engine.Ingest(ctx, "countries", k,
			lakeharbor.Record{Key: k, Data: []byte(fmt.Sprintf("%d,country-%d,%d", i, i, i%3))}))
	}
	for i := 0; i < 2000; i++ {
		k := lakeharbor.KeyInt64(int64(i))
		must(engine.Ingest(ctx, "users", k,
			lakeharbor.Record{Key: k, Data: []byte(fmt.Sprintf("%d,%d", i, i%12))}))
	}

	interpUser := csvInterp("user_id", "country_id")
	interpCountry := csvInterp("country_id", "country", "continent_id")
	interpUC := lakeharbor.Composite(interpUser, interpCountry)

	// All users, seeded as a broadcast scan of the users file.
	seeds := []lakeharbor.Pointer{{File: "users", NoPart: true, Key: lakeharbor.KeyInt64(0), EndKey: lakeharbor.KeyInt64(1 << 30)}}

	// 1. Routed join: country pointers carry the partition key.
	routed, err := lakeharbor.NewJob("routed-join", seeds,
		lakeharbor.RangeDeref{File: "users"},
		lakeharbor.FieldRef{Target: "countries", Interp: interpUser, Field: "country_id", Encode: encInt},
		lakeharbor.LookupDeref{File: "countries"},
	)
	must(err)

	// 2. Broadcast join: identical, except the Referencer emits pointers
	// with no partition information — the executor replicates them.
	bcast, err := lakeharbor.NewJob("broadcast-join", seeds,
		lakeharbor.RangeDeref{File: "users"},
		lakeharbor.FieldRef{Target: "countries", Interp: interpUser, Field: "country_id", Encode: encInt, Broadcast: true},
		lakeharbor.LookupDeref{File: "countries"},
	)
	must(err)

	// 3. Multi-way join with carried context: users ⋈ countries ⋈
	// continents, the user record carried through as a composite.
	multi, err := lakeharbor.NewJob("multiway-join", seeds,
		lakeharbor.RangeDeref{File: "users"},
		lakeharbor.FieldRef{Target: "countries", Interp: interpUser, Field: "country_id",
			Encode: encInt, Carry: lakeharbor.CarryRecord},
		lakeharbor.LookupDeref{File: "countries", Combine: true},
		lakeharbor.FieldRef{Target: "continents", Interp: interpUC, Field: "continent_id",
			Encode: encInt, Carry: lakeharbor.CarryComposite},
		lakeharbor.LookupDeref{File: "continents", Combine: true},
	)
	must(err)

	r1, err := engine.Execute(ctx, routed, lakeharbor.Options{})
	must(err)
	r2, err := engine.Execute(ctx, bcast, lakeharbor.Options{})
	must(err)
	r3, err := engine.Execute(ctx, multi, lakeharbor.Options{KeepRecords: true})
	must(err)

	fmt.Printf("routed join   : %d rows in %v\n", r1.Count, r1.Elapsed.Round(0))
	fmt.Printf("broadcast join: %d rows in %v\n", r2.Count, r2.Elapsed.Round(0))
	fmt.Printf("multi-way join: %d rows in %v\n", r3.Count, r3.Elapsed.Round(0))
	if r1.Count != r2.Count || r1.Count != r3.Count {
		log.Fatal("join strategies disagree!")
	}

	// Show a composite result row interpreted with schema-on-read.
	interpAll := lakeharbor.Composite(interpUser, interpCountry, csvInterp("continent_id", "continent"))
	f, err := interpAll(r3.Records[0])
	must(err)
	fmt.Printf("sample row: user %s lives in %s (%s)\n", f["user_id"], f["country"], f["continent"])
}

func mustCreate(e *lakeharbor.Engine, name string) {
	if _, err := e.CreateFile(name, 0, nil); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func encInt(v string) (lakeharbor.Key, error) {
	var n int64
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return "", err
	}
	return lakeharbor.KeyInt64(n), nil
}

// csvInterp builds an interpreter naming comma-separated fields.
func csvInterp(names ...string) lakeharbor.Interpreter {
	return func(rec lakeharbor.Record) (lakeharbor.Fields, error) {
		parts := strings.Split(string(rec.Data), ",")
		if len(parts) != len(names) {
			return nil, fmt.Errorf("record %q has %d fields, want %d", rec.Data, len(parts), len(names))
		}
		f := lakeharbor.Fields{}
		for i, n := range names {
			f[n] = parts[i]
		}
		return f, nil
	}
}
