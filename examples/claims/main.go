// Command claims reproduces the paper's case study (§IV): analytics over
// Japanese public-healthcare insurance claims. It generates a synthetic
// corpus in the nested IR/RE/HO/SI/IY/SY text format, stores it two ways —
// raw claims with a post hoc disease index (the LakeHarbor way) and
// normalized relational tables (the warehouse way) — runs queries Q1–Q3 on
// both, and prints the Fig. 9 comparison of record accesses.
//
// Run it with:
//
//	go run ./examples/claims
package main

import (
	"context"
	"fmt"
	"log"

	"lakeharbor/internal/claims"
	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
)

func main() {
	ctx := context.Background()
	const nClaims = 5000

	fmt.Printf("generating %d synthetic insurance claims...\n", nClaims)
	corpus := claims.Generate(claims.Config{Claims: nClaims, Seed: 2024})

	// Show one claim in its raw nested format (Fig. 8 of the paper).
	fmt.Println("\na raw claim (dynamically-typed nested sub-records):")
	fmt.Print(indent(corpus.Claims[0].Raw()))

	lakeCluster := dfs.NewCluster(dfs.Config{Nodes: 4})
	if err := claims.LoadLake(ctx, lakeCluster, corpus, 0); err != nil {
		log.Fatal(err)
	}
	whCluster := dfs.NewCluster(dfs.Config{Nodes: 4})
	if err := claims.LoadWarehouse(ctx, whCluster, corpus, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nloaded: raw claims + post hoc disease index (LakeHarbor),")
	fmt.Println("        normalized tables + disease index (warehouse)")

	fmt.Printf("\n%-4s %-14s %-14s %-16s %-16s %s\n",
		"qry", "claims", "expense", "DW accesses", "ReDe accesses", "normalized (DW=1.0)")
	for _, q := range claims.Queries {
		wh, err := claims.RunWarehouse(ctx, whCluster, q, core.Options{})
		if err != nil {
			log.Fatalf("%s warehouse: %v", q.Name, err)
		}
		rd, err := claims.RunReDe(ctx, lakeCluster, q, core.Options{})
		if err != nil {
			log.Fatalf("%s ReDe: %v", q.Name, err)
		}
		if rd.Claims != wh.Claims || rd.Expense != wh.Expense {
			log.Fatalf("%s: systems disagree: ReDe (%d, %d) vs warehouse (%d, %d)",
				q.Name, rd.Claims, rd.Expense, wh.Claims, wh.Expense)
		}
		norm := float64(rd.RecordAccesses) / float64(wh.RecordAccesses)
		fmt.Printf("%-4s %-14d %-14d %-16d %-16d %.3f\n",
			q.Name, rd.Claims, rd.Expense, wh.RecordAccesses, rd.RecordAccesses, norm)
	}
	fmt.Println("\nReDe touches far fewer records: schema-on-read over whole nested")
	fmt.Println("claims avoids the joins the normalized warehouse model forces (Fig. 9).")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
