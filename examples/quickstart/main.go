// Command quickstart is the smallest end-to-end LakeHarbor program: build a
// lake, ingest raw records, register an access method post hoc, let the
// engine build the structure lazily, and run a selection job with massive
// parallelism.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"

	"lakeharbor"
)

func main() {
	ctx := context.Background()

	// A 4-node simulated cluster. The zero cost model makes storage
	// instant; pass lakeharbor.HDDCostModel() to feel the I/O costs.
	engine := lakeharbor.New(lakeharbor.Config{Nodes: 4})

	// 1. Store raw data. LakeHarbor keeps data in its raw form — here,
	// CSV-ish sensor readings "sensor_id,temperature,city" — and applies
	// schemas only on read.
	if _, err := engine.CreateFile("readings", 0, nil); err != nil {
		log.Fatal(err)
	}
	cities := []string{"tokyo", "osaka", "nagoya", "sapporo"}
	for i := 0; i < 10000; i++ {
		key := lakeharbor.KeyInt64(int64(i))
		temp := 10 + (i*7919)%30 // 10..39 °C, deterministic
		raw := fmt.Sprintf("%d,%d,%s", i, temp, cities[i%len(cities)])
		rec := lakeharbor.Record{Key: key, Data: []byte(raw)}
		if err := engine.Ingest(ctx, "readings", key, rec); err != nil {
			log.Fatal(err)
		}
	}

	// A schema-on-read interpreter: the only workload-specific code.
	interp := func(rec lakeharbor.Record) (lakeharbor.Fields, error) {
		f := strings.Split(string(rec.Data), ",")
		if len(f) != 3 {
			return nil, fmt.Errorf("malformed reading %q", rec.Data)
		}
		return lakeharbor.Fields{"sensor_id": f[0], "temp": f[1], "city": f[2]}, nil
	}

	// 2. Make a structure a first-class citizen: register an access
	// method for a temperature index. Nothing is built yet — structures
	// are constructed lazily from the registered functions.
	err := engine.RegisterStructure(lakeharbor.StructureSpec{
		Name: "readings_by_temp",
		Base: "readings",
		Kind: lakeharbor.GlobalIndex,
		PartKey: func(rec lakeharbor.Record) (lakeharbor.Key, error) {
			return rec.Key, nil // readings are partitioned by their key
		},
		Keys: func(rec lakeharbor.Record) ([]lakeharbor.Key, error) {
			f, err := interp(rec)
			if err != nil {
				return nil, err
			}
			t, err := strconv.ParseInt(f["temp"], 10, 64)
			if err != nil {
				return nil, err
			}
			return []lakeharbor.Key{lakeharbor.KeyInt64(t)}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.EnsureStructure(ctx, "readings_by_temp"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("structure readings_by_temp built lazily from the registered access method")

	// 3. Query through the structure: readings hotter than 35 °C, in
	// tokyo, fetched with a Reference-Dereference job.
	onlyTokyo := func(rec lakeharbor.Record) (bool, error) {
		f, err := interp(rec)
		if err != nil {
			return false, err
		}
		return f["city"] == "tokyo", nil
	}
	seeds, err := lakeharbor.SeedRange(engine, "readings_by_temp",
		lakeharbor.KeyInt64(36), lakeharbor.KeyInt64(99))
	if err != nil {
		log.Fatal(err)
	}
	job, err := lakeharbor.NewJob("hot-tokyo-readings", seeds,
		lakeharbor.RangeDeref{File: "readings_by_temp"},
		lakeharbor.EntryRef{Target: "readings"},
		lakeharbor.LookupDeref{File: "readings", Filter: onlyTokyo},
	)
	if err != nil {
		log.Fatal(err)
	}

	before := engine.Metrics()
	res, err := engine.Execute(ctx, job, lakeharbor.Options{KeepRecords: true})
	if err != nil {
		log.Fatal(err)
	}
	used := engine.Metrics().Sub(before)

	fmt.Printf("hot tokyo readings: %d (in %v, %d record accesses)\n",
		res.Count, res.Elapsed.Round(0), used.RecordAccesses())
	for i, r := range res.Records {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(res.Records)-5)
			break
		}
		f, _ := interp(r)
		fmt.Printf("  sensor %s: %s°C in %s\n", f["sensor_id"], f["temp"], f["city"])
	}
}
