package lakeharbor

// TestFig7ShapeHolds pins the paper's headline result as an executable
// invariant: on one shared cluster and cost model,
//
//  1. at low selectivity ReDe w/ SMPE beats the scan baseline by a wide
//     margin,
//  2. at very low selectivity even ReDe w/o SMPE beats the baseline,
//  3. at full selectivity ReDe w/o SMPE is far behind the baseline, and
//  4. SMPE beats no-SMPE wherever there is real work.
//
// Margins are kept loose (2×) so scheduler noise on slow CI machines does
// not flake the test; EXPERIMENTS.md records the actual factors.

import (
	"context"
	"testing"
	"time"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/sim"
	"lakeharbor/internal/tpch"
)

func TestFig7ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based shape check skipped in -short mode")
	}
	ctx := context.Background()
	cluster := dfs.NewCluster(dfs.Config{Nodes: 4, Cost: sim.HDDProfile()})
	ds := tpch.Generate(tpch.Config{SF: 0.2, Seed: 1})
	if err := tpch.Load(ctx, cluster, ds, 0); err != nil {
		t.Fatal(err)
	}
	if err := tpch.BuildStructures(ctx, cluster); err != nil {
		t.Fatal(err)
	}
	eng := baseline.New(cluster, 16)

	timeImpala := func(lo, hi int) time.Duration {
		start := time.Now()
		if _, err := tpch.RunQ5Baseline(ctx, eng, cluster, "ASIA", lo, hi); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	timeReDe := func(lo, hi int, smpe bool) time.Duration {
		job, err := tpch.Q5Job(ctx, cluster, "ASIA", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var res *core.Result
		if smpe {
			res, err = core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{})
		} else {
			res, err = core.ExecutePlain(ctx, job, cluster, cluster, core.Options{})
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}

	// Very low selectivity (~1e-3).
	lo, hi := tpch.DateRange(0.001)
	if hi <= lo {
		hi = lo + 1
	}
	impalaLow := timeImpala(lo, hi)
	smpeLow := timeReDe(lo, hi, true)
	plainLow := timeReDe(lo, hi, false)

	if smpeLow*2 >= impalaLow {
		t.Errorf("shape 1 violated: SMPE %v not well under baseline %v at low selectivity", smpeLow, impalaLow)
	}
	if plainLow >= impalaLow {
		t.Errorf("shape 2 violated: no-SMPE %v not under baseline %v at very low selectivity", plainLow, impalaLow)
	}

	// Full selectivity.
	loF, hiF := tpch.DateRange(1.0)
	impalaFull := timeImpala(loF, hiF)
	plainFull := timeReDe(loF, hiF, false)
	smpeFull := timeReDe(loF, hiF, true)

	if plainFull <= impalaFull*2 {
		t.Errorf("shape 3 violated: no-SMPE %v not far behind baseline %v at full selectivity", plainFull, impalaFull)
	}
	if smpeFull*2 >= plainFull {
		t.Errorf("shape 4 violated: SMPE %v not well under no-SMPE %v at full selectivity", smpeFull, plainFull)
	}
	t.Logf("low sel: impala=%v nosmpe=%v smpe=%v; full sel: impala=%v nosmpe=%v smpe=%v",
		impalaLow, plainLow, smpeLow, impalaFull, plainFull, smpeFull)
}
