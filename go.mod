module lakeharbor

go 1.22
