package lakeharbor

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"lakeharbor/internal/lake"
)

// TestEngineEndToEnd drives the whole public API the way the quickstart
// example does: create a lake, ingest raw records, register a post hoc
// access method, and run a selection job with and without SMPE.
func TestEngineEndToEnd(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Nodes: 3})
	if e.Nodes() != 3 {
		t.Fatalf("Nodes = %d", e.Nodes())
	}
	if _, err := e.CreateFile("events", 0, nil); err != nil {
		t.Fatal(err)
	}
	// Raw CSV-ish events: id,severity,message.
	const n = 200
	for i := 0; i < n; i++ {
		k := KeyInt64(int64(i))
		rec := Record{Key: k, Data: []byte(fmt.Sprintf("%d,%d,event-%d", i, i%10, i))}
		if err := e.Ingest(ctx, "events", k, rec); err != nil {
			t.Fatal(err)
		}
	}

	interp := func(rec Record) (Fields, error) {
		f := strings.Split(string(rec.Data), ",")
		if len(f) != 3 {
			return nil, fmt.Errorf("bad event %q", rec.Data)
		}
		return Fields{"id": f[0], "severity": f[1], "message": f[2]}, nil
	}

	// Post hoc access method: a global index on severity.
	err := e.RegisterStructure(StructureSpec{
		Name: "events_by_severity",
		Base: "events",
		Kind: GlobalIndex,
		PartKey: func(rec Record) (Key, error) {
			return rec.Key, nil
		},
		Keys: func(rec Record) ([]Key, error) {
			f, err := interp(rec)
			if err != nil {
				return nil, err
			}
			sev, err := strconv.ParseInt(f["severity"], 10, 64)
			if err != nil {
				return nil, err
			}
			return []Key{KeyInt64(sev)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnsureStructure(ctx, "events_by_severity"); err != nil {
		t.Fatal(err)
	}

	// Select severities 7..9 through the structure.
	seeds, err := SeedRange(e, "events_by_severity", KeyInt64(7), KeyInt64(9))
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob("severe-events", seeds,
		RangeDeref{File: "events_by_severity"},
		EntryRef{Target: "events"},
		LookupDeref{File: "events"},
	)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Metrics()
	res, err := e.Execute(ctx, job, Options{KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != n*3/10 {
		t.Fatalf("selection count = %d, want %d", res.Count, n*3/10)
	}
	for _, r := range res.Records {
		f, err := interp(r)
		if err != nil {
			t.Fatal(err)
		}
		if sev, _ := strconv.Atoi(f["severity"]); sev < 7 || sev > 9 {
			t.Fatalf("record with severity %d escaped", sev)
		}
	}
	if d := e.Metrics().Sub(before); d.RecordAccesses() == 0 {
		t.Error("metrics did not record the query")
	}

	plain, err := e.ExecutePlain(ctx, job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Count != res.Count {
		t.Fatalf("plain count %d != SMPE count %d", plain.Count, res.Count)
	}
}

func TestEngineDefaults(t *testing.T) {
	e := New(Config{})
	if e.Nodes() != 1 {
		t.Errorf("default Nodes = %d, want 1", e.Nodes())
	}
	f, err := e.CreateFile("f", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPartitions() != 2 { // 2 × 1 node
		t.Errorf("default partitions = %d, want 2", f.NumPartitions())
	}
	if _, ok := f.Partitioner().(lake.HashPartitioner); !ok {
		t.Error("default partitioner is not hash")
	}
	if _, err := e.File("f"); err != nil {
		t.Error(err)
	}
	if err := e.Ingest(context.Background(), "missing", "k", Record{}); err == nil {
		t.Error("Ingest into missing file should fail")
	}
}

func TestKeyHelpers(t *testing.T) {
	if KeyInt64(1) >= KeyInt64(2) {
		t.Error("KeyInt64 order broken")
	}
	if KeyFloat64(1.5) >= KeyFloat64(2.5) {
		t.Error("KeyFloat64 order broken")
	}
	if KeyString("a") >= KeyString("b") {
		t.Error("KeyString order broken")
	}
	tu := KeyTuple(KeyString("a"), KeyInt64(1))
	if tu >= KeyTuple(KeyString("a"), KeyInt64(2)) {
		t.Error("KeyTuple order broken")
	}
	if HDDCostModel().Zero() {
		t.Error("HDDCostModel should not be zero")
	}
}

func TestEngineSnapshotRestore(t *testing.T) {
	ctx := context.Background()
	src := New(Config{Nodes: 2})
	src.CreateFile("t", 0, nil)
	for i := int64(0); i < 100; i++ {
		k := KeyInt64(i)
		if err := src.Ingest(ctx, "t", k, Record{Key: k, Data: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.Snapshot(ctx, &buf); err != nil {
		t.Fatal(err)
	}
	dst := New(Config{Nodes: 3})
	if err := dst.Restore(ctx, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := dst.File("t")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for p := 0; p < f.NumPartitions(); p++ {
		f.Scan(ctx, p, func(Record) error { n++; return nil })
	}
	if n != 100 {
		t.Fatalf("restored engine has %d records, want 100", n)
	}
}
