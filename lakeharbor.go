// Package lakeharbor is a from-scratch implementation of the LakeHarbor
// data management paradigm and its prototype engine ReDe, reproducing
// "LakeHarbor: Making Structures First-Class Citizens in Data Lakes"
// (Yamada, Kitsuregawa, Goda — ICDE 2024).
//
// LakeHarbor makes structures (indexes) first-class citizens in a data
// lake: data stays raw (schema-on-read), access-method functions are
// registered post hoc, structures are built lazily from those functions,
// and the query engine exploits the fine-grained parallelism the
// structures expose — scalable massively parallel execution (SMPE) —
// instead of the statically-defined scan parallelism of conventional data
// lake engines.
//
// This package is the public facade: an Engine that wires together the
// simulated distributed file system (internal/dfs), the structure builder
// (internal/indexer), and the ReDe executor (internal/core). The most
// important concepts re-exported here:
//
//   - Record, Pointer: the I/O abstraction. Records are raw bytes.
//   - Referencer / Dereferencer: the Reference-Dereference abstraction. A
//     job is an alternating list of them; pre-defined implementations
//     (RangeDeref, LookupDeref, EntryRef, FieldRef, ...) cover the standard
//     indexing schemes.
//   - StructureSpec: a post hoc access-method registration from which the
//     engine lazily builds local or global B-tree indexes.
//   - Execute / ExecutePlain: run a job with SMPE (default 1000 workers
//     per node) or with only the cluster's partitioned parallelism.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package lakeharbor

import (
	"context"
	"io"

	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/metrics"
	"lakeharbor/internal/sim"
	"lakeharbor/internal/store"
	"lakeharbor/internal/trace"
)

// Re-exported storage types.
type (
	// Record is a unit of raw data (schema-on-read payload).
	Record = lake.Record
	// Pointer locates a record or key range in a distributed file.
	Pointer = lake.Pointer
	// Key is an order-preserving encoded key.
	Key = lake.Key
	// File is a distributed, partitioned record collection.
	File = lake.File
	// BtreeFile is a File supporting range lookups.
	BtreeFile = lake.BtreeFile
	// Partitioner routes partition keys to partitions.
	Partitioner = lake.Partitioner
	// HashPartitioner routes by hash (the default).
	HashPartitioner = lake.HashPartitioner
	// RangePartitioner routes by ordered split points.
	RangePartitioner = lake.RangePartitioner
	// CostModel configures the simulated I/O and network costs.
	CostModel = sim.CostModel
	// MetricsSnapshot reports record accesses, lookups, remote fetches.
	MetricsSnapshot = metrics.Snapshot
)

// Re-exported engine types.
type (
	// Job is a Reference-Dereference data processing job.
	Job = core.Job
	// Stage is one step of a job.
	Stage = core.Stage
	// Referencer produces pointers from a record.
	Referencer = core.Referencer
	// Dereferencer produces records from a pointer.
	Dereferencer = core.Dereferencer
	// Interpreter applies a schema to a raw record on read.
	Interpreter = core.Interpreter
	// Fields is an interpreted record.
	Fields = core.Fields
	// Filter drops records at a Dereferencer.
	Filter = core.Filter
	// TaskCtx is the per-invocation execution context.
	TaskCtx = core.TaskCtx
	// Options tunes job execution (pool size, inline referencers, sinks).
	Options = core.Options
	// Result reports a job execution.
	Result = core.Result
	// RangeDeref reads a key range from a B-tree file.
	RangeDeref = core.RangeDeref
	// LookupDeref fetches records by key through the partitioner.
	LookupDeref = core.LookupDeref
	// ScanDeref scans a file's local partitions.
	ScanDeref = core.ScanDeref
	// EntryRef turns index entries into pointers at the indexed file.
	EntryRef = core.EntryRef
	// FieldRef extracts a field (schema-on-read) and points at a target.
	FieldRef = core.FieldRef
	// FuncRef adapts a function as a Referencer.
	FuncRef = core.FuncRef
	// FuncDeref adapts a function as a Dereferencer.
	FuncDeref = core.FuncDeref
	// CarryMode selects multi-way-join context propagation.
	CarryMode = core.CarryMode
	// StructureSpec registers a post hoc access method for lazy index
	// construction.
	StructureSpec = indexer.Spec
	// BuildStatus tracks a background structure build.
	BuildStatus = indexer.BuildStatus
	// StructureManager is the structure lifecycle manager: singleflight
	// builds, budgeted residency, eviction, rebuild-on-demand (see
	// Engine.Structures).
	StructureManager = indexer.Manager
	// StructureStatus describes one managed structure's lifecycle state.
	StructureStatus = indexer.StructureStatus
	// ExecTrace is a job's execution trace snapshot (Result.Trace):
	// per-stage spans and per-node queue/worker/I/O telemetry.
	ExecTrace = trace.Snapshot
	// StageTrace is one stage's span within an ExecTrace.
	StageTrace = trace.StageSnapshot
	// NodeTrace is one node's telemetry within an ExecTrace.
	NodeTrace = trace.NodeSnapshot
	// TraceRegistry retains recent ExecTraces and aggregates them into
	// Prometheus-style metrics (see internal/httpapi's /debug endpoints).
	TraceRegistry = trace.Registry
)

// Permanent reports whether an execution error can never heal by retrying
// (unknown file, bad partition, wrong file kind); the executor fails fast
// on these instead of consuming Options.MaxRetries.
func Permanent(err error) bool { return core.Permanent(err) }

// Re-exported constants.
const (
	// CarryNone, CarryRecord, CarryComposite select what a FieldRef
	// attaches to emitted pointers.
	CarryNone      = core.CarryNone
	CarryRecord    = core.CarryRecord
	CarryComposite = core.CarryComposite
	// LocalIndex and GlobalIndex select the structure partitioning scheme.
	LocalIndex  = indexer.Local
	GlobalIndex = indexer.Global
	// DefaultThreads is the SMPE per-node worker pool size.
	DefaultThreads = core.DefaultThreads
)

// Key encoding helpers (order-preserving).

// KeyInt64 encodes a signed integer key.
func KeyInt64(v int64) Key { return keycodec.Int64(v) }

// KeyFloat64 encodes a float key.
func KeyFloat64(v float64) Key { return keycodec.Float64(v) }

// KeyString encodes a string key (self-delimiting, tuple-safe).
func KeyString(v string) Key { return keycodec.String(v) }

// KeyTuple concatenates encoded keys into a composite key.
func KeyTuple(elems ...Key) Key { return keycodec.Tuple(elems...) }

// NewJob composes a job from seeds and an alternating Dereferencer /
// Referencer list, validating the Reference-Dereference structure.
func NewJob(name string, seeds []Pointer, funcs ...any) (*Job, error) {
	return core.NewJob(name, seeds, funcs...)
}

// Composite builds an Interpreter over composite (multi-way join) records:
// one interpreter per joined segment, field maps merged.
func Composite(interps ...Interpreter) Interpreter { return core.Composite(interps...) }

// SeedRange builds seed pointers for a key-range dereference over an index
// file, routing per-partition when the index is range-partitioned and
// broadcasting otherwise.
func SeedRange(e *Engine, file string, lo, hi Key) ([]Pointer, error) {
	return core.SeedRange(e.Cluster(), file, lo, hi)
}

// HDDCostModel is the benchmark cost model: a scaled stand-in for the
// paper's HDD testbed (see internal/sim).
func HDDCostModel() CostModel { return sim.HDDProfile() }

// Config describes an Engine.
type Config struct {
	// Nodes is the simulated cluster size (default 1).
	Nodes int
	// Cost models I/O and network costs; the zero model is free/instant.
	Cost CostModel
	// DefaultPartitions is the partition count used when CreateFile is
	// called with partitions == 0 (default 2×Nodes).
	DefaultPartitions int
	// StructureBudget caps the total modeled bytes of resident built
	// structures; cold ready structures are evicted (and transparently
	// rebuilt on demand) to stay within it. 0 means unlimited.
	StructureBudget int64
	// MaintainStructures keeps built structures in sync with records
	// ingested after their build (writer-pays maintenance, §III-D). Off by
	// default: without it an index reflects the data as of its build.
	MaintainStructures bool
}

// Engine is a LakeHarbor instance: simulated cluster storage, a structure
// lifecycle manager, and the ReDe executor.
type Engine struct {
	cluster  *dfs.Cluster
	manager  *indexer.Manager
	defParts int
}

// New creates an Engine.
func New(cfg Config) *Engine {
	cluster := dfs.NewCluster(dfs.Config{Nodes: cfg.Nodes, Cost: cfg.Cost})
	defParts := cfg.DefaultPartitions
	if defParts <= 0 {
		defParts = 2 * cluster.NumNodes()
	}
	return &Engine{
		cluster: cluster,
		manager: indexer.NewManager(context.Background(), cluster, indexer.ManagerOptions{
			StructureBudget: cfg.StructureBudget,
			Maintain:        cfg.MaintainStructures,
		}),
		defParts: defParts,
	}
}

// Cluster exposes the underlying storage cluster (catalog + topology).
func (e *Engine) Cluster() *dfs.Cluster { return e.cluster }

// Nodes returns the cluster size.
func (e *Engine) Nodes() int { return e.cluster.NumNodes() }

// CreateFile registers a new B-tree file (partitions == 0 uses the
// engine default; p == nil uses hash partitioning).
func (e *Engine) CreateFile(name string, partitions int, p Partitioner) (File, error) {
	if partitions <= 0 {
		partitions = e.defParts
	}
	if p == nil {
		p = lake.HashPartitioner{}
	}
	return e.cluster.CreateFile(name, dfs.Btree, partitions, p)
}

// File resolves a catalog name.
func (e *Engine) File(name string) (File, error) { return e.cluster.File(name) }

// Ingest appends one raw record, routed by partition key.
func (e *Engine) Ingest(ctx context.Context, file string, partKey Key, rec Record) error {
	f, err := e.cluster.File(file)
	if err != nil {
		return err
	}
	return dfs.AppendRouted(ctx, f, partKey, rec)
}

// RegisterStructure records a post hoc access-method definition. No work
// happens until EnsureStructure or BuildStructures (lazy construction,
// paper §III-D).
func (e *Engine) RegisterStructure(spec StructureSpec) error {
	return e.manager.Register(spec)
}

// EnsureStructure builds the named structure if needed and waits until it
// is queryable. Concurrent calls share one build; an evicted structure is
// transparently rebuilt.
func (e *Engine) EnsureStructure(ctx context.Context, name string) error {
	return e.manager.Ensure(ctx, name)
}

// BuildStructures starts every registered structure build in the
// background and waits for all of them.
func (e *Engine) BuildStructures(ctx context.Context) error {
	names := e.manager.Names()
	for _, name := range names {
		if _, err := e.manager.Build(name); err != nil {
			return err
		}
	}
	for _, name := range names {
		if err := e.manager.Ensure(ctx, name); err != nil {
			return err
		}
	}
	return nil
}

// Structures exposes the engine's structure lifecycle manager: per-spec
// state (absent → building → ready → evicted), budgeted residency, and
// lifecycle counters. Attach it to an httpapi.Server to serve
// /v1/structures.
func (e *Engine) Structures() *indexer.Manager { return e.manager }

// Execute runs a job with SMPE (Algorithm 1): per-node queues, a worker
// pool of Options.Threads goroutines per node (default 1000), inline
// referencers, dynamic task decomposition.
func (e *Engine) Execute(ctx context.Context, job *Job, opts Options) (*Result, error) {
	return core.ExecuteSMPE(ctx, job, e.cluster, e.cluster, opts)
}

// ExecutePlain runs a job with SMPE disabled: one worker per node, leaving
// only the cluster's partitioned parallelism (the paper's "ReDe w/o SMPE").
func (e *Engine) ExecutePlain(ctx context.Context, job *Job, opts Options) (*Result, error) {
	return core.ExecutePlain(ctx, job, e.cluster, e.cluster, opts)
}

// Metrics returns the cluster-wide access counters (records read/scanned,
// lookups, remote fetches).
func (e *Engine) Metrics() MetricsSnapshot { return e.cluster.TotalMetrics() }

// Snapshot writes a durable, checksummed snapshot of every file to w
// (see internal/store for the format).
func (e *Engine) Snapshot(ctx context.Context, w io.Writer) error {
	return store.Snapshot(ctx, e.cluster, w)
}

// Restore loads a snapshot into the engine; files that already exist make
// it fail.
func (e *Engine) Restore(ctx context.Context, r io.Reader) error {
	return store.Restore(ctx, r, e.cluster)
}
