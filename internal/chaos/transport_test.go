package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

func TestTransportChaosInjectsBoundedTransientDrops(t *testing.T) {
	cluster := dfs.NewCluster(dfs.Config{Nodes: 1})
	if _, err := cluster.CreateFile("f", dfs.Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f, err := cluster.File("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(ctx, 0, lake.Record{Key: "k", Data: []byte("v")}); err != nil {
		t.Fatal(err)
	}

	prof := TransportProfile{DropProb: 0.5, MaxDrops: 4, DelayProb: 0.3, MaxDelay: 50 * time.Microsecond}
	wrap := WrapTransport(dfs.Local(cluster), 7, prof)

	// Disarmed: pass-through, nothing injected.
	for i := 0; i < 50; i++ {
		if _, err := wrap.Lookup(ctx, "f", 0, "k"); err != nil {
			t.Fatalf("disarmed wrapper injected: %v", err)
		}
	}
	if wrap.Drops() != 0 || wrap.Delays() != 0 {
		t.Fatalf("disarmed wrapper recorded drops=%d delays=%d", wrap.Drops(), wrap.Delays())
	}

	wrap.Arm()
	drops := 0
	for i := 0; i < 200; i++ {
		_, err := wrap.Lookup(ctx, "f", 0, "k")
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if lake.IsPermanent(err) {
				t.Fatalf("injected drop classified permanent: %v", err)
			}
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("armed wrapper at 50% drop prob injected nothing in 200 calls")
	}
	if drops > prof.MaxDrops {
		t.Fatalf("injected %d drops, budget is %d", drops, prof.MaxDrops)
	}
	if int(wrap.Drops()) != drops {
		t.Fatalf("Drops() = %d, observed %d", wrap.Drops(), drops)
	}

	// Appends are never dropped, only delayed.
	for i := 0; i < 100; i++ {
		if err := wrap.Append(ctx, "f", 0, []lake.Record{{Key: "a", Data: nil}}); err != nil {
			t.Fatalf("append dropped by transport chaos: %v", err)
		}
	}

	wrap.Disarm()
	for i := 0; i < 50; i++ {
		if _, err := wrap.Lookup(ctx, "f", 0, "k"); err != nil {
			t.Fatalf("disarmed wrapper injected: %v", err)
		}
	}
}
