package chaos

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/sim"
)

func testTarget() Target {
	return Target{
		Nodes: 3,
		Files: []FileInfo{{Name: "a", Partitions: 4}, {Name: "b", Partitions: 6}},
	}
}

// TestCompileDeterministic is the foundation of reproduce-from-seed: the
// same seed must always compile to the identical schedule, and nearby seeds
// must not all collapse to the same one.
func TestCompileDeterministic(t *testing.T) {
	tgt := testTarget()
	a := Compile(42, tgt, Profile{})
	b := Compile(42, tgt, Profile{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	distinct := false
	for seed := int64(1); seed <= 20; seed++ {
		if !reflect.DeepEqual(Compile(seed, tgt, Profile{}), a) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("20 different seeds all compiled to the same schedule")
	}
	// Heal budgets stay within the profile cap (the oracle's MaxRetries
	// sizing depends on it).
	prof := DefaultProfile()
	for seed := int64(0); seed < 50; seed++ {
		s := Compile(seed, tgt, prof)
		for _, f := range s.Faults {
			if f.Heals < 1 || f.Heals > prof.MaxHeals {
				t.Fatalf("seed %d: fault heals = %d, want 1..%d", seed, f.Heals, prof.MaxHeals)
			}
		}
	}
}

// TestArmDisarmRoundTrip checks an armed fault actually fires with a
// retryable error, heals after its budget, and that Disarm clears whatever
// is still pending.
func TestArmDisarmRoundTrip(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2, Cost: sim.CostModel{LookupLatency: time.Nanosecond, QueueDepth: 8}})
	f, err := c.CreateFile("a", dfs.Btree, 2, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	k := keycodec.Int64(1)
	if err := f.Append(ctx, 0, lake.Record{Key: k, Data: []byte("v")}); err != nil {
		t.Fatal(err)
	}

	s := &Schedule{
		Seed:     7,
		Faults:   []Fault{{File: "a", Partition: 0, Heals: 2}},
		Delays:   []Delay{{Node: 0, FromCall: 1, ToCall: 10, Factor: 2}},
		Squeezes: []Squeeze{{Node: 1, Slots: 3}},
	}
	armed, err := s.Arm(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, err := f.Lookup(ctx, 0, k)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("access %d: err = %v, want ErrInjected", i, err)
		}
		if lake.IsPermanent(err) {
			t.Fatalf("injected fault is permanent — the executor would never retry it")
		}
	}
	if _, err := f.Lookup(ctx, 0, k); err != nil {
		t.Fatalf("fault did not heal after its budget: %v", err)
	}
	armed.Disarm()
	armed.Disarm() // idempotent

	// After disarm: the squeeze released its slots and the hook is gone.
	if n, rel := c.NodeGate(1).Hold(3); n != 3 {
		t.Errorf("after disarm Hold(3) on squeezed node took %d, want 3", n)
	} else {
		rel()
	}

	// Re-arming a fresh schedule still works (fault partition reusable).
	armed2, err := (&Schedule{Seed: 8, Faults: []Fault{{File: "a", Partition: 0, Heals: 1}}}).Arm(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lookup(ctx, 0, k); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-armed fault did not fire: %v", err)
	}
	armed2.Disarm()
	if _, err := f.Lookup(ctx, 0, k); err != nil {
		t.Fatalf("disarm left a fault pending: %v", err)
	}
}

// TestArmUnknownFileFails checks a schedule naming a missing file reports
// the arming error instead of silently skipping the fault.
func TestArmUnknownFileFails(t *testing.T) {
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	s := &Schedule{Seed: 1, Faults: []Fault{{File: "ghost", Partition: 0, Heals: 1}}}
	if _, err := s.Arm(c); err == nil {
		t.Fatal("arming a fault on a missing file succeeded")
	}
}

// TestArmOnFreeClusterSkipsGateEvents checks latency and squeeze events are
// no-ops on a cost-free cluster (nil gates) while faults still arm.
func TestArmOnFreeClusterSkipsGateEvents(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	f, err := c.CreateFile("a", dfs.Heap, 1, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	s := &Schedule{
		Seed:     3,
		Faults:   []Fault{{File: "a", Partition: 0, Heals: 1}},
		Delays:   []Delay{{Node: 0, FromCall: 1, ToCall: 5, Factor: 100}},
		Squeezes: []Squeeze{{Node: 0, Slots: 4}},
	}
	armed, err := s.Arm(c)
	if err != nil {
		t.Fatal(err)
	}
	defer armed.Disarm()
	if _, err := f.Lookup(ctx, 0, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("fault on free cluster did not fire: %v", err)
	}
}

// TestShrinkFindsMinimalRepro drives the shrinker with a synthetic failure
// that depends on exactly one fault out of a busy schedule: the result must
// contain just that fault.
func TestShrinkFindsMinimalRepro(t *testing.T) {
	s := Compile(1234, testTarget(), Profile{FaultProb: 1, MaxHeals: 3, BrownoutProb: 1, SpikeProb: 1, MaxSpike: time.Millisecond, SqueezeProb: 1})
	if s.Events() < 10 {
		t.Fatalf("dense profile compiled only %d events", s.Events())
	}
	culprit := Fault{File: "b", Partition: 3}
	calls := 0
	fails := func(cand *Schedule) bool {
		calls++
		for _, f := range cand.Faults {
			if f.File == culprit.File && f.Partition == culprit.Partition {
				return true
			}
		}
		return false
	}
	min := Shrink(s, fails)
	if min.Events() != 1 || len(min.Faults) != 1 {
		t.Fatalf("shrunk to %d events (%s), want exactly the culprit fault", min.Events(), min)
	}
	if min.Faults[0].File != culprit.File || min.Faults[0].Partition != culprit.Partition {
		t.Fatalf("shrunk to wrong event: %s", min)
	}
	if calls == 0 {
		t.Fatal("predicate never invoked")
	}
	// A failure independent of chaos shrinks to the empty schedule.
	empty := Shrink(s, func(*Schedule) bool { return true })
	if empty.Events() != 0 {
		t.Fatalf("chaos-independent failure shrank to %d events, want 0", empty.Events())
	}
	// A failure needing TWO events keeps both.
	two := Shrink(s, func(cand *Schedule) bool {
		hasFault := false
		for _, f := range cand.Faults {
			if f.File == "a" && f.Partition == 0 {
				hasFault = true
			}
		}
		return hasFault && len(cand.Squeezes) > 0
	})
	if len(two.Faults) != 1 || len(two.Squeezes) != 1 || two.Events() != 2 {
		t.Fatalf("two-event failure shrank to %s", two)
	}
}

// TestScheduleStringMentionsEverything keeps the repro line informative.
func TestScheduleStringMentionsEverything(t *testing.T) {
	s := &Schedule{
		Seed:     9,
		Faults:   []Fault{{File: "a", Partition: 1, Heals: 2}},
		Delays:   []Delay{{Node: 0, FromCall: 1, ToCall: 3, Add: time.Millisecond, Factor: 1}, {Node: 1, FromCall: 5, ToCall: 50, Factor: 4}},
		Squeezes: []Squeeze{{Node: 2, Slots: 6}},
	}
	str := s.String()
	for _, want := range []string{"seed=9", "fault:a/1×2", "spike:n0", "brownout:n1", "squeeze:n2-6"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
	if got := s.TotalHeals(); got != 2 {
		t.Errorf("TotalHeals = %d, want 2", got)
	}
}
