package chaos

// The transport arm of the chaos layer: where chaos.Schedule injects faults
// into the *sim* cluster through dfs hooks, WrapTransport interposes on the
// real data plane — a proxying dfs.NodeTransport that injects drops and
// delays between the executor and a node (in-process sim node or a live
// nodenet client alike). Injected drops are ErrInjected, i.e. transient, so
// the executor's retry machinery must heal them; the drop budget is bounded
// so an oracle can size Options.MaxRetries to out-wait the wrapper the same
// way it out-waits a Schedule's TotalHeals.
//
// Unlike a compiled Schedule, the wrapper's injections are seeded but not
// call-exact: over real sockets the interleaving of concurrent RPCs is not
// deterministic, so per-call randomness (bounded by the budget) is the
// honest model. The same seed still yields the same injection *sequence* —
// only its assignment to racing calls varies.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// TransportProfile tunes injection density at the transport seam. The zero
// value selects DefaultTransportProfile.
type TransportProfile struct {
	// DropProb is the per-read-op probability of an injected transient
	// failure (the RPC fails before reaching the node). Append and catalog
	// ops are never dropped: they are not retried by every caller, and a
	// drop after partial execution could not be told apart from one before.
	DropProb float64
	// MaxDrops bounds total injected drops for the wrapper's lifetime, so
	// retry budgets can be sized against it.
	MaxDrops int
	// DelayProb is the per-op probability of an injected latency spike
	// (any op, including appends — slowness is always safe).
	DelayProb float64
	// MaxDelay caps one injected spike.
	MaxDelay time.Duration
}

// DefaultTransportProfile mirrors the sim profile's spirit: frequent enough
// to shuffle schedules and exercise retries, bounded enough that a job with
// a sized retry budget always completes.
func DefaultTransportProfile() TransportProfile {
	return TransportProfile{
		DropProb:  0.08,
		MaxDrops:  6,
		DelayProb: 0.15,
		MaxDelay:  300 * time.Microsecond,
	}
}

// TransportChaos is a proxying NodeTransport that perturbs calls to an
// inner transport while armed. The zero state is disarmed: calls pass
// through untouched until Arm.
type TransportChaos struct {
	inner dfs.NodeTransport
	prof  TransportProfile

	armed  atomic.Bool
	budget atomic.Int64 // remaining drops
	drops  atomic.Int64 // injected drops so far
	delays atomic.Int64 // injected delays so far

	mu  sync.Mutex
	rng *rand.Rand
}

var _ dfs.NodeTransport = (*TransportChaos)(nil)

// WrapTransport interposes a chaos proxy on inner. The wrapper starts
// disarmed; Arm turns injection on.
func WrapTransport(inner dfs.NodeTransport, seed int64, prof TransportProfile) *TransportChaos {
	if prof == (TransportProfile{}) {
		prof = DefaultTransportProfile()
	}
	t := &TransportChaos{
		inner: inner,
		prof:  prof,
		rng:   rand.New(rand.NewSource(seed)),
	}
	t.budget.Store(int64(prof.MaxDrops))
	return t
}

// Arm enables injection.
func (t *TransportChaos) Arm() { t.armed.Store(true) }

// Disarm stops injection; in-flight calls finish with whatever perturbation
// they already drew.
func (t *TransportChaos) Disarm() { t.armed.Store(false) }

// Drops reports how many calls the wrapper failed.
func (t *TransportChaos) Drops() int64 { return t.drops.Load() }

// Delays reports how many calls the wrapper slowed down.
func (t *TransportChaos) Delays() int64 { return t.delays.Load() }

// MaxDrops returns the wrapper's total drop budget, for sizing retries.
func (t *TransportChaos) MaxDrops() int { return t.prof.MaxDrops }

// perturb draws this call's injection: an optional delay (slept here) and,
// for droppable ops, an optional transient failure.
func (t *TransportChaos) perturb(op string, droppable bool) error {
	if !t.armed.Load() {
		return nil
	}
	t.mu.Lock()
	delay := time.Duration(0)
	if t.prof.DelayProb > 0 && t.rng.Float64() < t.prof.DelayProb {
		delay = time.Duration(t.rng.Int63n(int64(t.prof.MaxDelay))) + time.Microsecond
	}
	drop := droppable && t.prof.DropProb > 0 && t.rng.Float64() < t.prof.DropProb
	t.mu.Unlock()
	if delay > 0 {
		t.delays.Add(1)
		time.Sleep(delay)
	}
	if drop && t.budget.Add(-1) >= 0 {
		t.drops.Add(1)
		return fmt.Errorf("%w: transport %s", ErrInjected, op)
	}
	return nil
}

func (t *TransportChaos) CreateFile(ctx context.Context, name string, kind dfs.Kind, partitions int, p lake.Partitioner) error {
	if err := t.perturb("create", false); err != nil {
		return err
	}
	return t.inner.CreateFile(ctx, name, kind, partitions, p)
}

func (t *TransportChaos) DropFile(ctx context.Context, name string) error {
	if err := t.perturb("drop", false); err != nil {
		return err
	}
	return t.inner.DropFile(ctx, name)
}

func (t *TransportChaos) Lookup(ctx context.Context, file string, partition int, key lake.Key) ([]lake.Record, error) {
	if err := t.perturb("lookup", true); err != nil {
		return nil, err
	}
	return t.inner.Lookup(ctx, file, partition, key)
}

func (t *TransportChaos) LookupBatch(ctx context.Context, file string, partition int, keys []lake.Key) ([][]lake.Record, error) {
	if err := t.perturb("batch", true); err != nil {
		return nil, err
	}
	return t.inner.LookupBatch(ctx, file, partition, keys)
}

func (t *TransportChaos) LookupRange(ctx context.Context, file string, partition int, lo, hi lake.Key) ([]lake.Record, error) {
	if err := t.perturb("range", true); err != nil {
		return nil, err
	}
	return t.inner.LookupRange(ctx, file, partition, lo, hi)
}

func (t *TransportChaos) Scan(ctx context.Context, file string, partition int, fn func(lake.Record) error) error {
	if err := t.perturb("scan", true); err != nil {
		return err
	}
	return t.inner.Scan(ctx, file, partition, fn)
}

func (t *TransportChaos) Append(ctx context.Context, file string, partition int, recs []lake.Record) error {
	// Delays only: a dropped append is indistinguishable from a failed one
	// and appends are not universally retried.
	if err := t.perturb("append", false); err != nil {
		return err
	}
	return t.inner.Append(ctx, file, partition, recs)
}

func (t *TransportChaos) Stat(ctx context.Context, file string, partition int) (int, int64, error) {
	if err := t.perturb("stat", true); err != nil {
		return 0, 0, err
	}
	return t.inner.Stat(ctx, file, partition)
}

func (t *TransportChaos) Close() error { return t.inner.Close() }
