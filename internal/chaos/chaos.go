// Package chaos compiles seeded, deterministic fault schedules and arms
// them against a simulated dfs cluster.
//
// The design follows deterministic simulation testing (FoundationDB and its
// Record Layer): every run is driven by a single int64 seed, the seed fully
// determines the fault schedule — which partitions fail, how many accesses
// each fault survives, which nodes get latency brownouts, spikes, or
// queue-depth squeezes — and a failure anywhere reproduces by re-running the
// same seed. The schedule's faults are all *healable*: transient partition
// faults carry an access budget (consumed per key, see dfs), and latency
// events only slow I/O down, so a correct executor configured with enough
// retries must still produce exactly the right answer under any schedule.
// The differential oracle (internal/oracle) is the consumer: it runs the
// same job with and without a schedule armed and diffs the results.
//
// A Schedule arms through public hooks only — dfs.Cluster.SetTransientFault
// for faults, sim.Gate.SetDelayHook for latency events, sim.Gate.Hold for
// queue squeezes — so production code paths are exercised unmodified.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lakeharbor/internal/dfs"
)

// ErrInjected is the root of every fault error a schedule injects. It is
// deliberately NOT permanent (lake.AsPermanent): injected faults model flaky
// disks and brief partitions, which the executor's retry path must heal.
var ErrInjected = errors.New("chaos: injected transient fault")

// Target describes the cluster surface a schedule is compiled against. The
// order of Files is part of the schedule's identity: compilation draws
// random numbers in Target iteration order, so the same seed against the
// same target always yields the same schedule.
type Target struct {
	// Nodes is the cluster size.
	Nodes int
	// Files lists the files (and their partition counts) eligible for
	// partition faults.
	Files []FileInfo
}

// FileInfo names one faultable file.
type FileInfo struct {
	Name       string
	Partitions int
}

// Profile tunes schedule density. The zero value selects DefaultProfile.
type Profile struct {
	// FaultProb is the per-(file, partition) probability of a transient
	// fault.
	FaultProb float64
	// MaxHeals caps one fault's heal budget (accesses that fail before the
	// fault heals). The oracle sizes Options.MaxRetries from the schedule's
	// TotalHeals, so the cap bounds how patient the executor must be.
	MaxHeals int
	// BrownoutProb is the per-node probability of a latency brownout
	// window (a sustained multiplier over a span of accesses).
	BrownoutProb float64
	// SpikeProb is the per-node probability of a latency spike (a large
	// additive delay over a few accesses).
	SpikeProb float64
	// MaxSpike caps a spike's added latency.
	MaxSpike time.Duration
	// SqueezeProb is the per-node probability of a queue-depth squeeze
	// (admission slots held for the whole armed window).
	SqueezeProb float64
}

// DefaultProfile returns the density used by the oracle and chaosbench:
// roughly one fault per few partitions and one latency event per few nodes,
// spiky enough to shuffle interleavings without making runs crawl.
func DefaultProfile() Profile {
	return Profile{
		FaultProb:    0.35,
		MaxHeals:     3,
		BrownoutProb: 0.4,
		SpikeProb:    0.4,
		MaxSpike:     500 * time.Microsecond,
		SqueezeProb:  0.3,
	}
}

// Fault is one transient partition fault: the partition's next Heals key
// accesses fail with ErrInjected, then the fault heals itself.
type Fault struct {
	File      string
	Partition int
	Heals     int
}

// Delay is one latency event on a node: I/Os numbered [FromCall, ToCall]
// (1-based, counted per node) have their modeled service time multiplied by
// Factor (when > 0) and then increased by Add. A long window with a small
// factor is a brownout; a short window with a large Add is a spike.
type Delay struct {
	Node     int
	FromCall int64
	ToCall   int64
	Factor   float64
	Add      time.Duration
}

// Squeeze holds Slots of a node's admission queue for the whole armed
// window, shrinking the concurrency its storage path can absorb.
type Squeeze struct {
	Node  int
	Slots int
}

// Schedule is a compiled, seed-determined set of chaos events.
type Schedule struct {
	Seed     int64
	Faults   []Fault
	Delays   []Delay
	Squeezes []Squeeze
}

// Compile derives the schedule for seed against the target. It is a pure
// function: same seed, same target, same profile → identical schedule.
func Compile(seed int64, tgt Target, prof Profile) *Schedule {
	if prof == (Profile{}) {
		prof = DefaultProfile()
	}
	if prof.MaxHeals <= 0 {
		prof.MaxHeals = DefaultProfile().MaxHeals
	}
	if prof.MaxSpike <= 0 {
		prof.MaxSpike = DefaultProfile().MaxSpike
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed}
	for _, f := range tgt.Files {
		for p := 0; p < f.Partitions; p++ {
			if rng.Float64() < prof.FaultProb {
				s.Faults = append(s.Faults, Fault{
					File:      f.Name,
					Partition: p,
					Heals:     1 + rng.Intn(prof.MaxHeals),
				})
			}
		}
	}
	for n := 0; n < tgt.Nodes; n++ {
		if rng.Float64() < prof.BrownoutProb {
			from := 1 + rng.Int63n(50)
			s.Delays = append(s.Delays, Delay{
				Node:     n,
				FromCall: from,
				ToCall:   from + 10 + rng.Int63n(90),
				Factor:   2 + 8*rng.Float64(),
			})
		}
		if rng.Float64() < prof.SpikeProb {
			from := 1 + rng.Int63n(100)
			s.Delays = append(s.Delays, Delay{
				Node:     n,
				FromCall: from,
				ToCall:   from + rng.Int63n(3),
				Factor:   1,
				Add:      time.Duration(rng.Int63n(int64(prof.MaxSpike))) + time.Microsecond,
			})
		}
		if rng.Float64() < prof.SqueezeProb {
			s.Squeezes = append(s.Squeezes, Squeeze{Node: n, Slots: 1 + rng.Intn(8)})
		}
	}
	return s
}

// Events reports how many events the schedule carries.
func (s *Schedule) Events() int {
	return len(s.Faults) + len(s.Delays) + len(s.Squeezes)
}

// TotalHeals sums every fault's heal budget. An executor running with
// Options.MaxRetries >= TotalHeals is guaranteed to out-wait the schedule:
// even if one unlucky invocation absorbs every injected failure, it still
// has a retry left for the healed attempt.
func (s *Schedule) TotalHeals() int {
	total := 0
	for _, f := range s.Faults {
		total += f.Heals
	}
	return total
}

// String renders the schedule compactly for repro logs.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos(seed=%d", s.Seed)
	for _, f := range s.Faults {
		fmt.Fprintf(&b, " fault:%s/%d×%d", f.File, f.Partition, f.Heals)
	}
	for _, d := range s.Delays {
		if d.Add > 0 {
			fmt.Fprintf(&b, " spike:n%d@%d-%d+%v", d.Node, d.FromCall, d.ToCall, d.Add)
		} else {
			fmt.Fprintf(&b, " brownout:n%d@%d-%d×%.1f", d.Node, d.FromCall, d.ToCall, d.Factor)
		}
	}
	for _, q := range s.Squeezes {
		fmt.Fprintf(&b, " squeeze:n%d-%d", q.Node, q.Slots)
	}
	b.WriteString(")")
	return b.String()
}

// Armed is a schedule installed on a cluster; Disarm restores the cluster.
type Armed struct {
	cluster  *dfs.Cluster
	schedule *Schedule
	releases []func()
	hooked   []int
	disarmed atomic.Bool
}

// Arm installs the schedule on the cluster: transient faults on partitions,
// delay hooks and held admission slots on node gates. Latency events and
// squeezes are skipped silently on a free-cost cluster (no gates — nothing
// to slow down), faults always apply. Arm fails if a fault names a file or
// partition the cluster does not have.
func (s *Schedule) Arm(c *dfs.Cluster) (*Armed, error) {
	a := &Armed{cluster: c, schedule: s}
	for _, f := range s.Faults {
		err := c.SetTransientFault(f.File, f.Partition,
			fmt.Errorf("%w: %s/%d", ErrInjected, f.File, f.Partition), f.Heals)
		if err != nil {
			a.Disarm()
			return nil, fmt.Errorf("chaos: arm fault %s/%d: %w", f.File, f.Partition, err)
		}
	}
	byNode := make(map[int][]Delay)
	for _, d := range s.Delays {
		byNode[d.Node] = append(byNode[d.Node], d)
	}
	// Install hooks in node order so arming is as deterministic as the
	// schedule itself.
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		g := c.NodeGate(n)
		if g == nil {
			continue
		}
		evs := byNode[n]
		var calls atomic.Int64
		g.SetDelayHook(func(d time.Duration) time.Duration {
			call := calls.Add(1)
			for _, ev := range evs {
				if call < ev.FromCall || call > ev.ToCall {
					continue
				}
				if ev.Factor > 0 {
					d = time.Duration(float64(d) * ev.Factor)
				}
				d += ev.Add
			}
			return d
		})
		a.hooked = append(a.hooked, n)
	}
	for _, q := range s.Squeezes {
		g := c.NodeGate(q.Node)
		if g == nil {
			continue
		}
		// Never hold the whole queue: a zero-slot gate would block every
		// I/O on the node forever — chaos must degrade service, not
		// deadlock it.
		slots := q.Slots
		if depth := c.Cost().QueueDepth; depth > 0 && slots > depth-1 {
			slots = depth - 1
		}
		if slots <= 0 {
			continue
		}
		_, release := g.Hold(slots)
		a.releases = append(a.releases, release)
	}
	return a, nil
}

// Disarm removes every installed event: pending transient faults are
// cleared, delay hooks uninstalled, held admission slots released. It is
// idempotent.
func (a *Armed) Disarm() {
	if !a.disarmed.CompareAndSwap(false, true) {
		return
	}
	for _, f := range a.schedule.Faults {
		// Ignore errors: a fault that failed to arm (or a file dropped by
		// the scenario) has nothing to clear.
		_ = a.cluster.SetFault(f.File, f.Partition, nil)
	}
	for _, n := range a.hooked {
		if g := a.cluster.NodeGate(n); g != nil {
			g.SetDelayHook(nil)
		}
	}
	for _, release := range a.releases {
		release()
	}
}
