package chaos

// The shrinker reduces a failing schedule to a minimal reproduction. When
// the oracle finds a seed whose chaos run diverges, the raw schedule may
// carry a dozen events of which one or two actually matter; Shrink runs the
// failure predicate against ever-smaller subsets (delta debugging, ddmin)
// until no single event can be removed without the failure disappearing.
// A divergence that shrinks to the EMPTY schedule is itself diagnostic: the
// bug does not depend on injected chaos at all.

// event is one schedule entry of any kind, for uniform subset handling.
type event struct {
	fault   *Fault
	delay   *Delay
	squeeze *Squeeze
}

func flatten(s *Schedule) []event {
	evs := make([]event, 0, s.Events())
	for i := range s.Faults {
		evs = append(evs, event{fault: &s.Faults[i]})
	}
	for i := range s.Delays {
		evs = append(evs, event{delay: &s.Delays[i]})
	}
	for i := range s.Squeezes {
		evs = append(evs, event{squeeze: &s.Squeezes[i]})
	}
	return evs
}

func rebuild(seed int64, evs []event) *Schedule {
	s := &Schedule{Seed: seed}
	for _, e := range evs {
		switch {
		case e.fault != nil:
			s.Faults = append(s.Faults, *e.fault)
		case e.delay != nil:
			s.Delays = append(s.Delays, *e.delay)
		case e.squeeze != nil:
			s.Squeezes = append(s.Squeezes, *e.squeeze)
		}
	}
	return s
}

// Shrink returns a minimal sub-schedule for which fails still reports true.
// fails must be deterministic enough to re-observe the failure when its
// cause is still armed (the oracle re-runs the whole differential check).
// If the failure reproduces with no events at all, the empty schedule is
// returned immediately. fails is invoked O(n log n)–O(n²) times for n
// events; schedules are small (tens of events), so this stays cheap
// relative to one oracle scenario.
func Shrink(s *Schedule, fails func(*Schedule) bool) *Schedule {
	events := flatten(s)
	if len(events) == 0 {
		return s
	}
	if empty := rebuild(s.Seed, nil); fails(empty) {
		return empty
	}
	// ddmin: partition into n chunks; try each complement (drop one chunk);
	// on success recurse on the reduced set, else refine granularity.
	n := 2
	for len(events) >= 2 {
		chunk := (len(events) + n - 1) / n
		reduced := false
		for start := 0; start < len(events); start += chunk {
			end := start + chunk
			if end > len(events) {
				end = len(events)
			}
			complement := make([]event, 0, len(events)-(end-start))
			complement = append(complement, events[:start]...)
			complement = append(complement, events[end:]...)
			if len(complement) == 0 {
				continue // the empty schedule was already tested
			}
			if fails(rebuild(s.Seed, complement)) {
				events = complement
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(events) {
				break // single-event granularity exhausted: minimal
			}
			n *= 2
			if n > len(events) {
				n = len(events)
			}
		}
	}
	return rebuild(s.Seed, events)
}
