package keycodec

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{math.MinInt64, -1e12, -2, -1, 0, 1, 2, 42, 1e12, math.MaxInt64} {
		got, err := DecodeInt64(Int64(v))
		if err != nil {
			t.Fatalf("DecodeInt64(Int64(%d)): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestInt64OrderPreserving(t *testing.T) {
	if err := quick.Check(func(a, b int64) bool {
		return (a < b) == (Int64(a) < Int64(b))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64RoundTripAndOrder(t *testing.T) {
	if err := quick.Check(func(a, b uint64) bool {
		ra, err := DecodeUint64(Uint64(a))
		if err != nil || ra != a {
			return false
		}
		return (a < b) == (Uint64(a) < Uint64(b))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	for _, v := range []float64{math.Inf(-1), -math.MaxFloat64, -1.5, -math.SmallestNonzeroFloat64, 0, math.SmallestNonzeroFloat64, 1.5, math.MaxFloat64, math.Inf(1)} {
		got, err := DecodeFloat64(Float64(v))
		if err != nil {
			t.Fatalf("DecodeFloat64: %v", err)
		}
		if got != v {
			t.Errorf("round trip %g -> %g", v, got)
		}
	}
}

func TestFloat64OrderPreserving(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN ordering unspecified
		}
		if a == b {
			// -0 and +0 encode distinctly; only require consistency.
			return true
		}
		return (a < b) == (Float64(a) < Float64(b))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{"", "a", "abc", "a\x00b", "\x00", "\x00\x00", "\xff", "日本語", strings.Repeat("\x00\xff", 10)}
	for _, s := range cases {
		enc := String(s)
		got, n, err := DecodeString(enc)
		if err != nil {
			t.Fatalf("DecodeString(%q): %v", s, err)
		}
		if got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		if n != len(enc) {
			t.Errorf("consumed %d of %d bytes for %q", n, len(enc), s)
		}
	}
}

func TestStringOrderPreserving(t *testing.T) {
	if err := quick.Check(func(a, b string) bool {
		return (a < b) == (String(a) < String(b))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripQuick(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		got, n, err := DecodeString(String(s))
		return err == nil && got == s && n == len(String(s))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeInt64("short"); err == nil {
		t.Error("DecodeInt64(short) should fail")
	}
	if _, err := DecodeUint64("123456789"); err == nil {
		t.Error("DecodeUint64(9 bytes) should fail")
	}
	if _, err := DecodeFloat64(""); err == nil {
		t.Error("DecodeFloat64(empty) should fail")
	}
	if _, _, err := DecodeString("abc"); err == nil {
		t.Error("DecodeString without terminator should fail")
	}
	if _, _, err := DecodeString("abc\x00"); err == nil {
		t.Error("DecodeString with truncated escape should fail")
	}
	if _, _, err := DecodeString("abc\x00\x02"); err == nil {
		t.Error("DecodeString with bad escape should fail")
	}
}

func TestTupleOrderPreserving(t *testing.T) {
	// Tuples of (string, int64) compare like their lexicographic pair order.
	if err := quick.Check(func(s1 string, i1 int64, s2 string, i2 int64) bool {
		t1 := Tuple(String(s1), Int64(i1))
		t2 := Tuple(String(s2), Int64(i2))
		want := s1 < s2 || (s1 == s2 && i1 < i2)
		return (t1 < t2) == want
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleDecodeElementwise(t *testing.T) {
	enc := Tuple(String("order"), Int64(42))
	s, n, err := DecodeString(enc)
	if err != nil || s != "order" {
		t.Fatalf("first element: %q, %v", s, err)
	}
	v, err := DecodeInt64(enc[n:])
	if err != nil || v != 42 {
		t.Fatalf("second element: %d, %v", v, err)
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"a", "b"},
		{"az", "a{"},
		{"a\xff", "b"},
		{"\xff\xff", ""},
	}
	for _, c := range cases {
		if got := PrefixSuccessor(c.in); got != c.want {
			t.Errorf("PrefixSuccessor(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrefixSuccessorBoundsPrefixRange(t *testing.T) {
	if err := quick.Check(func(prefix, rest string) bool {
		succ := PrefixSuccessor(prefix)
		s := prefix + rest
		if succ == "" {
			return s >= prefix
		}
		return s >= prefix && s < succ
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSortedEncodedKeysMatchValueOrder(t *testing.T) {
	vals := []int64{5, -3, 99, 0, -88, 7, 7, 2}
	enc := make([]string, len(vals))
	for i, v := range vals {
		enc[i] = Int64(v)
	}
	sort.Strings(enc)
	prev := int64(math.MinInt64)
	for _, e := range enc {
		v, err := DecodeInt64(e)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("sorted encodings decode out of order: %d after %d", v, prev)
		}
		prev = v
	}
}

func BenchmarkInt64Encode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Int64(int64(i))
	}
}

func BenchmarkStringEncode(b *testing.B) {
	s := "a-representative-key-with-some-length"
	for i := 0; i < b.N; i++ {
		String(s)
	}
}

func BenchmarkTupleEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Tuple(Int64(int64(i)), Int64(int64(i%7)))
	}
}
