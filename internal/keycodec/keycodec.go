// Package keycodec provides order-preserving encodings of scalar values and
// tuples into byte strings.
//
// ReDe stores every key — primary keys, secondary-index keys, partition
// keys — as a lake.Key, which is an opaque byte string compared
// lexicographically. keycodec guarantees that for two values a and b of the
// same type, a < b if and only if Encode(a) < Encode(b) as byte strings.
// That property lets a single B-tree implementation index integers, floats,
// dates, and strings, and lets composite keys be built by concatenation.
//
// Encodings:
//
//   - int64: offset-binary (sign bit flipped) big-endian, 8 bytes.
//   - uint64: big-endian, 8 bytes.
//   - float64: IEEE-754 bits, sign-flipped for positives / fully inverted
//     for negatives (the standard order-preserving float trick), 8 bytes.
//   - string: the bytes themselves, with 0x00 escaped as 0x00 0xFF and
//     terminated by 0x00 0x01 so that tuple concatenation remains
//     order-preserving and unambiguous.
//
// Tuples are the concatenation of their elements' encodings; fixed-width
// elements are self-delimiting and strings carry their own terminator.
package keycodec

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Int64 encodes v so that byte-wise comparison matches signed comparison.
func Int64(v int64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v)^(1<<63))
	return string(b[:])
}

// DecodeInt64 reverses Int64. It returns an error if s is not exactly the
// 8-byte encoding produced by Int64.
func DecodeInt64(s string) (int64, error) {
	if len(s) != 8 {
		return 0, fmt.Errorf("keycodec: int64 key has length %d, want 8", len(s))
	}
	u := binary.BigEndian.Uint64([]byte(s))
	return int64(u ^ (1 << 63)), nil
}

// Uint64 encodes v big-endian so byte-wise comparison matches unsigned
// comparison.
func Uint64(v uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return string(b[:])
}

// DecodeUint64 reverses Uint64.
func DecodeUint64(s string) (uint64, error) {
	if len(s) != 8 {
		return 0, fmt.Errorf("keycodec: uint64 key has length %d, want 8", len(s))
	}
	return binary.BigEndian.Uint64([]byte(s)), nil
}

// Float64 encodes v so that byte-wise comparison matches IEEE-754 total
// order on the reals (NaNs sort after +Inf; -0 and +0 encode distinctly but
// adjacent).
func Float64(v float64) string {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative: invert all so more-negative sorts first
	} else {
		bits |= 1 << 63 // positive: set sign so positives sort after negatives
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], bits)
	return string(b[:])
}

// DecodeFloat64 reverses Float64.
func DecodeFloat64(s string) (float64, error) {
	if len(s) != 8 {
		return 0, fmt.Errorf("keycodec: float64 key has length %d, want 8", len(s))
	}
	bits := binary.BigEndian.Uint64([]byte(s))
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), nil
}

// String terminator and escape bytes. A raw 0x00 inside the string is
// escaped to 0x00 0xFF; the terminator 0x00 0x01 sorts below any escaped
// byte, so "a" < "a\x00b" < "ab" holds after encoding, matching Go string
// order.
const (
	strTerm1 = 0x00
	strTerm2 = 0x01
	strEsc2  = 0xFF
)

// String encodes s with escaping and a terminator so that concatenated
// tuple encodings remain order-preserving.
func String(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == 0x00 {
			b.WriteByte(0x00)
			b.WriteByte(strEsc2)
			continue
		}
		b.WriteByte(c)
	}
	b.WriteByte(strTerm1)
	b.WriteByte(strTerm2)
	return b.String()
}

// DecodeString reverses String, returning the decoded value and the number
// of encoded bytes consumed (so tuples can be decoded element-wise).
func DecodeString(enc string) (val string, n int, err error) {
	var b strings.Builder
	for i := 0; i < len(enc); i++ {
		c := enc[i]
		if c != 0x00 {
			b.WriteByte(c)
			continue
		}
		if i+1 >= len(enc) {
			return "", 0, fmt.Errorf("keycodec: truncated string key")
		}
		switch enc[i+1] {
		case strTerm2:
			return b.String(), i + 2, nil
		case strEsc2:
			b.WriteByte(0x00)
			i++
		default:
			return "", 0, fmt.Errorf("keycodec: invalid escape 0x00 0x%02x", enc[i+1])
		}
	}
	return "", 0, fmt.Errorf("keycodec: unterminated string key")
}

// Tuple concatenates already-encoded elements into a composite key. It is a
// convenience for readability at call sites.
func Tuple(elems ...string) string {
	switch len(elems) {
	case 0:
		return ""
	case 1:
		return elems[0]
	}
	var b strings.Builder
	n := 0
	for _, e := range elems {
		n += len(e)
	}
	b.Grow(n)
	for _, e := range elems {
		b.WriteString(e)
	}
	return b.String()
}

// PrefixSuccessor returns the smallest string greater than every string with
// the given prefix, or "" if no such string exists (prefix is all 0xFF).
// It is used to turn a prefix match into a half-open key range
// [prefix, PrefixSuccessor(prefix)).
func PrefixSuccessor(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}
