package keycodec

import (
	"math"
	"testing"
)

// FuzzKeycodecRoundTrip fuzzes the package's two contracts at once:
// encode/decode identity for every scalar codec, and the order-preservation
// guarantee (byte order of encodings ⇔ value order) that the B-tree, the
// range partitioner, and every range dereference silently rely on —
// including across composite (tuple) keys.
func FuzzKeycodecRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(1), uint64(0), uint64(1), 0.0, 1.0, "", "a")
	f.Add(int64(-1), int64(math.MaxInt64), uint64(math.MaxUint64), uint64(7), -1.5, math.Inf(1), "a\x00b", "a\x00")
	f.Add(int64(math.MinInt64), int64(-1), uint64(1<<63), uint64(1<<63-1), math.Copysign(0, -1), 0.0, "ab", "a\xff")
	f.Add(int64(42), int64(42), uint64(42), uint64(42), math.NaN(), -math.MaxFloat64, "same", "same")
	f.Fuzz(func(t *testing.T, a, b int64, ua, ub uint64, fa, fb float64, sa, sb string) {
		// int64: identity and full order iff.
		ea, eb := Int64(a), Int64(b)
		if got, err := DecodeInt64(ea); err != nil || got != a {
			t.Fatalf("DecodeInt64(Int64(%d)) = %d, %v", a, got, err)
		}
		if (a < b) != (ea < eb) {
			t.Errorf("int64 order broken: %d < %d is %v but enc order is %v", a, b, a < b, ea < eb)
		}

		// uint64: identity and full order iff.
		eua, eub := Uint64(ua), Uint64(ub)
		if got, err := DecodeUint64(eua); err != nil || got != ua {
			t.Fatalf("DecodeUint64(Uint64(%d)) = %d, %v", ua, got, err)
		}
		if (ua < ub) != (eua < eub) {
			t.Errorf("uint64 order broken: %d vs %d", ua, ub)
		}

		// string: identity (with exact consumed length) and full order iff.
		esa, esb := String(sa), String(sb)
		got, n, err := DecodeString(esa)
		if err != nil || got != sa || n != len(esa) {
			t.Fatalf("DecodeString(String(%q)) = %q (n=%d, len=%d), %v", sa, got, n, len(esa), err)
		}
		if (sa < sb) != (esa < esb) {
			t.Errorf("string order broken: %q < %q is %v but enc order is %v", sa, sb, sa < sb, esa < esb)
		}

		// float64: identity (NaN stays NaN, signed zero keeps its sign), and
		// order preservation. The encoding is a total order over IEEE-754
		// bit patterns, so -0 and +0 encode distinctly (adjacent) and NaN
		// sorts after +Inf: assert the two implications valid under that
		// total order instead of a full iff against Go's partial <.
		efa, efb := Float64(fa), Float64(fb)
		dfa, err := DecodeFloat64(efa)
		if err != nil {
			t.Fatalf("DecodeFloat64(Float64(%v)): %v", fa, err)
		}
		if math.IsNaN(fa) {
			if !math.IsNaN(dfa) {
				t.Fatalf("NaN round-tripped to %v", dfa)
			}
		} else if dfa != fa || math.Signbit(dfa) != math.Signbit(fa) {
			t.Fatalf("DecodeFloat64(Float64(%v)) = %v", fa, dfa)
		}
		if !math.IsNaN(fa) && !math.IsNaN(fb) {
			if fa < fb && !(efa < efb) {
				t.Errorf("float64 order broken: %v < %v but encodings are not ordered", fa, fb)
			}
			if efa < efb && fa > fb {
				t.Errorf("float64 order broken: enc(%v) < enc(%v) but value order is reversed", fa, fb)
			}
		}

		// Composite keys: tuple concatenation must order like the
		// lexicographic (string, int64) pair, and decode element-wise.
		ta := Tuple(esa, ea)
		tb := Tuple(esb, eb)
		wantLess := sa < sb || (sa == sb && a < b)
		if (ta < tb) != wantLess {
			t.Errorf("composite order broken: (%q,%d) vs (%q,%d): want less=%v, enc less=%v",
				sa, a, sb, b, wantLess, ta < tb)
		}
		s1, n1, err := DecodeString(ta)
		if err != nil || s1 != sa {
			t.Fatalf("composite first element: %q, %v", s1, err)
		}
		v1, err := DecodeInt64(ta[n1:])
		if err != nil || v1 != a {
			t.Fatalf("composite second element: %d, %v", v1, err)
		}
	})
}
