// Package promtext is a minimal reader for the Prometheus text exposition
// format (version 0.0.4) — just enough for lakectl top and the metrics-lint
// test to consume /debug/metrics endpoints without a client dependency.
// It parses samples and ignores comments; histograms and summaries appear
// as their constituent series (name{quantile="..."}, name_sum, name_count).
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed metric line.
type Sample struct {
	Name   string
	Labels map[string]string // nil when the series is unlabeled
	Value  float64
}

// Label returns the value of one label, or "" when absent.
func (s Sample) Label(key string) string { return s.Labels[key] }

// Parse reads an exposition-format document and returns every sample in
// order. Comment lines (# HELP / # TYPE) and blank lines are skipped;
// a malformed sample line fails the whole parse.
func Parse(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[i+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("want 'name value', got %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	// A timestamp may trail the value; take the first field only.
	if f := strings.Fields(rest); len(f) > 0 {
		rest = f[0]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels decodes `k1="v1",k2="v2"`. Values may contain escaped quotes
// and backslashes per the exposition format.
func parseLabels(in string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(in) > 0 {
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label pair %q", in)
		}
		key := strings.TrimSpace(in[:eq])
		in = in[eq+1:]
		if len(in) == 0 || in[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		in = in[1:]
		var val strings.Builder
		i := 0
		for ; i < len(in); i++ {
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(in[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(in) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels[key] = val.String()
		in = strings.TrimSpace(in[i+1:])
		in = strings.TrimPrefix(in, ",")
		in = strings.TrimSpace(in)
	}
	return labels, nil
}
