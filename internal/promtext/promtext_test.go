package promtext

import (
	"strings"
	"testing"
)

func TestParseMixedDocument(t *testing.T) {
	doc := `# HELP lakeharbor_jobs_total Jobs executed.
# TYPE lakeharbor_jobs_total counter
lakeharbor_jobs_total 42

lakeharbor_uptime_seconds 12.5
lakeharbor_node_rpcs_total{op="scan"} 7
lakeharbor_cluster_rpc_seconds{op="lookup_batch",quantile="0.99"} 0.00123
lakeharbor_y{node="a b",msg="quo\"te"} 1
lakeharbor_ts 3 1700000000
`
	samples, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 6 {
		t.Fatalf("got %d samples, want 6: %+v", len(samples), samples)
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name+s.Label("op")+s.Label("node")] = s
	}
	if s := byName["lakeharbor_jobs_total"]; s.Value != 42 || s.Labels != nil {
		t.Fatalf("plain counter wrong: %+v", s)
	}
	if s := byName["lakeharbor_uptime_seconds"]; s.Value != 12.5 {
		t.Fatalf("float value wrong: %+v", s)
	}
	if s := byName["lakeharbor_node_rpcs_totalscan"]; s.Value != 7 || s.Label("op") != "scan" {
		t.Fatalf("labeled sample wrong: %+v", s)
	}
	if s := byName["lakeharbor_cluster_rpc_secondslookup_batch"]; s.Label("quantile") != "0.99" {
		t.Fatalf("quantile label wrong: %+v", s)
	}
	if s := byName["lakeharbor_ya b"]; s.Label("msg") != `quo"te` {
		t.Fatalf("escaped label wrong: %+v", s)
	}
	if s := byName["lakeharbor_ts"]; s.Value != 3 {
		t.Fatalf("timestamped sample wrong: %+v", s)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"lakeharbor_x notanumber\n",
		"lakeharbor_x{op=\"unterminated 1\n",
		"lakeharbor_x{op=unquoted} 1\n",
		"loneword\n",
	} {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("Parse accepted %q", doc)
		}
	}
}
