// Package tpch provides the TPC-H workload of the paper's preliminary
// evaluation (§III-E): a deterministic micro-scale dataset generator, raw
// '|'-delimited record formats (schema-on-read), loaders that lay the data
// out exactly as the paper describes (base files hash-partitioned by
// primary key, local secondary indexes on date columns, global indexes on
// foreign keys), and the Q5′ query — the SPJ variant of TPC-H Q5 — as both a
// ReDe Reference-Dereference job and a baseline scan/hash-join plan.
//
// The paper ran SF=128K (128 TB); this generator is parameterized by a
// micro scale factor so the same sweep runs on one machine. Dates are
// stored as day ordinals (0 = 1992-01-01) rather than formatted dates; the
// selectivity mechanics are unchanged.
package tpch

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"lakeharbor/internal/core"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// Catalog file names.
const (
	FileRegion   = "region"
	FileNation   = "nation"
	FileSupplier = "supplier"
	FileCustomer = "customer"
	FilePart     = "part"
	FilePartSupp = "partsupp"
	FileOrders   = "orders"
	FileLineitem = "lineitem"

	// Structures (§III-E: "local secondary indexes on the date columns of
	// each file and global indexes for each foreign key of each file").
	IdxOrdersDate   = "orders_date_idx"      // local, o_orderdate
	IdxPartPrice    = "part_retailprice_idx" // local, p_retailprice
	IdxOrdersCust   = "orders_custkey_idx"   // global, o_custkey
	IdxLineitemPart = "lineitem_partkey_idx" // global, l_partkey
	IdxLineitemSupp = "lineitem_suppkey_idx" // global, l_suppkey
)

// DateDays is the size of the o_orderdate domain: 7 years starting
// 1992-01-01, as in TPC-H.
const DateDays = 2557

// Epoch is day 0 of the date domain.
var Epoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// FormatDate renders a day ordinal as a calendar date for display.
func FormatDate(day int) string {
	return Epoch.AddDate(0, 0, day).Format("2006-01-02")
}

// splitFields splits a raw '|'-delimited record payload.
func splitFields(rec lake.Record, n int, table string) ([]string, error) {
	f := strings.Split(string(rec.Data), "|")
	if len(f) != n {
		return nil, fmt.Errorf("tpch: %s record has %d fields, want %d: %q", table, len(f), n, rec.Data)
	}
	return f, nil
}

// Interpreters (schema-on-read). Each maps a raw payload to named fields.

// InterpRegion interprets region records: r_regionkey|r_name.
func InterpRegion(rec lake.Record) (core.Fields, error) {
	f, err := splitFields(rec, 2, "region")
	if err != nil {
		return nil, err
	}
	return core.Fields{"r_regionkey": f[0], "r_name": f[1]}, nil
}

// InterpNation interprets nation records: n_nationkey|n_name|n_regionkey.
func InterpNation(rec lake.Record) (core.Fields, error) {
	f, err := splitFields(rec, 3, "nation")
	if err != nil {
		return nil, err
	}
	return core.Fields{"n_nationkey": f[0], "n_name": f[1], "n_regionkey": f[2]}, nil
}

// InterpSupplier interprets supplier records: s_suppkey|s_name|s_nationkey|s_acctbal.
func InterpSupplier(rec lake.Record) (core.Fields, error) {
	f, err := splitFields(rec, 4, "supplier")
	if err != nil {
		return nil, err
	}
	return core.Fields{"s_suppkey": f[0], "s_name": f[1], "s_nationkey": f[2], "s_acctbal": f[3]}, nil
}

// InterpCustomer interprets customer records:
// c_custkey|c_name|c_nationkey|c_acctbal|c_mktsegment.
func InterpCustomer(rec lake.Record) (core.Fields, error) {
	f, err := splitFields(rec, 5, "customer")
	if err != nil {
		return nil, err
	}
	return core.Fields{"c_custkey": f[0], "c_name": f[1], "c_nationkey": f[2], "c_acctbal": f[3], "c_mktsegment": f[4]}, nil
}

// InterpPartSupp interprets partsupp records:
// ps_partkey|ps_suppkey|ps_availqty|ps_supplycost.
func InterpPartSupp(rec lake.Record) (core.Fields, error) {
	f, err := splitFields(rec, 4, "partsupp")
	if err != nil {
		return nil, err
	}
	return core.Fields{"ps_partkey": f[0], "ps_suppkey": f[1], "ps_availqty": f[2], "ps_supplycost": f[3]}, nil
}

// InterpPart interprets part records: p_partkey|p_name|p_retailprice.
func InterpPart(rec lake.Record) (core.Fields, error) {
	f, err := splitFields(rec, 3, "part")
	if err != nil {
		return nil, err
	}
	return core.Fields{"p_partkey": f[0], "p_name": f[1], "p_retailprice": f[2]}, nil
}

// InterpOrders interprets orders records: o_orderkey|o_custkey|o_orderdate|o_totalprice.
func InterpOrders(rec lake.Record) (core.Fields, error) {
	f, err := splitFields(rec, 4, "orders")
	if err != nil {
		return nil, err
	}
	return core.Fields{"o_orderkey": f[0], "o_custkey": f[1], "o_orderdate": f[2], "o_totalprice": f[3]}, nil
}

// InterpLineitem interprets lineitem records:
// l_orderkey|l_linenumber|l_partkey|l_suppkey|l_quantity|l_extendedprice.
func InterpLineitem(rec lake.Record) (core.Fields, error) {
	f, err := splitFields(rec, 6, "lineitem")
	if err != nil {
		return nil, err
	}
	return core.Fields{
		"l_orderkey": f[0], "l_linenumber": f[1], "l_partkey": f[2],
		"l_suppkey": f[3], "l_quantity": f[4], "l_extendedprice": f[5],
	}, nil
}

// EncodeInt encodes a decimal integer field value as an ordered key.
func EncodeInt(v string) (lake.Key, error) {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return "", fmt.Errorf("tpch: bad integer field %q: %w", v, err)
	}
	return keycodec.Int64(n), nil
}

// EncodeFloat encodes a decimal field value as an ordered key.
func EncodeFloat(v string) (lake.Key, error) {
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return "", fmt.Errorf("tpch: bad decimal field %q: %w", v, err)
	}
	return keycodec.Float64(x), nil
}

// fieldInt extracts field i of a raw record as int64 (loader/oracle
// convenience; queries use Interpreters instead).
func fieldInt(rec lake.Record, i int) (int64, error) {
	f := strings.Split(string(rec.Data), "|")
	if i >= len(f) {
		return 0, fmt.Errorf("tpch: record has %d fields, want index %d", len(f), i)
	}
	return strconv.ParseInt(f[i], 10, 64)
}
