package tpch

import (
	"context"
	"fmt"
	"math"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/core"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// Q5′ is the paper's workload: TPC-H Q5 with sorting and aggregation
// removed, leaving a pure select-project-join:
//
//	SELECT ... FROM customer, orders, lineitem, supplier, nation, region
//	WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
//	  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
//	  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
//	  AND r_name = :region AND o_orderdate >= :lo AND o_orderdate < :hi
//
// The result cardinality is the number of qualifying (order, lineitem)
// pairs. Selectivity is varied through the o_orderdate range, as in Fig. 7.

// DateRange converts a selectivity fraction into the half-open day range
// [lo, hi) that covers that fraction of the o_orderdate domain.
func DateRange(selectivity float64) (lo, hi int) {
	if selectivity < 0 {
		selectivity = 0
	}
	if selectivity > 1 {
		selectivity = 1
	}
	return 0, int(math.Ceil(float64(DateDays) * selectivity))
}

// NationsOfRegionLake reads the region and nation files and returns the set
// of nation keys (as decimal strings, the schema-on-read field form) in the
// named region. It is the tiny "planning" read both engines perform.
func NationsOfRegionLake(ctx context.Context, catalog lake.Catalog, region string) (map[string]bool, error) {
	rf, err := catalog.File(FileRegion)
	if err != nil {
		return nil, err
	}
	regionKey := ""
	for p := 0; p < rf.NumPartitions(); p++ {
		err := rf.Scan(ctx, p, func(rec lake.Record) error {
			f, err := InterpRegion(rec)
			if err != nil {
				return err
			}
			if f["r_name"] == region {
				regionKey = f["r_regionkey"]
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if regionKey == "" {
		return nil, fmt.Errorf("tpch: no region named %q", region)
	}
	nf, err := catalog.File(FileNation)
	if err != nil {
		return nil, err
	}
	nations := map[string]bool{}
	for p := 0; p < nf.NumPartitions(); p++ {
		err := nf.Scan(ctx, p, func(rec lake.Record) error {
			f, err := InterpNation(rec)
			if err != nil {
				return err
			}
			if f["n_regionkey"] == regionKey {
				nations[f["n_nationkey"]] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return nations, nil
}

// Q5Job composes Q5′ as a Reference-Dereference job: a range over the local
// secondary date index of orders, a fetch of each order, a carried join to
// customer (pruned to the region's nations), a prefix range over the
// order's lineitems, and a carried join to supplier with the
// c_nationkey = s_nationkey predicate evaluated on the composite record.
// The result records are composite {order ⊕ customer ⊕ lineitem ⊕ supplier}
// tuples.
func Q5Job(ctx context.Context, catalog lake.Catalog, region string, loDay, hiDay int) (*core.Job, error) {
	if hiDay <= loDay {
		return nil, fmt.Errorf("tpch: empty date range [%d, %d)", loDay, hiDay)
	}
	nations, err := NationsOfRegionLake(ctx, catalog, region)
	if err != nil {
		return nil, err
	}

	interpOC := core.Composite(InterpOrders, InterpCustomer)
	interpOCL := core.Composite(InterpOrders, InterpCustomer, InterpLineitem)
	interpOCLS := core.Composite(InterpOrders, InterpCustomer, InterpLineitem, InterpSupplier)

	customerInRegion := func(rec lake.Record) (bool, error) {
		f, err := interpOC(rec)
		if err != nil {
			return false, err
		}
		return nations[f["c_nationkey"]], nil
	}
	supplierMatches := func(rec lake.Record) (bool, error) {
		f, err := interpOCLS(rec)
		if err != nil {
			return false, err
		}
		return f["s_nationkey"] == f["c_nationkey"] && nations[f["s_nationkey"]], nil
	}

	seeds := []lake.Pointer{{
		File:   IdxOrdersDate,
		NoPart: true, // local index: every node searches its partitions
		Key:    keycodec.Int64(int64(loDay)),
		EndKey: keycodec.Int64(int64(hiDay - 1)),
	}}
	return core.NewJob("tpch-q5prime", seeds,
		core.RangeDeref{File: IdxOrdersDate},
		core.EntryRef{Target: FileOrders},
		core.LookupDeref{File: FileOrders},
		core.FieldRef{Target: FileCustomer, Interp: InterpOrders, Field: "o_custkey",
			Encode: EncodeInt, Carry: core.CarryRecord},
		core.LookupDeref{File: FileCustomer, Combine: true, Filter: customerInRegion},
		core.FieldRef{Target: FileLineitem, Interp: interpOC, Field: "o_orderkey",
			Encode: EncodeInt, Prefix: true, Carry: core.CarryComposite},
		core.RangeDeref{File: FileLineitem, Combine: true},
		core.FieldRef{Target: FileSupplier, Interp: interpOCL, Field: "l_suppkey",
			Encode: EncodeInt, Carry: core.CarryComposite},
		core.LookupDeref{File: FileSupplier, Combine: true, Filter: supplierMatches},
	)
}

// RunQ5Baseline executes Q5′ on the scan/hash-join engine: full scans with
// predicate pushdown on the date range, then grace hash joins
// orders⋈customer⋈lineitem⋈supplier with the region semi-join applied as
// early as possible. It returns the qualifying tuple count.
func RunQ5Baseline(ctx context.Context, eng *baseline.Engine, catalog lake.Catalog, region string, loDay, hiDay int) (int64, error) {
	nations, err := NationsOfRegionLake(ctx, catalog, region)
	if err != nil {
		return 0, err
	}
	loK, hiK := int64(loDay), int64(hiDay)
	orders, err := eng.Scan(ctx, FileOrders, func(rec lake.Record) (bool, error) {
		d, err := fieldInt(rec, 2)
		if err != nil {
			return false, err
		}
		return d >= loK && d < hiK, nil
	})
	if err != nil {
		return 0, err
	}
	customers, err := eng.Scan(ctx, FileCustomer, nil)
	if err != nil {
		return 0, err
	}
	lineitems, err := eng.Scan(ctx, FileLineitem, nil)
	if err != nil {
		return 0, err
	}
	suppliers, err := eng.Scan(ctx, FileSupplier, nil)
	if err != nil {
		return 0, err
	}

	intKey := func(pos int) baseline.KeyFn {
		return func(rec lake.Record) (string, error) {
			v, err := fieldInt(rec, pos)
			if err != nil {
				return "", err
			}
			return keycodec.Int64(v), nil
		}
	}

	// orders ⋈ customer on o_custkey = c_custkey.
	t := baseline.TuplesOf(orders)
	t, err = baseline.HashJoin(t, baseline.TupleKey(0, intKey(1)), customers, intKey(0))
	if err != nil {
		return 0, err
	}
	// Region semi-join on the customer's nation (pruning early, as the
	// ReDe plan does).
	nationOfCust := baseline.TupleKey(1, func(rec lake.Record) (string, error) {
		f, err := InterpCustomer(rec)
		if err != nil {
			return "", err
		}
		return f["c_nationkey"], nil
	})
	t, err = baseline.SemiJoinFilter(t, nationOfCust, nations)
	if err != nil {
		return 0, err
	}
	// ⋈ lineitem on o_orderkey = l_orderkey.
	t, err = baseline.HashJoin(t, baseline.TupleKey(0, intKey(0)), lineitems, intKey(0))
	if err != nil {
		return 0, err
	}
	// ⋈ supplier on l_suppkey = s_suppkey.
	t, err = baseline.HashJoin(t, baseline.TupleKey(2, intKey(3)), suppliers, intKey(0))
	if err != nil {
		return 0, err
	}
	// Final cross-branch predicate c_nationkey = s_nationkey.
	var count int64
	for _, tu := range t {
		cn, err := fieldInt(tu[1], 2)
		if err != nil {
			return 0, err
		}
		sn, err := fieldInt(tu[3], 2)
		if err != nil {
			return 0, err
		}
		if cn == sn {
			count++
		}
	}
	return count, nil
}

// OracleQ5 computes the exact Q5′ cardinality straight from the generated
// dataset, independent of either engine. Tests compare both engines to it.
func (ds *Dataset) OracleQ5(region string, loDay, hiDay int) int64 {
	nations := ds.NationsOfRegion(region)
	custNation := make(map[int64]int64, len(ds.Customers))
	for _, c := range ds.Customers {
		custNation[c.CustKey] = c.NationKey
	}
	suppNation := make(map[int64]int64, len(ds.Suppliers))
	for _, s := range ds.Suppliers {
		suppNation[s.SuppKey] = s.NationKey
	}
	linesOf := make(map[int64][]Lineitem, len(ds.Orders))
	for _, l := range ds.Lineitems {
		linesOf[l.OrderKey] = append(linesOf[l.OrderKey], l)
	}
	var count int64
	for _, o := range ds.Orders {
		if o.OrderDate < loDay || o.OrderDate >= hiDay {
			continue
		}
		cn := custNation[o.CustKey]
		if !nations[cn] {
			continue
		}
		for _, l := range linesOf[o.OrderKey] {
			if suppNation[l.SuppKey] == cn {
				count++
			}
		}
	}
	return count
}

// PartLineitemJoin composes the Fig. 3/4 job: parts with retail price in
// [loPrice, hiPrice] joined to their lineitems via the local price index on
// part and the global l_partkey index on lineitem (a parallel index
// nested-loop join with a global index).
func PartLineitemJoin(loPrice, hiPrice float64) (*core.Job, error) {
	seeds := []lake.Pointer{{
		File:   IdxPartPrice,
		NoPart: true,
		Key:    keycodec.Float64(loPrice),
		EndKey: keycodec.Float64(hiPrice),
	}}
	return core.NewJob("part-lineitem-join", seeds,
		core.RangeDeref{File: IdxPartPrice}, // Dereferencer-0
		core.EntryRef{Target: FilePart},     // Referencer-1
		core.LookupDeref{File: FilePart},    // Dereferencer-1
		core.FieldRef{Target: IdxLineitemPart, // Referencer-2
			Interp: InterpPart, Field: "p_partkey", Encode: EncodeInt},
		core.LookupDeref{File: IdxLineitemPart}, // Dereferencer-2
		core.EntryRef{Target: FileLineitem},     // Referencer-3
		core.LookupDeref{File: FileLineitem},    // Dereferencer-3
	)
}

// OraclePartLineitem computes the Fig. 3/4 join cardinality from the
// dataset.
func (ds *Dataset) OraclePartLineitem(loPrice, hiPrice float64) int64 {
	in := map[int64]bool{}
	for _, p := range ds.Parts {
		if p.RetailPrice >= loPrice && p.RetailPrice <= hiPrice {
			in[p.PartKey] = true
		}
	}
	var count int64
	for _, l := range ds.Lineitems {
		if in[l.PartKey] {
			count++
		}
	}
	return count
}
