package tpch

import (
	"context"
	"strconv"
	"testing"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{SF: 0.05, Seed: 42})
	b := Generate(Config{SF: 0.05, Seed: 42})
	if len(a.Lineitems) != len(b.Lineitems) {
		t.Fatalf("non-deterministic lineitem count: %d vs %d", len(a.Lineitems), len(b.Lineitems))
	}
	for i := range a.Lineitems {
		if a.Lineitems[i] != b.Lineitems[i] {
			t.Fatalf("lineitem %d differs", i)
		}
	}
	c := Generate(Config{SF: 0.05, Seed: 43})
	if len(c.Lineitems) == len(a.Lineitems) && c.Lineitems[0] == a.Lineitems[0] {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	ds := Generate(Config{SF: 0.1, Seed: 1})
	if len(ds.Regions) != 5 || len(ds.Nations) != 25 {
		t.Errorf("regions/nations = %d/%d, want 5/25", len(ds.Regions), len(ds.Nations))
	}
	if len(ds.Customers) != 150 {
		t.Errorf("customers = %d, want 150", len(ds.Customers))
	}
	if len(ds.Orders) != 1500 {
		t.Errorf("orders = %d, want 1500", len(ds.Orders))
	}
	if len(ds.Parts) != 200 {
		t.Errorf("parts = %d, want 200", len(ds.Parts))
	}
	avg := float64(len(ds.Lineitems)) / float64(len(ds.Orders))
	if avg < 2.5 || avg > 5.5 {
		t.Errorf("lineitems per order = %.2f, want ~4", avg)
	}
	// Every order date in domain; every FK resolvable.
	nSupp, nCust, nPart := int64(len(ds.Suppliers)), int64(len(ds.Customers)), int64(len(ds.Parts))
	for _, o := range ds.Orders {
		if o.OrderDate < 0 || o.OrderDate >= DateDays {
			t.Fatalf("order date %d out of domain", o.OrderDate)
		}
		if o.CustKey < 1 || o.CustKey > nCust {
			t.Fatalf("order custkey %d out of range", o.CustKey)
		}
	}
	for _, l := range ds.Lineitems {
		if l.SuppKey < 1 || l.SuppKey > nSupp {
			t.Fatalf("lineitem suppkey %d out of range", l.SuppKey)
		}
		if l.PartKey < 1 || l.PartKey > nPart {
			t.Fatalf("lineitem partkey %d out of range", l.PartKey)
		}
	}
	// Order keys strictly increasing (sparse as in TPC-H).
	for i := 1; i < len(ds.Orders); i++ {
		if ds.Orders[i].OrderKey <= ds.Orders[i-1].OrderKey {
			t.Fatal("order keys not strictly increasing")
		}
	}
	if ds.Config.SF != 0.1 {
		t.Error("config not recorded")
	}
	// Zero SF defaults to 1.
	d2 := Generate(Config{Seed: 1})
	if len(d2.Customers) != 1500 {
		t.Errorf("default SF customers = %d, want 1500", len(d2.Customers))
	}
}

func TestNationsOfRegion(t *testing.T) {
	ds := Generate(Config{SF: 0.01, Seed: 1})
	asia := ds.NationsOfRegion("ASIA")
	if len(asia) != 5 {
		t.Errorf("ASIA has %d nations, want 5", len(asia))
	}
	if !asia[12] { // JAPAN is nation 12 in our table
		t.Error("JAPAN missing from ASIA")
	}
	if len(ds.NationsOfRegion("NOWHERE")) != 0 {
		t.Error("unknown region returned nations")
	}
}

// loadedCluster builds a cluster, loads a dataset, and builds structures.
func loadedCluster(t testing.TB, sf float64, nodes int) (*dfs.Cluster, *Dataset) {
	t.Helper()
	ctx := context.Background()
	ds := Generate(Config{SF: sf, Seed: 7})
	c := dfs.NewCluster(dfs.Config{Nodes: nodes})
	if err := Load(ctx, c, ds, 0); err != nil {
		t.Fatal(err)
	}
	if err := BuildStructures(ctx, c); err != nil {
		t.Fatal(err)
	}
	return c, ds
}

func TestLoadCounts(t *testing.T) {
	c, ds := loadedCluster(t, 0.05, 3)
	checks := map[string]int{
		FileRegion:      len(ds.Regions),
		FileNation:      len(ds.Nations),
		FileSupplier:    len(ds.Suppliers),
		FileCustomer:    len(ds.Customers),
		FilePart:        len(ds.Parts),
		FileOrders:      len(ds.Orders),
		FileLineitem:    len(ds.Lineitems),
		IdxOrdersDate:   len(ds.Orders),
		IdxPartPrice:    len(ds.Parts),
		IdxOrdersCust:   len(ds.Orders),
		IdxLineitemPart: len(ds.Lineitems),
		IdxLineitemSupp: len(ds.Lineitems),
	}
	for name, want := range checks {
		got, err := c.Len(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s has %d records, want %d", name, got, want)
		}
	}
}

func TestLoadRecordsFindable(t *testing.T) {
	ctx := context.Background()
	c, ds := loadedCluster(t, 0.02, 2)
	f, err := c.File(FileOrders)
	if err != nil {
		t.Fatal(err)
	}
	o := ds.Orders[len(ds.Orders)/2]
	k := OrderKey(o.OrderKey)
	p := f.Partitioner().Partition(k, f.NumPartitions())
	recs, err := f.Lookup(ctx, p, k)
	if err != nil || len(recs) != 1 {
		t.Fatalf("order lookup: %v %v", recs, err)
	}
	if string(recs[0].Data) != o.Raw() {
		t.Errorf("stored %q, want %q", recs[0].Data, o.Raw())
	}
	fields, err := InterpOrders(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if fields["o_orderkey"] == "" || fields["o_orderdate"] == "" {
		t.Errorf("interpreter fields: %v", fields)
	}
}

func TestInterpretersRejectMalformed(t *testing.T) {
	bad := lake.Record{Data: []byte("only|two")}
	if _, err := InterpOrders(bad); err == nil {
		t.Error("InterpOrders accepted malformed record")
	}
	if _, err := InterpLineitem(bad); err == nil {
		t.Error("InterpLineitem accepted malformed record")
	}
	if _, err := EncodeInt("abc"); err == nil {
		t.Error("EncodeInt accepted non-integer")
	}
	if _, err := EncodeFloat("abc"); err == nil {
		t.Error("EncodeFloat accepted non-decimal")
	}
}

func TestDateHelpers(t *testing.T) {
	lo, hi := DateRange(0.5)
	if lo != 0 || hi < DateDays/2 || hi > DateDays/2+2 {
		t.Errorf("DateRange(0.5) = [%d,%d)", lo, hi)
	}
	if _, hi := DateRange(2); hi != DateDays {
		t.Error("selectivity clamped above 1 should cover the domain")
	}
	if _, hi := DateRange(-1); hi != 0 {
		t.Error("negative selectivity should yield empty range")
	}
	if FormatDate(0) != "1992-01-01" {
		t.Errorf("FormatDate(0) = %s", FormatDate(0))
	}
	if FormatDate(31) != "1992-02-01" {
		t.Errorf("FormatDate(31) = %s", FormatDate(31))
	}
}

func TestNationsOfRegionLake(t *testing.T) {
	ctx := context.Background()
	c, ds := loadedCluster(t, 0.01, 1)
	nations, err := NationsOfRegionLake(ctx, c, "EUROPE")
	if err != nil {
		t.Fatal(err)
	}
	want := ds.NationsOfRegion("EUROPE")
	if len(nations) != len(want) {
		t.Fatalf("lake nations = %v, oracle size %d", nations, len(want))
	}
	if _, err := NationsOfRegionLake(ctx, c, "ATLANTIS"); err == nil {
		t.Error("unknown region should fail")
	}
}

func TestQ5AllEnginesAgree(t *testing.T) {
	ctx := context.Background()
	c, ds := loadedCluster(t, 0.05, 3)
	eng := baseline.New(c, 4)
	for _, sel := range []float64{0.001, 0.01, 0.05, 0.2} {
		lo, hi := DateRange(sel)
		if hi == lo {
			hi = lo + 1
		}
		want := ds.OracleQ5("ASIA", lo, hi)

		job, err := Q5Job(ctx, c, "ASIA", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		smpe, err := core.ExecuteSMPE(ctx, job, c, c, core.Options{Threads: 64})
		if err != nil {
			t.Fatal(err)
		}
		if smpe.Count != want {
			t.Errorf("sel=%g: ReDe SMPE = %d, oracle = %d", sel, smpe.Count, want)
		}
		plain, err := core.ExecutePlain(ctx, job, c, c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Count != want {
			t.Errorf("sel=%g: ReDe plain = %d, oracle = %d", sel, plain.Count, want)
		}
		base, err := RunQ5Baseline(ctx, eng, c, "ASIA", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if base != want {
			t.Errorf("sel=%g: baseline = %d, oracle = %d", sel, base, want)
		}
	}
}

func TestQ5CompositeResultInterpretable(t *testing.T) {
	ctx := context.Background()
	c, ds := loadedCluster(t, 0.03, 2)
	lo, hi := DateRange(0.1)
	job, err := Q5Job(ctx, c, "AMERICA", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ExecuteSMPE(ctx, job, c, c, core.Options{Threads: 32, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Skip("no qualifying tuples at this SF/seed; widen range")
	}
	nations := ds.NationsOfRegion("AMERICA")
	interp := core.Composite(InterpOrders, InterpCustomer, InterpLineitem, InterpSupplier)
	for _, r := range res.Records {
		f, err := interp(r)
		if err != nil {
			t.Fatal(err)
		}
		if f["c_nationkey"] != f["s_nationkey"] {
			t.Fatalf("result violates c_nationkey=s_nationkey: %v", f)
		}
		if f["o_custkey"] != f["c_custkey"] {
			t.Fatalf("result violates o_custkey=c_custkey: %v", f)
		}
		if f["o_orderkey"] != f["l_orderkey"] {
			t.Fatalf("result violates o_orderkey=l_orderkey: %v", f)
		}
		if f["l_suppkey"] != f["s_suppkey"] {
			t.Fatalf("result violates l_suppkey=s_suppkey: %v", f)
		}
		nk, err := strconv.ParseInt(f["s_nationkey"], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !nations[nk] {
			t.Fatalf("result supplier nation %d outside region", nk)
		}
	}
}

func TestQ5EmptyRangeRejected(t *testing.T) {
	ctx := context.Background()
	c, _ := loadedCluster(t, 0.01, 1)
	if _, err := Q5Job(ctx, c, "ASIA", 10, 10); err == nil {
		t.Error("empty date range should be rejected")
	}
	if _, err := Q5Job(ctx, c, "ATLANTIS", 0, 10); err == nil {
		t.Error("unknown region should be rejected")
	}
}

func TestPartLineitemJoinMatchesOracle(t *testing.T) {
	ctx := context.Background()
	c, ds := loadedCluster(t, 0.05, 3)
	lo, hi := 1000.0, 1400.0
	job, err := PartLineitemJoin(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ExecuteSMPE(ctx, job, c, c, core.Options{Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if want := ds.OraclePartLineitem(lo, hi); res.Count != want {
		t.Errorf("part-lineitem join = %d, oracle = %d", res.Count, want)
	}
}

func TestLineitemKeyPrefixRange(t *testing.T) {
	// Every lineitem of an order — and only those — falls inside
	// PrefixRange of the order key.
	lo, hi := lake.PrefixRange(keycodec.Int64(42))
	in := LineitemKey(42, 3)
	if in < lo || in > hi {
		t.Error("lineitem key escapes its order's prefix range")
	}
	out := LineitemKey(43, 1)
	if out >= lo && out <= hi {
		t.Error("foreign lineitem key inside prefix range")
	}
}

func TestPartSuppGenerated(t *testing.T) {
	ds := Generate(Config{SF: 0.1, Seed: 1})
	if len(ds.PartSupps) != len(ds.Parts)*4 {
		t.Fatalf("partsupp rows = %d, want %d", len(ds.PartSupps), len(ds.Parts)*4)
	}
	nSupp := int64(len(ds.Suppliers))
	nPart := int64(len(ds.Parts))
	seen := map[[2]int64]bool{}
	for _, ps := range ds.PartSupps {
		if ps.PartKey < 1 || ps.PartKey > nPart || ps.SuppKey < 1 || ps.SuppKey > nSupp {
			t.Fatalf("partsupp keys out of range: %+v", ps)
		}
		k := [2]int64{ps.PartKey, ps.SuppKey}
		if seen[k] {
			t.Fatalf("duplicate partsupp pair %v", k)
		}
		seen[k] = true
	}
	// Loading includes partsupp.
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	if err := Load(ctx, c, ds, 0); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Len(FilePartSupp); n != len(ds.PartSupps) {
		t.Errorf("loaded partsupp = %d rows", n)
	}
	// Interpreter parses a stored row.
	f, _ := c.File(FilePartSupp)
	var got lake.Record
	f.Scan(ctx, 0, func(r lake.Record) error { got = r; return nil })
	fields, err := InterpPartSupp(got)
	if err != nil {
		t.Fatal(err)
	}
	if fields["ps_partkey"] == "" || fields["ps_supplycost"] == "" {
		t.Errorf("partsupp fields: %v", fields)
	}
}

func TestCustomerMktSegment(t *testing.T) {
	ds := Generate(Config{SF: 0.05, Seed: 1})
	counts := map[string]int{}
	for _, c := range ds.Customers {
		counts[c.MktSegment]++
	}
	if len(counts) != len(MktSegments) {
		t.Fatalf("segments used: %v", counts)
	}
	f, err := InterpCustomer(lake.Record{Data: []byte(ds.Customers[0].Raw())})
	if err != nil {
		t.Fatal(err)
	}
	if f["c_mktsegment"] != ds.Customers[0].MktSegment {
		t.Errorf("c_mktsegment = %q", f["c_mktsegment"])
	}
}

func TestQ3AllEnginesAgree(t *testing.T) {
	ctx := context.Background()
	c, ds := loadedCluster(t, 0.05, 3)
	eng := baseline.New(c, 4)
	for _, seg := range []string{"BUILDING", "MACHINERY"} {
		for _, sel := range []float64{0.01, 0.1, 0.5} {
			_, hi := DateRange(sel)
			if hi == 0 {
				hi = 1
			}
			want := ds.OracleQ3(seg, hi)

			job, err := Q3Job(seg, hi)
			if err != nil {
				t.Fatal(err)
			}
			smpe, err := core.ExecuteSMPE(ctx, job, c, c, core.Options{Threads: 64})
			if err != nil {
				t.Fatal(err)
			}
			if smpe.Count != want {
				t.Errorf("%s sel=%g: ReDe = %d, oracle = %d", seg, sel, smpe.Count, want)
			}
			base, err := RunQ3Baseline(ctx, eng, seg, hi)
			if err != nil {
				t.Fatal(err)
			}
			if base != want {
				t.Errorf("%s sel=%g: baseline = %d, oracle = %d", seg, sel, base, want)
			}
		}
	}
	if _, err := Q3Job("BUILDING", 0); err == nil {
		t.Error("empty Q3 range accepted")
	}
}
