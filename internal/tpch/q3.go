package tpch

import (
	"context"
	"fmt"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/core"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// Q3′ is the SPJ reduction of TPC-H Q3 (the "shipping priority" query),
// following the same simplification the paper applies to Q5:
//
//	SELECT ... FROM customer, orders, lineitem
//	WHERE c_mktsegment = :segment AND c_custkey = o_custkey
//	  AND l_orderkey = o_orderkey AND o_orderdate < :d
//
// It exercises a different shape from Q5′ — a categorical predicate on the
// customer dimension combined with a date range on orders — over the same
// structures. The result cardinality is the number of qualifying
// (order, lineitem) pairs.

// Q3Job composes Q3′ as a Reference-Dereference job: the date range drives
// through the local secondary index on o_orderdate, each order carries to
// its customer (filtered by market segment), and each surviving composite
// fans out to the order's lineitems by prefix range.
func Q3Job(segment string, hiDay int) (*core.Job, error) {
	if hiDay <= 0 {
		return nil, fmt.Errorf("tpch: empty date range [0, %d)", hiDay)
	}
	interpOC := core.Composite(InterpOrders, InterpCustomer)
	segmentFilter := func(rec lake.Record) (bool, error) {
		f, err := interpOC(rec)
		if err != nil {
			return false, err
		}
		return f["c_mktsegment"] == segment, nil
	}
	seeds := []lake.Pointer{{
		File:   IdxOrdersDate,
		NoPart: true,
		Key:    keycodec.Int64(0),
		EndKey: keycodec.Int64(int64(hiDay - 1)),
	}}
	return core.NewJob("tpch-q3prime", seeds,
		core.RangeDeref{File: IdxOrdersDate},
		core.EntryRef{Target: FileOrders},
		core.LookupDeref{File: FileOrders},
		core.FieldRef{Target: FileCustomer, Interp: InterpOrders, Field: "o_custkey",
			Encode: EncodeInt, Carry: core.CarryRecord},
		core.LookupDeref{File: FileCustomer, Combine: true, Filter: segmentFilter},
		core.FieldRef{Target: FileLineitem, Interp: interpOC, Field: "o_orderkey",
			Encode: EncodeInt, Prefix: true, Carry: core.CarryComposite},
		core.RangeDeref{File: FileLineitem, Combine: true},
	)
}

// RunQ3Baseline executes Q3′ on the scan/hash-join engine.
func RunQ3Baseline(ctx context.Context, eng *baseline.Engine, segment string, hiDay int) (int64, error) {
	hiK := int64(hiDay)
	orders, err := eng.Scan(ctx, FileOrders, func(rec lake.Record) (bool, error) {
		d, err := fieldInt(rec, 2)
		if err != nil {
			return false, err
		}
		return d < hiK, nil
	})
	if err != nil {
		return 0, err
	}
	customers, err := eng.Scan(ctx, FileCustomer, func(rec lake.Record) (bool, error) {
		f, err := InterpCustomer(rec)
		if err != nil {
			return false, err
		}
		return f["c_mktsegment"] == segment, nil
	})
	if err != nil {
		return 0, err
	}
	lineitems, err := eng.Scan(ctx, FileLineitem, nil)
	if err != nil {
		return 0, err
	}
	intKey := func(pos int) baseline.KeyFn {
		return func(rec lake.Record) (string, error) {
			v, err := fieldInt(rec, pos)
			if err != nil {
				return "", err
			}
			return keycodec.Int64(v), nil
		}
	}
	t := baseline.TuplesOf(orders)
	t, err = baseline.HashJoin(t, baseline.TupleKey(0, intKey(1)), customers, intKey(0))
	if err != nil {
		return 0, err
	}
	t, err = baseline.HashJoin(t, baseline.TupleKey(0, intKey(0)), lineitems, intKey(0))
	if err != nil {
		return 0, err
	}
	return int64(len(t)), nil
}

// OracleQ3 computes Q3′'s exact cardinality from the dataset.
func (ds *Dataset) OracleQ3(segment string, hiDay int) int64 {
	inSegment := make(map[int64]bool, len(ds.Customers))
	for _, c := range ds.Customers {
		if c.MktSegment == segment {
			inSegment[c.CustKey] = true
		}
	}
	linesOf := make(map[int64]int64, len(ds.Orders))
	for _, l := range ds.Lineitems {
		linesOf[l.OrderKey]++
	}
	var count int64
	for _, o := range ds.Orders {
		if o.OrderDate < hiDay && inSegment[o.CustKey] {
			count += linesOf[o.OrderKey]
		}
	}
	return count
}
