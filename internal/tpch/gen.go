package tpch

import (
	"fmt"
	"math/rand"
)

// Config parameterizes the generator.
type Config struct {
	// SF is the micro scale factor. SF=1 yields ~60k lineitems; the
	// cardinality ratios between tables match TPC-H.
	SF float64
	// Seed makes generation deterministic; the same seed always yields
	// the same dataset.
	Seed int64
}

// Cardinalities at SF=1.
const (
	baseSuppliers    = 100
	baseCustomers    = 1500
	baseParts        = 2000
	ordersPerCust    = 10
	maxLinesPerOrder = 7
	suppliersPerPart = 4 // partsupp rows per part, as in TPC-H
)

// The TPC-H customer market segments (used by Q3′).
var MktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

// The 5 TPC-H regions and 25 nations with their region assignment.
var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationDefs = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

// Row types. Raw() renders the '|'-delimited payload stored in the lake.

// Region is one region row.
type Region struct {
	RegionKey int64
	Name      string
}

// Raw renders the stored payload.
func (r Region) Raw() string { return fmt.Sprintf("%d|%s", r.RegionKey, r.Name) }

// Nation is one nation row.
type Nation struct {
	NationKey int64
	Name      string
	RegionKey int64
}

// Raw renders the stored payload.
func (n Nation) Raw() string { return fmt.Sprintf("%d|%s|%d", n.NationKey, n.Name, n.RegionKey) }

// Supplier is one supplier row.
type Supplier struct {
	SuppKey   int64
	Name      string
	NationKey int64
	AcctBal   float64
}

// Raw renders the stored payload.
func (s Supplier) Raw() string {
	return fmt.Sprintf("%d|%s|%d|%.2f", s.SuppKey, s.Name, s.NationKey, s.AcctBal)
}

// Customer is one customer row.
type Customer struct {
	CustKey    int64
	Name       string
	NationKey  int64
	AcctBal    float64
	MktSegment string
}

// Raw renders the stored payload.
func (c Customer) Raw() string {
	return fmt.Sprintf("%d|%s|%d|%.2f|%s", c.CustKey, c.Name, c.NationKey, c.AcctBal, c.MktSegment)
}

// PartSupp is one part-supplier relationship row.
type PartSupp struct {
	PartKey    int64
	SuppKey    int64
	AvailQty   int64
	SupplyCost float64
}

// Raw renders the stored payload.
func (ps PartSupp) Raw() string {
	return fmt.Sprintf("%d|%d|%d|%.2f", ps.PartKey, ps.SuppKey, ps.AvailQty, ps.SupplyCost)
}

// Part is one part row.
type Part struct {
	PartKey     int64
	Name        string
	RetailPrice float64
}

// Raw renders the stored payload.
func (p Part) Raw() string {
	return fmt.Sprintf("%d|%s|%.2f", p.PartKey, p.Name, p.RetailPrice)
}

// Order is one orders row. OrderDate is a day ordinal in [0, DateDays).
type Order struct {
	OrderKey   int64
	CustKey    int64
	OrderDate  int
	TotalPrice float64
}

// Raw renders the stored payload.
func (o Order) Raw() string {
	return fmt.Sprintf("%d|%d|%d|%.2f", o.OrderKey, o.CustKey, o.OrderDate, o.TotalPrice)
}

// Lineitem is one lineitem row.
type Lineitem struct {
	OrderKey      int64
	LineNumber    int64
	PartKey       int64
	SuppKey       int64
	Quantity      int64
	ExtendedPrice float64
}

// Raw renders the stored payload.
func (l Lineitem) Raw() string {
	return fmt.Sprintf("%d|%d|%d|%d|%d|%.2f",
		l.OrderKey, l.LineNumber, l.PartKey, l.SuppKey, l.Quantity, l.ExtendedPrice)
}

// Dataset is a fully generated TPC-H micro dataset.
type Dataset struct {
	Config    Config
	Regions   []Region
	Nations   []Nation
	Suppliers []Supplier
	Customers []Customer
	Parts     []Part
	PartSupps []PartSupp
	Orders    []Order
	Lineitems []Lineitem
}

// scaled returns max(1, round(base*sf)).
func scaled(base int, sf float64) int {
	n := int(float64(base)*sf + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate produces a deterministic dataset for cfg.
func Generate(cfg Config) *Dataset {
	if cfg.SF <= 0 {
		cfg.SF = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Config: cfg}

	for i, name := range regionNames {
		ds.Regions = append(ds.Regions, Region{RegionKey: int64(i), Name: name})
	}
	for i, nd := range nationDefs {
		ds.Nations = append(ds.Nations, Nation{NationKey: int64(i), Name: nd.name, RegionKey: int64(nd.region)})
	}

	nSupp := scaled(baseSuppliers, cfg.SF)
	for i := 0; i < nSupp; i++ {
		ds.Suppliers = append(ds.Suppliers, Supplier{
			SuppKey:   int64(i + 1),
			Name:      fmt.Sprintf("Supplier#%09d", i+1),
			NationKey: int64(rng.Intn(len(nationDefs))),
			AcctBal:   float64(rng.Intn(1000000)) / 100,
		})
	}
	nCust := scaled(baseCustomers, cfg.SF)
	for i := 0; i < nCust; i++ {
		ds.Customers = append(ds.Customers, Customer{
			CustKey:    int64(i + 1),
			Name:       fmt.Sprintf("Customer#%09d", i+1),
			NationKey:  int64(rng.Intn(len(nationDefs))),
			AcctBal:    float64(rng.Intn(1000000)) / 100,
			MktSegment: MktSegments[rng.Intn(len(MktSegments))],
		})
	}
	nPart := scaled(baseParts, cfg.SF)
	for i := 0; i < nPart; i++ {
		// Deterministic price spread over [900, 2100), mimicking the
		// TPC-H retail-price formula's shape.
		key := int64(i + 1)
		ds.Parts = append(ds.Parts, Part{
			PartKey:     key,
			Name:        fmt.Sprintf("Part#%09d", key),
			RetailPrice: 900 + float64((key*9973)%120000)/100,
		})
	}

	for _, p := range ds.Parts {
		// Each part is stocked by suppliersPerPart distinct suppliers,
		// assigned with the TPC-H stride formula.
		for j := 0; j < suppliersPerPart && j < nSupp; j++ {
			sk := (p.PartKey+int64(j*(nSupp/suppliersPerPart+1)))%int64(nSupp) + 1
			ds.PartSupps = append(ds.PartSupps, PartSupp{
				PartKey:    p.PartKey,
				SuppKey:    sk,
				AvailQty:   int64(1 + rng.Intn(9999)),
				SupplyCost: float64(100+rng.Intn(99900)) / 100,
			})
		}
	}

	nOrders := nCust * ordersPerCust
	orderKey := int64(0)
	for i := 0; i < nOrders; i++ {
		orderKey += int64(1 + rng.Intn(4)) // sparse order keys, as in TPC-H
		o := Order{
			OrderKey:  orderKey,
			CustKey:   ds.Customers[rng.Intn(nCust)].CustKey,
			OrderDate: rng.Intn(DateDays),
		}
		nLines := 1 + rng.Intn(maxLinesPerOrder)
		for ln := 1; ln <= nLines; ln++ {
			li := Lineitem{
				OrderKey:      o.OrderKey,
				LineNumber:    int64(ln),
				PartKey:       ds.Parts[rng.Intn(nPart)].PartKey,
				SuppKey:       ds.Suppliers[rng.Intn(nSupp)].SuppKey,
				Quantity:      int64(1 + rng.Intn(50)),
				ExtendedPrice: float64(rng.Intn(10000000)) / 100,
			}
			o.TotalPrice += li.ExtendedPrice
			ds.Lineitems = append(ds.Lineitems, li)
		}
		ds.Orders = append(ds.Orders, o)
	}
	return ds
}

// NationsOfRegion returns the nation keys belonging to the named region.
func (ds *Dataset) NationsOfRegion(name string) map[int64]bool {
	var rk int64 = -1
	for _, r := range ds.Regions {
		if r.Name == name {
			rk = r.RegionKey
		}
	}
	out := map[int64]bool{}
	for _, n := range ds.Nations {
		if n.RegionKey == rk {
			out[n.NationKey] = true
		}
	}
	return out
}
