package tpch

import (
	"context"
	"fmt"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// Key helpers: record keys and partition keys as stored in the lake.

// OrderKey encodes an o_orderkey.
func OrderKey(ok int64) lake.Key { return keycodec.Int64(ok) }

// LineitemKey encodes the composite (l_orderkey, l_linenumber) primary key.
func LineitemKey(ok, ln int64) lake.Key {
	return keycodec.Tuple(keycodec.Int64(ok), keycodec.Int64(ln))
}

// Load creates the eight base files on the cluster and loads the dataset,
// laid out as in the paper: every file hash-partitioned by its primary key
// (lineitem by l_orderkey, partsupp by ps_partkey), dimension tables in a
// single partition. If partitions is 0, 2× the node count is used.
func Load(ctx context.Context, cluster *dfs.Cluster, ds *Dataset, partitions int) error {
	if partitions <= 0 {
		partitions = 2 * cluster.NumNodes()
	}
	type tableLoad struct {
		name  string
		parts int
		rows  func(f lake.File) error
	}
	appendRow := func(f lake.File, partKey lake.Key, key lake.Key, raw string) error {
		return dfs.AppendRouted(ctx, f, partKey, lake.Record{Key: key, Data: []byte(raw)})
	}
	tables := []tableLoad{
		{FileRegion, 1, func(f lake.File) error {
			for _, r := range ds.Regions {
				k := keycodec.Int64(r.RegionKey)
				if err := appendRow(f, k, k, r.Raw()); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileNation, 1, func(f lake.File) error {
			for _, n := range ds.Nations {
				k := keycodec.Int64(n.NationKey)
				if err := appendRow(f, k, k, n.Raw()); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileSupplier, partitions, func(f lake.File) error {
			for _, s := range ds.Suppliers {
				k := keycodec.Int64(s.SuppKey)
				if err := appendRow(f, k, k, s.Raw()); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileCustomer, partitions, func(f lake.File) error {
			for _, c := range ds.Customers {
				k := keycodec.Int64(c.CustKey)
				if err := appendRow(f, k, k, c.Raw()); err != nil {
					return err
				}
			}
			return nil
		}},
		{FilePart, partitions, func(f lake.File) error {
			for _, p := range ds.Parts {
				k := keycodec.Int64(p.PartKey)
				if err := appendRow(f, k, k, p.Raw()); err != nil {
					return err
				}
			}
			return nil
		}},
		{FilePartSupp, partitions, func(f lake.File) error {
			for _, ps := range ds.PartSupps {
				pk := keycodec.Int64(ps.PartKey) // partitioned by ps_partkey
				key := keycodec.Tuple(keycodec.Int64(ps.PartKey), keycodec.Int64(ps.SuppKey))
				if err := appendRow(f, pk, key, ps.Raw()); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileOrders, partitions, func(f lake.File) error {
			for _, o := range ds.Orders {
				k := OrderKey(o.OrderKey)
				if err := appendRow(f, k, k, o.Raw()); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileLineitem, partitions, func(f lake.File) error {
			for _, l := range ds.Lineitems {
				pk := keycodec.Int64(l.OrderKey) // partitioned by l_orderkey
				if err := appendRow(f, pk, LineitemKey(l.OrderKey, l.LineNumber), l.Raw()); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	for _, t := range tables {
		f, err := cluster.CreateFile(t.name, dfs.Btree, t.parts, lake.HashPartitioner{})
		if err != nil {
			return fmt.Errorf("tpch: create %s: %w", t.name, err)
		}
		if err := t.rows(f); err != nil {
			return fmt.Errorf("tpch: load %s: %w", t.name, err)
		}
	}
	return nil
}

// partKeyFromField returns a Spec.PartKey extractor reading field i as an
// integer partition key.
func partKeyFromField(i int) func(lake.Record) (lake.Key, error) {
	return func(rec lake.Record) (lake.Key, error) {
		v, err := fieldInt(rec, i)
		if err != nil {
			return "", err
		}
		return keycodec.Int64(v), nil
	}
}

// intKeysFromField returns a Spec.Keys extractor reading field i as an
// integer index key.
func intKeysFromField(i int) func(lake.Record) ([]lake.Key, error) {
	return func(rec lake.Record) ([]lake.Key, error) {
		v, err := fieldInt(rec, i)
		if err != nil {
			return nil, err
		}
		return []lake.Key{keycodec.Int64(v)}, nil
	}
}

// StructureSpecs returns the access-method registrations of §III-E: local
// secondary indexes on the date (and price) columns, global indexes on the
// foreign keys. They are what a user "injects" post hoc under LakeHarbor.
func StructureSpecs() []indexer.Spec {
	priceKeys := func(rec lake.Record) ([]lake.Key, error) {
		f, err := InterpPart(rec)
		if err != nil {
			return nil, err
		}
		k, err := EncodeFloat(f["p_retailprice"])
		if err != nil {
			return nil, err
		}
		return []lake.Key{k}, nil
	}
	return []indexer.Spec{
		{Name: IdxOrdersDate, Base: FileOrders, Kind: indexer.Local,
			PartKey: partKeyFromField(0), Keys: intKeysFromField(2)},
		{Name: IdxPartPrice, Base: FilePart, Kind: indexer.Local,
			PartKey: partKeyFromField(0), Keys: priceKeys},
		{Name: IdxOrdersCust, Base: FileOrders, Kind: indexer.Global,
			PartKey: partKeyFromField(0), Keys: intKeysFromField(1)},
		{Name: IdxLineitemPart, Base: FileLineitem, Kind: indexer.Global,
			PartKey: partKeyFromField(0), Keys: intKeysFromField(2)},
		{Name: IdxLineitemSupp, Base: FileLineitem, Kind: indexer.Global,
			PartKey: partKeyFromField(0), Keys: intKeysFromField(3)},
	}
}

// BuildStructures registers and synchronously builds all §III-E structures.
func BuildStructures(ctx context.Context, cluster *dfs.Cluster) error {
	reg := indexer.NewRegistry(cluster)
	for _, spec := range StructureSpecs() {
		if err := reg.Register(spec); err != nil {
			return err
		}
	}
	reg.StartAll(ctx)
	return reg.WaitAll(ctx)
}

// BuildManaged registers the §III-E structures with a lifecycle manager and
// builds them through it: builds start concurrently, Ensure joins each one,
// and opts.StructureBudget (when set) may evict cold structures as later
// builds finish. Callers Ensure a structure again before using it — the
// manager transparently rebuilds evicted ones.
func BuildManaged(ctx context.Context, cluster *dfs.Cluster, opts indexer.ManagerOptions) (*indexer.Manager, error) {
	m := indexer.NewManager(ctx, cluster, opts)
	specs := StructureSpecs()
	for _, spec := range specs {
		if err := m.Register(spec); err != nil {
			return nil, err
		}
	}
	for _, spec := range specs {
		if _, err := m.Build(spec.Name); err != nil {
			return nil, err
		}
	}
	for _, spec := range specs {
		if err := m.Ensure(ctx, spec.Name); err != nil {
			return nil, err
		}
	}
	return m, nil
}
