package columnar

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lakeharbor/internal/claims"
	"lakeharbor/internal/tpch"
)

var testSchema = Schema{Columns: []Column{
	{Name: "id", Type: TInt64},
	{Name: "price", Type: TFloat64},
	{Name: "city", Type: TString},
}}

func writeRows(t testing.TB, groupSize, n int) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testSchema, groupSize)
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"tokyo", "osaka", "nagoya"}
	for i := 0; i < n; i++ {
		err := w.WriteRow(
			Int64Value(int64(i)),
			Float64Value(float64(i)*1.5),
			StringValue(cities[i%3]),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := writeRows(t, 100, 1000)
	if r.NumRows() != 1000 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	if r.NumRowGroups() != 10 {
		t.Fatalf("NumRowGroups = %d, want 10", r.NumRowGroups())
	}
	if len(r.Schema().Columns) != 3 || r.Schema().Columns[2].Name != "city" {
		t.Fatalf("schema round trip: %+v", r.Schema())
	}
	i := 0
	err := r.Scan(nil, []string{"id", "price", "city"}, func(row []Value) error {
		if row[0].I != int64(i) {
			return fmt.Errorf("row %d: id %d", i, row[0].I)
		}
		if row[1].F != float64(i)*1.5 {
			return fmt.Errorf("row %d: price %g", i, row[1].F)
		}
		want := []string{"tokyo", "osaka", "nagoya"}[i%3]
		if row[2].S != want {
			return fmt.Errorf("row %d: city %q", i, row[2].S)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 1000 {
		t.Fatalf("scanned %d rows", i)
	}
}

func TestProjectionDecodesOnlyRequestedColumns(t *testing.T) {
	r := writeRows(t, 128, 500)
	n := 0
	err := r.Scan(nil, []string{"city"}, func(row []Value) error {
		if len(row) != 1 || row[0].T != TString {
			return fmt.Errorf("bad projected row %v", row)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("projected scan saw %d rows", n)
	}
	if err := r.Scan(nil, []string{"ghost"}, func([]Value) error { return nil }); err == nil {
		t.Error("unknown projection column accepted")
	}
}

func TestZoneMapsAndPruning(t *testing.T) {
	// ids are monotonically increasing, so each group covers a disjoint
	// id range and pruning must narrow to exactly the right groups.
	r := writeRows(t, 100, 1000)
	minV, maxV, err := r.GroupStats(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if minV.I != 300 || maxV.I != 399 {
		t.Fatalf("group 3 stats = [%d, %d], want [300, 399]", minV.I, maxV.I)
	}
	groups, err := r.PruneRange(0, Int64Value(250), Int64Value(449))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 || groups[0] != 2 || groups[2] != 4 {
		t.Fatalf("PruneRange = %v, want [2 3 4]", groups)
	}
	// Scanning only the pruned groups with a residual predicate yields
	// exactly the matching rows.
	n := 0
	err = r.Scan(groups, []string{"id"}, func(row []Value) error {
		if row[0].I >= 250 && row[0].I <= 449 {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("pruned scan matched %d rows, want 200", n)
	}
	// A range outside the data prunes everything.
	groups, err = r.PruneRange(0, Int64Value(5000), Int64Value(6000))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("out-of-range prune kept %v", groups)
	}
}

func TestDictionaryEncodingKicksIn(t *testing.T) {
	// Low-cardinality strings must dictionary-encode to a smaller file
	// than high-cardinality ones of the same total length.
	write := func(city func(i int) string) int {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, Schema{Columns: []Column{{Name: "c", Type: TString}}}, 1024)
		for i := 0; i < 4000; i++ {
			w.WriteRow(StringValue(city(i)))
		}
		w.Close()
		return buf.Len()
	}
	low := write(func(i int) string { return fmt.Sprintf("city-%08d", i%3) })
	high := write(func(i int) string { return fmt.Sprintf("city-%08d", i) })
	if low >= high/2 {
		t.Errorf("dictionary encoding ineffective: low-card %d bytes vs high-card %d", low, high)
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Schema{}, 0); err == nil {
		t.Error("empty schema accepted")
	}
	w, _ := NewWriter(&buf, testSchema, 0)
	if err := w.WriteRow(Int64Value(1)); err == nil {
		t.Error("short row accepted")
	}
	if err := w.WriteRow(StringValue("x"), Float64Value(1), StringValue("y")); err == nil {
		t.Error("mistyped row accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := w.WriteRow(Int64Value(1), Float64Value(1), StringValue("x")); err == nil {
		t.Error("write after close accepted")
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testSchema, 16)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 0 || r.NumRowGroups() != 0 {
		t.Fatalf("empty file: rows=%d groups=%d", r.NumRows(), r.NumRowGroups())
	}
	n := 0
	r.Scan(nil, []string{"id"}, func([]Value) error { n++; return nil })
	if n != 0 {
		t.Error("empty file scanned rows")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open([]byte("short")); err == nil {
		t.Error("short file accepted")
	}
	if _, err := Open([]byte("XXXXXXWRONGMAGICbutlongenough_andmore_padding")); err == nil {
		t.Error("bad magic accepted")
	}
	r := writeRows(t, 64, 100)
	cut := r.data[:len(r.data)-4]
	if _, err := Open(cut); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestQuickRoundTripInt64(t *testing.T) {
	schema := Schema{Columns: []Column{{Name: "v", Type: TInt64}}}
	f := func(vals []int64) bool {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, schema, 7) // odd group size exercises boundaries
		for _, v := range vals {
			if err := w.WriteRow(Int64Value(v)); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := Open(buf.Bytes())
		if err != nil {
			return false
		}
		var got []int64
		if err := r.Scan(nil, []string{"v"}, func(row []Value) error {
			got = append(got, row[0].I)
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestTPCHRowsFitColumnar: flat relational rows (the paper's data-warehouse
// side) infer a schema and round-trip through the columnar format.
func TestTPCHRowsFitColumnar(t *testing.T) {
	ds := tpch.Generate(tpch.Config{SF: 0.02, Seed: 3})
	var rows [][]string
	for _, o := range ds.Orders {
		rows = append(rows, strings.Split(o.Raw(), "|"))
	}
	schema, err := InferSchema(rows, []string{"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"})
	if err != nil {
		t.Fatalf("TPC-H rows must fit a fixed schema: %v", err)
	}
	if schema.Columns[0].Type != TInt64 || schema.Columns[3].Type != TFloat64 {
		t.Fatalf("inferred schema wrong: %+v", schema)
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, schema, 256)
	for _, r := range rows {
		var id, ck, od int64
		var tp float64
		fmt.Sscan(r[0], &id)
		fmt.Sscan(r[1], &ck)
		fmt.Sscan(r[2], &od)
		fmt.Sscan(r[3], &tp)
		if err := w.WriteRow(Int64Value(id), Int64Value(ck), Int64Value(od), Float64Value(tp)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	r, err := Open(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != uint64(len(rows)) {
		t.Fatalf("columnar file has %d rows, want %d", r.NumRows(), len(rows))
	}
}

// TestClaimsCannotBeColumnar reproduces §IV's negative result: the nested,
// dynamically-defined claim sub-records do not share a flat layout, so no
// fixed columnar schema exists for them.
func TestClaimsCannotBeColumnar(t *testing.T) {
	corpus := claims.Generate(claims.Config{Claims: 50, Seed: 4})
	var rows [][]string
	for _, c := range corpus.Claims {
		for _, line := range strings.Split(strings.TrimRight(c.Raw(), "\n"), "\n") {
			rows = append(rows, strings.Split(line, ","))
		}
	}
	_, err := InferSchema(rows, nil)
	if err == nil {
		t.Fatal("dynamically-defined claim records must not fit a fixed columnar schema")
	}
	if !strings.Contains(err.Error(), "dynamically defined") {
		t.Errorf("error should explain the §IV failure mode: %v", err)
	}
}
