// Package columnar is a minimal open columnar file format in the spirit of
// Apache Parquet: typed schema, row groups, per-column chunks with
// dictionary encoding for strings, and per-chunk min/max statistics (zone
// maps) that let scans skip row groups a predicate cannot match.
//
// It plays two roles in this reproduction. First, it is the "open file
// format" substrate the paper's data-lake context assumes (§I: data lakes
// "hold datasets in open file formats such as Apache Parquet"): the
// baseline can scan columnar files with predicate pushdown and group
// pruning. Second, it demonstrates the case study's negative result (§IV):
// the dynamically-defined insurance-claim records "cannot properly
// express[ed]" in such a format — InferSchema fails on them, which is
// exactly why LakeHarbor stores them raw and applies schema-on-read.
//
// File layout:
//
//	magic "COLF1\n"
//	row groups, back to back; each group holds one chunk per column:
//	  chunk = encoding byte, stats(min,max), uint32 payload len, payload
//	footer:
//	  uint32 group count; per group: uint64 offset, uint32 row count
//	  uint32 column count; per column: string name, byte type
//	  uint64 total rows
//	  uint32 footer length, magic "COLFEND1"
//
// Integers are little-endian; chunk integer payloads are zigzag varints;
// string chunks are dictionary-encoded when the dictionary is smaller than
// the plain payload.
package columnar

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Type is a column's value type.
type Type byte

const (
	// TInt64 is a signed 64-bit integer column.
	TInt64 Type = 1
	// TFloat64 is a 64-bit float column.
	TFloat64 Type = 2
	// TString is a byte-string column.
	TString Type = 3
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TInt64:
		return "int64"
	case TFloat64:
		return "float64"
	case TString:
		return "string"
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// Column is one schema column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered column list.
type Schema struct {
	Columns []Column
}

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Value is one typed cell.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// Int64Value wraps an int64.
func Int64Value(v int64) Value { return Value{T: TInt64, I: v} }

// Float64Value wraps a float64.
func Float64Value(v float64) Value { return Value{T: TFloat64, F: v} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{T: TString, S: v} }

// Compare orders two values of the same type: -1, 0, or +1.
func Compare(a, b Value) int {
	switch a.T {
	case TInt64:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
	case TFloat64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
	case TString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
	}
	return 0
}

// String renders the value.
func (v Value) String() string {
	switch v.T {
	case TInt64:
		return fmt.Sprint(v.I)
	case TFloat64:
		return fmt.Sprint(v.F)
	case TString:
		return v.S
	}
	return "<invalid>"
}

const (
	fileMagic = "COLF1\n"
	tailMagic = "COLFEND1"

	encVarint     byte = 1
	encPlainFloat byte = 2
	encPlainStr   byte = 3
	encDictStr    byte = 4
)

// DefaultRowGroupSize is the writer's default rows-per-group.
const DefaultRowGroupSize = 4096

// maxSaneLen bounds length prefixes read from untrusted files.
const maxSaneLen = 1 << 30

// InferSchema derives a fixed schema from delimited raw records, as a
// hypothetical "convert the lake to columnar" step would. It fails —
// deliberately, mirroring the paper's §IV observation — when records do
// not share one flat field layout, as with the dynamically-defined
// insurance claims.
func InferSchema(rows [][]string, names []string) (Schema, error) {
	if len(rows) == 0 {
		return Schema{}, fmt.Errorf("columnar: no rows to infer from")
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			return Schema{}, fmt.Errorf(
				"columnar: row %d has %d fields but row 0 has %d: records are dynamically defined and cannot be expressed in a fixed columnar schema",
				i, len(r), width)
		}
	}
	if len(names) != width {
		return Schema{}, fmt.Errorf("columnar: %d names for %d fields", len(names), width)
	}
	s := Schema{}
	for col := 0; col < width; col++ {
		t := TInt64
		for _, r := range rows {
			if !looksInt(r[col]) {
				if looksFloat(r[col]) {
					if t == TInt64 {
						t = TFloat64
					}
				} else {
					t = TString
					break
				}
			}
		}
		s.Columns = append(s.Columns, Column{Name: names[col], Type: t})
	}
	return s, nil
}

func looksInt(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' {
		i = 1
		if len(s) == 1 {
			return false
		}
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func looksFloat(s string) bool {
	dot := false
	i := 0
	if len(s) > 0 && s[0] == '-' {
		i = 1
	}
	if i >= len(s) {
		return false
	}
	for ; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
		case s[i] == '.' && !dot:
			dot = true
		default:
			return false
		}
	}
	return true
}

// binary helpers

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func putU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func putBytes(w io.Writer, b []byte) error {
	if err := putU32(w, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func putValue(w io.Writer, v Value) error {
	switch v.T {
	case TInt64:
		return putU64(w, uint64(v.I))
	case TFloat64:
		return putU64(w, math.Float64bits(v.F))
	case TString:
		return putBytes(w, []byte(v.S))
	}
	return fmt.Errorf("columnar: invalid value type %d", v.T)
}

type sliceReader struct {
	b   []byte
	pos int
}

func (r *sliceReader) u32() (uint32, error) {
	if r.pos+4 > len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *sliceReader) u64() (uint64, error) {
	if r.pos+8 > len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *sliceReader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) > maxSaneLen || r.pos+int(n) > len(r.b) {
		return nil, io.ErrUnexpectedEOF
	}
	b := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

func (r *sliceReader) byte1() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.b[r.pos]
	r.pos++
	return b, nil
}

func (r *sliceReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	r.pos += n
	return v, nil
}

func (r *sliceReader) value(t Type) (Value, error) {
	switch t {
	case TInt64:
		u, err := r.u64()
		return Value{T: TInt64, I: int64(u)}, err
	case TFloat64:
		u, err := r.u64()
		return Value{T: TFloat64, F: math.Float64frombits(u)}, err
	case TString:
		b, err := r.bytes()
		return Value{T: TString, S: string(b)}, err
	}
	return Value{}, fmt.Errorf("columnar: invalid type %d", t)
}
