package columnar

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Reader opens a columnar file held in memory (the dfs substrate keeps
// partitions in memory; a disk-backed variant would mmap instead).
type Reader struct {
	data   []byte
	schema Schema
	groups []groupMeta
	rows   uint64
}

// Open parses the file's footer and prepares group access.
func Open(data []byte) (*Reader, error) {
	if len(data) < len(fileMagic)+len(tailMagic)+4 {
		return nil, fmt.Errorf("columnar: file too short (%d bytes)", len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("columnar: bad magic")
	}
	if string(data[len(data)-len(tailMagic):]) != tailMagic {
		return nil, fmt.Errorf("columnar: bad tail magic (truncated file?)")
	}
	flenPos := len(data) - len(tailMagic) - 4
	flen := binary.LittleEndian.Uint32(data[flenPos:])
	if uint64(flen) > uint64(flenPos) {
		return nil, fmt.Errorf("columnar: absurd footer length %d", flen)
	}
	footer := &sliceReader{b: data[uint32(flenPos)-flen : flenPos]}

	r := &Reader{data: data}
	nGroups, err := footer.u32()
	if err != nil {
		return nil, err
	}
	if uint64(nGroups) > maxSaneLen {
		return nil, fmt.Errorf("columnar: absurd group count %d", nGroups)
	}
	for i := uint32(0); i < nGroups; i++ {
		off, err := footer.u64()
		if err != nil {
			return nil, err
		}
		rows, err := footer.u32()
		if err != nil {
			return nil, err
		}
		r.groups = append(r.groups, groupMeta{offset: off, rows: rows})
	}
	nCols, err := footer.u32()
	if err != nil {
		return nil, err
	}
	if uint64(nCols) > maxSaneLen {
		return nil, fmt.Errorf("columnar: absurd column count %d", nCols)
	}
	for i := uint32(0); i < nCols; i++ {
		name, err := footer.bytes()
		if err != nil {
			return nil, err
		}
		t, err := footer.byte1()
		if err != nil {
			return nil, err
		}
		r.schema.Columns = append(r.schema.Columns, Column{Name: string(name), Type: Type(t)})
	}
	r.rows, err = footer.u64()
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Schema returns the file's schema.
func (r *Reader) Schema() Schema { return r.schema }

// NumRows returns the total row count.
func (r *Reader) NumRows() uint64 { return r.rows }

// NumRowGroups returns the row-group count.
func (r *Reader) NumRowGroups() int { return len(r.groups) }

// chunkAt walks group g's chunks up to column col and returns a reader
// positioned at that chunk.
func (r *Reader) chunkAt(g, col int) (*sliceReader, error) {
	if g < 0 || g >= len(r.groups) {
		return nil, fmt.Errorf("columnar: group %d out of range", g)
	}
	if col < 0 || col >= len(r.schema.Columns) {
		return nil, fmt.Errorf("columnar: column %d out of range", col)
	}
	sr := &sliceReader{b: r.data, pos: int(r.groups[g].offset)}
	for c := 0; c < col; c++ {
		if err := skipChunk(sr, r.schema.Columns[c].Type); err != nil {
			return nil, err
		}
	}
	return sr, nil
}

func skipChunk(sr *sliceReader, t Type) error {
	if _, err := sr.byte1(); err != nil {
		return err
	}
	if _, err := sr.value(t); err != nil { // min
		return err
	}
	if _, err := sr.value(t); err != nil { // max
		return err
	}
	_, err := sr.bytes()
	return err
}

// GroupStats returns the zone map (min, max) of column col in group g.
func (r *Reader) GroupStats(g, col int) (minV, maxV Value, err error) {
	sr, err := r.chunkAt(g, col)
	if err != nil {
		return Value{}, Value{}, err
	}
	t := r.schema.Columns[col].Type
	if _, err := sr.byte1(); err != nil {
		return Value{}, Value{}, err
	}
	minV, err = sr.value(t)
	if err != nil {
		return Value{}, Value{}, err
	}
	maxV, err = sr.value(t)
	return minV, maxV, err
}

// PruneRange returns the groups whose zone maps intersect [lo, hi] on
// column col: the groups a range scan must read.
func (r *Reader) PruneRange(col int, lo, hi Value) ([]int, error) {
	var out []int
	for g := range r.groups {
		minV, maxV, err := r.GroupStats(g, col)
		if err != nil {
			return nil, err
		}
		if Compare(maxV, lo) < 0 || Compare(minV, hi) > 0 {
			continue
		}
		out = append(out, g)
	}
	return out, nil
}

// readColumn decodes the full column chunk of group g.
func (r *Reader) readColumn(g, col int) ([]Value, error) {
	sr, err := r.chunkAt(g, col)
	if err != nil {
		return nil, err
	}
	t := r.schema.Columns[col].Type
	enc, err := sr.byte1()
	if err != nil {
		return nil, err
	}
	if _, err := sr.value(t); err != nil { // min
		return nil, err
	}
	if _, err := sr.value(t); err != nil { // max
		return nil, err
	}
	payload, err := sr.bytes()
	if err != nil {
		return nil, err
	}
	n := int(r.groups[g].rows)
	out := make([]Value, 0, n)
	pr := &sliceReader{b: payload}
	switch enc {
	case encVarint:
		for i := 0; i < n; i++ {
			v, err := pr.varint()
			if err != nil {
				return nil, err
			}
			out = append(out, Int64Value(v))
		}
	case encPlainFloat:
		for i := 0; i < n; i++ {
			u, err := pr.u64()
			if err != nil {
				return nil, err
			}
			out = append(out, Float64Value(math.Float64frombits(u)))
		}
	case encPlainStr:
		for i := 0; i < n; i++ {
			b, err := pr.bytes()
			if err != nil {
				return nil, err
			}
			out = append(out, StringValue(string(b)))
		}
	case encDictStr:
		count, err := pr.u32()
		if err != nil {
			return nil, err
		}
		if uint64(count) > maxSaneLen {
			return nil, fmt.Errorf("columnar: absurd dictionary size %d", count)
		}
		dict := make([]string, count)
		for i := range dict {
			b, err := pr.bytes()
			if err != nil {
				return nil, err
			}
			dict[i] = string(b)
		}
		for i := 0; i < n; i++ {
			idx, err := pr.varint()
			if err != nil {
				return nil, err
			}
			if idx < 0 || idx >= int64(len(dict)) {
				return nil, fmt.Errorf("columnar: dictionary index %d out of range", idx)
			}
			out = append(out, StringValue(dict[idx]))
		}
	default:
		return nil, fmt.Errorf("columnar: unknown encoding %d", enc)
	}
	return out, nil
}

// Scan reads the projected columns of every group in groups (nil = all),
// calling fn once per row with values in the projection's order. This is
// the columnar read path: only projected columns are decoded, and group
// pruning happens before Scan via PruneRange.
func (r *Reader) Scan(groups []int, projection []string, fn func(row []Value) error) error {
	cols := make([]int, len(projection))
	for i, name := range projection {
		cols[i] = r.schema.ColumnIndex(name)
		if cols[i] < 0 {
			return fmt.Errorf("columnar: no column %q", name)
		}
	}
	if groups == nil {
		for g := range r.groups {
			groups = append(groups, g)
		}
	}
	row := make([]Value, len(cols))
	for _, g := range groups {
		data := make([][]Value, len(cols))
		for i, c := range cols {
			vals, err := r.readColumn(g, c)
			if err != nil {
				return err
			}
			data[i] = vals
		}
		if g < 0 || g >= len(r.groups) {
			return fmt.Errorf("columnar: group %d out of range", g)
		}
		for i := 0; i < int(r.groups[g].rows); i++ {
			for c := range cols {
				row[c] = data[c][i]
			}
			if err := fn(row); err != nil {
				return err
			}
		}
	}
	return nil
}
