package columnar

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer streams rows into a columnar file, flushing a row group every
// RowGroupSize rows.
type Writer struct {
	w      io.Writer
	schema Schema
	per    int

	buf     [][]Value // pending rows
	offset  uint64    // bytes written so far
	groups  []groupMeta
	rows    uint64
	started bool
	closed  bool
}

type groupMeta struct {
	offset uint64
	rows   uint32
}

// NewWriter starts a columnar file with the schema on w. rowGroupSize <= 0
// selects DefaultRowGroupSize.
func NewWriter(w io.Writer, schema Schema, rowGroupSize int) (*Writer, error) {
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("columnar: empty schema")
	}
	if rowGroupSize <= 0 {
		rowGroupSize = DefaultRowGroupSize
	}
	return &Writer{w: w, schema: schema, per: rowGroupSize}, nil
}

// WriteRow appends one row; values must match the schema's types in order.
func (wr *Writer) WriteRow(vals ...Value) error {
	if wr.closed {
		return fmt.Errorf("columnar: writer is closed")
	}
	if len(vals) != len(wr.schema.Columns) {
		return fmt.Errorf("columnar: row has %d values, schema has %d columns", len(vals), len(wr.schema.Columns))
	}
	for i, v := range vals {
		if v.T != wr.schema.Columns[i].Type {
			return fmt.Errorf("columnar: column %q: value type %s, want %s",
				wr.schema.Columns[i].Name, v.T, wr.schema.Columns[i].Type)
		}
	}
	row := make([]Value, len(vals))
	copy(row, vals)
	wr.buf = append(wr.buf, row)
	wr.rows++
	if len(wr.buf) >= wr.per {
		return wr.flushGroup()
	}
	return nil
}

func (wr *Writer) ensureMagic() error {
	if wr.started {
		return nil
	}
	wr.started = true
	n, err := wr.w.Write([]byte(fileMagic))
	wr.offset += uint64(n)
	return err
}

func (wr *Writer) flushGroup() error {
	if len(wr.buf) == 0 {
		return nil
	}
	if err := wr.ensureMagic(); err != nil {
		return err
	}
	var group bytes.Buffer
	for col, c := range wr.schema.Columns {
		if err := writeChunk(&group, c.Type, wr.buf, col); err != nil {
			return err
		}
	}
	wr.groups = append(wr.groups, groupMeta{offset: wr.offset, rows: uint32(len(wr.buf))})
	n, err := wr.w.Write(group.Bytes())
	wr.offset += uint64(n)
	wr.buf = wr.buf[:0]
	return err
}

// writeChunk encodes one column of the pending rows: encoding byte, min,
// max, payload length, payload.
func writeChunk(w *bytes.Buffer, t Type, rows [][]Value, col int) error {
	minV, maxV := rows[0][col], rows[0][col]
	for _, r := range rows[1:] {
		if Compare(r[col], minV) < 0 {
			minV = r[col]
		}
		if Compare(r[col], maxV) > 0 {
			maxV = r[col]
		}
	}

	var payload bytes.Buffer
	var enc byte
	switch t {
	case TInt64:
		enc = encVarint
		var tmp [binary.MaxVarintLen64]byte
		for _, r := range rows {
			n := binary.PutVarint(tmp[:], r[col].I)
			payload.Write(tmp[:n])
		}
	case TFloat64:
		enc = encPlainFloat
		for _, r := range rows {
			if err := putU64(&payload, math.Float64bits(r[col].F)); err != nil {
				return err
			}
		}
	case TString:
		// Build a dictionary; use it only if it is actually smaller.
		dict := map[string]int{}
		var entries []string
		for _, r := range rows {
			if _, ok := dict[r[col].S]; !ok {
				dict[r[col].S] = len(entries)
				entries = append(entries, r[col].S)
			}
		}
		var dictBuf bytes.Buffer
		putU32(&dictBuf, uint32(len(entries)))
		for _, e := range entries {
			putBytes(&dictBuf, []byte(e))
		}
		var tmp [binary.MaxVarintLen64]byte
		for _, r := range rows {
			n := binary.PutVarint(tmp[:], int64(dict[r[col].S]))
			dictBuf.Write(tmp[:n])
		}
		var plainBuf bytes.Buffer
		for _, r := range rows {
			putBytes(&plainBuf, []byte(r[col].S))
		}
		if dictBuf.Len() < plainBuf.Len() {
			enc = encDictStr
			payload = dictBuf
		} else {
			enc = encPlainStr
			payload = plainBuf
		}
	default:
		return fmt.Errorf("columnar: invalid column type %d", t)
	}

	w.WriteByte(enc)
	if err := putValue(w, minV); err != nil {
		return err
	}
	if err := putValue(w, maxV); err != nil {
		return err
	}
	return putBytes(w, payload.Bytes())
}

// Close flushes the final group and writes the footer. The Writer cannot be
// used afterwards.
func (wr *Writer) Close() error {
	if wr.closed {
		return nil
	}
	if err := wr.flushGroup(); err != nil {
		return err
	}
	if err := wr.ensureMagic(); err != nil { // empty file still gets magic
		return err
	}
	wr.closed = true

	var footer bytes.Buffer
	putU32(&footer, uint32(len(wr.groups)))
	for _, g := range wr.groups {
		putU64(&footer, g.offset)
		putU32(&footer, g.rows)
	}
	putU32(&footer, uint32(len(wr.schema.Columns)))
	for _, c := range wr.schema.Columns {
		putBytes(&footer, []byte(c.Name))
		footer.WriteByte(byte(c.Type))
	}
	putU64(&footer, wr.rows)

	if _, err := wr.w.Write(footer.Bytes()); err != nil {
		return err
	}
	if err := putU32(wr.w, uint32(footer.Len())); err != nil {
		return err
	}
	_, err := wr.w.Write([]byte(tailMagic))
	return err
}
