package planner

import (
	"context"
	"fmt"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// sampledPartitions is how many index partitions EstimateRangeRows reads to
// extrapolate the range cardinality. Hash-partitioned indexes spread any
// key range evenly, so a small sample is accurate; range-partitioned
// indexes fall back to exact per-partition counting over the overlap.
const sampledPartitions = 2

// EstimateRangeRows estimates how many index entries fall in [lo, hi] by
// sampling partitions and extrapolating.
func EstimateRangeRows(ctx context.Context, cluster *dfs.Cluster, index string, lo, hi lake.Key) (int64, error) {
	bf, err := cluster.BtreeFile(index)
	if err != nil {
		return 0, fmt.Errorf("planner: driver index: %w", err)
	}
	n := bf.NumPartitions()

	if rp, ok := bf.Partitioner().(lake.RangePartitioner); ok {
		// Range partitioning localizes the range: count it exactly.
		var total int64
		for _, p := range rp.PartitionsOverlapping(lo, hi, n) {
			c, err := countRange(ctx, bf, p, lo, hi)
			if err != nil {
				return 0, err
			}
			total += c
		}
		return total, nil
	}

	sample := sampledPartitions
	if sample > n {
		sample = n
	}
	var counted int64
	for p := 0; p < sample; p++ {
		c, err := countRange(ctx, bf, p, lo, hi)
		if err != nil {
			return 0, err
		}
		counted += c
	}
	// Extrapolate with rounding.
	return (counted*int64(n) + int64(sample)/2) / int64(sample), nil
}

// countRange counts matching entries in one partition.
func countRange(ctx context.Context, bf lake.BtreeFile, partition int, lo, hi lake.Key) (int64, error) {
	recs, err := bf.LookupRange(ctx, partition, lo, hi)
	if err != nil {
		return 0, err
	}
	return int64(len(recs)), nil
}
