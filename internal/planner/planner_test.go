package planner

import (
	"context"
	"strings"
	"testing"

	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/sim"
	"lakeharbor/internal/tpch"
)

// q5Query declares Q5′ to the planner: the same query that
// internal/tpch.Q5Job hand-codes as a Reference-Dereference chain.
func q5Query(t testing.TB, ctx context.Context, cluster *dfs.Cluster, region string, loDay, hiDay int) *Query {
	t.Helper()
	nations, err := tpch.NationsOfRegionLake(ctx, cluster, region)
	if err != nil {
		t.Fatal(err)
	}
	orders := Table{Name: tpch.FileOrders, Interp: tpch.InterpOrders, Key: "o_orderkey", Encode: tpch.EncodeInt}
	customer := Table{Name: tpch.FileCustomer, Interp: tpch.InterpCustomer, Key: "c_custkey", Encode: tpch.EncodeInt}
	lineitem := Table{Name: tpch.FileLineitem, Interp: tpch.InterpLineitem, Key: "l_orderkey", Encode: tpch.EncodeInt}
	supplier := Table{Name: tpch.FileSupplier, Interp: tpch.InterpSupplier, Key: "s_suppkey", Encode: tpch.EncodeInt}

	return &Query{
		Name:        "q5-declarative",
		From:        orders,
		DriverIndex: tpch.IdxOrdersDate,
		DriverLo:    keycodec.Int64(int64(loDay)),
		DriverHi:    keycodec.Int64(int64(hiDay - 1)),
		DriverPred: func(f core.Fields) (bool, error) {
			d, err := tpch.EncodeInt(f["o_orderdate"])
			if err != nil {
				return false, err
			}
			return d >= keycodec.Int64(int64(loDay)) && d <= keycodec.Int64(int64(hiDay-1)), nil
		},
		Joins: []Join{
			{FromField: "o_custkey", To: customer,
				Pred: func(f core.Fields) (bool, error) { return nations[f["c_nationkey"]], nil }},
			{FromField: "o_orderkey", To: lineitem, ToField: "l_orderkey", Prefix: true},
			{FromField: "l_suppkey", To: supplier},
		},
		Where: func(f core.Fields) (bool, error) {
			return f["s_nationkey"] == f["c_nationkey"] && nations[f["s_nationkey"]], nil
		},
	}
}

func loadedCluster(t testing.TB, sf float64, nodes int, cost sim.CostModel) (*dfs.Cluster, *tpch.Dataset) {
	t.Helper()
	ctx := context.Background()
	ds := tpch.Generate(tpch.Config{SF: sf, Seed: 7})
	c := dfs.NewCluster(dfs.Config{Nodes: nodes, Cost: cost})
	if err := tpch.Load(ctx, c, ds, 0); err != nil {
		t.Fatal(err)
	}
	if err := tpch.BuildStructures(ctx, c); err != nil {
		t.Fatal(err)
	}
	return c, ds
}

func TestCompiledJobMatchesOracle(t *testing.T) {
	ctx := context.Background()
	cluster, ds := loadedCluster(t, 0.05, 3, sim.CostModel{})
	lo, hi := tpch.DateRange(0.2)
	q := q5Query(t, ctx, cluster, "ASIA", lo, hi)

	job, err := CompileJob(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if want := ds.OracleQ5("ASIA", lo, hi); res.Count != want {
		t.Fatalf("compiled job count = %d, oracle = %d", res.Count, want)
	}
}

func TestScanPlanMatchesOracle(t *testing.T) {
	ctx := context.Background()
	cluster, ds := loadedCluster(t, 0.05, 3, sim.CostModel{})
	lo, hi := tpch.DateRange(0.2)
	q := q5Query(t, ctx, cluster, "ASIA", lo, hi)

	pl := New(cluster, 4)
	res, err := pl.executeScan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if want := ds.OracleQ5("ASIA", lo, hi); res.Count != want {
		t.Fatalf("scan plan count = %d, oracle = %d", res.Count, want)
	}
}

func TestBothPlansReturnSameRows(t *testing.T) {
	ctx := context.Background()
	cluster, _ := loadedCluster(t, 0.03, 2, sim.CostModel{})
	lo, hi := tpch.DateRange(0.3)
	q := q5Query(t, ctx, cluster, "AMERICA", lo, hi)

	pl := New(cluster, 4)
	pl.SMPEOptions.KeepRecords = true

	job, err := CompileJob(q)
	if err != nil {
		t.Fatal(err)
	}
	idxRes, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{Threads: 32, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	scanRes, err := pl.executeScan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if idxRes.Count != scanRes.Count {
		t.Fatalf("index plan %d rows, scan plan %d rows", idxRes.Count, scanRes.Count)
	}
	if idxRes.Count == 0 {
		t.Skip("no qualifying rows at this seed")
	}
	// Both plans' rows interpret identically with the same composite
	// interpreter.
	interp := core.Composite(tpch.InterpOrders, tpch.InterpCustomer, tpch.InterpLineitem, tpch.InterpSupplier)
	seen := map[string]int{}
	for _, r := range idxRes.Records {
		f, err := interp(r)
		if err != nil {
			t.Fatal(err)
		}
		seen[f["o_orderkey"]+"|"+f["l_linenumber"]+"|"+f["s_suppkey"]]++
	}
	for _, r := range scanRes.Records {
		f, err := interp(r)
		if err != nil {
			t.Fatal(err)
		}
		k := f["o_orderkey"] + "|" + f["l_linenumber"] + "|" + f["s_suppkey"]
		seen[k]--
		if seen[k] < 0 {
			t.Fatalf("scan plan produced extra row %s", k)
		}
	}
	for k, n := range seen {
		if n != 0 {
			t.Fatalf("row %s differs between plans (%+d)", k, n)
		}
	}
}

func TestPlanChoosesBySelectivity(t *testing.T) {
	ctx := context.Background()
	cluster, ds := loadedCluster(t, 0.1, 3, sim.HDDProfile())
	pl := New(cluster, 16)

	// Very selective: the index plan must win.
	lo, hi := tpch.DateRange(0.0005)
	if hi <= lo {
		hi = lo + 1
	}
	p, err := pl.Plan(ctx, q5Query(t, ctx, cluster, "ASIA", lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != IndexPlan {
		t.Errorf("selective query planned as %s (idx=%v scan=%v)", p.Strategy, p.EstimatedIndexCost, p.EstimatedScanCost)
	}

	// Unselective: the scan plan must win.
	lo, hi = tpch.DateRange(1.0)
	p2, err := pl.Plan(ctx, q5Query(t, ctx, cluster, "ASIA", lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Strategy != ScanPlan {
		t.Errorf("full-range query planned as %s (idx=%v scan=%v)", p2.Strategy, p2.EstimatedIndexCost, p2.EstimatedScanCost)
	}
	if p2.EstimatedDriverRows <= p.EstimatedDriverRows {
		t.Errorf("estimates not monotone: %d vs %d", p.EstimatedDriverRows, p2.EstimatedDriverRows)
	}

	// Both chosen plans produce the oracle answer.
	res, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	loS, hiS := tpch.DateRange(0.0005)
	if hiS <= loS {
		hiS = loS + 1
	}
	if want := ds.OracleQ5("ASIA", loS, hiS); res.Count != want {
		t.Errorf("index plan execute = %d, oracle = %d", res.Count, want)
	}
	res2, err := p2.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	loF, hiF := tpch.DateRange(1.0)
	if want := ds.OracleQ5("ASIA", loF, hiF); res2.Count != want {
		t.Errorf("scan plan execute = %d, oracle = %d", res2.Count, want)
	}

	if !strings.Contains(p.Explain(), "strategy=index") {
		t.Errorf("Explain: %s", p.Explain())
	}
	if !strings.Contains(p2.Explain(), "strategy=scan") {
		t.Errorf("Explain: %s", p2.Explain())
	}
}

func TestEstimateRangeRowsHash(t *testing.T) {
	ctx := context.Background()
	cluster, ds := loadedCluster(t, 0.1, 2, sim.CostModel{})
	lo, hi := tpch.DateRange(0.25)
	est, err := EstimateRangeRows(ctx, cluster, tpch.IdxOrdersDate,
		keycodec.Int64(int64(lo)), keycodec.Int64(int64(hi-1)))
	if err != nil {
		t.Fatal(err)
	}
	exact := int64(0)
	for _, o := range ds.Orders {
		if o.OrderDate >= lo && o.OrderDate < hi {
			exact++
		}
	}
	if est < exact/2 || est > exact*2 {
		t.Errorf("estimate %d too far from exact %d", est, exact)
	}
}

func TestEstimateRangeRowsRangePartitioned(t *testing.T) {
	ctx := context.Background()
	cluster := dfs.NewCluster(dfs.Config{Nodes: 2})
	rp := lake.NewRangePartitioner(keycodec.Int64(100), keycodec.Int64(200))
	f, err := cluster.CreateFile("ridx", dfs.Btree, 3, rp)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		k := keycodec.Int64(i)
		if err := dfs.AppendRouted(ctx, f, k, lake.Record{Key: k}); err != nil {
			t.Fatal(err)
		}
	}
	est, err := EstimateRangeRows(ctx, cluster, "ridx", keycodec.Int64(50), keycodec.Int64(249))
	if err != nil {
		t.Fatal(err)
	}
	if est != 200 {
		t.Errorf("range-partitioned estimate = %d, want exactly 200", est)
	}
}

func TestQueryValidation(t *testing.T) {
	good := Table{Name: "t", Interp: tpch.InterpOrders, Key: "k", Encode: tpch.EncodeInt}
	pred := func(core.Fields) (bool, error) { return true, nil }
	cases := []struct {
		name string
		q    Query
	}{
		{"no from", Query{DriverIndex: "i", DriverPred: pred}},
		{"no index", Query{From: good, DriverPred: pred}},
		{"no driver pred", Query{From: good, DriverIndex: "i"}},
		{"inverted range", Query{From: good, DriverIndex: "i", DriverPred: pred, DriverLo: "z", DriverHi: "a"}},
		{"bad join target", Query{From: good, DriverIndex: "i", DriverPred: pred, Joins: []Join{{FromField: "f"}}}},
		{"no join field", Query{From: good, DriverIndex: "i", DriverPred: pred, Joins: []Join{{To: good}}}},
		{"index and prefix", Query{From: good, DriverIndex: "i", DriverPred: pred,
			Joins: []Join{{FromField: "f", To: good, ViaIndex: "x", Prefix: true}}}},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid query", c.name)
		}
	}
}

func TestCompileViaIndexJoin(t *testing.T) {
	// A join through a global index (the Fig. 3/4 pattern) compiled by the
	// planner must match the hand-written tpch job.
	ctx := context.Background()
	cluster, ds := loadedCluster(t, 0.05, 2, sim.CostModel{})
	part := Table{Name: tpch.FilePart, Interp: tpch.InterpPart, Key: "p_partkey", Encode: tpch.EncodeInt}
	lineitem := Table{Name: tpch.FileLineitem, Interp: tpch.InterpLineitem, Key: "l_orderkey", Encode: tpch.EncodeInt}
	loP, hiP := 1000.0, 1400.0
	q := &Query{
		Name:        "part-line-planner",
		From:        part,
		DriverIndex: tpch.IdxPartPrice,
		DriverLo:    keycodec.Float64(loP),
		DriverHi:    keycodec.Float64(hiP),
		DriverPred: func(f core.Fields) (bool, error) {
			k, err := tpch.EncodeFloat(f["p_retailprice"])
			if err != nil {
				return false, err
			}
			return k >= keycodec.Float64(loP) && k <= keycodec.Float64(hiP), nil
		},
		Joins: []Join{
			{FromField: "p_partkey", To: lineitem, ToField: "l_partkey", ViaIndex: tpch.IdxLineitemPart},
		},
	}
	job, err := CompileJob(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if want := ds.OraclePartLineitem(loP, hiP); res.Count != want {
		t.Fatalf("planner via-index join = %d, oracle = %d", res.Count, want)
	}
	// The scan plan agrees too.
	pl := New(cluster, 4)
	sres, err := pl.executeScan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Count != res.Count {
		t.Fatalf("scan plan = %d, index plan = %d", sres.Count, res.Count)
	}
}

func TestSelectionOnlyQuery(t *testing.T) {
	ctx := context.Background()
	cluster, ds := loadedCluster(t, 0.05, 2, sim.CostModel{})
	orders := Table{Name: tpch.FileOrders, Interp: tpch.InterpOrders, Key: "o_orderkey", Encode: tpch.EncodeInt}
	lo, hi := tpch.DateRange(0.1)
	q := &Query{
		Name:        "orders-by-date",
		From:        orders,
		DriverIndex: tpch.IdxOrdersDate,
		DriverLo:    keycodec.Int64(int64(lo)),
		DriverHi:    keycodec.Int64(int64(hi - 1)),
		DriverPred: func(f core.Fields) (bool, error) {
			d, err := tpch.EncodeInt(f["o_orderdate"])
			if err != nil {
				return false, err
			}
			return d >= keycodec.Int64(int64(lo)) && d <= keycodec.Int64(int64(hi-1)), nil
		},
	}
	job, err := CompileJob(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ExecuteSMPE(ctx, job, cluster, cluster, core.Options{Threads: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, o := range ds.Orders {
		if o.OrderDate >= lo && o.OrderDate < hi {
			want++
		}
	}
	if res.Count != want {
		t.Fatalf("selection = %d, want %d", res.Count, want)
	}
	pl := New(cluster, 4)
	sres, err := pl.executeScan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Count != want {
		t.Fatalf("scan selection = %d, want %d", sres.Count, want)
	}
}
