package planner

import (
	"context"
	"testing"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/sim"
	"lakeharbor/internal/tpch"
)

// TestPlannerDegradesWhileStructuresNotReady wires the planner to a
// lifecycle manager and checks graceful degradation end to end: with the
// driver index absent the query routes to the scan path (correct answer,
// "scan-fallback" recorded in the trace), once the structures are ready it
// routes back to the index plan, and a forced evict degrades it again —
// all without a wrong or failed query in between.
func TestPlannerDegradesWhileStructuresNotReady(t *testing.T) {
	ctx := context.Background()
	ds := tpch.Generate(tpch.Config{SF: 0.03, Seed: 7})
	cluster := dfs.NewCluster(dfs.Config{Nodes: 2, Cost: sim.CostModel{}})
	if err := tpch.Load(ctx, cluster, ds, 0); err != nil {
		t.Fatal(err)
	}
	mgr := indexer.NewManager(ctx, cluster, indexer.ManagerOptions{})
	for _, spec := range tpch.StructureSpecs() {
		if err := mgr.Register(spec); err != nil {
			t.Fatal(err)
		}
	}

	lo, hi := tpch.DateRange(0.3)
	want := ds.OracleQ5("ASIA", lo, hi)
	pl := New(cluster, 4)
	pl.Structures = mgr

	// Structures absent: the plan must degrade, not fail on the missing
	// index file, and still produce the right answer via the scan engine.
	q := q5Query(t, ctx, cluster, "ASIA", lo, hi)
	p, err := pl.Plan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Degraded || p.Strategy != ScanPlan {
		t.Fatalf("plan over absent structures: degraded=%v strategy=%v, want degraded scan", p.Degraded, p.Strategy)
	}
	if p.Route() != "scan-fallback" {
		t.Fatalf("route = %q, want scan-fallback", p.Route())
	}
	res, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("degraded plan count = %d, oracle = %d", res.Count, want)
	}
	if res.Trace == nil || res.Trace.Route != "scan-fallback" {
		t.Fatalf("trace route not recorded on degraded run: %+v", res.Trace)
	}
	if f := mgr.Counters().ScanFallbacks; f == 0 {
		t.Fatal("scan fallback not counted")
	}

	// The degraded Plan kicked the builds off in the background; a generous
	// build-wait budget must now ride them to readiness and route through
	// the index plan.
	for _, name := range q.structureNames() {
		if err := mgr.Ensure(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	pl.MaxBuildWait = 10 * time.Second
	p, err = pl.Plan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded {
		t.Fatalf("plan degraded with all structures ready: %+v", p)
	}
	res, err = p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("ready plan count = %d, oracle = %d", res.Count, want)
	}
	if res.Trace == nil || res.Trace.Route != p.Route() {
		t.Fatalf("trace route %v does not match plan route %q", res.Trace, p.Route())
	}

	// Evicting the driver index degrades the next plan again (and kicks off
	// a rebuild); the answer must not change.
	if err := mgr.Evict(q.DriverIndex); err != nil {
		t.Fatal(err)
	}
	pl.MaxBuildWait = 0
	p, err = pl.Plan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Degraded || p.NotReady != q.DriverIndex {
		t.Fatalf("plan after evict: degraded=%v notReady=%q, want degraded on %q", p.Degraded, p.NotReady, q.DriverIndex)
	}
	res, err = p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("post-evict degraded count = %d, oracle = %d", res.Count, want)
	}
}
