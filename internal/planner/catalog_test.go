package planner

import (
	"context"
	"strings"
	"testing"

	"lakeharbor/internal/catalog"
	"lakeharbor/internal/sim"
	"lakeharbor/internal/tpch"
)

// countingViews wraps a real catalog.Service and counts how many snapshots
// the planner takes.
type countingViews struct {
	svc       *catalog.Service
	snapshots int
	versions  int
}

func (c *countingViews) Version() uint64 {
	c.versions++
	return c.svc.Version()
}

func (c *countingViews) Snapshot() catalog.View {
	c.snapshots++
	return c.svc.Snapshot()
}

// TestPlanTakesOneSnapshotPerPlan pins the transactional-planning contract:
// a Catalog that supports snapshot views is read exactly once per Plan call
// — every existence and partition-count check inside the pass shares that
// view — and the plan is stamped with the snapshot's version.
func TestPlanTakesOneSnapshotPerPlan(t *testing.T) {
	ctx := context.Background()
	cluster, _ := loadedCluster(t, 0.01, 2, sim.CostModel{})
	svc := catalog.Attach(cluster, nil)
	cv := &countingViews{svc: svc}

	pl := New(cluster, 4)
	pl.Catalog = cv
	lo, hi := tpch.DateRange(0.2)
	q := q5Query(t, ctx, cluster, "ASIA", lo, hi)

	p, err := pl.Plan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if cv.snapshots != 1 {
		t.Errorf("Plan took %d catalog snapshots, want exactly 1", cv.snapshots)
	}
	if cv.versions != 0 {
		t.Errorf("Plan read Version() %d times alongside the snapshot, want 0", cv.versions)
	}
	if p.CatalogVersion != svc.Version() {
		t.Errorf("plan stamped catalog version %d, service is at %d", p.CatalogVersion, svc.Version())
	}

	if _, err := pl.Plan(ctx, q); err != nil {
		t.Fatal(err)
	}
	if cv.snapshots != 2 {
		t.Errorf("two Plan calls took %d snapshots, want 2", cv.snapshots)
	}
}

// staleViews serves a fixed (here: empty) view regardless of the live
// catalog, standing in for a snapshot taken before the files existed.
type staleViews struct{ view catalog.View }

func (s *staleViews) Version() uint64        { return s.view.Version }
func (s *staleViews) Snapshot() catalog.View { return s.view }

// TestPlanIsPinnedToItsSnapshot: when the snapshot does not contain a file
// the query needs, planning fails against the snapshot's version even
// though the live cluster has the file — the decision is transactional,
// not a torn mix of view and live state.
func TestPlanIsPinnedToItsSnapshot(t *testing.T) {
	ctx := context.Background()
	cluster, _ := loadedCluster(t, 0.01, 2, sim.CostModel{})
	pl := New(cluster, 4)
	pl.Catalog = &staleViews{view: catalog.View{Version: 7}}
	lo, hi := tpch.DateRange(0.2)
	q := q5Query(t, ctx, cluster, "ASIA", lo, hi)

	_, err := pl.Plan(ctx, q)
	if err == nil {
		t.Fatal("planning against an empty snapshot succeeded; want a catalog-version error")
	}
	if !strings.Contains(err.Error(), "version 7") {
		t.Errorf("error %q does not name the snapshot version", err)
	}
}
