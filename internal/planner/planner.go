// Package planner implements the paper's §V-A and §V-D research directions:
// a higher-level, declarative abstraction on top of Reference-Dereference,
// and the selectivity-based plan choice the paper says would let ReDe
// "perform comparably with Impala in the high selectivity range".
//
// A Query declares a driving range predicate over an indexed column and a
// chain of equi-joins; the planner
//
//  1. estimates the driving predicate's selectivity by sampling the index,
//  2. costs an index plan (a generated Reference-Dereference job run with
//     SMPE) against a scan plan (full scans + hash joins on the baseline
//     engine) using the cluster's cost model, and
//  3. compiles and executes the cheaper one.
//
// The compiled index plan uses exactly the pre-defined Referencers and
// Dereferencers of internal/core, so the planner is evidence for the
// paper's claim that a higher-level layer can sit on the abstraction
// without changing the engine.
package planner

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/catalog"
	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/trace"
)

// Table describes one base file to the planner.
type Table struct {
	// Name is the catalog file name.
	Name string
	// Interp interprets the table's raw records.
	Interp core.Interpreter
	// Key is the field name of the primary key (also the partition key).
	Key string
	// Encode converts field values of the key (and of join fields) to
	// ordered keys.
	Encode func(string) (lake.Key, error)
}

// Join is one hop of the join chain: match a field of the rows
// accumulated so far against a column of table To.
type Join struct {
	// FromField is the field (of the accumulated composite row) whose
	// value drives the join.
	FromField string
	// To is the table being joined in.
	To Table
	// ToField is the matched column of To. If it equals To.Key the join
	// fetches rows directly by primary key; if ViaIndex names a global
	// index on ToField, the join probes the index; if Prefix is set, To's
	// rows are keyed by (FromField, ...) and fetched by prefix range.
	ToField string
	// ViaIndex is the catalog name of a global index on To(ToField).
	ViaIndex string
	// Prefix selects prefix-range fetching on To's primary key order.
	Prefix bool
	// Pred optionally drops rows right after this hop, evaluated over the
	// merged schema-on-read fields of everything joined so far.
	Pred func(core.Fields) (bool, error)
}

// Query is a declarative select-project-join over the catalog.
type Query struct {
	// Name labels the query.
	Name string
	// From is the driving table.
	From Table
	// DriverIndex is an index over From; the driving predicate is a key
	// range on it.
	DriverIndex string
	// DriverLo and DriverHi bound the driving predicate (inclusive).
	DriverLo, DriverHi lake.Key
	// DriverPred is the same predicate as the index range, expressed over
	// From's fields; the scan plan needs it because it has no index to
	// push the range into.
	DriverPred func(core.Fields) (bool, error)
	// Joins is the join chain, applied in order.
	Joins []Join
	// Where optionally filters the final rows, evaluated over the merged
	// fields of the whole chain.
	Where func(core.Fields) (bool, error)
}

// Validate checks the query's structural requirements.
func (q *Query) Validate() error {
	if q.From.Name == "" || q.From.Interp == nil || q.From.Encode == nil {
		return fmt.Errorf("planner: query %q: From table incomplete", q.Name)
	}
	if q.DriverIndex == "" {
		return fmt.Errorf("planner: query %q: no driver index", q.Name)
	}
	if q.DriverLo > q.DriverHi {
		return fmt.Errorf("planner: query %q: empty driver range", q.Name)
	}
	if q.DriverPred == nil {
		return fmt.Errorf("planner: query %q: DriverPred is required (the scan plan has no index to bound)", q.Name)
	}
	for i, j := range q.Joins {
		if j.To.Name == "" || j.To.Interp == nil || j.To.Encode == nil {
			return fmt.Errorf("planner: query %q: join %d target incomplete", q.Name, i)
		}
		if j.FromField == "" {
			return fmt.Errorf("planner: query %q: join %d has no FromField", q.Name, i)
		}
		if j.ViaIndex != "" && j.Prefix {
			return fmt.Errorf("planner: query %q: join %d sets both ViaIndex and Prefix", q.Name, i)
		}
	}
	return nil
}

// Strategy names a chosen execution strategy.
type Strategy int

const (
	// IndexPlan executes a generated Reference-Dereference job with SMPE.
	IndexPlan Strategy = iota
	// ScanPlan executes full scans + hash joins on the baseline engine.
	ScanPlan
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == ScanPlan {
		return "scan"
	}
	return "index"
}

// Plan is a costed, executable plan.
type Plan struct {
	Query    *Query
	Strategy Strategy
	// Degraded reports that the scan strategy was forced because a required
	// structure was not ready (building or evicted), not chosen on cost.
	Degraded bool
	// NotReady names the structure that forced the degraded route.
	NotReady string
	// BuildWait is how long planning waited on in-flight structure builds
	// (bounded by Planner.MaxBuildWait).
	BuildWait time.Duration
	// CatalogVersion is the catalog version the plan was made against
	// (0 when the planner has no catalog attached). It travels into the
	// execution trace so a plan and the catalog it observed can be lined up
	// after the fact.
	CatalogVersion uint64
	// EstimatedDriverRows is the sampled estimate of rows matching the
	// driving predicate.
	EstimatedDriverRows int64
	// EstimatedIndexCost and EstimatedScanCost are the modeled execution
	// times of the two strategies.
	EstimatedIndexCost time.Duration
	EstimatedScanCost  time.Duration

	planner *Planner
}

// Route names the plan's execution route for trace attribution: "index",
// "scan" (chosen on cost), or "scan-fallback" (forced by a structure that
// was not ready).
func (p *Plan) Route() string {
	switch {
	case p.Strategy == IndexPlan:
		return "index"
	case p.Degraded:
		return "scan-fallback"
	default:
		return "scan"
	}
}

// Explain renders the planning decision for humans.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %q: strategy=%s\n", p.Query.Name, p.Strategy)
	if p.CatalogVersion > 0 {
		fmt.Fprintf(&b, "  catalog version: %d\n", p.CatalogVersion)
	}
	if p.Degraded {
		fmt.Fprintf(&b, "  degraded: structure %q not ready (waited %v); scan fallback\n", p.NotReady, p.BuildWait)
	}
	fmt.Fprintf(&b, "  estimated driver rows: %d\n", p.EstimatedDriverRows)
	fmt.Fprintf(&b, "  estimated cost: index=%v scan=%v\n", p.EstimatedIndexCost, p.EstimatedScanCost)
	fmt.Fprintf(&b, "  chain: %s[%s]", p.Query.From.Name, p.Query.DriverIndex)
	for _, j := range p.Query.Joins {
		how := "pk"
		if j.ViaIndex != "" {
			how = "idx:" + j.ViaIndex
		} else if j.Prefix {
			how = "prefix"
		}
		fmt.Fprintf(&b, " ⋈(%s→%s.%s via %s)", j.FromField, j.To.Name, j.ToField, how)
	}
	return b.String()
}

// StructureView is the planner's window into the structure lifecycle
// manager (indexer.Manager implements it). Acquire reports whether the
// named structure is resident and ready, touching it for LRU accounting;
// when it is building and maxWait > 0 it may wait for the build, returning
// the time spent; when it is absent or evicted it kicks off a background
// rebuild and reports not ready. Unknown names must report ready.
type StructureView interface {
	Acquire(ctx context.Context, name string, maxWait time.Duration) (ready bool, waited time.Duration)
}

// Planner plans and executes queries over one cluster.
type Planner struct {
	cluster *dfs.Cluster
	engine  *baseline.Engine
	// SMPEOptions configures index-plan execution.
	SMPEOptions core.Options
	// Structures, when set, routes queries around structures that are not
	// resident: a query whose driver index or join index is building or
	// evicted degrades to the scan plan instead of blocking on the build
	// (graceful degradation). Nil preserves the old behavior of assuming
	// every registered structure exists.
	Structures StructureView
	// MaxBuildWait bounds the total time Plan may spend waiting on
	// in-flight structure builds before degrading to the scan path. Zero
	// never waits.
	MaxBuildWait time.Duration
	// Catalog, when set, stamps each plan with the catalog version it was
	// planned against (catalog.Service satisfies this). Sources that also
	// implement CatalogViews upgrade planning to one transactional snapshot
	// per Plan call: existence and partition-count checks then read that
	// view instead of the live cluster catalog.
	Catalog CatalogVersions
}

// CatalogVersions reports a monotonically increasing catalog version; it is
// the planner's window into the versioned metadata service.
type CatalogVersions interface {
	Version() uint64
}

// CatalogViews extends CatalogVersions with transactional snapshots.
// catalog.Service satisfies it. When the attached Catalog implements this,
// Plan takes ONE Snapshot per planning pass and answers every catalog
// question (file existence, partition counts) from that view, so a
// concurrent create or drop cannot tear a single plan between two catalog
// versions.
type CatalogViews interface {
	CatalogVersions
	Snapshot() catalog.View
}

// New returns a Planner over the cluster. coresPerNode configures the scan
// engine's static parallelism (0 = default).
func New(cluster *dfs.Cluster, coresPerNode int) *Planner {
	return &Planner{
		cluster: cluster,
		engine:  baseline.New(cluster, coresPerNode),
	}
}

// structureNames lists every structure the index plan depends on: the
// driver index plus each join's probe index.
func (q *Query) structureNames() []string {
	names := []string{q.DriverIndex}
	for _, j := range q.Joins {
		if j.ViaIndex != "" {
			names = append(names, j.ViaIndex)
		}
	}
	return names
}

// Plan estimates costs for both strategies and picks the cheaper one. With
// a StructureView attached, a query whose structures are not all ready is
// routed to the scan plan (after waiting up to MaxBuildWait for in-flight
// builds) rather than blocking — the degraded route and the build wait are
// recorded on the plan and, at execution, in the result's trace.
func (pl *Planner) Plan(ctx context.Context, q *Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// The catalog is read once, up front — as a transactional snapshot when
	// the attached service supports it, so existence and partition-count
	// checks downstream all see the same version; otherwise just the
	// version number for trace attribution.
	var (
		cv   uint64
		view *catalog.View
	)
	if pl.Catalog != nil {
		if s, ok := pl.Catalog.(CatalogViews); ok {
			v := s.Snapshot()
			view = &v
			cv = v.Version
		} else {
			cv = pl.Catalog.Version()
		}
	}
	if pl.Structures != nil {
		var waited time.Duration
		for _, name := range q.structureNames() {
			budget := pl.MaxBuildWait - waited
			if budget < 0 {
				budget = 0
			}
			ready, w := pl.Structures.Acquire(ctx, name, budget)
			waited += w
			if !ready {
				return &Plan{
					Query:          q,
					Strategy:       ScanPlan,
					Degraded:       true,
					NotReady:       name,
					BuildWait:      waited,
					CatalogVersion: cv,
					planner:        pl,
				}, nil
			}
		}
		p, err := pl.planCosted(ctx, q, view)
		if p != nil {
			p.BuildWait = waited
			p.CatalogVersion = cv
		}
		return p, err
	}
	p, err := pl.planCosted(ctx, q, view)
	if p != nil {
		p.CatalogVersion = cv
	}
	return p, err
}

// viewMeta resolves name against the planning snapshot when one was taken.
// A file absent at the snapshot's version is a planning error naming that
// version — better than racing the live catalog halfway through costing.
// Without a snapshot it reports not-found without error and callers fall
// back to asking the cluster directly.
func viewMeta(view *catalog.View, name string) (catalog.FileMeta, bool, error) {
	if view == nil {
		return catalog.FileMeta{}, false, nil
	}
	meta, ok := view.File(name)
	if !ok {
		return catalog.FileMeta{}, false, fmt.Errorf(
			"planner: %q not in catalog at version %d", name, view.Version)
	}
	return meta, true, nil
}

// planCosted is the cost-based strategy choice over structures assumed
// present.
func (pl *Planner) planCosted(ctx context.Context, q *Query, view *catalog.View) (*Plan, error) {
	if _, _, err := viewMeta(view, q.DriverIndex); err != nil {
		return nil, err
	}
	driverRows, err := EstimateRangeRows(ctx, pl.cluster, q.DriverIndex, q.DriverLo, q.DriverHi)
	if err != nil {
		return nil, err
	}
	idxCost, scanCost, err := pl.costs(q, driverRows, view)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Query:               q,
		EstimatedDriverRows: driverRows,
		EstimatedIndexCost:  idxCost,
		EstimatedScanCost:   scanCost,
		planner:             pl,
	}
	if scanCost < idxCost {
		p.Strategy = ScanPlan
	}
	return p, nil
}

// Execute runs the plan and returns the final rows as composite records
// (index plan) or equivalent joined rows (scan plan), plus the count. The
// chosen route and any structure build wait are recorded in the result's
// trace; scan-plan runs, which bypass the SMPE executor, get a minimal
// trace carrying just that attribution.
func (p *Plan) Execute(ctx context.Context) (*core.Result, error) {
	switch p.Strategy {
	case IndexPlan:
		job, err := CompileJob(p.Query)
		if err != nil {
			return nil, err
		}
		res, err := core.ExecuteSMPE(ctx, job, p.planner.cluster, p.planner.cluster, p.planner.SMPEOptions)
		if err == nil && res.Trace != nil {
			res.Trace.Route = p.Route()
			res.Trace.BuildWait = p.BuildWait
			res.Trace.CatalogVersion = p.CatalogVersion
		}
		return res, err
	default:
		start := time.Now()
		res, err := p.planner.executeScan(ctx, p.Query)
		if err == nil {
			if res.Trace == nil {
				res.Trace = &trace.Snapshot{Job: p.Query.Name, Start: start, Elapsed: res.Elapsed}
			}
			res.Trace.Route = p.Route()
			res.Trace.BuildWait = p.BuildWait
			res.Trace.CatalogVersion = p.CatalogVersion
		}
		return res, err
	}
}

// costs models both strategies with the cluster's cost model. The index
// plan pays one random lookup per touched record, overlapped up to the
// cluster's aggregate I/O service concurrency; the scan plan pays a
// streaming scan of every joined table, overlapped across partitions up to
// per-node spindles/cores.
func (pl *Planner) costs(q *Query, driverRows int64, view *catalog.View) (idx, scan time.Duration, err error) {
	cost := pl.cluster.Cost()
	nodes := pl.cluster.NumNodes()

	// Aggregate service concurrency for random I/O.
	conc := nodes * cost.Spindles
	if conc <= 0 {
		conc = nodes * 64 // effectively unbounded model; just overlap a lot
	}

	// Index plan: per driver row, one fetch of the base record plus each
	// join hop (index probes count as an extra lookup). Fanout per hop is
	// unknown without column stats; assume 1 (equi-joins on keys) plus
	// one extra for prefix hops, which is the right order of magnitude
	// for the workloads here.
	lookupsPerRow := int64(1)
	for _, j := range q.Joins {
		lookupsPerRow++
		if j.ViaIndex != "" || j.Prefix {
			lookupsPerRow++
		}
	}
	totalLookups := driverRows*lookupsPerRow + int64(nodes) // + seed ranges
	idx = time.Duration(totalLookups) * cost.LookupLatency / time.Duration(conc)
	idx += 2 * time.Millisecond // fixed planning/startup overhead

	// Scan plan: every table in the chain is scanned once.
	totalScanned := int64(0)
	tables := []string{q.From.Name}
	for _, j := range q.Joins {
		tables = append(tables, j.To.Name)
	}
	scanConc := 1
	for _, name := range tables {
		// Catalog facts (existence, partition count) come from the planning
		// snapshot when one was taken; row counts are data-plane facts and
		// always come from the cluster.
		meta, fromView, ferr := viewMeta(view, name)
		if ferr != nil {
			return 0, 0, ferr
		}
		parts := meta.Partitions
		if !fromView {
			f, ferr := pl.cluster.File(name)
			if ferr != nil {
				return 0, 0, ferr
			}
			parts = f.NumPartitions()
		}
		n, ferr := pl.cluster.Len(name)
		if ferr != nil {
			return 0, 0, ferr
		}
		totalScanned += int64(n)
		if parts > scanConc {
			scanConc = parts
		}
	}
	if s := nodes * cost.Spindles; s > 0 && scanConc > s {
		scanConc = s
	}
	if c := pl.engine.Cores() * nodes; scanConc > c {
		scanConc = c
	}
	scan = time.Duration(totalScanned) * cost.ScanPerRecord / time.Duration(scanConc)
	scan += 2 * time.Millisecond
	return idx, scan, nil
}
