package planner

import (
	"fmt"

	"lakeharbor/internal/core"
	"lakeharbor/internal/lake"
)

// CompileJob lowers a declarative Query to a Reference-Dereference job:
// the driving range becomes seed pointers + a RangeDeref over the driver
// index, each join hop becomes a FieldRef (with carried context) plus a
// combining Dereferencer — via a global index, a prefix range, or a direct
// primary-key fetch — and predicates become schema-on-read Filters over the
// accumulated composite.
func CompileJob(q *Query) (*core.Job, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	seeds := []lake.Pointer{{File: q.DriverIndex, NoPart: true, Key: q.DriverLo, EndKey: q.DriverHi}}

	// interps[i] interprets segment i of the accumulated composite.
	interps := []core.Interpreter{q.From.Interp}
	merged := func() core.Interpreter {
		if len(interps) == 1 {
			return interps[0]
		}
		cp := make([]core.Interpreter, len(interps))
		copy(cp, interps)
		return core.Composite(cp...)
	}
	// lift turns a Fields predicate into a record Filter via the current
	// composite interpreter.
	lift := func(pred func(core.Fields) (bool, error)) core.Filter {
		if pred == nil {
			return nil
		}
		interp := merged()
		return func(rec lake.Record) (bool, error) {
			f, err := interp(rec)
			if err != nil {
				return false, err
			}
			return pred(f)
		}
	}
	andFilter := func(a, b core.Filter) core.Filter {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		return func(rec lake.Record) (bool, error) {
			ok, err := a(rec)
			if err != nil || !ok {
				return false, err
			}
			return b(rec)
		}
	}

	funcs := []any{
		core.RangeDeref{File: q.DriverIndex},
		core.EntryRef{Target: q.From.Name},
	}
	// The base-table fetch; filters are attached below once we know
	// whether it is the final stage.
	baseFetch := core.LookupDeref{File: q.From.Name}
	if len(q.Joins) == 0 {
		baseFetch.Filter = andFilter(lift(q.DriverPred), lift(q.Where))
		// The driving predicate is implied by the index range; lifting it
		// again is a cheap sanity net and makes the compiled job
		// independent of index correctness.
		funcs = append(funcs, baseFetch)
		return core.NewJob(q.Name, seeds, funcs...)
	}
	funcs = append(funcs, baseFetch)

	for i, j := range q.Joins {
		carry := core.CarryComposite
		if i == 0 {
			carry = core.CarryRecord
		}
		fieldInterp := merged()
		last := i == len(q.Joins)-1

		switch {
		case j.ViaIndex != "":
			funcs = append(funcs,
				core.FieldRef{Target: j.ViaIndex, Interp: fieldInterp,
					Field: j.FromField, Encode: j.To.Encode, Carry: carry},
				core.LookupDeref{File: j.ViaIndex, Combine: true},
				core.EntryRef{Target: j.To.Name, FromComposite: true},
			)
			interps = append(interps, j.To.Interp)
			funcs = append(funcs, core.LookupDeref{
				File:    j.To.Name,
				Combine: true,
				Filter:  joinFilter(q, j, last, lift, andFilter),
			})
		case j.Prefix:
			funcs = append(funcs, core.FieldRef{Target: j.To.Name, Interp: fieldInterp,
				Field: j.FromField, Encode: j.To.Encode, Prefix: true, Carry: carry})
			interps = append(interps, j.To.Interp)
			funcs = append(funcs, core.RangeDeref{
				File:    j.To.Name,
				Combine: true,
				Filter:  joinFilter(q, j, last, lift, andFilter),
			})
		default:
			funcs = append(funcs, core.FieldRef{Target: j.To.Name, Interp: fieldInterp,
				Field: j.FromField, Encode: j.To.Encode, Carry: carry})
			interps = append(interps, j.To.Interp)
			funcs = append(funcs, core.LookupDeref{
				File:    j.To.Name,
				Combine: true,
				Filter:  joinFilter(q, j, last, lift, andFilter),
			})
		}
	}
	job, err := core.NewJob(q.Name, seeds, funcs...)
	if err != nil {
		return nil, fmt.Errorf("planner: compiling %q: %w", q.Name, err)
	}
	return job, nil
}

// joinFilter builds the Filter for a join hop's Dereferencer: the hop's
// own predicate, plus the query's Where on the final hop. lift must be
// called *after* interps has been extended with the hop's table, which
// holds at every call site.
func joinFilter(q *Query, j Join, last bool,
	lift func(func(core.Fields) (bool, error)) core.Filter,
	and func(a, b core.Filter) core.Filter) core.Filter {
	f := lift(j.Pred)
	if last {
		f = and(f, lift(q.Where))
	}
	return f
}
