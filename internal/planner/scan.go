package planner

import (
	"context"
	"fmt"
	"time"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/core"
	"lakeharbor/internal/lake"
)

// executeScan runs the query as full scans + hash joins on the baseline
// engine. It returns the same logical rows as the compiled index plan —
// results are materialized as composite (segment-list) records, so callers
// can interpret either plan's output with the same Composite interpreter.
func (pl *Planner) executeScan(ctx context.Context, q *Query) (*core.Result, error) {
	start := time.Now()
	interps := []core.Interpreter{q.From.Interp}

	driverPred := func(rec lake.Record) (bool, error) {
		f, err := q.From.Interp(rec)
		if err != nil {
			return false, err
		}
		return q.DriverPred(f)
	}
	rows, err := pl.engine.Scan(ctx, q.From.Name, driverPred)
	if err != nil {
		return nil, err
	}
	tuples := baseline.TuplesOf(rows)

	for _, j := range q.Joins {
		build, err := pl.engine.Scan(ctx, j.To.Name, nil)
		if err != nil {
			return nil, err
		}
		toField := j.ToField
		if toField == "" {
			toField = j.To.Key
		}
		buildKey := func(rec lake.Record) (string, error) {
			f, err := j.To.Interp(rec)
			if err != nil {
				return "", err
			}
			v, ok := f[toField]
			if !ok {
				return "", fmt.Errorf("planner: %s has no field %q", j.To.Name, toField)
			}
			return j.To.Encode(v)
		}
		probeInterps := append([]core.Interpreter(nil), interps...)
		probeKey := func(t baseline.Tuple) (string, error) {
			v, err := fieldOfTuple(t, probeInterps, j.FromField)
			if err != nil {
				return "", err
			}
			return j.To.Encode(v)
		}
		tuples, err = baseline.HashJoin(tuples, probeKey, build, buildKey)
		if err != nil {
			return nil, err
		}
		interps = append(interps, j.To.Interp)
		if j.Pred != nil {
			tuples, err = filterTuples(tuples, interps, j.Pred)
			if err != nil {
				return nil, err
			}
		}
	}
	if q.Where != nil {
		tuples, err = filterTuples(tuples, interps, q.Where)
		if err != nil {
			return nil, err
		}
	}

	res := &core.Result{Count: int64(len(tuples)), Elapsed: time.Since(start)}
	if pl.SMPEOptions.KeepRecords {
		for _, t := range tuples {
			res.Records = append(res.Records, tupleRecord(t))
		}
	}
	return res, nil
}

// fieldOfTuple finds the named field in a tuple's merged schema-on-read
// view, searching the most recently joined table first.
func fieldOfTuple(t baseline.Tuple, interps []core.Interpreter, field string) (string, error) {
	for i := len(t) - 1; i >= 0; i-- {
		if i >= len(interps) {
			continue
		}
		f, err := interps[i](t[i])
		if err != nil {
			return "", err
		}
		if v, ok := f[field]; ok {
			return v, nil
		}
	}
	return "", fmt.Errorf("planner: no joined table has field %q", field)
}

// mergedFields interprets every record of the tuple and merges the maps
// (later tables win on collisions, matching Composite).
func mergedFields(t baseline.Tuple, interps []core.Interpreter) (core.Fields, error) {
	out := core.Fields{}
	for i, rec := range t {
		if i >= len(interps) {
			break
		}
		f, err := interps[i](rec)
		if err != nil {
			return nil, err
		}
		for k, v := range f {
			out[k] = v
		}
	}
	return out, nil
}

func filterTuples(tuples []baseline.Tuple, interps []core.Interpreter, pred func(core.Fields) (bool, error)) ([]baseline.Tuple, error) {
	out := tuples[:0]
	for _, t := range tuples {
		f, err := mergedFields(t, interps)
		if err != nil {
			return nil, err
		}
		ok, err := pred(f)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, nil
}

// tupleRecord materializes a joined tuple as a composite record, byte-
// compatible with the index plan's output. Single-table rows stay raw, as
// the index plan's final LookupDeref leaves them.
func tupleRecord(t baseline.Tuple) lake.Record {
	if len(t) == 1 {
		return t[0]
	}
	segs := make([][]byte, len(t))
	for i, r := range t {
		segs[i] = r.Data
	}
	return lake.Record{Key: t[len(t)-1].Key, Data: lake.EncodeSegments(segs...)}
}
