package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersAndSnapshot(t *testing.T) {
	var c Counters
	c.AddLookup()
	c.AddLookup()
	c.AddRecordsRead(5)
	c.AddRecordsScanned(100)
	c.AddRemoteFetch()
	c.AddBytesRead(1024)
	c.AddAppend(3)
	s := c.Snapshot()
	if s.Lookups != 2 || s.RecordsRead != 5 || s.RecordsScanned != 100 ||
		s.RemoteFetches != 1 || s.BytesRead != 1024 || s.Appends != 3 {
		t.Errorf("unexpected snapshot: %+v", s)
	}
	if s.RecordAccesses() != 105 {
		t.Errorf("RecordAccesses = %d, want 105", s.RecordAccesses())
	}
}

func TestSubAdd(t *testing.T) {
	a := Snapshot{Lookups: 10, RecordsRead: 20, RecordsScanned: 30, RemoteFetches: 1, BytesRead: 100, Appends: 2}
	b := Snapshot{Lookups: 4, RecordsRead: 5, RecordsScanned: 6, RemoteFetches: 1, BytesRead: 10, Appends: 1}
	d := a.Sub(b)
	if d.Lookups != 6 || d.RecordsRead != 15 || d.RecordsScanned != 24 || d.RemoteFetches != 0 || d.BytesRead != 90 || d.Appends != 1 {
		t.Errorf("Sub = %+v", d)
	}
	if got := b.Add(d); got != a {
		t.Errorf("b.Add(a.Sub(b)) = %+v, want %+v", got, a)
	}
}

func TestConcurrentCounting(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.AddLookup()
				c.AddRecordsRead(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Lookups != 5000 || s.RecordsRead != 10000 {
		t.Errorf("concurrent counts: %+v", s)
	}
}

func TestString(t *testing.T) {
	s := Snapshot{Lookups: 1, RecordsRead: 2}
	if out := s.String(); !strings.Contains(out, "lookups=1") || !strings.Contains(out, "read=2") {
		t.Errorf("String() = %q", out)
	}
}
