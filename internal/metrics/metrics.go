// Package metrics provides the counters the experiments report on.
//
// Figure 9 of the paper compares systems by *number of record accesses*, so
// the counters are first-class outputs here, not just debug telemetry. Every
// dfs node owns a Counters; engines read Snapshots before and after a query
// and report the difference.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters is a set of monotonically increasing counters, safe for
// concurrent use. The zero value is ready to use.
type Counters struct {
	lookups        atomic.Int64
	batchLookups   atomic.Int64
	batchKeys      atomic.Int64
	recordsRead    atomic.Int64
	recordsScanned atomic.Int64
	remoteFetches  atomic.Int64
	bytesRead      atomic.Int64
	appends        atomic.Int64
}

// AddLookup records one random lookup operation (point or range).
func (c *Counters) AddLookup() { c.lookups.Add(1) }

// AddBatchLookup records one batched lookup serving n keys. The batch is
// one gate admission, so it counts as one lookup; the per-key fan-in is
// tracked separately so harnesses can report the amortization achieved.
func (c *Counters) AddBatchLookup(n int) {
	c.lookups.Add(1)
	c.batchLookups.Add(1)
	c.batchKeys.Add(int64(n))
}

// AddRecordsRead records n records returned by lookups.
func (c *Counters) AddRecordsRead(n int) { c.recordsRead.Add(int64(n)) }

// AddRecordsScanned records n records visited by sequential scans.
func (c *Counters) AddRecordsScanned(n int) { c.recordsScanned.Add(int64(n)) }

// AddRemoteFetch records one cross-node access.
func (c *Counters) AddRemoteFetch() { c.remoteFetches.Add(1) }

// AddBytesRead records n payload bytes delivered to the caller.
func (c *Counters) AddBytesRead(n int) { c.bytesRead.Add(int64(n)) }

// AddAppend records n records appended.
func (c *Counters) AddAppend(n int) { c.appends.Add(int64(n)) }

// Snapshot returns a point-in-time copy of the counters.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Lookups:        c.lookups.Load(),
		BatchLookups:   c.batchLookups.Load(),
		BatchKeys:      c.batchKeys.Load(),
		RecordsRead:    c.recordsRead.Load(),
		RecordsScanned: c.recordsScanned.Load(),
		RemoteFetches:  c.remoteFetches.Load(),
		BytesRead:      c.bytesRead.Load(),
		Appends:        c.appends.Load(),
	}
}

// Snapshot is an immutable copy of a Counters at one instant.
type Snapshot struct {
	// Lookups counts gate admissions for random access: a point or range
	// lookup is one admission, and so is a whole batched lookup.
	Lookups int64
	// BatchLookups counts the admissions that were batches.
	BatchLookups int64
	// BatchKeys counts the keys served through those batches.
	BatchKeys      int64
	RecordsRead    int64
	RecordsScanned int64
	RemoteFetches  int64
	BytesRead      int64
	Appends        int64
}

// Sub returns the element-wise difference s - o: the activity between two
// snapshots.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Lookups:        s.Lookups - o.Lookups,
		BatchLookups:   s.BatchLookups - o.BatchLookups,
		BatchKeys:      s.BatchKeys - o.BatchKeys,
		RecordsRead:    s.RecordsRead - o.RecordsRead,
		RecordsScanned: s.RecordsScanned - o.RecordsScanned,
		RemoteFetches:  s.RemoteFetches - o.RemoteFetches,
		BytesRead:      s.BytesRead - o.BytesRead,
		Appends:        s.Appends - o.Appends,
	}
}

// Add returns the element-wise sum s + o, for aggregating across nodes.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		Lookups:        s.Lookups + o.Lookups,
		BatchLookups:   s.BatchLookups + o.BatchLookups,
		BatchKeys:      s.BatchKeys + o.BatchKeys,
		RecordsRead:    s.RecordsRead + o.RecordsRead,
		RecordsScanned: s.RecordsScanned + o.RecordsScanned,
		RemoteFetches:  s.RemoteFetches + o.RemoteFetches,
		BytesRead:      s.BytesRead + o.BytesRead,
		Appends:        s.Appends + o.Appends,
	}
}

// RecordAccesses is the Fig. 9 metric: every record touched, whether by a
// lookup or a scan.
func (s Snapshot) RecordAccesses() int64 { return s.RecordsRead + s.RecordsScanned }

// String renders the snapshot compactly for harness output.
func (s Snapshot) String() string {
	return fmt.Sprintf("lookups=%d batches=%d batchkeys=%d read=%d scanned=%d remote=%d bytes=%d appends=%d",
		s.Lookups, s.BatchLookups, s.BatchKeys, s.RecordsRead, s.RecordsScanned,
		s.RemoteFetches, s.BytesRead, s.Appends)
}
