package btree

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestGetBatchMatchesGet: for random trees with duplicate runs, GetBatch
// over an unsorted, repeating key list (hits and misses mixed) must return
// exactly what per-key Get returns, aligned with the input.
func TestGetBatchMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tr := New()
		n := rng.Intn(800)
		for i := 0; i < n; i++ {
			// Narrow key space forces duplicate runs, some spanning leaves.
			k := fmt.Sprintf("k%03d", rng.Intn(120))
			tr.Insert(k, []byte(fmt.Sprintf("v%d", i)))
		}
		var keys []string
		for i := 0; i < 200; i++ {
			keys = append(keys, fmt.Sprintf("k%03d", rng.Intn(160))) // ~25% misses
		}
		// Repeats, including adjacent ones after sorting.
		keys = append(keys, keys[:20]...)
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

		got := tr.GetBatch(keys)
		if len(got) != len(keys) {
			t.Fatalf("trial %d: GetBatch returned %d groups for %d keys", trial, len(got), len(keys))
		}
		for i, k := range keys {
			want := tr.Get(k)
			if len(got[i]) != len(want) {
				t.Fatalf("trial %d key %q: batch %d values, Get %d", trial, k, len(got[i]), len(want))
			}
			for j := range want {
				if string(got[i][j]) != string(want[j]) {
					t.Fatalf("trial %d key %q value %d: %q vs %q", trial, k, j, got[i][j], want[j])
				}
			}
		}
	}
}

func TestGetBatchEmptyAndMissOnly(t *testing.T) {
	tr := New()
	if out := tr.GetBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d groups", len(out))
	}
	tr.Insert("b", []byte("1"))
	out := tr.GetBatch([]string{"a", "c", "z"})
	for i, vals := range out {
		if vals != nil {
			t.Fatalf("miss %d returned %v", i, vals)
		}
	}
}
