package btree

import (
	"fmt"
	"reflect"
	"testing"
)

// FuzzGetBatch fuzzes the batched lookup path against the per-key one:
// whatever tree the insert bytes build (duplicate keys included) and
// whatever query list the lookup bytes produce (unsorted, duplicated, part
// hits part misses), GetBatch must return exactly what one Get per key
// returns, aligned position by position. GetBatch is the storage end of the
// executor's pointer batching, so a divergence here is a silent wrong
// answer for every batched query.
func FuzzGetBatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 1, 9}, []byte{1, 3, 3, 5})
	f.Add([]byte{}, []byte{0, 0, 0})
	f.Add([]byte{255, 0, 255, 1, 255, 2}, []byte{255, 254, 255})
	f.Fuzz(func(t *testing.T, inserts, lookups []byte) {
		tr := New()
		for i := 0; i+1 < len(inserts); i += 2 {
			// Narrow key space on purpose: collisions produce duplicate
			// keys, which is the interesting multiset case.
			tr.Insert(fmt.Sprintf("k%03d", inserts[i]%32), []byte{inserts[i+1]})
		}
		keys := make([]string, 0, len(lookups))
		for i, b := range lookups {
			k := fmt.Sprintf("k%03d", b%64) // half the space misses
			if i%5 == 4 {
				k += "x" // never inserted: exercise guaranteed misses
			}
			keys = append(keys, k)
		}

		batch := tr.GetBatch(keys)
		if len(batch) != len(keys) {
			t.Fatalf("GetBatch returned %d results for %d keys", len(batch), len(keys))
		}
		for i, k := range keys {
			want := tr.Get(k)
			got := batch[i]
			if len(want) == 0 && len(got) == 0 {
				continue // nil vs empty slice are both "miss"
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("key %q (position %d): GetBatch = %v, Get = %v", k, i, got, want)
			}
		}
	})
}
