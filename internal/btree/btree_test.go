package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"lakeharbor/internal/keycodec"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if got := tr.Get("k"); got != nil {
		t.Errorf("Get on empty = %v, want nil", got)
	}
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty reported ok")
	}
	n := 0
	tr.AscendAll(func(string, []byte) bool { n++; return true })
	if n != 0 {
		t.Errorf("AscendAll visited %d entries on empty tree", n)
	}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	tr.Insert("b", []byte("2"))
	tr.Insert("a", []byte("1"))
	tr.Insert("c", []byte("3"))
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		got := tr.Get(k)
		if len(got) != 1 || string(got[0]) != want {
			t.Errorf("Get(%q) = %v, want [%s]", k, got, want)
		}
	}
	if got := tr.Get("z"); got != nil {
		t.Errorf("Get(miss) = %v", got)
	}
}

func TestDuplicateKeysInsertionOrder(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Insert("dup", []byte(fmt.Sprintf("%03d", i)))
		tr.Insert(fmt.Sprintf("filler-%03d", i), []byte("x"))
	}
	got := tr.Get("dup")
	if len(got) != 200 {
		t.Fatalf("Get(dup) returned %d values, want 200", len(got))
	}
	for i, v := range got {
		if string(v) != fmt.Sprintf("%03d", i) {
			t.Fatalf("duplicate %d out of insertion order: %s", i, v)
		}
	}
}

func TestLargeRandomInsertMatchesSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	var oracle []string
	for i := 0; i < 20000; i++ {
		k := keycodec.Int64(rng.Int63n(5000)) // plenty of duplicates
		tr.Insert(k, nil)
		oracle = append(oracle, k)
	}
	sort.Strings(oracle)
	i := 0
	tr.AscendAll(func(k string, _ []byte) bool {
		if k != oracle[i] {
			t.Fatalf("entry %d: got %x want %x", i, k, oracle[i])
		}
		i++
		return true
	})
	if i != len(oracle) {
		t.Fatalf("visited %d entries, want %d", i, len(oracle))
	}
	if tr.Height() < 3 {
		t.Errorf("tree of 20000 entries has height %d; want a multi-level tree", tr.Height())
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(keycodec.Int64(i), []byte{byte(i)})
	}
	var got []int64
	tr.Ascend(keycodec.Int64(100), keycodec.Int64(110), func(k string, _ []byte) bool {
		v, _ := keycodec.DecodeInt64(k)
		got = append(got, v)
		return true
	})
	if len(got) != 11 {
		t.Fatalf("range [100,110] returned %d entries, want 11: %v", len(got), got)
	}
	for i, v := range got {
		if v != int64(100+i) {
			t.Fatalf("range result %d = %d, want %d", i, v, 100+i)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(keycodec.Int64(i), nil)
	}
	n := 0
	tr.Ascend(keycodec.Int64(0), keycodec.Int64(99), func(string, []byte) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d, want 5", n)
	}
}

func TestAscendEmptyRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i += 10 {
		tr.Insert(keycodec.Int64(i), nil)
	}
	n := 0
	tr.Ascend(keycodec.Int64(11), keycodec.Int64(19), func(string, []byte) bool { n++; return true })
	if n != 0 {
		t.Errorf("gap range returned %d entries", n)
	}
	tr.Ascend(keycodec.Int64(50), keycodec.Int64(40), func(string, []byte) bool { n++; return true })
	if n != 0 {
		t.Errorf("inverted range returned %d entries", n)
	}
}

func TestMin(t *testing.T) {
	tr := New()
	for _, v := range []int64{42, 7, 99, 7, 13} {
		tr.Insert(keycodec.Int64(v), nil)
	}
	k, ok := tr.Min()
	if !ok {
		t.Fatal("Min not ok")
	}
	if v, _ := keycodec.DecodeInt64(k); v != 7 {
		t.Errorf("Min = %d, want 7", v)
	}
}

// TestQuickAgainstMapOracle is the core property test: after an arbitrary
// insertion sequence, Get returns exactly the values the oracle holds, and
// full iteration is sorted.
func TestQuickAgainstMapOracle(t *testing.T) {
	f := func(keys []uint16) bool {
		tr := New()
		oracle := map[string][]string{}
		for i, kv := range keys {
			k := keycodec.Uint64(uint64(kv % 512))
			v := fmt.Sprint(i)
			tr.Insert(k, []byte(v))
			oracle[k] = append(oracle[k], v)
		}
		if tr.Len() != len(keys) {
			return false
		}
		for k, want := range oracle {
			got := tr.Get(k)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if string(got[i]) != want[i] {
					return false
				}
			}
		}
		prev := ""
		ok := true
		first := true
		tr.AscendAll(func(k string, _ []byte) bool {
			if !first && k < prev {
				ok = false
				return false
			}
			prev, first = k, false
			return true
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestRangeMatchesOracle checks Ascend against a sorted-slice oracle on
// random data and random ranges.
func TestRangeMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	var all []string
	for i := 0; i < 5000; i++ {
		k := keycodec.Int64(rng.Int63n(800))
		tr.Insert(k, nil)
		all = append(all, k)
	}
	sort.Strings(all)
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Int63n(800), rng.Int63n(800)
		if a > b {
			a, b = b, a
		}
		lo, hi := keycodec.Int64(a), keycodec.Int64(b)
		want := 0
		for _, k := range all {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := 0
		tr.Ascend(lo, hi, func(string, []byte) bool { got++; return true })
		if got != want {
			t.Fatalf("range [%d,%d]: got %d entries, want %d", a, b, got, want)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(keycodec.Int64(int64(i*2654435761)), nil)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		tr.Insert(keycodec.Int64(i), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keycodec.Int64(int64(i % 100000)))
	}
}
