// Package btree implements an in-memory B+tree keyed by order-preserving
// byte-string keys, with duplicate keys allowed.
//
// It is the structure behind lake.BtreeFile: primary files, local secondary
// indexes, and global indexes are all partitions of B+trees. Duplicate keys
// are first-class because a secondary index maps one index key to many
// record pointers.
//
// The tree itself is not synchronized; dfs wraps each partition in an
// RWMutex (queries are read-mostly and structure builds are batched).
package btree

import "sort"

// degree is the maximum number of entries in a leaf and of children in an
// internal node. 64 keeps the tree shallow for the partition sizes used in
// the experiments while exercising multi-level behaviour in tests.
const degree = 64

// Tree is a B+tree from string keys to byte-slice values. The zero value is
// not usable; call New.
type Tree struct {
	root   node
	length int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}}
}

// Len returns the number of stored entries (duplicates counted).
func (t *Tree) Len() int { return t.length }

type node interface {
	// insert adds (key, val); if the node overflows it splits, returning
	// the new right sibling and the key that separates the two.
	insert(key string, val []byte) (right node, sep string)
	// firstLeafGE returns the leaf that may contain the first key >= k and
	// the entry index within it.
	firstLeafGE(k string) (*leaf, int)
	minDepthLeaf() *leaf
}

type leaf struct {
	keys []string
	vals [][]byte
	next *leaf
}

type inner struct {
	// keys[i] separates children[i] (keys < keys[i]) from children[i+1]
	// (keys >= keys[i]).
	keys     []string
	children []node
}

// upperBound returns the first index whose key is > k (so equal keys are
// kept insertion-ordered and new duplicates append after existing ones).
func upperBound(keys []string, k string) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > k })
}

// lowerBound returns the first index whose key is >= k.
func lowerBound(keys []string, k string) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
}

func (l *leaf) insert(key string, val []byte) (node, string) {
	i := upperBound(l.keys, key)
	l.keys = append(l.keys, "")
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.vals = append(l.vals, nil)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = val
	if len(l.keys) <= degree {
		return nil, ""
	}
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([]string(nil), l.keys[mid:]...),
		vals: append([][]byte(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	return right, right.keys[0]
}

func (l *leaf) firstLeafGE(k string) (*leaf, int) {
	return l, lowerBound(l.keys, k)
}

func (l *leaf) minDepthLeaf() *leaf { return l }

func (n *inner) childFor(k string) int {
	// First child whose separator is > k; equal separators route right,
	// matching leaf upperBound placement for duplicates spanning splits.
	return upperBound(n.keys, k)
}

func (n *inner) insert(key string, val []byte) (node, string) {
	ci := n.childFor(key)
	right, sep := n.children[ci].insert(key, val)
	if right == nil {
		return nil, ""
	}
	n.keys = append(n.keys, "")
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= degree {
		return nil, ""
	}
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	r := &inner{
		keys:     append([]string(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return r, sepUp
}

func (n *inner) firstLeafGE(k string) (*leaf, int) {
	// Descend to the leftmost child that can contain a key >= k. A split
	// separator equals its right sibling's first key, and a duplicate run
	// may leave equal keys at the tail of the left sibling, so an equal
	// separator must route left. If the chosen leaf turns out to hold no
	// key >= k, callers continue through the leaf linked list.
	ci := lowerBound(n.keys, k)
	return n.children[ci].firstLeafGE(k)
}

func (n *inner) minDepthLeaf() *leaf { return n.children[0].minDepthLeaf() }

// Insert adds an entry. Duplicate keys are allowed; equal keys iterate in
// insertion order. The value slice is stored as-is (not copied).
func (t *Tree) Insert(key string, val []byte) {
	right, sep := t.root.insert(key, val)
	if right != nil {
		t.root = &inner{keys: []string{sep}, children: []node{t.root, right}}
	}
	t.length++
}

// Get returns all values stored under key, in insertion order. A miss
// returns nil.
func (t *Tree) Get(key string) [][]byte {
	var out [][]byte
	t.Ascend(key, key, func(_ string, v []byte) bool {
		out = append(out, v)
		return true
	})
	return out
}

// GetBatch returns the values stored under each key, aligned with keys (a
// miss yields a nil slice at that position). It is the multi-get behind
// lake.BatchFile: the keys are visited in sorted order and the cursor walks
// the leaf chain forward between adjacent keys, so a batch of k nearby keys
// costs one root-to-leaf descent plus k leaf probes instead of k descents.
// Keys may arrive unsorted and may repeat; repeated keys share the cached
// result.
func (t *Tree) GetBatch(keys []string) [][][]byte {
	out := make([][][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	// Visit in sorted key order without disturbing the caller's slice.
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	var cur *leaf // leaf holding the first entry >= the previous key
	last := -1    // index into keys of the previous distinct key
	for _, i := range order {
		k := keys[i]
		if last >= 0 && keys[last] == k {
			out[i] = out[last] // repeated key: share the result
			continue
		}
		var li int
		cur, li = t.seekFrom(cur, k)
		// Collect every value stored under k, walking the leaf chain for
		// duplicate runs that span leaves.
		var vals [][]byte
	scan:
		for l, j := cur, li; l != nil; l, j = l.next, 0 {
			cur = l // advance the cursor past duplicate runs
			for ; j < len(l.keys); j++ {
				if l.keys[j] != k {
					break scan
				}
				vals = append(vals, l.vals[j])
			}
		}
		out[i] = vals
		last = i
	}
	return out
}

// seekFrom positions the cursor at the first entry >= k, reusing cur (the
// leaf the previous, smaller key landed in) when k is within reach — the
// same leaf or its immediate successor — and re-descending from the root
// otherwise.
func (t *Tree) seekFrom(cur *leaf, k string) (*leaf, int) {
	if cur != nil {
		if n := len(cur.keys); n > 0 && k <= cur.keys[n-1] {
			return cur, lowerBound(cur.keys, k)
		}
		if nxt := cur.next; nxt != nil {
			if n := len(nxt.keys); n > 0 && k <= nxt.keys[n-1] {
				return nxt, lowerBound(nxt.keys, k)
			}
		}
	}
	return t.root.firstLeafGE(k)
}

// Ascend calls fn for every entry with lo <= key <= hi in ascending key
// order (duplicates in insertion order). Iteration stops early if fn
// returns false.
func (t *Tree) Ascend(lo, hi string, fn func(key string, val []byte) bool) {
	l, i := t.root.firstLeafGE(lo)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if l.keys[i] > hi {
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// AscendAll calls fn for every entry in ascending key order.
func (t *Tree) AscendAll(fn func(key string, val []byte) bool) {
	l := t.root.minDepthLeaf()
	for l != nil {
		for i := 0; i < len(l.keys); i++ {
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
	}
}

// Min returns the smallest key, or ok=false if the tree is empty.
func (t *Tree) Min() (key string, ok bool) {
	l := t.root.minDepthLeaf()
	for l != nil {
		if len(l.keys) > 0 {
			return l.keys[0], true
		}
		l = l.next
	}
	return "", false
}

// Height returns the number of levels in the tree (1 for a lone leaf). It
// is exposed for tests and stats.
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}
