// Package trace is the execution observability layer of the ReDe engine:
// per-job execution traces sampled live by the SMPE executor and exported as
// immutable snapshots when the job finishes.
//
// A Trace records, per stage, how many tasks ran, what they emitted, how
// often Dereferencers were retried, how many invocations failed, and both
// the busy time (summed task durations) and the wall span (first task start
// to last task end). Per node it records the input-queue high-water mark,
// how many pool workers were actually spawned, and — attributed by the
// storage layer through the I/O context — how many accesses were served
// locally versus fetched from a remote node.
//
// On top of the counters sits the latency-observability layer: lock-free
// log-bucketed histograms (hist.go) record task service time, queue wait,
// batch size, and local/remote storage round-trips, and a bounded per-job
// event ring (events.go) captures a timeline of task/enqueue/retry/split
// events exportable as Chrome trace-event JSON plus a critical-path
// extractor reporting where the job's wall time went.
//
// All live counters are atomics: the executor updates them from thousands
// of concurrent workers without locks, and a Snapshot can be taken at any
// moment, including while the job is still running. A Registry keeps the
// snapshots of recent jobs for operator endpoints (see internal/httpapi's
// /debug/jobs) and aggregates them into Prometheus-style text metrics.
package trace

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// StageInfo names one stage of the traced job.
type StageInfo struct {
	// Name is the stage's function name (e.g. "RangeDeref(orders)").
	Name string
	// Kind is "deref" or "ref".
	Kind string
}

// Trace collects live execution telemetry for one job. Create it with New;
// all methods are safe for concurrent use. The zero value is not usable.
type Trace struct {
	job    string
	tenant string
	start  time.Time

	// slow is the slow-task threshold; tasks slower than this are counted
	// per stage and reported through logf when it is non-nil.
	slow time.Duration
	logf func(format string, args ...any)

	stages []stageStats
	nodes  []nodeStats

	// lat holds the job-level latency distributions (always on; recording
	// into a lock-free histogram costs a few atomic adds per task).
	lat latHists
	// ring is the bounded timeline event log; nil when capture is disabled.
	ring *EventRing
}

// latHists is the live histogram set of one job.
type latHists struct {
	task     Histogram // task service time, ns
	wait     Histogram // enqueue-to-start queue wait, ns
	batch    Histogram // pointers per dereference task
	ioLocal  Histogram // local storage round-trip, ns
	ioRemote Histogram // cross-node storage round-trip, ns
}

// stageStats is the live counter set of one stage.
type stageStats struct {
	info      StageInfo
	tasks     atomic.Int64
	emits     atomic.Int64
	retries   atomic.Int64
	errors    atomic.Int64
	slowTasks atomic.Int64
	// batches counts dereference tasks dispatched and batchPtrs the
	// pointers they carried, so batchPtrs/batches is the stage's mean
	// batch size (1.0 when execution is unbatched). batchSplits counts
	// batches that failed as a unit and were retried pointer-by-pointer.
	batches     atomic.Int64
	batchPtrs   atomic.Int64
	batchSplits atomic.Int64
	busyNanos   atomic.Int64
	// firstStart and lastEnd are unix nanos; 0 means "no task yet".
	firstStart atomic.Int64
	lastEnd    atomic.Int64
}

// nodeStats is the live counter set of one compute node.
type nodeStats struct {
	queueHighWater atomic.Int64
	workersSpawned atomic.Int64
	io             NodeIO
}

// NodeIO counts the storage accesses one compute node issued, split into
// local (caller owns the partition) and remote (cross-node fetch). The
// storage layer reports into it through the I/O context (WithIO / IOFrom),
// which keeps dfs free of any dependency on the executor.
type NodeIO struct {
	local  atomic.Int64
	remote atomic.Int64
	// localLat/remoteLat, when non-nil, receive the observed round-trip
	// time of each completed access (gate admission + modeled service).
	// They point at the owning Trace's job-level histograms, so every
	// node's workers record into the same lock-free buckets.
	localLat  *Histogram
	remoteLat *Histogram
	// owner/node link back to the owning Trace (set by New) so remote
	// round trips can land EvRPC events on the job's timeline. Standalone
	// NodeIOs have a nil owner and drop RPC observations.
	owner *Trace
	node  int
}

// Observe records one storage access.
func (n *NodeIO) Observe(remote bool) {
	if remote {
		n.remote.Add(1)
	} else {
		n.local.Add(1)
	}
}

// ObserveLatency attributes the observed round-trip time of one completed
// access (queueing at the I/O gate plus modeled service time) to the job's
// local or remote I/O latency distribution. Standalone NodeIOs (not created
// by a Trace) ignore the duration.
func (n *NodeIO) ObserveLatency(remote bool, d time.Duration) {
	if remote {
		if n.remoteLat != nil {
			n.remoteLat.RecordDur(d)
		}
	} else if n.localLat != nil {
		n.localLat.RecordDur(d)
	}
}

// ObserveRPC lands one completed remote round trip on the owning job's
// timeline as an EvRPC interval attributed to (stage, node). A no-op for
// standalone NodeIOs or when timeline capture is disabled.
func (n *NodeIO) ObserveRPC(stage int, begin time.Time, d time.Duration) {
	t := n.owner
	if t == nil || t.ring == nil {
		return
	}
	t.ring.Add(Event{
		Kind: EvRPC, Stage: stage, Node: n.node,
		TS: begin.Sub(t.start).Nanoseconds(), Dur: int64(d),
	})
}

// ioKey carries a *NodeIO through a context.
type ioKey struct{}

// WithIO attaches io to ctx so the storage layer can attribute accesses to
// the issuing node's trace.
func WithIO(ctx context.Context, io *NodeIO) context.Context {
	return context.WithValue(ctx, ioKey{}, io)
}

// IOFrom returns the NodeIO attached to ctx, or nil when the caller is not
// traced (loaders, tools, baseline engines).
func IOFrom(ctx context.Context) *NodeIO {
	io, _ := ctx.Value(ioKey{}).(*NodeIO)
	return io
}

// New starts a trace for one job over the given stages and cluster size.
func New(job string, stages []StageInfo, nodes int) *Trace {
	t := &Trace{
		job:    job,
		start:  time.Now(),
		stages: make([]stageStats, len(stages)),
		nodes:  make([]nodeStats, nodes),
	}
	for i := range t.stages {
		t.stages[i].info = stages[i]
	}
	for i := range t.nodes {
		t.nodes[i].io.localLat = &t.lat.ioLocal
		t.nodes[i].io.remoteLat = &t.lat.ioRemote
		t.nodes[i].io.owner = t
		t.nodes[i].io.node = i
	}
	return t
}

// SetTenant stamps the tenant the traced job runs on behalf of; every span,
// event, and counter the trace records is then attributable to it through
// the snapshot. Call before the job dispatches work.
func (t *Trace) SetTenant(tenant string) { t.tenant = tenant }

// EnableEvents turns on timeline capture with a ring of the given capacity
// (DefaultEventCap when capacity <= 0). Without it, event-recording methods
// are no-ops and snapshots carry no Events.
func (t *Trace) EnableEvents(capacity int) { t.ring = NewEventRing(capacity) }

// SetSlowTask configures the slow-task threshold. Tasks slower than d are
// counted per stage; when logf is non-nil each one is also logged with its
// stage and duration. A zero d disables slow-task tracking.
func (t *Trace) SetSlowTask(d time.Duration, logf func(format string, args ...any)) {
	t.slow = d
	t.logf = logf
}

// TaskBegin marks one task entering execution on the given stage and
// returns its start time for the matching TaskEnd.
func (t *Trace) TaskBegin(stage int) time.Time {
	now := time.Now()
	s := &t.stages[stage]
	s.tasks.Add(1)
	s.firstStart.CompareAndSwap(0, now.UnixNano())
	return now
}

// TaskEnd marks the task started at begin as finished, accumulating its
// duration into the stage counters and the job's task-latency histogram and
// flagging it when it exceeds the slow-task threshold. It returns the
// task's service time.
func (t *Trace) TaskEnd(stage int, begin time.Time) time.Duration {
	now := time.Now()
	dur := now.Sub(begin)
	s := &t.stages[stage]
	s.busyNanos.Add(int64(dur))
	storeMax(&s.lastEnd, now.UnixNano())
	t.lat.task.RecordDur(dur)
	if t.slow > 0 && dur > t.slow {
		s.slowTasks.Add(1)
		if t.logf != nil {
			t.logf("trace: job %q stage %d (%s): slow task: %v > %v",
				t.job, stage, s.info.Name, dur, t.slow)
		}
	}
	return dur
}

// ObserveQueueWait records how long one task sat in a node's input queue
// between Enqueue and TaskBegin.
func (t *Trace) ObserveQueueWait(d time.Duration) { t.lat.wait.RecordDur(d) }

// TaskEvent appends one completed task to the timeline event log with node,
// worker, and stage attribution. A no-op unless EnableEvents was called.
func (t *Trace) TaskEvent(stage, node, worker int, begin time.Time, dur, wait time.Duration, ptrs int) {
	if t.ring == nil {
		return
	}
	t.ring.Add(Event{
		Kind: EvTask, Stage: stage, Node: node, Worker: worker,
		TS: begin.Sub(t.start).Nanoseconds(), Dur: int64(dur), Wait: int64(wait), Ptrs: ptrs,
	})
}

// Mark appends an instant event (enqueue, retry, batch split) to the
// timeline event log; v rides in the event's Ptrs field (queue depth for
// enqueues, batch size for splits). A no-op unless EnableEvents was called.
func (t *Trace) Mark(kind EventKind, stage, node, v int) {
	if t.ring == nil {
		return
	}
	t.ring.Add(Event{Kind: kind, Stage: stage, Node: node, TS: time.Since(t.start).Nanoseconds(), Ptrs: v})
}

// AddEmits records n outputs produced by the stage.
func (t *Trace) AddEmits(stage, n int) { t.stages[stage].emits.Add(int64(n)) }

// AddRetry records one Dereferencer retry on the stage.
func (t *Trace) AddRetry(stage int) { t.stages[stage].retries.Add(1) }

// AddBatch records one dereference task carrying n pointers on the stage.
func (t *Trace) AddBatch(stage, n int) {
	s := &t.stages[stage]
	s.batches.Add(1)
	s.batchPtrs.Add(int64(n))
	t.lat.batch.Record(int64(n))
}

// AddBatchSplit records one batch that failed as a unit and fell back to
// per-pointer execution on the stage.
func (t *Trace) AddBatchSplit(stage int) { t.stages[stage].batchSplits.Add(1) }

// AddError records one failed invocation on the stage.
func (t *Trace) AddError(stage int) { t.stages[stage].errors.Add(1) }

// Enqueue records a task landing on a node's queue at the given depth,
// maintaining the queue-depth high-water mark.
func (t *Trace) Enqueue(node, depth int) {
	storeMax(&t.nodes[node].queueHighWater, int64(depth))
}

// WorkerSpawned records one pool worker actually started on the node.
func (t *Trace) WorkerSpawned(node int) { t.nodes[node].workersSpawned.Add(1) }

// NodeIO returns the node's I/O attribution counters, for attaching to the
// node's I/O context with WithIO.
func (t *Trace) NodeIO(node int) *NodeIO { return &t.nodes[node].io }

// storeMax raises a to at least v.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot is an immutable copy of a Trace, taken with Trace.Snapshot. It
// is what Result carries and what the debug endpoints serve.
type Snapshot struct {
	// Job is the traced job's name.
	Job string `json:"job"`
	// Tenant is the principal the job ran on behalf of (empty for
	// untenanted jobs), attributing every span and event below.
	Tenant string `json:"tenant,omitempty"`
	// ID is assigned by a Registry when the snapshot is recorded (0 until
	// then).
	ID int64 `json:"id,omitempty"`
	// Start is when the job began executing.
	Start time.Time `json:"start"`
	// Elapsed is the wall time covered by the snapshot.
	Elapsed time.Duration `json:"elapsed"`
	// Err is the job's failure message, empty on success.
	Err string `json:"err,omitempty"`
	// Route names the execution route the planner chose for this job
	// ("index", "scan", or "scan-fallback" when a not-ready structure
	// degraded an index plan to the scan path). Empty for jobs executed
	// without a planner.
	Route string `json:"route,omitempty"`
	// BuildWait is how long the planner waited on an in-flight structure
	// build before routing (zero when it did not wait).
	BuildWait time.Duration `json:"buildWait,omitempty"`
	// CatalogVersion is the catalog version the job was planned against
	// (zero without a versioned catalog attached to the planner).
	CatalogVersion uint64 `json:"catalogVersion,omitempty"`
	// Stages holds one entry per job stage.
	Stages []StageSnapshot `json:"stages"`
	// Nodes holds one entry per compute node.
	Nodes []NodeSnapshot `json:"nodes"`
	// Lat carries the job's latency and batch-size distributions.
	Lat Latencies `json:"lat"`
	// Events is the job's bounded timeline event log (nil when capture was
	// disabled), exportable with WriteChromeTrace / CriticalPath.
	Events []Event `json:"events,omitempty"`
	// EventsDropped counts timeline events overwritten because the job
	// outgrew its event ring; Events then holds the newest ring-capacity
	// events.
	EventsDropped int64 `json:"eventsDropped,omitempty"`
}

// Latencies is the distribution set of one job (or, merged in a Registry,
// of all recorded jobs). Durations are in nanoseconds; Batch is a pointer
// count.
type Latencies struct {
	// Task is the task service-time distribution (TaskBegin to TaskEnd).
	Task HistSnapshot `json:"task"`
	// QueueWait is the enqueue-to-start wait distribution.
	QueueWait HistSnapshot `json:"queueWait"`
	// Batch is the pointers-per-dereference-task distribution.
	Batch HistSnapshot `json:"batch"`
	// IOLocal / IORemote are the observed storage round-trip distributions
	// (gate queueing + modeled service), split by access locality.
	IOLocal  HistSnapshot `json:"ioLocal"`
	IORemote HistSnapshot `json:"ioRemote"`
}

// Merge returns both latency sets' observations combined.
func (l Latencies) Merge(o Latencies) Latencies {
	return Latencies{
		Task:      l.Task.Merge(o.Task),
		QueueWait: l.QueueWait.Merge(o.QueueWait),
		Batch:     l.Batch.Merge(o.Batch),
		IOLocal:   l.IOLocal.Merge(o.IOLocal),
		IORemote:  l.IORemote.Merge(o.IORemote),
	}
}

// LatencySummaries digests each latency distribution to its quantile
// summary, for JSON bench reports. Time-valued summaries are in nanoseconds;
// Batch is in pointers.
type LatencySummaries struct {
	TaskNs      HistSummary `json:"taskNs"`
	QueueWaitNs HistSummary `json:"queueWaitNs"`
	BatchPtrs   HistSummary `json:"batchPtrs"`
	IOLocalNs   HistSummary `json:"ioLocalNs"`
	IORemoteNs  HistSummary `json:"ioRemoteNs"`
}

// Summaries digests the latency set into per-distribution quantile digests.
func (l Latencies) Summaries() LatencySummaries {
	return LatencySummaries{
		TaskNs:      l.Task.Summary(),
		QueueWaitNs: l.QueueWait.Summary(),
		BatchPtrs:   l.Batch.Summary(),
		IOLocalNs:   l.IOLocal.Summary(),
		IORemoteNs:  l.IORemote.Summary(),
	}
}

// StageSnapshot reports one stage of an executed job.
type StageSnapshot struct {
	// Stage is the stage index.
	Stage int `json:"stage"`
	// Name is the stage's function name.
	Name string `json:"name"`
	// Kind is "deref" or "ref".
	Kind string `json:"kind"`
	// Tasks is the number of pool tasks the stage executed (0 for
	// referencer stages that ran inline).
	Tasks int64 `json:"tasks"`
	// Emits counts the stage's outputs: records for deref stages, pointers
	// for ref stages (counted even when inlined).
	Emits int64 `json:"emits"`
	// Retries counts Dereferencer re-executions after transient failures.
	Retries int64 `json:"retries"`
	// Errors counts failed invocations.
	Errors int64 `json:"errors"`
	// SlowTasks counts tasks exceeding the slow-task threshold.
	SlowTasks int64 `json:"slowTasks,omitempty"`
	// Batches counts the dereference tasks the stage dispatched; each
	// carried one or more coalesced pointers.
	Batches int64 `json:"batches,omitempty"`
	// BatchedPtrs counts the pointers carried by those tasks, so
	// BatchedPtrs/Batches is the stage's mean batch size.
	BatchedPtrs int64 `json:"batchedPtrs,omitempty"`
	// BatchSplits counts batches that failed as a unit and were retried
	// pointer-by-pointer.
	BatchSplits int64 `json:"batchSplits,omitempty"`
	// Busy is the summed duration of the stage's tasks.
	Busy time.Duration `json:"busy"`
	// Wall is the span from the stage's first task start to its last task
	// end — how long the stage was live on the critical path.
	Wall time.Duration `json:"wall"`
}

// NodeSnapshot reports one compute node of an executed job.
type NodeSnapshot struct {
	// Node is the node id.
	Node int `json:"node"`
	// QueueHighWater is the deepest the node's input queue ever got.
	QueueHighWater int64 `json:"queueHighWater"`
	// WorkersSpawned is how many pool workers were actually started
	// (bounded by Options.Threads; tiny jobs spawn far fewer).
	WorkersSpawned int64 `json:"workersSpawned"`
	// LocalIO counts storage accesses served by partitions this node owns.
	LocalIO int64 `json:"localIO"`
	// RemoteIO counts cross-node fetches this node issued.
	RemoteIO int64 `json:"remoteIO"`
}

// Snapshot copies the live counters into an immutable Snapshot. It may be
// called while the job is still running; err (may be nil) records the job's
// outcome.
func (t *Trace) Snapshot(err error) *Snapshot {
	s := &Snapshot{
		Job:     t.job,
		Tenant:  t.tenant,
		Start:   t.start,
		Elapsed: time.Since(t.start),
		Stages:  make([]StageSnapshot, len(t.stages)),
		Nodes:   make([]NodeSnapshot, len(t.nodes)),
		Lat: Latencies{
			Task:      t.lat.task.Snapshot(),
			QueueWait: t.lat.wait.Snapshot(),
			Batch:     t.lat.batch.Snapshot(),
			IOLocal:   t.lat.ioLocal.Snapshot(),
			IORemote:  t.lat.ioRemote.Snapshot(),
		},
	}
	if t.ring != nil {
		s.Events, s.EventsDropped = t.ring.Snapshot()
	}
	if err != nil {
		s.Err = err.Error()
	}
	for i := range t.stages {
		st := &t.stages[i]
		wall := time.Duration(0)
		if first := st.firstStart.Load(); first != 0 {
			if last := st.lastEnd.Load(); last > first {
				wall = time.Duration(last - first)
			}
		}
		s.Stages[i] = StageSnapshot{
			Stage:       i,
			Name:        st.info.Name,
			Kind:        st.info.Kind,
			Tasks:       st.tasks.Load(),
			Emits:       st.emits.Load(),
			Retries:     st.retries.Load(),
			Errors:      st.errors.Load(),
			SlowTasks:   st.slowTasks.Load(),
			Batches:     st.batches.Load(),
			BatchedPtrs: st.batchPtrs.Load(),
			BatchSplits: st.batchSplits.Load(),
			Busy:        time.Duration(st.busyNanos.Load()),
			Wall:        wall,
		}
	}
	for i := range t.nodes {
		n := &t.nodes[i]
		s.Nodes[i] = NodeSnapshot{
			Node:           i,
			QueueHighWater: n.queueHighWater.Load(),
			WorkersSpawned: n.workersSpawned.Load(),
			LocalIO:        n.io.local.Load(),
			RemoteIO:       n.io.remote.Load(),
		}
	}
	return s
}

// Table renders the snapshot as a human-readable per-stage table followed
// by one line per node, the format the bench commands print under -trace:
//
//	job "q5" 12.3ms
//	stage kind   name                         tasks   emits retries  maxq workers      busy      wall
//	    0 deref  RangeDeref(orders_date_idx)      4     120       0
//	...
func (s *Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %q %v", s.Job, s.Elapsed.Round(time.Microsecond))
	if s.Tenant != "" {
		fmt.Fprintf(&b, " tenant=%s", s.Tenant)
	}
	if s.Err != "" {
		fmt.Fprintf(&b, " FAILED: %s", s.Err)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%5s %-5s %-34s %9s %9s %7s %7s %6s %7s %6s %12s %12s\n",
		"stage", "kind", "name", "tasks", "emits", "batches", "avgbat", "splits", "retries", "slow", "busy", "wall")
	for _, st := range s.Stages {
		avg := "-"
		if st.Batches > 0 {
			avg = fmt.Sprintf("%.1f", st.MeanBatch())
		}
		fmt.Fprintf(&b, "%5d %-5s %-34s %9d %9d %7d %7s %6d %7d %6d %12s %12s\n",
			st.Stage, st.Kind, st.Name, st.Tasks, st.Emits, st.Batches, avg,
			st.BatchSplits, st.Retries, st.SlowTasks,
			st.Busy.Round(time.Microsecond), st.Wall.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "%5s %9s %9s %9s %9s\n", "node", "maxqueue", "workers", "localIO", "remoteIO")
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "%5d %9d %9d %9d %9d\n",
			n.Node, n.QueueHighWater, n.WorkersSpawned, n.LocalIO, n.RemoteIO)
	}
	return b.String()
}

// MeanBatch returns the stage's mean pointers per dereference task, or 0
// when the stage dispatched no dereference tasks.
func (st StageSnapshot) MeanBatch() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BatchedPtrs) / float64(st.Batches)
}

// TotalBatches sums the per-stage dereference-task counts.
func (s *Snapshot) TotalBatches() int64 {
	var total int64
	for _, st := range s.Stages {
		total += st.Batches
	}
	return total
}

// TotalBatchedPtrs sums the pointers carried by dereference tasks across
// all stages; TotalBatchedPtrs/TotalBatches is the job's mean batch size.
func (s *Snapshot) TotalBatchedPtrs() int64 {
	var total int64
	for _, st := range s.Stages {
		total += st.BatchedPtrs
	}
	return total
}

// TotalTasks sums the per-stage task counts.
func (s *Snapshot) TotalTasks() int64 {
	var total int64
	for _, st := range s.Stages {
		total += st.Tasks
	}
	return total
}

// TotalRetries sums the per-stage retry counts.
func (s *Snapshot) TotalRetries() int64 {
	var total int64
	for _, st := range s.Stages {
		total += st.Retries
	}
	return total
}
