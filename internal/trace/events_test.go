package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestEventRingBounded(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Event{Kind: EvTask, TS: int64(i)})
	}
	evs, dropped := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	// The newest 4 events survive, in arrival order.
	for i, ev := range evs {
		if want := int64(6 + i); ev.TS != want {
			t.Fatalf("event %d has TS %d, want %d", i, ev.TS, want)
		}
	}
}

func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(Event{Kind: EvEnqueue, Node: g, TS: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	evs, dropped := r.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("ring holds %d events, want 64", len(evs))
	}
	if got := int64(len(evs)) + dropped; got != 8*500 {
		t.Fatalf("retained + dropped = %d, want %d", got, 8*500)
	}
}

// timelineSnapshot is the fixed event log the Chrome-export and
// critical-path tests share: two nodes, two stages, with a queue-heavy
// phase on node 1.
func timelineSnapshot() *Snapshot {
	return &Snapshot{
		Job: "golden",
		Stages: []StageSnapshot{
			{Stage: 0, Name: "deref"},
			{Stage: 1, Name: "ref"},
		},
		Nodes: []NodeSnapshot{{Node: 0}, {Node: 1}},
		Events: []Event{
			{Kind: EvTask, Stage: 0, Node: 0, Worker: 0, TS: 0, Dur: 100, Ptrs: 4},
			{Kind: EvEnqueue, Stage: 1, Node: 1, TS: 50, Ptrs: 2},
			{Kind: EvRetry, Stage: 0, Node: 0, TS: 60},
			{Kind: EvSplit, Stage: 0, Node: 0, TS: 70, Ptrs: 8},
			{Kind: EvTask, Stage: 1, Node: 1, Worker: 1, TS: 200, Dur: 300, Wait: 150},
		},
		EventsDropped: 3,
	}
}

const goldenChromeTrace = `{"displayTimeUnit":"ms","otherData":{"eventsDropped":3,"job":"golden"},"traceEvents":[{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"node 0"}},{"name":"s0 deref","cat":"task","ph":"X","ts":0,"dur":0.1,"pid":0,"tid":0,"args":{"ptrs":4,"queueWaitUs":0,"stage":0}},{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"node 1"}},{"name":"enqueue s1 ref","cat":"enqueue","ph":"i","ts":0.05,"pid":1,"tid":0,"s":"t","args":{"depth":2,"stage":1}},{"name":"retry s0 deref","cat":"retry","ph":"i","ts":0.06,"pid":0,"tid":0,"s":"t","args":{"ptrs":0,"stage":0}},{"name":"split s0 deref","cat":"split","ph":"i","ts":0.07,"pid":0,"tid":0,"s":"t","args":{"ptrs":8,"stage":0}},{"name":"s1 ref","cat":"task","ph":"X","ts":0.2,"dur":0.3,"pid":1,"tid":1,"args":{"ptrs":0,"queueWaitUs":0.15,"stage":1}}]}
`

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := timelineSnapshot().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenChromeTrace {
		t.Fatalf("Chrome trace drifted from golden.\ngot:  %s\nwant: %s", got, goldenChromeTrace)
	}
}

func TestWriteChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := timelineSnapshot().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be a valid Chrome trace container: a JSON object with
	// a traceEvents array whose entries all carry a phase.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents in export")
	}
	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event %d has no phase: %v", i, ev)
		}
		phases[ph]++
	}
	if phases["X"] != 2 || phases["i"] != 3 || phases["M"] != 2 {
		t.Fatalf("phase counts = %v, want 2 X, 3 i, 2 M", phases)
	}
	if got := doc.OtherData["eventsDropped"]; got != float64(3) {
		t.Fatalf("otherData.eventsDropped = %v, want 3", got)
	}
}

func TestCriticalPathHandBuilt(t *testing.T) {
	// Hand-built log (times in ns):
	//
	//	stage 0 / node 0: three overlapping tasks covering [0, 100)
	//	stage 1 / node 1: one task executing [100, 160), having queued
	//	                  during [40, 100)
	//	idle gap [160, 200), then stage 1 / node 1 again [200, 230)
	//
	// Expected segments: s0n0 exec [0,100) wins its span (3 tasks beats the
	// single queued task), s1n1 exec [100,160), then after the gap s1n1
	// exec [200,230).
	events := []Event{
		{Kind: EvTask, Stage: 0, Node: 0, TS: 0, Dur: 80},
		{Kind: EvTask, Stage: 0, Node: 0, TS: 10, Dur: 80},
		{Kind: EvTask, Stage: 0, Node: 0, TS: 20, Dur: 80},
		{Kind: EvTask, Stage: 1, Node: 1, TS: 100, Dur: 60, Wait: 60},
		{Kind: EvTask, Stage: 1, Node: 1, TS: 200, Dur: 30},
		// Non-task events must be ignored by the extractor.
		{Kind: EvEnqueue, Stage: 1, Node: 1, TS: 40, Ptrs: 1},
	}
	segs := CriticalPath(events, 10)
	want := []CritSegment{
		{Stage: 0, Node: 0, Phase: "exec", Start: 0, End: 100, Span: 100, Tasks: 3},
		{Stage: 1, Node: 1, Phase: "exec", Start: 100, End: 160, Span: 60, Tasks: 1},
		{Stage: 1, Node: 1, Phase: "exec", Start: 200, End: 230, Span: 30, Tasks: 1},
	}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments %+v, want %d", len(segs), segs, len(want))
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
}

func TestCriticalPathQueuePhase(t *testing.T) {
	// A task whose wait dwarfs every execution: the queue phase must win
	// its span and be labeled as such.
	events := []Event{
		{Kind: EvTask, Stage: 0, Node: 2, TS: 1000, Dur: 50, Wait: 900},
	}
	segs := CriticalPath(events, 1)
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	s := segs[0]
	if s.Phase != "queue" || s.Stage != 0 || s.Node != 2 || s.Span != 900 {
		t.Fatalf("segment = %+v, want queue s0 n2 span 900", s)
	}
}

func TestCriticalPathTopK(t *testing.T) {
	var events []Event
	for i := 0; i < 8; i++ {
		// Disjoint tasks with growing durations on distinct stages.
		events = append(events, Event{
			Kind: EvTask, Stage: i, Node: 0,
			TS: int64(i * 1000), Dur: int64(10 * (i + 1)),
		})
	}
	segs := CriticalPath(events, 3)
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	// Longest first: durations 80, 70, 60.
	for i, wantSpan := range []int64{80, 70, 60} {
		if segs[i].Span != wantSpan {
			t.Fatalf("segment %d span = %d, want %d (%+v)", i, segs[i].Span, wantSpan, segs)
		}
	}
	if segs := CriticalPath(events, 0); segs != nil {
		t.Fatalf("k=0 returned %+v", segs)
	}
	if segs := CriticalPath(nil, 5); segs != nil {
		t.Fatalf("empty log returned %+v", segs)
	}
}

func TestCriticalPathDeterministicTies(t *testing.T) {
	// Two equal-weight attributions over the same interval: exec beats
	// queue, then the lower stage wins. Run twice to catch map-order flake.
	events := []Event{
		{Kind: EvTask, Stage: 2, Node: 0, TS: 0, Dur: 100},
		{Kind: EvTask, Stage: 1, Node: 1, TS: 0, Dur: 100},
		{Kind: EvTask, Stage: 0, Node: 2, TS: 200, Dur: 100, Wait: 100},
		{Kind: EvTask, Stage: 3, Node: 3, TS: 100, Dur: 100},
	}
	for trial := 0; trial < 2; trial++ {
		segs := CriticalPath(events, 10)
		if len(segs) == 0 {
			t.Fatal("no segments")
		}
		for _, s := range segs {
			if s.Start == 0 && (s.Stage != 1 || s.Phase != "exec") {
				t.Fatalf("tie at t=0 resolved to %+v, want stage 1 exec", s)
			}
			if s.Start == 100 && s.End == 200 && s.Phase != "exec" {
				// [100,200): stage 3 exec vs stage 0 queue — exec wins.
				t.Fatalf("tie at t=100 resolved to %+v, want exec", s)
			}
		}
	}
}

func TestChromeTraceRoundTripsThroughRing(t *testing.T) {
	// Events that passed through an overflowing ring still export cleanly.
	r := NewEventRing(2)
	for i := 0; i < 5; i++ {
		r.Add(Event{Kind: EvTask, Stage: 0, Node: 0, TS: int64(i * 10), Dur: 5})
	}
	evs, dropped := r.Snapshot()
	s := &Snapshot{Job: fmt.Sprintf("ring-%d", dropped), Events: evs, EventsDropped: dropped}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
}
