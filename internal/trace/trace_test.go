package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func testTrace() *Trace {
	return New("t", []StageInfo{
		{Name: "RangeDeref(idx)", Kind: "deref"},
		{Name: "EntryRef(base)", Kind: "ref"},
	}, 2)
}

func TestTraceCounters(t *testing.T) {
	tr := testTrace()
	begin := tr.TaskBegin(0)
	tr.AddEmits(0, 3)
	tr.TaskEnd(0, begin)
	tr.AddRetry(0)
	tr.AddError(1)
	tr.Enqueue(1, 5)
	tr.Enqueue(1, 2) // lower depth must not regress the high-water mark
	tr.WorkerSpawned(0)
	tr.NodeIO(0).Observe(false)
	tr.NodeIO(0).Observe(true)

	s := tr.Snapshot(nil)
	st := s.Stages[0]
	if st.Tasks != 1 || st.Emits != 3 || st.Retries != 1 {
		t.Errorf("stage 0 = %+v", st)
	}
	if st.Wall < 0 || st.Busy < 0 {
		t.Errorf("negative durations: %+v", st)
	}
	if s.Stages[1].Errors != 1 {
		t.Errorf("stage 1 errors = %d", s.Stages[1].Errors)
	}
	if s.Nodes[1].QueueHighWater != 5 {
		t.Errorf("node 1 high water = %d, want 5", s.Nodes[1].QueueHighWater)
	}
	if s.Nodes[0].WorkersSpawned != 1 || s.Nodes[0].LocalIO != 1 || s.Nodes[0].RemoteIO != 1 {
		t.Errorf("node 0 = %+v", s.Nodes[0])
	}
}

func TestTraceSlowTask(t *testing.T) {
	tr := testTrace()
	var logged []string
	tr.SetSlowTask(time.Nanosecond, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	begin := tr.TaskBegin(0)
	time.Sleep(time.Millisecond)
	tr.TaskEnd(0, begin)
	s := tr.Snapshot(nil)
	if s.Stages[0].SlowTasks != 1 {
		t.Errorf("slow tasks = %d, want 1", s.Stages[0].SlowTasks)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "slow task") {
		t.Errorf("slow log = %q", logged)
	}
}

func TestSnapshotErrAndTable(t *testing.T) {
	tr := testTrace()
	s := tr.Snapshot(errors.New("boom"))
	if s.Err != "boom" {
		t.Errorf("Err = %q", s.Err)
	}
	table := s.Table()
	for _, want := range []string{"FAILED: boom", "RangeDeref(idx)", "EntryRef(base)", "maxqueue", "workers"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestIOContext(t *testing.T) {
	if IOFrom(context.Background()) != nil {
		t.Fatal("IOFrom on bare context should be nil")
	}
	tr := testTrace()
	ctx := WithIO(context.Background(), tr.NodeIO(1))
	IOFrom(ctx).Observe(true)
	if got := tr.Snapshot(nil).Nodes[1].RemoteIO; got != 1 {
		t.Errorf("remote IO = %d, want 1", got)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := testTrace()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				begin := tr.TaskBegin(0)
				tr.AddEmits(0, 1)
				tr.TaskEnd(0, begin)
				tr.Enqueue(0, i)
				tr.NodeIO(0).Observe(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := tr.Snapshot(nil)
	if s.Stages[0].Tasks != workers*per || s.Stages[0].Emits != workers*per {
		t.Errorf("tasks=%d emits=%d, want %d", s.Stages[0].Tasks, s.Stages[0].Emits, workers*per)
	}
	if s.Nodes[0].QueueHighWater != per-1 {
		t.Errorf("high water = %d, want %d", s.Nodes[0].QueueHighWater, per-1)
	}
	if s.Nodes[0].LocalIO+s.Nodes[0].RemoteIO != workers*per {
		t.Errorf("IO total = %d", s.Nodes[0].LocalIO+s.Nodes[0].RemoteIO)
	}
}

func TestRegistryRingAndTotals(t *testing.T) {
	r := NewRegistry(2)
	for i := 0; i < 3; i++ {
		tr := New(fmt.Sprintf("job%d", i), []StageInfo{{Name: "d", Kind: "deref"}}, 1)
		begin := tr.TaskBegin(0)
		tr.TaskEnd(0, begin)
		var err error
		if i == 2 {
			err = errors.New("boom")
		}
		r.Add(tr.Snapshot(err))
	}
	recent := r.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring holds %d, want 2", len(recent))
	}
	if recent[0].Job != "job2" || recent[1].Job != "job1" {
		t.Errorf("recent order = %q, %q", recent[0].Job, recent[1].Job)
	}
	if recent[0].ID == 0 {
		t.Error("Add did not assign an ID")
	}
	if got := r.Get(recent[0].ID); got != recent[0] {
		t.Error("Get by ID failed")
	}
	if r.Get(9999) != nil {
		t.Error("Get of unknown ID should be nil")
	}

	var b strings.Builder
	r.WriteMetrics(&b)
	out := b.String()
	// Totals cover all three jobs even though the ring evicted one.
	for _, want := range []string{
		"lakeharbor_jobs_total 3",
		"lakeharbor_jobs_failed_total 1",
		"lakeharbor_tasks_total 3",
		"# TYPE lakeharbor_jobs_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
