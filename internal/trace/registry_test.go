package trace

import (
	"fmt"
	"strings"
	"testing"
)

// TestRegistryWraparound is the regression test for the circular-index
// eviction: once the ring wraps, Recent() must still return the newest
// snapshots newest-first and Get must resolve exactly the retained ids.
func TestRegistryWraparound(t *testing.T) {
	const capacity, added = 4, 11
	r := NewRegistry(capacity)
	for i := 0; i < added; i++ {
		r.Add(&Snapshot{Job: fmt.Sprintf("job-%d", i)})
	}
	recent := r.Recent()
	if len(recent) != capacity {
		t.Fatalf("retained %d snapshots, want %d", len(recent), capacity)
	}
	for i, s := range recent {
		// Newest first: ids added..added-capacity+1.
		if want := int64(added - i); s.ID != want {
			t.Fatalf("Recent()[%d].ID = %d, want %d", i, s.ID, want)
		}
		if want := fmt.Sprintf("job-%d", added-1-i); s.Job != want {
			t.Fatalf("Recent()[%d].Job = %q, want %q", i, s.Job, want)
		}
	}
	// Evicted ids are gone, retained ids resolve.
	for id := int64(1); id <= added; id++ {
		got := r.Get(id)
		if id <= added-capacity {
			if got != nil {
				t.Fatalf("Get(%d) = %v, want nil (evicted)", id, got)
			}
		} else if got == nil || got.ID != id {
			t.Fatalf("Get(%d) = %v, want retained snapshot", id, got)
		}
	}
	// Totals must cover every job ever added, eviction notwithstanding.
	if tot := r.Totals(); tot.Jobs != added {
		t.Fatalf("Totals().Jobs = %d, want %d", tot.Jobs, added)
	}
}

func TestRegistryMergesLatencies(t *testing.T) {
	r := NewRegistry(2)
	for i := 0; i < 3; i++ {
		var h Histogram
		h.Record(int64(100 * (i + 1)))
		r.Add(&Snapshot{Job: "j", Lat: Latencies{Task: h.Snapshot()}})
	}
	lat := r.Latencies()
	if lat.Task.Count != 3 {
		t.Fatalf("merged task count = %d, want 3 (must survive ring eviction)", lat.Task.Count)
	}
	if lat.Task.Max != 300 {
		t.Fatalf("merged task max = %d, want 300", lat.Task.Max)
	}
}

func TestWriteMetricsSummaries(t *testing.T) {
	r := NewRegistry(0)
	var task, wait Histogram
	task.Record(1_000_000) // 1ms
	wait.Record(2_000_000)
	r.Add(&Snapshot{
		Job:           "j",
		EventsDropped: 7,
		Lat:           Latencies{Task: task.Snapshot(), QueueWait: wait.Snapshot()},
	})
	var b strings.Builder
	r.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		`lakeharbor_task_seconds{quantile="0.5"}`,
		`lakeharbor_task_seconds{quantile="0.99"}`,
		`lakeharbor_queue_wait_seconds{quantile="0.9"}`,
		"lakeharbor_io_local_seconds_count 0",
		"lakeharbor_batch_size_count 0",
		"lakeharbor_timeline_events_dropped_total 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
