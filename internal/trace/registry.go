package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Registry retains the snapshots of recent jobs in a fixed-size ring and
// accumulates cumulative totals (and merged latency distributions) across
// every job it has ever seen, so the metrics endpoint exposes monotone
// counters and stable quantiles even after old snapshots are evicted from
// the ring.
type Registry struct {
	mu sync.Mutex
	// recent is a circular buffer: head indexes the oldest retained
	// snapshot and n counts how many are held, so eviction is O(1)
	// regardless of the ring capacity.
	recent []*Snapshot
	head   int
	n      int
	nextID int64

	tot Totals    // cumulative over all recorded jobs (never decremented)
	lat Latencies // merged distributions over all recorded jobs
}

// Totals is a Registry's cumulative counter set over every job it has
// recorded, ring eviction notwithstanding.
type Totals struct {
	Jobs          int64         `json:"jobs"`
	Failed        int64         `json:"failed"`
	Tasks         int64         `json:"tasks"`
	Emits         int64         `json:"emits"`
	Retries       int64         `json:"retries"`
	Errors        int64         `json:"errors"`
	SlowTasks     int64         `json:"slowTasks"`
	Batches       int64         `json:"batches"`
	BatchedPtrs   int64         `json:"batchedPtrs"`
	BatchSplits   int64         `json:"batchSplits"`
	LocalIO       int64         `json:"localIO"`
	RemoteIO      int64         `json:"remoteIO"`
	EventsDropped int64         `json:"eventsDropped"`
	Busy          time.Duration `json:"busy"`
	Wall          time.Duration `json:"wall"`
}

// DefaultRegistryCap is how many recent job snapshots a Registry keeps.
const DefaultRegistryCap = 64

// NewRegistry creates a Registry retaining up to capacity snapshots
// (DefaultRegistryCap when capacity <= 0).
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultRegistryCap
	}
	return &Registry{recent: make([]*Snapshot, capacity)}
}

// Add records a finished job's snapshot, assigns it an ID, and folds it
// into the cumulative totals and merged latency distributions. Eviction of
// the oldest snapshot is O(1) (a circular-index overwrite).
func (r *Registry) Add(s *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	s.ID = r.nextID
	if r.n < len(r.recent) {
		r.recent[(r.head+r.n)%len(r.recent)] = s
		r.n++
	} else {
		r.recent[r.head] = s
		r.head = (r.head + 1) % len(r.recent)
	}
	r.tot.Jobs++
	if s.Err != "" {
		r.tot.Failed++
	}
	r.tot.Wall += s.Elapsed
	for _, st := range s.Stages {
		r.tot.Tasks += st.Tasks
		r.tot.Emits += st.Emits
		r.tot.Retries += st.Retries
		r.tot.Errors += st.Errors
		r.tot.SlowTasks += st.SlowTasks
		r.tot.Batches += st.Batches
		r.tot.BatchedPtrs += st.BatchedPtrs
		r.tot.BatchSplits += st.BatchSplits
		r.tot.Busy += st.Busy
	}
	for _, n := range s.Nodes {
		r.tot.LocalIO += n.LocalIO
		r.tot.RemoteIO += n.RemoteIO
	}
	r.tot.EventsDropped += s.EventsDropped
	r.lat = r.lat.Merge(s.Lat)
}

// Recent returns the retained snapshots, newest first.
func (r *Registry) Recent() []*Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Snapshot, r.n)
	for i := 0; i < r.n; i++ {
		out[r.n-1-i] = r.recent[(r.head+i)%len(r.recent)]
	}
	return out
}

// Get returns the retained snapshot with the given ID, or nil.
func (r *Registry) Get(id int64) *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		if s := r.recent[(r.head+i)%len(r.recent)]; s.ID == id {
			return s
		}
	}
	return nil
}

// Totals returns the cumulative counters over every recorded job.
func (r *Registry) Totals() Totals {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tot
}

// Latencies returns the merged latency distributions over every recorded
// job, for quantile queries and machine-readable bench output.
func (r *Registry) Latencies() Latencies {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lat
}

// WriteMetrics renders the cumulative totals as Prometheus-style text
// exposition: monotone counters plus p50/p90/p99 summaries of the merged
// task, queue-wait, I/O round-trip, and batch-size distributions.
func (r *Registry) WriteMetrics(w io.Writer) {
	r.mu.Lock()
	tot, lat := r.tot, r.lat
	r.mu.Unlock()
	metric := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	metric("lakeharbor_jobs_total", "Jobs executed.", tot.Jobs)
	metric("lakeharbor_jobs_failed_total", "Jobs that finished with an error.", tot.Failed)
	metric("lakeharbor_tasks_total", "Executor pool tasks run.", tot.Tasks)
	metric("lakeharbor_emits_total", "Stage outputs produced (records and pointers).", tot.Emits)
	metric("lakeharbor_retries_total", "Dereferencer retries after transient failures.", tot.Retries)
	metric("lakeharbor_task_errors_total", "Failed stage invocations.", tot.Errors)
	metric("lakeharbor_slow_tasks_total", "Tasks exceeding the slow-task threshold.", tot.SlowTasks)
	metric("lakeharbor_batches_total", "Dereference tasks dispatched (a batch may carry one pointer).", tot.Batches)
	metric("lakeharbor_batched_pointers_total", "Pointers carried by dereference tasks; divide by batches for mean batch size.", tot.BatchedPtrs)
	metric("lakeharbor_batch_splits_total", "Failed batches split into per-pointer retries.", tot.BatchSplits)
	metric("lakeharbor_local_io_total", "Storage accesses served by the issuing node.", tot.LocalIO)
	metric("lakeharbor_remote_io_total", "Cross-node storage fetches.", tot.RemoteIO)
	metric("lakeharbor_timeline_events_dropped_total", "Timeline events overwritten by full event rings.", tot.EventsDropped)
	fmt.Fprintf(w, "# HELP lakeharbor_busy_seconds_total Summed task execution time.\n"+
		"# TYPE lakeharbor_busy_seconds_total counter\nlakeharbor_busy_seconds_total %g\n",
		tot.Busy.Seconds())
	fmt.Fprintf(w, "# HELP lakeharbor_job_seconds_total Summed job wall time.\n"+
		"# TYPE lakeharbor_job_seconds_total counter\nlakeharbor_job_seconds_total %g\n",
		tot.Wall.Seconds())
	lat.Task.WriteSummary(w, "lakeharbor_task_seconds", "Task service time (TaskBegin to TaskEnd).", 1e-9)
	lat.QueueWait.WriteSummary(w, "lakeharbor_queue_wait_seconds", "Enqueue-to-start queue wait.", 1e-9)
	lat.IOLocal.WriteSummary(w, "lakeharbor_io_local_seconds", "Observed local storage round-trip time.", 1e-9)
	lat.IORemote.WriteSummary(w, "lakeharbor_io_remote_seconds", "Observed cross-node storage round-trip time.", 1e-9)
	lat.Batch.WriteSummary(w, "lakeharbor_batch_size", "Pointers per dereference task.", 1)
}
