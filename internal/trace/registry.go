package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Registry retains the snapshots of recent jobs in a fixed-size ring and
// accumulates cumulative totals across every job it has ever seen, so the
// metrics endpoint exposes monotone counters even after old snapshots are
// evicted from the ring.
type Registry struct {
	mu     sync.Mutex
	cap    int
	recent []*Snapshot // oldest first, len <= cap
	nextID int64

	// Cumulative totals over all recorded jobs (never decremented).
	jobs        int64
	failed      int64
	tasks       int64
	emits       int64
	retries     int64
	errors      int64
	slowTasks   int64
	batches     int64
	batchedPtrs int64
	batchSplits int64
	localIO     int64
	remoteIO    int64
	busyNanos   int64
	wallNanos   int64
}

// DefaultRegistryCap is how many recent job snapshots a Registry keeps.
const DefaultRegistryCap = 64

// NewRegistry creates a Registry retaining up to capacity snapshots
// (DefaultRegistryCap when capacity <= 0).
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultRegistryCap
	}
	return &Registry{cap: capacity}
}

// Add records a finished job's snapshot, assigns it an ID, and folds it
// into the cumulative totals.
func (r *Registry) Add(s *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	s.ID = r.nextID
	if len(r.recent) == r.cap {
		copy(r.recent, r.recent[1:])
		r.recent[len(r.recent)-1] = s
	} else {
		r.recent = append(r.recent, s)
	}
	r.jobs++
	if s.Err != "" {
		r.failed++
	}
	r.wallNanos += int64(s.Elapsed)
	for _, st := range s.Stages {
		r.tasks += st.Tasks
		r.emits += st.Emits
		r.retries += st.Retries
		r.errors += st.Errors
		r.slowTasks += st.SlowTasks
		r.batches += st.Batches
		r.batchedPtrs += st.BatchedPtrs
		r.batchSplits += st.BatchSplits
		r.busyNanos += int64(st.Busy)
	}
	for _, n := range s.Nodes {
		r.localIO += n.LocalIO
		r.remoteIO += n.RemoteIO
	}
}

// Recent returns the retained snapshots, newest first.
func (r *Registry) Recent() []*Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Snapshot, len(r.recent))
	for i, s := range r.recent {
		out[len(out)-1-i] = s
	}
	return out
}

// Get returns the retained snapshot with the given ID, or nil.
func (r *Registry) Get(id int64) *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.recent {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// WriteMetrics renders the cumulative totals as Prometheus-style text
// exposition (counters only; all monotone).
func (r *Registry) WriteMetrics(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	metric := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	metric("lakeharbor_jobs_total", "Jobs executed.", r.jobs)
	metric("lakeharbor_jobs_failed_total", "Jobs that finished with an error.", r.failed)
	metric("lakeharbor_tasks_total", "Executor pool tasks run.", r.tasks)
	metric("lakeharbor_emits_total", "Stage outputs produced (records and pointers).", r.emits)
	metric("lakeharbor_retries_total", "Dereferencer retries after transient failures.", r.retries)
	metric("lakeharbor_task_errors_total", "Failed stage invocations.", r.errors)
	metric("lakeharbor_slow_tasks_total", "Tasks exceeding the slow-task threshold.", r.slowTasks)
	metric("lakeharbor_batches_total", "Dereference tasks dispatched (a batch may carry one pointer).", r.batches)
	metric("lakeharbor_batched_pointers_total", "Pointers carried by dereference tasks; divide by batches for mean batch size.", r.batchedPtrs)
	metric("lakeharbor_batch_splits_total", "Failed batches split into per-pointer retries.", r.batchSplits)
	metric("lakeharbor_local_io_total", "Storage accesses served by the issuing node.", r.localIO)
	metric("lakeharbor_remote_io_total", "Cross-node storage fetches.", r.remoteIO)
	fmt.Fprintf(w, "# HELP lakeharbor_busy_seconds_total Summed task execution time.\n"+
		"# TYPE lakeharbor_busy_seconds_total counter\nlakeharbor_busy_seconds_total %g\n",
		time.Duration(r.busyNanos).Seconds())
	fmt.Fprintf(w, "# HELP lakeharbor_job_seconds_total Summed job wall time.\n"+
		"# TYPE lakeharbor_job_seconds_total counter\nlakeharbor_job_seconds_total %g\n",
		time.Duration(r.wallNanos).Seconds())
}
