package trace

import (
	"strings"
	"testing"
)

func TestBatchCounters(t *testing.T) {
	tr := testTrace()
	tr.AddBatch(0, 1)
	tr.AddBatch(0, 7)
	tr.AddBatchSplit(0)

	s := tr.Snapshot(nil)
	st := s.Stages[0]
	if st.Batches != 2 || st.BatchedPtrs != 8 || st.BatchSplits != 1 {
		t.Errorf("stage 0 batch stats = %+v", st)
	}
	if got := st.MeanBatch(); got != 4 {
		t.Errorf("MeanBatch = %v, want 4", got)
	}
	if s.Stages[1].MeanBatch() != 0 {
		t.Errorf("stage without batches has MeanBatch %v", s.Stages[1].MeanBatch())
	}
	if s.TotalBatches() != 2 || s.TotalBatchedPtrs() != 8 {
		t.Errorf("totals = %d/%d, want 2/8", s.TotalBatches(), s.TotalBatchedPtrs())
	}

	table := s.Table()
	if !strings.Contains(table, "avgbat") || !strings.Contains(table, "4.0") {
		t.Errorf("Table missing batch columns:\n%s", table)
	}
}

func TestRegistryBatchTotals(t *testing.T) {
	r := NewRegistry(4)
	tr := New("j", []StageInfo{{Name: "d", Kind: "deref"}}, 1)
	tr.AddBatch(0, 5)
	tr.AddBatchSplit(0)
	r.Add(tr.Snapshot(nil))

	var b strings.Builder
	r.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"lakeharbor_batches_total 1",
		"lakeharbor_batched_pointers_total 5",
		"lakeharbor_batch_splits_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
