package trace

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// This file implements the lock-free latency histogram of the observability
// layer: a log-linear bucketed counter array (HdrHistogram-style) that
// thousands of concurrent workers can record into without coordination, and
// an immutable, mergeable snapshot with quantile estimation.
//
// Values are non-negative int64s in whatever unit the caller picks
// (nanoseconds for latencies, pointer counts for batch sizes). Buckets are
// exact for values < 8 and then split every power of two into 8 linear
// sub-buckets, so a quantile estimate is never more than one sub-bucket
// boundary (~12.5% relative error) above the true value.

const (
	// histSubBits is log2 of the sub-buckets per power-of-two octave.
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: histSub exact
	// small-value buckets plus histSub linear sub-buckets for each of the
	// 61 remaining octaves (top bit positions 3..63).
	histBuckets = histSub + (63-histSubBits+1)*histSub
)

// histBucketOf maps a value to its bucket index. Negative values clamp to 0.
func histBucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	msb := bits.Len64(u) - 1 // >= histSubBits here
	sub := (u >> (uint(msb) - histSubBits)) & (histSub - 1)
	return histSub + (msb-histSubBits)*histSub + int(sub)
}

// histBucketHi returns the bucket's inclusive upper bound.
func histBucketHi(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	e := uint((i-histSub)/histSub + histSubBits)
	sub := uint64((i - histSub) % histSub)
	hi := uint64(1)<<e + (sub+1)<<(e-histSubBits) - 1
	if hi > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(hi)
}

// Histogram is a lock-free log-bucketed value distribution. The zero value
// is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	storeMax(&h.max, v)
}

// RecordDur records a duration in nanoseconds.
func (h *Histogram) RecordDur(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the live counters into an immutable HistSnapshot. It may
// run concurrently with Record; the result is a consistent-enough view (a
// racing Record may or may not be included).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Hi: histBucketHi(i), N: n})
		}
	}
	return s
}

// HistBucket is one occupied bucket of a HistSnapshot.
type HistBucket struct {
	// Hi is the bucket's inclusive upper value bound.
	Hi int64 `json:"hi"`
	// N is the number of observations that fell in the bucket.
	N int64 `json:"n"`
}

// HistSnapshot is an immutable copy of a Histogram: the occupied buckets in
// ascending Hi order plus exact count, sum, and max. Snapshots from
// different histograms (or different jobs) merge losslessly because buckets
// are identified by their value bound, not their index.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Merge returns the distribution of both snapshots' observations combined.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum, Max: s.Max}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Hi < o.Buckets[j].Hi):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Hi < s.Buckets[i].Hi:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default: // same bound
			out.Buckets = append(out.Buckets, HistBucket{Hi: s.Buckets[i].Hi, N: s.Buckets[i].N + o.Buckets[j].N})
			i++
			j++
		}
	}
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) as the upper bound of the
// bucket holding the ceil(q·Count)-th smallest observation, clamped to Max
// so Quantile(1) is exact. An empty snapshot returns 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= rank {
			if b.Hi > s.Max {
				return s.Max
			}
			return b.Hi
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// HistSummary is a compact JSON-friendly digest of a distribution, used by
// the bench commands' machine-readable output.
type HistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Summary digests the snapshot into count, mean, p50/p90/p99, and max.
func (s HistSnapshot) Summary() HistSummary {
	return HistSummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.5),
		P90:   s.Quantile(0.9),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}

// WriteSummary renders the snapshot as one Prometheus summary: p50/p90/p99
// quantile samples plus _sum and _count. scale converts recorded units to
// the exported unit (1e-9 turns nanoseconds into seconds; 1 exports raw
// values, e.g. batch sizes).
func (s HistSnapshot) WriteSummary(w io.Writer, name, help string, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), float64(s.Quantile(q))*scale)
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(s.Sum)*scale)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}
