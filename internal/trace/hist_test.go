package trace

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistBucketBounds(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// and whose predecessor's bound is < the value.
	vals := []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1025,
		1e6, 1e9, 1e12, math.MaxInt64 - 1, math.MaxInt64}
	for _, v := range vals {
		i := histBucketOf(v)
		if hi := histBucketHi(i); hi < v {
			t.Errorf("value %d landed in bucket %d with hi %d < value", v, i, hi)
		}
		if i > 0 {
			if lo := histBucketHi(i - 1); lo >= v {
				t.Errorf("value %d landed in bucket %d but bucket %d already covers it (hi %d)", v, i, i-1, lo)
			}
		}
	}
	if histBucketOf(-5) != 0 {
		t.Errorf("negative values must clamp to bucket 0, got %d", histBucketOf(-5))
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	// Hammer one histogram from many goroutines; run under -race this
	// checks the lock-free recording path, and the totals must be exact.
	var h Histogram
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Record(rng.Int63n(1_000_000))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	var inBuckets int64
	for _, b := range s.Buckets {
		inBuckets += b.N
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, s.Count)
	}
}

// TestQuantileWithinOneBucket is the accuracy property the bucketing is
// designed for: for any recorded distribution, Quantile(q) is bounded below
// by the exact q-quantile and above by the upper bound of the exact
// quantile's bucket.
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		n := 1 + rng.Intn(500)
		vals := make([]int64, n)
		for i := range vals {
			// Mix of magnitudes so both exact and log buckets are hit.
			vals[i] = rng.Int63n(int64(1) << uint(1+rng.Intn(40)))
			h.Record(vals[i])
		}
		sorted := append([]int64(nil), vals...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		s := h.Snapshot()
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			got := s.Quantile(q)
			if got < exact {
				t.Fatalf("trial %d: Quantile(%g) = %d below exact %d", trial, q, got, exact)
			}
			if hi := histBucketHi(histBucketOf(exact)); got > hi {
				t.Fatalf("trial %d: Quantile(%g) = %d above bucket bound %d of exact %d",
					trial, q, got, hi, exact)
			}
		}
		if s.Quantile(1) != sorted[n-1] {
			t.Fatalf("trial %d: Quantile(1) = %d, want exact max %d", trial, s.Quantile(1), sorted[n-1])
		}
	}
}

// TestMergeMatchesCombinedRecording: merging two snapshots must be
// indistinguishable from recording both value streams into one histogram.
func TestMergeMatchesCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var a, b, both Histogram
		for i := 0; i < 300; i++ {
			v := rng.Int63n(int64(1) << uint(1+rng.Intn(30)))
			if i%2 == 0 {
				a.Record(v)
			} else {
				b.Record(v)
			}
			both.Record(v)
		}
		merged := a.Snapshot().Merge(b.Snapshot())
		want := both.Snapshot()
		if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
			t.Fatalf("trial %d: merged (%d,%d,%d) != combined (%d,%d,%d)",
				trial, merged.Count, merged.Sum, merged.Max, want.Count, want.Sum, want.Max)
		}
		if len(merged.Buckets) != len(want.Buckets) {
			t.Fatalf("trial %d: merged has %d buckets, combined %d", trial, len(merged.Buckets), len(want.Buckets))
		}
		for i := range merged.Buckets {
			if merged.Buckets[i] != want.Buckets[i] {
				t.Fatalf("trial %d: bucket %d: merged %+v != combined %+v",
					trial, i, merged.Buckets[i], want.Buckets[i])
			}
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if merged.Quantile(q) != want.Quantile(q) {
				t.Fatalf("trial %d: Quantile(%g) merged %d != combined %d",
					trial, q, merged.Quantile(q), want.Quantile(q))
			}
		}
	}
}

func TestEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Count != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	merged := s.Merge(s)
	if merged.Count != 0 || len(merged.Buckets) != 0 {
		t.Fatalf("empty merge not empty: %+v", merged)
	}
}

func TestRecordDurAndSummary(t *testing.T) {
	var h Histogram
	h.RecordDur(time.Millisecond)
	h.RecordDur(2 * time.Millisecond)
	s := h.Snapshot()
	sum := s.Summary()
	if sum.Count != 2 || sum.Max != int64(2*time.Millisecond) {
		t.Fatalf("summary = %+v", sum)
	}
	var b strings.Builder
	s.WriteSummary(&b, "test_seconds", "help text.", 1e-9)
	out := b.String()
	for _, want := range []string{
		`test_seconds{quantile="0.5"}`,
		`test_seconds{quantile="0.9"}`,
		`test_seconds{quantile="0.99"}`,
		"test_seconds_count 2",
		"# TYPE test_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}
