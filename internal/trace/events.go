package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// This file implements the per-job event timeline: a bounded ring of
// execution events (completed tasks, enqueues, retries, batch splits) with
// node + stage attribution, an exporter to Chrome trace-event JSON (the
// format Perfetto and chrome://tracing load), and a critical-path extractor
// that reports where a job's wall time actually went.

// EventKind labels one entry of a job's event log.
type EventKind string

const (
	// EvTask is a completed task: TS is its execution begin, Dur its
	// service time, Wait the queue wait that preceded it, Ptrs its batch
	// size (0 for record tasks).
	EvTask EventKind = "task"
	// EvEnqueue marks a task landing on a node's queue; Ptrs carries the
	// resulting queue depth.
	EvEnqueue EventKind = "enqueue"
	// EvRetry marks one Dereferencer retry after a transient failure.
	EvRetry EventKind = "retry"
	// EvSplit marks a failed batch falling back to per-pointer retries;
	// Ptrs carries the batch size that split.
	EvSplit EventKind = "split"
	// EvRPC is a completed remote storage round trip issued by a node: TS
	// is the call begin, Dur its round-trip time. The interval nests inside
	// the issuing task's EvTask span, so the critical-path extractor can
	// name wire-dominated segments as (stage, node, rpc).
	EvRPC EventKind = "rpc"
)

// Event is one entry of a job's timeline. All times are nanosecond offsets
// from the job's start, so logs are compact and trivially comparable.
type Event struct {
	Kind   EventKind `json:"kind"`
	Stage  int       `json:"stage"`
	Node   int       `json:"node"`
	Worker int       `json:"worker,omitempty"`
	// TS is the event time (for EvTask: execution begin), ns from job start.
	TS int64 `json:"ts"`
	// Dur is the task's service time in ns (EvTask only).
	Dur int64 `json:"dur,omitempty"`
	// Wait is the queue wait that preceded TS in ns (EvTask only).
	Wait int64 `json:"wait,omitempty"`
	// Ptrs is the task's batch size, the queue depth (EvEnqueue), or the
	// split batch's size (EvSplit).
	Ptrs int `json:"ptrs,omitempty"`
}

// DefaultEventCap is the event-ring capacity used when a caller enables
// timeline capture without choosing one. 8192 events is ~0.5 MB and covers
// every job the harnesses run; longer jobs keep their newest events and
// report the overwritten count.
const DefaultEventCap = 8192

// EventRing is a bounded ring of timeline events. When full, the oldest
// event is overwritten and counted as dropped, so a job's event memory is
// capped regardless of how long it runs. Methods are safe for concurrent
// use.
type EventRing struct {
	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest retained event
	n       int
	dropped int64
}

// NewEventRing creates a ring retaining up to capacity events
// (DefaultEventCap when capacity <= 0).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// Add appends one event, overwriting the oldest when the ring is full.
func (r *EventRing) Add(ev Event) {
	r.mu.Lock()
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = ev
		r.n++
	} else {
		r.buf[r.head] = ev
		r.head = (r.head + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events in arrival order plus the count of
// events overwritten since the ring was created.
func (r *EventRing) Snapshot() (events []Event, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	events = make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		events[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return events, r.dropped
}

// rpcTrackTid is the synthetic thread id RPC spans render on in Chrome
// trace output, one shared track per node process.
const rpcTrackTid = 1 << 20

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the snapshot's event log as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Nodes
// map to processes and workers to threads, so each worker's tasks form one
// non-overlapping track; retries, splits, and enqueues appear as instant
// markers. Timestamps are microseconds from job start.
func (s *Snapshot) WriteChromeTrace(w io.Writer) error {
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })

	stageName := func(i int) string {
		if i >= 0 && i < len(s.Stages) {
			return fmt.Sprintf("s%d %s", i, s.Stages[i].Name)
		}
		return fmt.Sprintf("s%d", i)
	}
	out := make([]chromeEvent, 0, len(evs)+2*len(s.Nodes))
	seenNode := map[int]bool{}
	for _, ev := range evs {
		if !seenNode[ev.Node] {
			seenNode[ev.Node] = true
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: ev.Node,
				Args: map[string]any{"name": fmt.Sprintf("node %d", ev.Node)},
			})
		}
		ce := chromeEvent{
			TS:  float64(ev.TS) / 1e3,
			Pid: ev.Node,
			Tid: ev.Worker,
			Cat: string(ev.Kind),
		}
		switch ev.Kind {
		case EvTask:
			ce.Name = stageName(ev.Stage)
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
			ce.Args = map[string]any{"stage": ev.Stage, "ptrs": ev.Ptrs, "queueWaitUs": float64(ev.Wait) / 1e3}
		case EvRPC:
			// RPC spans get their own per-node track (tasks live on worker
			// tids) so wire time is visible without overlapping task slices.
			ce.Name = "rpc " + stageName(ev.Stage)
			ce.Ph = "X"
			ce.Tid = rpcTrackTid
			ce.Dur = float64(ev.Dur) / 1e3
			ce.Args = map[string]any{"stage": ev.Stage}
		case EvEnqueue:
			ce.Name = "enqueue " + stageName(ev.Stage)
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{"stage": ev.Stage, "depth": ev.Ptrs}
		default: // retry, split, future kinds
			ce.Name = string(ev.Kind) + " " + stageName(ev.Stage)
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{"stage": ev.Stage, "ptrs": ev.Ptrs}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     out,
		"otherData": map[string]any{
			"job":           s.Job,
			"eventsDropped": s.EventsDropped,
		},
	})
}

// CritSegment is one segment of a job's (approximate) critical path: a
// contiguous span of the job's wall time attributed to one (stage, node,
// phase) — the longest pole holding the job open during that span.
type CritSegment struct {
	Stage int `json:"stage"`
	Node  int `json:"node"`
	// Phase is "exec" (tasks running), "queue" (tasks waiting for a
	// worker), or "rpc" (remote storage round trips in flight). A
	// queue-dominated segment means the node's pool, not the storage path,
	// was the bottleneck; an rpc-dominated segment means the wire was.
	Phase string `json:"phase"`
	// Start and End are ns offsets from job start; Span = End - Start.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	Span  int64 `json:"span"`
	// Tasks is how many task intervals of this attribution overlapped the
	// segment.
	Tasks int `json:"tasks"`
}

// Sweep phases, in tie-break preference order: an rpc interval nests inside
// its task's exec interval, so at equal counts the more specific attribution
// (the wire) wins; exec beats queue as before.
const (
	phaseRPC uint8 = iota
	phaseExec
	phaseQueue
)

// critKey identifies one attribution group of the sweep.
type critKey struct {
	stage int
	node  int
	ph    uint8
}

func (k critKey) phase() string {
	switch k.ph {
	case phaseRPC:
		return "rpc"
	case phaseQueue:
		return "queue"
	default:
		return "exec"
	}
}

// CriticalPath extracts the top-k longest-pole segments from a job's event
// log. Each completed task contributes an execution interval [TS, TS+Dur)
// attributed to (stage, node, exec) and, when it waited, a queue interval
// [TS-Wait, TS) attributed to (stage, node, queue); each completed remote
// round trip contributes [TS, TS+Dur) attributed to (stage, node, rpc).
// The extractor sweeps the job's timeline; every instant is attributed to
// the group with the most concurrently active intervals (ties prefer rpc
// over exec over queue, then lower stage, then lower node), adjacent
// instants with the same winner merge into segments, and the k longest
// segments are returned, longest first. Idle gaps (no active interval)
// separate segments.
func CriticalPath(events []Event, k int) []CritSegment {
	type point struct {
		t     int64
		key   critKey
		delta int
	}
	var pts []point
	for _, ev := range events {
		switch ev.Kind {
		case EvTask:
			if ev.Dur > 0 {
				key := critKey{stage: ev.Stage, node: ev.Node, ph: phaseExec}
				pts = append(pts, point{t: ev.TS, key: key, delta: +1}, point{t: ev.TS + ev.Dur, key: key, delta: -1})
			}
			if ev.Wait > 0 {
				key := critKey{stage: ev.Stage, node: ev.Node, ph: phaseQueue}
				pts = append(pts, point{t: ev.TS - ev.Wait, key: key, delta: +1}, point{t: ev.TS, key: key, delta: -1})
			}
		case EvRPC:
			if ev.Dur > 0 {
				key := critKey{stage: ev.Stage, node: ev.Node, ph: phaseRPC}
				pts = append(pts, point{t: ev.TS, key: key, delta: +1}, point{t: ev.TS + ev.Dur, key: key, delta: -1})
			}
		}
	}
	if len(pts) == 0 || k <= 0 {
		return nil
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].t < pts[j].t })

	// prefer reports whether a beats b as the slice winner at equal counts.
	prefer := func(a, b critKey) bool {
		if a.ph != b.ph {
			return a.ph < b.ph
		}
		if a.stage != b.stage {
			return a.stage < b.stage
		}
		return a.node < b.node
	}

	active := map[critKey]int{}
	var segs []CritSegment
	var cur *CritSegment
	var curKey critKey
	flush := func() {
		if cur != nil && cur.Span > 0 {
			segs = append(segs, *cur)
		}
		cur = nil
	}
	i := 0
	for i < len(pts) {
		t := pts[i].t
		starts := map[critKey]int{}
		for i < len(pts) && pts[i].t == t {
			p := pts[i]
			active[p.key] += p.delta
			if active[p.key] <= 0 {
				delete(active, p.key)
			}
			if p.delta > 0 {
				starts[p.key]++
			}
			i++
		}
		// Winner for the slice [t, next boundary).
		var winner critKey
		best := 0
		for key, n := range active {
			if n > best || (n == best && best > 0 && prefer(key, winner)) {
				best, winner = n, key
			}
		}
		switch {
		case best == 0: // idle gap
			if cur != nil {
				cur.End, cur.Span = t, t-cur.Start
			}
			flush()
		case cur == nil || winner != curKey:
			if cur != nil {
				cur.End, cur.Span = t, t-cur.Start
			}
			flush()
			curKey = winner
			cur = &CritSegment{
				Stage: winner.stage, Node: winner.node, Phase: winner.phase(),
				Start: t, Tasks: active[winner],
			}
		default:
			cur.Tasks += starts[curKey]
		}
	}
	flush()
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Span > segs[j].Span })
	if len(segs) > k {
		segs = segs[:k]
	}
	return segs
}
