package trace

import "context"

// RPCInfo is the trace context a remote storage admission carries across the
// nodenet wire: which job caused the work, on behalf of which tenant, from
// which stage, and on which retry attempt. The executor stamps it onto each
// dereference task's context; the nodenet client copies it into the request
// frame so the node can attribute its own spans to the originating job.
type RPCInfo struct {
	// Job is the originating job's name. A zero Job means "no trace
	// context": untraced callers (loaders, tools) never stamp one.
	Job string
	// Tenant is the principal the job runs on behalf of (may be empty).
	Tenant string
	// Stage is the job stage issuing the access (>= 0 when stamped).
	Stage int
	// Attempt is the retry ordinal of the dereference driving this access:
	// 0 for the first try, incremented per executor retry.
	Attempt int
}

// rpcKey carries an RPCInfo through a context.
type rpcKey struct{}

// WithRPC attaches the RPC trace context to ctx. The storage transports read
// it back with RPCFrom to attribute remote work to (job, stage, tenant).
func WithRPC(ctx context.Context, info RPCInfo) context.Context {
	return context.WithValue(ctx, rpcKey{}, info)
}

// RPCFrom returns the RPC trace context attached to ctx; the zero RPCInfo
// (Job == "") when the caller is untraced.
func RPCFrom(ctx context.Context) RPCInfo {
	info, _ := ctx.Value(rpcKey{}).(RPCInfo)
	return info
}

// WithRPCAttempt re-stamps ctx's RPC trace context with the given retry
// attempt. A no-op returning ctx unchanged when no context is attached.
func WithRPCAttempt(ctx context.Context, attempt int) context.Context {
	info := RPCFrom(ctx)
	if info.Job == "" {
		return ctx
	}
	info.Attempt = attempt
	return WithRPC(ctx, info)
}
