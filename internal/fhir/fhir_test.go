package fhir

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
)

func TestBundleRoundTrip(t *testing.T) {
	b := &Bundle{
		Patient:    Patient{ID: 7, BirthYear: 1950, Gender: "female"},
		Conditions: []Condition{{Code: CondHypertension, System: "http://snomed.info/sct", Onset: "2015-03-01"}},
		Medications: []MedicationRequest{
			{Code: "rx-C02-01", Class: ClassAntihyper, Dose: 2},
		},
		Observations: []Observation{{Code: "obs-01", Value: 130.5, Unit: "mmHg"}},
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatal("Marshal produced invalid JSON")
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Patient != b.Patient {
		t.Errorf("patient round trip: %+v", got.Patient)
	}
	if len(got.Conditions) != 1 || got.Conditions[0] != b.Conditions[0] {
		t.Errorf("conditions round trip: %+v", got.Conditions)
	}
	if len(got.Medications) != 1 || got.Medications[0] != b.Medications[0] {
		t.Errorf("medications round trip: %+v", got.Medications)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Parse([]byte(`{"conditions":[]}`)); err == nil {
		t.Error("bundle without patient id accepted")
	}
}

func TestHasHelpers(t *testing.T) {
	b := &Bundle{
		Conditions:  []Condition{{Code: "A"}},
		Medications: []MedicationRequest{{Class: "X"}},
	}
	if !b.HasCondition("A") || b.HasCondition("B") {
		t.Error("HasCondition wrong")
	}
	if !b.HasMedicationClass("X") || b.HasMedicationClass("Y") {
		t.Error("HasMedicationClass wrong")
	}
}

func TestGenerateDeterministicAndParseable(t *testing.T) {
	a := Generate(Config{Patients: 400, Seed: 5})
	b := Generate(Config{Patients: 400, Seed: 5})
	if len(a.Bundles) != 400 {
		t.Fatalf("generated %d bundles", len(a.Bundles))
	}
	htn := 0
	for i := range a.Bundles {
		ra, _ := a.Bundles[i].Marshal()
		rb, _ := b.Bundles[i].Marshal()
		if string(ra) != string(rb) {
			t.Fatalf("bundle %d not deterministic", i)
		}
		if _, err := Parse(ra); err != nil {
			t.Fatalf("generated bundle does not parse: %v", err)
		}
		if a.Bundles[i].HasCondition(CondHypertension) {
			htn++
		}
	}
	if htn < 50 || htn > 130 {
		t.Errorf("hypertension prevalence %d/400, want ~88", htn)
	}
	if got := Generate(Config{Seed: 1}); len(got.Bundles) != 1000 {
		t.Errorf("default corpus size = %d", len(got.Bundles))
	}
}

func TestLoadAndIndex(t *testing.T) {
	ctx := context.Background()
	corpus := Generate(Config{Patients: 300, Seed: 9})
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	if err := Load(ctx, c, corpus, 0); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Len(FileBundles); n != 300 {
		t.Errorf("bundles file has %d records", n)
	}
	wantIdx := 0
	for _, b := range corpus.Bundles {
		seen := map[string]bool{}
		for _, cond := range b.Conditions {
			if !seen[cond.Code] {
				seen[cond.Code] = true
				wantIdx++
			}
		}
	}
	if n, _ := c.Len(IdxCondition); n != wantIdx {
		t.Errorf("condition index has %d entries, want %d", n, wantIdx)
	}
}

func TestCohortQueriesMatchOracle(t *testing.T) {
	ctx := context.Background()
	corpus := Generate(Config{Patients: 900, Seed: 13})
	c := dfs.NewCluster(dfs.Config{Nodes: 3})
	if err := Load(ctx, c, corpus, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ cond, class string }{
		{CondHypertension, ClassAntihyper},
		{CondDiabetes, ClassGLP1},
		{CondAsthma, ClassInhalant},
		{CondHypertension, ClassGLP1}, // cross pair: mostly background noise
	}
	for _, tc := range cases {
		res, err := RunCohortQuery(ctx, c, tc.cond, tc.class, core.Options{Threads: 32})
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.cond, tc.class, err)
		}
		if want := corpus.Oracle(tc.cond, tc.class); res.Patients != want {
			t.Errorf("%s/%s: got %d patients, oracle %d", tc.cond, tc.class, res.Patients, want)
		}
		if res.RecordAccesses == 0 && res.Patients > 0 {
			t.Errorf("%s/%s: accesses not counted", tc.cond, tc.class)
		}
	}
}

func TestQueryUnknownConditionIsEmpty(t *testing.T) {
	ctx := context.Background()
	corpus := Generate(Config{Patients: 50, Seed: 1})
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	if err := Load(ctx, c, corpus, 0); err != nil {
		t.Fatal(err)
	}
	res, err := RunCohortQuery(ctx, c, "00000000", ClassOther, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patients != 0 {
		t.Errorf("unknown condition matched %d patients", res.Patients)
	}
}

func TestStoredBundlesAreNestedJSON(t *testing.T) {
	// The stored payload really is the nested-document format the paper
	// points at — one record holding all resources of the patient.
	corpus := Generate(Config{Patients: 10, Seed: 2})
	raw, err := corpus.Bundles[0].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.Contains(s, `"patient"`) || !strings.Contains(s, `"conditions"`) {
		t.Errorf("stored bundle lacks nested resources: %s", s)
	}
}
