package fhir

import (
	"context"
	"sync"
	"time"

	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// Result reports one cohort query.
type Result struct {
	// Patients is the number of qualifying patients.
	Patients int64
	// RecordAccesses counts records touched during execution.
	RecordAccesses int64
	// Elapsed is wall-clock execution time.
	Elapsed time.Duration
}

// RunCohortQuery answers "how many patients have condition condCode and a
// prescription of class medClass" the LakeHarbor way: probe the post hoc
// condition index, dereference each whole bundle once, and evaluate the
// medication predicate with schema-on-read inside the JSON — structurally
// identical to the claims queries, over a different nested format.
func RunCohortQuery(ctx context.Context, cluster *dfs.Cluster, condCode, medClass string, opts core.Options) (*Result, error) {
	medFilter := func(rec lake.Record) (bool, error) {
		b, err := Parse(rec.Data)
		if err != nil {
			return false, err
		}
		return b.HasMedicationClass(medClass), nil
	}
	k := ConditionKey(condCode)
	job, err := core.NewJob("fhir-cohort",
		[]lake.Pointer{{File: IdxCondition, PartKey: k, Key: k}},
		core.LookupDeref{File: IdxCondition},
		core.EntryRef{Target: FileBundles},
		core.LookupDeref{File: FileBundles, Filter: medFilter},
	)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	count := int64(0)
	opts.Each = func(_ int, rec lake.Record) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	}
	before := cluster.TotalMetrics()
	res, err := core.Execute(ctx, job, cluster, cluster, opts)
	if err != nil {
		return nil, err
	}
	diff := cluster.TotalMetrics().Sub(before)
	return &Result{
		Patients:       count,
		RecordAccesses: diff.RecordAccesses(),
		Elapsed:        res.Elapsed,
	}, nil
}
