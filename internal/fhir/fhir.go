// Package fhir exercises the paper's closing claim of §IV: the
// international FHIR standard for electronic medical records "has a
// similar design to the Japanese insurance claims format, employing the
// nested record organization", and ReDe should manage and process it
// flexibly and efficiently too.
//
// The package stores FHIR-like *bundles* — one JSON document per patient
// holding nested Patient, Condition, MedicationRequest, and Observation
// resources — as raw records in the lake, registers a post hoc access
// method that indexes each bundle under its condition codes
// (schema-on-read over JSON this time, not delimited text), and answers
// the same kind of cohort question as the claims case study without any
// normalization or joins.
package fhir

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// Catalog names.
const (
	FileBundles  = "fhir_bundles"
	IdxCondition = "fhir_condition_idx"
)

// Clinical codes used by the generator and queries (SNOMED-CT condition
// codes and ATC medication classes, as FHIR deployments typically use).
const (
	CondHypertension = "38341003" // essential hypertension
	CondDiabetes     = "44054006" // type 2 diabetes
	CondAsthma       = "195967001"
	ClassAntihyper   = "C02" // ATC: antihypertensives
	ClassGLP1        = "A10B"
	ClassInhalant    = "R03"
	ClassOther       = "V07" // ATC: all other non-therapeutic
)

// Patient is the demographic resource of a bundle.
type Patient struct {
	ID        int64  `json:"id"`
	BirthYear int    `json:"birthYear"`
	Gender    string `json:"gender"`
}

// Condition is one diagnosed condition resource.
type Condition struct {
	Code   string `json:"code"`
	System string `json:"system"`
	Onset  string `json:"onsetDateTime,omitempty"`
}

// MedicationRequest is one prescription resource.
type MedicationRequest struct {
	Code  string `json:"medicationCode"`
	Class string `json:"class"`
	Dose  int    `json:"dose"`
}

// Observation is one measurement resource.
type Observation struct {
	Code  string  `json:"code"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Bundle is the per-patient nested document stored raw in the lake.
type Bundle struct {
	Patient      Patient             `json:"patient"`
	Conditions   []Condition         `json:"conditions"`
	Medications  []MedicationRequest `json:"medicationRequests"`
	Observations []Observation       `json:"observations,omitempty"`
}

// Marshal renders the bundle as its stored JSON payload.
func (b *Bundle) Marshal() ([]byte, error) { return json.Marshal(b) }

// Parse interprets a raw bundle with schema-on-read.
func Parse(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("fhir: bad bundle: %w", err)
	}
	if b.Patient.ID == 0 {
		return nil, fmt.Errorf("fhir: bundle without patient id")
	}
	return &b, nil
}

// HasCondition reports whether the bundle diagnoses the code.
func (b *Bundle) HasCondition(code string) bool {
	for _, c := range b.Conditions {
		if c.Code == code {
			return true
		}
	}
	return false
}

// HasMedicationClass reports whether any prescription is of the class.
func (b *Bundle) HasMedicationClass(class string) bool {
	for _, m := range b.Medications {
		if m.Class == class {
			return true
		}
	}
	return false
}

// Config parameterizes the generator.
type Config struct {
	// Patients is the number of bundles.
	Patients int
	// Seed makes generation deterministic.
	Seed int64
}

// Corpus is the generated set of bundles.
type Corpus struct {
	Bundles []*Bundle
}

// condition prevalences and correlated treatment rates, mirroring the
// claims generator so the two case studies are comparable.
var fhirConditions = []struct {
	code      string
	class     string
	prev      float64
	treatRate float64
}{
	{CondHypertension, ClassAntihyper, 0.22, 0.65},
	{CondDiabetes, ClassGLP1, 0.11, 0.30},
	{CondAsthma, ClassInhalant, 0.08, 0.70},
}

// Generate produces a deterministic corpus.
func Generate(cfg Config) *Corpus {
	if cfg.Patients <= 0 {
		cfg.Patients = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	co := &Corpus{}
	for i := 0; i < cfg.Patients; i++ {
		gender := "female"
		if rng.Intn(2) == 0 {
			gender = "male"
		}
		b := &Bundle{Patient: Patient{
			ID:        int64(i + 1),
			BirthYear: 1930 + rng.Intn(90),
			Gender:    gender,
		}}
		for _, c := range fhirConditions {
			if rng.Float64() >= c.prev {
				continue
			}
			b.Conditions = append(b.Conditions, Condition{
				Code: c.code, System: "http://snomed.info/sct",
				Onset: fmt.Sprintf("20%02d-0%d-01", rng.Intn(24), 1+rng.Intn(9)),
			})
			if rng.Float64() < c.treatRate {
				b.Medications = append(b.Medications, MedicationRequest{
					Code: fmt.Sprintf("rx-%s-%02d", c.class, rng.Intn(20)), Class: c.class,
					Dose: 1 + rng.Intn(3),
				})
			}
		}
		for n := rng.Intn(3); n > 0; n-- {
			b.Medications = append(b.Medications, MedicationRequest{
				Code: fmt.Sprintf("rx-oth-%03d", rng.Intn(300)), Class: ClassOther,
				Dose: 1 + rng.Intn(3),
			})
		}
		for n := rng.Intn(4); n > 0; n-- {
			b.Observations = append(b.Observations, Observation{
				Code: fmt.Sprintf("obs-%02d", rng.Intn(40)), Value: rng.Float64() * 200, Unit: "mg/dL",
			})
		}
		co.Bundles = append(co.Bundles, b)
	}
	return co
}

// Oracle counts the patients with the condition code who are prescribed
// the medication class.
func (co *Corpus) Oracle(condCode, medClass string) int64 {
	var n int64
	for _, b := range co.Bundles {
		if b.HasCondition(condCode) && b.HasMedicationClass(medClass) {
			n++
		}
	}
	return n
}

// PatientKey encodes a patient id as the bundle's record key.
func PatientKey(id int64) lake.Key { return keycodec.Int64(id) }

// ConditionKey encodes a condition code as an index key.
func ConditionKey(code string) lake.Key { return keycodec.String(code) }

// Load stores the corpus raw (one JSON bundle per record, partitioned by
// patient id) and builds the post hoc condition index through the lazy
// structure builder.
func Load(ctx context.Context, cluster *dfs.Cluster, corpus *Corpus, partitions int) error {
	if partitions <= 0 {
		partitions = 2 * cluster.NumNodes()
	}
	f, err := cluster.CreateFile(FileBundles, dfs.Btree, partitions, lake.HashPartitioner{})
	if err != nil {
		return err
	}
	for _, b := range corpus.Bundles {
		raw, err := b.Marshal()
		if err != nil {
			return err
		}
		k := PatientKey(b.Patient.ID)
		if err := dfs.AppendRouted(ctx, f, k, lake.Record{Key: k, Data: raw}); err != nil {
			return err
		}
	}
	_, err = indexer.Build(ctx, cluster, ConditionIndexSpec())
	return err
}

// ConditionIndexSpec is the registered access method: schema-on-read over
// JSON extracting each bundle's distinct condition codes as index keys.
func ConditionIndexSpec() indexer.Spec {
	return indexer.Spec{
		Name: IdxCondition,
		Base: FileBundles,
		Kind: indexer.Global,
		PartKey: func(rec lake.Record) (lake.Key, error) {
			return rec.Key, nil
		},
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			b, err := Parse(rec.Data)
			if err != nil {
				return nil, err
			}
			seen := map[string]bool{}
			var keys []lake.Key
			for _, c := range b.Conditions {
				if seen[c.Code] {
					continue
				}
				seen[c.Code] = true
				keys = append(keys, ConditionKey(c.Code))
			}
			return keys, nil
		},
	}
}
