package lake

import "errors"

// Permanent-error classification.
//
// The executor retries failed Dereferencer invocations (transient storage
// faults heal on re-execution), but some failures can never heal: a file
// that is not in the catalog, a partition index out of range, a pointer at a
// file of the wrong kind. Error constructors in the storage layers mark
// those with AsPermanent, and the executor consults IsPermanent (re-exported
// as core.Permanent) to fail fast instead of burning MaxRetries × backoff on
// an error that will repeat forever.

// permanentError marks a wrapped error as not retryable. It satisfies
// errors.Is/As chains through Unwrap.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks the error as non-retryable; IsPermanent detects it
// anywhere in a wrap chain.
func (e *permanentError) Permanent() bool { return true }

// AsPermanent marks err as permanent: retrying the failed operation cannot
// succeed. A nil err stays nil.
func AsPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err is a permanent failure: a catalog miss, a
// bad partition index, or any error marked with AsPermanent anywhere in its
// wrap chain.
func IsPermanent(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNoSuchFile) || errors.Is(err, ErrNoSuchPartition) {
		return true
	}
	var p interface{ Permanent() bool }
	return errors.As(err, &p) && p.Permanent()
}
