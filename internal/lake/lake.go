// Package lake defines ReDe's I/O abstraction: the Record, Pointer, and File
// interfaces that separate the query engine from concrete storage, exactly as
// described in the LakeHarbor paper (§III-B).
//
// A Record is a unit of raw data; its payload is uninterpreted bytes so that
// schemas are applied on read (schema-on-read) by user-supplied interpreters.
// A Pointer locates a Record: it names a File, carries a partition key that a
// Partitioner maps to a partition, and an in-partition key (optionally a key
// range for B-tree files). A File is a distributed collection of Records; a
// BtreeFile can additionally locate all Records within a key range.
package lake

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Key is an order-preserving encoded key (see internal/keycodec). Keys
// compare byte-wise; an empty key is valid and sorts first.
type Key = string

// Record is the unit of data ReDe reads and writes. Data is raw bytes whose
// schema is interpreted on read.
type Record struct {
	Key  Key    // in-partition key the record is stored under
	Data []byte // raw payload (schema-on-read)
}

// Clone returns a deep copy of the record, so callers may retain it beyond
// the lifetime of the buffer it was read from.
func (r Record) Clone() Record {
	d := make([]byte, len(r.Data))
	copy(d, r.Data)
	return Record{Key: r.Key, Data: d}
}

// Pointer locates a Record (or a range of Records) in a distributed File.
//
// Partition routing follows the paper: the File's Partitioner maps PartKey to
// a partition. A Pointer without partition information (HasPart reports
// false) is *broadcast*: the executor replicates it to every partition. That
// is how broadcast joins are expressed in Reference-Dereference.
type Pointer struct {
	File    string // name of the target File in the catalog
	PartKey Key    // partition key, fed to the File's Partitioner
	NoPart  bool   // true = no partition info: broadcast to all partitions
	Key     Key    // in-partition key, or start of a range
	EndKey  Key    // inclusive end of a range; empty means point lookup
	// Carry is optional context attached by a Referencer for multi-way
	// joins: a segment list (see EncodeSegments) holding the partial join
	// result. A Dereferencer configured to combine appends each fetched
	// record to it.
	Carry []byte
}

// IsRange reports whether the pointer addresses a key range rather than a
// single key.
func (p Pointer) IsRange() bool { return p.EndKey != "" }

// String renders the pointer for logs and errors.
func (p Pointer) String() string {
	part := fmt.Sprintf("part=%q", p.PartKey)
	if p.NoPart {
		part = "broadcast"
	}
	if p.IsRange() {
		return fmt.Sprintf("Pointer{%s %s key=[%q,%q]}", p.File, part, p.Key, p.EndKey)
	}
	return fmt.Sprintf("Pointer{%s %s key=%q}", p.File, part, p.Key)
}

// Errors returned by File implementations.
var (
	// ErrNoSuchFile reports a catalog miss.
	ErrNoSuchFile = errors.New("lake: no such file")
	// ErrNoSuchPartition reports a partition index out of range.
	ErrNoSuchPartition = errors.New("lake: no such partition")
)

// File is a distributed set of Records. A File is split into partitions; a
// Record is located by mapping a Pointer's partition key through the File's
// Partitioner and then looking up the in-partition key.
//
// Lookup returns every record stored under key in the given partition
// (files may hold duplicate keys, e.g. secondary indexes). A miss returns an
// empty slice and a nil error. Implementations must be safe for concurrent
// use: SMPE issues thousands of lookups in parallel.
type File interface {
	// Name returns the catalog name of the file.
	Name() string
	// NumPartitions returns the number of partitions the file is split into.
	NumPartitions() int
	// Partitioner returns the partitioner that routes partition keys.
	Partitioner() Partitioner
	// Lookup returns all records stored under key in partition.
	Lookup(ctx context.Context, partition int, key Key) ([]Record, error)
	// Scan calls fn for every record in partition, in storage order.
	// If fn returns an error the scan stops and returns it.
	Scan(ctx context.Context, partition int, fn func(Record) error) error
	// Append adds records to partition. It is used by loaders and by the
	// background structure builder, not by queries.
	Append(ctx context.Context, partition int, recs ...Record) error
}

// BtreeFile is a File whose partitions are ordered by key, so it can also
// locate the set of Records between two Pointers (an inclusive key range).
type BtreeFile interface {
	File
	// LookupRange returns all records with lo <= key <= hi in partition,
	// in ascending key order.
	LookupRange(ctx context.Context, partition int, lo, hi Key) ([]Record, error)
}

// BatchFile is a File that can serve many point lookups in one call. The
// executor's batched dereference path uses it to amortize per-lookup
// overheads — queue admission, gate admission, tree descent, network round
// trips — across a whole pointer batch.
type BatchFile interface {
	File
	// LookupBatch returns, for each keys[i], the records stored under that
	// key in partition, aligned with keys (a miss yields a nil slice at
	// that position). Implementations may reorder work internally but must
	// keep the output aligned.
	LookupBatch(ctx context.Context, partition int, keys []Key) ([][]Record, error)
}

// LookupBatch serves a batch of point lookups against f, using the file's
// native batch path when it implements BatchFile and falling back to one
// Lookup per key otherwise. Callers therefore batch unconditionally; files
// opt in to the amortization.
func LookupBatch(ctx context.Context, f File, partition int, keys []Key) ([][]Record, error) {
	if bf, ok := f.(BatchFile); ok {
		return bf.LookupBatch(ctx, partition, keys)
	}
	return LookupBatchFallback(ctx, f, partition, keys)
}

// LookupBatchFallback serves a batch against any File by issuing one Lookup
// per key. It keeps non-batch files working behind the batched executor
// path, at the cost of per-key admission.
func LookupBatchFallback(ctx context.Context, f File, partition int, keys []Key) ([][]Record, error) {
	out := make([][]Record, len(keys))
	for i, k := range keys {
		recs, err := f.Lookup(ctx, partition, k)
		if err != nil {
			return nil, err
		}
		out[i] = recs
	}
	return out, nil
}

// SizedFile is a File that can report its modeled storage footprint. The
// structure lifecycle manager charges resident structures against a memory
// budget with it; files that cannot report a size are treated as free.
type SizedFile interface {
	File
	// SizeBytes returns the file's total modeled size in bytes.
	SizeBytes() int64
}

// SizeBytes returns f's modeled size when it implements SizedFile, and 0
// otherwise.
func SizeBytes(f File) int64 {
	if sf, ok := f.(SizedFile); ok {
		return sf.SizeBytes()
	}
	return 0
}

// BarrierScanner is a File whose Scan can run a barrier callback at the
// exact point where the scan's snapshot is pinned: everything appended (and
// notified to append listeners) before the barrier runs is visible to the
// scan, everything after is not. Online structure builds use the barrier to
// hand responsibility for concurrent appends from the build scan to the
// maintainer without dropping or duplicating records.
type BarrierScanner interface {
	File
	// ScanWithBarrier is Scan with barrier invoked after the scan's
	// snapshot is pinned and before the first record is delivered.
	ScanWithBarrier(ctx context.Context, partition int, barrier func(), fn func(Record) error) error
}

// ScanWithBarrier scans a partition of f, invoking barrier at the snapshot
// point when f supports it. Files without barrier support run the barrier
// immediately before a plain Scan — correct only when no appends race the
// scan, which is why the builder's exactly-once guarantee is documented as
// requiring a BarrierScanner.
func ScanWithBarrier(ctx context.Context, f File, partition int, barrier func(), fn func(Record) error) error {
	if bs, ok := f.(BarrierScanner); ok {
		return bs.ScanWithBarrier(ctx, partition, barrier, fn)
	}
	if barrier != nil {
		barrier()
	}
	return f.Scan(ctx, partition, fn)
}

// Partitioner maps a partition key to a partition index in [0, n).
type Partitioner interface {
	// Partition returns the partition index for key given n partitions.
	Partition(key Key, n int) int
	// Name identifies the partitioner ("hash", "range", ...) for catalogs
	// and debug output.
	Name() string
}

// HashPartitioner routes keys by FNV-1a hash. The zero value is ready to use.
type HashPartitioner struct{}

// Partition implements Partitioner.
func (HashPartitioner) Partition(key Key, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

// RangePartitioner routes keys by ordered split points: partition i holds
// keys in [Bounds[i-1], Bounds[i]), with the first partition open below and
// the last open above. Bounds must be sorted ascending; there are
// len(Bounds)+1 partitions.
type RangePartitioner struct {
	Bounds []Key
}

// NewRangePartitioner returns a RangePartitioner over the given split
// points, sorting them if necessary.
func NewRangePartitioner(bounds ...Key) RangePartitioner {
	b := make([]Key, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return RangePartitioner{Bounds: b}
}

// Partition implements Partitioner. n is clamped to the partitioner's own
// partition count (len(Bounds)+1) so misconfigured files still route inside
// range.
func (r RangePartitioner) Partition(key Key, n int) int {
	i := sort.Search(len(r.Bounds), func(i int) bool { return key < r.Bounds[i] })
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Name implements Partitioner.
func (r RangePartitioner) Name() string { return "range" }

// PartitionsOverlapping returns the partition indices whose key range
// intersects [lo, hi] given n partitions. It lets a range dereference touch
// only the partitions that can hold matches when the file is
// range-partitioned by the lookup key. A degenerate range (lo > hi) can
// hold no matches and returns nil rather than silently swapping the bounds
// into a range the caller never asked for.
func (r RangePartitioner) PartitionsOverlapping(lo, hi Key, n int) []int {
	if lo > hi {
		return nil
	}
	first := r.Partition(lo, n)
	last := r.Partition(hi, n)
	out := make([]int, 0, last-first+1)
	for i := first; i <= last && i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Catalog is a name → File registry. Implementations must be safe for
// concurrent readers.
type Catalog interface {
	// File returns the named file, or ErrNoSuchFile.
	File(name string) (File, error)
}

// ResolvePartition routes ptr to a partition of f, honoring the broadcast
// convention: it returns (0, true) when the pointer has no partition
// information, meaning "all partitions".
func ResolvePartition(f File, ptr Pointer) (partition int, broadcast bool) {
	if ptr.NoPart {
		return 0, true
	}
	return f.Partitioner().Partition(ptr.PartKey, f.NumPartitions()), false
}
