package lake

import (
	"fmt"
	"strings"

	"lakeharbor/internal/keycodec"
)

// Composite records.
//
// A multi-way join needs the partial join result to flow through the
// Reference-Dereference chain: a Referencer can attach the current record as
// *carried context* on the pointers it emits, and the next Dereferencer can
// combine that context with each record it fetches. The combined payload is
// a *segment list* — a concatenation of self-delimiting segments, one per
// base record joined so far — which downstream Interpreters split again for
// schema-on-read.
//
// Segments reuse keycodec's escaped string encoding, so arbitrary payload
// bytes are safe.

// EncodeSegments packs payloads into one segment-list payload.
func EncodeSegments(segs ...[]byte) []byte {
	var out []byte
	for _, s := range segs {
		out = append(out, keycodec.String(string(s))...)
	}
	return out
}

// AppendSegment appends one more payload to an existing segment list.
func AppendSegment(list []byte, seg []byte) []byte {
	return append(append([]byte{}, list...), keycodec.String(string(seg))...)
}

// DecodeSegments splits a segment-list payload into its payloads.
func DecodeSegments(data []byte) ([][]byte, error) {
	var out [][]byte
	s := string(data)
	for len(s) > 0 {
		seg, n, err := keycodec.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("lake: bad segment list: %w", err)
		}
		out = append(out, []byte(seg))
		s = s[n:]
	}
	return out, nil
}

// PrefixRange returns the inclusive key range [lo, hi] covering every key
// that begins with prefix. Because B-tree ranges here are inclusive on both
// ends, hi cannot be the prefix successor — a bare key can equal it (e.g.
// the 8-byte encoding of n+1 is exactly the successor of n's). Instead hi
// pads the prefix with 64 0xFF bytes: every key prefix+suffix with
// len(suffix) <= 64 sorts at or below it, and longer suffixes would need 64
// consecutive 0xFF bytes to escape, which no keycodec encoding produces.
func PrefixRange(prefix Key) (lo, hi Key) {
	return prefix, prefix + strings.Repeat("\xff", 64)
}
