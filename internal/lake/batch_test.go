package lake

import (
	"context"
	"errors"
	"testing"

	"lakeharbor/internal/keycodec"
)

func TestPartitionsOverlappingDegenerate(t *testing.T) {
	rp := NewRangePartitioner(keycodec.Int64(10), keycodec.Int64(20))
	// An inverted range selects nothing; the old behaviour silently
	// swapped the bounds and returned partitions.
	if got := rp.PartitionsOverlapping(keycodec.Int64(15), keycodec.Int64(5), 3); len(got) != 0 {
		t.Errorf("inverted range overlapped %v, want none", got)
	}
	// The proper orientation still works.
	if got := rp.PartitionsOverlapping(keycodec.Int64(5), keycodec.Int64(15), 3); len(got) != 2 {
		t.Errorf("valid range overlapped %v, want 2 partitions", got)
	}
}

// stubFile is a minimal File (not a BatchFile) for fallback tests.
type stubFile struct {
	lookups int
	fail    Key
}

func (s *stubFile) Name() string             { return "stub" }
func (s *stubFile) NumPartitions() int       { return 1 }
func (s *stubFile) Partitioner() Partitioner { return HashPartitioner{} }
func (s *stubFile) Lookup(_ context.Context, _ int, key Key) ([]Record, error) {
	s.lookups++
	if key == s.fail {
		return nil, errors.New("boom")
	}
	if key == "miss" {
		return nil, nil
	}
	return []Record{{Key: key, Data: []byte("v-" + string(key))}}, nil
}
func (s *stubFile) Scan(context.Context, int, func(Record) error) error { return nil }
func (s *stubFile) Append(context.Context, int, ...Record) error        { return nil }

func TestLookupBatchFallback(t *testing.T) {
	s := &stubFile{}
	keys := []Key{"a", "miss", "b"}
	// LookupBatch on a non-BatchFile must degrade to per-key Lookups with
	// aligned results.
	out, err := LookupBatch(context.Background(), s, 0, keys)
	if err != nil {
		t.Fatal(err)
	}
	if s.lookups != len(keys) {
		t.Errorf("fallback issued %d lookups, want %d", s.lookups, len(keys))
	}
	if len(out) != len(keys) {
		t.Fatalf("fallback returned %d groups", len(out))
	}
	if len(out[0]) != 1 || string(out[0][0].Data) != "v-a" {
		t.Errorf("out[0] = %v", out[0])
	}
	if out[1] != nil {
		t.Errorf("miss group = %v, want nil", out[1])
	}

	s2 := &stubFile{fail: "b"}
	if _, err := LookupBatch(context.Background(), s2, 0, []Key{"a", "b", "c"}); err == nil {
		t.Fatal("fallback swallowed the per-key error")
	}
}
