package lake

import (
	"fmt"

	"lakeharbor/internal/keycodec"
)

// An index entry is the payload stored in index files: it tells a Referencer
// how to build a Pointer to the indexed record. It carries the target
// record's partition key (which may differ from its primary key — that is
// what makes an index "global") and the target's in-partition key.
//
// The encoding reuses keycodec's self-delimiting string encoding so the two
// fields can be concatenated unambiguously.

// EncodeIndexEntry packs (partition key, primary key) into an index record
// payload.
func EncodeIndexEntry(partKey, primaryKey Key) []byte {
	return []byte(keycodec.Tuple(keycodec.String(partKey), keycodec.String(primaryKey)))
}

// DecodeIndexEntry unpacks a payload written by EncodeIndexEntry.
func DecodeIndexEntry(data []byte) (partKey, primaryKey Key, err error) {
	s := string(data)
	pk, n, err := keycodec.DecodeString(s)
	if err != nil {
		return "", "", fmt.Errorf("lake: bad index entry: %w", err)
	}
	rk, m, err := keycodec.DecodeString(s[n:])
	if err != nil {
		return "", "", fmt.Errorf("lake: bad index entry: %w", err)
	}
	if n+m != len(s) {
		return "", "", fmt.Errorf("lake: index entry has %d trailing bytes", len(s)-n-m)
	}
	return pk, rk, nil
}
