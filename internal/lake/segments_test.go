package lake

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"lakeharbor/internal/keycodec"
)

func TestSegmentsRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("one")},
		{[]byte("a"), []byte("b"), []byte("c")},
		{nil, []byte(""), []byte("x")},
		{[]byte{0x00, 0x01, 0xFF}, []byte("plain")},
	}
	for _, segs := range cases {
		enc := EncodeSegments(segs...)
		got, err := DecodeSegments(enc)
		if err != nil {
			t.Fatalf("DecodeSegments: %v", err)
		}
		if len(got) != len(segs) {
			t.Fatalf("got %d segments, want %d", len(got), len(segs))
		}
		for i := range segs {
			if !bytes.Equal(got[i], segs[i]) {
				t.Fatalf("segment %d: %q != %q", i, got[i], segs[i])
			}
		}
	}
}

func TestSegmentsRoundTripQuick(t *testing.T) {
	f := func(a, b, c []byte) bool {
		enc := EncodeSegments(a, b, c)
		got, err := DecodeSegments(enc)
		if err != nil || len(got) != 3 {
			return false
		}
		return bytes.Equal(got[0], a) && bytes.Equal(got[1], b) && bytes.Equal(got[2], c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendSegment(t *testing.T) {
	list := EncodeSegments([]byte("first"))
	list2 := AppendSegment(list, []byte("second"))
	// AppendSegment must not mutate its input.
	got1, err := DecodeSegments(list)
	if err != nil || len(got1) != 1 {
		t.Fatalf("original list mutated: %v %v", got1, err)
	}
	got2, err := DecodeSegments(list2)
	if err != nil || len(got2) != 2 || string(got2[1]) != "second" {
		t.Fatalf("appended list wrong: %v %v", got2, err)
	}
	// Appending to an empty list yields a one-segment list.
	single, err := DecodeSegments(AppendSegment(nil, []byte("only")))
	if err != nil || len(single) != 1 || string(single[0]) != "only" {
		t.Fatalf("append to nil: %v %v", single, err)
	}
}

func TestDecodeSegmentsErrors(t *testing.T) {
	if _, err := DecodeSegments([]byte("unterminated")); err == nil {
		t.Error("unterminated segment accepted")
	}
	if _, err := DecodeSegments([]byte{0x00, 0x02}); err == nil {
		t.Error("bad escape accepted")
	}
}

func TestPrefixRangeCoversExactlyPrefix(t *testing.T) {
	prefix := keycodec.Int64(42)
	lo, hi := PrefixRange(prefix)
	inside := []Key{
		prefix,
		keycodec.Tuple(prefix, keycodec.Int64(0)),
		keycodec.Tuple(prefix, keycodec.Int64(1<<40)),
		prefix + "\xff\xff",
	}
	outside := []Key{
		keycodec.Int64(41),
		keycodec.Int64(43),
		keycodec.Tuple(keycodec.Int64(43), keycodec.Int64(0)),
	}
	for _, k := range inside {
		if k < lo || k > hi {
			t.Errorf("key %x escaped prefix range", k)
		}
	}
	for _, k := range outside {
		if k >= lo && k <= hi {
			t.Errorf("foreign key %x inside prefix range", k)
		}
	}
}

func TestPrefixRangeQuick(t *testing.T) {
	f := func(p int64, suffix string) bool {
		prefix := keycodec.Int64(p)
		lo, hi := PrefixRange(prefix)
		k := prefix + keycodec.String(suffix)
		return k >= lo && k <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixRangeAllFF(t *testing.T) {
	prefix := strings.Repeat("\xff", 4)
	lo, hi := PrefixRange(prefix)
	k := prefix + "suffix"
	if k < lo || k > hi {
		t.Error("all-0xFF prefix range does not cover its keys")
	}
}

func TestIndexEntryRoundTrip(t *testing.T) {
	part, pk := keycodec.Int64(7), keycodec.Tuple(keycodec.Int64(7), keycodec.Int64(3))
	gotPart, gotPK, err := DecodeIndexEntry(EncodeIndexEntry(part, pk))
	if err != nil {
		t.Fatal(err)
	}
	if gotPart != part || gotPK != pk {
		t.Error("index entry round trip mismatch")
	}
}

func TestIndexEntryRoundTripQuick(t *testing.T) {
	f := func(part, pk string) bool {
		p, k, err := DecodeIndexEntry(EncodeIndexEntry(part, pk))
		return err == nil && p == part && k == pk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeIndexEntryErrors(t *testing.T) {
	if _, _, err := DecodeIndexEntry([]byte("garbage")); err == nil {
		t.Error("garbage index entry accepted")
	}
	// Trailing bytes after the two fields are an error.
	bad := append(EncodeIndexEntry("a", "b"), 'x', 0x00, 0x01)
	if _, _, err := DecodeIndexEntry(bad); err == nil {
		t.Error("index entry with trailing bytes accepted")
	}
	if _, _, err := DecodeIndexEntry(nil); err == nil {
		t.Error("empty index entry accepted")
	}
}
