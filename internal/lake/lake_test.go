package lake

import (
	"testing"
	"testing/quick"

	"lakeharbor/internal/keycodec"
)

func TestHashPartitionerInRange(t *testing.T) {
	p := HashPartitioner{}
	if err := quick.Check(func(key string, n uint8) bool {
		parts := int(n%64) + 1
		got := p.Partition(key, parts)
		return got >= 0 && got < parts
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHashPartitionerDeterministic(t *testing.T) {
	p := HashPartitioner{}
	for _, k := range []string{"", "a", "orderkey-12345"} {
		if p.Partition(k, 16) != p.Partition(k, 16) {
			t.Errorf("non-deterministic partition for %q", k)
		}
	}
}

func TestHashPartitionerSpreads(t *testing.T) {
	p := HashPartitioner{}
	const parts = 8
	counts := make([]int, parts)
	for i := int64(0); i < 4000; i++ {
		counts[p.Partition(keycodec.Int64(i), parts)]++
	}
	for i, c := range counts {
		if c < 200 { // expected 500 per partition; gross skew indicates a bug
			t.Errorf("partition %d badly underfilled: %d records", i, c)
		}
	}
}

func TestHashPartitionerSinglePartition(t *testing.T) {
	p := HashPartitioner{}
	if got := p.Partition("anything", 1); got != 0 {
		t.Errorf("Partition(n=1) = %d, want 0", got)
	}
	if got := p.Partition("anything", 0); got != 0 {
		t.Errorf("Partition(n=0) = %d, want 0", got)
	}
}

func TestRangePartitioner(t *testing.T) {
	// Bounds at 10 and 20: partitions are (-inf,10), [10,20), [20,inf).
	rp := NewRangePartitioner(keycodec.Int64(10), keycodec.Int64(20))
	cases := []struct {
		v    int64
		want int
	}{{-5, 0}, {0, 0}, {9, 0}, {10, 1}, {15, 1}, {19, 1}, {20, 2}, {100, 2}}
	for _, c := range cases {
		if got := rp.Partition(keycodec.Int64(c.v), 3); got != c.want {
			t.Errorf("Partition(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestRangePartitionerSortsBounds(t *testing.T) {
	rp := NewRangePartitioner(keycodec.Int64(20), keycodec.Int64(10))
	if rp.Partition(keycodec.Int64(15), 3) != 1 {
		t.Error("bounds were not sorted")
	}
}

func TestRangePartitionerMonotone(t *testing.T) {
	rp := NewRangePartitioner(keycodec.Int64(0), keycodec.Int64(100), keycodec.Int64(1000))
	if err := quick.Check(func(a, b int64) bool {
		if a > b {
			a, b = b, a
		}
		return rp.Partition(keycodec.Int64(a), 4) <= rp.Partition(keycodec.Int64(b), 4)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRangePartitionerOverlapping(t *testing.T) {
	rp := NewRangePartitioner(keycodec.Int64(10), keycodec.Int64(20))
	got := rp.PartitionsOverlapping(keycodec.Int64(5), keycodec.Int64(15), 3)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("PartitionsOverlapping = %v, want [0 1]", got)
	}
	got = rp.PartitionsOverlapping(keycodec.Int64(12), keycodec.Int64(12), 3)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("point overlap = %v, want [1]", got)
	}
}

func TestPointerString(t *testing.T) {
	p := Pointer{File: "part", PartKey: "k", Key: "k"}
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
	b := Pointer{File: "part", NoPart: true, Key: "a", EndKey: "b"}
	if !b.IsRange() {
		t.Error("EndKey set but IsRange is false")
	}
	if s := b.String(); s == "" {
		t.Error("empty String() for broadcast range")
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{Key: "k", Data: []byte("payload")}
	c := r.Clone()
	c.Data[0] = 'X'
	if r.Data[0] != 'p' {
		t.Error("Clone shares the data buffer")
	}
}

type fixedPartFile struct {
	File
	n int
	p Partitioner
}

func (f fixedPartFile) NumPartitions() int       { return f.n }
func (f fixedPartFile) Partitioner() Partitioner { return f.p }

func TestResolvePartition(t *testing.T) {
	f := fixedPartFile{n: 4, p: HashPartitioner{}}
	part, bc := ResolvePartition(f, Pointer{PartKey: "k"})
	if bc {
		t.Error("unexpected broadcast")
	}
	if want := (HashPartitioner{}).Partition("k", 4); part != want {
		t.Errorf("part = %d, want %d", part, want)
	}
	if _, bc := ResolvePartition(f, (Pointer{NoPart: true})); !bc {
		t.Error("NoPart pointer must resolve to broadcast")
	}
}
