// Package indexer implements the paper's structure maintenance (§III-D):
// ReDe builds indexes flexibly in the background from registered access
// method functions. Users register, per base file, functions that extract
// the base record's partition key and its index key(s) with schema-on-read;
// the builder scans the base file, emits (partition key, index key) pairs,
// and materializes B-tree index files — local (co-partitioned with the
// base) or global (partitioned by the index key).
//
// Structures are lazy: a Registry holds Specs, and an index is built the
// first time a job asks for it (Ensure) or when the registry is told to
// build everything in the background (StartAll).
package indexer

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// Kind distinguishes the two indexing schemes of the Taniar–Rahayu taxonomy
// the paper builds on: local indexes co-partitioned with their base file,
// and global indexes partitioned by the indexed key.
type Kind int

const (
	// Local indexes live in the same partition as the records they index
	// (the paper's "local secondary indexes on the date columns").
	Local Kind = iota
	// Global indexes are partitioned by the indexed key itself (the
	// paper's "global indexes for each foreign key").
	Global
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Global {
		return "global"
	}
	return "local"
}

// Spec describes one structure to build over a base file.
type Spec struct {
	// Name is the catalog name the index file will get.
	Name string
	// Base is the catalog name of the file to index.
	Base string
	// Kind selects local or global partitioning.
	Kind Kind
	// Partitions is the index partition count; 0 copies the base file's.
	Partitions int
	// Partitioner routes the index's partition keys. Nil selects the
	// base file's partitioner for Local indexes and HashPartitioner for
	// Global ones.
	Partitioner lake.Partitioner
	// PartKey extracts the base record's partition key with
	// schema-on-read; it is stored in every index entry so referencers
	// can rebuild a pointer to the base record.
	PartKey func(rec lake.Record) (lake.Key, error)
	// Keys extracts the index key(s) for the record. A record may emit
	// zero keys (it is simply not indexed) or several (multi-valued
	// attributes, e.g. one claim indexed under each diagnosed disease).
	Keys func(rec lake.Record) ([]lake.Key, error)
}

func (s Spec) validate() error {
	if s.Name == "" || s.Base == "" {
		return fmt.Errorf("indexer: spec needs Name and Base (got %q over %q)", s.Name, s.Base)
	}
	if s.PartKey == nil || s.Keys == nil {
		return fmt.Errorf("indexer: spec %q needs PartKey and Keys functions", s.Name)
	}
	return nil
}

// Build synchronously builds the index described by spec on the cluster and
// returns it. Partitions of the base file are scanned concurrently.
func Build(ctx context.Context, cluster *dfs.Cluster, spec Spec) (lake.BtreeFile, error) {
	b := newBuild(cluster, spec, BuildOptions{})
	b.run(ctx)
	if err := b.Err(); err != nil {
		return nil, err
	}
	return cluster.BtreeFile(spec.Name)
}

// BuildAsync starts a background build and returns immediately; use Wait to
// join it.
func BuildAsync(ctx context.Context, cluster *dfs.Cluster, spec Spec) *BuildStatus {
	return StartBuild(ctx, cluster, spec, BuildOptions{})
}

// BuildOptions tunes one build.
type BuildOptions struct {
	// Barrier, when non-nil, is invoked once per base partition at the
	// build scan's snapshot point (lake.ScanWithBarrier): every record
	// appended — and notified to append listeners — before the barrier runs
	// is covered by the build scan; every record after it is not and must be
	// applied by a maintainer. The lifecycle manager uses the barrier to
	// flip per-partition maintenance from buffered to live without dropping
	// or double-indexing racing appends.
	Barrier func(basePartition int)
}

// StartBuild is BuildAsync with options.
func StartBuild(ctx context.Context, cluster *dfs.Cluster, spec Spec, opts BuildOptions) *BuildStatus {
	b := newBuild(cluster, spec, opts)
	go b.run(ctx)
	return b
}

// BuildStatus tracks one background build.
type BuildStatus struct {
	cluster *dfs.Cluster
	spec    Spec
	opts    BuildOptions

	scanned   atomic.Int64
	emitted   atomic.Int64
	partsDone atomic.Int64
	parts     atomic.Int64

	done chan struct{}
	mu   sync.Mutex
	err  error
}

func newBuild(cluster *dfs.Cluster, spec Spec, opts BuildOptions) *BuildStatus {
	return &BuildStatus{cluster: cluster, spec: spec, opts: opts, done: make(chan struct{})}
}

// Scanned returns the number of base records read so far.
func (b *BuildStatus) Scanned() int64 { return b.scanned.Load() }

// Emitted returns the number of index entries written so far.
func (b *BuildStatus) Emitted() int64 { return b.emitted.Load() }

// Watermark reports the build's per-partition progress: how many base
// partitions have been fully indexed, out of how many. A partial-coverage
// reader can consult it to decide which partitions the index already covers.
func (b *BuildStatus) Watermark() (done, total int64) {
	return b.partsDone.Load(), b.parts.Load()
}

// Wait blocks until the build finishes or ctx is done, returning the build
// error if any.
func (b *BuildStatus) Wait(ctx context.Context) error {
	select {
	case <-b.done:
		return b.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the terminal error of a finished build (nil while running).
func (b *BuildStatus) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

func (b *BuildStatus) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *BuildStatus) run(ctx context.Context) {
	defer close(b.done)
	spec := b.spec
	if err := spec.validate(); err != nil {
		b.fail(err)
		return
	}
	if err := ctx.Err(); err != nil {
		b.fail(fmt.Errorf("indexer: %q: %w", spec.Name, err))
		return
	}
	base, err := b.cluster.File(spec.Base)
	if err != nil {
		b.fail(fmt.Errorf("indexer: %q: %w", spec.Name, err))
		return
	}
	nParts := spec.Partitions
	if nParts == 0 {
		nParts = base.NumPartitions()
	}
	part := spec.Partitioner
	if part == nil {
		if spec.Kind == Local {
			part = base.Partitioner()
		} else {
			part = lake.HashPartitioner{}
		}
	}
	idx, err := b.cluster.CreateFile(spec.Name, dfs.Btree, nParts, part)
	if err != nil {
		b.fail(fmt.Errorf("indexer: %q: %w", spec.Name, err))
		return
	}

	b.parts.Store(int64(base.NumPartitions()))
	var wg sync.WaitGroup
	errCh := make(chan error, base.NumPartitions())
	for p := 0; p < base.NumPartitions(); p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := b.buildPartition(ctx, base, idx, p); err != nil {
				errCh <- err
			} else {
				b.partsDone.Add(1)
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		b.fail(err)
		// Leave no half-built structure behind.
		b.cluster.DropFile(spec.Name)
	}
}

// buildPartition scans one base partition and appends its index entries in
// batches. The scan runs through lake.ScanWithBarrier so that, when the
// build has a Barrier hook, responsibility for records appended mid-build
// hands over at a well-defined point (see BuildOptions.Barrier).
func (b *BuildStatus) buildPartition(ctx context.Context, base, idx lake.File, p int) error {
	spec := b.spec
	// A canceled build must not report success for partitions it never
	// scanned (an empty partition's scan performs no per-record ctx checks).
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("indexer: %q: partition %d: %w", spec.Name, p, err)
	}
	type pending struct {
		part int
		rec  lake.Record
	}
	const batchSize = 1024
	batch := make([]pending, 0, batchSize)
	flush := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("indexer: %q: partition %d: %w", spec.Name, p, err)
		}
		for _, pe := range batch {
			if err := idx.Append(ctx, pe.part, pe.rec); err != nil {
				return err
			}
		}
		b.emitted.Add(int64(len(batch)))
		batch = batch[:0]
		return nil
	}
	scan := func(fn func(lake.Record) error) error {
		if b.opts.Barrier == nil {
			// No hand-over protocol requested: plain Scan admits outside the
			// partition lock, so concurrent appends are not blocked for the
			// scan's modeled service time.
			return base.Scan(ctx, p, fn)
		}
		return lake.ScanWithBarrier(ctx, base, p, func() { b.opts.Barrier(p) }, fn)
	}
	err := scan(func(rec lake.Record) error {
		b.scanned.Add(1)
		basePartKey, err := spec.PartKey(rec)
		if err != nil {
			return fmt.Errorf("indexer: %q: part key of %q: %w", spec.Name, rec.Key, err)
		}
		keys, err := spec.Keys(rec)
		if err != nil {
			return fmt.Errorf("indexer: %q: index keys of %q: %w", spec.Name, rec.Key, err)
		}
		entry := lake.EncodeIndexEntry(basePartKey, rec.Key)
		for _, k := range keys {
			routeKey := k
			if spec.Kind == Local {
				routeKey = basePartKey
			}
			target := idx.Partitioner().Partition(routeKey, idx.NumPartitions())
			batch = append(batch, pending{part: target, rec: lake.Record{Key: k, Data: entry}})
			if len(batch) >= cap(batch) {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// Registry holds registered Specs and builds each structure at most once,
// on demand.
type Registry struct {
	cluster *dfs.Cluster

	mu     sync.Mutex
	specs  map[string]Spec
	builds map[string]*BuildStatus
}

// NewRegistry returns an empty registry bound to the cluster.
func NewRegistry(cluster *dfs.Cluster) *Registry {
	return &Registry{
		cluster: cluster,
		specs:   make(map[string]Spec),
		builds:  make(map[string]*BuildStatus),
	}
}

// Register records a spec. Registering does no work: structures are built
// lazily by Ensure or StartAll. Re-registering a name replaces the spec
// only if it has not started building.
func (r *Registry) Register(spec Spec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, building := r.builds[spec.Name]; building {
		return fmt.Errorf("indexer: %q is already building", spec.Name)
	}
	r.specs[spec.Name] = spec
	return nil
}

// Names returns the registered structure names.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.specs))
	for n := range r.specs {
		out = append(out, n)
	}
	return out
}

// Ensure builds the named structure if it has not been built yet and waits
// for it to be ready. Concurrent Ensure calls share one build (singleflight
// via the builds map); a build that finished with an error is cleared so the
// next Ensure retries it instead of replaying the stale error forever (a
// failed build leaves no file behind — run drops it).
func (r *Registry) Ensure(ctx context.Context, name string) error {
	r.mu.Lock()
	b, ok := r.builds[name]
	if ok {
		select {
		case <-b.done:
			if b.Err() != nil {
				delete(r.builds, name)
				ok = false
			}
		default:
		}
	}
	if !ok {
		spec, known := r.specs[name]
		if !known {
			r.mu.Unlock()
			return fmt.Errorf("indexer: no spec registered for %q", name)
		}
		b = BuildAsync(context.WithoutCancel(ctx), r.cluster, spec)
		r.builds[name] = b
	}
	r.mu.Unlock()
	return b.Wait(ctx)
}

// StartAll kicks off background builds for every registered structure and
// returns their statuses keyed by name.
func (r *Registry) StartAll(ctx context.Context) map[string]*BuildStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*BuildStatus, len(r.specs))
	for name, spec := range r.specs {
		b, ok := r.builds[name]
		if !ok {
			b = BuildAsync(ctx, r.cluster, spec)
			r.builds[name] = b
		}
		out[name] = b
	}
	return out
}

// WaitAll joins every build started so far.
func (r *Registry) WaitAll(ctx context.Context) error {
	r.mu.Lock()
	builds := make([]*BuildStatus, 0, len(r.builds))
	for _, b := range r.builds {
		builds = append(builds, b)
	}
	r.mu.Unlock()
	for _, b := range builds {
		if err := b.Wait(ctx); err != nil {
			return err
		}
	}
	return nil
}
