package indexer

import (
	"context"
	"testing"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// Tests for checkpoint/recovery of the lifecycle registry: PersistEntries
// must capture exactly the adoptable states, and Recover must re-install
// them without starting builds — demoting entries whose bytes did not
// survive and re-enforcing the structure budget.

func TestPersistEntriesCaptureReadyAndEvicted(t *testing.T) {
	ctx := context.Background()
	m, c := newManagerOver(t, 200, ManagerOptions{})
	mustRegister(t, m,
		Spec{Name: "p1", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn},
		Spec{Name: "p2", Base: "orders", Kind: Local, PartKey: partKeyFn, Keys: dateKeyFn},
		Spec{Name: "p3", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: dateKeyFn},
	)
	for _, name := range []string{"p1", "p2"} {
		if err := m.Ensure(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Evict("p2"); err != nil {
		t.Fatal(err)
	}
	// p3 stays absent: absent structures have nothing worth persisting.

	entries := m.PersistEntries()
	if len(entries) != 2 {
		t.Fatalf("persisted %d entries, want 2: %+v", len(entries), entries)
	}
	if entries[0].Name != "p1" || entries[1].Name != "p2" {
		t.Fatalf("entries not sorted by name: %+v", entries)
	}
	if entries[0].State != StateReady || entries[0].SizeBytes <= 0 || entries[0].Builds != 1 {
		t.Fatalf("ready entry wrong: %+v", entries[0])
	}
	if entries[1].State != StateEvicted || entries[1].SizeBytes != 0 {
		t.Fatalf("evicted entry wrong: %+v", entries[1])
	}
	sz, err := c.FileSizeBytes("p1")
	if err != nil || entries[0].SizeBytes != sz {
		t.Fatalf("persisted size %d, file size %d (err=%v)", entries[0].SizeBytes, sz, err)
	}
}

func TestRecoverAdoptsWithoutRebuilding(t *testing.T) {
	ctx := context.Background()

	// Live side: build, checkpoint the registry, keep the index contents.
	live, lc := newManagerOver(t, 300, ManagerOptions{})
	spec := Spec{Name: "idx", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}
	mustRegister(t, live, spec)
	if err := live.Ensure(ctx, "idx"); err != nil {
		t.Fatal(err)
	}
	entries := live.PersistEntries()

	// "Recovered" side: same cluster stands in for restored state (the
	// index file survived), fresh manager.
	m := NewManager(ctx, lc, ManagerOptions{})
	mustRegister(t, m, spec)
	st := m.Recover(entries)
	if st.Recovered != 1 || st.Evicted != 0 || st.Skipped != 0 {
		t.Fatalf("stats %+v, want exactly 1 recovered", st)
	}
	if s, _ := m.State("idx"); s != StateReady {
		t.Fatalf("state %v, want ready", s)
	}
	if cnt := m.Counters(); cnt.BuildsStarted != 0 {
		t.Fatalf("recovery started %d builds", cnt.BuildsStarted)
	}
	// The recovered entry keeps its build count for continuity.
	if got := m.PersistEntries(); len(got) != 1 || got[0].Builds != entries[0].Builds {
		t.Fatalf("recovered registry %+v, want builds carried over from %+v", got, entries)
	}
}

func TestRecoverDemotesReadyEntryWithoutBytes(t *testing.T) {
	ctx := context.Background()
	m, c := newManagerOver(t, 100, ManagerOptions{})
	spec := Spec{Name: "ghost", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}
	mustRegister(t, m, spec)

	// A registry claiming "ghost" is ready with bytes, while the cluster has
	// no such file (the snapshot predates it, say): recovery must demote to
	// evicted, not adopt a phantom.
	st := m.Recover([]PersistEntry{{Name: "ghost", Base: "orders", Kind: Global,
		State: StateReady, SizeBytes: 9999, Builds: 2}})
	if st.Recovered != 0 || st.Evicted != 1 {
		t.Fatalf("stats %+v, want 0 recovered / 1 evicted", st)
	}
	if s, _ := m.State("ghost"); s != StateEvicted {
		t.Fatalf("state %v, want evicted", s)
	}

	// Same demotion when the file exists but is empty (a WAL-replayed
	// CreateFile whose contents post-date the snapshot).
	m2 := NewManager(ctx, c, ManagerOptions{})
	mustRegister(t, m2, Spec{Name: "husk", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn})
	if _, err := c.CreateFile("husk", dfs.Btree, 2, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	st = m2.Recover([]PersistEntry{{Name: "husk", Base: "orders", Kind: Global,
		State: StateReady, SizeBytes: 1234, Builds: 1}})
	if st.Recovered != 0 || st.Evicted != 1 {
		t.Fatalf("husk stats %+v, want 0 recovered / 1 evicted", st)
	}
	if _, err := c.File("husk"); err == nil {
		t.Fatal("empty husk file must be dropped so the rebuild starts clean")
	}
	// The demoted structure must rebuild on demand and come back correct.
	if err := m2.Ensure(ctx, "husk"); err != nil {
		t.Fatal(err)
	}
	if s, _ := m2.State("husk"); s != StateReady {
		t.Fatalf("state after demand rebuild %v, want ready", s)
	}
}

func TestRecoverSkipsUnregisteredSpecs(t *testing.T) {
	m, _ := newManagerOver(t, 50, ManagerOptions{})
	st := m.Recover([]PersistEntry{{Name: "nobody", Base: "orders", State: StateReady}})
	if st.Skipped != 1 || st.Recovered != 0 || st.Evicted != 0 {
		t.Fatalf("stats %+v, want 1 skipped", st)
	}
}

func TestRecoverEnforcesBudget(t *testing.T) {
	ctx := context.Background()
	specs := []Spec{
		{Name: "b1", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn},
		{Name: "b2", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: dateKeyFn},
	}
	live, lc := newManagerOver(t, 300, ManagerOptions{})
	mustRegister(t, live, specs...)
	for _, s := range specs {
		if err := live.Ensure(ctx, s.Name); err != nil {
			t.Fatal(err)
		}
	}
	entries := live.PersistEntries()
	var total, largest int64
	for _, e := range entries {
		total += e.SizeBytes
		if e.SizeBytes > largest {
			largest = e.SizeBytes
		}
	}

	// A budget that fits one structure but not both: recovery must adopt
	// what fits and evict the rest rather than over-commit.
	m := NewManager(ctx, lc, ManagerOptions{StructureBudget: total - 1})
	mustRegister(t, m, specs...)
	st := m.Recover(entries)
	if st.Recovered+st.Evicted != 2 || st.Recovered < 1 {
		t.Fatalf("stats %+v, want 2 entries split with ≥1 recovered", st)
	}
	if st.Evicted < 1 {
		t.Fatalf("stats %+v: over-budget checkpoint recovered without evicting", st)
	}
	if got := m.ResidentBytes(); got > total-1 {
		t.Fatalf("resident %d exceeds budget %d after recovery", got, total-1)
	}
}

func TestRecoverCleansPartialBuildFiles(t *testing.T) {
	ctx := context.Background()
	m, c := newManagerOver(t, 50, ManagerOptions{})
	spec := Spec{Name: "partial", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}
	mustRegister(t, m, spec)
	// A snapshot taken mid-build restored a partial index file, but the
	// registry (correctly) has no entry for it.
	f, err := c.CreateFile("partial", dfs.Btree, 2, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	st := m.Recover(nil)
	if st.Recovered != 0 || st.Evicted != 0 || st.Skipped != 0 {
		t.Fatalf("stats %+v, want all zero", st)
	}
	if _, err := c.File("partial"); err == nil {
		t.Fatal("partial build file must be dropped on recovery")
	}
	if err := m.Ensure(ctx, "partial"); err != nil {
		t.Fatalf("rebuild after cleanup: %v", err)
	}
}

func TestRecoverLeavesBuiltStructuresAlone(t *testing.T) {
	ctx := context.Background()
	m, _ := newManagerOver(t, 100, ManagerOptions{})
	spec := Spec{Name: "alive", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}
	mustRegister(t, m, spec)
	if err := m.Ensure(ctx, "alive"); err != nil {
		t.Fatal(err)
	}
	// A stale checkpoint must not clobber a structure already built this
	// boot.
	st := m.Recover([]PersistEntry{{Name: "alive", Base: "orders", Kind: Global,
		State: StateEvicted, Builds: 99}})
	if st.Recovered != 0 || st.Evicted != 0 {
		t.Fatalf("stats %+v, want untouched", st)
	}
	if s, _ := m.State("alive"); s != StateReady {
		t.Fatalf("state %v, want ready preserved", s)
	}
	if got := m.PersistEntries(); got[0].Builds == 99 {
		t.Fatal("stale checkpoint overwrote live build count")
	}
}
