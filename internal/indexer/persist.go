package indexer

import "sort"

// PersistEntry is the durable form of one managed structure's registry
// entry: what a checkpoint must carry so a fresh Manager can re-install the
// structure's residency state on boot without rebuilding it. Specs hold
// extractor functions and cannot be serialized; recovery therefore matches
// entries by name against specs the boot path re-registers from code.
type PersistEntry struct {
	Name string
	Base string
	Kind Kind
	// State is StateReady or StateEvicted — the only states worth
	// persisting. A build in flight at checkpoint time is simply absent in
	// the recovered manager and rebuilds on demand.
	State State
	// SizeBytes is the modeled resident size at checkpoint time (0 when
	// evicted).
	SizeBytes int64
	// RebuildCost is the advisor's modeled cost of rebuilding from a raw
	// scan, carried so recovery surfaces can report what the checkpoint
	// saved.
	RebuildCost float64
	// Builds is the structure's completed-build count.
	Builds int64
}

// PersistEntries snapshots the checkpointable registry entries, sorted by
// name. Structures mid-build are skipped: their partial contents are not
// safe to adopt.
func (m *Manager) PersistEntries() []PersistEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PersistEntry, 0, len(m.entries))
	for name, e := range m.entries {
		if e.state != StateReady && e.state != StateEvicted {
			continue
		}
		pe := PersistEntry{
			Name:   name,
			Base:   e.spec.Base,
			Kind:   e.spec.Kind,
			State:  e.state,
			Builds: e.builds,
		}
		if e.state == StateReady {
			pe.SizeBytes = m.sizeLocked(e)
		}
		if m.opts.RebuildCost != nil {
			if c, err := m.opts.RebuildCost(e.spec); err == nil {
				pe.RebuildCost = c
			}
		}
		out = append(out, pe)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RecoverStats summarizes one Recover pass.
type RecoverStats struct {
	// Recovered counts structures re-installed directly into ready —
	// restarts these would otherwise pay a full rebuild for.
	Recovered int
	// Evicted counts structures recovered into the evicted state: either
	// checkpointed that way, missing their restored bytes, or pushed out by
	// the budget during recovery.
	Evicted int
	// Skipped counts entries with no matching registered spec.
	Skipped int
	// RebuildCostSaved sums the modeled rebuild cost of the Recovered set.
	RebuildCostSaved float64
}

// Recover re-populates the residency map from checkpointed entries: ready
// entries whose restored file is present become ready without a rebuild
// (entry order defines recovered LRU order, coldest first); evicted entries
// — and ready entries whose bytes did not survive — become evicted, to
// rebuild on demand. Entries naming unregistered specs are skipped. After
// adoption the structure budget is enforced, so an over-budget checkpoint
// recovers into ready-plus-evicted rather than over-committing.
//
// Call Recover after Register-ing the boot specs and restoring the
// snapshot, before serving traffic; it does not compose with builds already
// in flight.
func (m *Manager) Recover(entries []PersistEntry) RecoverStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var st RecoverStats
	recovered := make(map[string]bool, len(entries))
	for _, pe := range entries {
		e, ok := m.entries[pe.Name]
		if !ok {
			st.Skipped++
			continue
		}
		if e.state != StateAbsent {
			continue // already built/building this boot; leave it alone
		}
		e.builds = pe.Builds
		if pe.State == StateReady {
			sz, err := m.cluster.FileSizeBytes(pe.Name)
			if err == nil && (sz > 0 || pe.SizeBytes == 0) {
				e.state = StateReady
				e.size = sz
				m.touchLocked(e)
				recovered[pe.Name] = true
				st.Recovered++
				st.RebuildCostSaved += pe.RebuildCost
				continue
			}
			// The registry says ready but the bytes are not there (for
			// example a WAL-replayed CreateFile whose contents post-date the
			// snapshot). Drop the husk and fall through to evicted so the
			// next demand rebuilds.
			m.cluster.DropFile(pe.Name)
		}
		e.state = StateEvicted
		st.Evicted++
	}
	// A snapshot taken mid-build can carry a partial structure file with no
	// ready entry; clear such files so the next build starts clean.
	for name, e := range m.entries {
		if e.state == StateAbsent && !recovered[name] {
			if _, err := m.cluster.File(name); err == nil {
				m.cluster.DropFile(name)
			}
		}
	}
	if m.opts.StructureBudget > 0 {
		for m.residentLocked() > m.opts.StructureBudget {
			v := m.pickVictimLocked(nil)
			if v == nil {
				break
			}
			m.evictLocked(v)
			st.Recovered--
			st.Evicted++
		}
	}
	return st
}
