package indexer

import (
	"context"
	"sync"
	"sync/atomic"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// Maintainer keeps built structures in sync with new base data — the other
// half of §III-D. The paper's trade-off discussion (§V-B) is precisely that
// "more structures could cause more performance and capacity overheads for
// loading new data"; the Maintainer makes that overhead real and
// measurable: every base append fans out one index append per entry the
// registered access methods emit.
//
// Maintenance is synchronous with the append (writer-pays), which keeps
// indexes consistent for the read path without a reconciliation step.
type Maintainer struct {
	cluster *dfs.Cluster
	ctx     context.Context

	mu    sync.RWMutex
	specs map[string][]Spec // base file → specs of built indexes

	maintained atomic.Int64
	errs       atomic.Int64
	lastErr    atomic.Value // error
}

// NewMaintainer attaches a maintainer to the cluster's append stream. Use
// Watch to start maintaining a built structure.
func NewMaintainer(ctx context.Context, cluster *dfs.Cluster) *Maintainer {
	m := &Maintainer{cluster: cluster, ctx: ctx, specs: make(map[string][]Spec)}
	cluster.AddAppendListener(m.onAppend)
	return m
}

// Watch starts maintaining the structure described by spec: every record
// appended to spec.Base from now on is also indexed. The structure should
// already be built (Build or Registry.Ensure); Watch does not backfill.
func (m *Maintainer) Watch(spec Spec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.specs[spec.Base] = append(m.specs[spec.Base], spec)
	return nil
}

// Maintained returns how many index entries have been appended by
// maintenance — the paper's loading overhead, directly.
func (m *Maintainer) Maintained() int64 { return m.maintained.Load() }

// Errors returns how many maintenance operations failed (e.g. records the
// access method cannot interpret); the last error is available via LastErr.
func (m *Maintainer) Errors() int64 { return m.errs.Load() }

// LastErr returns the most recent maintenance error, or nil.
func (m *Maintainer) LastErr() error {
	if v := m.lastErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// onAppend indexes one appended base record into every watched structure.
// Index appends do not re-trigger maintenance because indexes are not
// registered as bases (indexing an index would need an explicit Watch).
func (m *Maintainer) onAppend(file string, rec lake.Record) {
	m.mu.RLock()
	specs := m.specs[file]
	m.mu.RUnlock()
	if len(specs) == 0 {
		return
	}
	for _, spec := range specs {
		if err := m.apply(spec, rec); err != nil {
			m.errs.Add(1)
			m.lastErr.Store(err)
		}
	}
}

func (m *Maintainer) apply(spec Spec, rec lake.Record) error {
	idx, err := m.cluster.File(spec.Name)
	if err != nil {
		return err
	}
	basePartKey, err := spec.PartKey(rec)
	if err != nil {
		return err
	}
	keys, err := spec.Keys(rec)
	if err != nil {
		return err
	}
	entry := lake.EncodeIndexEntry(basePartKey, rec.Key)
	for _, k := range keys {
		routeKey := k
		if spec.Kind == Local {
			routeKey = basePartKey
		}
		target := idx.Partitioner().Partition(routeKey, idx.NumPartitions())
		if err := idx.Append(m.ctx, target, lake.Record{Key: k, Data: entry}); err != nil {
			return err
		}
		m.maintained.Add(1)
	}
	return nil
}
