package indexer

import (
	"context"
	"sync"
	"sync/atomic"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// Maintainer keeps built structures in sync with new base data — the other
// half of §III-D. The paper's trade-off discussion (§V-B) is precisely that
// "more structures could cause more performance and capacity overheads for
// loading new data"; the Maintainer makes that overhead real and
// measurable: every base append fans out one index append per entry the
// registered access methods emit.
//
// Maintenance is synchronous with the append (writer-pays), which keeps
// indexes consistent for the read path without a reconciliation step.
//
// A structure built online (appends racing the build scan) needs a
// hand-over protocol so that every racing record lands in the index exactly
// once: WatchBuilding registers the structure with every base partition in
// buffered mode — its appends are owned by the build scan, which will see
// them, so the maintainer ignores them — and the build's Barrier hook flips
// each partition to live at the scan's snapshot point. dfs guarantees the
// pair (insert, notify) is atomic under the partition's write lock and the
// barrier runs under the scan's read lock, so a notification is strictly
// before the barrier (record visible to the scan → maintainer must skip it)
// or strictly after it (record invisible to the scan → maintainer applies
// it). There is no in-between.
type Maintainer struct {
	cluster *dfs.Cluster
	ctx     context.Context

	mu    sync.RWMutex
	specs map[string][]*watch // base file → watches of built indexes

	maintained atomic.Int64
	errs       atomic.Int64
	lastErr    atomic.Value // error
}

// watch is one maintained structure. live tracks, per base partition,
// whether the maintainer owns that partition's new appends; a nil live
// slice means the structure was registered fully built (plain Watch) and
// every partition is live.
type watch struct {
	spec Spec
	live []atomic.Bool
}

func (w *watch) isLive(partition int) bool {
	if w.live == nil {
		return true
	}
	if partition < 0 || partition >= len(w.live) {
		return false
	}
	return w.live[partition].Load()
}

// BuildWatch is the hand-over handle of a structure registered with
// WatchBuilding: the build's Barrier hook calls GoLive as each base
// partition's scan pins its snapshot.
type BuildWatch struct {
	m *Maintainer
	w *watch
}

// GoLive flips one base partition to live maintenance. It is called under
// the build scan's read lock on that partition, so the flip is ordered
// against every append's (insert, notify) pair.
func (bw *BuildWatch) GoLive(basePartition int) {
	if basePartition >= 0 && basePartition < len(bw.w.live) {
		bw.w.live[basePartition].Store(true)
	}
}

// NewMaintainer attaches a maintainer to the cluster's append stream. Use
// Watch to start maintaining a built structure.
func NewMaintainer(ctx context.Context, cluster *dfs.Cluster) *Maintainer {
	m := &Maintainer{cluster: cluster, ctx: ctx, specs: make(map[string][]*watch)}
	cluster.AddAppendListener(m.onAppend)
	return m
}

// Watch starts maintaining the structure described by spec: every record
// appended to spec.Base from now on is also indexed. The structure should
// already be built (Build or Registry.Ensure); Watch does not backfill.
func (m *Maintainer) Watch(spec Spec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.specs[spec.Base] = append(m.specs[spec.Base], &watch{spec: spec})
	return nil
}

// WatchBuilding registers a structure whose build is about to start: every
// base partition begins buffered (appends belong to the build scan) and
// flips to live via the returned handle's GoLive — wire it to the build's
// BuildOptions.Barrier. baseParts is the base file's partition count.
func (m *Maintainer) WatchBuilding(spec Spec, baseParts int) (*BuildWatch, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	w := &watch{spec: spec, live: make([]atomic.Bool, baseParts)}
	m.mu.Lock()
	m.specs[spec.Base] = append(m.specs[spec.Base], w)
	m.mu.Unlock()
	return &BuildWatch{m: m, w: w}, nil
}

// Unwatch stops maintaining the named structure (all registrations, any
// base). The lifecycle manager calls it when evicting a structure and when
// a build fails.
func (m *Maintainer) Unwatch(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for base, watches := range m.specs {
		kept := watches[:0]
		for _, w := range watches {
			if w.spec.Name != name {
				kept = append(kept, w)
			}
		}
		if len(kept) == 0 {
			delete(m.specs, base)
		} else {
			m.specs[base] = kept
		}
	}
}

// Maintained returns how many index entries have been appended by
// maintenance — the paper's loading overhead, directly.
func (m *Maintainer) Maintained() int64 { return m.maintained.Load() }

// Errors returns how many maintenance operations failed (e.g. records the
// access method cannot interpret); the last error is available via LastErr.
func (m *Maintainer) Errors() int64 { return m.errs.Load() }

// LastErr returns the most recent maintenance error, or nil.
func (m *Maintainer) LastErr() error {
	if v := m.lastErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// onAppend indexes one appended base record into every watched structure.
// Index appends do not re-trigger maintenance because indexes are not
// registered as bases (indexing an index would need an explicit Watch).
// Buffered partitions (mid-build, pre-barrier) are skipped: the build scan
// owns those records.
func (m *Maintainer) onAppend(file string, partition int, rec lake.Record) {
	m.mu.RLock()
	watches := m.specs[file]
	m.mu.RUnlock()
	if len(watches) == 0 {
		return
	}
	for _, w := range watches {
		if !w.isLive(partition) {
			continue
		}
		if err := m.apply(w.spec, rec); err != nil {
			m.errs.Add(1)
			m.lastErr.Store(err)
		}
	}
}

func (m *Maintainer) apply(spec Spec, rec lake.Record) error {
	idx, err := m.cluster.File(spec.Name)
	if err != nil {
		return err
	}
	basePartKey, err := spec.PartKey(rec)
	if err != nil {
		return err
	}
	keys, err := spec.Keys(rec)
	if err != nil {
		return err
	}
	entry := lake.EncodeIndexEntry(basePartKey, rec.Key)
	for _, k := range keys {
		routeKey := k
		if spec.Kind == Local {
			routeKey = basePartKey
		}
		target := idx.Partitioner().Partition(routeKey, idx.NumPartitions())
		if err := idx.Append(m.ctx, target, lake.Record{Key: k, Data: entry}); err != nil {
			return err
		}
		m.maintained.Add(1)
	}
	return nil
}
