package indexer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

func newManagerOver(t *testing.T, rows int, opts ManagerOptions) (*Manager, *dfs.Cluster) {
	t.Helper()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	loadBase(t, c, rows)
	return NewManager(context.Background(), c, opts), c
}

func mustRegister(t *testing.T, m *Manager, specs ...Spec) {
	t.Helper()
	for _, s := range specs {
		if err := m.Register(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestManagerEnsureSingleflight pins the dedup contract exactly: N
// concurrent Ensure callers share one build — one launches it, the other
// N-1 join it. The build is gated open only after every joiner has been
// counted, so the assertion is deterministic, not a race we usually win.
func TestManagerEnsureSingleflight(t *testing.T) {
	const callers = 16
	gate := make(chan struct{})
	m, c := newManagerOver(t, 200, ManagerOptions{})
	mustRegister(t, m, Spec{
		Name: "once", Base: "orders", Kind: Global, PartKey: partKeyFn,
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			<-gate // hold the build until all joiners are accounted for
			return custKeyFn(rec)
		},
	})

	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.Ensure(context.Background(), "once")
		}(i)
	}
	for m.Counters().BuildsDeduped < callers-1 {
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("Ensure %d: %v", i, err)
		}
	}
	cnt := m.Counters()
	if cnt.BuildsStarted != 1 || cnt.BuildsDeduped != callers-1 {
		t.Fatalf("builds started=%d deduped=%d, want 1 and %d", cnt.BuildsStarted, cnt.BuildsDeduped, callers-1)
	}
	if n, _ := c.Len("once"); n != 200 {
		t.Fatalf("index has %d entries, want 200 (double build?)", n)
	}
	if st, _ := m.State("once"); st != StateReady {
		t.Fatalf("state = %v, want ready", st)
	}
}

// TestManagerBudgetNeverExceeded is the acceptance invariant: with a budget
// below the total index size (but above every single index), resident bytes
// never exceed the budget after any Ensure, evictions actually happen, and
// every structure still answers queries correctly after transparent
// rebuild-on-demand.
func TestManagerBudgetNeverExceeded(t *testing.T) {
	ctx := context.Background()
	specs := []Spec{
		{Name: "i1", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn},
		{Name: "i2", Base: "orders", Kind: Local, PartKey: partKeyFn, Keys: dateKeyFn},
		{Name: "i3", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: dateKeyFn},
	}

	// Measure the real per-index sizes on a throwaway cluster so the budget
	// brackets them precisely.
	probe := dfs.NewCluster(dfs.Config{Nodes: 2})
	loadBase(t, probe, 300)
	var total, largest int64
	for _, s := range specs {
		if _, err := Build(ctx, probe, s); err != nil {
			t.Fatal(err)
		}
		sz, err := probe.FileSizeBytes(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		if sz <= 0 {
			t.Fatalf("%s has modeled size %d, want > 0", s.Name, sz)
		}
		total += sz
		if sz > largest {
			largest = sz
		}
	}
	budget := total - 1
	if budget <= largest {
		t.Fatalf("budget %d does not bracket largest index %d", budget, largest)
	}

	m, c := newManagerOver(t, 300, ManagerOptions{StructureBudget: budget})
	mustRegister(t, m, specs...)
	check := func(step string) {
		t.Helper()
		if rb := m.ResidentBytes(); rb > budget {
			t.Fatalf("%s: resident bytes %d exceed budget %d", step, rb, budget)
		}
	}
	for _, s := range specs {
		if err := m.Ensure(ctx, s.Name); err != nil {
			t.Fatal(err)
		}
		check("ensure " + s.Name)
	}
	if ev := m.Counters().Evictions; ev == 0 {
		t.Fatal("no evictions despite budget below total index size")
	}
	// i1 is the coldest ready structure when i3 finishes, so pure LRU must
	// have picked it.
	if st, _ := m.State("i1"); st != StateEvicted {
		t.Fatalf("i1 state = %v, want evicted (LRU victim)", st)
	}

	// Every structure must still answer correctly on demand: Ensure
	// transparently rebuilds evicted ones, and the answer matches the
	// throwaway cluster's directly-built index.
	k := keycodec.Int64(3)
	for _, s := range specs {
		if err := m.Ensure(ctx, s.Name); err != nil {
			t.Fatal(err)
		}
		check("re-ensure " + s.Name)
		n, err := c.Len(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		if wantN, _ := probe.Len(s.Name); n != wantN {
			t.Fatalf("%s has %d entries after rebuild, want %d", s.Name, n, wantN)
		}
		idx, err := c.BtreeFile(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := probe.BtreeFile(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.Lookup(ctx, idx.Partitioner().Partition(k, idx.NumPartitions()), k)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := want.Lookup(ctx, want.Partitioner().Partition(k, want.NumPartitions()), k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(exp) {
			t.Fatalf("%s: probe returned %d entries after rebuild, want %d", s.Name, len(got), len(exp))
		}
	}
	if rb := m.Counters().Rebuilds; rb == 0 {
		t.Fatal("re-ensuring evicted structures recorded no rebuilds")
	}
}

// TestManagerRebuildCostBreaksTie: among the two coldest ready structures
// the one cheaper to rebuild is evicted first.
func TestManagerRebuildCostBreaksTie(t *testing.T) {
	ctx := context.Background()
	cost := func(s Spec) (float64, error) {
		if s.Name == "i2" {
			return 1, nil // i2 is cheap to rebuild
		}
		return 1000, nil
	}
	m, _ := newManagerOver(t, 300, ManagerOptions{StructureBudget: 1, RebuildCost: cost})
	mustRegister(t, m,
		Spec{Name: "i1", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn},
		Spec{Name: "i2", Base: "orders", Kind: Local, PartKey: partKeyFn, Keys: dateKeyFn},
		Spec{Name: "i3", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: dateKeyFn},
	)
	// Budget 1 cannot hold anything, but the just-finished structure is
	// never the victim, so after each Ensure only that structure remains
	// resident. When i3 finishes, the cold set is {i1, i2} and the cost
	// model must pick i2 over the colder i1.
	for _, name := range []string{"i1", "i2", "i3"} {
		if err := m.Ensure(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := m.State("i2"); st != StateEvicted {
		t.Fatalf("i2 state = %v, want evicted (cheapest of the cold set)", st)
	}
}

// TestManagerEvictRebuild walks the full state machine: absent → ready →
// evicted → (rebuild) ready, with the counters tracking each edge.
func TestManagerEvictRebuild(t *testing.T) {
	ctx := context.Background()
	m, c := newManagerOver(t, 100, ManagerOptions{})
	mustRegister(t, m, Spec{Name: "idx", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn})

	if st, _ := m.State("idx"); st != StateAbsent {
		t.Fatalf("state = %v, want absent before first demand", st)
	}
	if err := m.Evict("idx"); err == nil {
		t.Fatal("evicting an absent structure should fail")
	}
	if err := m.Ensure(ctx, "idx"); err != nil {
		t.Fatal(err)
	}
	if err := m.Evict("idx"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.File("idx"); err == nil {
		t.Fatal("evicted structure still in the catalog")
	}
	if st, _ := m.State("idx"); st != StateEvicted {
		t.Fatalf("state = %v, want evicted", st)
	}
	if err := m.Ensure(ctx, "idx"); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Len("idx"); n != 100 {
		t.Fatalf("rebuilt index has %d entries, want 100", n)
	}
	cnt := m.Counters()
	if cnt.BuildsStarted != 2 || cnt.Evictions != 1 || cnt.Rebuilds != 1 {
		t.Fatalf("counters = %+v, want 2 builds / 1 eviction / 1 rebuild", cnt)
	}
}

// TestManagerFailedBuildRetries: a failed build returns the structure to
// absent so the next Ensure retries instead of replaying the stale error.
func TestManagerFailedBuildRetries(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("interpreter broken")
	var failing bool
	m, c := newManagerOver(t, 50, ManagerOptions{})
	mustRegister(t, m, Spec{
		Name: "flaky", Base: "orders", Kind: Global, PartKey: partKeyFn,
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			if failing {
				return nil, boom
			}
			return custKeyFn(rec)
		},
	})
	failing = true
	if err := m.Ensure(ctx, "flaky"); !errors.Is(err, boom) {
		t.Fatalf("Ensure error = %v, want %v", err, boom)
	}
	if st, _ := m.State("flaky"); st != StateAbsent {
		t.Fatalf("state after failed build = %v, want absent", st)
	}
	failing = false
	if err := m.Ensure(ctx, "flaky"); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if n, _ := c.Len("flaky"); n != 50 {
		t.Fatalf("index has %d entries, want 50", n)
	}
}

// TestManagerAcquireRoutes covers the planner-facing call: ready structures
// are usable immediately, building ones can be waited for within a budget,
// and absent ones kick off a background build while the caller is routed to
// the scan path (counted as a fallback).
func TestManagerAcquireRoutes(t *testing.T) {
	ctx := context.Background()
	gate := make(chan struct{})
	m, _ := newManagerOver(t, 100, ManagerOptions{})
	mustRegister(t, m, Spec{
		Name: "slow", Base: "orders", Kind: Global, PartKey: partKeyFn,
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			<-gate
			return custKeyFn(rec)
		},
	})

	// Unknown names are not managed: report ready so unmanaged planners
	// keep their old behavior.
	if ready, _ := m.Acquire(ctx, "unmanaged", 0); !ready {
		t.Fatal("unknown structure should report ready")
	}
	// Absent with no wait budget: background build starts, caller scans.
	if ready, _ := m.Acquire(ctx, "slow", 0); ready {
		t.Fatal("absent structure reported ready")
	}
	if st, _ := m.State("slow"); st != StateBuilding {
		t.Fatalf("state = %v, want building after Acquire", st)
	}
	// Building with a too-small wait budget: still a scan fallback, and the
	// wait is attributed.
	ready, waited := m.Acquire(ctx, "slow", time.Millisecond)
	if ready {
		t.Fatal("gated build reported ready")
	}
	if waited <= 0 {
		t.Fatal("Acquire waited 0 on a building structure with budget")
	}
	if f := m.Counters().ScanFallbacks; f != 2 {
		t.Fatalf("scan fallbacks = %d, want 2", f)
	}
	// Release the build; a generous wait budget now rides it to readiness.
	close(gate)
	if ready, _ = m.Acquire(ctx, "slow", 10*time.Second); !ready {
		t.Fatal("Acquire did not become ready after the build was released")
	}
}

// TestBuildCancelledBeforeStart: a build launched under an already-dead
// context fails with that context's error and leaves no file behind.
func TestBuildCancelledBeforeStart(t *testing.T) {
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	loadBase(t, c, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := BuildAsync(ctx, c, Spec{Name: "dead", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn})
	if err := b.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("build error = %v, want context.Canceled", err)
	}
	if _, err := c.File("dead"); err == nil {
		t.Fatal("cancelled build left a file behind")
	}
}

// TestBuildCancelledMidScan: cancellation during the scan surfaces
// context.Canceled and the half-built structure is dropped.
func TestBuildCancelledMidScan(t *testing.T) {
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	loadBase(t, c, 500)
	ctx, cancel := context.WithCancel(context.Background())
	var seen int
	var mu sync.Mutex
	b := BuildAsync(ctx, c, Spec{
		Name: "mid", Base: "orders", Kind: Global, PartKey: partKeyFn,
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			mu.Lock()
			seen++
			if seen == 10 {
				cancel()
			}
			mu.Unlock()
			return custKeyFn(rec)
		},
	})
	if err := b.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("build error = %v, want context.Canceled", err)
	}
	if _, err := c.File("mid"); err == nil {
		t.Fatal("cancelled build left a half-built file behind")
	}
	// The structure is not poisoned: the same spec builds fine afterwards.
	if _, err := Build(context.Background(), c, Spec{Name: "mid", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}); err != nil {
		t.Fatalf("rebuild after cancellation: %v", err)
	}
	if n, _ := c.Len("mid"); n != 500 {
		t.Fatalf("rebuilt index has %d entries, want 500", n)
	}
}

// TestManagerEnsureCancelledWaiter: a waiter abandoning its wait does not
// kill the shared build; other waiters still get the structure.
func TestManagerEnsureCancelledWaiter(t *testing.T) {
	gate := make(chan struct{})
	m, c := newManagerOver(t, 100, ManagerOptions{})
	mustRegister(t, m, Spec{
		Name: "shared", Base: "orders", Kind: Global, PartKey: partKeyFn,
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			<-gate
			return custKeyFn(rec)
		},
	})
	if _, err := m.Build("shared"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Ensure(ctx, "shared"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	close(gate)
	if err := m.Ensure(context.Background(), "shared"); err != nil {
		t.Fatalf("surviving build: %v", err)
	}
	if n, _ := c.Len("shared"); n != 100 {
		t.Fatalf("index has %d entries, want 100", n)
	}
}

// TestOnlineBuildExactlyOnce is the maintainer/build race regression test:
// records appended after maintenance registration but before the build
// scan's snapshot must be indexed exactly once — by the scan, with the
// buffered maintainer skipping them — and records appended after the
// snapshot exactly once by live maintenance. Without the buffered→live
// hand-over, the pre-snapshot rows would be indexed twice (or, with the
// opposite ordering hole, dropped entirely).
func TestOnlineBuildExactlyOnce(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	base := loadBase(t, c, 200)
	maint := NewMaintainer(ctx, c)
	spec := Spec{Name: "live_idx", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}

	bw, err := maint.WatchBuilding(spec, base.NumPartitions())
	if err != nil {
		t.Fatal(err)
	}
	// These land after watch registration but before the build snapshot:
	// the scan will see them, so buffered maintenance must not.
	appendRows(t, c, base, 200, 40)
	b := StartBuild(ctx, c, spec, BuildOptions{Barrier: bw.GoLive})
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// These land after the snapshot: only live maintenance covers them.
	appendRows(t, c, base, 240, 40)

	if n, _ := c.Len("live_idx"); n != 280 {
		t.Fatalf("index has %d entries, want 280 (each row exactly once)", n)
	}
	assertIndexMatchesBase(t, c, "live_idx", 280)
}

// TestManagerOnlineBuildUnderConcurrentAppends drives the same protocol
// through the Manager with appenders genuinely racing the build (run with
// -race). However the interleaving falls, every row must be indexed exactly
// once.
func TestManagerOnlineBuildUnderConcurrentAppends(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	base := loadBase(t, c, 300)
	m := NewManager(ctx, c, ManagerOptions{Maintain: true})
	mustRegister(t, m, Spec{Name: "race_idx", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn})

	const appenders, perAppender = 4, 50
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			appendRows(t, c, base, 300+a*perAppender, perAppender)
		}(a)
	}
	if err := m.Ensure(ctx, "race_idx"); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // maintenance is synchronous with the append: no drain needed

	want := 300 + appenders*perAppender
	if n, _ := c.Len("race_idx"); n != want {
		t.Fatalf("index has %d entries, want %d (dropped or doubled racing appends)", n, want)
	}
	assertIndexMatchesBase(t, c, "race_idx", want)
	if err := m.Maintainer().LastErr(); err != nil {
		t.Fatalf("maintenance error: %v", err)
	}
}

// appendRows appends rows [from, from+n) in the loadBase format.
func appendRows(t *testing.T, c *dfs.Cluster, base lake.File, from, n int) {
	t.Helper()
	ctx := context.Background()
	for i := from; i < from+n; i++ {
		key := keycodec.Int64(int64(i))
		data := fmt.Sprintf("%d|%d|%d", i, i%17, 20230000+i%30)
		if err := dfs.AppendRouted(ctx, base, key, lake.Record{Key: key, Data: []byte(data)}); err != nil {
			t.Error(err)
			return
		}
	}
}

// assertIndexMatchesBase checks that a custkey index over "orders" holds
// exactly one entry per base row: total entries and, per custkey, the same
// cardinality a base scan finds.
func assertIndexMatchesBase(t *testing.T, c *dfs.Cluster, name string, rows int) {
	t.Helper()
	ctx := context.Background()
	idx, err := c.BtreeFile(name)
	if err != nil {
		t.Fatal(err)
	}
	for cust := 0; cust < 17; cust++ {
		want := 0
		for i := 0; i < rows; i++ {
			if i%17 == cust {
				want++
			}
		}
		k := keycodec.Int64(int64(cust))
		recs, err := idx.Lookup(ctx, idx.Partitioner().Partition(k, idx.NumPartitions()), k)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != want {
			t.Fatalf("%s: custkey %d has %d entries, want %d", name, cust, len(recs), want)
		}
	}
}
