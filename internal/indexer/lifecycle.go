package indexer

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"lakeharbor/internal/dfs"
)

// State is a managed structure's position in the lifecycle state machine:
//
//	absent ──build──▶ building ──ok──▶ ready ──evict──▶ evicted
//	   ▲                  │                                 │
//	   └─────fail─────────┘          rebuild-on-demand ─────┘ (→ building)
//
// A failed build returns to absent so the next Ensure retries it instead of
// replaying a stale error forever.
type State int

const (
	// StateAbsent means the structure is registered but not materialized.
	StateAbsent State = iota
	// StateBuilding means a build is in flight; callers may join it
	// (Ensure) or route around it (planner scan fallback).
	StateBuilding
	// StateReady means the structure is resident and queryable.
	StateReady
	// StateEvicted means the structure was built and then dropped to
	// reclaim budget; the next demand rebuilds it.
	StateEvicted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateBuilding:
		return "building"
	case StateReady:
		return "ready"
	case StateEvicted:
		return "evicted"
	default:
		return "absent"
	}
}

// ManagerOptions tunes a lifecycle Manager.
type ManagerOptions struct {
	// StructureBudget caps the total modeled bytes (lake.SizeBytes) of
	// resident ready structures; 0 means unlimited. When a finishing build
	// pushes residency over the budget, cold ready structures are evicted
	// (never the one that just finished) until the budget holds again.
	StructureBudget int64
	// RebuildCost scores eviction victims: among the coldest candidates the
	// one cheapest to rebuild is evicted first (advisor.BuildCostNs fits
	// this signature). Nil treats all candidates as equally cheap, which
	// degrades to pure LRU.
	RebuildCost func(Spec) (float64, error)
	// Maintain keeps ready structures in sync with base appends through a
	// Maintainer, using the buffered→live hand-over for builds so records
	// appended mid-build are indexed exactly once.
	Maintain bool
	// OnFinalize, when set, is called (outside the manager's mutex, after
	// waiters are released) each time a build attempt settles, with the
	// structure's name and resulting state — StateReady on success,
	// StateAbsent on failure. Durability layers hook checkpoints here so a
	// freshly built structure reaches the snapshot promptly.
	OnFinalize func(name string, st State)
}

// LifecycleCounters is a snapshot of the manager's lifetime counters.
type LifecycleCounters struct {
	// BuildsStarted counts build attempts actually launched (first builds
	// and rebuilds).
	BuildsStarted int64 `json:"builds_started"`
	// BuildsDeduped counts Ensure callers that joined an in-flight build
	// instead of starting their own (singleflight hits).
	BuildsDeduped int64 `json:"builds_deduped"`
	// Rebuilds counts builds of previously evicted structures.
	Rebuilds int64 `json:"rebuilds"`
	// Evictions counts structures dropped to reclaim budget or by request.
	Evictions int64 `json:"evictions"`
	// ScanFallbacks counts Acquire calls that found the structure not ready
	// and routed the caller to the scan path.
	ScanFallbacks int64 `json:"scan_fallbacks"`
}

// StructureStatus describes one managed structure for status surfaces
// (GET /v1/structures).
type StructureStatus struct {
	Name      string `json:"name"`
	Base      string `json:"base"`
	Kind      string `json:"kind"`
	State     string `json:"state"`
	SizeBytes int64  `json:"size_bytes"`
	// Builds counts completed successful builds of this structure.
	Builds int64 `json:"builds"`
	// Scanned/Emitted/PartsDone/PartsTotal report the in-flight build's
	// progress while State is "building".
	Scanned    int64  `json:"scanned,omitempty"`
	Emitted    int64  `json:"emitted,omitempty"`
	PartsDone  int64  `json:"parts_done,omitempty"`
	PartsTotal int64  `json:"parts_total,omitempty"`
	LastErr    string `json:"last_err,omitempty"`
}

// attempt is one build in flight. Waiters capture the attempt and block on
// done; err is set before done closes, so a waiter always reads its own
// generation's outcome even if the entry has moved on.
type attempt struct {
	build *BuildStatus
	done  chan struct{}
	err   error
}

// managed is one structure's lifecycle entry.
type managed struct {
	spec  Spec
	state State
	att   *attempt // non-nil iff state == StateBuilding
	err   error    // terminal error of the last failed build
	size  int64    // modeled resident bytes while ready
	// lastUsed is the manager clock value of the last touch; the eviction
	// policy treats lower values as colder.
	lastUsed int64
	builds   int64
}

// Manager is the structure lifecycle manager: it makes "lazy" structures
// *managed* — built once under singleflight, kept fresh by a maintainer,
// held resident under a memory budget, evicted cold-first with an
// advisor-scored victim choice, and transparently rebuilt on demand.
type Manager struct {
	cluster *dfs.Cluster
	ctx     context.Context // detached build/maintenance context
	opts    ManagerOptions
	maint   *Maintainer

	mu      sync.Mutex
	entries map[string]*managed
	clock   int64

	counters struct {
		sync.Mutex
		LifecycleCounters
	}
}

// NewManager creates a lifecycle manager over the cluster. ctx bounds
// background builds and maintenance appends; builds started on behalf of an
// Ensure caller survive that caller's cancellation (other waiters may have
// joined), but die with ctx.
func NewManager(ctx context.Context, cluster *dfs.Cluster, opts ManagerOptions) *Manager {
	m := &Manager{
		cluster: cluster,
		ctx:     ctx,
		opts:    opts,
		entries: make(map[string]*managed),
	}
	if opts.Maintain {
		m.maint = NewMaintainer(ctx, cluster)
	}
	return m
}

// Maintainer returns the manager's maintainer (nil without
// ManagerOptions.Maintain).
func (m *Manager) Maintainer() *Maintainer { return m.maint }

// Register records a spec under lifecycle management. Registering does no
// work; the structure stays absent until Ensure, Build, or Acquire demands
// it. Re-registering replaces the spec only while the structure is absent.
func (m *Manager) Register(spec Spec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[spec.Name]; ok && e.state != StateAbsent {
		return fmt.Errorf("indexer: %q is %s; cannot re-register", spec.Name, e.state)
	}
	m.entries[spec.Name] = &managed{spec: spec}
	return nil
}

// Names returns the managed structure names.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.entries))
	for n := range m.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// State returns the named structure's current lifecycle state.
func (m *Manager) State(name string) (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[name]
	if !ok {
		return StateAbsent, fmt.Errorf("indexer: no spec registered for %q", name)
	}
	return e.state, nil
}

// Ensure makes the named structure ready, waiting for the build to finish.
// Concurrent callers share one build (singleflight): exactly one launches
// it, the rest join and are counted as deduped. An evicted structure is
// rebuilt. ctx cancellation abandons the wait, not the shared build.
func (m *Manager) Ensure(ctx context.Context, name string) error {
	m.mu.Lock()
	e, ok := m.entries[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("indexer: no spec registered for %q", name)
	}
	switch e.state {
	case StateReady:
		m.touchLocked(e)
		m.mu.Unlock()
		return nil
	case StateBuilding:
		m.addCounter(func(c *LifecycleCounters) { c.BuildsDeduped++ })
	default: // absent or evicted
		m.startBuildLocked(e)
	}
	att := e.att
	m.mu.Unlock()
	select {
	case <-att.done:
		return att.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Build starts (or joins) a build without waiting and reports the resulting
// state: StateReady for a no-op on a ready structure, StateBuilding when a
// build is now in flight.
func (m *Manager) Build(name string) (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[name]
	if !ok {
		return StateAbsent, fmt.Errorf("indexer: no spec registered for %q", name)
	}
	if e.state == StateAbsent || e.state == StateEvicted {
		m.startBuildLocked(e)
	}
	return e.state, nil
}

// Evict drops a ready structure to reclaim its budget; the next demand
// rebuilds it. Evicting a building or non-resident structure is an error.
func (m *Manager) Evict(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[name]
	if !ok {
		return fmt.Errorf("indexer: no spec registered for %q", name)
	}
	if e.state != StateReady {
		return fmt.Errorf("indexer: cannot evict %q: state is %s, not ready", name, e.state)
	}
	m.evictLocked(e)
	return nil
}

// Acquire is the planner's routing call: it reports whether the structure
// is ready for use, touching it for LRU accounting when it is. When the
// structure is building and maxWait > 0, Acquire waits up to maxWait for
// the build; the time spent is returned for trace attribution. When the
// structure is absent or evicted, a background (re)build is kicked off and
// the caller is routed to the scan path (counted as a scan fallback).
// Unknown names report ready=true so unmanaged planners keep old behavior.
func (m *Manager) Acquire(ctx context.Context, name string, maxWait time.Duration) (ready bool, waited time.Duration) {
	m.mu.Lock()
	e, ok := m.entries[name]
	if !ok {
		m.mu.Unlock()
		return true, 0
	}
	switch e.state {
	case StateReady:
		m.touchLocked(e)
		m.mu.Unlock()
		return true, 0
	case StateAbsent, StateEvicted:
		m.startBuildLocked(e)
	}
	att := e.att
	m.mu.Unlock()

	if maxWait > 0 && att != nil {
		start := time.Now()
		t := time.NewTimer(maxWait)
		defer t.Stop()
		select {
		case <-att.done:
			waited = time.Since(start)
			if att.err == nil {
				m.mu.Lock()
				if e.state == StateReady {
					m.touchLocked(e)
					m.mu.Unlock()
					return true, waited
				}
				m.mu.Unlock()
			}
		case <-t.C:
			waited = maxWait
		case <-ctx.Done():
			waited = time.Since(start)
		}
	}
	m.addCounter(func(c *LifecycleCounters) { c.ScanFallbacks++ })
	return false, waited
}

// ResidentBytes returns the total modeled bytes of ready structures,
// refreshed from storage (maintained indexes grow after their build).
func (m *Manager) ResidentBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.residentLocked()
}

// Counters returns a snapshot of the lifecycle counters.
func (m *Manager) Counters() LifecycleCounters {
	m.counters.Lock()
	defer m.counters.Unlock()
	return m.counters.LifecycleCounters
}

// Status snapshots every managed structure, sorted by name.
func (m *Manager) Status() []StructureStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]StructureStatus, 0, len(m.entries))
	for name, e := range m.entries {
		st := StructureStatus{
			Name:   name,
			Base:   e.spec.Base,
			Kind:   e.spec.Kind.String(),
			State:  e.state.String(),
			Builds: e.builds,
		}
		if e.state == StateReady {
			st.SizeBytes = m.sizeLocked(e)
		}
		if e.att != nil {
			b := e.att.build
			st.Scanned = b.Scanned()
			st.Emitted = b.Emitted()
			st.PartsDone, st.PartsTotal = b.Watermark()
		}
		if e.err != nil {
			st.LastErr = e.err.Error()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (m *Manager) addCounter(fn func(*LifecycleCounters)) {
	m.counters.Lock()
	fn(&m.counters.LifecycleCounters)
	m.counters.Unlock()
}

func (m *Manager) touchLocked(e *managed) {
	m.clock++
	e.lastUsed = m.clock
}

// startBuildLocked launches a build for an absent or evicted entry and
// installs its attempt. The maintainer (when present) is registered in
// buffered mode BEFORE the build starts and flipped live by the build's
// per-partition barrier, so appends racing the build land in the index
// exactly once.
func (m *Manager) startBuildLocked(e *managed) {
	wasEvicted := e.state == StateEvicted
	e.state = StateBuilding
	e.err = nil

	var buildOpts BuildOptions
	if m.maint != nil {
		if base, err := m.cluster.File(e.spec.Base); err == nil {
			if bw, err := m.maint.WatchBuilding(e.spec, base.NumPartitions()); err == nil {
				buildOpts.Barrier = bw.GoLive
			}
		}
		// A missing base fails the build below with a precise error; no
		// watch is registered for it.
	}

	att := &attempt{done: make(chan struct{})}
	att.build = StartBuild(m.ctx, m.cluster, e.spec, buildOpts)
	e.att = att
	m.addCounter(func(c *LifecycleCounters) {
		c.BuildsStarted++
		if wasEvicted {
			c.Rebuilds++
		}
	})
	go m.finalize(e, att)
}

// finalize joins one build attempt and settles the entry: success makes the
// structure ready (and enforces the budget), failure returns it to absent
// so the next demand retries instead of replaying a poisoned error.
func (m *Manager) finalize(e *managed, att *attempt) {
	<-att.build.done
	err := att.build.Err()
	m.mu.Lock()
	att.err = err
	e.att = nil
	if err != nil {
		e.state = StateAbsent
		e.err = err
		if m.maint != nil {
			m.maint.Unwatch(e.spec.Name)
		}
	} else {
		e.state = StateReady
		e.builds++
		e.size = m.sizeLocked(e)
		m.touchLocked(e)
		m.enforceBudgetLocked(e)
	}
	st := e.state
	m.mu.Unlock()
	close(att.done)
	if m.opts.OnFinalize != nil {
		m.opts.OnFinalize(e.spec.Name, st)
	}
}

// sizeLocked refreshes and returns the entry's modeled resident size.
func (m *Manager) sizeLocked(e *managed) int64 {
	if sz, err := m.cluster.FileSizeBytes(e.spec.Name); err == nil {
		e.size = sz
	}
	return e.size
}

func (m *Manager) residentLocked() int64 {
	var total int64
	for _, e := range m.entries {
		if e.state == StateReady {
			total += m.sizeLocked(e)
		}
	}
	return total
}

// enforceBudgetLocked evicts cold ready structures until residency fits the
// budget. exclude (the structure that just finished building or was just
// used) is never a victim — evicting it would thrash the build that is
// satisfying current demand.
func (m *Manager) enforceBudgetLocked(exclude *managed) {
	if m.opts.StructureBudget <= 0 {
		return
	}
	for m.residentLocked() > m.opts.StructureBudget {
		v := m.pickVictimLocked(exclude)
		if v == nil {
			return // nothing left to evict; the excluded entry alone overflows
		}
		m.evictLocked(v)
	}
}

// pickVictimLocked chooses the eviction victim: LRU determines the cold
// set — the two least-recently-used ready structures — and the rebuild
// cost model (ManagerOptions.RebuildCost, typically advisor.BuildCostNs)
// picks the cheaper-to-rebuild of those. Without a cost model this is pure
// LRU.
func (m *Manager) pickVictimLocked(exclude *managed) *managed {
	var cands []*managed
	for _, e := range m.entries {
		if e != exclude && e.state == StateReady {
			cands = append(cands, e)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lastUsed < cands[j].lastUsed })
	if len(cands) == 1 || m.opts.RebuildCost == nil {
		return cands[0]
	}
	a, b := cands[0], cands[1]
	costA, errA := m.opts.RebuildCost(a.spec)
	costB, errB := m.opts.RebuildCost(b.spec)
	if errA != nil || errB != nil || costA <= costB {
		return a
	}
	return b
}

func (m *Manager) evictLocked(e *managed) {
	if m.maint != nil {
		m.maint.Unwatch(e.spec.Name)
	}
	m.cluster.DropFile(e.spec.Name)
	e.state = StateEvicted
	e.size = 0
	m.addCounter(func(c *LifecycleCounters) { c.Evictions++ })
}
