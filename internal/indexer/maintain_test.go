package indexer

import (
	"context"
	"fmt"
	"testing"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

func TestMaintainerKeepsIndexFresh(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	loadBase(t, c, 200)
	spec := Spec{Name: "cust_idx", Base: "orders", Kind: Global,
		PartKey: partKeyFn, Keys: custKeyFn}
	idx, err := Build(ctx, c, spec)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(ctx, c)
	if err := m.Watch(spec); err != nil {
		t.Fatal(err)
	}

	// New data arrives after the build.
	base, _ := c.File("orders")
	for i := 200; i < 300; i++ {
		key := keycodec.Int64(int64(i))
		data := fmt.Sprintf("%d|%d|%d", i, i%17, 20230000+i%30)
		if err := dfs.AppendRouted(ctx, base, key, lake.Record{Key: key, Data: []byte(data)}); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := c.Len("cust_idx"); n != 300 {
		t.Fatalf("maintained index has %d entries, want 300", n)
	}
	if m.Maintained() != 100 {
		t.Errorf("Maintained = %d, want 100 (the loading overhead)", m.Maintained())
	}
	if m.Errors() != 0 || m.LastErr() != nil {
		t.Errorf("unexpected maintenance errors: %d %v", m.Errors(), m.LastErr())
	}

	// A freshly appended record is findable through the index.
	k := keycodec.Int64(3) // custkey 3: rows 3, 20, ..., plus the new ones
	p := idx.Partitioner().Partition(k, idx.NumPartitions())
	recs, err := idx.Lookup(ctx, p, k)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 300; i++ {
		if i%17 == 3 {
			want++
		}
	}
	if len(recs) != want {
		t.Fatalf("probe after maintenance = %d entries, want %d", len(recs), want)
	}
}

func TestMaintainerIgnoresUnwatchedFiles(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	loadBase(t, c, 50)
	other, _ := c.CreateFile("other", dfs.Btree, 2, lake.HashPartitioner{})
	spec := Spec{Name: "idx", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}
	if _, err := Build(ctx, c, spec); err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(ctx, c)
	m.Watch(spec)
	// Appends to an unrelated file do nothing.
	dfs.AppendRouted(ctx, other, "k", lake.Record{Key: "k"})
	if m.Maintained() != 0 {
		t.Errorf("unrelated append maintained %d entries", m.Maintained())
	}
}

func TestMaintainerRecordsErrors(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	loadBase(t, c, 10)
	spec := Spec{Name: "idx", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}
	if _, err := Build(ctx, c, spec); err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(ctx, c)
	if err := m.Watch(Spec{}); err == nil {
		t.Error("Watch of invalid spec accepted")
	}
	m.Watch(spec)
	// A record the access method cannot interpret is counted, not fatal.
	base, _ := c.File("orders")
	base.Append(ctx, 0, lake.Record{Key: "junk", Data: []byte("not|parseable|as|int")})
	if m.Errors() == 0 || m.LastErr() == nil {
		t.Error("uninterpretable record did not record a maintenance error")
	}
}

func TestMaintainerLoadingOverheadVisible(t *testing.T) {
	// The §V-B trade-off quantified: appends to a base with two watched
	// structures cost two maintained entries each.
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	loadBase(t, c, 20)
	s1 := Spec{Name: "i1", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}
	s2 := Spec{Name: "i2", Base: "orders", Kind: Local, PartKey: partKeyFn, Keys: dateKeyFn}
	if _, err := Build(ctx, c, s1); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(ctx, c, s2); err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(ctx, c)
	m.Watch(s1)
	m.Watch(s2)
	before := c.TotalMetrics()
	base, _ := c.File("orders")
	for i := 20; i < 30; i++ {
		key := keycodec.Int64(int64(i))
		data := fmt.Sprintf("%d|%d|%d", i, i%17, 20230000+i%30)
		dfs.AppendRouted(ctx, base, key, lake.Record{Key: key, Data: []byte(data)})
	}
	if m.Maintained() != 20 {
		t.Errorf("Maintained = %d, want 20 (10 appends × 2 structures)", m.Maintained())
	}
	// Appends counter shows 10 base + 20 index = 30 writes: the loading
	// amplification the paper warns about.
	if d := c.TotalMetrics().Sub(before); d.Appends != 30 {
		t.Errorf("append amplification = %d writes, want 30", d.Appends)
	}
}
