package indexer

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// The test base file holds records "orderkey|custkey|date" keyed and
// partitioned by orderkey.
func loadBase(t testing.TB, c *dfs.Cluster, rows int) lake.File {
	t.Helper()
	ctx := context.Background()
	base, err := c.CreateFile("orders", dfs.Btree, 4, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		key := keycodec.Int64(int64(i))
		data := fmt.Sprintf("%d|%d|%d", i, i%17, 20230000+i%30)
		if err := dfs.AppendRouted(ctx, base, key, lake.Record{Key: key, Data: []byte(data)}); err != nil {
			t.Fatal(err)
		}
	}
	return base
}

func field(rec lake.Record, i int) string {
	return strings.Split(string(rec.Data), "|")[i]
}

func partKeyFn(rec lake.Record) (lake.Key, error) {
	n, err := strconv.ParseInt(field(rec, 0), 10, 64)
	if err != nil {
		return "", err
	}
	return keycodec.Int64(n), nil
}

func custKeyFn(rec lake.Record) ([]lake.Key, error) {
	n, err := strconv.ParseInt(field(rec, 1), 10, 64)
	if err != nil {
		return nil, err
	}
	return []lake.Key{keycodec.Int64(n)}, nil
}

func dateKeyFn(rec lake.Record) ([]lake.Key, error) {
	n, err := strconv.ParseInt(field(rec, 2), 10, 64)
	if err != nil {
		return nil, err
	}
	return []lake.Key{keycodec.Int64(n)}, nil
}

func TestBuildGlobalIndex(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	loadBase(t, c, 500)
	idx, err := Build(ctx, c, Spec{
		Name:    "orders_cust_idx",
		Base:    "orders",
		Kind:    Global,
		PartKey: partKeyFn,
		Keys:    custKeyFn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Len("orders_cust_idx"); n != 500 {
		t.Fatalf("index has %d entries, want 500", n)
	}
	// Probe custkey 3: all entries must be in the partition that the
	// index's own partitioner routes custkey 3 to, and decode to base
	// records with custkey 3.
	k := keycodec.Int64(3)
	p := idx.Partitioner().Partition(k, idx.NumPartitions())
	recs, err := idx.Lookup(ctx, p, k)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 500; i++ {
		if i%17 == 3 {
			want++
		}
	}
	if len(recs) != want {
		t.Fatalf("custkey-3 probe returned %d entries, want %d", len(recs), want)
	}
	base, _ := c.File("orders")
	for _, r := range recs {
		basePartKey, pk, err := lake.DecodeIndexEntry(r.Data)
		if err != nil {
			t.Fatal(err)
		}
		bp := base.Partitioner().Partition(basePartKey, base.NumPartitions())
		baseRecs, err := base.Lookup(ctx, bp, pk)
		if err != nil || len(baseRecs) != 1 {
			t.Fatalf("index entry does not resolve: %v %v", baseRecs, err)
		}
		if field(baseRecs[0], 1) != "3" {
			t.Fatalf("entry points at custkey %s, want 3", field(baseRecs[0], 1))
		}
	}
}

func TestBuildLocalIndexCoPartitioned(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	base := loadBase(t, c, 300)
	idx, err := Build(ctx, c, Spec{
		Name:    "orders_date_idx",
		Base:    "orders",
		Kind:    Local,
		PartKey: partKeyFn,
		Keys:    dateKeyFn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumPartitions() != base.NumPartitions() {
		t.Fatalf("local index has %d partitions, base has %d", idx.NumPartitions(), base.NumPartitions())
	}
	// Every index entry must live in the same partition as its base record.
	for p := 0; p < idx.NumPartitions(); p++ {
		recs, err := idx.LookupRange(ctx, p, keycodec.Int64(0), keycodec.Int64(1<<40))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			basePartKey, _, err := lake.DecodeIndexEntry(r.Data)
			if err != nil {
				t.Fatal(err)
			}
			if bp := base.Partitioner().Partition(basePartKey, base.NumPartitions()); bp != p {
				t.Fatalf("local index entry in partition %d but base record in %d", p, bp)
			}
		}
	}
	if n, _ := c.Len("orders_date_idx"); n != 300 {
		t.Fatalf("index has %d entries, want 300", n)
	}
}

func TestMultiValuedKeys(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	loadBase(t, c, 50)
	_, err := Build(ctx, c, Spec{
		Name:    "multi",
		Base:    "orders",
		Kind:    Global,
		PartKey: partKeyFn,
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			// Every record indexed under two keys; every third record
			// under none.
			n, _ := strconv.ParseInt(field(rec, 0), 10, 64)
			if n%3 == 0 {
				return nil, nil
			}
			return []lake.Key{keycodec.Int64(n), keycodec.Int64(n + 1000)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 50; i++ {
		if i%3 != 0 {
			want += 2
		}
	}
	if n, _ := c.Len("multi"); n != want {
		t.Fatalf("multi-valued index has %d entries, want %d", n, want)
	}
}

func TestBuildErrors(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	loadBase(t, c, 10)

	if _, err := Build(ctx, c, Spec{Name: "x", Base: "missing", PartKey: partKeyFn, Keys: custKeyFn}); err == nil {
		t.Error("build over missing base should fail")
	}
	if _, err := Build(ctx, c, Spec{Name: "", Base: "orders", PartKey: partKeyFn, Keys: custKeyFn}); err == nil {
		t.Error("build without a name should fail")
	}
	if _, err := Build(ctx, c, Spec{Name: "y", Base: "orders"}); err == nil {
		t.Error("build without extractors should fail")
	}
	boom := errors.New("cannot interpret")
	if _, err := Build(ctx, c, Spec{
		Name: "z", Base: "orders", PartKey: partKeyFn,
		Keys: func(lake.Record) ([]lake.Key, error) { return nil, boom },
	}); !errors.Is(err, boom) {
		t.Errorf("extractor error = %v, want %v", err, boom)
	}
	// A failed build must not leave a half-built file in the catalog.
	if _, err := c.File("z"); err == nil {
		t.Error("failed build left index file behind")
	}
	// Name collision with an existing file.
	if _, err := Build(ctx, c, Spec{Name: "orders", Base: "orders", PartKey: partKeyFn, Keys: custKeyFn}); err == nil {
		t.Error("build over existing name should fail")
	}
}

func TestBuildAsyncProgress(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	loadBase(t, c, 400)
	b := BuildAsync(ctx, c, Spec{Name: "idx", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn})
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if b.Scanned() != 400 {
		t.Errorf("Scanned = %d, want 400", b.Scanned())
	}
	if b.Emitted() != 400 {
		t.Errorf("Emitted = %d, want 400", b.Emitted())
	}
}

func TestRegistryLazyBuild(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	loadBase(t, c, 100)
	r := NewRegistry(c)
	if err := r.Register(Spec{Name: "lazy", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn}); err != nil {
		t.Fatal(err)
	}
	// Registration alone builds nothing.
	if _, err := c.File("lazy"); err == nil {
		t.Fatal("registry built eagerly")
	}
	if err := r.Ensure(ctx, "lazy"); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Len("lazy"); n != 100 {
		t.Fatalf("ensured index has %d entries", n)
	}
	// Second Ensure is a no-op on an already built index.
	if err := r.Ensure(ctx, "lazy"); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Len("lazy"); n != 100 {
		t.Fatal("Ensure rebuilt the index")
	}
	if err := r.Ensure(ctx, "unknown"); err == nil {
		t.Error("Ensure of unregistered name should fail")
	}
}

func TestRegistryConcurrentEnsureBuildsOnce(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	loadBase(t, c, 200)
	r := NewRegistry(c)
	r.Register(Spec{Name: "once", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn})
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.Ensure(ctx, "once")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Ensure %d: %v", i, err)
		}
	}
	if n, _ := c.Len("once"); n != 200 {
		t.Fatalf("index has %d entries, want 200 (double build?)", n)
	}
}

func TestRegistryStartAllAndWaitAll(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	loadBase(t, c, 100)
	r := NewRegistry(c)
	r.Register(Spec{Name: "i1", Base: "orders", Kind: Global, PartKey: partKeyFn, Keys: custKeyFn})
	r.Register(Spec{Name: "i2", Base: "orders", Kind: Local, PartKey: partKeyFn, Keys: dateKeyFn})
	builds := r.StartAll(ctx)
	if len(builds) != 2 {
		t.Fatalf("StartAll returned %d builds", len(builds))
	}
	if err := r.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"i1", "i2"} {
		if n, _ := c.Len(name); n != 100 {
			t.Errorf("%s has %d entries, want 100", name, n)
		}
	}
	names := r.Names()
	if len(names) != 2 {
		t.Errorf("Names = %v", names)
	}
}
