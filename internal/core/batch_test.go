package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// rowSet canonicalizes a result for order-insensitive comparison.
func rowSet(recs []lake.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r.Key) + "|" + string(r.Data)
	}
	sort.Strings(out)
	return out
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchedEquivalence is the tentpole's correctness contract: for random
// price ranges and every interesting MaxBatch, the batched executor must
// produce exactly the row set of the unbatched executor, of the oracle, and
// of the scan-based baseline engine — and identical per-stage emit counts,
// since batching changes task granularity but never what flows.
func TestBatchedEquivalence(t *testing.T) {
	fx := newFixture(t, 3, 17, 2)
	eng := baseline.New(fx.cluster, 4)
	sizes := []int{1, 2, 7, 64}

	check := func(loRaw, hiRaw uint8) bool {
		lo := int64(loRaw) % int64(fx.nParts*10)
		hi := lo + int64(hiRaw)%60
		job := fx.joinJob(lo, hi, false)

		base, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{
			Threads: 64, InlineReferencers: true, KeepRecords: true, MaxBatch: 1,
		})
		if err != nil {
			t.Errorf("[%d,%d] unbatched: %v", lo, hi, err)
			return false
		}
		if base.Count != fx.expectedJoinCount(lo, hi) {
			t.Errorf("[%d,%d] unbatched count = %d, oracle %d", lo, hi, base.Count, fx.expectedJoinCount(lo, hi))
			return false
		}
		want := rowSet(base.Records)

		// Baseline engine: scan lineitem, keeping rows whose part's price
		// is inside the range.
		scanned, err := eng.Scan(fx.ctx, fLine, func(r lake.Record) (bool, error) {
			f, err := interpLine(r)
			if err != nil {
				return false, err
			}
			pk, err := strconv.ParseInt(f["l_partkey"], 10, 64)
			if err != nil {
				return false, err
			}
			price := fx.prices[pk]
			return price >= lo && price <= hi, nil
		})
		if err != nil {
			t.Errorf("[%d,%d] baseline: %v", lo, hi, err)
			return false
		}
		if got := rowSet(scanned); !equalRows(got, want) {
			t.Errorf("[%d,%d] baseline rows diverge: %d vs %d", lo, hi, len(got), len(want))
			return false
		}

		for _, mb := range sizes {
			res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{
				Threads: 64, KeepRecords: true, MaxBatch: mb,
			})
			if err != nil {
				t.Errorf("[%d,%d] MaxBatch=%d: %v", lo, hi, mb, err)
				return false
			}
			if got := rowSet(res.Records); !equalRows(got, want) {
				t.Errorf("[%d,%d] MaxBatch=%d rows diverge: %d vs %d", lo, hi, mb, len(got), len(want))
				return false
			}
			for s := range res.StageEmits {
				if res.StageEmits[s] != base.StageEmits[s] {
					t.Errorf("[%d,%d] MaxBatch=%d stage %d emits = %d, unbatched %d",
						lo, hi, mb, s, res.StageEmits[s], base.StageEmits[s])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchFlushOnIdle: with MaxBatch far larger than the job's pointer
// population, no buffer ever reaches the flush threshold — every pointer
// must still be delivered by the task-end flush, or the job would hang on a
// stranded tail. The deadline converts a strand into a fast failure.
func TestBatchFlushOnIdle(t *testing.T) {
	fx := newFixture(t, 2, 10, 3)
	ctx, cancel := context.WithTimeout(fx.ctx, 30*time.Second)
	defer cancel()
	job := fx.joinJob(0, 1000, false)
	res, err := ExecuteSMPE(ctx, job, fx.cluster, fx.cluster, Options{MaxBatch: 1 << 20})
	if err != nil {
		t.Fatalf("huge MaxBatch: %v", err)
	}
	if want := fx.expectedJoinCount(0, 1000); res.Count != want {
		t.Fatalf("count = %d, want %d (pointers stranded in a buffer?)", res.Count, want)
	}
}

// TestBatchingReducesAdmissions is the tentpole's payoff: the same job at
// MaxBatch 64 must reach storage with strictly fewer gate admissions than at
// MaxBatch 1, and the trace must make the achieved batch size visible.
// Lookups counts admissions even on a free-cost cluster, so the assertion is
// deterministic.
func TestBatchingReducesAdmissions(t *testing.T) {
	fx := newFixture(t, 2, 40, 4)
	job := fx.joinJob(0, 10000, false)

	run := func(mb int) (int64, *Result) {
		before := fx.cluster.TotalMetrics()
		res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{MaxBatch: mb})
		if err != nil {
			t.Fatalf("MaxBatch=%d: %v", mb, err)
		}
		return fx.cluster.TotalMetrics().Sub(before).Lookups, res
	}

	unbatchedAdmissions, _ := run(1)
	batchedAdmissions, res := run(64)
	if batchedAdmissions >= unbatchedAdmissions {
		t.Fatalf("admissions: batched %d, unbatched %d; batching should admit fewer",
			batchedAdmissions, unbatchedAdmissions)
	}
	// The final stage receives one routed pointer per lineitem; with 160
	// lineitems over 4 partitions, coalescing must produce real batches.
	st := res.Trace.Stages[len(res.Trace.Stages)-1]
	if st.Batches == 0 || st.MeanBatch() <= 1 {
		t.Fatalf("final stage mean batch = %v over %d batches, want > 1", st.MeanBatch(), st.Batches)
	}
	if res.Trace.TotalBatchedPtrs() == 0 {
		t.Fatal("trace recorded no batched pointers")
	}
}

// TestBatchSplitRetry: a transient storage fault fails the whole batched
// lookup; the executor must split the batch, re-dereference per pointer, and
// lose nothing.
func TestBatchSplitRetry(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 1})
	src, err := c.CreateFile("src", dfs.Btree, 1, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile("dst", dfs.Btree, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	dst, _ := c.File("dst")
	const rows = 40
	for i := int64(0); i < rows; i++ {
		k := keycodec.Int64(i)
		rec := lake.Record{Key: k, Data: []byte(fmt.Sprint(i))}
		if err := dfs.AppendRouted(ctx, src, k, rec); err != nil {
			t.Fatal(err)
		}
		if err := dfs.AppendRouted(ctx, dst, k, rec); err != nil {
			t.Fatal(err)
		}
	}
	job, err := NewJob("split",
		[]lake.Pointer{{File: "src", NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(rows)}},
		RangeDeref{File: "src"},
		FuncRef{Label: "to-dst", Fn: func(tc *TaskCtx, rec lake.Record) ([]lake.Pointer, error) {
			return []lake.Pointer{{File: "dst", PartKey: rec.Key, Key: rec.Key}}, nil
		}},
		LookupDeref{File: "dst"},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Only dst is faulted, so the opening range scan cannot consume the
	// fault: the first *batched* lookup does, fails, and splits.
	if err := c.SetTransientFault("dst", 0, errors.New("flaky disk"), 1); err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSMPE(ctx, job, c, c, Options{Threads: 1, MaxBatch: 8, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != rows {
		t.Fatalf("count = %d, want %d", res.Count, rows)
	}
	if got := res.Trace.Stages[2].BatchSplits; got != 1 {
		t.Fatalf("batch splits = %d, want 1", got)
	}
}

// TestSeedRangeDegenerate: an inverted range selects nothing; it must yield
// an empty seed list, not seeds over a silently swapped range.
func TestSeedRangeDegenerate(t *testing.T) {
	fx := newFixture(t, 2, 4, 1)
	seeds, err := SeedRange(fx.cluster, fPriceIdx, keycodec.Int64(100), keycodec.Int64(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 0 {
		t.Fatalf("degenerate range produced %d seeds: %v", len(seeds), seeds)
	}
	// A proper range still seeds.
	seeds, err = SeedRange(fx.cluster, fPriceIdx, keycodec.Int64(10), keycodec.Int64(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("valid range produced no seeds")
	}
}

func TestMaxBatchNegativeRejected(t *testing.T) {
	fx := newFixture(t, 1, 2, 1)
	job := fx.joinJob(0, 1000, false)
	if _, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{MaxBatch: -1}); err == nil {
		t.Fatal("negative MaxBatch accepted")
	}
}
