package core

import (
	"testing"

	"lakeharbor/internal/trace"
)

// TestLatencyHistogramsPopulated: every executed task must land exactly one
// observation in the task-latency and queue-wait histograms, every
// dereference task one in the batch-size histogram, and the simulated
// storage path must record I/O round-trips.
func TestLatencyHistogramsPopulated(t *testing.T) {
	fx := newFixture(t, 3, 12, 2)
	res, err := Execute(fx.ctx, fx.joinJob(0, 1000, false), fx.cluster, fx.cluster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	var tasks, batches int64
	for _, st := range tr.Stages {
		tasks += st.Tasks
		batches += st.Batches
	}
	if got := tr.Lat.Task.Count; got != tasks {
		t.Errorf("task latency observations = %d, want %d (one per task)", got, tasks)
	}
	if got := tr.Lat.QueueWait.Count; got != tasks {
		t.Errorf("queue wait observations = %d, want %d (one per task)", got, tasks)
	}
	if got := tr.Lat.Batch.Count; got != batches {
		t.Errorf("batch size observations = %d, want %d (one per deref task)", got, batches)
	}
	var localIO, remoteIO int64
	for _, n := range tr.Nodes {
		localIO += n.LocalIO
		remoteIO += n.RemoteIO
	}
	if got := tr.Lat.IOLocal.Count + tr.Lat.IORemote.Count; got != localIO+remoteIO {
		t.Errorf("I/O latency observations = %d, want %d (one per storage access)",
			got, localIO+remoteIO)
	}
	if tr.Lat.Task.Max <= 0 {
		t.Error("task latency max not positive")
	}
}

// TestTimelineCapturedByDefault: Execute records timeline events without
// any opt-in, and the log contains task and enqueue events for every stage.
func TestTimelineCapturedByDefault(t *testing.T) {
	fx := newFixture(t, 2, 8, 2)
	res, err := Execute(fx.ctx, fx.joinJob(0, 1000, false), fx.cluster, fx.cluster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if len(tr.Events) == 0 {
		t.Fatal("no timeline events captured by default")
	}
	var taskEvents int64
	kinds := map[trace.EventKind]int{}
	for _, ev := range tr.Events {
		kinds[ev.Kind]++
		if ev.Kind == trace.EvTask {
			taskEvents++
			if ev.Dur < 0 || ev.Wait < 0 {
				t.Fatalf("task event with negative duration or wait: %+v", ev)
			}
			if ev.Stage < 0 || ev.Stage >= len(tr.Stages) {
				t.Fatalf("task event with out-of-range stage: %+v", ev)
			}
		}
	}
	var tasks int64
	for _, st := range tr.Stages {
		tasks += st.Tasks
	}
	if tr.EventsDropped == 0 && taskEvents != tasks {
		t.Errorf("task events = %d, want %d (ring did not overflow)", taskEvents, tasks)
	}
	if kinds[trace.EvEnqueue] == 0 {
		t.Error("no enqueue events captured")
	}
	// The captured log must yield a critical path.
	if segs := trace.CriticalPath(tr.Events, 3); len(segs) == 0 {
		t.Error("critical path empty on a non-trivial job")
	}
}

// TestEventCapControls: EventCap < 0 disables capture entirely; a tiny
// positive cap bounds memory and reports the overflow.
func TestEventCapControls(t *testing.T) {
	fx := newFixture(t, 2, 10, 2)

	res, err := Execute(fx.ctx, fx.joinJob(0, 1000, false), fx.cluster, fx.cluster, Options{EventCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Events) != 0 || res.Trace.EventsDropped != 0 {
		t.Fatalf("EventCap -1 still captured %d events (%d dropped)",
			len(res.Trace.Events), res.Trace.EventsDropped)
	}
	// Latency histograms stay on even with the timeline off.
	if res.Trace.Lat.Task.Count == 0 {
		t.Error("task latency histogram empty with timeline disabled")
	}

	res, err = Execute(fx.ctx, fx.joinJob(0, 1000, false), fx.cluster, fx.cluster, Options{EventCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Events) > 4 {
		t.Fatalf("EventCap 4 retained %d events", len(res.Trace.Events))
	}
	if res.Trace.EventsDropped == 0 {
		t.Error("tiny cap on a multi-stage job must report dropped events")
	}
}
