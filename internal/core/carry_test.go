package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// carryFixture: "users" (id → "id|group"), "groups" (gid → "gid|name"),
// "owners" (name → "name|tier") — a 3-way chain exercising CarryRecord,
// CarryComposite, Combine, and cross-branch filters.
func carryFixture(t testing.TB) (*dfs.Cluster, context.Context) {
	t.Helper()
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	users, err := c.CreateFile("users", dfs.Btree, 4, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := c.CreateFile("groups", dfs.Btree, 4, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	owners, err := c.CreateFile("owners", dfs.Btree, 4, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		k := keycodec.Int64(i)
		if err := dfs.AppendRouted(ctx, users, k, lake.Record{Key: k, Data: []byte(fmt.Sprintf("%d|%d", i, i%3))}); err != nil {
			t.Fatal(err)
		}
	}
	for g := int64(0); g < 3; g++ {
		k := keycodec.Int64(g)
		if err := dfs.AppendRouted(ctx, groups, k, lake.Record{Key: k, Data: []byte(fmt.Sprintf("%d|group-%d", g, g))}); err != nil {
			t.Fatal(err)
		}
		ok := keycodec.String(fmt.Sprintf("group-%d", g))
		if err := dfs.AppendRouted(ctx, owners, ok, lake.Record{Key: ok, Data: []byte(fmt.Sprintf("group-%d|tier%d", g, g%2))}); err != nil {
			t.Fatal(err)
		}
	}
	return c, ctx
}

func interpCSV(names ...string) Interpreter {
	return func(rec lake.Record) (Fields, error) {
		parts := strings.Split(string(rec.Data), "|")
		if len(parts) != len(names) {
			return nil, fmt.Errorf("record %q has %d fields, want %d", rec.Data, len(parts), len(names))
		}
		f := Fields{}
		for i, n := range names {
			f[n] = parts[i]
		}
		return f, nil
	}
}

func encInt(v string) (lake.Key, error) {
	var n int64
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return "", err
	}
	return keycodec.Int64(n), nil
}

func encStr(v string) (lake.Key, error) { return keycodec.String(v), nil }

func TestThreeWayCarriedJoin(t *testing.T) {
	c, ctx := carryFixture(t)
	iUser := interpCSV("uid", "gid")
	iGroup := interpCSV("gid", "gname")
	iOwner := interpCSV("gname", "tier")
	iUG := Composite(iUser, iGroup)
	iAll := Composite(iUser, iGroup, iOwner)

	seeds := []lake.Pointer{{File: "users", NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(1 << 40)}}
	job, err := NewJob("3way", seeds,
		RangeDeref{File: "users"},
		FieldRef{Target: "groups", Interp: iUser, Field: "gid", Encode: encInt, Carry: CarryRecord},
		LookupDeref{File: "groups", Combine: true},
		FieldRef{Target: "owners", Interp: iUG, Field: "gname", Encode: encStr, Carry: CarryComposite},
		LookupDeref{File: "owners", Combine: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSMPE(ctx, job, c, c, Options{KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 30 {
		t.Fatalf("3-way join produced %d rows, want 30", res.Count)
	}
	for _, r := range res.Records {
		f, err := iAll(r)
		if err != nil {
			t.Fatal(err)
		}
		// Join keys consistent end to end.
		if f["gname"] != "group-"+f["gid"] {
			t.Fatalf("row joins wrong group: %v", f)
		}
		var uid int64
		fmt.Sscanf(f["uid"], "%d", &uid)
		var gid int64
		fmt.Sscanf(f["gid"], "%d", &gid)
		if uid%3 != gid {
			t.Fatalf("user %d joined to group %d", uid, gid)
		}
	}
}

func TestCrossBranchFilterOnComposite(t *testing.T) {
	c, ctx := carryFixture(t)
	iUser := interpCSV("uid", "gid")
	iGroup := interpCSV("gid", "gname")
	iUG := Composite(iUser, iGroup)

	// Keep only rows whose user id modulo 3 is 1 — a predicate needing
	// the user segment, evaluated at the group dereference.
	filter := func(rec lake.Record) (bool, error) {
		f, err := iUG(rec)
		if err != nil {
			return false, err
		}
		var uid int64
		fmt.Sscanf(f["uid"], "%d", &uid)
		return uid%3 == 1, nil
	}
	seeds := []lake.Pointer{{File: "users", NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(1 << 40)}}
	job, err := NewJob("filtered", seeds,
		RangeDeref{File: "users"},
		FieldRef{Target: "groups", Interp: iUser, Field: "gid", Encode: encInt, Carry: CarryRecord},
		LookupDeref{File: "groups", Combine: true, Filter: filter},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSMPE(ctx, job, c, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 10 {
		t.Fatalf("cross-branch filter kept %d rows, want 10", res.Count)
	}
}

func TestEntryRefFromComposite(t *testing.T) {
	// Build an index file whose entries point at "groups", probe it with
	// carried context, and verify the context survives the index hop.
	c, ctx := carryFixture(t)
	idx, err := c.CreateFile("group_idx", dfs.Btree, 2, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	for g := int64(0); g < 3; g++ {
		gk := keycodec.Int64(g)
		if err := dfs.AppendRouted(ctx, idx, gk, lake.Record{Key: gk, Data: lake.EncodeIndexEntry(gk, gk)}); err != nil {
			t.Fatal(err)
		}
	}
	iUser := interpCSV("uid", "gid")
	iAll := Composite(iUser, interpCSV("gid", "gname"))

	seeds := []lake.Pointer{{File: "users", NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(1 << 40)}}
	job, err := NewJob("via-index", seeds,
		RangeDeref{File: "users"},
		FieldRef{Target: "group_idx", Interp: iUser, Field: "gid", Encode: encInt, Carry: CarryRecord},
		LookupDeref{File: "group_idx", Combine: true},
		EntryRef{Target: "groups", FromComposite: true},
		LookupDeref{File: "groups", Combine: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSMPE(ctx, job, c, c, Options{KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 30 {
		t.Fatalf("index-hop join produced %d rows, want 30", res.Count)
	}
	for _, r := range res.Records {
		f, err := iAll(r)
		if err != nil {
			t.Fatalf("carried context lost across index hop: %v", err)
		}
		if f["uid"] == "" || f["gname"] == "" {
			t.Fatalf("incomplete composite: %v", f)
		}
	}
}

func TestEntryRefFromCompositeErrors(t *testing.T) {
	r := EntryRef{Target: "t", FromComposite: true}
	if _, err := r.Ref(nil, lake.Record{Data: []byte("not segments")}); err == nil {
		t.Error("non-segment input accepted")
	}
	if _, err := r.Ref(nil, lake.Record{Data: nil}); err == nil {
		t.Error("empty composite accepted")
	}
	// A valid segment list whose last segment is not an index entry.
	bad := lake.EncodeSegments([]byte("ctx"), []byte("not an entry"))
	if _, err := r.Ref(nil, lake.Record{Data: bad}); err == nil {
		t.Error("non-entry last segment accepted")
	}
}

func TestCompositeInterpreterErrors(t *testing.T) {
	i := Composite(interpCSV("a"), interpCSV("b"))
	// Wrong segment count.
	one := lake.EncodeSegments([]byte("x"))
	if _, err := i(lake.Record{Data: one}); err == nil {
		t.Error("segment-count mismatch accepted")
	}
	// Inner interpreter failure propagates.
	two := lake.EncodeSegments([]byte("x|y"), []byte("z"))
	if _, err := i(lake.Record{Data: two}); err == nil {
		t.Error("inner interpreter error not propagated")
	}
	// Not a segment list at all.
	if _, err := i(lake.Record{Data: []byte("raw")}); err == nil {
		t.Error("raw record accepted by composite interpreter")
	}
}

func TestFieldRefErrors(t *testing.T) {
	iUser := interpCSV("uid", "gid")
	r := FieldRef{Target: "t", Interp: iUser, Field: "missing", Encode: encInt}
	if _, err := r.Ref(nil, lake.Record{Data: []byte("1|2")}); err == nil {
		t.Error("missing field accepted")
	}
	r2 := FieldRef{Target: "t", Interp: iUser, Field: "gid", Encode: func(string) (lake.Key, error) {
		return "", fmt.Errorf("no encode")
	}}
	if _, err := r2.Ref(nil, lake.Record{Data: []byte("1|2")}); err == nil {
		t.Error("encode error not propagated")
	}
	r3 := FieldRef{Target: "t", Interp: iUser, Field: "gid", Encode: encInt}
	if _, err := r3.Ref(nil, lake.Record{Data: []byte("malformed")}); err == nil {
		t.Error("interpreter error not propagated")
	}
}
