package core

import "sync"

// queueReleaseCap is the backing-array size above which a drained queue
// frees its storage instead of reusing it. A fan-out spike early in a job
// would otherwise pin a spike-sized array for the whole run.
const queueReleaseCap = 1024

// taskQueue is the per-node input queue of Algorithm 1: unbounded and
// multi-producer/multi-consumer. Unboundedness matters — workers enqueue to
// their own node's queue while processing, so a bounded queue could
// deadlock the pool.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []task
	head   int
	closed bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues t, reporting whether it was accepted and the resulting
// queue depth. Pushing to a closed queue is rejected (the job is done or
// failed; stragglers are dropped) — callers must then roll back any
// accounting they did for the task, or the in-flight counter leaks.
func (q *taskQueue) push(t task) (ok bool, depth int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, 0
	}
	q.items = append(q.items, t)
	q.cond.Signal()
	return true, len(q.items) - q.head
}

// pop dequeues the next task, blocking while the queue is open and empty.
// ok is false once the queue is closed and drained.
func (q *taskQueue) pop() (t task, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head >= len(q.items) {
		return task{}, false
	}
	t = q.items[q.head]
	q.items[q.head] = task{} // drop the reference for GC
	q.head++
	if q.head == len(q.items) {
		if cap(q.items) > queueReleaseCap {
			q.items = nil // release a spike-sized backing array
		} else {
			q.items = q.items[:0]
		}
		q.head = 0
	}
	return t, true
}

// close wakes all waiters; pending items remain poppable until drained.
func (q *taskQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// len reports the current queue depth (pending, unpopped tasks).
func (q *taskQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}
