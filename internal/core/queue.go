package core

import "sync"

// taskQueue is the per-node input queue of Algorithm 1: unbounded and
// multi-producer/multi-consumer. Unboundedness matters — workers enqueue to
// their own node's queue while processing, so a bounded queue could
// deadlock the pool.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []task
	head   int
	closed bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues t. Pushing to a closed queue is a no-op (the job is done or
// failed; stragglers are dropped).
func (q *taskQueue) push(t task) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, t)
	q.cond.Signal()
}

// pop dequeues the next task, blocking while the queue is open and empty.
// ok is false once the queue is closed and drained.
func (q *taskQueue) pop() (t task, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head >= len(q.items) {
		return task{}, false
	}
	t = q.items[q.head]
	q.items[q.head] = task{} // drop the reference for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return t, true
}

// close wakes all waiters; pending items remain poppable until drained.
func (q *taskQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
