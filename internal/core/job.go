// Package core implements ReDe, the prototype data processing engine of the
// LakeHarbor paradigm (paper §III).
//
// A data processing job is a list of alternating dereference and reference
// functions (the Reference-Dereference abstraction, §III-B): a Dereferencer
// takes a pointer — or a pair of pointers bounding a range — and produces
// records; a Referencer takes a record, interprets it with schema-on-read,
// and produces pointers to other records. The order of the functions encodes
// the data dependencies of the job, and the functions themselves expose the
// structural information of the data. The executor (smpe.go) exploits both
// to decompose the job into fine-grained tasks at run time and execute them
// with massive parallelism (SMPE, §III-C and Algorithm 1).
package core

import (
	"context"
	"fmt"
	"strings"

	"lakeharbor/internal/lake"
)

// Fields is the result of interpreting a raw record with schema-on-read: a
// named view over the payload, valid only for the current call.
type Fields map[string]string

// Interpreter interprets a raw record with schema-on-read (paper §III-B).
// Interpreters are the only job-specific code users normally write.
type Interpreter func(rec lake.Record) (Fields, error)

// Filter decides whether a record emitted by a Dereferencer flows to the
// next stage. It interprets the record with schema-on-read itself; a nil
// Filter passes everything.
type Filter func(rec lake.Record) (bool, error)

// TaskCtx is the execution context handed to every Referencer and
// Dereferencer invocation: which node is executing, how storage is laid
// out, and the context to use for I/O (already bound to the node so the
// storage layer can price local vs. remote accesses).
type TaskCtx struct {
	// Ctx is the I/O context, bound to the executing node.
	Ctx context.Context
	// Node is the executing compute node's id.
	Node int
	// Nodes is the cluster size.
	Nodes int
	// Catalog resolves file names.
	Catalog lake.Catalog
	// Owner returns the node hosting a partition.
	Owner func(partition int) int
}

// LocalPartitions returns the partitions of f hosted on the executing node.
// Dereferencing a broadcast pointer means applying it to exactly these.
func (tc *TaskCtx) LocalPartitions(f lake.File) []int {
	var out []int
	for p := 0; p < f.NumPartitions(); p++ {
		if tc.Owner(p) == tc.Node {
			out = append(out, p)
		}
	}
	return out
}

// Referencer takes a record and produces a set of pointers to other records
// that the record is associated with.
type Referencer interface {
	// Name identifies the function in errors and stats.
	Name() string
	// Ref produces the pointers the record refers to.
	Ref(tc *TaskCtx, rec lake.Record) ([]lake.Pointer, error)
}

// Dereferencer takes a pointer (or a range of pointers) and produces the set
// of records it points to. Every Dereferencer manages either a File or a
// BtreeFile.
type Dereferencer interface {
	// Name identifies the function in errors and stats.
	Name() string
	// Deref produces the records ptr points to. A pointer without
	// partition information has been broadcast: the function must apply
	// it to the executing node's local partitions only.
	Deref(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error)
}

// BatchDereferencer is optionally implemented by Dereferencers that can
// serve a whole pointer batch in one storage round trip. The executor
// coalesces routed point pointers per (stage, file, partition) up to
// Options.MaxBatch and hands the batch here; a Dereferencer that does not
// implement it is simply invoked once per pointer, so batching is purely an
// optimization, never a semantic change.
type BatchDereferencer interface {
	Dereferencer
	// DerefBatch produces, for each pointer, the records it points to,
	// aligned with ptrs (out[i] belongs to ptrs[i]). An error fails the
	// whole batch; the executor then splits the batch and retries the
	// pointers individually, so a partial failure never loses work.
	DerefBatch(tc *TaskCtx, ptrs []lake.Pointer) ([][]lake.Record, error)
}

// Stage is one step of a job: exactly one of Ref or Deref is set.
type Stage struct {
	Ref   Referencer
	Deref Dereferencer
}

// name returns the stage's function name for diagnostics.
func (s Stage) name() string {
	if s.Deref != nil {
		return s.Deref.Name()
	}
	if s.Ref != nil {
		return s.Ref.Name()
	}
	return "<empty>"
}

// Job is a data processing job: seed pointers fed into the first
// Dereferencer, and the list of functions they flow through. Records emitted
// by the final Dereferencer are the job's result.
type Job struct {
	// Name labels the job in errors and stats.
	Name string
	// Stages alternate Dereferencer, Referencer, Dereferencer, ...,
	// starting and ending with a Dereferencer (Fig. 3 of the paper).
	Stages []Stage
	// Seeds are the initial pointers. A seed without partition information
	// is broadcast: every node applies it to its local partitions — this
	// is how a job opens with a range over a local secondary index.
	Seeds []lake.Pointer
}

// Validate checks the structural rules of Reference-Dereference: stages
// alternate starting and ending with a Dereferencer, and there is at least
// one stage and one seed.
func (j *Job) Validate() error {
	if len(j.Stages) == 0 {
		return fmt.Errorf("core: job %q has no stages", j.Name)
	}
	if len(j.Seeds) == 0 {
		return fmt.Errorf("core: job %q has no seed pointers", j.Name)
	}
	for i, s := range j.Stages {
		if (s.Ref == nil) == (s.Deref == nil) {
			return fmt.Errorf("core: job %q stage %d must set exactly one of Ref or Deref", j.Name, i)
		}
		wantDeref := i%2 == 0
		if wantDeref && s.Deref == nil {
			return fmt.Errorf("core: job %q stage %d (%s) must be a Dereferencer", j.Name, i, s.name())
		}
		if !wantDeref && s.Ref == nil {
			return fmt.Errorf("core: job %q stage %d (%s) must be a Referencer", j.Name, i, s.name())
		}
	}
	if last := len(j.Stages) - 1; j.Stages[last].Deref == nil {
		return fmt.Errorf("core: job %q must end with a Dereferencer", j.Name)
	}
	return nil
}

// NewJob composes a job from an alternating function list, mirroring the
// paper's job-definition code (Fig. 4): pass Dereferencers and Referencers
// in execution order.
func NewJob(name string, seeds []lake.Pointer, funcs ...any) (*Job, error) {
	j := &Job{Name: name, Seeds: seeds}
	for i, f := range funcs {
		switch f := f.(type) {
		case Dereferencer:
			j.Stages = append(j.Stages, Stage{Deref: f})
		case Referencer:
			j.Stages = append(j.Stages, Stage{Ref: f})
		default:
			return nil, fmt.Errorf("core: job %q: argument %d is %T, want Referencer or Dereferencer", name, i, f)
		}
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}

// Describe renders the job's stage chain for humans, one line per stage:
//
//	stage 0: Dereferencer RangeDeref(orders_date_idx)
//	stage 1: Referencer   EntryRef(orders)
//	...
func (j *Job) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %q (%d seeds)\n", j.Name, len(j.Seeds))
	for i, s := range j.Stages {
		kind := "Referencer  "
		if s.Deref != nil {
			kind = "Dereferencer"
		}
		fmt.Fprintf(&b, "  stage %d: %s %s\n", i, kind, s.name())
	}
	return b.String()
}
