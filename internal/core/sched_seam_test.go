package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSched is an in-package stand-in for internal/sched (which core cannot
// import — sched imports core). It runs every submitted task on its own
// goroutine and records admissions so the executor's scheduler seam can be
// tested in isolation: admission errors surface before any task runs, tasks
// flow through Submit, Finish joins them, and the nil path stays untouched.
type fakeSched struct {
	mu       sync.Mutex
	rejectAs error // when set, StartJob fails with this
	started  []string
	finished atomic.Int64
	tasks    atomic.Int64
}

func (f *fakeSched) StartJob(tenant string) (SchedJob, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rejectAs != nil {
		return nil, f.rejectAs
	}
	f.started = append(f.started, tenant)
	return &fakeJob{s: f}, nil
}

type fakeJob struct {
	s  *fakeSched
	wg sync.WaitGroup
}

func (j *fakeJob) Submit(run func(worker int)) (int, error) {
	j.s.tasks.Add(1)
	j.wg.Add(1)
	go func() {
		defer j.wg.Done()
		run(0)
	}()
	return 1, nil
}

func (j *fakeJob) Finish() {
	j.wg.Wait()
	j.s.finished.Add(1)
}

// TestSchedulerSeamEquivalence runs the same join once on the historical
// per-job pool and once through a scheduler, and requires identical answers,
// tenant attribution in the trace, and every task routed via Submit.
func TestSchedulerSeamEquivalence(t *testing.T) {
	fx := newFixture(t, 3, 30, 3)
	job := fx.joinJob(50, 250, false)

	base, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 8, MaxBatch: 4, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}

	fs := &fakeSched{}
	res, err := ExecuteSMPE(fx.ctx, fx.joinJob(50, 250, false), fx.cluster, fx.cluster,
		Options{MaxBatch: 4, KeepRecords: true, Tenant: "acme", Scheduler: fs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != base.Count {
		t.Fatalf("scheduler path count %d != pool path count %d", res.Count, base.Count)
	}
	if err := checkNoLeak(res); err != nil {
		t.Fatal(err)
	}
	if got := fs.started; len(got) != 1 || got[0] != "acme" {
		t.Fatalf("admissions %v, want exactly [acme]", got)
	}
	if fs.finished.Load() != 1 {
		t.Fatalf("job finished %d times, want 1", fs.finished.Load())
	}
	if fs.tasks.Load() == 0 {
		t.Fatal("no tasks flowed through the scheduler Submit path")
	}
	if res.Trace.Tenant != "acme" {
		t.Fatalf("trace tenant %q, want %q", res.Trace.Tenant, "acme")
	}
	if base.Trace.Tenant != "" {
		t.Fatalf("untenanted run leaked tenant %q into trace", base.Trace.Tenant)
	}
}

// TestSchedulerSeamValidation pins the option contract: a scheduler without
// a tenant is a config error, and an admission rejection comes back as the
// job error with the scheduler's cause preserved — no tasks run first.
func TestSchedulerSeamValidation(t *testing.T) {
	fx := newFixture(t, 2, 10, 2)
	job := fx.joinJob(0, 100, false)

	_, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Scheduler: &fakeSched{}})
	if err == nil {
		t.Fatal("Scheduler without Tenant must be rejected")
	}

	cause := errors.New("tenant over quota")
	fs := &fakeSched{rejectAs: cause}
	_, err = ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Tenant: "acme", Scheduler: fs})
	if !errors.Is(err, cause) {
		t.Fatalf("admission rejection: got %v, want wrap of %v", err, cause)
	}
	if fs.tasks.Load() != 0 {
		t.Fatalf("%d tasks ran despite admission rejection", fs.tasks.Load())
	}
}

// errSubmitJob fails every Submit; the executor must roll back its
// accounting and fail the job rather than hang waiting for a task that was
// never enqueued.
type errSubmitJob struct{ fakeJob }

func (j *errSubmitJob) Submit(func(worker int)) (int, error) {
	return 0, fmt.Errorf("queue tore")
}

type errSubmitSched struct{ fakeSched }

func (f *errSubmitSched) StartJob(string) (SchedJob, error) {
	return &errSubmitJob{fakeJob{s: &f.fakeSched}}, nil
}

func TestSchedulerSeamSubmitFailure(t *testing.T) {
	fx := newFixture(t, 2, 10, 2)
	job := fx.joinJob(0, 100, false)
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Tenant: "acme", Scheduler: &errSubmitSched{}})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("executor hung after Submit failure instead of failing the job")
	}
	if err == nil {
		t.Fatal("job must fail when the scheduler rejects a task submit")
	}
}
