package core

import (
	"fmt"

	"lakeharbor/internal/lake"
)

// This file holds the system-provided Referencers and Dereferencers.
// Following the paper (§III-B "Usability"), functions that implement the
// standard indexing schemes are pre-defined and reusable: in most jobs users
// only pick functions from here, supply an Interpreter per file for
// schema-on-read, optionally a Filter per Dereferencer, and compose the
// list. The functions are per-file, not per-job.

// RangeDeref is the paper's Dereferencer-0: it takes a pointer carrying a
// key range and reads all matching entries from a B-tree file. A broadcast
// pointer (the usual case for a range over a *local* secondary index, which
// is not partitioned by the indexed key) is applied to the node's local
// partitions; a routed pointer is applied to the partition its partition key
// maps to.
type RangeDeref struct {
	// File is the catalog name of the BtreeFile to read.
	File string
	// Filter optionally drops records before they flow on. When Combine
	// is set, the filter sees the combined record and can therefore
	// evaluate predicates across the partial join result.
	Filter Filter
	// Combine appends each fetched record to the pointer's carried
	// context, emitting composite (segment-list) records for multi-way
	// joins.
	Combine bool
}

// Name implements Dereferencer.
func (d RangeDeref) Name() string { return "RangeDeref(" + d.File + ")" }

// Deref implements Dereferencer.
func (d RangeDeref) Deref(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error) {
	f, err := tc.Catalog.File(d.File)
	if err != nil {
		return nil, err
	}
	bf, ok := f.(lake.BtreeFile)
	if !ok {
		return nil, lake.AsPermanent(fmt.Errorf("core: %s: file is not a BtreeFile", d.Name()))
	}
	lo, hi := ptr.Key, ptr.EndKey
	if hi == "" {
		hi = lo
	}
	var out []lake.Record
	for _, p := range targetPartitions(tc, f, ptr) {
		recs, err := bf.LookupRange(tc.Ctx, p, lo, hi)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", d.Name(), err)
		}
		out = append(out, recs...)
	}
	out = combine(d.Combine, ptr, out)
	return applyFilter(d.Filter, out)
}

// LookupDeref is the paper's Dereferencer-1/-2/-3: it takes a pointer and
// fetches the records stored under its key, routing through the file's
// partitioner (possibly a cross-partition, remote fetch). A broadcast
// pointer probes the node's local partitions — that is how a broadcast join
// probes every partition.
type LookupDeref struct {
	// File is the catalog name of the File to read.
	File string
	// Filter optionally drops records before they flow on. When Combine
	// is set, the filter sees the combined record.
	Filter Filter
	// Combine appends each fetched record to the pointer's carried
	// context (see RangeDeref.Combine).
	Combine bool
}

// Name implements Dereferencer.
func (d LookupDeref) Name() string { return "LookupDeref(" + d.File + ")" }

// Deref implements Dereferencer.
func (d LookupDeref) Deref(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error) {
	f, err := tc.Catalog.File(d.File)
	if err != nil {
		return nil, err
	}
	var out []lake.Record
	for _, p := range targetPartitions(tc, f, ptr) {
		recs, err := f.Lookup(tc.Ctx, p, ptr.Key)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", d.Name(), err)
		}
		out = append(out, recs...)
	}
	out = combine(d.Combine, ptr, out)
	return applyFilter(d.Filter, out)
}

// DerefBatch implements BatchDereferencer: the batch's keys reach storage
// through lake.LookupBatch — one admission per target partition instead of
// one per pointer. The executor coalesces per partition, so a batch
// normally hits exactly one; pointers a hash change re-routed mid-batch
// still resolve correctly because grouping re-derives each pointer's
// partition here. Broadcast pointers (which address many partitions) fall
// back to the per-pointer path.
func (d LookupDeref) DerefBatch(tc *TaskCtx, ptrs []lake.Pointer) ([][]lake.Record, error) {
	f, err := tc.Catalog.File(d.File)
	if err != nil {
		return nil, err
	}
	out := make([][]lake.Record, len(ptrs))
	groups := make(map[int][]int) // partition -> indices into ptrs
	for i, ptr := range ptrs {
		part, broadcast := lake.ResolvePartition(f, ptr)
		if broadcast {
			recs, err := d.Deref(tc, ptr)
			if err != nil {
				return nil, err
			}
			out[i] = recs
			continue
		}
		groups[part] = append(groups[part], i)
	}
	for part, idxs := range groups {
		keys := make([]lake.Key, len(idxs))
		for j, i := range idxs {
			keys[j] = ptrs[i].Key
		}
		res, err := lake.LookupBatch(tc.Ctx, f, part, keys)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", d.Name(), err)
		}
		for j, i := range idxs {
			recs := combine(d.Combine, ptrs[i], res[j])
			if recs, err = applyFilter(d.Filter, recs); err != nil {
				return nil, err
			}
			out[i] = recs
		}
	}
	return out, nil
}

// combine merges the pointer's carried context with each fetched record,
// producing composite segment-list records (multi-way join state).
func combine(enabled bool, ptr lake.Pointer, recs []lake.Record) []lake.Record {
	if !enabled {
		return recs
	}
	for i, r := range recs {
		recs[i] = lake.Record{Key: r.Key, Data: lake.AppendSegment(ptr.Carry, r.Data)}
	}
	return recs
}

// ScanDeref reads every record of the file's local partitions. It exists
// for jobs that have no structure to start from (pure schema-on-read over
// raw data) and for the structure builder. Its pointers are normally
// broadcast seeds.
type ScanDeref struct {
	// File is the catalog name of the File to scan.
	File string
	// Filter optionally drops records during the scan.
	Filter Filter
}

// Name implements Dereferencer.
func (d ScanDeref) Name() string { return "ScanDeref(" + d.File + ")" }

// Deref implements Dereferencer.
func (d ScanDeref) Deref(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error) {
	f, err := tc.Catalog.File(d.File)
	if err != nil {
		return nil, err
	}
	var out []lake.Record
	for _, p := range targetPartitions(tc, f, ptr) {
		err := f.Scan(tc.Ctx, p, func(r lake.Record) error {
			if d.Filter != nil {
				ok, err := d.Filter(r)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			out = append(out, r)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", d.Name(), err)
		}
	}
	return out, nil
}

// targetPartitions resolves which partitions of f a pointer addresses on
// this node: its routed partition, or the node's local partitions for a
// broadcast pointer.
func targetPartitions(tc *TaskCtx, f lake.File, ptr lake.Pointer) []int {
	if part, broadcast := lake.ResolvePartition(f, ptr); !broadcast {
		return []int{part}
	}
	return tc.LocalPartitions(f)
}

func applyFilter(filter Filter, recs []lake.Record) ([]lake.Record, error) {
	if filter == nil {
		return recs, nil
	}
	out := recs[:0]
	for _, r := range recs {
		ok, err := filter(r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// EntryRef is the paper's Referencer-1/-3: it takes an index entry produced
// by an index Dereferencer, decodes the embedded (partition key, primary
// key) pair, and emits a pointer to the indexed record in Target. It is the
// half of an index probe that turns index entries into record fetches —
// cross-partition when the index and the file are partitioned by different
// keys (a global index).
//
// In a multi-way join the index entry may arrive combined with carried
// context (the index Dereferencer ran with Combine). Setting FromComposite
// makes EntryRef treat its input as a segment list whose *last* segment is
// the index entry, decode that, and carry the earlier segments onward, so
// the partial join result survives the index hop.
type EntryRef struct {
	// Target is the catalog name of the file the index entries point into.
	Target string
	// FromComposite marks the input as {carried context ⊕ index entry}.
	FromComposite bool
}

// Name implements Referencer.
func (r EntryRef) Name() string { return "EntryRef(" + r.Target + ")" }

// Ref implements Referencer.
func (r EntryRef) Ref(tc *TaskCtx, rec lake.Record) ([]lake.Pointer, error) {
	entry := rec.Data
	var carry []byte
	if r.FromComposite {
		segs, err := lake.DecodeSegments(rec.Data)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", r.Name(), err)
		}
		if len(segs) == 0 {
			return nil, fmt.Errorf("core: %s: empty composite record", r.Name())
		}
		entry = segs[len(segs)-1]
		carry = lake.EncodeSegments(segs[:len(segs)-1]...)
	}
	partKey, pk, err := lake.DecodeIndexEntry(entry)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", r.Name(), err)
	}
	return []lake.Pointer{{File: r.Target, PartKey: partKey, Key: pk, Carry: carry}}, nil
}

// CarryMode selects what context a Referencer attaches to the pointers it
// emits, enabling multi-way joins (composite records).
type CarryMode int

const (
	// CarryNone attaches no context (simple index probes).
	CarryNone CarryMode = iota
	// CarryRecord attaches the input record's payload as a one-segment
	// context: the next combining Dereferencer produces {this ⊕ fetched}.
	CarryRecord
	// CarryComposite treats the input record as an existing segment list
	// (it came from a combining Dereferencer) and carries it as-is.
	CarryComposite
)

// FieldRef is the paper's Referencer-2: it interprets a record with
// schema-on-read (via the user's Interpreter), extracts one field, encodes
// it with Encode, and emits a pointer keyed by that value into Target —
// typically a global index partitioned by the same value. With Broadcast
// set the pointer carries no partition information, so the executor
// replicates it to all partitions (a broadcast join, §III-B
// "Expressibility"). With Prefix set the pointer covers the whole key range
// prefixed by the value (fetching all lineitems of one order). Carry
// selects the multi-way-join context to attach.
type FieldRef struct {
	// Target is the catalog name of the file or index to point into.
	Target string
	// Interp interprets the record (schema-on-read).
	Interp Interpreter
	// Field names the field to extract from the interpreted record.
	Field string
	// Encode converts the field's string value to an ordered key. It is
	// required; workloads provide per-column encoders.
	Encode func(value string) (lake.Key, error)
	// Broadcast, if set, emits the pointer without partition information.
	Broadcast bool
	// Prefix, if set, emits a range pointer covering every key that
	// begins with the encoded value.
	Prefix bool
	// Carry selects the context attached for multi-way joins.
	Carry CarryMode
}

// Name implements Referencer.
func (r FieldRef) Name() string { return "FieldRef(" + r.Field + "→" + r.Target + ")" }

// Ref implements Referencer.
func (r FieldRef) Ref(tc *TaskCtx, rec lake.Record) ([]lake.Pointer, error) {
	fields, err := r.Interp(rec)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", r.Name(), err)
	}
	v, ok := fields[r.Field]
	if !ok {
		return nil, fmt.Errorf("core: %s: record has no field %q", r.Name(), r.Field)
	}
	k, err := r.Encode(v)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", r.Name(), err)
	}
	p := lake.Pointer{File: r.Target, Key: k}
	if r.Prefix {
		p.Key, p.EndKey = lake.PrefixRange(k)
	}
	if r.Broadcast {
		p.NoPart = true
	} else {
		p.PartKey = k
	}
	switch r.Carry {
	case CarryRecord:
		p.Carry = lake.EncodeSegments(rec.Data)
	case CarryComposite:
		p.Carry = rec.Data
	}
	return []lake.Pointer{p}, nil
}

// Composite builds an Interpreter over composite (segment-list) records: it
// splits the payload and applies one interpreter per segment, merging the
// field maps. Field names must be distinct across segments (they are in
// TPC-H and the claims schema).
func Composite(interps ...Interpreter) Interpreter {
	return func(rec lake.Record) (Fields, error) {
		segs, err := lake.DecodeSegments(rec.Data)
		if err != nil {
			return nil, err
		}
		if len(segs) != len(interps) {
			return nil, fmt.Errorf("core: composite record has %d segments, interpreter expects %d", len(segs), len(interps))
		}
		out := Fields{}
		for i, seg := range segs {
			f, err := interps[i](lake.Record{Key: rec.Key, Data: seg})
			if err != nil {
				return nil, err
			}
			for k, v := range f {
				out[k] = v
			}
		}
		return out, nil
	}
}

// FuncRef adapts an arbitrary function to the Referencer interface, for
// referencers too specialized to be pre-defined.
type FuncRef struct {
	// Label names the function in errors and stats.
	Label string
	// Fn produces the pointers.
	Fn func(tc *TaskCtx, rec lake.Record) ([]lake.Pointer, error)
}

// Name implements Referencer.
func (r FuncRef) Name() string {
	if r.Label != "" {
		return r.Label
	}
	return "FuncRef"
}

// Ref implements Referencer.
func (r FuncRef) Ref(tc *TaskCtx, rec lake.Record) ([]lake.Pointer, error) { return r.Fn(tc, rec) }

// FuncDeref adapts an arbitrary function to the Dereferencer interface.
type FuncDeref struct {
	// Label names the function in errors and stats.
	Label string
	// Fn produces the records.
	Fn func(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error)
}

// Name implements Dereferencer.
func (d FuncDeref) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "FuncDeref"
}

// Deref implements Dereferencer.
func (d FuncDeref) Deref(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error) { return d.Fn(tc, ptr) }
