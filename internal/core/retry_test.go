package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/trace"
)

// retryHarness builds the minimal executor state derefWithRetry needs: the
// retry options and a one-stage trace to observe AddRetry through.
func retryHarness(opts Options) *executor {
	return &executor{
		opts: opts,
		tr:   trace.New("retry-test", []trace.StageInfo{{Name: "d", Kind: "deref"}}, 1),
	}
}

// TestRetryBackoffCancellationPrompt checks a job context cancelled while
// derefWithRetry sleeps its backoff aborts the sleep: the call must return
// in far less than one backoff period, without counting a retry and without
// re-invoking the Dereferencer.
func TestRetryBackoffCancellationPrompt(t *testing.T) {
	e := retryHarness(Options{MaxRetries: 5, RetryBackoff: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	tc := &TaskCtx{Ctx: ctx}
	var attempts atomic.Int64
	d := FuncDeref{Label: "always-fails", Fn: func(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error) {
		attempts.Add(1)
		return nil, fmt.Errorf("transient glitch")
	}}

	type res struct {
		recs []lake.Record
		err  error
	}
	done := make(chan res, 1)
	start := time.Now()
	go func() {
		recs, err := e.derefWithRetry(tc, 0, d, lake.Pointer{File: "f", Key: "k"})
		done <- res{recs, err}
	}()
	// Let the call reach its hour-long backoff sleep, then cancel the job.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if took := time.Since(start); took > 5*time.Second {
			t.Errorf("cancelled mid-backoff, returned after %v (want << backoff)", took)
		}
		if r.err == nil {
			t.Error("cancelled retry returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("derefWithRetry still sleeping its backoff after cancellation")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("dereferencer invoked %d times, want 1 (no re-attempt after cancel)", got)
	}
	if got := e.tr.Snapshot(nil).Stages[0].Retries; got != 0 {
		t.Errorf("aborted backoff counted %d retries, want 0", got)
	}
}

// TestRetryNotCountedForPermanentErrors checks AddRetry never fires for a
// permanent error: the first invocation fails fast and the trace stays at
// zero retries (a retry counter that ticks on unretryable errors would make
// the oracle's retries<=MaxRetries*ptrs invariant meaningless).
func TestRetryNotCountedForPermanentErrors(t *testing.T) {
	e := retryHarness(Options{MaxRetries: 5})
	tc := &TaskCtx{Ctx: context.Background()}
	var attempts atomic.Int64
	d := FuncDeref{Label: "perm", Fn: func(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error) {
		attempts.Add(1)
		return nil, lake.AsPermanent(fmt.Errorf("bad pointer"))
	}}
	if _, err := e.derefWithRetry(tc, 0, d, lake.Pointer{File: "f", Key: "k"}); err == nil {
		t.Fatal("permanent error did not surface")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("dereferencer invoked %d times, want 1", got)
	}
	if got := e.tr.Snapshot(nil).Stages[0].Retries; got != 0 {
		t.Errorf("permanent failure counted %d retries, want 0", got)
	}
}

// TestRetryCountsOnlyHealableAttempts pins the mixed case: transient
// failures count one retry per re-invocation, and the run stops counting
// the moment the error turns permanent.
func TestRetryCountsOnlyHealableAttempts(t *testing.T) {
	e := retryHarness(Options{MaxRetries: 10})
	tc := &TaskCtx{Ctx: context.Background()}
	var attempts atomic.Int64
	d := FuncDeref{Label: "mixed", Fn: func(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error) {
		if attempts.Add(1) < 3 {
			return nil, fmt.Errorf("transient glitch")
		}
		return nil, lake.AsPermanent(fmt.Errorf("now it's gone for good"))
	}}
	if _, err := e.derefWithRetry(tc, 0, d, lake.Pointer{File: "f", Key: "k"}); err == nil {
		t.Fatal("permanent error did not surface")
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("dereferencer invoked %d times, want 3 (2 transient + 1 permanent)", got)
	}
	if got := e.tr.Snapshot(nil).Stages[0].Retries; got != 2 {
		t.Errorf("trace counted %d retries, want 2", got)
	}
}

// TestSeedSentinelPreventsEarlyCompletion is the regression test for the
// seeding race the chaos work surfaced: with many independent seeds, a
// first seed fully processed before the second is dispatched used to drive
// the in-flight counter to zero, declare the job complete, and silently
// drop the remaining seeds' work. All seeds must contribute to the result.
func TestSeedSentinelPreventsEarlyCompletion(t *testing.T) {
	fx := newFixture(t, 1, 64, 1)
	var seeds []lake.Pointer
	for i := int64(0); i < 64; i++ {
		k := keycodec.Int64(i)
		seeds = append(seeds, lake.Pointer{File: fPart, PartKey: k, Key: k})
	}
	job, err := NewJob("all-parts", seeds, LookupDeref{File: fPart})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 20; run++ {
		res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 64 {
			t.Fatalf("run %d: count = %d, want 64 (seeds dropped by early completion)", run, res.Count)
		}
	}
}
