package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// TestConcurrentJobsSharedCluster runs many distinct SMPE jobs concurrently
// against one shared cluster — the multi-tenant shape the executor must
// survive (run with -race in CI's stress job). Each goroutine runs a
// different job (different price range, routed vs broadcast join, point
// selection), checks its own answer against the analytic oracle, and relies
// on Execute's built-in task-accounting check: any in-flight leak fails
// that job with an explicit error rather than hanging or passing silently.
func TestConcurrentJobsSharedCluster(t *testing.T) {
	fx := newFixture(t, 3, 40, 3)
	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := runDistinctJob(fx, w); err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// runDistinctJob gives worker w its own job over the shared fixture and
// verifies the answer.
func runDistinctJob(fx *testFixture, w int) error {
	ctx := context.Background()
	opts := Options{Threads: 16 + w, MaxBatch: 1 + w%4, KeepRecords: true}
	switch w % 3 {
	case 0: // join over a worker-specific price range, routed
		lo, hi := int64(w*10), int64(w*10+100)
		res, err := ExecuteSMPE(ctx, fx.joinJob(lo, hi, false), fx.cluster, fx.cluster, opts)
		if err != nil {
			return err
		}
		if want := fx.expectedJoinCount(lo, hi); res.Count != want {
			return fmt.Errorf("routed join [%d,%d]: count %d, want %d", lo, hi, res.Count, want)
		}
		return checkNoLeak(res)
	case 1: // the same join shape, broadcast
		lo, hi := int64(w*5), int64(w*5+150)
		res, err := ExecuteSMPE(ctx, fx.joinJob(lo, hi, true), fx.cluster, fx.cluster, opts)
		if err != nil {
			return err
		}
		if want := fx.expectedJoinCount(lo, hi); res.Count != want {
			return fmt.Errorf("broadcast join [%d,%d]: count %d, want %d", lo, hi, res.Count, want)
		}
		return checkNoLeak(res)
	default: // point selection of worker-specific parts
		keys := []lake.Pointer{}
		for i := w; i < fx.nParts; i += 7 {
			k := keycodec.Int64(int64(i))
			keys = append(keys, lake.Pointer{File: fPart, PartKey: k, Key: k})
		}
		job, err := NewJob(fmt.Sprintf("points-%d", w), keys, LookupDeref{File: fPart})
		if err != nil {
			return err
		}
		res, err := ExecuteSMPE(ctx, job, fx.cluster, fx.cluster, opts)
		if err != nil {
			return err
		}
		if want := int64(len(keys)); res.Count != want {
			return fmt.Errorf("points: count %d, want %d", res.Count, want)
		}
		return checkNoLeak(res)
	}
}

// checkNoLeak asserts the per-job accounting invariant from the outside
// too: every pointer a referencer emitted was dereferenced downstream.
func checkNoLeak(res *Result) error {
	tr := res.Trace
	for i := 2; i < len(tr.Stages); i += 2 {
		emitted, arrived := tr.Stages[i-1].Emits, tr.Stages[i].BatchedPtrs
		if arrived < emitted { // broadcast stages may legitimately multiply
			return fmt.Errorf("stage %d dereferenced %d of %d emitted pointers (leak)", i, arrived, emitted)
		}
	}
	return nil
}
