package core

import "sync"

// Failpoints deliberately break the executor at named internal sites. They
// exist for exactly one purpose: the differential oracle (internal/oracle)
// proves it can catch executor bugs by arming a failpoint, running a
// scenario, and requiring a divergence report. Production code never arms
// them; the zero state is "all off" and checking an unarmed failpoint is a
// single RLock on an empty map.
//
// Known failpoints:
//
//   - FailpointDropTailFlush: the task-scoped pointer batcher skips its
//     end-of-task flush, silently dropping every pointer still buffered
//     below MaxBatch — the exact bug class batching introduced (a stranded
//     tail) and the oracle must detect as missing rows.
const FailpointDropTailFlush = "drop-tail-flush"

var (
	failpointMu sync.RWMutex
	failpoints  map[string]bool
)

// SetFailpoint arms (on=true) or clears a named failpoint. Tests that arm a
// failpoint must clear it before finishing; t.Cleanup is the natural place.
func SetFailpoint(name string, on bool) {
	failpointMu.Lock()
	defer failpointMu.Unlock()
	if failpoints == nil {
		failpoints = make(map[string]bool)
	}
	if on {
		failpoints[name] = true
	} else {
		delete(failpoints, name)
	}
}

// failpoint reports whether the named failpoint is armed.
func failpoint(name string) bool {
	failpointMu.RLock()
	defer failpointMu.RUnlock()
	return len(failpoints) != 0 && failpoints[name]
}
