package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakeharbor/internal/lake"
	"lakeharbor/internal/trace"
)

// Topology abstracts the compute/storage layout the executor runs on; dfs's
// Cluster implements it. Keeping it an interface preserves the separation of
// compute and storage (§III-A).
type Topology interface {
	// NumNodes returns the number of compute nodes.
	NumNodes() int
	// OwnerNode returns the node hosting a partition.
	OwnerNode(partition int) int
	// Bind returns a context whose storage accesses are attributed to the
	// given node (local vs remote pricing).
	Bind(ctx context.Context, node int) context.Context
}

// Options tunes the executor.
type Options struct {
	// Threads is the per-node worker-pool size. The paper's default is
	// 1000 (§III-C); 0 selects that default. 1 disables SMPE: each node
	// processes its queue sequentially, leaving only the partitioned
	// parallelism of the cluster — the paper's "ReDe (w/o SMPE)" arm.
	// Negative values are rejected (a pool that can never spawn would
	// deadlock the job).
	Threads int
	// InlineReferencers, when true (the paper's default), runs Referencers
	// on the worker that produced their input record instead of
	// dispatching them to the pool: referencers are CPU-light and
	// switching threads for them only costs scheduling (§III-C).
	InlineReferencers bool
	// KeepRecords retains the records emitted by the final stage in
	// Result.Records. Counting alone is cheaper for large results.
	KeepRecords bool
	// Each, if non-nil, is called for every result record, on the emitting
	// node's workers. It must be safe for concurrent use.
	Each func(node int, rec lake.Record) error
	// MaxBatch bounds how many routed point pointers a worker coalesces
	// into one dereference task. While a worker processes a task, the
	// pointers it emits are buffered per (stage, file, partition); a
	// buffer is flushed as a single batched task when it reaches MaxBatch
	// and, unconditionally, when the producing task ends — a pointer never
	// waits on future work, so the tail of a job cannot strand. Batches
	// reach storage through BatchDereferencer (one gate admission per
	// batch) when the stage's Dereferencer implements it, and fall back to
	// per-pointer invocation when it does not. 0 and 1 disable coalescing
	// (the pre-batching behaviour: every pointer is its own task);
	// ExecuteSMPE defaults 0 to DefaultMaxBatch. Negative values are
	// rejected. Broadcast and range pointers are never coalesced.
	MaxBatch int
	// MaxRetries re-executes a failed Dereferencer invocation up to this
	// many additional times before failing the job — transient storage
	// faults (a flaky disk, a brief partition) then never surface.
	// Permanent errors (see Permanent) are never retried: an unknown file
	// or a bad pointer repeats identically on every attempt. Referencers
	// are pure CPU and are not retried.
	MaxRetries int
	// RetryBackoff is slept between retries (0 = immediate).
	RetryBackoff time.Duration
	// SlowTaskThreshold flags tasks slower than this in the execution
	// trace (per-stage SlowTasks counts); 0 disables flagging.
	SlowTaskThreshold time.Duration
	// EventCap bounds the job's timeline event ring (task begin/end,
	// enqueue, retry, and batch-split events with node + stage
	// attribution, exportable as a Chrome trace via Result.Trace). 0
	// selects trace.DefaultEventCap; a negative value disables timeline
	// capture entirely. When a job records more events than the cap, the
	// oldest are overwritten and the snapshot reports the dropped count,
	// so event memory stays bounded regardless of job size.
	EventCap int
	// TraceLog, if non-nil, receives one log line per slow task. It must
	// be safe for concurrent use (log.Printf is).
	TraceLog func(format string, args ...any)
	// Tenant names the principal the job runs on behalf of. It is stamped
	// on the execution trace (so every dispatch, retry, and batch the job
	// records is attributable) and identifies the job to Scheduler when
	// one is set. Empty means "untenanted" and is only valid without a
	// Scheduler: a shared scheduler cannot account anonymous work.
	Tenant string
	// Scheduler, when non-nil, dispatches the job's tasks onto a shared,
	// cluster-wide worker pool with weighted-fair queuing across tenants
	// (internal/sched) instead of growing this job's own per-node pools.
	// Threads is then ignored: worker capacity belongs to the scheduler,
	// which enforces one cluster-wide ceiling no matter how many jobs run
	// concurrently — the per-job DefaultThreads composes badly (N jobs
	// would otherwise spawn N×1000 goroutines). Admission (tenant quotas,
	// load shedding) happens before any task is enqueued; an over-quota
	// or overloaded submission fails the job up front with the
	// scheduler's admission error. nil keeps the historical per-job pool
	// path byte-for-byte.
	Scheduler TaskScheduler
}

// TaskScheduler admits jobs to a shared multi-tenant worker pool. It is the
// executor's seam to internal/sched (same pattern as dfs.NodeTransport): the
// executor only needs admission and task submission, so the interface lives
// here and the scheduler implements it, keeping core free of a dependency on
// the scheduling layer.
type TaskScheduler interface {
	// StartJob admission-checks one job for the tenant and, when admitted,
	// returns the handle its tasks are submitted through. A rejection
	// (unknown tenant, zero weight, over job quota, overload shed) is an
	// error here — before a single task exists — never a hang.
	StartJob(tenant string) (SchedJob, error)
}

// SchedJob is one admitted job's submission handle.
type SchedJob interface {
	// Submit schedules run on the shared pool; run is invoked exactly once
	// with the executing worker's id. depth is the tenant's queue depth
	// after the enqueue (for queue telemetry). Submit never blocks on
	// execution — queued work waits in the tenant's fair queue.
	Submit(run func(worker int)) (depth int, err error)
	// Finish marks the job complete: it waits for every submitted task to
	// run, then releases the job's admission slot. It must be called
	// exactly once.
	Finish()
}

// DefaultThreads is the paper's default per-node thread-pool size.
const DefaultThreads = 1000

// DefaultMaxBatch is the pointer-batch size ExecuteSMPE uses when
// Options.MaxBatch is zero. 64 keeps a batch within one B-tree leaf's worth
// of keys while amortizing most of the per-admission cost.
const DefaultMaxBatch = 64

func (o Options) withDefaults() (Options, error) {
	if o.Threads < 0 {
		return o, fmt.Errorf("Options.Threads must be >= 0, got %d", o.Threads)
	}
	if o.MaxBatch < 0 {
		return o, fmt.Errorf("Options.MaxBatch must be >= 0, got %d", o.MaxBatch)
	}
	if o.Threads == 0 {
		o.Threads = DefaultThreads
	}
	if o.Scheduler != nil && o.Tenant == "" {
		return o, fmt.Errorf("Options.Tenant is required when Options.Scheduler is set")
	}
	return o, nil
}

// Result reports a job execution.
type Result struct {
	// Count is the number of records emitted by the final stage.
	Count int64
	// Records holds the emitted records if Options.KeepRecords was set.
	Records []lake.Record
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// StageTasks counts the tasks executed per stage (referencer stages
	// stay zero when referencers run inline).
	StageTasks []int64
	// StageEmits counts the outputs each stage produced: records for
	// Dereferencer stages, pointers for Referencer stages (counted even
	// when referencers run inline).
	StageEmits []int64
	// Trace is the job's execution trace: per-stage spans (tasks, emits,
	// retries, errors, busy/wall time), per-node queue high-water marks,
	// workers spawned, and local/remote I/O attribution.
	Trace *trace.Snapshot
}

// task is one unit of work in a node's input queue: a batch of pointers
// destined for a Dereferencer stage (coalesced up to Options.MaxBatch; often
// a single pointer), or (when referencers are not inlined) a record destined
// for a Referencer stage.
type task struct {
	stage int
	isRec bool
	ptrs  []lake.Pointer
	rec   lake.Record
	// enq is the unix-nano time the task was dispatched onto a queue; the
	// span from enq to TaskBegin is the task's queue wait.
	enq int64
}

// weight is the task's contribution to the executor's in-flight counter:
// one unit per pointer, so splitting or coalescing batches never changes
// the total outstanding weight of the same pointers.
func (t task) weight() int64 {
	if t.isRec || len(t.ptrs) == 0 {
		return 1
	}
	return int64(len(t.ptrs))
}

// Permanent reports whether err can never heal by retrying: a catalog miss,
// a bad partition index, a file of the wrong kind, or anything the storage
// layers marked with lake.AsPermanent. derefWithRetry consults it to fail
// fast instead of re-executing a doomed invocation MaxRetries times.
func Permanent(err error) bool { return lake.IsPermanent(err) }

// traceInfo derives the trace's stage descriptors from the job.
func traceInfo(job *Job) []trace.StageInfo {
	infos := make([]trace.StageInfo, len(job.Stages))
	for i, s := range job.Stages {
		kind := "ref"
		if s.Deref != nil {
			kind = "deref"
		}
		infos[i] = trace.StageInfo{Name: s.name(), Kind: kind}
	}
	return infos
}

// Execute runs the job with scalable massively parallel execution
// (Algorithm 1): the job is distributed to every node, each node
// dynamically decomposes its share into fine-grained tasks, and a per-node
// worker pool executes them with up to Options.Threads-way parallelism.
func Execute(ctx context.Context, job *Job, catalog lake.Catalog, topo Topology, opts Options) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("core: job %q: %w", job.Name, err)
	}
	// Resolve every seed's file before any task is enqueued: a typo'd file
	// name must fail the job up front, not silently mis-route the seed.
	for _, seed := range job.Seeds {
		if _, err := catalog.File(seed.File); err != nil {
			return nil, fmt.Errorf("core: job %q: unknown file %q in seed: %w", job.Name, seed.File, err)
		}
	}
	// Admission to the shared scheduler happens before any task exists:
	// an over-quota tenant or an overloaded cluster rejects the whole job
	// here, cheaply, instead of shedding half-dispatched work.
	var sjob SchedJob
	if opts.Scheduler != nil {
		var err error
		if sjob, err = opts.Scheduler.StartJob(opts.Tenant); err != nil {
			return nil, fmt.Errorf("core: job %q: admission: %w", job.Name, err)
		}
	}
	start := time.Now()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	e := &executor{
		job:     job,
		catalog: catalog,
		topo:    topo,
		opts:    opts,
		sjob:    sjob,
		cancel:  cancel,
		done:    make(chan struct{}),
		tr:      trace.New(job.Name, traceInfo(job), topo.NumNodes()),
	}
	if opts.Tenant != "" {
		e.tr.SetTenant(opts.Tenant)
	}
	if opts.SlowTaskThreshold > 0 {
		e.tr.SetSlowTask(opts.SlowTaskThreshold, opts.TraceLog)
	}
	if opts.EventCap >= 0 {
		e.tr.EnableEvents(opts.EventCap) // 0 selects trace.DefaultEventCap
	}
	n := topo.NumNodes()
	e.results = make([]nodeResult, n)
	e.tcs = make([]*TaskCtx, n)
	for node := 0; node < n; node++ {
		e.tcs[node] = &TaskCtx{
			Ctx:     trace.WithIO(topo.Bind(ctx, node), e.tr.NodeIO(node)),
			Node:    node,
			Nodes:   n,
			Catalog: catalog,
			Owner:   topo.OwnerNode,
		}
	}

	// Register the per-node pools ("distributing the data processing job
	// to all the computing nodes"). Workers are spawned on demand up to
	// Options.Threads per node — the paper reuses a standing pool; here
	// each job grows its own, so a tiny job does not pay for a thousand
	// idle workers. Under a shared scheduler the job owns no pools at
	// all: its tasks ride the scheduler's cluster-wide workers.
	var wg sync.WaitGroup
	if sjob == nil {
		e.queues = make([]*taskQueue, n)
		e.pools = make([]*nodePool, n)
		for node := 0; node < n; node++ {
			e.queues[node] = newTaskQueue()
			e.pools[node] = &nodePool{max: int32(opts.Threads), wg: &wg, tc: e.tcs[node], e: e, node: node}
		}
	}

	// Seed the initial stage. Seeds without partition information are
	// broadcast; routed seeds start on the node owning their partition.
	// Enqueueing spawns the first workers. A sentinel in-flight unit is held
	// across the loop: without it, a first seed processed to completion
	// before the second is dispatched would drive the in-flight counter to
	// zero, declare the job done, and drop every later seed's work at queue
	// close — a wrong (partial) result with no error.
	e.inflight.Add(1)
	for _, seed := range job.Seeds {
		e.enqueuePointer(0 /* fromNode: seeds route to their owner */, 0, seed, true)
	}
	e.finishN(1)

	// Wait for global completion or failure, then stop the pools.
	select {
	case <-e.done:
	case <-ctx.Done():
		e.fail(ctx.Err())
	}
	if sjob != nil {
		// Shared-scheduler path: wait for every submitted task to run
		// (cancelled jobs drain cheaply through the ctx check in process),
		// then release the job's admission slot.
		sjob.Finish()
	} else {
		for _, q := range e.queues {
			q.close()
		}
		wg.Wait()
	}

	if err := e.firstErr(); err != nil {
		return nil, fmt.Errorf("core: job %q: %w", job.Name, err)
	}
	// Task-accounting invariant ("inflight returns to zero"): on a
	// successful run every dispatched pointer and record has been balanced
	// by a finishN. A residue here means tasks leaked or were double
	// counted — a wrong-completion bug the chaos oracle checks for — so a
	// successful-looking job with a residue must fail loudly instead.
	if n := e.inflight.Load(); n != 0 {
		return nil, fmt.Errorf("core: job %q: task accounting leak: %d in-flight after completion", job.Name, n)
	}

	snap := e.tr.Snapshot(nil)
	res := &Result{
		Elapsed:    time.Since(start),
		StageTasks: make([]int64, len(job.Stages)),
		StageEmits: make([]int64, len(job.Stages)),
		Trace:      snap,
	}
	for i, st := range snap.Stages {
		res.StageTasks[i] = st.Tasks
		res.StageEmits[i] = st.Emits
	}
	for i := range e.results {
		res.Count += e.results[i].count
		if opts.KeepRecords {
			res.Records = append(res.Records, e.results[i].records...)
		}
	}
	return res, nil
}

// executor holds the shared state of one Execute call.
type executor struct {
	job     *Job
	catalog lake.Catalog
	topo    Topology
	opts    Options
	cancel  context.CancelFunc
	tr      *trace.Trace

	queues   []*taskQueue
	pools    []*nodePool
	tcs      []*TaskCtx
	sjob     SchedJob // non-nil on the shared-scheduler path
	inflight atomic.Int64
	results  []nodeResult

	done     chan struct{}
	doneOnce sync.Once
	errOnce  sync.Once
	errMu    sync.Mutex
	err      error
}

// nodePool grows a node's worker set on demand, capped at max workers.
type nodePool struct {
	e       *executor
	tc      *TaskCtx
	wg      *sync.WaitGroup
	node    int
	max     int32
	spawned atomic.Int32
	idle    atomic.Int32
}

// maybeSpawn starts a new worker when no worker is idle and the pool has
// headroom. It is called after every enqueue, so pools grow exactly as fast
// as the queue outpaces them.
func (p *nodePool) maybeSpawn() {
	for {
		if p.idle.Load() > 0 {
			return
		}
		n := p.spawned.Load()
		if n >= p.max {
			return
		}
		if !p.spawned.CompareAndSwap(n, n+1) {
			continue // raced with another spawner; re-check
		}
		p.e.tr.WorkerSpawned(p.node)
		p.wg.Add(1)
		go p.worker(int(n)) // spawn order doubles as the worker's timeline track id
		return
	}
}

func (p *nodePool) worker(id int) {
	defer p.wg.Done()
	q := p.e.queues[p.node]
	for {
		p.idle.Add(1)
		t, ok := q.pop()
		p.idle.Add(-1)
		if !ok {
			return
		}
		p.e.process(p.tc, t, id)
		p.e.finishN(t.weight())
	}
}

// nodeResult is padded per-node result state to avoid cross-node
// contention on the hot collect path.
type nodeResult struct {
	mu      sync.Mutex
	count   int64
	records []lake.Record
	_       [32]byte // reduce false sharing between adjacent nodes
}

func (e *executor) fail(err error) {
	if err == nil {
		return
	}
	e.errOnce.Do(func() {
		e.errMu.Lock()
		e.err = err
		e.errMu.Unlock()
		e.cancel()
		e.doneOnce.Do(func() { close(e.done) })
	})
}

func (e *executor) firstErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// enqueuePointer implements Algorithm 1's enqueue and broadcast rules
// (lines 28–33, 47–51) for a single pointer. fromNode is the node whose
// queue routed pointers land on; seeds instead land on the owner of their
// target partition.
func (e *executor) enqueuePointer(fromNode, stage int, ptr lake.Pointer, isSeed bool) {
	if ptr.NoPart {
		// BROADCAST: enqueue to every node; each node will treat it as
		// addressing its local partitions. Ranges over e.tcs (one per
		// node on both paths) — e.queues is nil under a shared scheduler.
		for node := range e.tcs {
			e.dispatch(node, task{stage: stage, ptrs: []lake.Pointer{ptr}})
		}
		return
	}
	node := fromNode
	if isSeed {
		f, err := e.catalog.File(ptr.File)
		if err != nil {
			// Seeds are pre-validated in Execute; a miss here means the
			// file was dropped mid-flight. Fail loudly, never mis-route.
			e.fail(fmt.Errorf("unknown file %q in seed: %w", ptr.File, err))
			return
		}
		part, _ := lake.ResolvePartition(f, ptr)
		node = e.topo.OwnerNode(part)
	}
	e.dispatch(node, task{stage: stage, ptrs: []lake.Pointer{ptr}})
}

func (e *executor) enqueueRecord(node, stage int, rec lake.Record) {
	e.dispatch(node, task{stage: stage, isRec: true, rec: rec})
}

// dispatch pushes one task onto a node's queue with balanced in-flight
// accounting: the task's weight is added before the push (a worker may pop
// and finish the task before push even returns), and rolled back if the
// queue rejected the task because the job already completed or failed.
func (e *executor) dispatch(node int, t task) {
	w := t.weight()
	t.enq = time.Now().UnixNano()
	e.inflight.Add(w)
	if e.sjob != nil {
		e.dispatchShared(node, t, w)
		return
	}
	ok, depth := e.queues[node].push(t)
	if !ok {
		e.finishN(w) // dropped on a closed queue; roll the counter back
		return
	}
	e.tr.Enqueue(node, depth)
	e.tr.Mark(trace.EvEnqueue, t.stage, node, depth)
	e.pools[node].maybeSpawn()
}

// dispatchShared submits one task to the shared scheduler instead of a
// per-node queue. The closure carries the producing node's TaskCtx, so
// storage attribution (local vs remote I/O, trace spans) is identical to the
// pool path; the worker id is the scheduler's, making timeline tracks show
// which shared worker ran the task. The reported depth is the tenant's fair
// queue, recorded against the producing node's high-water telemetry.
func (e *executor) dispatchShared(node int, t task, w int64) {
	tc := e.tcs[node]
	depth, err := e.sjob.Submit(func(worker int) {
		e.process(tc, t, worker)
		e.finishN(t.weight())
	})
	if err != nil {
		e.finishN(w) // never enqueued; roll the counter back
		e.fail(err)
		return
	}
	e.tr.Enqueue(node, depth)
	e.tr.Mark(trace.EvEnqueue, t.stage, node, depth)
}

// finishN decrements the in-flight counter after a task (and everything it
// enqueued) is accounted for; global completion is the counter reaching
// zero ("until all tasks are finished").
func (e *executor) finishN(n int64) {
	if e.inflight.Add(-n) == 0 {
		e.doneOnce.Do(func() { close(e.done) })
	}
}

// batchKey groups coalescible pointers: same stage, same target file, same
// routed partition. One flushed buffer therefore maps to exactly one
// partition probe — one gate admission — at the storage layer.
type batchKey struct {
	stage     int
	file      string
	partition int
}

// batcher coalesces the pointers emitted while ONE task is processed. It is
// worker-local (no locking) and is always flushed before the owning task
// finishes, so buffered pointers are covered by the producing task's
// in-flight weight and can never strand: completion is only detected after
// the flush has dispatched them. Pointers that cannot batch — broadcasts,
// ranges, catalog misses — pass straight through as singleton tasks.
type batcher struct {
	e     *executor
	node  int
	bufs  map[batchKey][]lake.Pointer
	files map[string]lake.File // per-task cache for partition routing
}

func (e *executor) newBatcher(node int) *batcher {
	return &batcher{e: e, node: node}
}

// add routes one emitted pointer: buffered under its (stage, file,
// partition) when coalescible, dispatched immediately otherwise. A buffer
// reaching Options.MaxBatch is flushed at once.
func (b *batcher) add(stage int, ptr lake.Pointer) {
	if b.e.opts.MaxBatch <= 1 || ptr.NoPart || ptr.IsRange() {
		b.e.enqueuePointer(b.node, stage, ptr, false)
		return
	}
	f, ok := b.files[ptr.File]
	if !ok {
		var err error
		f, err = b.e.catalog.File(ptr.File)
		if err != nil {
			// Unknown file: dispatch as a singleton so the stage's
			// Dereferencer reports the error on the normal path.
			b.e.enqueuePointer(b.node, stage, ptr, false)
			return
		}
		if b.files == nil {
			b.files = make(map[string]lake.File)
		}
		b.files[ptr.File] = f
	}
	part, _ := lake.ResolvePartition(f, ptr) // never broadcast: NoPart checked above
	k := batchKey{stage: stage, file: ptr.File, partition: part}
	if b.bufs == nil {
		b.bufs = make(map[batchKey][]lake.Pointer)
	}
	b.bufs[k] = append(b.bufs[k], ptr)
	if len(b.bufs[k]) >= b.e.opts.MaxBatch {
		b.e.dispatch(b.node, task{stage: k.stage, ptrs: b.bufs[k]})
		delete(b.bufs, k)
	}
}

// flush dispatches every partial buffer. It MUST run before the producing
// task is marked finished.
func (b *batcher) flush() {
	if len(b.bufs) > 0 && failpoint(FailpointDropTailFlush) {
		// Deliberate bug for the differential oracle: strand the tail.
		for k := range b.bufs {
			delete(b.bufs, k)
		}
		return
	}
	for k, ptrs := range b.bufs {
		b.e.dispatch(b.node, task{stage: k.stage, ptrs: ptrs})
		delete(b.bufs, k)
	}
}

// process executes one task: a Dereferencer invocation on a pointer batch,
// or a Referencer invocation on a record. Referencer work is inlined after
// the producing dereference when Options.InlineReferencers is set. The
// pointers a task emits are coalesced by a task-scoped batcher that is
// flushed before process returns — i.e. before the task's weight is
// subtracted from the in-flight counter — so batching can never let the job
// complete with pointers still buffered.
func (e *executor) process(tc *TaskCtx, t task, worker int) {
	if tc.Ctx.Err() != nil {
		return // job already failed or cancelled; drain cheaply
	}
	begin := e.tr.TaskBegin(t.stage)
	var wait time.Duration
	if t.enq != 0 {
		if wait = begin.Sub(time.Unix(0, t.enq)); wait < 0 {
			wait = 0
		}
		e.tr.ObserveQueueWait(wait)
	}
	defer func() {
		dur := e.tr.TaskEnd(t.stage, begin)
		e.tr.TaskEvent(t.stage, tc.Node, worker, begin, dur, wait, len(t.ptrs))
	}()
	stage := e.job.Stages[t.stage]
	if t.isRec {
		ptrs, err := stage.Ref.Ref(tc, t.rec)
		if err != nil {
			e.tr.AddError(t.stage)
			e.fail(err)
			return
		}
		e.tr.AddEmits(t.stage, len(ptrs))
		b := e.newBatcher(tc.Node)
		for _, p := range ptrs {
			b.add(t.stage+1, p)
		}
		b.flush()
		return
	}

	e.tr.AddBatch(t.stage, len(t.ptrs))
	// Dereferences hit storage, so their context carries the RPC trace
	// identity (job, tenant, stage); remote transports forward it on the
	// wire and attribute node-side spans to this job.
	recs, err := e.derefTask(e.rpcCtx(tc, t.stage), t.stage, stage.Deref, t.ptrs)
	if err != nil {
		e.tr.AddError(t.stage)
		e.fail(err)
		return
	}
	e.tr.AddEmits(t.stage, len(recs))
	last := t.stage == len(e.job.Stages)-1
	if last {
		e.collect(tc.Node, recs)
		return
	}
	next := t.stage + 1
	if !e.opts.InlineReferencers {
		for _, r := range recs {
			e.enqueueRecord(tc.Node, next, r)
		}
		return
	}
	// Inline the next Referencer on this worker (the paper avoids thread
	// switches for CPU-light referencers).
	ref := e.job.Stages[next].Ref
	b := e.newBatcher(tc.Node)
	for _, r := range recs {
		ptrs, err := ref.Ref(tc, r)
		if err != nil {
			e.tr.AddError(next)
			e.fail(err)
			return
		}
		e.tr.AddEmits(next, len(ptrs))
		for _, p := range ptrs {
			b.add(next+1, p)
		}
	}
	b.flush()
}

// derefTask resolves a pointer batch to records. A single pointer takes the
// classic retried path; a true batch goes through the stage's
// BatchDereferencer when it has one (a single storage round trip). A failed
// batch is split: every pointer is retried individually via derefWithRetry,
// so one bad pointer costs one pointer, not the batch, and the per-pointer
// path reports the precise failing pointer.
func (e *executor) derefTask(tc *TaskCtx, stage int, d Dereferencer, ptrs []lake.Pointer) ([]lake.Record, error) {
	if len(ptrs) == 1 {
		return e.derefWithRetry(tc, stage, d, ptrs[0])
	}
	if bd, ok := d.(BatchDereferencer); ok {
		groups, err := bd.DerefBatch(tc, ptrs)
		if err == nil {
			var out []lake.Record
			for _, recs := range groups {
				out = append(out, recs...)
			}
			return out, nil
		}
		if tc.Ctx.Err() != nil {
			return nil, err // dying job: don't grind through the split
		}
		e.tr.AddBatchSplit(stage)
		e.tr.Mark(trace.EvSplit, stage, tc.Node, len(ptrs))
	}
	var out []lake.Record
	for _, p := range ptrs {
		recs, err := e.derefWithRetry(tc, stage, d, p)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// rpcCtx returns a TaskCtx whose context carries the RPC trace identity for
// one dereference task: this job's name and tenant plus the issuing stage
// (attempt 0; derefWithRetry re-stamps retries). The copy is shallow — one
// small allocation per dereference task — and the sim fast path ignores the
// value entirely.
func (e *executor) rpcCtx(tc *TaskCtx, stage int) *TaskCtx {
	out := *tc
	out.Ctx = trace.WithRPC(tc.Ctx, trace.RPCInfo{
		Job: e.job.Name, Tenant: e.opts.Tenant, Stage: stage,
	})
	return &out
}

// derefWithRetry runs a Dereferencer, retrying per Options.MaxRetries.
// Context cancellation is never retried (a dying job must die promptly),
// and neither are permanent errors (see Permanent): an unknown file or a
// bad pointer fails identically on every attempt, so backoff only delays
// the inevitable.
func (e *executor) derefWithRetry(tc *TaskCtx, stage int, d Dereferencer, ptr lake.Pointer) ([]lake.Record, error) {
	recs, err := d.Deref(tc, ptr)
	for attempt := 0; err != nil && attempt < e.opts.MaxRetries; attempt++ {
		if Permanent(err) || tc.Ctx.Err() != nil {
			return nil, err
		}
		if e.opts.RetryBackoff > 0 {
			t := time.NewTimer(e.opts.RetryBackoff)
			select {
			case <-t.C:
			case <-tc.Ctx.Done():
				t.Stop()
				return nil, err
			}
		}
		e.tr.AddRetry(stage)
		e.tr.Mark(trace.EvRetry, stage, tc.Node, 0)
		// Retries carry their attempt ordinal in the RPC trace context so
		// node-side spans distinguish first tries from re-drives.
		rtc := *tc
		rtc.Ctx = trace.WithRPCAttempt(tc.Ctx, attempt+1)
		recs, err = d.Deref(&rtc, ptr)
	}
	return recs, err
}

func (e *executor) collect(node int, recs []lake.Record) {
	if len(recs) == 0 {
		return
	}
	if e.opts.Each != nil {
		for _, r := range recs {
			if err := e.opts.Each(node, r); err != nil {
				e.fail(err)
				return
			}
		}
	}
	nr := &e.results[node]
	nr.mu.Lock()
	nr.count += int64(len(recs))
	if e.opts.KeepRecords {
		nr.records = append(nr.records, recs...)
	}
	nr.mu.Unlock()
}

// ExecuteSMPE runs the job with the paper's default massive parallelism,
// plus pointer batching at DefaultMaxBatch unless the caller chose a size.
func ExecuteSMPE(ctx context.Context, job *Job, catalog lake.Catalog, topo Topology, opts Options) (*Result, error) {
	if opts.Threads == 0 {
		opts.Threads = DefaultThreads
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	opts.InlineReferencers = true
	return Execute(ctx, job, catalog, topo, opts)
}

// ExecutePlain runs the job with SMPE disabled: structures are still used,
// but each node processes its queue with a single worker, so the only
// parallelism left is the partitioned parallelism of the cluster. This is
// the paper's "ReDe (w/o SMPE)" configuration.
func ExecutePlain(ctx context.Context, job *Job, catalog lake.Catalog, topo Topology, opts Options) (*Result, error) {
	opts.Threads = 1
	opts.InlineReferencers = true
	return Execute(ctx, job, catalog, topo, opts)
}

// SeedRange builds the seed pointers for an initial key-range dereference
// against an index file. If the index is range-partitioned by its key, one
// routed seed per overlapping partition is produced; otherwise (hash or
// unknown partitioning, e.g. a local secondary index) a single broadcast
// seed lets every node search its local partitions.
// A degenerate range (lo > hi) selects nothing and yields an empty seed
// list; callers decide whether an empty job is an error.
func SeedRange(catalog lake.Catalog, file string, lo, hi lake.Key) ([]lake.Pointer, error) {
	f, err := catalog.File(file)
	if err != nil {
		return nil, err
	}
	if lo > hi {
		return nil, nil
	}
	if rp, ok := f.Partitioner().(lake.RangePartitioner); ok {
		parts := rp.PartitionsOverlapping(lo, hi, f.NumPartitions())
		seeds := make([]lake.Pointer, 0, len(parts))
		for i, p := range parts {
			// Synthesize a partition key that routes to partition p:
			// lo itself lands on the first overlapping partition, and
			// each later partition is addressed by its lower bound.
			pk := lo
			if i > 0 {
				pk = rp.Bounds[p-1]
			}
			seeds = append(seeds, lake.Pointer{File: file, PartKey: pk, Key: lo, EndKey: hi})
		}
		return seeds, nil
	}
	return []lake.Pointer{{File: file, NoPart: true, Key: lo, EndKey: hi}}, nil
}
