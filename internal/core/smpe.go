package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakeharbor/internal/lake"
)

// Topology abstracts the compute/storage layout the executor runs on; dfs's
// Cluster implements it. Keeping it an interface preserves the separation of
// compute and storage (§III-A).
type Topology interface {
	// NumNodes returns the number of compute nodes.
	NumNodes() int
	// OwnerNode returns the node hosting a partition.
	OwnerNode(partition int) int
	// Bind returns a context whose storage accesses are attributed to the
	// given node (local vs remote pricing).
	Bind(ctx context.Context, node int) context.Context
}

// Options tunes the executor.
type Options struct {
	// Threads is the per-node worker-pool size. The paper's default is
	// 1000 (§III-C); 0 selects that default. 1 disables SMPE: each node
	// processes its queue sequentially, leaving only the partitioned
	// parallelism of the cluster — the paper's "ReDe (w/o SMPE)" arm.
	Threads int
	// InlineReferencers, when true (the paper's default), runs Referencers
	// on the worker that produced their input record instead of
	// dispatching them to the pool: referencers are CPU-light and
	// switching threads for them only costs scheduling (§III-C).
	InlineReferencers bool
	// KeepRecords retains the records emitted by the final stage in
	// Result.Records. Counting alone is cheaper for large results.
	KeepRecords bool
	// Each, if non-nil, is called for every result record, on the emitting
	// node's workers. It must be safe for concurrent use.
	Each func(node int, rec lake.Record) error
	// MaxRetries re-executes a failed Dereferencer invocation up to this
	// many additional times before failing the job — transient storage
	// faults (a flaky disk, a brief partition) then never surface.
	// Referencers are pure CPU and are not retried.
	MaxRetries int
	// RetryBackoff is slept between retries (0 = immediate).
	RetryBackoff time.Duration
}

// DefaultThreads is the paper's default per-node thread-pool size.
const DefaultThreads = 1000

func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = DefaultThreads
	}
	return o
}

// Result reports a job execution.
type Result struct {
	// Count is the number of records emitted by the final stage.
	Count int64
	// Records holds the emitted records if Options.KeepRecords was set.
	Records []lake.Record
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// StageTasks counts the tasks executed per stage (referencer stages
	// stay zero when referencers run inline).
	StageTasks []int64
	// StageEmits counts the outputs each stage produced: records for
	// Dereferencer stages, pointers for Referencer stages (counted even
	// when referencers run inline).
	StageEmits []int64
}

// task is one unit of work in a node's input queue: a pointer destined for
// a Dereferencer stage, or (when referencers are not inlined) a record
// destined for a Referencer stage.
type task struct {
	stage int
	isRec bool
	ptr   lake.Pointer
	rec   lake.Record
}

// Execute runs the job with scalable massively parallel execution
// (Algorithm 1): the job is distributed to every node, each node
// dynamically decomposes its share into fine-grained tasks, and a per-node
// worker pool executes them with up to Options.Threads-way parallelism.
func Execute(ctx context.Context, job *Job, catalog lake.Catalog, topo Topology, opts Options) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	start := time.Now()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	e := &executor{
		job:     job,
		catalog: catalog,
		topo:    topo,
		opts:    opts,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	n := topo.NumNodes()
	e.queues = make([]*taskQueue, n)
	e.results = make([]nodeResult, n)
	e.pools = make([]*nodePool, n)
	for i := range e.queues {
		e.queues[i] = newTaskQueue()
	}
	e.stageTasks = make([]atomic.Int64, len(job.Stages))
	e.stageEmits = make([]atomic.Int64, len(job.Stages))

	// Register the per-node pools ("distributing the data processing job
	// to all the computing nodes"). Workers are spawned on demand up to
	// Options.Threads per node — the paper reuses a standing pool; here
	// each job grows its own, so a tiny job does not pay for a thousand
	// idle workers.
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		tc := &TaskCtx{
			Ctx:     topo.Bind(ctx, node),
			Node:    node,
			Nodes:   n,
			Catalog: catalog,
			Owner:   topo.OwnerNode,
		}
		e.pools[node] = &nodePool{max: int32(opts.Threads), wg: &wg, tc: tc, e: e, node: node}
	}

	// Seed the initial stage. Seeds without partition information are
	// broadcast; routed seeds start on the node owning their partition.
	// Enqueueing spawns the first workers.
	for _, seed := range job.Seeds {
		e.enqueuePointer(0 /* fromNode: seeds route to their owner */, 0, seed, true)
	}

	// Wait for global completion or failure, then stop the pools.
	select {
	case <-e.done:
	case <-ctx.Done():
		e.fail(ctx.Err())
	}
	for _, q := range e.queues {
		q.close()
	}
	wg.Wait()

	if err := e.firstErr(); err != nil {
		return nil, fmt.Errorf("core: job %q: %w", job.Name, err)
	}

	res := &Result{
		Elapsed:    time.Since(start),
		StageTasks: make([]int64, len(job.Stages)),
		StageEmits: make([]int64, len(job.Stages)),
	}
	for i := range e.stageTasks {
		res.StageTasks[i] = e.stageTasks[i].Load()
		res.StageEmits[i] = e.stageEmits[i].Load()
	}
	for i := range e.results {
		res.Count += e.results[i].count
		if opts.KeepRecords {
			res.Records = append(res.Records, e.results[i].records...)
		}
	}
	return res, nil
}

// executor holds the shared state of one Execute call.
type executor struct {
	job     *Job
	catalog lake.Catalog
	topo    Topology
	opts    Options
	cancel  context.CancelFunc

	queues     []*taskQueue
	pools      []*nodePool
	inflight   atomic.Int64
	stageTasks []atomic.Int64
	stageEmits []atomic.Int64
	results    []nodeResult

	done     chan struct{}
	doneOnce sync.Once
	errOnce  sync.Once
	errMu    sync.Mutex
	err      error
}

// nodePool grows a node's worker set on demand, capped at max workers.
type nodePool struct {
	e       *executor
	tc      *TaskCtx
	wg      *sync.WaitGroup
	node    int
	max     int32
	spawned atomic.Int32
	idle    atomic.Int32
}

// maybeSpawn starts a new worker when no worker is idle and the pool has
// headroom. It is called after every enqueue, so pools grow exactly as fast
// as the queue outpaces them.
func (p *nodePool) maybeSpawn() {
	for {
		if p.idle.Load() > 0 {
			return
		}
		n := p.spawned.Load()
		if n >= p.max {
			return
		}
		if !p.spawned.CompareAndSwap(n, n+1) {
			continue // raced with another spawner; re-check
		}
		p.wg.Add(1)
		go p.worker()
		return
	}
}

func (p *nodePool) worker() {
	defer p.wg.Done()
	q := p.e.queues[p.node]
	for {
		p.idle.Add(1)
		t, ok := q.pop()
		p.idle.Add(-1)
		if !ok {
			return
		}
		p.e.process(p.tc, t)
		p.e.finish()
	}
}

// nodeResult is padded per-node result state to avoid cross-node
// contention on the hot collect path.
type nodeResult struct {
	mu      sync.Mutex
	count   int64
	records []lake.Record
	_       [32]byte // reduce false sharing between adjacent nodes
}

func (e *executor) fail(err error) {
	if err == nil {
		return
	}
	e.errOnce.Do(func() {
		e.errMu.Lock()
		e.err = err
		e.errMu.Unlock()
		e.cancel()
		e.doneOnce.Do(func() { close(e.done) })
	})
}

func (e *executor) firstErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// enqueuePointer implements Algorithm 1's enqueue and broadcast rules
// (lines 28–33, 47–51). fromNode is the node whose queue routed pointers
// land on; seeds instead land on the owner of their target partition.
func (e *executor) enqueuePointer(fromNode, stage int, ptr lake.Pointer, isSeed bool) {
	if ptr.NoPart {
		// BROADCAST: enqueue to every node's queue; each node will
		// treat it as addressing its local partitions.
		for node := range e.queues {
			e.inflight.Add(1)
			e.queues[node].push(task{stage: stage, ptr: ptr})
			e.pools[node].maybeSpawn()
		}
		return
	}
	node := fromNode
	if isSeed {
		if f, err := e.catalog.File(ptr.File); err == nil {
			part, _ := lake.ResolvePartition(f, ptr)
			node = e.topo.OwnerNode(part)
		}
	}
	e.inflight.Add(1)
	e.queues[node].push(task{stage: stage, ptr: ptr})
	e.pools[node].maybeSpawn()
}

func (e *executor) enqueueRecord(node, stage int, rec lake.Record) {
	e.inflight.Add(1)
	e.queues[node].push(task{stage: stage, isRec: true, rec: rec})
	e.pools[node].maybeSpawn()
}

// finish decrements the in-flight counter after a task (and everything it
// enqueued) is accounted for; global completion is the counter reaching
// zero ("until all tasks are finished").
func (e *executor) finish() {
	if e.inflight.Add(-1) == 0 {
		e.doneOnce.Do(func() { close(e.done) })
	}
}

// process executes one task: a Dereferencer invocation on a pointer, or a
// Referencer invocation on a record. Referencer work is inlined after the
// producing dereference when Options.InlineReferencers is set.
func (e *executor) process(tc *TaskCtx, t task) {
	if tc.Ctx.Err() != nil {
		return // job already failed or cancelled; drain cheaply
	}
	e.stageTasks[t.stage].Add(1)
	stage := e.job.Stages[t.stage]
	if t.isRec {
		ptrs, err := stage.Ref.Ref(tc, t.rec)
		if err != nil {
			e.fail(err)
			return
		}
		e.stageEmits[t.stage].Add(int64(len(ptrs)))
		for _, p := range ptrs {
			e.enqueuePointer(tc.Node, t.stage+1, p, false)
		}
		return
	}

	recs, err := e.derefWithRetry(tc, stage.Deref, t.ptr)
	if err != nil {
		e.fail(err)
		return
	}
	e.stageEmits[t.stage].Add(int64(len(recs)))
	last := t.stage == len(e.job.Stages)-1
	if last {
		e.collect(tc.Node, recs)
		return
	}
	next := t.stage + 1
	if !e.opts.InlineReferencers {
		for _, r := range recs {
			e.enqueueRecord(tc.Node, next, r)
		}
		return
	}
	// Inline the next Referencer on this worker (the paper avoids thread
	// switches for CPU-light referencers).
	ref := e.job.Stages[next].Ref
	for _, r := range recs {
		ptrs, err := ref.Ref(tc, r)
		if err != nil {
			e.fail(err)
			return
		}
		e.stageEmits[next].Add(int64(len(ptrs)))
		for _, p := range ptrs {
			e.enqueuePointer(tc.Node, next+1, p, false)
		}
	}
}

// derefWithRetry runs a Dereferencer, retrying per Options.MaxRetries.
// Context cancellation is never retried: a dying job must die promptly.
func (e *executor) derefWithRetry(tc *TaskCtx, d Dereferencer, ptr lake.Pointer) ([]lake.Record, error) {
	recs, err := d.Deref(tc, ptr)
	for attempt := 0; err != nil && attempt < e.opts.MaxRetries; attempt++ {
		if tc.Ctx.Err() != nil {
			return nil, err
		}
		if e.opts.RetryBackoff > 0 {
			t := time.NewTimer(e.opts.RetryBackoff)
			select {
			case <-t.C:
			case <-tc.Ctx.Done():
				t.Stop()
				return nil, err
			}
		}
		recs, err = d.Deref(tc, ptr)
	}
	return recs, err
}

func (e *executor) collect(node int, recs []lake.Record) {
	if len(recs) == 0 {
		return
	}
	if e.opts.Each != nil {
		for _, r := range recs {
			if err := e.opts.Each(node, r); err != nil {
				e.fail(err)
				return
			}
		}
	}
	nr := &e.results[node]
	nr.mu.Lock()
	nr.count += int64(len(recs))
	if e.opts.KeepRecords {
		nr.records = append(nr.records, recs...)
	}
	nr.mu.Unlock()
}

// ExecuteSMPE runs the job with the paper's default massive parallelism.
func ExecuteSMPE(ctx context.Context, job *Job, catalog lake.Catalog, topo Topology, opts Options) (*Result, error) {
	if opts.Threads == 0 {
		opts.Threads = DefaultThreads
	}
	opts.InlineReferencers = true
	return Execute(ctx, job, catalog, topo, opts)
}

// ExecutePlain runs the job with SMPE disabled: structures are still used,
// but each node processes its queue with a single worker, so the only
// parallelism left is the partitioned parallelism of the cluster. This is
// the paper's "ReDe (w/o SMPE)" configuration.
func ExecutePlain(ctx context.Context, job *Job, catalog lake.Catalog, topo Topology, opts Options) (*Result, error) {
	opts.Threads = 1
	opts.InlineReferencers = true
	return Execute(ctx, job, catalog, topo, opts)
}

// SeedRange builds the seed pointers for an initial key-range dereference
// against an index file. If the index is range-partitioned by its key, one
// routed seed per overlapping partition is produced; otherwise (hash or
// unknown partitioning, e.g. a local secondary index) a single broadcast
// seed lets every node search its local partitions.
func SeedRange(catalog lake.Catalog, file string, lo, hi lake.Key) ([]lake.Pointer, error) {
	f, err := catalog.File(file)
	if err != nil {
		return nil, err
	}
	if rp, ok := f.Partitioner().(lake.RangePartitioner); ok {
		parts := rp.PartitionsOverlapping(lo, hi, f.NumPartitions())
		seeds := make([]lake.Pointer, 0, len(parts))
		for i, p := range parts {
			// Synthesize a partition key that routes to partition p:
			// lo itself lands on the first overlapping partition, and
			// each later partition is addressed by its lower bound.
			pk := lo
			if i > 0 {
				pk = rp.Bounds[p-1]
			}
			seeds = append(seeds, lake.Pointer{File: file, PartKey: pk, Key: lo, EndKey: hi})
		}
		return seeds, nil
	}
	return []lake.Pointer{{File: file, NoPart: true, Key: lo, EndKey: hi}}, nil
}
