package core

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// TestNegativeThreadsRejected is the regression test for the hang: with
// Threads < 0, nodePool.maybeSpawn could never spawn (spawned >= max from
// the start), so no worker drained the queue, inflight never hit zero, and
// Execute blocked on e.done forever. It must now fail fast instead.
func TestNegativeThreadsRejected(t *testing.T) {
	fx := newFixture(t, 2, 5, 1)
	job := fx.joinJob(0, 1000, false)
	done := make(chan error, 1)
	go func() {
		_, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: -1})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Threads: -1 accepted")
		}
		if !strings.Contains(err.Error(), "Threads must be >= 0") {
			t.Errorf("error = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute hung on Threads: -1")
	}

	// The SMPE entry point must reject it too (it only rewrites 0).
	if _, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: -7}); err == nil {
		t.Fatal("ExecuteSMPE accepted negative Threads")
	}
}

// TestUnknownSeedFileFailsFast is the regression test for silent seed
// mis-routing: a typo'd seed file used to swallow the catalog error and
// route the seed to node 0, producing a wrong (usually empty) result. It
// must now fail the job before any task is enqueued.
func TestUnknownSeedFileFailsFast(t *testing.T) {
	fx := newFixture(t, 2, 5, 1)
	job := fx.joinJob(0, 1000, false)
	job.Seeds = append(job.Seeds, lake.Pointer{File: "no_such_idx", PartKey: "x", Key: "x"})
	res, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{})
	if err == nil {
		t.Fatal("typo'd seed file did not fail the job")
	}
	if !strings.Contains(err.Error(), `unknown file "no_such_idx" in seed`) {
		t.Errorf("error = %v", err)
	}
	if !errors.Is(err, lake.ErrNoSuchFile) {
		t.Errorf("error does not wrap lake.ErrNoSuchFile: %v", err)
	}
	if res != nil {
		t.Errorf("failed job returned a result: %+v", res)
	}
	// Broadcast seeds must be validated too.
	job = fx.joinJob(0, 1000, false)
	job.Seeds = []lake.Pointer{{File: "ghost", NoPart: true, Key: "a", EndKey: "z"}}
	if _, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{}); err == nil ||
		!strings.Contains(err.Error(), `unknown file "ghost" in seed`) {
		t.Errorf("broadcast seed with unknown file: err = %v", err)
	}
}

// TestFailedJobLeavesNoGoroutines runs jobs that fail mid-flight and checks
// the executor tears all its workers down before returning.
func TestFailedJobLeavesNoGoroutines(t *testing.T) {
	fx := newFixture(t, 4, 40, 3)
	boom := fmt.Errorf("mid-flight disk death")
	if err := fx.cluster.SetFault(fLine, 1, boom); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		job := fx.joinJob(0, 1000, false)
		if _, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 64}); err == nil {
			t.Fatal("faulted job succeeded")
		}
	}
	// Workers exit before Execute returns (wg.Wait), but give the runtime
	// a moment to reap anything racing its own exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after failed jobs", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPermanentErrorNotRetried checks derefWithRetry fails fast on errors
// that cannot heal, instead of re-executing MaxRetries times with backoff.
func TestPermanentErrorNotRetried(t *testing.T) {
	fx := newFixture(t, 1, 2, 1)
	for name, mkErr := range map[string]func() error{
		"marked":   func() error { return lake.AsPermanent(fmt.Errorf("bad pointer")) },
		"wrapped":  func() error { return fmt.Errorf("deref: %w", lake.AsPermanent(fmt.Errorf("bad pointer"))) },
		"no-file":  func() error { return fmt.Errorf("%w: %q", lake.ErrNoSuchFile, "gone") },
		"bad-part": func() error { return fmt.Errorf("%w: 99", lake.ErrNoSuchPartition) },
	} {
		var attempts atomic.Int64
		job, err := NewJob("perm",
			[]lake.Pointer{{File: fPart, PartKey: "k", Key: "k"}},
			FuncDeref{Label: "failing", Fn: func(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error) {
				attempts.Add(1)
				return nil, mkErr()
			}},
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{
			MaxRetries:   5,
			RetryBackoff: time.Hour, // a single retry would blow the test budget
		})
		if err == nil {
			t.Fatalf("%s: permanent error did not fail the job (res=%+v)", name, res)
		}
		if got := attempts.Load(); got != 1 {
			t.Errorf("%s: dereferencer ran %d times, want 1", name, got)
		}
	}
}

// TestTransientErrorStillRetried pins the counterpart: non-permanent errors
// keep retrying, and the retries show up in the execution trace.
func TestTransientErrorStillRetried(t *testing.T) {
	fx := newFixture(t, 1, 2, 1)
	var attempts atomic.Int64
	job, err := NewJob("transient",
		[]lake.Pointer{{File: fPart, PartKey: "k", Key: "k"}},
		FuncDeref{Label: "flaky", Fn: func(tc *TaskCtx, ptr lake.Pointer) ([]lake.Record, error) {
			if attempts.Add(1) < 3 {
				return nil, fmt.Errorf("flaky disk")
			}
			return nil, nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{MaxRetries: 5})
	if err != nil {
		t.Fatalf("transient error not healed: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("dereferencer ran %d times, want 3", got)
	}
	if got := res.Trace.TotalRetries(); got != 2 {
		t.Errorf("trace counted %d retries, want 2", got)
	}
	if got := res.Trace.Stages[0].Retries; got != 2 {
		t.Errorf("stage 0 retries = %d, want 2", got)
	}
}

// TestResultCarriesTrace checks the executor populates the execution trace
// end to end: stage names and kinds, task/emit counts matching the legacy
// counters, workers-spawned gauges bounded by the pool cap, and queue
// high-water marks.
func TestResultCarriesTrace(t *testing.T) {
	fx := newFixture(t, 2, 10, 3)
	job := fx.joinJob(0, 1000, false)
	res, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 8, InlineReferencers: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("Result.Trace is nil")
	}
	if tr.Job != job.Name || len(tr.Stages) != len(job.Stages) || len(tr.Nodes) != 2 {
		t.Fatalf("trace shape = %+v", tr)
	}
	for i, st := range tr.Stages {
		if st.Name != job.Stages[i].name() {
			t.Errorf("stage %d name = %q, want %q", i, st.Name, job.Stages[i].name())
		}
		wantKind := "ref"
		if job.Stages[i].Deref != nil {
			wantKind = "deref"
		}
		if st.Kind != wantKind {
			t.Errorf("stage %d kind = %q, want %q", i, st.Kind, wantKind)
		}
		if st.Tasks != res.StageTasks[i] || st.Emits != res.StageEmits[i] {
			t.Errorf("stage %d trace (%d tasks, %d emits) != result (%d, %d)",
				i, st.Tasks, st.Emits, res.StageTasks[i], res.StageEmits[i])
		}
	}
	var workers, highWater int64
	for _, n := range tr.Nodes {
		if n.WorkersSpawned > 8 {
			t.Errorf("node %d spawned %d workers, cap is 8", n.Node, n.WorkersSpawned)
		}
		workers += n.WorkersSpawned
		highWater += n.QueueHighWater
	}
	if workers == 0 {
		t.Error("no workers recorded")
	}
	if highWater == 0 {
		t.Error("no queue depth recorded")
	}
	if tr.TotalTasks() == 0 {
		t.Error("no tasks recorded")
	}
}

// TestQueueReleasesSpikeBacking checks a drained queue frees a spike-sized
// backing array instead of pinning it for the rest of the job.
func TestQueueReleasesSpikeBacking(t *testing.T) {
	q := newTaskQueue()
	for i := 0; i < queueReleaseCap+100; i++ {
		if ok, _ := q.push(task{stage: i}); !ok {
			t.Fatal("push on open queue rejected")
		}
	}
	for i := 0; i < queueReleaseCap+100; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	if c := cap(q.items); c != 0 {
		t.Errorf("drained spike queue retains cap %d, want 0", c)
	}
	// Small queues keep reusing their storage.
	small := newTaskQueue()
	small.push(task{})
	small.pop()
	if cap(small.items) == 0 && queueReleaseCap > 1 {
		// Single-item arrays stay; nothing to assert beyond no panic.
		t.Log("small queue released storage (allowed but unexpected)")
	}
	// After release the queue still works.
	if ok, depth := q.push(task{stage: 7}); !ok || depth != 1 {
		t.Fatalf("push after release = (%v, %d)", ok, depth)
	}
	if tk, ok := q.pop(); !ok || tk.stage != 7 {
		t.Fatalf("pop after release = (%v, %v)", tk.stage, ok)
	}
}

// TestQueuePushReportsAcceptance checks the accounting contract the
// in-flight counter depends on: accepted pushes report depth, pushes on a
// closed queue report rejection.
func TestQueuePushReportsAcceptance(t *testing.T) {
	q := newTaskQueue()
	if ok, depth := q.push(task{}); !ok || depth != 1 {
		t.Fatalf("first push = (%v, %d)", ok, depth)
	}
	if ok, depth := q.push(task{}); !ok || depth != 2 {
		t.Fatalf("second push = (%v, %d)", ok, depth)
	}
	q.close()
	if ok, _ := q.push(task{}); ok {
		t.Fatal("push on closed queue accepted")
	}
	if got := q.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
}

// TestOptionsThreadsOneStillWorks pins the documented "Threads == 1 ≡ w/o
// SMPE" edge case next to the new validation.
func TestOptionsThreadsOneStillWorks(t *testing.T) {
	fx := newFixture(t, 2, 8, 2)
	job := fx.joinJob(0, 1000, false)
	res, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 1, InlineReferencers: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := fx.expectedJoinCount(0, 1000); res.Count != want {
		t.Fatalf("count = %d, want %d", res.Count, want)
	}
	for _, n := range res.Trace.Nodes {
		if n.WorkersSpawned > 1 {
			t.Errorf("node %d spawned %d workers with Threads: 1", n.Node, n.WorkersSpawned)
		}
	}
}

// TestKeycodecSeedFixture guards the fixture helper the regressions above
// rely on: a routed seed to an existing file still executes.
func TestKeycodecSeedFixture(t *testing.T) {
	fx := newFixture(t, 2, 4, 1)
	job := fx.joinJob(0, 1000, false)
	if _, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{}); err != nil {
		t.Fatal(err)
	}
	_ = keycodec.Int64(0) // keep the import honest with the fixture's encoding
}
