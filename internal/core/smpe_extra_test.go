package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/sim"
)

func TestStageEmitsCounts(t *testing.T) {
	fx := newFixture(t, 2, 10, 3)
	job := fx.joinJob(0, 1000, false)
	res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StageEmits) != len(job.Stages) {
		t.Fatalf("StageEmits has %d entries", len(res.StageEmits))
	}
	// Stage 0 (price-index range) emits one entry per part.
	if res.StageEmits[0] != int64(fx.nParts) {
		t.Errorf("stage 0 emits = %d, want %d", res.StageEmits[0], fx.nParts)
	}
	// Referencer stage 1 emits one pointer per index entry, even inlined.
	if res.StageEmits[1] != int64(fx.nParts) {
		t.Errorf("stage 1 emits = %d, want %d", res.StageEmits[1], fx.nParts)
	}
	// Final stage emits the join result.
	if got := res.StageEmits[len(res.StageEmits)-1]; got != res.Count {
		t.Errorf("final stage emits %d != count %d", got, res.Count)
	}
}

func TestDefaultThreadsApplied(t *testing.T) {
	fx := newFixture(t, 1, 5, 1)
	job := fx.joinJob(0, 1000, false)
	// Options zero value must select the paper's default pool and work.
	res, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{InlineReferencers: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != fx.expectedJoinCount(0, 1000) {
		t.Fatalf("count = %d", res.Count)
	}
}

// TestLargeFanoutStress pushes tens of thousands of fine-grained tasks
// through the executor on a free cost model: no deadlocks, exact counts.
func TestLargeFanoutStress(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 4})
	f, err := c.CreateFile("wide", dfs.Btree, 8, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 30000
	for i := int64(0); i < rows; i++ {
		k := keycodec.Int64(i)
		if err := dfs.AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Fan out: scan everything, then point-fetch each record again.
	job, err := NewJob("stress",
		[]lake.Pointer{{File: "wide", NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(rows)}},
		RangeDeref{File: "wide"},
		FuncRef{Label: "self", Fn: func(tc *TaskCtx, rec lake.Record) ([]lake.Pointer, error) {
			return []lake.Pointer{{File: "wide", PartKey: rec.Key, Key: rec.Key}}, nil
		}},
		LookupDeref{File: "wide"},
	)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := ExecuteSMPE(ctx, job, c, c, Options{Threads: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != rows {
		t.Fatalf("stress count = %d, want %d", res.Count, rows)
	}
	if res.StageEmits[2] != rows {
		t.Fatalf("stress final-stage emits = %d, want %d", res.StageEmits[2], rows)
	}
	// Batching coalesces the fan-out into fewer tasks, but every pointer
	// must still arrive exactly once.
	st := res.Trace.Stages[2]
	if st.BatchedPtrs != rows {
		t.Fatalf("stress final-stage batched pointers = %d, want %d", st.BatchedPtrs, rows)
	}
	if st.Batches != res.StageTasks[2] {
		t.Fatalf("stress final-stage batches = %d, tasks = %d; want equal", st.Batches, res.StageTasks[2])
	}
	if res.StageTasks[2] >= rows {
		t.Fatalf("stress final-stage tasks = %d, want < %d (batching should coalesce)", res.StageTasks[2], rows)
	}
	t.Logf("30k-task stress in %v", time.Since(start))
}

func TestCancellationDuringSimulatedIO(t *testing.T) {
	// Workers are parked inside simulated I/O sleeps; cancellation must
	// tear the job down promptly anyway.
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2, Cost: sim.CostModel{
		LookupLatency: 30 * time.Second, // far beyond the test budget
		Spindles:      4,
	}})
	f, _ := c.CreateFile("slow", dfs.Btree, 2, lake.HashPartitioner{})
	for i := int64(0); i < 100; i++ {
		k := keycodec.Int64(i)
		dfs.AppendRouted(ctx, f, k, lake.Record{Key: k})
	}
	cctx, cancel := context.WithCancel(ctx)
	job, _ := NewJob("slow-job",
		[]lake.Pointer{{File: "slow", NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(100)}},
		RangeDeref{File: "slow"},
	)
	done := make(chan error, 1)
	go func() {
		_, err := ExecuteSMPE(cctx, job, c, c, Options{})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled job returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not interrupt simulated I/O")
	}
}

func TestManyNodes(t *testing.T) {
	fx := newFixture(t, 16, 40, 2)
	job := fx.joinJob(0, 1000, false)
	res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	if want := fx.expectedJoinCount(0, 1000); res.Count != want {
		t.Fatalf("16-node count = %d, want %d", res.Count, want)
	}
}

func TestLazyPoolSpawnsFewWorkersForTinyJobs(t *testing.T) {
	fx := newFixture(t, 2, 3, 1)
	job := fx.joinJob(0, 0, false) // matches one part at most
	res, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 1000, InlineReferencers: true})
	if err != nil {
		t.Fatal(err)
	}
	// The result matters (correctness); the observable proxy for lazy
	// spawning is that the tiny job completes instantly even with a
	// 1000-thread cap.
	if res.Elapsed > 2*time.Second {
		t.Errorf("tiny job took %v; lazy pool spawn broken?", res.Elapsed)
	}
}

func BenchmarkSMPEThroughput(b *testing.B) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 4})
	f, _ := c.CreateFile("t", dfs.Btree, 8, lake.HashPartitioner{})
	const rows = 10000
	for i := int64(0); i < rows; i++ {
		k := keycodec.Int64(i)
		dfs.AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte("x")})
	}
	job, _ := NewJob("bench",
		[]lake.Pointer{{File: "t", NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(rows)}},
		RangeDeref{File: "t"},
		FuncRef{Label: "self", Fn: func(tc *TaskCtx, rec lake.Record) ([]lake.Pointer, error) {
			return []lake.Pointer{{File: "t", PartKey: rec.Key, Key: rec.Key}}, nil
		}},
		LookupDeref{File: "t"},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ExecuteSMPE(ctx, job, c, c, Options{Threads: 128})
		if err != nil {
			b.Fatal(err)
		}
		if res.Count != rows {
			b.Fatalf("count = %d", res.Count)
		}
	}
	b.ReportMetric(float64(rows), "tasks/op")
}

func BenchmarkQueue(b *testing.B) {
	q := newTaskQueue()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.push(task{stage: 1})
			q.pop()
		}
	})
}

func TestRetryHealsTransientFaults(t *testing.T) {
	fx := newFixture(t, 2, 10, 2)
	boom := fmt.Errorf("flaky disk")
	// Every partition of lineitem fails its accesses for a long while. The
	// budget must outlive the batch-split fallback: a batched access
	// consumes one heal unit per key (fault-injection parity with the
	// unbatched path), so a tiny budget would be exhausted by the failed
	// batch itself and the per-pointer split would then succeed with no
	// retries configured at all.
	lif, _ := fx.cluster.File(fLine)
	for p := 0; p < lif.NumPartitions(); p++ {
		if err := fx.cluster.SetTransientFault(fLine, p, boom, 1000); err != nil {
			t.Fatal(err)
		}
	}
	job := fx.joinJob(0, 1000, false)
	// Without retries the job fails.
	if _, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{}); err == nil {
		t.Fatal("transient faults without retries should fail the job")
	}
	for p := 0; p < lif.NumPartitions(); p++ {
		fx.cluster.SetFault(fLine, p, nil) // clear the long fault
	}
	// Reset the faults (the failed run consumed an unknown share).
	for p := 0; p < lif.NumPartitions(); p++ {
		fx.cluster.SetTransientFault(fLine, p, boom, 2)
	}
	// With retries the job completes with the exact result.
	res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{MaxRetries: 3})
	if err != nil {
		t.Fatalf("retries did not heal transient faults: %v", err)
	}
	if want := fx.expectedJoinCount(0, 1000); res.Count != want {
		t.Fatalf("count after retries = %d, want %d", res.Count, want)
	}
}

func TestRetryDoesNotMaskPermanentFaults(t *testing.T) {
	fx := newFixture(t, 2, 5, 2)
	boom := fmt.Errorf("dead disk")
	fx.cluster.SetFault(fLine, 0, boom)
	job := fx.joinJob(0, 1000, false)
	if _, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{MaxRetries: 2}); err == nil {
		t.Fatal("permanent fault must still fail after retries")
	}
}
