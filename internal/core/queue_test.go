package core

import (
	"sync"
	"testing"
)

func TestQueueFIFO(t *testing.T) {
	q := newTaskQueue()
	for i := 0; i < 10; i++ {
		q.push(task{stage: i})
	}
	for i := 0; i < 10; i++ {
		got, ok := q.pop()
		if !ok || got.stage != i {
			t.Fatalf("pop %d = (%v, %v)", i, got.stage, ok)
		}
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newTaskQueue()
	q.push(task{stage: 1})
	q.close()
	if got, ok := q.pop(); !ok || got.stage != 1 {
		t.Fatalf("pop after close = (%v, %v), want item", got.stage, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on drained closed queue should report !ok")
	}
}

func TestQueuePushAfterCloseDropped(t *testing.T) {
	q := newTaskQueue()
	q.close()
	q.push(task{stage: 1})
	if _, ok := q.pop(); ok {
		t.Fatal("push after close should be dropped")
	}
}

func TestQueueBlockingPopWakesOnPush(t *testing.T) {
	q := newTaskQueue()
	done := make(chan int, 1)
	go func() {
		tk, ok := q.pop()
		if !ok {
			done <- -1
			return
		}
		done <- tk.stage
	}()
	q.push(task{stage: 7})
	if got := <-done; got != 7 {
		t.Fatalf("blocked pop got %d", got)
	}
}

func TestQueueConcurrent(t *testing.T) {
	q := newTaskQueue()
	const producers, perProducer, consumers = 8, 500, 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.push(task{stage: 1})
			}
		}()
	}
	var popped sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for c := 0; c < consumers; c++ {
		popped.Add(1)
		go func() {
			defer popped.Done()
			for {
				_, ok := q.pop()
				if !ok {
					return
				}
				mu.Lock()
				total++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Give consumers time to drain, then close.
	for {
		q.mu.Lock()
		drained := q.head >= len(q.items)
		q.mu.Unlock()
		if drained {
			break
		}
	}
	q.close()
	popped.Wait()
	if total != producers*perProducer {
		t.Fatalf("consumed %d tasks, want %d", total, producers*perProducer)
	}
}
