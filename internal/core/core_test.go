package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// testFixture is a tiny two-table lake mirroring the paper's Part⋈Lineitem
// example: "part" (pk p_key, payload "p_key|p_price"), a local secondary
// B-tree index on p_price, "lineitem" (pk (l_order,l_line), partitioned by
// l_order, payload "l_order|l_line|l_partkey"), and a global index on
// l_partkey.
type testFixture struct {
	cluster  *dfs.Cluster
	nParts   int
	nPer     int // lineitems per part
	prices   map[int64]int64
	ctx      context.Context
	interpPS Interpreter // part payload
}

const (
	fPart     = "part"
	fPriceIdx = "part_price_idx"
	fLine     = "lineitem"
	fLPartIdx = "lineitem_partkey_idx"
)

func interpPart(rec lake.Record) (Fields, error) {
	parts := strings.Split(string(rec.Data), "|")
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad part record %q", rec.Data)
	}
	return Fields{"p_key": parts[0], "p_price": parts[1]}, nil
}

func interpLine(rec lake.Record) (Fields, error) {
	parts := strings.Split(string(rec.Data), "|")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad lineitem record %q", rec.Data)
	}
	return Fields{"l_order": parts[0], "l_line": parts[1], "l_partkey": parts[2]}, nil
}

func encodeIntField(v string) (lake.Key, error) {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return "", err
	}
	return keycodec.Int64(n), nil
}

// newFixture builds the lake on a cluster of `nodes` nodes with `nParts`
// part rows, each referenced by `nPer` lineitems. Price of part i is i*10.
func newFixture(t testing.TB, nodes, nParts, nPer int) *testFixture {
	t.Helper()
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: nodes})
	partitions := nodes * 2

	part, err := c.CreateFile(fPart, dfs.Btree, partitions, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	priceIdx, err := c.CreateFile(fPriceIdx, dfs.Btree, partitions, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	line, err := c.CreateFile(fLine, dfs.Btree, partitions, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	lpIdx, err := c.CreateFile(fLPartIdx, dfs.Btree, partitions, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}

	fx := &testFixture{cluster: c, nParts: nParts, nPer: nPer, prices: map[int64]int64{}, ctx: ctx, interpPS: interpPart}

	for i := int64(0); i < int64(nParts); i++ {
		pk := keycodec.Int64(i)
		price := i * 10
		fx.prices[i] = price
		rec := lake.Record{Key: pk, Data: []byte(fmt.Sprintf("%d|%d", i, price))}
		if err := dfs.AppendRouted(ctx, part, pk, rec); err != nil {
			t.Fatal(err)
		}
		// Local secondary index on price: co-partitioned with part
		// (partition key = p_key), entry key = price.
		idxRec := lake.Record{Key: keycodec.Int64(price), Data: lake.EncodeIndexEntry(pk, pk)}
		if err := dfs.AppendRouted(ctx, priceIdx, pk, idxRec); err != nil {
			t.Fatal(err)
		}
	}
	lineNo := int64(0)
	for i := int64(0); i < int64(nParts); i++ {
		for j := 0; j < nPer; j++ {
			lineNo++
			order := lineNo * 7 // arbitrary order key
			ok := keycodec.Int64(order)
			lk := keycodec.Tuple(keycodec.Int64(order), keycodec.Int64(int64(j)))
			rec := lake.Record{Key: lk, Data: []byte(fmt.Sprintf("%d|%d|%d", order, j, i))}
			if err := dfs.AppendRouted(ctx, line, ok, rec); err != nil {
				t.Fatal(err)
			}
			// Global index on l_partkey: partitioned by l_partkey,
			// entries point at lineitem's partition key (l_order).
			partKey := keycodec.Int64(i)
			idxRec := lake.Record{Key: partKey, Data: lake.EncodeIndexEntry(ok, lk)}
			if err := dfs.AppendRouted(ctx, lpIdx, partKey, idxRec); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fx
}

// joinJob builds the paper's Fig. 3/4 job: parts with price in [lo, hi]
// joined to their lineitems through the global l_partkey index.
func (fx *testFixture) joinJob(loPrice, hiPrice int64, broadcast bool) *Job {
	seeds := []lake.Pointer{{File: fPriceIdx, NoPart: true, Key: keycodec.Int64(loPrice), EndKey: keycodec.Int64(hiPrice)}}
	job, err := NewJob("part-line-join", seeds,
		RangeDeref{File: fPriceIdx}, // Dereferencer-0
		EntryRef{Target: fPart},     // Referencer-1
		LookupDeref{File: fPart},    // Dereferencer-1
		FieldRef{Target: fLPartIdx, Interp: interpPart, Field: "p_key", Encode: encodeIntField, Broadcast: broadcast}, // Referencer-2
		LookupDeref{File: fLPartIdx}, // Dereferencer-2
		EntryRef{Target: fLine},      // Referencer-3
		LookupDeref{File: fLine},     // Dereferencer-3
	)
	if err != nil {
		panic(err)
	}
	return job
}

// expectedJoinCount is the oracle: parts with price in range × nPer.
func (fx *testFixture) expectedJoinCount(lo, hi int64) int64 {
	var n int64
	for _, price := range fx.prices {
		if price >= lo && price <= hi {
			n += int64(fx.nPer)
		}
	}
	return n
}

func TestJobValidation(t *testing.T) {
	d := LookupDeref{File: "f"}
	r := EntryRef{Target: "f"}
	seed := []lake.Pointer{{File: "f", Key: "k", PartKey: "k"}}

	cases := []struct {
		name string
		job  *Job
	}{
		{"no stages", &Job{Name: "j", Seeds: seed}},
		{"no seeds", &Job{Name: "j", Stages: []Stage{{Deref: d}}}},
		{"starts with ref", &Job{Name: "j", Seeds: seed, Stages: []Stage{{Ref: r}}}},
		{"ends with ref", &Job{Name: "j", Seeds: seed, Stages: []Stage{{Deref: d}, {Ref: r}}}},
		{"double set", &Job{Name: "j", Seeds: seed, Stages: []Stage{{Deref: d, Ref: r}}}},
		{"empty stage", &Job{Name: "j", Seeds: seed, Stages: []Stage{{}}}},
		{"two derefs in a row", &Job{Name: "j", Seeds: seed, Stages: []Stage{{Deref: d}, {Deref: d}, {Deref: d}}}},
	}
	for _, c := range cases {
		if err := c.job.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
		}
	}
	good := &Job{Name: "j", Seeds: seed, Stages: []Stage{{Deref: d}, {Ref: r}, {Deref: d}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
}

func TestNewJobRejectsWrongType(t *testing.T) {
	if _, err := NewJob("j", []lake.Pointer{{File: "f"}}, "not a function"); err == nil {
		t.Error("NewJob with a string stage should fail")
	}
}

func TestSelectionJob(t *testing.T) {
	fx := newFixture(t, 3, 20, 0)
	// Select parts with price in [50, 120] via the price index:
	// prices are multiples of 10, so parts 5..12 → 8 records.
	seeds := []lake.Pointer{{File: fPriceIdx, NoPart: true, Key: keycodec.Int64(50), EndKey: keycodec.Int64(120)}}
	job, err := NewJob("selection", seeds,
		RangeDeref{File: fPriceIdx},
		EntryRef{Target: fPart},
		LookupDeref{File: fPart},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 8 {
		t.Fatalf("selection count = %d, want 8", res.Count)
	}
	if len(res.Records) != 8 {
		t.Fatalf("KeepRecords gathered %d records", len(res.Records))
	}
	for _, r := range res.Records {
		f, err := interpPart(r)
		if err != nil {
			t.Fatal(err)
		}
		price, _ := strconv.ParseInt(f["p_price"], 10, 64)
		if price < 50 || price > 120 {
			t.Errorf("record with price %d escaped the range", price)
		}
	}
}

func TestJoinJobSMPE(t *testing.T) {
	fx := newFixture(t, 3, 15, 4)
	job := fx.joinJob(20, 90, false)
	res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := fx.expectedJoinCount(20, 90); res.Count != want {
		t.Fatalf("join count = %d, want %d", res.Count, want)
	}
}

func TestJoinJobPlainMatchesSMPE(t *testing.T) {
	fx := newFixture(t, 2, 12, 3)
	job := fx.joinJob(0, 1000, false)
	smpe, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ExecutePlain(fx.ctx, job, fx.cluster, fx.cluster, Options{KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if smpe.Count != plain.Count {
		t.Fatalf("SMPE count %d != plain count %d", smpe.Count, plain.Count)
	}
	sortRecs := func(rs []lake.Record) {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].Key != rs[j].Key {
				return rs[i].Key < rs[j].Key
			}
			return string(rs[i].Data) < string(rs[j].Data)
		})
	}
	sortRecs(smpe.Records)
	sortRecs(plain.Records)
	for i := range smpe.Records {
		if smpe.Records[i].Key != plain.Records[i].Key || string(smpe.Records[i].Data) != string(plain.Records[i].Data) {
			t.Fatalf("record %d differs between SMPE and plain", i)
		}
	}
}

func TestBroadcastJoinMatchesRouted(t *testing.T) {
	fx := newFixture(t, 3, 10, 3)
	routed, err := ExecuteSMPE(fx.ctx, fx.joinJob(0, 1000, false), fx.cluster, fx.cluster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := ExecuteSMPE(fx.ctx, fx.joinJob(0, 1000, true), fx.cluster, fx.cluster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if routed.Count != bcast.Count {
		t.Fatalf("broadcast join count %d != routed %d", bcast.Count, routed.Count)
	}
	if want := fx.expectedJoinCount(0, 1000); routed.Count != want {
		t.Fatalf("join count = %d, want %d", routed.Count, want)
	}
}

func TestFilterDropsRecords(t *testing.T) {
	fx := newFixture(t, 2, 10, 0)
	onlyEven := func(rec lake.Record) (bool, error) {
		f, err := interpPart(rec)
		if err != nil {
			return false, err
		}
		k, _ := strconv.ParseInt(f["p_key"], 10, 64)
		return k%2 == 0, nil
	}
	seeds := []lake.Pointer{{File: fPriceIdx, NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(1000)}}
	job, err := NewJob("filtered", seeds,
		RangeDeref{File: fPriceIdx},
		EntryRef{Target: fPart},
		LookupDeref{File: fPart, Filter: onlyEven},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 5 {
		t.Fatalf("filtered count = %d, want 5", res.Count)
	}
}

func TestFilterErrorPropagates(t *testing.T) {
	fx := newFixture(t, 2, 5, 0)
	boom := errors.New("bad filter")
	seeds := []lake.Pointer{{File: fPriceIdx, NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(1000)}}
	job, _ := NewJob("filter-err", seeds,
		RangeDeref{File: fPriceIdx, Filter: func(lake.Record) (bool, error) { return false, boom }},
	)
	_, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("filter error = %v, want %v", err, boom)
	}
}

func TestEachCallback(t *testing.T) {
	fx := newFixture(t, 2, 10, 2)
	var mu sync.Mutex
	var count int64
	job := fx.joinJob(0, 1000, false)
	res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Each: func(node int, rec lake.Record) error {
		mu.Lock()
		count++
		mu.Unlock()
		if node < 0 || node >= fx.cluster.NumNodes() {
			return fmt.Errorf("bad node %d", node)
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if count != res.Count {
		t.Fatalf("Each saw %d records, result counted %d", count, res.Count)
	}
}

func TestEachErrorFailsJob(t *testing.T) {
	fx := newFixture(t, 2, 10, 2)
	boom := errors.New("sink failed")
	job := fx.joinJob(0, 1000, false)
	_, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{Each: func(int, lake.Record) error { return boom }})
	if !errors.Is(err, boom) {
		t.Fatalf("Each error = %v, want %v", err, boom)
	}
}

func TestDereferenceFaultPropagates(t *testing.T) {
	fx := newFixture(t, 2, 10, 2)
	boom := errors.New("disk on fire")
	if err := fx.cluster.SetFault(fLine, 0, boom); err != nil {
		t.Fatal(err)
	}
	job := fx.joinJob(0, 1000, false)
	done := make(chan error, 1)
	go func() {
		_, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("fault = %v, want %v", err, boom)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SMPE deadlocked on storage fault")
	}
}

func TestReferencerErrorPropagates(t *testing.T) {
	fx := newFixture(t, 2, 5, 1)
	seeds := []lake.Pointer{{File: fPriceIdx, NoPart: true, Key: keycodec.Int64(0), EndKey: keycodec.Int64(1000)}}
	boom := errors.New("ref exploded")
	job, _ := NewJob("ref-err", seeds,
		RangeDeref{File: fPriceIdx},
		FuncRef{Label: "boom", Fn: func(*TaskCtx, lake.Record) ([]lake.Pointer, error) { return nil, boom }},
		LookupDeref{File: fPart},
	)
	_, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("referencer error = %v, want %v", err, boom)
	}
}

func TestMissingFileError(t *testing.T) {
	fx := newFixture(t, 1, 3, 0)
	seeds := []lake.Pointer{{File: "ghost", NoPart: true, Key: "a", EndKey: "z"}}
	job, _ := NewJob("ghost", seeds, RangeDeref{File: "ghost"})
	_, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{})
	if !errors.Is(err, lake.ErrNoSuchFile) {
		t.Fatalf("missing file error = %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	fx := newFixture(t, 2, 50, 10)
	ctx, cancel := context.WithCancel(fx.ctx)
	cancel() // cancel before start: must return promptly with an error
	job := fx.joinJob(0, 10000, false)
	done := make(chan error, 1)
	go func() {
		_, err := Execute(ctx, job, fx.cluster, fx.cluster, Options{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled job returned nil error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled job did not return")
	}
}

func TestStageTaskCounts(t *testing.T) {
	fx := newFixture(t, 2, 10, 3)
	job := fx.joinJob(0, 1000, false)
	// MaxBatch 1 pins the one-task-per-pointer granularity this test is
	// about; batched task counts are covered in batch_test.go.
	res, err := ExecuteSMPE(fx.ctx, job, fx.cluster, fx.cluster, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StageTasks) != len(job.Stages) {
		t.Fatalf("StageTasks has %d entries, want %d", len(res.StageTasks), len(job.Stages))
	}
	// Stage 0 runs once per node (broadcast seed).
	if res.StageTasks[0] != int64(fx.cluster.NumNodes()) {
		t.Errorf("stage 0 tasks = %d, want %d", res.StageTasks[0], fx.cluster.NumNodes())
	}
	// Inline referencers never appear as tasks.
	if res.StageTasks[1] != 0 || res.StageTasks[3] != 0 {
		t.Errorf("inline referencer stages recorded tasks: %v", res.StageTasks)
	}
	// Every part record fetch is one stage-2 task.
	if res.StageTasks[2] != int64(fx.nParts) {
		t.Errorf("stage 2 tasks = %d, want %d", res.StageTasks[2], fx.nParts)
	}
	// Final stage: one task per lineitem (one pointer each).
	if res.StageTasks[6] != int64(fx.nParts*fx.nPer) {
		t.Errorf("stage 6 tasks = %d, want %d", res.StageTasks[6], fx.nParts*fx.nPer)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestNonInlineReferencersMatch(t *testing.T) {
	fx := newFixture(t, 2, 8, 2)
	job := fx.joinJob(0, 1000, false)
	inline, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 64, InlineReferencers: true})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 64, InlineReferencers: false})
	if err != nil {
		t.Fatal(err)
	}
	if inline.Count != queued.Count {
		t.Fatalf("inline count %d != queued count %d", inline.Count, queued.Count)
	}
	// Non-inline mode must have recorded referencer tasks.
	if queued.StageTasks[1] == 0 {
		t.Error("non-inline mode recorded no referencer tasks")
	}
}

func TestSeedRangeHashBroadcasts(t *testing.T) {
	fx := newFixture(t, 2, 3, 0)
	seeds, err := SeedRange(fx.cluster, fPriceIdx, keycodec.Int64(0), keycodec.Int64(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 || !seeds[0].NoPart {
		t.Fatalf("hash-partitioned index seed = %+v, want one broadcast seed", seeds)
	}
}

func TestSeedRangeRangePartitioned(t *testing.T) {
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2})
	rp := lake.NewRangePartitioner(keycodec.Int64(100), keycodec.Int64(200))
	f, err := c.CreateFile("gidx", dfs.Btree, 3, rp)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i += 10 {
		k := keycodec.Int64(i)
		if err := dfs.AppendRouted(ctx, f, k, lake.Record{Key: k, Data: lake.EncodeIndexEntry(k, k)}); err != nil {
			t.Fatal(err)
		}
	}
	seeds, err := SeedRange(c, "gidx", keycodec.Int64(50), keycodec.Int64(250))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("range seeds = %d, want 3 (one per overlapping partition)", len(seeds))
	}
	// Seeds must route to distinct partitions 0,1,2.
	seen := map[int]bool{}
	for _, s := range seeds {
		p, bc := lake.ResolvePartition(f, s)
		if bc {
			t.Fatal("range seed must not broadcast")
		}
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Fatalf("seeds covered partitions %v, want 3 distinct", seen)
	}
	// Executing the range over the partitioned index finds all 21 entries.
	job, _ := NewJob("gscan", seeds, RangeDeref{File: "gidx"})
	res, err := ExecuteSMPE(ctx, job, c, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 21 {
		t.Fatalf("partitioned range count = %d, want 21", res.Count)
	}
	if _, err := SeedRange(c, "missing", "a", "b"); err == nil {
		t.Error("SeedRange on missing file should fail")
	}
}

// TestPropertyEnginesAgree is the core equivalence property: for random
// data sizes, cluster shapes, and price ranges, SMPE and plain execution
// return exactly the oracle join cardinality.
func TestPropertyEnginesAgree(t *testing.T) {
	f := func(nodes, nParts, nPer uint8, lo, hi uint16) bool {
		nn := int(nodes%4) + 1
		np := int(nParts%20) + 1
		pp := int(nPer%4) + 1
		l, h := int64(lo%300), int64(hi%300)
		if l > h {
			l, h = h, l
		}
		fx := newFixture(t, nn, np, pp)
		want := fx.expectedJoinCount(l, h)
		job := fx.joinJob(l, h, false)
		smpe, err := Execute(fx.ctx, job, fx.cluster, fx.cluster, Options{Threads: 32})
		if err != nil {
			return false
		}
		plain, err := ExecutePlain(fx.ctx, job, fx.cluster, fx.cluster, Options{})
		if err != nil {
			return false
		}
		return smpe.Count == want && plain.Count == want
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestJobDescribe(t *testing.T) {
	fx := newFixture(t, 1, 2, 1)
	job := fx.joinJob(0, 10, false)
	desc := job.Describe()
	if !strings.Contains(desc, "stage 0: Dereferencer RangeDeref") {
		t.Errorf("Describe missing stage 0: %s", desc)
	}
	if !strings.Contains(desc, "EntryRef(part)") || !strings.Contains(desc, "Referencer") {
		t.Errorf("Describe missing referencer stages: %s", desc)
	}
	if strings.Count(desc, "stage ") != len(job.Stages) {
		t.Errorf("Describe has wrong stage count: %s", desc)
	}
}
