package dfs

import (
	"context"
	"fmt"
	"testing"

	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// TestLookupBatchAccounting: a batched lookup of n keys is ONE gate
// admission (Lookups +1, BatchLookups +1, BatchKeys +n), returns exactly
// what per-key lookups return, and a remote batch is one remote fetch, not
// n.
func TestLookupBatchAccounting(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(2)
	f, err := c.CreateFile("orders", Btree, 4, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := f.(lake.BatchFile)
	if !ok {
		t.Fatal("dfs file does not implement lake.BatchFile")
	}

	// Collect keys routed to partition 0, with a duplicate-keyed record.
	var keys []lake.Key
	for i := int64(0); len(keys) < 6; i++ {
		k := keycodec.Int64(i)
		if f.Partitioner().Partition(k, 4) != 0 {
			continue
		}
		if err := AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	dup := lake.Record{Key: keys[0], Data: []byte("dup")}
	if err := AppendRouted(ctx, f, keys[0], dup); err != nil {
		t.Fatal(err)
	}
	keys = append(keys, "\x00missing")

	owner := c.OwnerNode(0)
	before := c.TotalMetrics()
	got, err := bf.LookupBatch(c.Bind(ctx, owner), 0, keys)
	if err != nil {
		t.Fatal(err)
	}
	delta := c.TotalMetrics().Sub(before)
	if delta.Lookups != 1 || delta.BatchLookups != 1 {
		t.Errorf("admissions = %d (batched %d), want 1/1", delta.Lookups, delta.BatchLookups)
	}
	if delta.BatchKeys != int64(len(keys)) {
		t.Errorf("BatchKeys = %d, want %d", delta.BatchKeys, len(keys))
	}
	if delta.RemoteFetches != 0 {
		t.Errorf("local batch counted %d remote fetches", delta.RemoteFetches)
	}
	wantRead := int64(0)
	for i, k := range keys {
		single, err := f.Lookup(c.Bind(ctx, owner), 0, k)
		if err != nil {
			t.Fatal(err)
		}
		wantRead += int64(len(single))
		if len(got[i]) != len(single) {
			t.Fatalf("key %d: batch %d records, Lookup %d", i, len(got[i]), len(single))
		}
		for j := range single {
			if string(got[i][j].Data) != string(single[j].Data) {
				t.Fatalf("key %d record %d: %q vs %q", i, j, got[i][j].Data, single[j].Data)
			}
		}
	}
	if delta.RecordsRead != wantRead {
		t.Errorf("RecordsRead = %d, want %d", delta.RecordsRead, wantRead)
	}
	if delta.BytesRead == 0 {
		t.Error("BytesRead not accounted")
	}

	// Remote: issued from the non-owner node, the whole batch is one fetch.
	before = c.TotalMetrics()
	if _, err := bf.LookupBatch(c.Bind(ctx, 1-owner), 0, keys); err != nil {
		t.Fatal(err)
	}
	delta = c.TotalMetrics().Sub(before)
	if delta.RemoteFetches != 1 {
		t.Errorf("remote batch counted %d remote fetches, want 1", delta.RemoteFetches)
	}

	// Empty batch: no admission at all.
	before = c.TotalMetrics()
	if out, err := bf.LookupBatch(ctx, 0, nil); err != nil || out != nil {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
	if d := c.TotalMetrics().Sub(before); d.Lookups != 0 {
		t.Errorf("empty batch admitted %d lookups", d.Lookups)
	}
}

func TestLookupBatchBadPartition(t *testing.T) {
	c := newTestCluster(1)
	f, err := c.CreateFile("x", Btree, 2, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	bf := f.(lake.BatchFile)
	if _, err := bf.LookupBatch(context.Background(), 9, []lake.Key{"k"}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}
