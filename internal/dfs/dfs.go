// Package dfs is the "simple distributed file system" the paper's authors
// built for ReDe in place of HDFS (§III-E: "HDFS is not well-optimized for
// non-scan accesses such as lookups").
//
// It simulates a shared-nothing cluster inside one process: a Cluster owns N
// nodes, every file is split into partitions, and partition i lives on node
// i mod N. Each node has a sim.Gate that bounds concurrent I/Os and charges
// modeled latencies, plus metrics.Counters that record every access. Files
// implement the lake.File / lake.BtreeFile interfaces, so the ReDe engine,
// the baseline engine, and the structure builder all run against the same
// storage.
//
// Records returned by lookups and scans are shared, not copied; callers must
// treat Record.Data as read-only.
package dfs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lakeharbor/internal/btree"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/metrics"
	"lakeharbor/internal/sim"
	"lakeharbor/internal/trace"
)

// Kind selects the access paths a file supports.
type Kind int

const (
	// Heap files support point lookups and scans (the paper's File).
	Heap Kind = iota
	// Btree files additionally support range lookups (the paper's
	// BtreeFile).
	Btree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Btree {
		return "btree"
	}
	return "heap"
}

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of shared-nothing nodes; at least 1.
	Nodes int
	// Cost models I/O and network costs. The zero model is free/instant.
	Cost sim.CostModel
}

// Cluster is a simulated shared-nothing storage cluster and file catalog.
type Cluster struct {
	nodes []*node
	cost  sim.CostModel

	mu    sync.RWMutex
	files map[string]*file
	// version is the catalog version: it starts at 0 and increments on
	// every successful CreateFile/DropFile, making any catalog read
	// stampable with the exact catalog it observed.
	version     uint64
	catalogHook func(CatalogEvent)

	listenerMu sync.RWMutex
	listeners  []AppendListener

	// remote marks a cluster built over external node transports
	// (NewClusterWithTransports): catalog mutations broadcast to the
	// transports and data operations never touch the local partition trees.
	remote bool
}

// CatalogEvent describes one catalog mutation: the version it produced and
// the file created or dropped (Partitions/Partitioner are zero for drops).
type CatalogEvent struct {
	Version     uint64
	Drop        bool
	Name        string
	Kind        Kind
	Partitions  int
	Partitioner lake.Partitioner
}

// SetCatalogHook installs the observer invoked — under the catalog lock, so
// events arrive in version order — after every catalog mutation. The
// versioned catalog service uses it to mirror the catalog and log mutations
// to the WAL. Only one hook is supported; the hook must not call back into
// catalog mutations.
func (c *Cluster) SetCatalogHook(fn func(CatalogEvent)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.catalogHook = fn
}

// CatalogVersion returns the current catalog version.
func (c *Cluster) CatalogVersion() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// AppendListener observes every record appended to any file; the structure
// maintainer uses it to keep built indexes in sync with new data. Listeners
// run synchronously on the appending goroutine — under the appended
// partition's write lock (see notifyAppend) — and must not block for long.
type AppendListener func(file string, partition int, rec lake.Record)

// AddAppendListener registers a listener for all future appends.
func (c *Cluster) AddAppendListener(fn AppendListener) {
	c.listenerMu.Lock()
	defer c.listenerMu.Unlock()
	c.listeners = append(c.listeners, fn)
}

// notifyAppend fans an append out to the listeners. It is called by Append
// while the appended partition's write lock is still held, so for any one
// partition the pair (insert, notify) is atomic with respect to a scan's
// read lock: a listener has either been told about a record before a scan
// can start, or will be told only after the scan finished. Online structure
// builds depend on that ordering to decide whether the build scan or the
// maintainer owns a record appended mid-build (see indexer.Maintainer).
func (c *Cluster) notifyAppend(file string, partition int, recs []lake.Record) {
	c.listenerMu.RLock()
	listeners := c.listeners
	c.listenerMu.RUnlock()
	for _, fn := range listeners {
		for _, r := range recs {
			fn(file, partition, r)
		}
	}
}

type node struct {
	id       int
	gate     *sim.Gate
	counters metrics.Counters
	// transport, when non-nil, serves this node's data operations instead
	// of the in-process sim path (see transport.go). The sim keeps a nil
	// transport so its historical code path is byte-for-byte unchanged.
	transport NodeTransport
}

// NewCluster creates a cluster with cfg.Nodes nodes (minimum 1).
func NewCluster(cfg Config) *Cluster {
	n := cfg.Nodes
	if n < 1 {
		n = 1
	}
	c := &Cluster{cost: cfg.Cost, files: make(map[string]*file)}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &node{id: i, gate: sim.NewGate(cfg.Cost)})
	}
	return c
}

// NumNodes returns the cluster size.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Cost returns the cluster's cost model.
func (c *Cluster) Cost() sim.CostModel { return c.cost }

// NodeCounters returns node i's counters for inspection.
func (c *Cluster) NodeCounters(i int) *metrics.Counters { return &c.nodes[i].counters }

// TotalMetrics aggregates a snapshot across all nodes.
func (c *Cluster) TotalMetrics() metrics.Snapshot {
	var s metrics.Snapshot
	for _, n := range c.nodes {
		s = s.Add(n.counters.Snapshot())
	}
	return s
}

// CreateFile registers a new empty file. Partition i is placed on node
// i mod NumNodes, matching the paper's round-robin distribution.
func (c *Cluster) CreateFile(name string, kind Kind, partitions int, p lake.Partitioner) (lake.File, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("dfs: file %q: partitions must be >= 1, got %d", name, partitions)
	}
	if p == nil {
		return nil, fmt.Errorf("dfs: file %q: nil partitioner", name)
	}
	if c.remote {
		c.mu.RLock()
		_, exists := c.files[name]
		c.mu.RUnlock()
		if exists {
			return nil, fmt.Errorf("dfs: file %q already exists", name)
		}
		// Broadcast before registering locally, so a transport failure
		// leaves the catalog untouched.
		if err := c.remoteCreate(name, kind, partitions, p); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	f := &file{cluster: c, name: name, kind: kind, partitioner: p}
	for i := 0; i < partitions; i++ {
		f.parts = append(f.parts, &partition{tree: btree.New()})
	}
	c.files[name] = f
	c.version++
	if c.catalogHook != nil {
		c.catalogHook(CatalogEvent{
			Version: c.version, Name: name, Kind: kind,
			Partitions: partitions, Partitioner: p,
		})
	}
	return f, nil
}

// DropFile removes a file from the catalog (used by tests and by the
// structure builder when replacing an index). Dropping a file that does not
// exist is a no-op and does not bump the catalog version.
func (c *Cluster) DropFile(name string) {
	c.mu.Lock()
	if _, ok := c.files[name]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.files, name)
	c.version++
	if c.catalogHook != nil {
		c.catalogHook(CatalogEvent{Version: c.version, Drop: true, Name: name})
	}
	c.mu.Unlock()
	if c.remote {
		c.remoteDrop(name)
	}
}

// File implements lake.Catalog.
func (c *Cluster) File(name string) (lake.File, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", lake.ErrNoSuchFile, name)
	}
	return f, nil
}

// BtreeFile returns the named file if it supports range lookups.
func (c *Cluster) BtreeFile(name string) (lake.BtreeFile, error) {
	f, err := c.File(name)
	if err != nil {
		return nil, err
	}
	bf, ok := f.(lake.BtreeFile)
	if !ok || f.(*file).kind != Btree {
		return nil, lake.AsPermanent(fmt.Errorf("dfs: file %q is not a btree file", name))
	}
	return bf, nil
}

// FileNames returns the catalog contents (for tools and tests).
func (c *Cluster) FileNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.files))
	for n := range c.files {
		out = append(out, n)
	}
	return out
}

// OwnerNode returns the node hosting the given partition.
func (c *Cluster) OwnerNode(partition int) int { return partition % len(c.nodes) }

// NodeGate returns node i's I/O gate, or nil when the cluster's cost model
// is free (a free gate admits everything instantly and has nothing to hook).
// Chaos injection uses it to install latency overrides and queue squeezes.
func (c *Cluster) NodeGate(i int) *sim.Gate {
	if i < 0 || i >= len(c.nodes) {
		return nil
	}
	return c.nodes[i].gate
}

// SetFault injects err into every access to the named file's partition
// (err == nil clears it). It exists for failure-injection tests.
func (c *Cluster) SetFault(name string, partition int, err error) error {
	if c.remote {
		return fmt.Errorf("dfs: fault injection needs the in-process sim; wrap the node transports instead")
	}
	c.mu.RLock()
	f, ok := c.files[name]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", lake.ErrNoSuchFile, name)
	}
	if partition < 0 || partition >= len(f.parts) {
		return fmt.Errorf("%w: %q/%d", lake.ErrNoSuchPartition, name, partition)
	}
	p := f.parts[partition]
	p.faultMu.Lock()
	p.fault = err
	p.faultBudget = 0 // permanent until cleared
	p.faultMu.Unlock()
	return nil
}

// SetTransientFault injects err into the next `times` accesses to the
// partition, after which it heals itself — the shape of a flaky disk or a
// brief network partition, used by retry tests.
func (c *Cluster) SetTransientFault(name string, partition int, err error, times int) error {
	if c.remote {
		return fmt.Errorf("dfs: fault injection needs the in-process sim; wrap the node transports instead")
	}
	c.mu.RLock()
	f, ok := c.files[name]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", lake.ErrNoSuchFile, name)
	}
	if partition < 0 || partition >= len(f.parts) {
		return fmt.Errorf("%w: %q/%d", lake.ErrNoSuchPartition, name, partition)
	}
	if times <= 0 {
		return fmt.Errorf("dfs: transient fault needs times > 0, got %d", times)
	}
	p := f.parts[partition]
	p.faultMu.Lock()
	p.fault = err
	p.faultBudget = times
	p.faultMu.Unlock()
	return nil
}

// callerKey carries the identity of the node issuing an access, so dfs can
// tell local from remote (cross-partition) accesses.
type callerKey struct{}

// WithCaller marks ctx as originating from the given compute node.
func WithCaller(ctx context.Context, nodeID int) context.Context {
	return context.WithValue(ctx, callerKey{}, nodeID)
}

// CallerNode returns the node that issued ctx, or -1 for external callers
// (loaders, tools), which are charged as local.
func CallerNode(ctx context.Context) int {
	if v, ok := ctx.Value(callerKey{}).(int); ok {
		return v
	}
	return -1
}

// file implements lake.BtreeFile on simulated partitions.
type file struct {
	cluster     *Cluster
	name        string
	kind        Kind
	partitioner lake.Partitioner
	parts       []*partition
}

// recordOverheadBytes is the modeled per-record storage overhead (tree node
// pointers, key headers) added to raw key+value size in a partition's byte
// accounting. Budgeted structure residency works in these modeled bytes.
const recordOverheadBytes = 32

type partition struct {
	mu   sync.RWMutex
	tree *btree.Tree
	// bytes is the modeled on-disk size of the partition: sum over records
	// of len(key)+len(data)+recordOverheadBytes. Guarded by mu.
	bytes int64

	// Fault-injection state, guarded by its own mutex so read paths do
	// not need the tree's write lock to consume a transient fault.
	faultMu sync.Mutex
	fault   error
	// faultBudget limits how many accesses the fault affects: a positive
	// budget decrements per faulted access and the fault clears at zero
	// (a transient fault); zero or negative means the fault is permanent
	// until cleared.
	faultBudget int
}

// takeFault reports the partition's current fault (if any) and consumes one
// unit of a transient fault's budget.
func (p *partition) takeFault() error { return p.takeFaultN(1) }

// takeFaultN is takeFault for a batched access touching n keys: a transient
// fault's budget is consumed once per key, not once per batch admission, so
// a batched run heals a fault after the same number of key accesses as an
// unbatched run of the same job (fault-injection parity across MaxBatch
// settings). A budget smaller than n is exhausted, not driven negative.
func (p *partition) takeFaultN(n int) error {
	p.faultMu.Lock()
	defer p.faultMu.Unlock()
	if p.fault == nil || n <= 0 {
		return nil
	}
	err := p.fault
	if p.faultBudget > 0 {
		if n >= p.faultBudget {
			p.faultBudget = 0
			p.fault = nil
		} else {
			p.faultBudget -= n
		}
	}
	return err
}

// Name implements lake.File.
func (f *file) Name() string { return f.name }

// NumPartitions implements lake.File.
func (f *file) NumPartitions() int { return len(f.parts) }

// Partitioner implements lake.File.
func (f *file) Partitioner() lake.Partitioner { return f.partitioner }

// Kind returns whether the file is a heap or btree file.
func (f *file) Kind() Kind { return f.kind }

func (f *file) part(i int) (*partition, *node, error) {
	if i < 0 || i >= len(f.parts) {
		return nil, nil, fmt.Errorf("%w: %q/%d", lake.ErrNoSuchPartition, f.name, i)
	}
	return f.parts[i], f.cluster.nodes[f.cluster.OwnerNode(i)], nil
}

// admit charges the owner node for one access and updates remote-fetch
// accounting. kindScan selects scan vs lookup pricing; n is the record count
// for scans. When the caller's context carries an execution trace (queries
// run through the SMPE executor), the access is also attributed to the
// calling node's trace as local or remote I/O, and the observed round-trip
// time — gate queueing plus the cost model's simulated service latency — is
// recorded into the trace's I/O latency histograms.
func (f *file) admit(ctx context.Context, owner *node, scan bool, n int) error {
	remote := false
	if caller := CallerNode(ctx); caller >= 0 && caller != owner.id {
		remote = true
		owner.counters.AddRemoteFetch()
	}
	io := trace.IOFrom(ctx)
	if io != nil {
		io.Observe(remote)
	}
	var t0 time.Time
	if io != nil {
		t0 = time.Now()
	}
	var err error
	if scan {
		err = owner.gate.Scan(ctx, n, remote)
	} else {
		owner.counters.AddLookup()
		err = owner.gate.Lookup(ctx, remote)
	}
	if err == nil && io != nil {
		io.ObserveLatency(remote, time.Since(t0))
	}
	return err
}

// LookupBatch implements lake.BatchFile: the whole batch is served under
// ONE gate admission — the cost model charges full latency for the first
// key and the marginal BatchPerKey for every key after it (seek
// amortization) — and, when the caller is remote, the batch is priced as a
// single network message. I/O attribution mirrors that (one local/remote
// observation), but a transient fault's heal budget is consumed per KEY —
// the batch stands in for len(keys) point lookups, so batched and unbatched
// runs of the same job consume an injected fault identically.
func (f *file) LookupBatch(ctx context.Context, partitionIdx int, keys []lake.Key) ([][]lake.Record, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	p, owner, err := f.part(partitionIdx)
	if err != nil {
		return nil, err
	}
	if owner.transport != nil {
		var out [][]lake.Record
		owner.counters.AddBatchLookup(len(keys))
		err := transportCall(ctx, owner, func() error {
			var terr error
			out, terr = owner.transport.LookupBatch(ctx, f.name, partitionIdx, keys)
			return terr
		})
		if err != nil {
			return nil, err
		}
		read, bytes := 0, 0
		for _, recs := range out {
			read += len(recs)
			for _, r := range recs {
				bytes += len(r.Data)
			}
		}
		owner.counters.AddRecordsRead(read)
		owner.counters.AddBytesRead(bytes)
		return out, nil
	}
	remote := false
	if caller := CallerNode(ctx); caller >= 0 && caller != owner.id {
		remote = true
		owner.counters.AddRemoteFetch()
	}
	io := trace.IOFrom(ctx)
	if io != nil {
		io.Observe(remote)
	}
	owner.counters.AddBatchLookup(len(keys))
	var t0 time.Time
	if io != nil {
		t0 = time.Now()
	}
	if err := owner.gate.LookupBatch(ctx, len(keys), remote); err != nil {
		return nil, err
	}
	if io != nil {
		io.ObserveLatency(remote, time.Since(t0))
	}
	if err := p.takeFaultN(len(keys)); err != nil {
		return nil, fmt.Errorf("dfs: %q/%d: %w", f.name, partitionIdx, err)
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	groups := p.tree.GetBatch(keys)
	out := make([][]lake.Record, len(keys))
	read, bytes := 0, 0
	for i, vals := range groups {
		if len(vals) == 0 {
			continue
		}
		recs := make([]lake.Record, len(vals))
		for j, v := range vals {
			recs[j] = lake.Record{Key: keys[i], Data: v}
			bytes += len(v)
		}
		out[i] = recs
		read += len(recs)
	}
	owner.counters.AddRecordsRead(read)
	owner.counters.AddBytesRead(bytes)
	return out, nil
}

// Lookup implements lake.File.
func (f *file) Lookup(ctx context.Context, partitionIdx int, key lake.Key) ([]lake.Record, error) {
	p, owner, err := f.part(partitionIdx)
	if err != nil {
		return nil, err
	}
	if owner.transport != nil {
		var recs []lake.Record
		owner.counters.AddLookup()
		err := transportCall(ctx, owner, func() error {
			var terr error
			recs, terr = owner.transport.Lookup(ctx, f.name, partitionIdx, key)
			return terr
		})
		if err != nil {
			return nil, err
		}
		bytes := 0
		for _, r := range recs {
			bytes += len(r.Data)
		}
		owner.counters.AddRecordsRead(len(recs))
		owner.counters.AddBytesRead(bytes)
		return recs, nil
	}
	if err := f.admit(ctx, owner, false, 1); err != nil {
		return nil, err
	}
	if err := p.takeFault(); err != nil {
		return nil, fmt.Errorf("dfs: %q/%d: %w", f.name, partitionIdx, err)
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	vals := p.tree.Get(key)
	if len(vals) == 0 {
		return nil, nil
	}
	recs := make([]lake.Record, len(vals))
	bytes := 0
	for i, v := range vals {
		recs[i] = lake.Record{Key: key, Data: v}
		bytes += len(v)
	}
	owner.counters.AddRecordsRead(len(recs))
	owner.counters.AddBytesRead(bytes)
	return recs, nil
}

// LookupRange implements lake.BtreeFile. It returns every record with
// lo <= key <= hi in the partition, in key order.
func (f *file) LookupRange(ctx context.Context, partitionIdx int, lo, hi lake.Key) ([]lake.Record, error) {
	if f.kind != Btree {
		return nil, lake.AsPermanent(fmt.Errorf("dfs: file %q is not a btree file", f.name))
	}
	p, owner, err := f.part(partitionIdx)
	if err != nil {
		return nil, err
	}
	if owner.transport != nil {
		var recs []lake.Record
		owner.counters.AddLookup()
		err := transportCall(ctx, owner, func() error {
			var terr error
			recs, terr = owner.transport.LookupRange(ctx, f.name, partitionIdx, lo, hi)
			return terr
		})
		if err != nil {
			return nil, err
		}
		bytes := 0
		for _, r := range recs {
			bytes += len(r.Data)
		}
		owner.counters.AddRecordsRead(len(recs))
		owner.counters.AddBytesRead(bytes)
		return recs, nil
	}
	if err := f.admit(ctx, owner, false, 1); err != nil {
		return nil, err
	}
	if err := p.takeFault(); err != nil {
		return nil, fmt.Errorf("dfs: %q/%d: %w", f.name, partitionIdx, err)
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	var recs []lake.Record
	bytes := 0
	p.tree.Ascend(lo, hi, func(k string, v []byte) bool {
		recs = append(recs, lake.Record{Key: k, Data: v})
		bytes += len(v)
		return true
	})
	owner.counters.AddRecordsRead(len(recs))
	owner.counters.AddBytesRead(bytes)
	return recs, nil
}

// Scan implements lake.File. The whole partition's scan cost is charged
// up front as one streaming I/O, then records are delivered in key order.
func (f *file) Scan(ctx context.Context, partitionIdx int, fn func(lake.Record) error) error {
	p, owner, err := f.part(partitionIdx)
	if err != nil {
		return err
	}
	if owner.transport != nil {
		scanned, bytes := 0, 0
		err := transportCall(ctx, owner, func() error {
			return owner.transport.Scan(ctx, f.name, partitionIdx, func(r lake.Record) error {
				scanned++
				bytes += len(r.Data)
				return fn(r)
			})
		})
		owner.counters.AddRecordsScanned(scanned)
		owner.counters.AddBytesRead(bytes)
		return err
	}
	if err := p.takeFault(); err != nil {
		return fmt.Errorf("dfs: %q/%d: %w", f.name, partitionIdx, err)
	}
	p.mu.RLock()
	n := p.tree.Len()
	p.mu.RUnlock()
	if err := f.admit(ctx, owner, true, n); err != nil {
		return err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return f.scanLocked(ctx, p, owner, fn)
}

// scanLocked iterates a partition's records in key order. The caller holds
// the partition's read lock.
func (f *file) scanLocked(ctx context.Context, p *partition, owner *node, fn func(lake.Record) error) error {
	var scanErr error
	scanned := 0
	bytes := 0
	p.tree.AscendAll(func(k string, v []byte) bool {
		if err := ctx.Err(); err != nil {
			scanErr = err
			return false
		}
		scanned++
		bytes += len(v)
		if err := fn(lake.Record{Key: k, Data: v}); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	owner.counters.AddRecordsScanned(scanned)
	owner.counters.AddBytesRead(bytes)
	return scanErr
}

// Append implements lake.File. Loading is not part of the measured
// experiments, so it is charged no simulated I/O cost.
func (f *file) Append(ctx context.Context, partitionIdx int, recs ...lake.Record) error {
	p, owner, err := f.part(partitionIdx)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if owner.transport != nil {
		if err := owner.transport.Append(ctx, f.name, partitionIdx, recs); err != nil {
			return err
		}
		// Listeners fire after the remote insert, NOT under a partition
		// lock: over a real transport the (insert, notify) pair is no
		// longer atomic with respect to scans, which is why exactly-once
		// online builds require the in-process transport (see
		// ScanWithBarrier).
		f.cluster.notifyAppend(f.name, partitionIdx, recs)
		owner.counters.AddAppend(len(recs))
		return nil
	}
	if err := p.takeFault(); err != nil {
		return fmt.Errorf("dfs: %q/%d: %w", f.name, partitionIdx, err)
	}
	p.mu.Lock()
	for _, r := range recs {
		p.tree.Insert(r.Key, r.Data)
		p.bytes += int64(len(r.Key) + len(r.Data) + recordOverheadBytes)
	}
	// Notify under the partition lock: listeners observe appends in the
	// same order scans do (see notifyAppend). Listeners write to OTHER
	// files' partitions only, so lock order is always base → index and
	// cannot cycle.
	f.cluster.notifyAppend(f.name, partitionIdx, recs)
	p.mu.Unlock()
	owner.counters.AddAppend(len(recs))
	return nil
}

// ScanWithBarrier is Scan with one extra guarantee: barrier is invoked
// after the partition's read lock is acquired and before the first record
// is delivered. An append's (insert, notify) pair is atomic under the same
// lock, so everything notified before barrier runs is visible to this scan,
// and everything notified after it is not. The structure builder uses the
// barrier to flip a partition's maintenance from "buffered" to "live" at
// exactly the point where responsibility for new records changes hands.
func (f *file) ScanWithBarrier(ctx context.Context, partitionIdx int, barrier func(), fn func(lake.Record) error) error {
	p, owner, err := f.part(partitionIdx)
	if err != nil {
		return err
	}
	if owner.transport != nil {
		// Degraded mode: over a real transport there is no shared partition
		// lock to make (barrier, first record) atomic with appends, so this
		// is barrier-then-scan. Appends racing the scan may be seen by both
		// the barrier-side listener and the scan; exactly-once online builds
		// therefore require the in-process transport.
		if barrier != nil {
			barrier()
		}
		return f.Scan(ctx, partitionIdx, fn)
	}
	if err := p.takeFault(); err != nil {
		return fmt.Errorf("dfs: %q/%d: %w", f.name, partitionIdx, err)
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if barrier != nil {
		barrier()
	}
	// Admission happens under the read lock here (unlike Scan): releasing
	// it to charge the gate would let appends slip between the barrier and
	// the iteration, which is exactly the ambiguity the barrier removes.
	// Builds therefore block concurrent appends to the partition for the
	// scan's modeled service time.
	if err := f.admit(ctx, owner, true, p.tree.Len()); err != nil {
		return err
	}
	return f.scanLocked(ctx, p, owner, fn)
}

// AppendRouted routes each record through the file's partitioner using the
// given partition key and appends it. It is the loader-side convenience for
// files whose partition key differs from the record key.
func AppendRouted(ctx context.Context, f lake.File, partKey lake.Key, rec lake.Record) error {
	p := f.Partitioner().Partition(partKey, f.NumPartitions())
	return f.Append(ctx, p, rec)
}

// Len returns the total number of records across all partitions of the
// named file (tooling/tests helper).
func (c *Cluster) Len(name string) (int, error) {
	c.mu.RLock()
	f, ok := c.files[name]
	c.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", lake.ErrNoSuchFile, name)
	}
	if c.remote {
		recs, _, err := f.remoteTotals()
		return recs, err
	}
	total := 0
	for _, p := range f.parts {
		p.mu.RLock()
		total += p.tree.Len()
		p.mu.RUnlock()
	}
	return total, nil
}

// remoteTotals sums record count and modeled bytes across partitions via
// each owner's transport Stat.
func (f *file) remoteTotals() (int, int64, error) {
	ctx := context.Background()
	recs, bytes := 0, int64(0)
	for i := range f.parts {
		_, owner, err := f.part(i)
		if err != nil {
			return 0, 0, err
		}
		r, b, err := owner.transport.Stat(ctx, f.name, i)
		if err != nil {
			return 0, 0, err
		}
		recs += r
		bytes += b
	}
	return recs, bytes, nil
}

// FileSizeBytes returns the named file's total modeled size in bytes
// (sum of per-partition byte accounting). The lifecycle manager charges a
// structure's residency against Options.StructureBudget with this number.
func (c *Cluster) FileSizeBytes(name string) (int64, error) {
	c.mu.RLock()
	f, ok := c.files[name]
	c.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", lake.ErrNoSuchFile, name)
	}
	return f.SizeBytes(), nil
}

// SizeBytes implements lake.SizedFile: the file's total modeled size.
func (f *file) SizeBytes() int64 {
	if f.cluster.remote {
		_, bytes, err := f.remoteTotals()
		if err != nil {
			return 0
		}
		return bytes
	}
	var total int64
	for _, p := range f.parts {
		p.mu.RLock()
		total += p.bytes
		p.mu.RUnlock()
	}
	return total
}

// Bind marks ctx as executing on the given node, so subsequent accesses are
// charged local or remote accordingly. It satisfies the query engines'
// Topology interface.
func (c *Cluster) Bind(ctx context.Context, nodeID int) context.Context {
	return WithCaller(ctx, nodeID)
}
