package dfs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/sim"
)

// faultFixture builds a one-node, one-partition btree file with n records
// keyed Int64(0..n-1).
func faultFixture(t *testing.T, n int) (*Cluster, lake.File, []lake.Key) {
	t.Helper()
	c := NewCluster(Config{Nodes: 1})
	f, err := c.CreateFile("t", Btree, 1, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]lake.Key, n)
	for i := 0; i < n; i++ {
		keys[i] = keycodec.Int64(int64(i))
		rec := lake.Record{Key: keys[i], Data: []byte(fmt.Sprintf("v%d", i))}
		if err := f.Append(context.Background(), 0, rec); err != nil {
			t.Fatal(err)
		}
	}
	return c, f, keys
}

// TestTransientFaultBatchParity is the regression test for the batch-path
// fault-consumption bug: LookupBatch used to consume ONE unit of a transient
// fault's heal budget per batch admission, while the unbatched path consumes
// one per key. A fault armed with times=N must heal after N key accesses on
// both paths.
func TestTransientFaultBatchParity(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("flaky disk")

	// Unbatched reference behaviour: budget 3 fails exactly 3 Lookups.
	c, f, keys := faultFixture(t, 8)
	if err := c.SetTransientFault("t", 0, boom, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Lookup(ctx, 0, keys[0]); !errors.Is(err, boom) {
			t.Fatalf("unbatched access %d: err = %v, want fault", i, err)
		}
	}
	if _, err := f.Lookup(ctx, 0, keys[0]); err != nil {
		t.Fatalf("unbatched access 4: fault did not heal: %v", err)
	}

	// Batched: a 2-key batch must consume 2 of the 3 units. One more
	// single-key access exhausts the budget; the next succeeds.
	c2, f2, keys2 := faultFixture(t, 8)
	bf := f2.(lake.BatchFile)
	if err := c2.SetTransientFault("t", 0, boom, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := bf.LookupBatch(ctx, 0, keys2[:2]); !errors.Is(err, boom) {
		t.Fatalf("batched access: err = %v, want fault", err)
	}
	if _, err := f2.Lookup(ctx, 0, keys2[0]); !errors.Is(err, boom) {
		t.Fatalf("third key access after 2-key batch: err = %v, want fault (1 unit left)", err)
	}
	if _, err := f2.Lookup(ctx, 0, keys2[0]); err != nil {
		t.Fatalf("fourth key access: fault did not heal: %v", err)
	}

	// A batch larger than the remaining budget exhausts it (never negative)
	// and the fault heals for the next access.
	c3, f3, keys3 := faultFixture(t, 8)
	bf3 := f3.(lake.BatchFile)
	if err := c3.SetTransientFault("t", 0, boom, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := bf3.LookupBatch(ctx, 0, keys3[:7]); !errors.Is(err, boom) {
		t.Fatalf("oversized batch: err = %v, want fault", err)
	}
	if got, err := bf3.LookupBatch(ctx, 0, keys3[:7]); err != nil {
		t.Fatalf("batch after exhaustion: %v", err)
	} else if len(got) != 7 {
		t.Fatalf("healed batch returned %d groups, want 7", len(got))
	}

	// Permanent faults (SetFault) are unaffected by batch size.
	c4, f4, keys4 := faultFixture(t, 8)
	bf4 := f4.(lake.BatchFile)
	if err := c4.SetFault("t", 0, boom); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := bf4.LookupBatch(ctx, 0, keys4[:5]); !errors.Is(err, boom) {
			t.Fatalf("permanent fault batch %d: err = %v", i, err)
		}
	}
	if err := c4.SetFault("t", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bf4.LookupBatch(ctx, 0, keys4[:5]); err != nil {
		t.Fatalf("cleared fault: %v", err)
	}
}

// TestNodeGateAccessor checks NodeGate hands out per-node gates (nil for a
// free cost model, one per node otherwise) and bounds-checks its argument.
func TestNodeGateAccessor(t *testing.T) {
	free := NewCluster(Config{Nodes: 2})
	if g := free.NodeGate(0); g != nil {
		t.Error("free cluster returned a non-nil gate")
	}
	c := NewCluster(Config{Nodes: 2, Cost: sim.CostModel{LookupLatency: time.Nanosecond}})
	if c.NodeGate(0) == nil || c.NodeGate(1) == nil {
		t.Error("priced cluster returned a nil gate")
	}
	if c.NodeGate(0) == c.NodeGate(1) {
		t.Error("nodes share a gate")
	}
	if c.NodeGate(-1) != nil || c.NodeGate(2) != nil {
		t.Error("out-of-range node returned a gate")
	}
}
