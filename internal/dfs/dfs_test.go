package dfs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/sim"
)

func newTestCluster(nodes int) *Cluster {
	return NewCluster(Config{Nodes: nodes})
}

func TestCreateAndCatalog(t *testing.T) {
	c := newTestCluster(3)
	f, err := c.CreateFile("part", Btree, 6, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "part" || f.NumPartitions() != 6 {
		t.Errorf("file meta wrong: %s/%d", f.Name(), f.NumPartitions())
	}
	got, err := c.File("part")
	if err != nil || got.Name() != "part" {
		t.Errorf("catalog lookup failed: %v", err)
	}
	if _, err := c.File("nope"); !errors.Is(err, lake.ErrNoSuchFile) {
		t.Errorf("missing file error = %v", err)
	}
	if _, err := c.CreateFile("part", Heap, 1, lake.HashPartitioner{}); err == nil {
		t.Error("duplicate CreateFile should fail")
	}
	if _, err := c.CreateFile("bad", Heap, 0, lake.HashPartitioner{}); err == nil {
		t.Error("CreateFile with 0 partitions should fail")
	}
	if _, err := c.CreateFile("bad2", Heap, 1, nil); err == nil {
		t.Error("CreateFile with nil partitioner should fail")
	}
	names := c.FileNames()
	if len(names) != 1 || names[0] != "part" {
		t.Errorf("FileNames = %v", names)
	}
}

func TestBtreeFileAccessor(t *testing.T) {
	c := newTestCluster(1)
	if _, err := c.CreateFile("h", Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile("b", Btree, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BtreeFile("h"); err == nil {
		t.Error("heap file must not be returned as BtreeFile")
	}
	if _, err := c.BtreeFile("b"); err != nil {
		t.Errorf("btree file accessor failed: %v", err)
	}
	if _, err := c.BtreeFile("missing"); err == nil {
		t.Error("missing BtreeFile should fail")
	}
}

func TestAppendLookupScan(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(2)
	f, _ := c.CreateFile("orders", Btree, 4, lake.HashPartitioner{})
	for i := int64(0); i < 100; i++ {
		k := keycodec.Int64(i)
		if err := AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte(fmt.Sprintf("order-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Every record is findable through its partitioner route.
	for i := int64(0); i < 100; i++ {
		k := keycodec.Int64(i)
		p := f.Partitioner().Partition(k, f.NumPartitions())
		recs, err := f.Lookup(ctx, p, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || string(recs[0].Data) != fmt.Sprintf("order-%d", i) {
			t.Fatalf("lookup %d = %v", i, recs)
		}
	}
	// Scanning all partitions yields all records exactly once.
	seen := map[string]bool{}
	for p := 0; p < f.NumPartitions(); p++ {
		err := f.Scan(ctx, p, func(r lake.Record) error {
			if seen[r.Key] {
				return fmt.Errorf("duplicate key %x", r.Key)
			}
			seen[r.Key] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 100 {
		t.Errorf("scan found %d records, want 100", len(seen))
	}
	if n, err := c.Len("orders"); err != nil || n != 100 {
		t.Errorf("Len = %d, %v", n, err)
	}
}

func TestLookupMissReturnsEmpty(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(1)
	f, _ := c.CreateFile("f", Heap, 2, lake.HashPartitioner{})
	recs, err := f.Lookup(ctx, 0, keycodec.Int64(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("miss returned %v", recs)
	}
}

func TestLookupRange(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(1)
	f, _ := c.CreateFile("idx", Btree, 1, lake.HashPartitioner{})
	for i := int64(0); i < 50; i++ {
		f.Append(ctx, 0, lake.Record{Key: keycodec.Int64(i), Data: nil})
	}
	bf, _ := c.BtreeFile("idx")
	recs, err := bf.LookupRange(ctx, 0, keycodec.Int64(10), keycodec.Int64(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Errorf("range returned %d records, want 11", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Key < recs[i-1].Key {
			t.Error("range results out of order")
		}
	}
}

func TestRangeOnHeapFileFails(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(1)
	c.CreateFile("h", Heap, 1, lake.HashPartitioner{})
	f, _ := c.File("h")
	if _, err := f.(lake.BtreeFile).LookupRange(ctx, 0, "a", "z"); err == nil {
		t.Error("LookupRange on heap file should fail")
	}
}

func TestDuplicateKeys(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(1)
	f, _ := c.CreateFile("idx", Btree, 1, lake.HashPartitioner{})
	for i := 0; i < 5; i++ {
		f.Append(ctx, 0, lake.Record{Key: "dup", Data: []byte{byte(i)}})
	}
	recs, err := f.Lookup(ctx, 0, "dup")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("duplicate lookup returned %d records, want 5", len(recs))
	}
}

func TestPartitionOutOfRange(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(1)
	f, _ := c.CreateFile("f", Btree, 2, lake.HashPartitioner{})
	if _, err := f.Lookup(ctx, 5, "k"); !errors.Is(err, lake.ErrNoSuchPartition) {
		t.Errorf("out-of-range lookup error = %v", err)
	}
	if err := f.Scan(ctx, -1, func(lake.Record) error { return nil }); !errors.Is(err, lake.ErrNoSuchPartition) {
		t.Errorf("out-of-range scan error = %v", err)
	}
	if err := f.Append(ctx, 9, lake.Record{}); !errors.Is(err, lake.ErrNoSuchPartition) {
		t.Errorf("out-of-range append error = %v", err)
	}
}

func TestMetricsAccounting(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(1)
	f, _ := c.CreateFile("f", Btree, 1, lake.HashPartitioner{})
	for i := int64(0); i < 10; i++ {
		f.Append(ctx, 0, lake.Record{Key: keycodec.Int64(i), Data: []byte("xx")})
	}
	before := c.TotalMetrics()
	f.Lookup(ctx, 0, keycodec.Int64(3))
	f.Scan(ctx, 0, func(lake.Record) error { return nil })
	d := c.TotalMetrics().Sub(before)
	if d.Lookups != 1 {
		t.Errorf("lookups = %d, want 1", d.Lookups)
	}
	if d.RecordsRead != 1 {
		t.Errorf("records read = %d, want 1", d.RecordsRead)
	}
	if d.RecordsScanned != 10 {
		t.Errorf("records scanned = %d, want 10", d.RecordsScanned)
	}
	if d.BytesRead != 22 { // 2 bytes lookup + 20 bytes scan
		t.Errorf("bytes read = %d, want 22", d.BytesRead)
	}
}

func TestRemoteFetchAccounting(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(4)
	f, _ := c.CreateFile("f", Btree, 4, lake.HashPartitioner{})
	f.Append(ctx, 2, lake.Record{Key: "k", Data: nil})
	owner := c.OwnerNode(2)

	before := c.TotalMetrics()
	f.Lookup(WithCaller(ctx, owner), 2, "k") // local
	if d := c.TotalMetrics().Sub(before); d.RemoteFetches != 0 {
		t.Errorf("local access counted %d remote fetches", d.RemoteFetches)
	}
	before = c.TotalMetrics()
	f.Lookup(WithCaller(ctx, (owner+1)%4), 2, "k") // remote
	if d := c.TotalMetrics().Sub(before); d.RemoteFetches != 1 {
		t.Errorf("remote access counted %d remote fetches, want 1", d.RemoteFetches)
	}
	// External (no caller) counts as local.
	before = c.TotalMetrics()
	f.Lookup(ctx, 2, "k")
	if d := c.TotalMetrics().Sub(before); d.RemoteFetches != 0 {
		t.Errorf("external access counted %d remote fetches", d.RemoteFetches)
	}
}

func TestCallerNodeDefault(t *testing.T) {
	if CallerNode(context.Background()) != -1 {
		t.Error("default caller should be -1")
	}
	if CallerNode(WithCaller(context.Background(), 7)) != 7 {
		t.Error("WithCaller not round-tripping")
	}
}

func TestFaultInjection(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(1)
	f, _ := c.CreateFile("f", Btree, 2, lake.HashPartitioner{})
	f.Append(ctx, 0, lake.Record{Key: "k", Data: nil})
	boom := errors.New("disk on fire")
	if err := c.SetFault("f", 0, boom); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lookup(ctx, 0, "k"); !errors.Is(err, boom) {
		t.Errorf("lookup fault = %v", err)
	}
	if err := f.Scan(ctx, 0, func(lake.Record) error { return nil }); !errors.Is(err, boom) {
		t.Errorf("scan fault = %v", err)
	}
	if err := f.Append(ctx, 0, lake.Record{}); !errors.Is(err, boom) {
		t.Errorf("append fault = %v", err)
	}
	// Partition 1 unaffected.
	if _, err := f.Lookup(ctx, 1, "k"); err != nil {
		t.Errorf("healthy partition failed: %v", err)
	}
	// Clearing restores service.
	c.SetFault("f", 0, nil)
	if _, err := f.Lookup(ctx, 0, "k"); err != nil {
		t.Errorf("cleared fault still failing: %v", err)
	}
	if err := c.SetFault("nope", 0, boom); err == nil {
		t.Error("SetFault on missing file should fail")
	}
	if err := c.SetFault("f", 9, boom); err == nil {
		t.Error("SetFault on missing partition should fail")
	}
}

func TestScanStopsOnCallbackError(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(1)
	f, _ := c.CreateFile("f", Btree, 1, lake.HashPartitioner{})
	for i := int64(0); i < 100; i++ {
		f.Append(ctx, 0, lake.Record{Key: keycodec.Int64(i)})
	}
	stop := errors.New("stop")
	n := 0
	err := f.Scan(ctx, 0, func(lake.Record) error {
		n++
		if n == 10 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Errorf("scan error = %v", err)
	}
	if n != 10 {
		t.Errorf("scan visited %d records after error, want 10", n)
	}
}

func TestScanHonorsContextCancel(t *testing.T) {
	c := newTestCluster(1)
	f, _ := c.CreateFile("f", Btree, 1, lake.HashPartitioner{})
	for i := int64(0); i < 100; i++ {
		f.Append(context.Background(), 0, lake.Record{Key: keycodec.Int64(i)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := f.Scan(ctx, 0, func(lake.Record) error {
		n++
		if n == 5 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Error("cancelled scan returned nil error")
	}
	if n > 6 {
		t.Errorf("scan continued %d records after cancel", n)
	}
}

func TestCostModelSlowsLookups(t *testing.T) {
	ctx := context.Background()
	c := NewCluster(Config{Nodes: 1, Cost: sim.CostModel{LookupLatency: 15 * time.Millisecond}})
	f, _ := c.CreateFile("f", Btree, 1, lake.HashPartitioner{})
	f.Append(ctx, 0, lake.Record{Key: "k"})
	start := time.Now()
	f.Lookup(ctx, 0, "k")
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("costed lookup took %v, want >= 15ms", d)
	}
}

func TestOwnerNodeRoundRobin(t *testing.T) {
	c := newTestCluster(3)
	for i := 0; i < 9; i++ {
		if got := c.OwnerNode(i); got != i%3 {
			t.Errorf("OwnerNode(%d) = %d, want %d", i, got, i%3)
		}
	}
}

// TestPropertyRoutedRecordsAlwaysFindable: whatever keys are loaded through
// AppendRouted can always be found back through the same partitioner route,
// for arbitrary partition counts and node counts.
func TestPropertyRoutedRecordsAlwaysFindable(t *testing.T) {
	f := func(keys []int64, nodes, parts uint8) bool {
		ctx := context.Background()
		c := newTestCluster(int(nodes%8) + 1)
		nParts := int(parts%16) + 1
		file, err := c.CreateFile("f", Btree, nParts, lake.HashPartitioner{})
		if err != nil {
			return false
		}
		for _, k := range keys {
			ek := keycodec.Int64(k)
			if err := AppendRouted(ctx, file, ek, lake.Record{Key: ek}); err != nil {
				return false
			}
		}
		for _, k := range keys {
			ek := keycodec.Int64(k)
			p := file.Partitioner().Partition(ek, nParts)
			recs, err := file.Lookup(ctx, p, ek)
			if err != nil || len(recs) == 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDropFile(t *testing.T) {
	c := newTestCluster(1)
	c.CreateFile("f", Heap, 1, lake.HashPartitioner{})
	c.DropFile("f")
	if _, err := c.File("f"); err == nil {
		t.Error("dropped file still in catalog")
	}
	if _, err := c.CreateFile("f", Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Errorf("recreate after drop failed: %v", err)
	}
}

func TestLenMissingFile(t *testing.T) {
	c := newTestCluster(1)
	if _, err := c.Len("missing"); err == nil {
		t.Error("Len on missing file should fail")
	}
}
