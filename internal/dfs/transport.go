package dfs

// The node transport seam: every per-node data operation the engines issue
// (lookups, batched lookups, range reads, scans, appends, size stats) can be
// routed through a NodeTransport. The in-process sim keeps its historical
// fast path (a node with a nil transport executes against the local
// partition structures exactly as before), Local adapts that path to the
// interface so a networked node server can host it, and a cluster built with
// NewClusterWithTransports delegates each node's operations to an arbitrary
// implementation — the real TCP client in internal/nodenet, or a chaos proxy
// wrapping either.

import (
	"context"
	"fmt"
	"time"

	"lakeharbor/internal/lake"
	"lakeharbor/internal/trace"
)

// NodeTransport is the seam between the executor/lake layers and one storage
// node. Every method addresses a (file, partition) pair whose partition is
// owned by the node behind the transport; callers resolve ownership first
// (partition i of every file lives on node i mod NumNodes).
//
// Implementations must classify failures the way the retry machinery
// expects: errors that can never heal (unknown file, bad partition index,
// malformed protocol frames) are marked with lake.AsPermanent or wrap
// lake.ErrNoSuchFile/lake.ErrNoSuchPartition; everything else (connection
// refused, timeouts, injected faults) stays transient and is retried by the
// executor with backoff.
type NodeTransport interface {
	// CreateFile registers a new empty file on the node.
	CreateFile(ctx context.Context, name string, kind Kind, partitions int, p lake.Partitioner) error
	// DropFile removes a file; dropping an unknown file is a no-op.
	DropFile(ctx context.Context, name string) error
	// Lookup returns the records stored under key in the partition.
	Lookup(ctx context.Context, file string, partition int, key lake.Key) ([]lake.Record, error)
	// LookupBatch serves a whole pointer batch in one round trip; out[i]
	// holds the records for keys[i] (PR 2's batch shape, and the wire unit
	// of the networked transport).
	LookupBatch(ctx context.Context, file string, partition int, keys []lake.Key) ([][]lake.Record, error)
	// LookupRange returns every record with lo <= key <= hi, in key order.
	LookupRange(ctx context.Context, file string, partition int, lo, hi lake.Key) ([]lake.Record, error)
	// Scan delivers the partition's records in key order.
	Scan(ctx context.Context, file string, partition int, fn func(lake.Record) error) error
	// Append inserts records into the partition.
	Append(ctx context.Context, file string, partition int, recs []lake.Record) error
	// Stat reports the partition's record count and modeled byte size.
	Stat(ctx context.Context, file string, partition int) (records int, bytes int64, err error)
	// Close releases the transport's resources (connections, pools).
	Close() error
}

// localTransport adapts a sim cluster's in-process data path to the
// NodeTransport interface. It is the storage side of a networked node (the
// lakenode server executes decoded RPCs against it) and the inner layer
// chaos transport proxies wrap in tests.
type localTransport struct{ c *Cluster }

// Local returns the in-process NodeTransport over the cluster: operations
// execute directly against the cluster's partitions, with the same gate
// admission, counters, and fault injection as direct file-method calls.
func Local(c *Cluster) NodeTransport { return localTransport{c} }

func (t localTransport) lookup(name string) (*file, error) {
	t.c.mu.RLock()
	defer t.c.mu.RUnlock()
	f, ok := t.c.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", lake.ErrNoSuchFile, name)
	}
	return f, nil
}

func (t localTransport) CreateFile(_ context.Context, name string, kind Kind, partitions int, p lake.Partitioner) error {
	_, err := t.c.CreateFile(name, kind, partitions, p)
	return err
}

func (t localTransport) DropFile(_ context.Context, name string) error {
	t.c.DropFile(name)
	return nil
}

func (t localTransport) Lookup(ctx context.Context, file string, partition int, key lake.Key) ([]lake.Record, error) {
	f, err := t.lookup(file)
	if err != nil {
		return nil, err
	}
	return f.Lookup(ctx, partition, key)
}

func (t localTransport) LookupBatch(ctx context.Context, file string, partition int, keys []lake.Key) ([][]lake.Record, error) {
	f, err := t.lookup(file)
	if err != nil {
		return nil, err
	}
	return f.LookupBatch(ctx, partition, keys)
}

func (t localTransport) LookupRange(ctx context.Context, file string, partition int, lo, hi lake.Key) ([]lake.Record, error) {
	f, err := t.lookup(file)
	if err != nil {
		return nil, err
	}
	return f.LookupRange(ctx, partition, lo, hi)
}

func (t localTransport) Scan(ctx context.Context, file string, partition int, fn func(lake.Record) error) error {
	f, err := t.lookup(file)
	if err != nil {
		return err
	}
	return f.Scan(ctx, partition, fn)
}

func (t localTransport) Append(ctx context.Context, file string, partition int, recs []lake.Record) error {
	f, err := t.lookup(file)
	if err != nil {
		return err
	}
	return f.Append(ctx, partition, recs...)
}

func (t localTransport) Stat(_ context.Context, file string, partition int) (int, int64, error) {
	f, err := t.lookup(file)
	if err != nil {
		return 0, 0, err
	}
	if partition < 0 || partition >= len(f.parts) {
		return 0, 0, fmt.Errorf("%w: %q/%d", lake.ErrNoSuchPartition, file, partition)
	}
	p := f.parts[partition]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.tree.Len(), p.bytes, nil
}

func (t localTransport) Close() error { return nil }

// NewClusterWithTransports builds a cluster whose node i delegates every
// data operation to transports[i] — the front end of a real multi-process
// data plane. The cluster keeps only catalog metadata locally; record data
// lives behind the transports. CreateFile/DropFile broadcast to every
// distinct transport so each node knows the full catalog.
//
// cfg.Nodes is ignored (the node count is len(transports)); cfg.Cost should
// normally stay zero so the front end charges no simulated latency on top of
// the transports' real round trips.
//
// Remote-backed clusters differ from the sim in two documented ways: fault
// injection (SetFault/SetTransientFault) is rejected — inject at the
// transport layer instead (chaos.WrapTransport) — and ScanWithBarrier
// degrades to barrier-then-scan, so exactly-once online structure builds
// require the in-process transport.
func NewClusterWithTransports(cfg Config, transports []NodeTransport) (*Cluster, error) {
	if len(transports) == 0 {
		return nil, fmt.Errorf("dfs: NewClusterWithTransports needs at least one transport")
	}
	c := NewCluster(Config{Nodes: len(transports), Cost: cfg.Cost})
	for i, t := range transports {
		if t == nil {
			return nil, fmt.Errorf("dfs: transport %d is nil", i)
		}
		c.nodes[i].transport = t
	}
	c.remote = true
	return c, nil
}

// SetNodeTransport swaps node i's transport (nil restores the in-process sim
// path). It exists so harnesses can interpose a proxying transport — e.g.
// the chaos wrapper — around a live node between runs; it must not be called
// while operations are in flight.
func (c *Cluster) SetNodeTransport(i int, t NodeTransport) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("dfs: no node %d", i)
	}
	c.nodes[i].transport = t
	return nil
}

// distinctTransports lists the cluster's transports, deduplicated (several
// nodes may share one), in node order.
func (c *Cluster) distinctTransports() []NodeTransport {
	seen := make(map[NodeTransport]bool, len(c.nodes))
	var out []NodeTransport
	for _, n := range c.nodes {
		if n.transport == nil || seen[n.transport] {
			continue
		}
		seen[n.transport] = true
		out = append(out, n.transport)
	}
	return out
}

// remoteCreate broadcasts a CreateFile to every distinct transport, rolling
// back the ones that succeeded if any fails.
func (c *Cluster) remoteCreate(name string, kind Kind, partitions int, p lake.Partitioner) error {
	ctx := context.Background()
	ts := c.distinctTransports()
	for i, t := range ts {
		if err := t.CreateFile(ctx, name, kind, partitions, p); err != nil {
			for _, done := range ts[:i] {
				done.DropFile(ctx, name) //nolint:errcheck // best-effort rollback
			}
			return fmt.Errorf("dfs: remote create %q: %w", name, err)
		}
	}
	return nil
}

// remoteDrop broadcasts a DropFile; drops are best-effort (the local catalog
// is authoritative and a node that missed the drop only holds dead data).
func (c *Cluster) remoteDrop(name string) {
	ctx := context.Background()
	for _, t := range c.distinctTransports() {
		t.DropFile(ctx, name) //nolint:errcheck
	}
}

// transportCall wraps one remote access with the same trace attribution the
// sim path applies in admit: a local/remote observation on the calling
// node's trace and, on success, the observed round-trip latency. Calls that
// carry RPC trace context (executor dereferences) additionally land an
// EvRPC interval on the job's timeline, so the critical-path extractor can
// name wire-dominated segments as (stage, node, rpc).
func transportCall(ctx context.Context, owner *node, call func() error) error {
	remote := false
	if caller := CallerNode(ctx); caller >= 0 && caller != owner.id {
		remote = true
		owner.counters.AddRemoteFetch()
	}
	io := trace.IOFrom(ctx)
	if io != nil {
		io.Observe(remote)
	}
	var t0 time.Time
	if io != nil {
		t0 = time.Now()
	}
	err := call()
	if err == nil && io != nil {
		d := time.Since(t0)
		io.ObserveLatency(remote, d)
		if rc := trace.RPCFrom(ctx); rc.Job != "" {
			io.ObserveRPC(rc.Stage, t0, d)
		}
	}
	return err
}
