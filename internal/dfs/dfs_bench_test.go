package dfs

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

func benchCluster(b *testing.B, rows int) (*Cluster, lake.File) {
	b.Helper()
	ctx := context.Background()
	c := NewCluster(Config{Nodes: 4})
	f, err := c.CreateFile("bench", Btree, 8, lake.HashPartitioner{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		k := keycodec.Int64(int64(i))
		if err := AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte("payload-of-a-record")}); err != nil {
			b.Fatal(err)
		}
	}
	return c, f
}

func BenchmarkLookup(b *testing.B) {
	_, f := benchCluster(b, 100000)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keycodec.Int64(int64(i % 100000))
		p := f.Partitioner().Partition(k, f.NumPartitions())
		if _, err := f.Lookup(ctx, p, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupParallel(b *testing.B) {
	_, f := benchCluster(b, 100000)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keycodec.Int64(int64(i % 100000))
			p := f.Partitioner().Partition(k, f.NumPartitions())
			if _, err := f.Lookup(ctx, p, k); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkScanPartition(b *testing.B) {
	_, f := benchCluster(b, 100000)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := f.Scan(ctx, i%f.NumPartitions(), func(lake.Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendRouted(b *testing.B) {
	ctx := context.Background()
	c := NewCluster(Config{Nodes: 4})
	f, _ := c.CreateFile("bench", Btree, 8, lake.HashPartitioner{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keycodec.Int64(int64(i))
		if err := AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte("x")}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestConcurrentReadersAndWriters hammers one file with parallel lookups,
// range reads, scans, and appends; the race detector validates the locking.
func TestConcurrentReadersAndWriters(t *testing.T) {
	ctx := context.Background()
	c := NewCluster(Config{Nodes: 2})
	f, err := c.CreateFile("hot", Btree, 4, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := c.BtreeFile("hot")
	for i := 0; i < 1000; i++ {
		k := keycodec.Int64(int64(i))
		AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte(fmt.Sprint(i))})
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keycodec.Int64(int64(1000 + w*500 + i))
				if err := AppendRouted(ctx, f, k, lake.Record{Key: k}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keycodec.Int64(int64(i))
				p := f.Partitioner().Partition(k, f.NumPartitions())
				if _, err := f.Lookup(ctx, p, k); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := bf.LookupRange(ctx, i%4, keycodec.Int64(0), keycodec.Int64(100)); err != nil {
					t.Error(err)
					return
				}
				if err := f.Scan(ctx, i%4, func(lake.Record) error { return nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := c.Len("hot"); n != 3000 {
		t.Fatalf("after concurrent writes: %d records, want 3000", n)
	}
}
