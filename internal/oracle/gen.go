package oracle

// The scenario generator: one int64 seed expands into a random cluster
// (nodes, partitions, cost model), a random dataset (key kinds, duplicate
// secondary-index values, partitioners), a random multi-stage job over it,
// and the expected answer computed through internal/baseline — a scan
// engine that shares no execution code with the SMPE executor, which is
// what makes the differential comparison an oracle rather than a tautology.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"lakeharbor/internal/baseline"
	"lakeharbor/internal/chaos"
	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/sim"
)

// File names used by every generated scenario.
const (
	baseFile = "base"
	idxFile  = "base_val_idx"
	dimFile  = "dim"
)

// scenario is one fully-materialized differential test case.
type scenario struct {
	seed    int64
	desc    string
	cluster *dfs.Cluster
	job     *core.Job
	// expected is the answer multiset (see rowKey), computed via baseline.
	expected      map[string]int
	expectedCount int
	// target lists the faultable surface for chaos.Compile.
	target chaos.Target
	// Executor options the scenario was drawn with.
	threads  int
	maxBatch int
	// Seed routing split, for the stage-0 pointer-conservation invariant.
	routedSeeds    int
	broadcastSeeds int
	// ptrFanout maps a deref stage to the expected pointers-per-emit
	// multiplier of the referencer feeding it: 1 for routed pointers
	// (default), NumNodes when that referencer broadcasts.
	ptrFanout map[int]int
	// lcSpec, for index-bearing forms, is an access-method spec whose build
	// reproduces the hand-built index entry for entry (same keys, payloads,
	// partition count, and partitioner), so the lifecycle arm can drop the
	// index and rebuild it through a lifecycle Manager without changing the
	// job's seeds or answer. Nil for forms without an index.
	lcSpec *indexer.Spec
	// lo, hi are the val bounds of the range forms and broadcast marks the
	// join form's broadcast variant — the script arm mirrors the job's
	// compiled functions as script source from them.
	lo, hi    int
	broadcast bool
}

// rowKey is the multiset identity of one result record.
func rowKey(r lake.Record) string {
	return r.Key + "\x1f" + string(r.Data)
}

func multisetOf(recs []lake.Record) map[string]int {
	m := make(map[string]int, len(recs))
	for _, r := range recs {
		m[rowKey(r)]++
	}
	return m
}

// parseVal extracts the numeric val column from a "<id>|<val>" payload.
func parseVal(data []byte) (int, error) {
	i := bytes.IndexByte(data, '|')
	if i < 0 {
		return 0, fmt.Errorf("oracle: payload %q has no field separator", data)
	}
	return strconv.Atoi(string(data[i+1:]))
}

// interpBase is the schema-on-read interpreter for base rows.
func interpBase(rec lake.Record) (core.Fields, error) {
	i := bytes.IndexByte(rec.Data, '|')
	if i < 0 {
		return nil, fmt.Errorf("oracle: payload %q has no field separator", rec.Data)
	}
	return core.Fields{"id": string(rec.Data[:i]), "val": string(rec.Data[i+1:])}, nil
}

// encodeVal encodes the val column as an ordered key (the index key).
func encodeVal(value string) (lake.Key, error) {
	v, err := strconv.ParseInt(value, 10, 64)
	if err != nil {
		return "", err
	}
	return keycodec.Int64(v), nil
}

// generate expands a seed into a scenario. Everything random is drawn from
// the one rng in a fixed order, so the same seed always produces the same
// cluster, data, and job.
func generate(ctx context.Context, seed int64) (*scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	sc := &scenario{seed: seed, expected: map[string]int{}}

	nodes := 1 + rng.Intn(4)
	parts := 1 + rng.Intn(5)
	cost := sim.CostModel{}
	costName := "free"
	if rng.Float64() < 0.5 {
		cost = sim.CostModel{
			LookupLatency: time.Duration(1+rng.Intn(10)) * time.Microsecond,
			ScanPerRecord: time.Duration(rng.Intn(300)) * time.Nanosecond,
			NetworkRTT:    time.Duration(rng.Intn(10)) * time.Microsecond,
			BatchPerKey:   time.Duration(rng.Intn(2)) * time.Microsecond,
			QueueDepth:    4 + rng.Intn(12),
			Spindles:      2 + rng.Intn(6),
		}
		costName = "priced"
	}
	sc.cluster = dfs.NewCluster(dfs.Config{Nodes: nodes, Cost: cost})
	sc.threads = []int{4, 16, 64, core.DefaultThreads}[rng.Intn(4)]
	sc.maxBatch = []int{2, 3, 8, core.DefaultMaxBatch}[rng.Intn(4)]

	// Dataset: n base rows "id|val" with val drawn from a small domain so
	// the secondary index holds duplicates.
	n := 20 + rng.Intn(120)
	valDomain := 1 + rng.Intn(12)
	keyKind := []string{"int64", "string", "composite"}[rng.Intn(3)]
	pk := func(i int) lake.Key {
		switch keyKind {
		case "string":
			return keycodec.String(fmt.Sprintf("row-%05d", i))
		case "composite":
			return keycodec.Tuple(keycodec.String(fmt.Sprintf("g%d", i%3)), keycodec.Int64(int64(i)))
		default:
			return keycodec.Int64(int64(i) * 7) // spaced: range bounds fall between keys
		}
	}
	pks := make([]lake.Key, n)
	vals := make([]int, n)
	for i := range pks {
		pks[i] = pk(i)
		vals[i] = rng.Intn(valDomain)
	}

	basePart := samplePartitioner(rng, parts, pks)
	bf, err := sc.cluster.CreateFile(baseFile, dfs.Btree, parts, basePart)
	if err != nil {
		return nil, err
	}
	sc.target = chaos.Target{Nodes: nodes, Files: []chaos.FileInfo{{Name: baseFile, Partitions: parts}}}
	for i := 0; i < n; i++ {
		rec := lake.Record{Key: pks[i], Data: []byte(fmt.Sprintf("%d|%d", i, vals[i]))}
		if err := dfs.AppendRouted(ctx, bf, pks[i], rec); err != nil {
			return nil, err
		}
	}

	form := rng.Intn(4)
	var build func(*scenario, *rand.Rand, buildIn) error
	switch form {
	case 0:
		build = buildPointLookups
	case 1:
		build = buildLocalIndexRange
	case 2:
		build = buildGlobalIndexRange
	default:
		build = buildBroadcastableJoin
	}
	in := buildIn{ctx: ctx, n: n, valDomain: valDomain, parts: parts, pks: pks, vals: vals, base: bf}
	if err := build(sc, rng, in); err != nil {
		return nil, err
	}

	for _, s := range sc.job.Seeds {
		if s.NoPart {
			sc.broadcastSeeds++
		} else {
			sc.routedSeeds++
		}
	}
	sc.expectedCount = 0
	for _, c := range sc.expected {
		sc.expectedCount += c
	}
	sc.desc = fmt.Sprintf("form=%s nodes=%d parts=%d rows=%d keys=%s basePart=%s cost=%s threads=%d maxBatch=%d expect=%d",
		sc.job.Name, nodes, parts, n, keyKind, basePart.Name(), costName, sc.threads, sc.maxBatch, sc.expectedCount)
	return sc, nil
}

// buildIn carries the generated dataset into the per-form builders.
type buildIn struct {
	ctx       context.Context
	n         int
	valDomain int
	parts     int
	pks       []lake.Key
	vals      []int
	base      lake.File
}

// samplePartitioner picks hash or range partitioning; range bounds are
// evenly-spaced sampled keys so partitions are non-degenerate.
func samplePartitioner(rng *rand.Rand, parts int, keys []lake.Key) lake.Partitioner {
	if parts < 2 || rng.Float64() < 0.5 {
		return lake.HashPartitioner{}
	}
	sorted := append([]lake.Key(nil), keys...)
	sort.Strings(sorted)
	bounds := make([]lake.Key, 0, parts-1)
	for i := 1; i < parts; i++ {
		bounds = append(bounds, sorted[i*len(sorted)/parts])
	}
	return lake.NewRangePartitioner(bounds...)
}

// pickSeedKeys draws a deduplicated mix of existing and missing primary
// keys (a multiset answer must not depend on a key being seeded twice).
func pickSeedKeys(rng *rand.Rand, in buildIn) []lake.Key {
	m := 1 + rng.Intn(20)
	seen := map[lake.Key]bool{}
	var out []lake.Key
	for len(out) < m {
		var k lake.Key
		if rng.Float64() < 0.7 {
			k = in.pks[rng.Intn(in.n)]
		} else {
			k = keycodec.Tuple(keycodec.String("missing"), keycodec.Int64(int64(in.n+rng.Intn(50))))
		}
		if seen[k] {
			m-- // a duplicate draw shrinks the batch instead of spinning
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	return out
}

// buildPointLookups: form "point" — a single LookupDeref stage over a mixed
// hit/miss seed set. Exercises seed routing and the batch Lookup path.
func buildPointLookups(sc *scenario, rng *rand.Rand, in buildIn) error {
	keys := pickSeedKeys(rng, in)
	want := map[lake.Key]bool{}
	seeds := make([]lake.Pointer, 0, len(keys))
	for _, k := range keys {
		want[k] = true
		seeds = append(seeds, lake.Pointer{File: baseFile, PartKey: k, Key: k})
	}
	job, err := core.NewJob("point", seeds, core.LookupDeref{File: baseFile})
	if err != nil {
		return err
	}
	sc.job = job
	return expectScan(sc, in, baseFile, func(r lake.Record) (bool, error) { return want[r.Key], nil }, nil)
}

// appendIndex writes one index entry per base row into idx, routed by
// routeKey(i) through idx's partitioner. Entries carry (partKey, pk) of the
// indexed row and are stored under the encoded val — duplicates included.
func appendIndex(in buildIn, idx lake.File, routeKey func(i int) lake.Key) error {
	for i := 0; i < in.n; i++ {
		entry := lake.Record{
			Key:  keycodec.Int64(int64(in.vals[i])),
			Data: lake.EncodeIndexEntry(in.pks[i], in.pks[i]),
		}
		if err := dfs.AppendRouted(in.ctx, idx, routeKey(i), entry); err != nil {
			return err
		}
	}
	return nil
}

// lifecycleSpec builds the access-method spec equivalent to what
// appendIndex hand-wrote: each base row "id|val" is indexed under the
// encoded val with an entry carrying (pk, pk), the base being partitioned
// by its own primary key. Kind, partition count, and partitioner must match
// the generated index so the rebuild routes every entry to the same
// partition the hand-built one used, keeping precomputed seeds valid.
func lifecycleSpec(kind indexer.Kind, parts int, part lake.Partitioner) *indexer.Spec {
	return &indexer.Spec{
		Name:        idxFile,
		Base:        baseFile,
		Kind:        kind,
		Partitions:  parts,
		Partitioner: part,
		PartKey:     func(rec lake.Record) (lake.Key, error) { return rec.Key, nil },
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			v, err := parseVal(rec.Data)
			if err != nil {
				return nil, err
			}
			return []lake.Key{keycodec.Int64(int64(v))}, nil
		},
	}
}

// valRange draws an inclusive [lo, hi] sub-range of the val domain.
func valRange(rng *rand.Rand, domain int) (int, int) {
	lo := rng.Intn(domain)
	return lo, lo + rng.Intn(domain-lo)
}

// buildLocalIndexRange: form "local-range" — a secondary index
// co-partitioned with the base table (routed by primary key), probed with
// one broadcast range seed: RangeDeref → EntryRef → LookupDeref.
func buildLocalIndexRange(sc *scenario, rng *rand.Rand, in buildIn) error {
	idx, err := sc.cluster.CreateFile(idxFile, dfs.Btree, in.parts, in.base.Partitioner())
	if err != nil {
		return err
	}
	sc.target.Files = append(sc.target.Files, chaos.FileInfo{Name: idxFile, Partitions: in.parts})
	if err := appendIndex(in, idx, func(i int) lake.Key { return in.pks[i] }); err != nil {
		return err
	}
	sc.lcSpec = lifecycleSpec(indexer.Local, in.parts, in.base.Partitioner())
	lo, hi := valRange(rng, in.valDomain)
	sc.lo, sc.hi = lo, hi
	seeds := []lake.Pointer{{File: idxFile, NoPart: true, Key: keycodec.Int64(int64(lo)), EndKey: keycodec.Int64(int64(hi))}}
	job, err := core.NewJob("local-range", seeds,
		core.RangeDeref{File: idxFile},
		core.EntryRef{Target: baseFile},
		core.LookupDeref{File: baseFile},
	)
	if err != nil {
		return err
	}
	sc.job = job
	return expectScan(sc, in, baseFile, predValBetween(lo, hi), nil)
}

// buildGlobalIndexRange: form "global-range" — a secondary index
// partitioned by the indexed value itself (hash or range), seeded through
// core.SeedRange so range-partitioned indexes get routed seeds.
func buildGlobalIndexRange(sc *scenario, rng *rand.Rand, in buildIn) error {
	idxParts := 1 + rng.Intn(5)
	valKeys := make([]lake.Key, in.valDomain)
	for v := range valKeys {
		valKeys[v] = keycodec.Int64(int64(v))
	}
	idxPart := samplePartitioner(rng, idxParts, valKeys)
	idx, err := sc.cluster.CreateFile(idxFile, dfs.Btree, idxParts, idxPart)
	if err != nil {
		return err
	}
	sc.target.Files = append(sc.target.Files, chaos.FileInfo{Name: idxFile, Partitions: idxParts})
	if err := appendIndex(in, idx, func(i int) lake.Key { return keycodec.Int64(int64(in.vals[i])) }); err != nil {
		return err
	}
	sc.lcSpec = lifecycleSpec(indexer.Global, idxParts, idxPart)
	lo, hi := valRange(rng, in.valDomain)
	sc.lo, sc.hi = lo, hi
	seeds, err := core.SeedRange(sc.cluster, idxFile, keycodec.Int64(int64(lo)), keycodec.Int64(int64(hi)))
	if err != nil {
		return err
	}
	job, err := core.NewJob("global-range", seeds,
		core.RangeDeref{File: idxFile},
		core.EntryRef{Target: baseFile},
		core.LookupDeref{File: baseFile},
	)
	if err != nil {
		return err
	}
	sc.job = job
	return expectScan(sc, in, baseFile, predValBetween(lo, hi), nil)
}

// buildBroadcastableJoin: form "join" — point-fetch base rows, reference
// their val column into a dimension table (sometimes as a broadcast join),
// and combine: LookupDeref → FieldRef(Carry) → LookupDeref(Combine).
func buildBroadcastableJoin(sc *scenario, rng *rand.Rand, in buildIn) error {
	dimParts := 1 + rng.Intn(4)
	valKeys := make([]lake.Key, in.valDomain)
	for v := range valKeys {
		valKeys[v] = keycodec.Int64(int64(v))
	}
	dim, err := sc.cluster.CreateFile(dimFile, dfs.Btree, dimParts, samplePartitioner(rng, dimParts, valKeys))
	if err != nil {
		return err
	}
	sc.target.Files = append(sc.target.Files, chaos.FileInfo{Name: dimFile, Partitions: dimParts})
	// Dimension rows: 0–3 per val, so some base rows join to nothing and
	// others fan out.
	for v := 0; v < in.valDomain; v++ {
		for j := 0; j < rng.Intn(4); j++ {
			k := keycodec.Int64(int64(v))
			rec := lake.Record{Key: k, Data: []byte(fmt.Sprintf("d%d|%d", j, v))}
			if err := dfs.AppendRouted(in.ctx, dim, k, rec); err != nil {
				return err
			}
		}
	}

	keys := pickSeedKeys(rng, in)
	want := map[lake.Key]bool{}
	seeds := make([]lake.Pointer, 0, len(keys))
	for _, k := range keys {
		want[k] = true
		seeds = append(seeds, lake.Pointer{File: baseFile, PartKey: k, Key: k})
	}
	broadcast := rng.Float64() < 0.3
	sc.broadcast = broadcast
	job, err := core.NewJob("join", seeds,
		core.LookupDeref{File: baseFile},
		core.FieldRef{
			Target:    dimFile,
			Interp:    interpBase,
			Field:     "val",
			Encode:    encodeVal,
			Broadcast: broadcast,
			Carry:     core.CarryRecord,
		},
		core.LookupDeref{File: dimFile, Combine: true},
	)
	if err != nil {
		return err
	}
	sc.job = job
	if broadcast {
		// A broadcast referencer replicates every pointer to all nodes, so
		// the downstream deref stage legitimately sees emits × nodes.
		sc.ptrFanout = map[int]int{2: sc.cluster.NumNodes()}
	}

	// Expected: an independent in-memory hash join over baseline scans.
	eng := baseline.New(sc.cluster, 0)
	baseRows, err := eng.Scan(in.ctx, baseFile, func(r lake.Record) (bool, error) { return want[r.Key], nil })
	if err != nil {
		return err
	}
	dimRows, err := eng.Scan(in.ctx, dimFile, nil)
	if err != nil {
		return err
	}
	byVal := map[int][]lake.Record{}
	for _, d := range dimRows {
		v, err := parseVal(d.Data)
		if err != nil {
			return err
		}
		byVal[v] = append(byVal[v], d)
	}
	for _, b := range baseRows {
		v, err := parseVal(b.Data)
		if err != nil {
			return err
		}
		carry := lake.EncodeSegments(b.Data)
		for _, d := range byVal[v] {
			sc.expected[rowKey(lake.Record{Key: d.Key, Data: lake.AppendSegment(carry, d.Data)})]++
		}
	}
	return nil
}

// predValBetween accepts base rows whose val column lies in [lo, hi].
func predValBetween(lo, hi int) baseline.Pred {
	return func(r lake.Record) (bool, error) {
		v, err := parseVal(r.Data)
		if err != nil {
			return false, err
		}
		return v >= lo && v <= hi, nil
	}
}

// expectScan fills sc.expected with a baseline scan of file under pred,
// optionally post-processing each accepted record.
func expectScan(sc *scenario, in buildIn, file string, pred baseline.Pred, post func(lake.Record) lake.Record) error {
	rows, err := baseline.New(sc.cluster, 0).Scan(in.ctx, file, pred)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if post != nil {
			r = post(r)
		}
		sc.expected[rowKey(r)]++
	}
	return nil
}
