package oracle

// The ninth arm: scripted ≡ compiled. The generator's compiled access
// methods (interpreter, referencer, filter) are mirrored as source text for
// internal/script, the job is re-run on the same cluster with the scripted
// functions in place of the compiled ones, and rows, per-stage emits, and
// every trace invariant must agree. For index-bearing forms the arm
// additionally builds a second index through scripted Spec extractors
// (partition-key and index-key functions), probes it with the scripted job,
// and drops it — post-hoc registered access methods must be
// indistinguishable from compiled-in ones end to end.

import (
	"context"
	"fmt"
	"strings"

	"lakeharbor/internal/core"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/script"
)

// scriptIdxFile is the scratch index the arm builds from scripted
// extractors; it is dropped before the arm returns so later (mutating) arms
// see the scenario unchanged.
const scriptIdxFile = idxFile + "_s"

// scriptMutate, when non-nil, rewrites the generated mirror source before
// compilation. It exists for the vacuity check: the injected-bug test
// plants a one-token mutation here and asserts the arm reports divergence.
var scriptMutate func(src string) string

// scriptValCap bounds the identity val filter for forms without an explicit
// range: vals are tiny, so [0, scriptValCap] accepts everything.
const scriptValCap = 1 << 30

// scriptMirrorSource renders the scenario's compiled access methods as
// script source: keep mirrors the form's val predicate (parsing the
// "<id>|<val>" payload exactly like interpBase), ref mirrors EntryRef for
// the index forms and FieldRef (carry + routed-or-broadcast emit) for the
// join, and partkey/keys mirror lifecycleSpec's extractors.
func scriptMirrorSource(sc *scenario) string {
	var b strings.Builder
	lo, hi := sc.lo, sc.hi
	if sc.job.Name == "point" || sc.job.Name == "join" {
		lo, hi = 0, scriptValCap
	}
	fmt.Fprintf(&b, `fn keep(key, data) {
	let v = int(substr(data, find(data, "|") + 1, len(data)))
	return %d <= v && v <= %d
}
`, lo, hi)
	switch sc.job.Name {
	case "local-range", "global-range":
		b.WriteString(`fn ref(key, data) {
	emit("` + baseFile + `", indexpart(data), indexkey(data))
}
fn partkey(key, data) {
	return key
}
fn keys(key, data) {
	emit(keyint(int(substr(data, find(data, "|") + 1, len(data)))))
}
`)
	case "join":
		emit := `emit("` + dimFile + `", keyint(v), keyint(v))`
		if sc.broadcast {
			emit = `emitbroadcast("` + dimFile + `", keyint(v))`
		}
		fmt.Fprintf(&b, `fn ref(key, data) {
	let v = int(substr(data, find(data, "|") + 1, len(data)))
	carry()
	%s
}
`, emit)
	}
	return b.String()
}

// scriptedJob rebuilds the scenario's job with every mirrorable function
// scripted: filters on the dereference stages, the referencer between
// them. idxName targets the index-bearing forms at either the hand-built
// index or the arm's scripted rebuild.
func scriptedJob(sc *scenario, prog *script.Program, idxName string) (*core.Job, error) {
	lim := script.Limits{}
	keep, err := prog.NewFilter("keep", lim)
	if err != nil {
		return nil, err
	}
	seeds := make([]lake.Pointer, len(sc.job.Seeds))
	copy(seeds, sc.job.Seeds)
	switch sc.job.Name {
	case "point":
		return core.NewJob("point-script", seeds, core.LookupDeref{File: baseFile, Filter: keep})
	case "local-range", "global-range":
		for i := range seeds {
			seeds[i].File = idxName
		}
		ref, err := prog.NewReferencer(idxName, "ref", lim)
		if err != nil {
			return nil, err
		}
		return core.NewJob(sc.job.Name+"-script", seeds,
			core.RangeDeref{File: idxName},
			ref,
			core.LookupDeref{File: baseFile, Filter: keep},
		)
	case "join":
		ref, err := prog.NewReferencer(dimFile, "ref", lim)
		if err != nil {
			return nil, err
		}
		return core.NewJob("join-script", seeds,
			core.LookupDeref{File: baseFile, Filter: keep},
			ref,
			core.LookupDeref{File: dimFile, Combine: true},
		)
	}
	return nil, fmt.Errorf("unmirrorable form %q", sc.job.Name)
}

// runScriptArm compiles the mirror source, runs the scripted job against
// the scenario cluster, and diffs it against the oracle answer and the
// clean compiled run's per-stage emits. For index-bearing forms it then
// rebuilds the index through scripted Spec extractors and repeats the
// probe against the scripted structure.
func runScriptArm(ctx context.Context, sc *scenario, cleanEmits []int64) (*core.Result, []string) {
	src := scriptMirrorSource(sc)
	if scriptMutate != nil {
		src = scriptMutate(src)
	}
	prog, err := script.Compile(src)
	if err != nil {
		return nil, []string{fmt.Sprintf("smpe-script: mirror source does not compile: %v", err)}
	}
	job, err := scriptedJob(sc, prog, idxFile)
	if err != nil {
		return nil, []string{fmt.Sprintf("smpe-script: mirror job: %v", err)}
	}
	opts := core.Options{Threads: sc.threads, MaxBatch: sc.maxBatch, KeepRecords: true}
	res, execErr := core.ExecuteSMPE(ctx, job, sc.cluster, sc.cluster, opts)
	fails := checkArm("smpe-script", sc, res, execErr, 0)
	if execErr == nil && cleanEmits != nil {
		// Scripting is a language swap, not a semantic change: the scripted
		// job must agree with the compiled run stage by stage, not only on
		// the final multiset.
		for i := range cleanEmits {
			if res.StageEmits[i] != cleanEmits[i] {
				fails = append(fails, fmt.Sprintf(
					"smpe-script: emit divergence: stage %d emits %d scripted vs %d compiled",
					i, res.StageEmits[i], cleanEmits[i]))
			}
		}
	}
	if sc.lcSpec != nil {
		fails = append(fails, runScriptIndex(ctx, sc, prog)...)
	}
	return res, fails
}

// runScriptIndex builds scriptIdxFile from scripted partkey/keys extractors
// — same kind, partition count, and partitioner as the hand-built index, so
// the job's precomputed seeds stay valid — probes it with the scripted job,
// and drops it.
func runScriptIndex(ctx context.Context, sc *scenario, prog *script.Program) []string {
	lim := script.Limits{}
	partKey, err := prog.PartKeyFunc("partkey", lim)
	if err != nil {
		return []string{fmt.Sprintf("smpe-script-index: partkey: %v", err)}
	}
	keys, err := prog.KeysFunc("keys", lim)
	if err != nil {
		return []string{fmt.Sprintf("smpe-script-index: keys: %v", err)}
	}
	spec := indexer.Spec{
		Name:        scriptIdxFile,
		Base:        sc.lcSpec.Base,
		Kind:        sc.lcSpec.Kind,
		Partitions:  sc.lcSpec.Partitions,
		Partitioner: sc.lcSpec.Partitioner,
		PartKey:     partKey,
		Keys:        keys,
	}
	if _, err := indexer.Build(ctx, sc.cluster, spec); err != nil {
		return []string{fmt.Sprintf("smpe-script-index: build: %v", err)}
	}
	defer sc.cluster.DropFile(scriptIdxFile)
	job, err := scriptedJob(sc, prog, scriptIdxFile)
	if err != nil {
		return []string{fmt.Sprintf("smpe-script-index: job: %v", err)}
	}
	opts := core.Options{Threads: sc.threads, MaxBatch: sc.maxBatch, KeepRecords: true}
	res, execErr := core.ExecuteSMPE(ctx, job, sc.cluster, sc.cluster, opts)
	return checkArm("smpe-script-index", sc, res, execErr, 0)
}

// ScriptCorpus returns the distinct mirror sources the script arm generates
// across a spread of seeds — the seed corpus for the FuzzScript targets, so
// fuzzing starts from exactly the programs the oracle exercises.
func ScriptCorpus() []string {
	ctx := context.Background()
	var out []string
	seen := map[string]bool{}
	for seed := int64(1); seed <= 24; seed++ {
		sc, err := generate(ctx, seed)
		if err != nil {
			continue
		}
		if src := scriptMirrorSource(sc); !seen[src] {
			seen[src] = true
			out = append(out, src)
		}
	}
	return out
}
