package oracle

import (
	"context"
	"flag"
	"strings"
	"testing"

	"lakeharbor/internal/core"
)

var (
	seedFlag = flag.Int64("oracle.seed", 1, "first seed for TestDifferential")
	nFlag    = flag.Int("oracle.n", 60, "number of seeded scenarios TestDifferential runs")
)

// TestDifferential is the acceptance gate: every seed's scenario must agree
// across all nine arms — clean batched, clean unbatched, chaos, networked
// data plane, multi-tenant mix, scripted access methods, lifecycle,
// crash-recovery restart, baseline — with zero row-set or invariant
// divergence. A failing seed prints a self-contained repro line.
func TestDifferential(t *testing.T) {
	ctx := context.Background()
	n := *nFlag
	if n < 50 {
		n = 50 // the acceptance criterion is >= 50 scenarios
	}
	if testing.Short() {
		n = 12
	}
	for i := 0; i < n; i++ {
		seed := *seedFlag + int64(i)
		rep, err := Run(ctx, seed, Options{Chaos: true, Shrink: true, Lifecycle: true, Restart: true, Net: true, Tenants: true, Script: true})
		if err != nil {
			t.Fatalf("seed %d: oracle harness failed: %v", seed, err)
		}
		if rep.Diverged() {
			t.Errorf("seed %d diverged:\n  %s\n%s",
				seed, strings.Join(rep.Failures, "\n  "), rep.Repro())
		}
	}
}

// TestOracleCatchesInjectedExecutorBug plants a deliberate executor bug —
// the batcher drops its tail flush, silently stranding buffered pointers —
// and demands the oracle catch it with a printed reproducing seed. This is
// the oracle's own smoke test: a differential harness that cannot see a
// dropped tail flush would be vacuous.
func TestOracleCatchesInjectedExecutorBug(t *testing.T) {
	core.SetFailpoint(core.FailpointDropTailFlush, true)
	t.Cleanup(func() { core.SetFailpoint(core.FailpointDropTailFlush, false) })

	ctx := context.Background()
	caught := 0
	for seed := int64(1); seed <= 40 && caught == 0; seed++ {
		// Chaos off: the planted bug is in the clean batched arm; the
		// chaos arm would only add noise to the repro.
		rep, err := Run(ctx, seed, Options{})
		if err != nil {
			t.Fatalf("seed %d: oracle harness failed: %v", seed, err)
		}
		if !rep.Diverged() {
			continue
		}
		caught++
		repro := rep.Repro()
		if !strings.Contains(repro, "seed=") {
			t.Errorf("divergence report lacks a reproducing seed: %q", repro)
		}
		t.Logf("injected bug caught at seed %d:\n  %s\n%s",
			seed, strings.Join(rep.Failures, "\n  "), repro)
	}
	if caught == 0 {
		t.Fatal("40 seeds ran with the tail-flush bug planted and the oracle caught nothing")
	}
}

// TestChaosDivergenceShrinksToEmptySchedule pins the shrinker's diagnostic
// value: a divergence that does NOT depend on injected chaos (here, the
// planted tail-flush bug breaking the chaos arm too) must shrink to the
// empty schedule, telling the investigator the bug is chaos-independent.
func TestChaosDivergenceShrinksToEmptySchedule(t *testing.T) {
	core.SetFailpoint(core.FailpointDropTailFlush, true)
	t.Cleanup(func() { core.SetFailpoint(core.FailpointDropTailFlush, false) })

	ctx := context.Background()
	for seed := int64(1); seed <= 40; seed++ {
		rep, err := Run(ctx, seed, Options{Chaos: true, Shrink: true})
		if err != nil {
			t.Fatalf("seed %d: oracle harness failed: %v", seed, err)
		}
		chaosDiverged := false
		for _, f := range rep.Failures {
			if strings.HasPrefix(f, "smpe-chaos:") {
				chaosDiverged = true
			}
		}
		if !chaosDiverged {
			continue
		}
		if rep.MinSchedule == nil {
			t.Fatalf("seed %d: chaos arm diverged but no shrunk schedule was produced", seed)
		}
		if rep.MinSchedule.Events() != 0 {
			t.Fatalf("seed %d: chaos-independent bug shrank to %s, want empty schedule",
				seed, rep.MinSchedule)
		}
		return // one shrunk repro is enough
	}
	t.Skip("no seed tripped the chaos arm within the budget; bug-catching is covered by TestOracleCatchesInjectedExecutorBug")
}

// TestGenerateDeterministic: the scenario generator is as reproducible as
// the chaos compiler — same seed, same job shape, same expected answer.
func TestGenerateDeterministic(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 10; seed++ {
		a, err := generate(ctx, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := generate(ctx, seed)
		if err != nil {
			t.Fatal(err)
		}
		if a.desc != b.desc {
			t.Fatalf("seed %d: desc %q vs %q", seed, a.desc, b.desc)
		}
		if len(a.expected) != len(b.expected) || a.expectedCount != b.expectedCount {
			t.Fatalf("seed %d: expected answers differ between generations", seed)
		}
		for k, v := range a.expected {
			if b.expected[k] != v {
				t.Fatalf("seed %d: expected multiset differs at %q", seed, k)
			}
		}
	}
}

// TestScenarioCoverage checks the generator actually exercises all four job
// forms and both clean/priced cost models across a modest seed range — a
// generator collapsed to one shape would quietly gut the oracle.
func TestScenarioCoverage(t *testing.T) {
	ctx := context.Background()
	forms := map[string]bool{}
	costs := map[string]bool{}
	for seed := int64(1); seed <= 60; seed++ {
		sc, err := generate(ctx, seed)
		if err != nil {
			t.Fatal(err)
		}
		forms[sc.job.Name] = true
		for _, part := range strings.Fields(sc.desc) {
			if strings.HasPrefix(part, "cost=") {
				costs[part] = true
			}
		}
	}
	for _, want := range []string{"point", "local-range", "global-range", "join"} {
		if !forms[want] {
			t.Errorf("60 seeds never generated form %q (got %v)", want, forms)
		}
	}
	if len(costs) != 2 {
		t.Errorf("60 seeds covered cost models %v, want both free and priced", costs)
	}
}
