package oracle

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lakeharbor/internal/chaos"
	"lakeharbor/internal/core"
	"lakeharbor/internal/sched"
)

// The eighth arm: multi-tenancy. The scenario's job runs as a 3-tenant mix
// — three concurrent executions of the same job on ONE shared scheduler
// with unequal weights (9:3:1) and one tenant held over its job quota —
// first clean, then under an armed chaos schedule. Sharing a worker pool
// with rivals and being throttled to a 1/13 fair share must never change an
// answer: every tenant's row multiset and stage-by-stage emits must equal
// the single-tenant run's. On top of the differential check the arm asserts
// the scheduler's own contract:
//
//   - admission: the over-quota tenant is rejected with ErrOverQuota while
//     its slot is held, and admitted after release;
//   - no starvation: every admitted job completes (a watchdog turns a hung
//     mix into a failure, not a hung oracle);
//   - weighted fairness: when the mix produced a meaningful contention
//     window (>= tenantWindowMin dispatches taken while all three tenants
//     were backlogged), each tenant's observed share of that window is
//     within tenantShareTol (relative) of its weight share;
//   - accounting: the scheduler drains to zero queued/in-flight/admitted.

const (
	// tenantWindowMin is the minimum all-backlogged dispatch window for the
	// weighted-share invariant to be meaningful; below it the mix never
	// truly contended (tiny scenarios drain too fast) and the share check
	// is skipped.
	tenantWindowMin = 100
	// tenantShareTol is the relative weighted-share error bound.
	tenantShareTol = 0.15
	// tenantStarveTimeout bounds one mix; a mix not done by then is a
	// starvation/lost-task failure.
	tenantStarveTimeout = 60 * time.Second
)

// tenantMix is the fixed 9:3:1 mix every scenario runs as.
var tenantMix = []sched.TenantConfig{
	{Name: "t-heavy", Weight: 9},
	{Name: "t-mid", Weight: 3},
	{Name: "t-light", Weight: 1, MaxJobs: 1},
}

// runTenantsArm executes the tenant mix clean and under chaos.
// singleEmits is the clean single-tenant run's per-stage emit counts (nil
// when that arm failed; the comparison is then skipped).
func runTenantsArm(ctx context.Context, sc *scenario, profile chaos.Profile, singleEmits []int64) (*core.Result, []string) {
	// Clean mix + admission checks.
	res, fails := runTenantMix(ctx, sc, "smpe-tenants", 0, singleEmits)

	// Chaos mix: same scheduler shape, faults armed. Retry budget follows
	// the chaos arm: every heal may be observed by any of the three jobs.
	schedule := chaos.Compile(sc.seed, sc.target, profile)
	armed, err := schedule.Arm(sc.cluster)
	if err != nil {
		return res, append(fails, fmt.Sprintf("smpe-tenants-chaos: arming failed: %v", err))
	}
	cres, cfails := runTenantMix(ctx, sc, "smpe-tenants-chaos", schedule.TotalHeals()+2, singleEmits)
	armed.Disarm()
	if res == nil || (len(fails) == 0 && len(cfails) > 0) {
		res = cres
	}
	return res, append(fails, cfails...)
}

// runTenantMix runs one 3-tenant mix on a fresh shared scheduler and checks
// every invariant listed above. It returns a representative result — the
// first diverging tenant's when any diverged, t-heavy's otherwise.
func runTenantMix(ctx context.Context, sc *scenario, arm string, maxRetries int, singleEmits []int64) (*core.Result, []string) {
	s, err := sched.New(sched.Options{Workers: 4, ShedDepth: -1}, tenantMix...)
	if err != nil {
		return nil, []string{fmt.Sprintf("%s: scheduler: %v", arm, err)}
	}
	defer s.Close()
	var fails []string
	fail := func(format string, args ...any) {
		fails = append(fails, arm+": "+fmt.Sprintf(format, args...))
	}

	// Admission: hold t-light's single job slot, require a typed rejection,
	// release, require admission. Done against the same scheduler the mix
	// runs on, before any task exists.
	hold, err := s.StartJob("t-light")
	if err != nil {
		fail("t-light first admission failed: %v", err)
	} else {
		if _, err := s.StartJob("t-light"); !errors.Is(err, sched.ErrOverQuota) {
			fail("t-light over quota admitted anyway (err=%v)", err)
		}
		hold.Finish()
		if probe, err := s.StartJob("t-light"); err != nil {
			fail("t-light rejected after its slot was released: %v", err)
		} else {
			probe.Finish()
		}
	}

	type tenantRun struct {
		tenant string
		res    *core.Result
		err    error
	}
	runs := make(chan tenantRun, len(tenantMix))
	for _, cfg := range tenantMix {
		go func(tenant string) {
			opts := core.Options{
				MaxBatch:    sc.maxBatch,
				KeepRecords: true,
				Tenant:      tenant,
				Scheduler:   s,
			}
			if maxRetries > 0 {
				opts.MaxRetries = maxRetries
				opts.RetryBackoff = 50 * time.Microsecond
			}
			res, err := core.ExecuteSMPE(ctx, sc.job, sc.cluster, sc.cluster, opts)
			runs <- tenantRun{tenant, res, err}
		}(cfg.Name)
	}

	// No starvation: every admitted job finishes, bounded by the watchdog.
	var firstDiverged, heavy *core.Result
	timeout := time.After(tenantStarveTimeout)
	for done := 0; done < len(tenantMix); done++ {
		select {
		case r := <-runs:
			sub := fmt.Sprintf("%s[%s]", arm, r.tenant)
			tfails := checkArm(sub, sc, r.res, r.err, maxRetries)
			if r.err == nil && r.res.Trace.Tenant != r.tenant {
				tfails = append(tfails, fmt.Sprintf("%s: trace attributed to %q, want %q", sub, r.res.Trace.Tenant, r.tenant))
			}
			if r.err == nil && singleEmits != nil {
				for i := range singleEmits {
					if r.res.StageEmits[i] != singleEmits[i] {
						tfails = append(tfails, fmt.Sprintf(
							"%s: stage %d emits %d in the mix vs %d single-tenant", sub, i, r.res.StageEmits[i], singleEmits[i]))
					}
				}
			}
			fails = append(fails, tfails...)
			if len(tfails) > 0 && firstDiverged == nil {
				firstDiverged = r.res
			}
			if r.tenant == "t-heavy" {
				heavy = r.res
			}
		case <-timeout:
			fail("starvation: %d of %d tenant jobs still running after %v", len(tenantMix)-done, len(tenantMix), tenantStarveTimeout)
			if firstDiverged == nil {
				firstDiverged = heavy
			}
			return firstDiverged, fails
		case <-ctx.Done():
			return firstDiverged, append(fails, fmt.Sprintf("%s: context: %v", arm, ctx.Err()))
		}
	}

	// Weighted fairness over the contention window, and clean drain.
	st := s.Stats()
	if st.WindowTotal >= tenantWindowMin {
		for _, ts := range st.Tenants {
			relErr := (ts.WindowShare - ts.FairShare) / ts.FairShare
			if relErr < 0 {
				relErr = -relErr
			}
			if relErr > tenantShareTol {
				fail("weighted share: tenant %s observed %.4f of the window (%d dispatches), fair share %.4f, rel err %.2f > %.2f",
					ts.Name, ts.WindowShare, st.WindowTotal, ts.FairShare, relErr, tenantShareTol)
			}
		}
	}
	if st.QueueDepth != 0 {
		fail("scheduler left %d tasks queued after all jobs finished", st.QueueDepth)
	}
	for _, ts := range st.Tenants {
		if ts.InFlight != 0 || ts.Jobs != 0 {
			fail("tenant %s leaked inflight=%d jobs=%d", ts.Name, ts.InFlight, ts.Jobs)
		}
	}

	if firstDiverged != nil {
		return firstDiverged, fails
	}
	return heavy, fails
}
