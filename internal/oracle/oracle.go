// Package oracle is the differential query oracle for the SMPE executor:
// one seed generates a random cluster, dataset, and multi-stage job, and
// the job is executed several ways — SMPE batched, SMPE unbatched, SMPE
// under an armed chaos schedule, SMPE against a lifecycle-managed rebuild
// of the scenario's index (built in flight, then evicted and rebuilt on
// demand), SMPE against a crash-recovered replica (checkpoint taken
// mid-workload, WAL-logged tail, fresh cluster + manager recovery), and an
// independent baseline scan engine (the expected answer).
// Any difference in the result multiset, any per-stage
// emit-count disagreement between the SMPE arms, or any violated trace
// invariant is a reported divergence that reproduces from the seed alone;
// a chaos-arm divergence is additionally shrunk (chaos.Shrink) to a
// minimal fault schedule.
package oracle

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lakeharbor/internal/chaos"
	"lakeharbor/internal/core"
	"lakeharbor/internal/trace"
)

// Options tunes one oracle run.
type Options struct {
	// Chaos enables the fourth arm: the job re-executed under a compiled,
	// armed chaos schedule (same seed as the scenario).
	Chaos bool
	// Shrink reduces a chaos-arm divergence to a minimal schedule. It
	// re-runs the chaos arm O(events²) times, so it only triggers on
	// divergence.
	Shrink bool
	// Profile overrides the chaos density; zero selects
	// chaos.DefaultProfile.
	Profile chaos.Profile
	// Lifecycle enables the fifth arm: for index-bearing forms, the
	// hand-built index is dropped and rebuilt through a lifecycle Manager —
	// the job fires while the build is in flight (joined via singleflight
	// Ensure), and again after a forced evict triggers rebuild-on-demand.
	// Both runs must reproduce the oracle answer.
	Lifecycle bool
	// Restart enables the sixth arm: the cluster is checkpointed mid-
	// workload, post-checkpoint mutations go through a real on-disk WAL, and
	// a fresh cluster + lifecycle manager recover from snapshot + replay +
	// structure registry. The recovered world must reproduce the oracle
	// answer, the per-file record counts, and the structure registry of the
	// uninterrupted run — without starting a single build.
	Restart bool
	// Net enables the seventh arm: the scenario is mirrored onto real
	// loopback lakenode servers (one per node, nodenet clients with pooled
	// connections and hedging in front) and the job runs there twice —
	// clean, and under armed transport chaos. Answers, emits, pointer
	// conservation, and a zero-leak pool drain are all asserted.
	Net bool
	// Tenants enables the eighth arm: the job runs as a 3-tenant 9:3:1 mix
	// on one shared weighted-fair scheduler — clean and under chaos — and
	// every tenant's rows and stage emits must equal the single-tenant run,
	// with admission (over-quota rejection), no-starvation, weighted-share,
	// and drained-accounting invariants on top.
	Tenants bool
	// Script enables the ninth arm: the scenario's compiled interpreter,
	// referencer, and filter are mirrored as script source, the job re-runs
	// with the scripted functions in their place, and rows, per-stage emits,
	// and every trace invariant must agree (scripted ≡ compiled). For
	// index-bearing forms the arm also rebuilds the index through scripted
	// Spec extractors and probes the scripted structure.
	Script bool
}

// Report is the outcome of one seeded differential run.
type Report struct {
	// Seed reproduces everything: the scenario, the job, and the schedule.
	Seed int64
	// Desc summarizes the generated scenario.
	Desc string
	// Expected is the oracle answer's row count.
	Expected int
	// Failures lists every detected divergence; empty means all four arms
	// agreed and every invariant held.
	Failures []string
	// Schedule is the compiled chaos schedule (nil without Options.Chaos).
	Schedule *chaos.Schedule
	// MinSchedule is the shrunk schedule when the chaos arm diverged and
	// shrinking was enabled.
	MinSchedule *chaos.Schedule
	// DivergedArm names the first arm that diverged ("" when none did).
	DivergedArm string
	// DivergedTrace is the execution trace — event timeline included — of
	// the first diverging arm, for timeline export alongside the repro. It
	// is nil when no arm diverged or the arm failed before producing one.
	DivergedTrace *trace.Snapshot
	// NetHedgeFires and NetLeakedConns surface the net arm's transport
	// stats (zero without Options.Net): how many hedged second attempts
	// were launched across both net runs, and how many TCP connections were
	// still open after the client pools drained (must be 0; a non-zero
	// value is also reported as a failure).
	NetHedgeFires  int64
	NetLeakedConns int64
}

// Diverged reports whether any arm disagreed or broke an invariant.
func (r *Report) Diverged() bool { return len(r.Failures) > 0 }

// Repro renders the one line a failure report needs: the seed, the
// scenario, and (when present) the minimal schedule.
func (r *Report) Repro() string {
	s := fmt.Sprintf("oracle: seed=%d %s", r.Seed, r.Desc)
	if r.MinSchedule != nil {
		s += "\n  minimal schedule: " + r.MinSchedule.String()
	} else if r.Schedule != nil {
		s += "\n  schedule: " + r.Schedule.String()
	}
	return s + fmt.Sprintf("\n  repro: go run ./cmd/chaosbench -seed %d -n 1", r.Seed)
}

// Run executes the full differential check for one seed. A non-nil error
// means the harness itself failed (generation, context death) — divergences
// are reported through Report.Failures, not the error.
func Run(ctx context.Context, seed int64, opts Options) (*Report, error) {
	sc, err := generate(ctx, seed)
	if err != nil {
		return nil, fmt.Errorf("oracle: seed %d: generate: %w", seed, err)
	}
	rep := &Report{Seed: seed, Desc: sc.desc, Expected: sc.expectedCount}

	batched := core.Options{Threads: sc.threads, MaxBatch: sc.maxBatch, KeepRecords: true}
	unbatched := batched
	unbatched.MaxBatch = 1

	// note records one arm's failures and, for the first diverging arm,
	// keeps its trace so the harness can export the failing timeline.
	note := func(arm string, res *core.Result, fails []string) {
		rep.Failures = append(rep.Failures, fails...)
		if len(fails) > 0 && rep.DivergedArm == "" {
			rep.DivergedArm = arm
			if res != nil {
				rep.DivergedTrace = res.Trace
			}
		}
	}

	resA, errA := core.ExecuteSMPE(ctx, sc.job, sc.cluster, sc.cluster, batched)
	note("smpe-batched", resA, checkArm("smpe-batched", sc, resA, errA, 0))
	resB, errB := core.ExecuteSMPE(ctx, sc.job, sc.cluster, sc.cluster, unbatched)
	note("smpe-unbatched", resB, checkArm("smpe-unbatched", sc, resB, errB, 0))

	// Batching is an optimization, never a semantic change: the two clean
	// arms must agree stage by stage, not only on the final multiset.
	if errA == nil && errB == nil {
		for i := range resA.StageEmits {
			if resA.StageEmits[i] != resB.StageEmits[i] {
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"emit divergence: stage %d emits %d batched vs %d unbatched",
					i, resA.StageEmits[i], resB.StageEmits[i]))
			}
		}
	}

	if opts.Chaos {
		rep.Schedule = chaos.Compile(seed, sc.target, opts.Profile)
		res, fails := runChaosArm(ctx, sc, rep.Schedule)
		note("smpe-chaos", res, fails)
		if len(fails) > 0 && opts.Shrink {
			rep.MinSchedule = chaos.Shrink(rep.Schedule, func(cand *chaos.Schedule) bool {
				_, f := runChaosArm(ctx, sc, cand)
				return len(f) > 0
			})
		}
	}
	if opts.Net {
		// The net arm runs on its own mirrored cluster, so scenario state is
		// untouched; it still runs before the mutating arms so the mirror
		// reflects the scenario as every clean arm saw it.
		res, fails, ns := runNetArm(ctx, sc)
		note("smpe-net", res, fails)
		rep.NetHedgeFires = ns.HedgeFires
		rep.NetLeakedConns = ns.LeakedConns
		if errA == nil && res != nil && len(fails) == 0 {
			// The networked data plane is a transport swap, not a semantic
			// change: stage-by-stage emits must match the sim run exactly
			// (hedged duplicates are suppressed below the executor).
			for i := range resA.StageEmits {
				if resA.StageEmits[i] != res.StageEmits[i] {
					rep.Failures = append(rep.Failures, fmt.Sprintf(
						"emit divergence: stage %d emits %d sim vs %d net",
						i, resA.StageEmits[i], res.StageEmits[i]))
				}
			}
		}
	}
	if opts.Tenants {
		// The tenant mix re-runs the job concurrently against the scenario
		// cluster read-only (it arms and disarms its own chaos schedule),
		// so it must precede the mutating lifecycle/restart arms.
		var singleEmits []int64
		if errA == nil {
			singleEmits = resA.StageEmits
		}
		res, fails := runTenantsArm(ctx, sc, opts.Profile, singleEmits)
		note("smpe-tenants", res, fails)
	}
	if opts.Script {
		// The script arm reads the scenario cluster and builds/drops only its
		// own scratch index, but it compares against the hand-built index, so
		// it runs before the mutating lifecycle/restart arms.
		var singleEmits []int64
		if errA == nil {
			singleEmits = resA.StageEmits
		}
		res, fails := runScriptArm(ctx, sc, singleEmits)
		note("smpe-script", res, fails)
	}
	if opts.Lifecycle {
		// Late arm: it mutates the scenario's index (drop + managed rebuild
		// to an equivalent file), so every arm that expects the hand-built
		// one has already run.
		res, fails := runLifecycleArm(ctx, sc)
		note("smpe-lifecycle", res, fails)
	}
	if opts.Restart {
		// Last arm: it appends post-checkpoint records to the base and
		// creates a scratch file, so every other arm has already run.
		res, fails := runRestartArm(ctx, sc)
		note("smpe-restart", res, fails)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// runChaosArm arms the schedule, executes the job with enough retries to
// out-wait every injected fault, disarms, and returns the arm's result
// (nil when arming or execution failed) and divergences.
func runChaosArm(ctx context.Context, sc *scenario, sched *chaos.Schedule) (*core.Result, []string) {
	armed, err := sched.Arm(sc.cluster)
	if err != nil {
		return nil, []string{fmt.Sprintf("smpe-chaos: arming failed: %v", err)}
	}
	defer armed.Disarm()
	maxRetries := sched.TotalHeals() + 2
	opts := core.Options{
		Threads:      sc.threads,
		MaxBatch:     sc.maxBatch,
		KeepRecords:  true,
		MaxRetries:   maxRetries,
		RetryBackoff: 50 * time.Microsecond,
	}
	res, err := core.ExecuteSMPE(ctx, sc.job, sc.cluster, sc.cluster, opts)
	return res, checkArm("smpe-chaos", sc, res, err, maxRetries)
}

// checkArm diffs one arm's result against the oracle answer and verifies
// the trace invariants the executor is supposed to uphold.
func checkArm(arm string, sc *scenario, res *core.Result, err error, maxRetries int) []string {
	if err != nil {
		return []string{fmt.Sprintf("%s: execution failed: %v", arm, err)}
	}
	var fails []string
	fail := func(format string, args ...any) {
		fails = append(fails, arm+": "+fmt.Sprintf(format, args...))
	}

	// Row multiset: the core differential check.
	got := multisetOf(res.Records)
	fails = append(fails, diffMultisets(arm, sc.expected, got)...)
	if res.Count != int64(len(res.Records)) {
		fail("count %d disagrees with %d kept records", res.Count, len(res.Records))
	}

	// Trace invariants.
	tr := res.Trace
	last := len(tr.Stages) - 1
	if tr.Stages[last].Emits != res.Count {
		fail("final stage emits %d but count is %d", tr.Stages[last].Emits, res.Count)
	}
	for i, st := range tr.Stages {
		if st.Errors != 0 {
			fail("stage %d reports %d errors on a successful run", i, st.Errors)
		}
		if maxRetries == 0 && st.Retries != 0 {
			fail("stage %d retried %d times with retries disabled", i, st.Retries)
		}
	}
	if maxRetries > 0 {
		if total, limit := tr.TotalRetries(), int64(maxRetries)*tr.TotalBatchedPtrs(); total > limit {
			fail("retries %d exceed MaxRetries×pointers = %d", total, limit)
		}
	}
	// Pointer conservation ("no task leaks"): every pointer a stage emits
	// must be dereferenced by the next deref stage exactly once; seeds must
	// all arrive at stage 0, broadcast ones once per node.
	wantSeedPtrs := int64(sc.routedSeeds + sc.broadcastSeeds*sc.cluster.NumNodes())
	if got := tr.Stages[0].BatchedPtrs; got != wantSeedPtrs {
		fail("stage 0 dereferenced %d pointers, want %d (%d routed + %d broadcast × %d nodes)",
			got, wantSeedPtrs, sc.routedSeeds, sc.broadcastSeeds, sc.cluster.NumNodes())
	}
	for i := 2; i < len(tr.Stages); i += 2 {
		fanout := int64(1)
		if f, ok := sc.ptrFanout[i]; ok {
			fanout = int64(f)
		}
		if emitted, arrived := tr.Stages[i-1].Emits, tr.Stages[i].BatchedPtrs; arrived != emitted*fanout {
			fail("stage %d dereferenced %d pointers but stage %d emitted %d×%d (leak or duplication)",
				i, arrived, i-1, emitted, fanout)
		}
	}
	return fails
}

// diffMultisets reports rows missing from / extra in got versus want, with
// a bounded number of samples so a badly wrong run stays readable.
func diffMultisets(arm string, want, got map[string]int) []string {
	const maxSamples = 4
	var missing, extra []string
	for k, w := range want {
		if got[k] < w {
			missing = append(missing, fmt.Sprintf("%q ×%d", k, w-got[k]))
		}
	}
	for k, g := range got {
		if want[k] < g {
			extra = append(extra, fmt.Sprintf("%q ×%d", k, g-want[k]))
		}
	}
	if len(missing) == 0 && len(extra) == 0 {
		return nil
	}
	sort.Strings(missing)
	sort.Strings(extra)
	var fails []string
	if len(missing) > 0 {
		fails = append(fails, fmt.Sprintf("%s: %d row(s) missing, e.g. %v", arm, len(missing), sample(missing, maxSamples)))
	}
	if len(extra) > 0 {
		fails = append(fails, fmt.Sprintf("%s: %d unexpected row(s), e.g. %v", arm, len(extra), sample(extra, maxSamples)))
	}
	return fails
}

func sample(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
