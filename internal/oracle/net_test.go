package oracle

import (
	"context"
	"strings"
	"testing"
)

// TestNetArmMatchesSim is the ISSUE 7 acceptance sweep: the smpe-net arm —
// the scenario mirrored onto real loopback lakenode servers, run clean and
// under armed transport chaos — must match the sim answers over >= 30
// seeds, with at least one hedged request observed across the sweep and
// zero leaked connections after every pool drain.
func TestNetArmMatchesSim(t *testing.T) {
	ctx := context.Background()
	n := 35
	if testing.Short() {
		n = 10
	}
	var totalHedges int64
	for i := 0; i < n; i++ {
		seed := int64(1000 + i)
		rep, err := Run(ctx, seed, Options{Net: true})
		if err != nil {
			t.Fatalf("seed %d: oracle harness failed: %v", seed, err)
		}
		if rep.Diverged() {
			t.Errorf("seed %d diverged:\n  %s\n%s",
				seed, strings.Join(rep.Failures, "\n  "), rep.Repro())
		}
		if rep.NetLeakedConns != 0 {
			t.Errorf("seed %d leaked %d connections after pool drain", seed, rep.NetLeakedConns)
		}
		totalHedges += rep.NetHedgeFires
	}
	if totalHedges == 0 {
		t.Errorf("no hedged request fired across %d seeds — hedging is dead or the delay is mis-derived", n)
	}
	t.Logf("net arm: %d seeds, %d hedged attempts total", n, totalHedges)
}
