package oracle

// The lifecycle arm: the generated job executed against a structure under
// full lifecycle management instead of the hand-built index the other arms
// use. The arm drops the generated index, registers an equivalent
// access-method Spec with a lifecycle Manager, fires the build
// asynchronously, and submits the job while the build is (typically still)
// in flight — concurrent Ensure callers join the one build via
// singleflight. It then force-evicts the structure and runs the job again,
// exercising rebuild-on-demand. Both runs must reproduce the oracle answer
// exactly, and the manager's counters must account for precisely two
// builds, one eviction, and one rebuild.

import (
	"context"
	"fmt"
	"sync"

	"lakeharbor/internal/core"
	"lakeharbor/internal/indexer"
)

// runLifecycleArm executes the lifecycle differential check. For forms
// without a managed structure (point, join) it degenerates to a plain
// re-execution, which still must agree with the oracle.
func runLifecycleArm(ctx context.Context, sc *scenario) (*core.Result, []string) {
	const arm = "smpe-lifecycle"
	opts := core.Options{Threads: sc.threads, MaxBatch: sc.maxBatch, KeepRecords: true}
	run := func(tag string) (*core.Result, []string) {
		res, err := core.ExecuteSMPE(ctx, sc.job, sc.cluster, sc.cluster, opts)
		return res, checkArm(tag, sc, res, err, 0)
	}
	if sc.lcSpec == nil {
		return run(arm)
	}

	// Replace the hand-built index with a lifecycle-managed rebuild of the
	// same entries (same keys, payloads, partitioning), so the job's seeds
	// stay valid and the answer must not change.
	sc.cluster.DropFile(idxFile)
	mgr := indexer.NewManager(ctx, sc.cluster, indexer.ManagerOptions{})
	if err := mgr.Register(*sc.lcSpec); err != nil {
		return nil, []string{fmt.Sprintf("%s: register: %v", arm, err)}
	}
	if _, err := mgr.Build(idxFile); err != nil {
		return nil, []string{fmt.Sprintf("%s: build: %v", arm, err)}
	}
	// The job fires while the build is in flight; a few concurrent Ensure
	// callers must all join that one build (singleflight), never start more.
	if errs := ensureConcurrently(ctx, mgr, 3); len(errs) > 0 {
		return nil, errs
	}
	res, fails := run(arm)

	// Forced evict, then rebuild-on-demand: Ensure must bring the structure
	// back and the job must reproduce the same multiset.
	if err := mgr.Evict(idxFile); err != nil {
		return res, append(fails, fmt.Sprintf("%s: evict: %v", arm, err))
	}
	if st, err := mgr.State(idxFile); err != nil || st != indexer.StateEvicted {
		fails = append(fails, fmt.Sprintf("%s: state after evict = %v, %v; want evicted", arm, st, err))
	}
	if errs := ensureConcurrently(ctx, mgr, 3); len(errs) > 0 {
		return res, append(fails, errs...)
	}
	res2, fails2 := run(arm + "-post-evict")
	fails = append(fails, fails2...)
	if res == nil || len(fails2) > 0 {
		res = res2
	}

	// Lifecycle accounting must be exact: the initial build plus the one
	// rebuild, one eviction — singleflight means the extra Ensure callers
	// never started builds of their own.
	c := mgr.Counters()
	if c.BuildsStarted != 2 || c.Evictions != 1 || c.Rebuilds != 1 {
		fails = append(fails, fmt.Sprintf(
			"%s: counters builds=%d evictions=%d rebuilds=%d; want 2/1/1 (deduped=%d)",
			arm, c.BuildsStarted, c.Evictions, c.Rebuilds, c.BuildsDeduped))
	}
	return res, fails
}

// ensureConcurrently runs n concurrent Ensure calls and collects failures.
func ensureConcurrently(ctx context.Context, mgr *indexer.Manager, n int) []string {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []string
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := mgr.Ensure(ctx, idxFile); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Sprintf("smpe-lifecycle: ensure: %v", err))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return errs
}
