package oracle

import (
	"context"
	"strings"
	"testing"
)

// TestScriptArmMatchesCompiled is the scripted ≡ compiled acceptance sweep:
// across 30 seeds every scenario's mirror script must compile, run to the
// oracle answer with per-stage emits identical to the compiled job, and —
// for index-bearing forms — the scripted-built index must answer the probe
// too. Only the script arm runs, so a failure here is unambiguous.
func TestScriptArmMatchesCompiled(t *testing.T) {
	ctx := context.Background()
	n := int64(30)
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= n; seed++ {
		rep, err := Run(ctx, seed, Options{Script: true})
		if err != nil {
			t.Fatalf("seed %d: oracle harness failed: %v", seed, err)
		}
		if rep.Diverged() {
			t.Errorf("seed %d diverged:\n  %s\n%s",
				seed, strings.Join(rep.Failures, "\n  "), rep.Repro())
		}
	}
}

// TestScriptArmCatchesInjectedBug is the vacuity check: a one-token
// mutation in the generated mirror script — the filter's first `<=`
// weakened to `<`, dropping boundary rows — must be reported by the script
// arm as a divergence. A differential arm that cannot see an off-by-one in
// the script it runs would prove nothing.
func TestScriptArmCatchesInjectedBug(t *testing.T) {
	scriptMutate = func(src string) string {
		i := strings.Index(src, "<=")
		if i < 0 {
			t.Fatalf("mirror source has no <= to mutate:\n%s", src)
		}
		return src[:i] + "<" + src[i+2:]
	}
	t.Cleanup(func() { scriptMutate = nil })

	ctx := context.Background()
	caught := 0
	for seed := int64(1); seed <= 40 && caught == 0; seed++ {
		rep, err := Run(ctx, seed, Options{Script: true})
		if err != nil {
			t.Fatalf("seed %d: oracle harness failed: %v", seed, err)
		}
		if !rep.Diverged() {
			continue // this seed's answer has no boundary row; try the next
		}
		caught++
		if rep.DivergedArm != "smpe-script" {
			t.Errorf("seed %d: diverged arm = %q, want smpe-script", seed, rep.DivergedArm)
		}
		for _, f := range rep.Failures {
			if !strings.HasPrefix(f, "smpe-script") {
				t.Errorf("seed %d: a compiled arm reported %q under a script-only mutation", seed, f)
			}
		}
		t.Logf("injected script bug caught at seed %d:\n  %s", seed, strings.Join(rep.Failures, "\n  "))
	}
	if caught == 0 {
		t.Fatal("40 seeds ran with the <= mutation planted and the script arm caught nothing")
	}
}

// TestScriptCorpusCoversForms pins the fuzz seed corpus: it must contain
// mirror programs for every mirrorable function shape — filter-only
// (point/join keep), entry-ref, field-ref with routed and broadcast emits,
// and the index extractors.
func TestScriptCorpusCoversForms(t *testing.T) {
	corpus := ScriptCorpus()
	if len(corpus) < 3 {
		t.Fatalf("corpus holds %d distinct programs, want >= 3", len(corpus))
	}
	joined := strings.Join(corpus, "\n")
	for _, want := range []string{"fn keep", "fn ref", "fn partkey", "fn keys", "indexpart", "carry()"} {
		if !strings.Contains(joined, want) {
			t.Errorf("corpus never exercises %q", want)
		}
	}
}
