package oracle

// The smpe-restart arm: the durability differential check. The scenario's
// cluster is checkpointed *while the job is executing* (snapshots take
// per-partition read locks, so a concurrent read-only workload must not
// perturb the image), a few post-checkpoint mutations — ingested records
// and a catalog create — are logged to a real on-disk WAL, and then the
// process "crashes": a fresh cluster and a fresh lifecycle manager recover
// from the snapshot, the WAL replay, and the checkpointed structure
// registry. The recovered world must be indistinguishable from the
// uninterrupted one: same job answer, same per-file record counts, same
// structure registry — and the recovered manager must adopt the structure
// without starting a single build.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"context"

	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/store"
)

// scratchFile is the file the restart arm creates after the checkpoint, so
// the WAL replay has a catalog mutation to reconstruct.
const scratchFile = "restart_scratch"

// runRestartArm executes the restart differential check. It mutates the
// scenario (post-checkpoint appends), so it must run after every other arm.
func runRestartArm(ctx context.Context, sc *scenario) (*core.Result, []string) {
	const arm = "smpe-restart"
	opts := core.Options{Threads: sc.threads, MaxBatch: sc.maxBatch, KeepRecords: true}
	harness := func(format string, args ...any) (*core.Result, []string) {
		return nil, []string{arm + ": " + fmt.Sprintf(format, args...)}
	}

	// A manager adopts the scenario's structure on the live side, so the
	// checkpoint carries a real registry entry.
	var mgr *indexer.Manager
	if sc.lcSpec != nil {
		mgr = indexer.NewManager(ctx, sc.cluster, indexer.ManagerOptions{})
		if err := mgr.Register(*sc.lcSpec); err != nil {
			return harness("register: %v", err)
		}
		size, err := sc.cluster.FileSizeBytes(idxFile)
		if err != nil {
			return harness("index size: %v", err)
		}
		st := mgr.Recover([]indexer.PersistEntry{{
			Name: idxFile, Base: baseFile, Kind: sc.lcSpec.Kind,
			State: indexer.StateReady, SizeBytes: size,
		}})
		if st.Recovered != 1 {
			return harness("live adopt: recovered=%d, want 1", st.Recovered)
		}
	}

	// Uninterrupted run: the reference this arm must keep reproducing.
	res, fails := func() (*core.Result, []string) {
		r, err := core.ExecuteSMPE(ctx, sc.job, sc.cluster, sc.cluster, opts)
		return r, checkArm(arm, sc, r, err, 0)
	}()

	// Checkpoint mid-workload: the job re-executes concurrently with the
	// snapshot scan. Both must succeed — and the concurrent run must still
	// produce the oracle answer.
	meta := &store.SnapshotMeta{CatalogVersion: sc.cluster.CatalogVersion()}
	if mgr != nil {
		meta.Structures = mgr.PersistEntries()
	}
	type jobOut struct {
		res *core.Result
		err error
	}
	jobCh := make(chan jobOut, 1)
	go func() {
		r, err := core.ExecuteSMPE(ctx, sc.job, sc.cluster, sc.cluster, opts)
		jobCh <- jobOut{r, err}
	}()
	var snap bytes.Buffer
	if err := store.WriteSnapshot(ctx, sc.cluster, meta, &snap); err != nil {
		<-jobCh
		return res, append(fails, fmt.Sprintf("%s: snapshot: %v", arm, err))
	}
	mid := <-jobCh
	fails = append(fails, checkArm(arm+"-during-snapshot", sc, mid.res, mid.err, 0)...)

	// Post-checkpoint mutations, logged write-ahead to a real WAL file: a
	// catalog create and records into both the scratch file and the base.
	// The base extras use val -1 — outside every generated probe range and
	// seed set — so the job's oracle answer stays valid on both sides.
	dir, err := os.MkdirTemp("", "oracle-restart-")
	if err != nil {
		return res, append(fails, fmt.Sprintf("%s: tempdir: %v", arm, err))
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "tail.wal")
	wal, err := store.OpenWAL(walPath)
	if err != nil {
		return res, append(fails, fmt.Sprintf("%s: open wal: %v", arm, err))
	}
	logged := func(file string, f lake.File, partKey lake.Key, rec lake.Record) error {
		if err := wal.Append(file, partKey, rec); err != nil {
			return err
		}
		return dfs.AppendRouted(ctx, f, partKey, rec)
	}
	mutate := func() error {
		if err := wal.AppendCatalogOp(store.CatalogOp{
			Name: scratchFile, Kind: dfs.Heap, Partitions: 2, Partitioner: lake.HashPartitioner{},
		}); err != nil {
			return err
		}
		scratch, err := sc.cluster.CreateFile(scratchFile, dfs.Heap, 2, lake.HashPartitioner{})
		if err != nil {
			return err
		}
		base, err := sc.cluster.File(baseFile)
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			k := keycodec.Tuple(keycodec.String("wal-extra"), keycodec.Int64(int64(i)))
			rec := lake.Record{Key: k, Data: []byte(fmt.Sprintf("x%d|-1", i))}
			if err := logged(scratchFile, scratch, k, rec); err != nil {
				return err
			}
			if err := logged(baseFile, base, k, rec); err != nil {
				return err
			}
		}
		return wal.Close()
	}
	if err := mutate(); err != nil {
		wal.Close()
		return res, append(fails, fmt.Sprintf("%s: post-checkpoint mutations: %v", arm, err))
	}

	// Crash. A fresh cluster recovers from snapshot + WAL; a fresh manager
	// recovers the structure registry — builds must not start.
	recovered := dfs.NewCluster(dfs.Config{Nodes: sc.cluster.NumNodes(), Cost: sc.cluster.Cost()})
	recMeta, err := store.ReadSnapshot(ctx, bytes.NewReader(snap.Bytes()), recovered)
	if err != nil {
		return res, append(fails, fmt.Sprintf("%s: restore: %v", arm, err))
	}
	if recMeta.CatalogVersion != meta.CatalogVersion {
		fails = append(fails, fmt.Sprintf("%s: recovered catalog version %d, want %d",
			arm, recMeta.CatalogVersion, meta.CatalogVersion))
	}
	if _, err := store.ReplayWAL(ctx, walPath, recovered); err != nil {
		return res, append(fails, fmt.Sprintf("%s: replay: %v", arm, err))
	}
	var mgr2 *indexer.Manager
	if sc.lcSpec != nil {
		mgr2 = indexer.NewManager(ctx, recovered, indexer.ManagerOptions{})
		if err := mgr2.Register(*sc.lcSpec); err != nil {
			return res, append(fails, fmt.Sprintf("%s: recovered register: %v", arm, err))
		}
		st := mgr2.Recover(recMeta.Structures)
		if st.Recovered != 1 || st.Evicted != 0 || st.Skipped != 0 {
			fails = append(fails, fmt.Sprintf("%s: recover stats %+v, want 1 ready", arm, st))
		}
		if s, err := mgr2.State(idxFile); err != nil || s != indexer.StateReady {
			fails = append(fails, fmt.Sprintf("%s: recovered index state %v, %v; want ready", arm, s, err))
		}
		if c := mgr2.Counters(); c.BuildsStarted != 0 {
			fails = append(fails, fmt.Sprintf("%s: recovery started %d builds; recovery must not rebuild", arm, c.BuildsStarted))
		}
	}

	// The recovered world and the uninterrupted one must agree: job answer
	// (both re-runs checked against the oracle), per-file record counts, and
	// the structure registry.
	resLive, errLive := core.ExecuteSMPE(ctx, sc.job, sc.cluster, sc.cluster, opts)
	fails = append(fails, checkArm(arm+"-live-after", sc, resLive, errLive, 0)...)
	resRec, errRec := core.ExecuteSMPE(ctx, sc.job, recovered, recovered, opts)
	fails = append(fails, checkArm(arm+"-recovered", sc, resRec, errRec, 0)...)
	if errLive == nil && errRec == nil {
		for i := range resLive.StageEmits {
			if resLive.StageEmits[i] != resRec.StageEmits[i] {
				fails = append(fails, fmt.Sprintf(
					"%s: emit divergence: stage %d emits %d live vs %d recovered",
					arm, i, resLive.StageEmits[i], resRec.StageEmits[i]))
			}
		}
	}
	fails = append(fails, diffClusters(arm, sc.cluster, recovered)...)
	if mgr != nil && mgr2 != nil {
		a, b := mgr.PersistEntries(), mgr2.PersistEntries()
		if len(a) != len(b) {
			fails = append(fails, fmt.Sprintf("%s: registry sizes %d live vs %d recovered", arm, len(a), len(b)))
		} else {
			for i := range a {
				if a[i].Name != b[i].Name || a[i].State != b[i].State || a[i].Builds != b[i].Builds || a[i].SizeBytes != b[i].SizeBytes {
					fails = append(fails, fmt.Sprintf("%s: registry entry diverged: live %+v vs recovered %+v", arm, a[i], b[i]))
				}
			}
		}
	}
	if len(fails) > 0 && resRec != nil {
		res = resRec
	}
	return res, fails
}

// diffClusters compares catalog shape and per-file record counts.
func diffClusters(arm string, live, rec *dfs.Cluster) []string {
	var fails []string
	liveNames, recNames := live.FileNames(), rec.FileNames()
	if len(liveNames) != len(recNames) {
		return []string{fmt.Sprintf("%s: catalogs differ: live %v vs recovered %v", arm, liveNames, recNames)}
	}
	for _, name := range liveNames {
		nl, err := live.Len(name)
		if err != nil {
			fails = append(fails, fmt.Sprintf("%s: live len(%s): %v", arm, name, err))
			continue
		}
		nr, err := rec.Len(name)
		if err != nil {
			fails = append(fails, fmt.Sprintf("%s: recovered missing %q: %v", arm, name, err))
			continue
		}
		if nl != nr {
			fails = append(fails, fmt.Sprintf("%s: %s has %d records live vs %d recovered", arm, name, nl, nr))
		}
	}
	return fails
}
