package oracle

import (
	"context"
	"strings"
	"testing"

	"lakeharbor/internal/core"
)

// TestTenantsArmMatchesSingle is the ISSUE 8 acceptance sweep: the
// smpe-tenants arm — each scenario run as a 9:3:1 three-tenant mix on one
// shared weighted-fair scheduler, clean and under armed chaos — must match
// the single-tenant answers over >= 30 seeds, with the over-quota tenant
// rejected at admission, no admitted job starving, weighted shares within
// the stated bound whenever a mix produced a real contention window, and
// the scheduler draining to zero every time. CI runs this race-enabled
// through chaosbench's tenant-oracle job.
func TestTenantsArmMatchesSingle(t *testing.T) {
	ctx := context.Background()
	n := 35
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		seed := int64(2000 + i)
		rep, err := Run(ctx, seed, Options{Tenants: true})
		if err != nil {
			t.Fatalf("seed %d: oracle harness failed: %v", seed, err)
		}
		if rep.Diverged() {
			t.Errorf("seed %d diverged:\n  %s\n%s",
				seed, strings.Join(rep.Failures, "\n  "), rep.Repro())
		}
	}
}

// TestTenantsArmCatchesInjectedBug points the tenant mix at the planted
// tail-flush executor bug: a mix that cannot detect a wrong answer from one
// of its tenants would make the whole arm vacuous.
func TestTenantsArmCatchesInjectedBug(t *testing.T) {
	core.SetFailpoint(core.FailpointDropTailFlush, true)
	t.Cleanup(func() { core.SetFailpoint(core.FailpointDropTailFlush, false) })
	ctx := context.Background()
	for seed := int64(1); seed <= 40; seed++ {
		rep, err := Run(ctx, seed, Options{Tenants: true})
		if err != nil {
			t.Fatalf("seed %d: oracle harness failed: %v", seed, err)
		}
		for _, f := range rep.Failures {
			if strings.HasPrefix(f, "smpe-tenants") {
				t.Logf("injected bug caught by tenant arm at seed %d: %s", seed, f)
				return
			}
		}
	}
	t.Fatal("40 seeds ran with the tail-flush bug planted and the tenant arm caught nothing")
}
