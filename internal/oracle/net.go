package oracle

// The seventh arm: smpe-net. The scenario's cluster is mirrored onto a real
// networked data plane — one lakenode-shaped server per node on loopback
// TCP, one nodenet client per node, each client wrapped in a (dormant)
// chaos transport proxy — and the same job runs twice: once clean with an
// aggressive hedge delay (so tail-latency hedging actually fires over the
// pool), once with the transport chaos armed (injected drops + delays, the
// executor retrying through them). Both runs must reproduce the oracle
// answer; the clean run must also match the sim's per-stage emit counts,
// and at the end the client pools must drain to zero open connections.

import (
	"context"
	"fmt"
	"time"

	"lakeharbor/internal/chaos"
	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/nodenet"
	"lakeharbor/internal/trace"
)

// netHedgeAfter is the fixed hedge delay for the net arm. Over loopback an
// RPC completes in tens of microseconds, but under pool contention (the
// hedge timer starts before the slot is acquired) waits routinely exceed
// it, so hedges fire reliably without a warmed-up latency profile.
const netHedgeAfter = 200 * time.Microsecond

// netStats is what the arm reports upward for the acceptance assertions.
type netStats struct {
	HedgeFires  int64
	HedgeWins   int64
	LeakedConns int64
}

// runNetArm mirrors the scenario onto loopback lakenode servers and runs
// the job clean and under transport chaos. It returns the clean run's
// result (for emit comparison), the collected failures, and the transport
// stats after teardown.
func runNetArm(ctx context.Context, sc *scenario) (*core.Result, []string, netStats) {
	nodes := sc.cluster.NumNodes()
	stats := nodenet.NewStats()
	var ns netStats

	// One single-node backing cluster + RPC server per scenario node. The
	// backing clusters are free-cost: the sockets provide real latency now.
	servers := make([]*nodenet.Server, 0, nodes)
	wrappers := make([]*chaos.TransportChaos, 0, nodes)
	transports := make([]dfs.NodeTransport, 0, nodes)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	quiet := func(string, ...any) {}
	observers := make([]*nodenet.ServerObs, 0, nodes)
	for i := 0; i < nodes; i++ {
		backing := dfs.NewCluster(dfs.Config{Nodes: 1})
		srv := nodenet.NewServer(dfs.Local(backing), quiet)
		obs := nodenet.NewServerObs()
		srv.Observe(obs)
		observers = append(observers, obs)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, []string{fmt.Sprintf("smpe-net: listen node %d: %v", i, err)}, ns
		}
		servers = append(servers, srv)
		client := nodenet.Dial(addr.String(), nodenet.Options{HedgeAfter: netHedgeAfter}, stats)
		// The chaos wrapper sits between the executor and the socket,
		// dormant until the second run arms it.
		wrap := chaos.WrapTransport(client, sc.seed+int64(i), chaos.TransportProfile{})
		wrappers = append(wrappers, wrap)
		transports = append(transports, wrap)
	}
	closeAll := func() {
		for _, tr := range transports {
			tr.Close() //nolint:errcheck
		}
	}

	netCluster, err := dfs.NewClusterWithTransports(dfs.Config{}, transports)
	if err != nil {
		closeAll()
		return nil, []string{fmt.Sprintf("smpe-net: build cluster: %v", err)}, ns
	}
	if err := mirrorData(ctx, sc.cluster, netCluster); err != nil {
		closeAll()
		return nil, []string{fmt.Sprintf("smpe-net: mirror: %v", err)}, ns
	}

	// Clean run. A small retry budget absorbs spurious connection-level
	// transients (a loopback RST is rare but not impossible); a healthy run
	// uses none, and checkArm still bounds what it may use.
	const cleanRetries = 2
	opts := core.Options{
		Threads:      sc.threads,
		MaxBatch:     sc.maxBatch,
		KeepRecords:  true,
		MaxRetries:   cleanRetries,
		RetryBackoff: 50 * time.Microsecond,
	}
	res, err := core.ExecuteSMPE(ctx, sc.job, netCluster, netCluster, opts)
	fails := checkArm("smpe-net", sc, res, err, cleanRetries)
	for _, f := range checkAttribution(sc, res, observers) {
		fails = append(fails, f)
	}

	// Chaos run: arm every wrapper, size retries to out-wait the combined
	// drop budget, and demand the same answer.
	totalDrops := 0
	for _, w := range wrappers {
		w.Arm()
		totalDrops += w.MaxDrops()
	}
	chaosOpts := opts
	chaosOpts.MaxRetries = totalDrops + 2
	resC, errC := core.ExecuteSMPE(ctx, sc.job, netCluster, netCluster, chaosOpts)
	for _, w := range wrappers {
		w.Disarm()
	}
	for _, f := range checkArm("smpe-net-chaos", sc, resC, errC, chaosOpts.MaxRetries) {
		fails = append(fails, f)
	}

	// Teardown before the leak check: Close drains each pool, so anything
	// still open afterwards is a real leak.
	closeAll()
	ns.HedgeFires = stats.HedgeFires()
	ns.HedgeWins = stats.HedgeWins()
	ns.LeakedConns = stats.OpenConns()
	if ns.LeakedConns != 0 {
		fails = append(fails, fmt.Sprintf("smpe-net: %d connections leaked after pool drain", ns.LeakedConns))
	}
	return res, fails, ns
}

// checkAttribution asserts the observability plane worked end to end on the
// clean run: the wire trace context reached the servers (node-side spans
// name the job that caused them), the client recorded EvRPC events, and the
// critical path can name a remote (stage, node, rpc) segment.
func checkAttribution(sc *scenario, res *core.Result, observers []*nodenet.ServerObs) []string {
	if res == nil || res.Trace == nil {
		return nil // checkArm already reported the failure
	}
	var fails []string

	attributed := 0
	for _, o := range observers {
		for _, span := range o.Spans() {
			if span.Job != "" {
				attributed++
				if span.Job != sc.job.Name {
					fails = append(fails, fmt.Sprintf(
						"smpe-net: node span attributed to job %q, want %q", span.Job, sc.job.Name))
				}
				if span.Stage < 0 {
					fails = append(fails, fmt.Sprintf(
						"smpe-net: node span for job %q has negative stage %d", span.Job, span.Stage))
				}
			}
		}
	}
	if attributed == 0 {
		fails = append(fails, "smpe-net: no node-side RPC span carried a job attribution")
	}

	rpcEvents := 0
	for _, ev := range res.Trace.Events {
		if ev.Kind == trace.EvRPC {
			rpcEvents++
		}
	}
	if rpcEvents == 0 {
		fails = append(fails, "smpe-net: clean run recorded no rpc timeline events")
		return fails
	}
	rpcSegs := 0
	for _, seg := range trace.CriticalPath(res.Trace.Events, 64) {
		if seg.Phase == "rpc" {
			rpcSegs++
		}
	}
	if rpcSegs == 0 {
		fails = append(fails, fmt.Sprintf(
			"smpe-net: critical path names no (stage, node, rpc) segment despite %d rpc events", rpcEvents))
	}
	return fails
}

// mirrorData replays src's catalog and partition contents onto dst,
// preserving partition placement (partition p of src lands on partition p
// of dst, and therefore on dst's owner transport for p).
func mirrorData(ctx context.Context, src, dst *dfs.Cluster) error {
	for _, name := range src.FileNames() {
		f, err := src.File(name)
		if err != nil {
			return err
		}
		kinded, ok := f.(interface{ Kind() dfs.Kind })
		if !ok {
			return fmt.Errorf("file %q exposes no kind", name)
		}
		nf, err := dst.CreateFile(name, kinded.Kind(), f.NumPartitions(), f.Partitioner())
		if err != nil {
			return err
		}
		for p := 0; p < f.NumPartitions(); p++ {
			var recs []lake.Record
			if err := f.Scan(ctx, p, func(r lake.Record) error {
				recs = append(recs, r.Clone())
				return nil
			}); err != nil {
				return err
			}
			if len(recs) == 0 {
				continue
			}
			if err := nf.Append(ctx, p, recs...); err != nil {
				return err
			}
		}
	}
	return nil
}
