package script

import "strings"

// The lexer. Tokens are identifiers, integer literals, double-quoted string
// literals, and a fixed punctuation set; # starts a comment that runs to end
// of line. Keywords are classified by the parser, not here.

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokStr
	tokPunct
)

type token struct {
	kind tokKind
	// text is the identifier, the literal's decoded value (for strings) or
	// digits (for ints), or the punctuation itself.
	text string
	line int
}

// maxSource bounds compilable source size: a sandbox that accepts unbounded
// programs has an unbounded compile cost.
const maxSource = 1 << 20

// punct2 lists the two-character operators, checked before single chars.
var punct2 = []string{"==", "!=", "<=", ">=", "&&", "||"}

const punct1 = "(){},=<>+-*/%!"

func lex(src string) ([]token, *Error) {
	if len(src) > maxSource {
		return nil, &Error{Class: ClassCompile, Line: 1, Msg: "source exceeds 1 MiB"}
	}
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			val, n, err := lexString(src[i:], line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokStr, val, line})
			i += n
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokInt, src[i:j], line})
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(src) && (src[j] == '_' || src[j] >= 'a' && src[j] <= 'z' ||
				src[j] >= 'A' && src[j] <= 'Z' || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			if i+1 < len(src) {
				two := src[i : i+2]
				found := false
				for _, p := range punct2 {
					if p == two {
						toks = append(toks, token{tokPunct, two, line})
						i += 2
						found = true
						break
					}
				}
				if found {
					continue
				}
			}
			if strings.IndexByte(punct1, c) >= 0 {
				toks = append(toks, token{tokPunct, string(c), line})
				i++
				continue
			}
			return nil, &Error{Class: ClassCompile, Line: line, Msg: "unexpected character " + quoteByte(c)}
		}
	}
	return append(toks, token{tokEOF, "", line}), nil
}

// lexString decodes one double-quoted literal starting at src[0] == '"',
// returning the decoded value and the number of source bytes consumed.
// Escapes: \" \\ \n \t. A literal newline inside a string is an error (it
// would make line attribution lie).
func lexString(src string, line int) (string, int, *Error) {
	var b strings.Builder
	for i := 1; i < len(src); i++ {
		switch c := src[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\n':
			return "", 0, &Error{Class: ClassCompile, Line: line, Msg: "newline in string literal"}
		case '\\':
			i++
			if i >= len(src) {
				break
			}
			switch src[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", 0, &Error{Class: ClassCompile, Line: line, Msg: "unknown escape \\" + string(src[i])}
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, &Error{Class: ClassCompile, Line: line, Msg: "unterminated string literal"}
}

func quoteByte(c byte) string {
	if c >= 0x20 && c < 0x7f {
		return "'" + string(c) + "'"
	}
	return "0x" + string("0123456789abcdef"[c>>4]) + string("0123456789abcdef"[c&0xf])
}
