package script

import (
	"strconv"
	"strings"
)

// The canonical printer: a pure function of the AST whose output re-parses
// to the same AST (Canonical is a fixed point of Compile∘Canonical). The
// fuzz targets assert that, which pins the grammar and the printer to each
// other: a precedence bug in either shows up as an unstable round trip.

// Canonical renders the program in canonical form: one fn per block, tab
// indentation, minimal parentheses, escaped string literals.
func (p *Program) Canonical() string {
	var b strings.Builder
	for i, name := range p.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		printFn(&b, p.fns[name])
	}
	return b.String()
}

func printFn(b *strings.Builder, fn *fnDecl) {
	b.WriteString("fn ")
	b.WriteString(fn.name)
	b.WriteByte('(')
	for i, p := range fn.params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p)
	}
	b.WriteString(") {\n")
	printStmts(b, fn.body, 1)
	b.WriteString("}\n")
}

func printStmts(b *strings.Builder, stmts []stmt, depth int) {
	for _, s := range stmts {
		printStmt(b, s, depth)
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteByte('\t')
	}
}

func printStmt(b *strings.Builder, s stmt, depth int) {
	indent(b, depth)
	switch s := s.(type) {
	case *letStmt:
		b.WriteString("let ")
		b.WriteString(s.name)
		b.WriteString(" = ")
		printExpr(b, s.x, 0, false)
		b.WriteByte('\n')
	case *assignStmt:
		b.WriteString(s.name)
		b.WriteString(" = ")
		printExpr(b, s.x, 0, false)
		b.WriteByte('\n')
	case *ifStmt:
		printIf(b, s, depth)
	case *whileStmt:
		b.WriteString("while ")
		printExpr(b, s.cond, 0, false)
		b.WriteString(" {\n")
		printStmts(b, s.body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *returnStmt:
		b.WriteString("return")
		if s.x != nil {
			b.WriteByte(' ')
			printExpr(b, s.x, 0, false)
		}
		b.WriteByte('\n')
	case *exprStmt:
		printExpr(b, s.x, 0, false)
		b.WriteByte('\n')
	}
}

func printIf(b *strings.Builder, s *ifStmt, depth int) {
	b.WriteString("if ")
	printExpr(b, s.cond, 0, false)
	b.WriteString(" {\n")
	printStmts(b, s.then, depth+1)
	indent(b, depth)
	b.WriteByte('}')
	if len(s.els) == 1 {
		if nested, ok := s.els[0].(*ifStmt); ok {
			b.WriteString(" else ")
			printIf(b, nested, depth)
			return
		}
	}
	if s.els != nil {
		b.WriteString(" else {\n")
		printStmts(b, s.els, depth+1)
		indent(b, depth)
		b.WriteByte('}')
	}
	b.WriteByte('\n')
}

// exprPrec returns the precedence an expression binds at: binary operators
// per binPrec, unary above all of them, primaries tightest.
func exprPrec(e expr) int {
	switch e := e.(type) {
	case *binExpr:
		return binPrec[e.op]
	case *unaryExpr:
		return 6
	default:
		return 7
	}
}

// printExpr renders e in a context of precedence ctx; right marks the right
// operand of a binary operator (left-associative grammar, so equal
// precedence on the right — and anywhere at the non-chaining comparison
// level — needs parentheses).
func printExpr(b *strings.Builder, e expr, ctx int, right bool) {
	prec := exprPrec(e)
	need := prec < ctx || prec == ctx && (right || ctx == binPrec["=="])
	if need {
		b.WriteByte('(')
	}
	switch e := e.(type) {
	case *intLit:
		b.WriteString(strconv.FormatInt(e.v, 10))
	case *strLit:
		printString(b, e.v)
	case *boolLit:
		b.WriteString(strconv.FormatBool(e.v))
	case *varRef:
		b.WriteString(e.name)
	case *callExpr:
		b.WriteString(e.fn)
		b.WriteByte('(')
		for i, a := range e.args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a, 0, false)
		}
		b.WriteByte(')')
	case *unaryExpr:
		b.WriteString(e.op)
		printExpr(b, e.x, 6, false)
	case *binExpr:
		printExpr(b, e.x, prec, false)
		b.WriteByte(' ')
		b.WriteString(e.op)
		b.WriteByte(' ')
		printExpr(b, e.y, prec, true)
	}
	if need {
		b.WriteByte(')')
	}
}

func printString(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString("\\\"")
		case '\\':
			b.WriteString("\\\\")
		case '\n':
			b.WriteString("\\n")
		case '\t':
			b.WriteString("\\t")
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}
