package script

// Sandbox regression tests: the budgets and isolation guarantees the rest
// of the stack relies on when it runs user-supplied scripts inside the
// executor and the structure builder.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// newTestCluster returns a 2-node cluster with n "i|val" rows in "base".
func newTestCluster(t *testing.T, n int) *dfs.Cluster {
	t.Helper()
	ctx := context.Background()
	cluster := dfs.NewCluster(dfs.Config{Nodes: 2})
	f, err := cluster.CreateFile("base", dfs.Btree, 4, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := keycodec.Int64(int64(i))
		rec := lake.Record{Key: k, Data: []byte(fmt.Sprintf("%d|%d", i, i%5))}
		if err := dfs.AppendRouted(ctx, f, k, rec); err != nil {
			t.Fatal(err)
		}
	}
	return cluster
}

// TestRunawayLoopHitsStepBudget: an infinite loop must terminate at the
// step budget with a permanent, typed error — and because the error is
// permanent, the executor must not retry it even with a retry budget.
func TestRunawayLoopHitsStepBudget(t *testing.T) {
	cluster := newTestCluster(t, 20)
	p := MustCompile(`fn keep(key, data) { while true { } return true }`)
	filter, err := p.NewFilter("keep", Limits{Steps: 1000})
	if err != nil {
		t.Fatal(err)
	}

	before := Counters()
	seeds := []lake.Pointer{{File: "base", NoPart: true}}
	job, err := core.NewJob("runaway", seeds, core.ScanDeref{File: "base", Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	res, execErr := core.ExecuteSMPE(context.Background(), job, cluster, cluster,
		core.Options{MaxRetries: 5, KeepRecords: true})
	if execErr == nil {
		t.Fatal("runaway script did not fail the job")
	}
	var serr *Error
	if !errors.As(execErr, &serr) || serr.Class != ClassStepBudget {
		t.Fatalf("error %v is not a step-budget *script.Error", execErr)
	}
	if !core.Permanent(execErr) {
		t.Fatalf("step-budget error %v does not classify as permanent", execErr)
	}
	// Fail fast: a permanent error must never be retried.
	if res != nil && res.Trace != nil {
		if n := res.Trace.TotalRetries(); n != 0 {
			t.Fatalf("executor retried a permanent script error %d times", n)
		}
	}
	after := Counters()
	if after.StepTrips <= before.StepTrips {
		t.Fatal("StepTrips counter did not advance")
	}
}

// TestAllocationBombHitsAllocBudget: doubling a string forever must stop at
// the allocation budget, not at the host's OOM killer.
func TestAllocationBombHitsAllocBudget(t *testing.T) {
	p := MustCompile(`fn main() {
		let s = "xxxxxxxxxxxxxxxx"
		while true { s = s + s }
	}`)
	before := Counters()
	_, err := p.Call("main", Limits{AllocBytes: 1 << 16}, nil)
	if err == nil {
		t.Fatal("allocation bomb did not fail")
	}
	var serr *Error
	if !errors.As(err, &serr) || serr.Class != ClassAllocBudget {
		t.Fatalf("error %v is not an alloc-budget *script.Error", err)
	}
	if !lake.IsPermanent(err) {
		t.Fatalf("alloc-budget error %v does not classify as permanent", err)
	}
	if after := Counters(); after.AllocTrips <= before.AllocTrips {
		t.Fatal("AllocTrips counter did not advance")
	}
}

// TestHostPanicIsContained: the sandbox promises typed errors, never process
// death — a panic below Call (a faulting host builtin, or an evaluator bug)
// must surface as a permanent runtime *Error, not crash the server.
func TestHostPanicIsContained(t *testing.T) {
	p := MustCompile(`fn main() { return boom() }`)
	_, err := p.Call("main", Limits{}, map[string]Builtin{
		"boom": func([]Value) (Value, error) { panic("kaboom") },
	})
	var serr *Error
	if !errors.As(err, &serr) || serr.Class != ClassRuntime {
		t.Fatalf("panic surfaced as %v, want a runtime *script.Error", err)
	}
	if !lake.IsPermanent(err) {
		t.Fatalf("recovered panic %v does not classify as permanent", err)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("recovered panic %v lost the panic value", err)
	}
}

// TestStringComparisonChargesSteps: comparing strings costs steps
// proportional to the bytes compared, so a loop comparing a large record
// payload cannot turn a step budget into seconds of CPU.
func TestStringComparisonChargesSteps(t *testing.T) {
	p := MustCompile(`fn main(s) { return s == s }`)
	before := Counters()
	_, err := p.Call("main", Limits{Steps: 1000}, nil, Str(strings.Repeat("x", 100_000)))
	var serr *Error
	if !errors.As(err, &serr) || serr.Class != ClassStepBudget {
		t.Fatalf("comparing 100k bytes under a 1000-step budget = %v, want a step-budget error", err)
	}
	if after := Counters(); after.StepTrips <= before.StepTrips {
		t.Fatal("StepTrips counter did not advance")
	}
	// Short operands stay cheap: comparing against a small literal is
	// charged by the shorter side, so filtering a big payload still fits a
	// tiny budget.
	if v, err := p.Call("main", Limits{Steps: 50}, nil, Str("abc")); err != nil {
		t.Fatalf("small comparison tripped the budget: %v", err)
	} else if b, ok := v.IsBool(); !ok || !b {
		t.Fatalf("s == s = %#v, want true", v)
	}
	q := MustCompile(`fn main(s) { return s == "needle" }`)
	if _, err := q.Call("main", Limits{Steps: 50}, nil, Str(strings.Repeat("x", 100_000))); err != nil {
		t.Fatalf("big-vs-literal comparison must charge the shorter operand: %v", err)
	}
	// find scans the haystack and is charged the same way.
	f := MustCompile(`fn main(s) { return find(s, "|") }`)
	if _, err := f.Call("main", Limits{Steps: 1000}, nil, Str(strings.Repeat("x", 100_000))); err == nil {
		t.Fatal("find over 100k bytes under a 1000-step budget did not trip")
	}
}

// TestFailedScriptedBuildLeavesNoFile: a script error mid-build must fail
// the build AND drop the partial structure file — no half-built structures.
func TestFailedScriptedBuildLeavesNoFile(t *testing.T) {
	cluster := newTestCluster(t, 40)
	reg := NewRegistry(Limits{})
	// int() faults on the row whose id is 13 ("13|3" → int("boom")).
	if _, err := reg.Put("faulty", `fn partkey(key, data) { return key }
fn keys(key, data) {
	let id = substr(data, 0, find(data, "|"))
	if id == "13" {
		emit(keyint(int("boom")))
	}
	emit(keyint(int(substr(data, find(data, "|") + 1, len(data)))))
}`); err != nil {
		t.Fatal(err)
	}
	spec, err := reg.Bind(SpecBinding{
		Structure: "base_val_idx", Base: "base", Kind: "local", Script: "faulty",
		PartKeyFn: "partkey", KeysFn: "keys",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := indexer.Build(context.Background(), cluster, spec); err == nil {
		t.Fatal("build over a faulting script succeeded")
	} else if !lake.IsPermanent(err) {
		t.Fatalf("build error %v does not classify as permanent", err)
	}
	if _, err := cluster.File("base_val_idx"); err == nil {
		t.Fatal("failed scripted build left a half-built structure behind")
	}
}

// TestRePostCannotSwapSemanticsMidBuild: a Spec bound from a script
// captures the compiled program; re-POSTing the script while a build built
// from that Spec runs (or before it runs) must not change what gets built.
func TestRePostCannotSwapSemanticsMidBuild(t *testing.T) {
	ctx := context.Background()
	cluster := newTestCluster(t, 60)
	reg := NewRegistry(Limits{})
	src := func(offset int) string {
		return fmt.Sprintf(`fn partkey(key, data) { return key }
fn keys(key, data) { emit(keyint(int(substr(data, find(data, "|") + 1, len(data))) + %d)) }`, offset)
	}
	h1, err := reg.Put("idxfns", src(0))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := reg.Bind(SpecBinding{
		Structure: "base_val_idx", Base: "base", Kind: "local", Script: "idxfns",
		PartKeyFn: "partkey", KeysFn: "keys",
	})
	if err != nil {
		t.Fatal(err)
	}

	// The build starts, and mid-flight the script is re-POSTed with
	// different semantics (every index key shifted by 1000). The running
	// build must keep the captured version.
	barrier := make(chan struct{})
	status := indexer.StartBuild(ctx, cluster, spec, indexer.BuildOptions{
		Barrier: func(int) { <-barrier },
	})
	h2, err := reg.Put("idxfns", src(1000))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Version <= h1.Version {
		t.Fatalf("re-POST did not bump the version: %d then %d", h1.Version, h2.Version)
	}
	if h2.Program() == h1.Program() {
		t.Fatal("re-POST returned the same compiled program")
	}
	close(barrier)
	if err := status.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// Every entry must be keyed by the ORIGINAL script's keys: vals 0–4,
	// nothing at 1000+.
	idx, err := cluster.BtreeFile("base_val_idx")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for part := 0; part < idx.NumPartitions(); part++ {
		recs, err := idx.LookupRange(ctx, part, keycodec.Int64(0), keycodec.Int64(4))
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
		if shifted, err := idx.LookupRange(ctx, part, keycodec.Int64(1000), keycodec.Int64(1004)); err != nil {
			t.Fatal(err)
		} else if len(shifted) != 0 {
			t.Fatalf("partition %d holds %d entries from the re-POSTed script", part, len(shifted))
		}
	}
	if total != 60 {
		t.Fatalf("index holds %d entries, want 60", total)
	}

	// A binding resolved AFTER the re-POST picks up the new semantics.
	spec2, err := reg.Bind(SpecBinding{
		Structure: "base_val_idx2", Base: "base", Kind: "local", Script: "idxfns",
		PartKeyFn: "partkey", KeysFn: "keys",
	})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := spec2.Keys(lake.Record{Key: keycodec.Int64(3), Data: []byte("3|3")})
	if err != nil || len(keys) != 1 || keys[0] != keycodec.Int64(1003) {
		t.Fatalf("rebound Keys = %v, %v; want the re-POSTed semantics", keys, err)
	}
}

// TestScriptErrorsFailScanFilters: a faulting script inside a job surfaces
// as a permanent error with the script's position, not a silent drop.
func TestScriptErrorsFailScanFilters(t *testing.T) {
	cluster := newTestCluster(t, 10)
	p := MustCompile(`fn keep(key, data) { return int(key) == 0 }`) // keys are keycodec-encoded, not decimal
	filter, err := p.NewFilter("keep", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	job, err := core.NewJob("faulty", []lake.Pointer{{File: "base", NoPart: true}},
		core.ScanDeref{File: "base", Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	_, execErr := core.ExecuteSMPE(context.Background(), job, cluster, cluster, core.Options{})
	if execErr == nil || !core.Permanent(execErr) {
		t.Fatalf("want a permanent script error, got %v", execErr)
	}
	if !strings.Contains(execErr.Error(), "script:") {
		t.Fatalf("error %v does not carry the script prefix", execErr)
	}
}
