package script_test

// Fuzz targets for the whole interpreter pipeline. Three properties, none
// of which any input may break:
//
//  1. No panics: lexer, parser, printer, and evaluator only ever return
//     typed errors, whatever bytes arrive.
//  2. Termination: with a step budget set, every call returns — loops
//     cannot outlive their budget.
//  3. Canonical stability: Compile ∘ Canonical is a fixed point — printing
//     a compiled program and recompiling the print yields the same print.
//
// The seed corpus is the oracle's generated mirror programs (the exact
// sources the differential arm runs) plus hand-picked grammar edges.

import (
	"errors"
	"strings"
	"testing"

	"lakeharbor/internal/oracle"
	"lakeharbor/internal/script"
)

// fuzzHost satisfies every contract builtin the oracle's mirror programs
// call, so fuzzed evaluation reaches loop bodies instead of stopping at
// "unknown function".
func fuzzHost() map[string]script.Builtin {
	ok := func(args []script.Value) (script.Value, error) { return script.Int(0), nil }
	host := map[string]script.Builtin{}
	for _, name := range []string{"set", "emit", "emitbroadcast", "emitrange", "carry", "carrycomposite"} {
		host[name] = ok
	}
	return host
}

func FuzzScript(f *testing.F) {
	for _, src := range oracle.ScriptCorpus() {
		f.Add(src)
	}
	for _, src := range []string{
		`fn f(a) { return -a * 2 + 1 }`,
		`fn f() { let s = "x" while len(s) < 100 { s = s + s } return s }`,
		`fn f(a, b) { if a == b { return 1 } else { if a < b { return 2 } } return 3 }`,
		`fn f() { return 1 && true }`,
		`fn f() { return (1 + 2) * (3 - 4) / 5 % 6 }`,
		`fn f() { return "a\"b\\c\nd\te" }`,
		`fn f() { return 9223372036854775807 }`,
		`fn loop() { while true { } }`,
		`fn f(key, data) { return substr(data, find(data, "|"), len(data)) }`,
		"fn f() { # comment\n\treturn 0\n}",
	} {
		f.Add(src)
	}

	lim := script.Limits{Steps: 5000, AllocBytes: 1 << 16}
	host := fuzzHost()
	args := []script.Value{
		script.Str("7|3"), script.Str(""), script.Int(-1), script.Bool(true),
		script.Str("x\x00y"), script.Int(42), script.Str("|"), script.Int(0),
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := script.Compile(src)
		if err != nil {
			return // rejected inputs just need to not panic
		}

		// Property 3: canonical form is a fixed point of Compile.
		canon := p.Canonical()
		p2, err := script.Compile(canon)
		if err != nil {
			t.Fatalf("canonical form does not recompile: %v\nsource: %q\ncanonical: %q", err, src, canon)
		}
		if again := p2.Canonical(); again != canon {
			t.Fatalf("canonical form is not stable:\nfirst:  %q\nsecond: %q", canon, again)
		}

		// Properties 1 and 2: call every declared function with every arity-
		// matching argument window; each call must return (budget at worst),
		// never hang, never panic.
		for _, fn := range p.Funcs() {
			n := p.Params(fn)
			if n < 0 || n > len(args) {
				continue
			}
			if _, err := p.Call(fn, lim, host, args[:n]...); err != nil {
				var serr *script.Error
				if !errors.As(err, &serr) {
					t.Fatalf("call %s: untyped error %T: %v", fn, err, err)
				}
			}
		}
	})
}

// TestFuzzCorpusRunsClean sanity-checks the seed corpus outside fuzzing
// mode: every oracle mirror program compiles, prints, and recompiles. This
// keeps `go test` (no -fuzz flag) covering the corpus on every CI run.
func TestFuzzCorpusRunsClean(t *testing.T) {
	corpus := oracle.ScriptCorpus()
	if len(corpus) == 0 {
		t.Fatal("oracle returned an empty script corpus")
	}
	for _, src := range corpus {
		p, err := script.Compile(src)
		if err != nil {
			t.Fatalf("mirror source does not compile: %v\n%s", err, src)
		}
		canon := p.Canonical()
		p2, err := script.Compile(canon)
		if err != nil {
			t.Fatalf("canonical mirror does not recompile: %v\n%s", err, canon)
		}
		if p2.Canonical() != canon {
			t.Fatalf("canonical mirror is unstable:\n%s", canon)
		}
		if !strings.Contains(canon, "fn keep") {
			t.Fatalf("mirror program lost its filter:\n%s", canon)
		}
	}
}
