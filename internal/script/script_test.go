package script

import (
	"errors"
	"strings"
	"testing"

	"lakeharbor/internal/core"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// eval compiles one fn main(...) body and calls it.
func evalSrc(t *testing.T, src string, args ...Value) (Value, error) {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	return p.Call("main", Limits{}, nil, args...)
}

func TestLanguageSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		args []Value
		want Value
	}{
		{"arith", `fn main() { return (1 + 2) * 3 - 10 / 2 % 3 }`, nil, Int(7)},
		{"negatives", `fn main() { return -7 / 2 }`, nil, Int(-3)},
		{"cmp-chain-parens", `fn main(v) { return (0 <= v) == (v <= 9) }`, []Value{Int(4)}, Bool(true)},
		{"bool-logic", `fn main() { return !(true && false) || false }`, nil, Bool(true)},
		{"short-circuit", `fn main() { return false && 1 / 0 == 0 }`, nil, Bool(false)},
		{"string-concat", `fn main(a, b) { return a + "|" + b }`, []Value{Str("x"), Str("y")}, Str("x|y")},
		{"string-order", `fn main() { return "abc" < "abd" && "ab" <= "ab" }`, nil, Bool(true)},
		{"let-assign", `fn main() { let x = 1 x = x + 2 return x }`, nil, Int(3)},
		{"if-else", `fn main(v) { if v > 10 { return 1 } else if v > 5 { return 2 } else { return 3 } }`, []Value{Int(7)}, Int(2)},
		{"while-sum", `fn main(n) {
			let s = 0
			let i = 1
			while i <= n {
				s = s + i
				i = i + 1
			}
			return s
		}`, []Value{Int(10)}, Int(55)},
		{"bare-return", `fn main() { return }`, nil, Value{}},
		{"no-return", `fn main() { let x = 1 }`, nil, Value{}},
		{"builtin-len-substr-find", `fn main(s) {
			let i = find(s, "|")
			return substr(s, i + 1, len(s))
		}`, []Value{Str("42|val")}, Str("val")},
		{"substr-clamps", `fn main(s) { return substr(s, -3, 99) + substr(s, 2, 1) }`, []Value{Str("ab")}, Str("ab")},
		{"substr-negative-end", `fn main(s) { return substr(s, 0, -1) + substr(s, -5, -2) + "ok" }`, []Value{Str("ab")}, Str("ok")},
		{"find-missing", `fn main() { return find("abc", "z") }`, nil, Int(-1)},
		{"int-str-roundtrip", `fn main() { return str(int("-17") + 1) }`, nil, Str("-16")},
		{"comments", "fn main() { # comment\n\treturn 1 # trailing\n}", nil, Int(1)},
		{"multi-fn", `fn other() { return 9 }
fn main() { return 5 }`, nil, Int(5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := evalSrc(t, tc.src, tc.args...)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			if got != tc.want {
				t.Fatalf("got %#v, want %#v", got, tc.want)
			}
		})
	}
}

func TestKeyBuiltinsMatchKeycodec(t *testing.T) {
	v, err := evalSrc(t, `fn main(n) { return keyint(n) }`, Int(-42))
	if err != nil {
		t.Fatal(err)
	}
	if v.Text() != keycodec.Int64(-42) {
		t.Fatalf("keyint(-42) = %q, want keycodec.Int64", v.Text())
	}
	v, err = evalSrc(t, `fn main(s) { return keystr(s) }`, Str("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Text() != keycodec.String("hello") {
		t.Fatalf("keystr = %q, want keycodec.String", v.Text())
	}
}

func TestIndexEntryBuiltins(t *testing.T) {
	entry := string(lake.EncodeIndexEntry(lake.Key("part-k"), lake.Key("primary-k")))
	p := MustCompile(`fn part(key, data) { return indexpart(data) }
fn pk(key, data) { return indexkey(data) }`)
	v, err := p.Call("part", Limits{}, nil, Str("k"), Str(entry))
	if err != nil || v.Text() != "part-k" {
		t.Fatalf("indexpart = %q, %v", v.Text(), err)
	}
	v, err = p.Call("pk", Limits{}, nil, Str("k"), Str(entry))
	if err != nil || v.Text() != "primary-k" {
		t.Fatalf("indexkey = %q, %v", v.Text(), err)
	}
	if _, err := p.Call("part", Limits{}, nil, Str("k"), Str("garbage")); err == nil {
		t.Fatal("indexpart accepted a non-entry payload")
	}
}

func TestRuntimeErrorsAreTypedAndPermanent(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"div-zero", `fn main() { return 1 / 0 }`},
		{"mod-zero", `fn main() { return 1 % 0 }`},
		{"overflow-div", `fn main() { return (-9223372036854775807 - 1) / -1 }`},
		{"overflow-neg", `fn main() { let x = -9223372036854775807 - 1 return -x }`},
		{"type-mismatch", `fn main() { return 1 + "x" }`},
		{"bad-cond", `fn main() { if 1 { return 2 } return 3 }`},
		{"undefined-var", `fn main() { return nope }`},
		{"assign-undeclared", `fn main() { x = 1 }`},
		{"unknown-fn", `fn main() { return launch_missiles() }`},
		{"bad-int", `fn main() { return int("xyz") }`},
		{"not-on-int", `fn main() { return !3 }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := evalSrc(t, tc.src)
			if err == nil {
				t.Fatal("expected a runtime error")
			}
			var serr *Error
			if !errors.As(err, &serr) {
				t.Fatalf("error %v is not *script.Error", err)
			}
			if serr.Class != ClassRuntime {
				t.Fatalf("class %v, want runtime", serr.Class)
			}
			if !lake.IsPermanent(err) {
				t.Fatalf("error %v does not classify as permanent", err)
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"garbage", "@@@"},
		{"no-fn", "let x = 1"},
		{"unterminated-block", "fn main() { return 1"},
		{"unterminated-string", `fn main() { return "abc }`},
		{"newline-in-string", "fn main() { return \"a\nb\" }"},
		{"bad-escape", `fn main() { return "\q" }`},
		{"dup-fn", "fn a() { return 1 }\nfn a() { return 2 }"},
		{"dup-param", "fn a(x, x) { return x }"},
		{"keyword-name", "fn while() { return 1 }"},
		{"chained-cmp", "fn a() { return 1 < 2 < 3 }"},
		{"int-overflow", "fn a() { return 99999999999999999999 }"},
		{"deep-nesting", "fn a() { return " + strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100) + " }"},
		{"too-many-params", "fn a(p1, p2, p3, p4, p5, p6, p7, p8, p9) { return 1 }"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatal("expected a compile error")
			}
			var serr *Error
			if !errors.As(err, &serr) || serr.Class != ClassCompile {
				t.Fatalf("error %v is not a compile-classed *script.Error", err)
			}
			if !lake.IsPermanent(err) {
				t.Fatalf("error %v does not classify as permanent", err)
			}
		})
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	srcs := []string{
		`fn main(key, data) {
			let i = find(data, "|")
			if i < 0 { return false }
			let v = int(substr(data, i + 1, len(data)))
			return 3 <= v && v <= 7
		}`,
		`fn ref(key, data) {
			carry()
			emit("dim", keyint(1), keyint(1))
		}`,
		`fn f(a, b) { return (a + b) * -(a - b) % 7 }`,
		`fn g(x) { return (0 <= x) == (x <= 9) }`,
		`fn h() { return "quote \" backslash \\ tab \t newline \n done" }`,
		`fn loop(n) { let i = 0 while i < n { i = i + 1 } return i }`,
		`fn e(x) { if x > 0 { return 1 } else if x < 0 { return -1 } else { return 0 } }`,
	}
	for _, src := range srcs {
		p1, err := Compile(src)
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		c1 := p1.Canonical()
		p2, err := Compile(c1)
		if err != nil {
			t.Fatalf("canonical output does not recompile: %v\n%s", err, c1)
		}
		if c2 := p2.Canonical(); c1 != c2 {
			t.Fatalf("canonical form unstable:\nfirst:\n%s\nsecond:\n%s", c1, c2)
		}
	}
}

func TestInterpreterAdapter(t *testing.T) {
	p := MustCompile(`fn interpret(key, data) {
		let i = find(data, "|")
		set("id", substr(data, 0, i))
		set("val", substr(data, i + 1, len(data)))
	}`)
	interp, err := p.NewInterpreter("interpret", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	fields, err := interp(lake.Record{Key: "k", Data: []byte("12|34")})
	if err != nil {
		t.Fatal(err)
	}
	if fields["id"] != "12" || fields["val"] != "34" {
		t.Fatalf("fields = %v", fields)
	}
	if _, err := p.NewInterpreter("nope", Limits{}); err == nil {
		t.Fatal("adapter accepted a missing entry function")
	}
	if _, err := p.NewInterpreter("interpret", Limits{}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterAdapter(t *testing.T) {
	p := MustCompile(`fn keep(key, data) { return int(data) % 2 == 0 }
fn notbool(key, data) { return 1 }`)
	filter, err := p.NewFilter("keep", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		data string
		want bool
	}{{"4", true}, {"5", false}} {
		got, err := filter(lake.Record{Data: []byte(tc.data)})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("keep(%s) = %v", tc.data, got)
		}
	}
	bad, err := p.NewFilter("notbool", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad(lake.Record{Data: []byte("1")}); err == nil || !lake.IsPermanent(err) {
		t.Fatalf("non-bool filter result should be a permanent error, got %v", err)
	}
}

func TestReferencerAdapter(t *testing.T) {
	p := MustCompile(`fn ref(key, data) {
		emit("routed", keystr("pk"), keystr("k"))
		carry()
		emitbroadcast("bcast", keyint(7))
		emitrange("rng", keyint(1), keyint(3))
	}`)
	ref, err := p.NewReferencer("test", "ref", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Name() != "Script(test)" {
		t.Fatalf("Name = %q", ref.Name())
	}
	ptrs, err := ref.Ref(&core.TaskCtx{}, lake.Record{Key: "rk", Data: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	if len(ptrs) != 3 {
		t.Fatalf("got %d pointers, want 3", len(ptrs))
	}
	if p0 := ptrs[0]; p0.File != "routed" || p0.PartKey != keycodec.String("pk") ||
		p0.Key != keycodec.String("k") || p0.NoPart || p0.Carry != nil {
		t.Fatalf("routed pointer %+v", p0)
	}
	if p1 := ptrs[1]; p1.File != "bcast" || !p1.NoPart || p1.Key != keycodec.Int64(7) ||
		string(p1.Carry) != string(lake.EncodeSegments([]byte("payload"))) {
		t.Fatalf("broadcast pointer %+v", p1)
	}
	if p2 := ptrs[2]; p2.File != "rng" || !p2.NoPart || p2.Key != keycodec.Int64(1) || p2.EndKey != keycodec.Int64(3) {
		t.Fatalf("range pointer %+v", p2)
	}
}

func TestSpecExtractorAdapters(t *testing.T) {
	p := MustCompile(`fn partkey(key, data) { return key }
fn keys(key, data) {
	let i = find(data, "|")
	if 0 <= i {
		emit(keyint(int(substr(data, i + 1, len(data)))))
	}
}`)
	pk, err := p.PartKeyFunc("partkey", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	keysFn, err := p.KeysFunc("keys", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	rec := lake.Record{Key: keycodec.Int64(5), Data: []byte("5|33")}
	k, err := pk(rec)
	if err != nil || k != rec.Key {
		t.Fatalf("partkey = %q, %v", k, err)
	}
	keys, err := keysFn(rec)
	if err != nil || len(keys) != 1 || keys[0] != keycodec.Int64(33) {
		t.Fatalf("keys = %v, %v", keys, err)
	}
	// No separator: the script emits nothing — a record may simply not be
	// indexed.
	keys, err = keysFn(lake.Record{Key: "k", Data: []byte("nosep")})
	if err != nil || len(keys) != 0 {
		t.Fatalf("keys(nosep) = %v, %v", keys, err)
	}
}

func TestContractBuiltinsAreScoped(t *testing.T) {
	// emit is a referencer/keys builtin; a filter invocation must not see it.
	p := MustCompile(`fn keep(key, data) { emit("f", key, key) return true }`)
	filter, err := p.NewFilter("keep", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := filter(lake.Record{Key: "k"}); err == nil || !strings.Contains(err.Error(), "unknown function emit") {
		t.Fatalf("filter saw the emit builtin: %v", err)
	}
}

func TestCountersAdvance(t *testing.T) {
	before := Counters()
	p := MustCompile(`fn main() { return 1 }`)
	if _, err := p.Call("main", Limits{}, nil); err != nil {
		t.Fatal(err)
	}
	_, _ = Compile("@broken@")
	after := Counters()
	if after.Compiles <= before.Compiles {
		t.Fatal("Compiles did not advance")
	}
	if after.CompileErrors <= before.CompileErrors {
		t.Fatal("CompileErrors did not advance")
	}
	if after.Invocations <= before.Invocations {
		t.Fatal("Invocations did not advance")
	}
}
