package script

import (
	"fmt"
	"sort"
	"sync"

	"lakeharbor/internal/indexer"
)

// The script registry: named sources compiled once at Put time
// (validate-at-POST — a broken script never enters the lake), resolved to
// immutable Handles at use time. A Handle pins one compiled Program: a
// structure build or a job that captured a Handle keeps its semantics even
// if the script is re-POSTed mid-flight — the new version only applies to
// bindings resolved after the Put.

// Handle pins one compiled version of a named script.
type Handle struct {
	// Name is the registry name the source was Put under.
	Name string
	// Version increments on every Put of the name, starting at 1.
	Version int64
	prog    *Program
}

// Program returns the pinned compiled program.
func (h *Handle) Program() *Program { return h.prog }

// Info is the wire-friendly summary of one registered script.
type Info struct {
	Name        string   `json:"name"`
	Version     int64    `json:"version"`
	Funcs       []string `json:"funcs"`
	SourceBytes int      `json:"source_bytes"`
}

// PersistEntry is the durable form of one registered script: name and
// source. Recovery re-Puts the source, re-compiling it — programs are never
// serialized, only their text.
type PersistEntry struct {
	Name   string
	Source string
}

// SpecBinding is the durable description of one scripted structure: which
// script's functions extract the partition key and the index keys of which
// base file. It is what POST /v1/structures accepts and what snapshot meta
// persists so recovery can re-register the spec and re-adopt the built
// structure without a rebuild.
type SpecBinding struct {
	// Structure is the structure (index file) name.
	Structure string `json:"structure"`
	// Base is the catalog name of the file to index.
	Base string `json:"base"`
	// Kind is "local" or "global" ("" means local).
	Kind string `json:"kind"`
	// Partitions is the index partition count; 0 copies the base file's.
	Partitions int `json:"partitions"`
	// Script names the registered script providing the extractors.
	Script string `json:"script"`
	// PartKeyFn is the script function extracting the partition key.
	PartKeyFn string `json:"partkey_fn"`
	// KeysFn is the script function emitting the index key(s).
	KeysFn string `json:"keys_fn"`
}

// Registry holds named scripts and the structure bindings built from them.
// All methods are safe for concurrent use.
type Registry struct {
	limits Limits

	mu       sync.Mutex
	version  int64
	scripts  map[string]*Handle
	bindings map[string]SpecBinding
}

// NewRegistry returns an empty registry whose adapters run under lim (zero
// selects the package defaults).
func NewRegistry(lim Limits) *Registry {
	return &Registry{
		limits:   lim.withDefaults(),
		scripts:  map[string]*Handle{},
		bindings: map[string]SpecBinding{},
	}
}

// Limits returns the registry's per-invocation sandbox budgets.
func (r *Registry) Limits() Limits { return r.limits }

func validName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("script: name must be 1–128 characters")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || c == '-' || c == '.' || c >= 'a' && c <= 'z' ||
			c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			continue
		}
		return fmt.Errorf("script: name %q contains %q; use letters, digits, _ - .", name, string(c))
	}
	return nil
}

// Put compiles src and registers it under name, returning the new Handle.
// Compilation failure leaves any existing version untouched.
func (r *Registry) Put(name, src string) (*Handle, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	prog, err := Compile(src)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.version++
	h := &Handle{Name: name, Version: r.version, prog: prog}
	r.scripts[name] = h
	return h, nil
}

// Get resolves the current Handle for name.
func (r *Registry) Get(name string) (*Handle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.scripts[name]
	return h, ok
}

// Delete removes name and any bindings that reference it. Structures
// already built from the script keep their captured programs (a build is a
// value, not a reference); Delete only stops new bindings and drops the
// persisted ones. It reports whether the script existed.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.scripts[name]; !ok {
		return false
	}
	delete(r.scripts, name)
	for structure, b := range r.bindings {
		if b.Script == name {
			delete(r.bindings, structure)
		}
	}
	return true
}

// Len returns the number of registered scripts.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.scripts)
}

// List summarizes every registered script, sorted by name.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.scripts))
	for _, h := range r.scripts {
		out = append(out, Info{
			Name:        h.Name,
			Version:     h.Version,
			Funcs:       h.prog.Funcs(),
			SourceBytes: len(h.prog.Source()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PersistScripts snapshots every registered script's source, sorted by
// name, for checkpointing.
func (r *Registry) PersistScripts() []PersistEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PersistEntry, 0, len(r.scripts))
	for _, h := range r.scripts {
		out = append(out, PersistEntry{Name: h.Name, Source: h.prog.Source()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Bind validates b against the current version of its script and returns
// the indexer.Spec a structure manager can register and build. The spec's
// extractor closures capture the script's compiled program at Bind time: a
// later Put of the same script name cannot change the spec's semantics —
// rebind to pick up the new version. The binding is recorded for
// persistence (replacing any previous binding of the structure).
func (r *Registry) Bind(b SpecBinding) (indexer.Spec, error) {
	spec, err := r.specFor(b)
	if err != nil {
		return indexer.Spec{}, err
	}
	r.mu.Lock()
	r.bindings[b.Structure] = b
	r.mu.Unlock()
	return spec, nil
}

// specFor resolves b to a Spec without recording the binding.
func (r *Registry) specFor(b SpecBinding) (indexer.Spec, error) {
	if b.Structure == "" || b.Base == "" {
		return indexer.Spec{}, fmt.Errorf("script: binding needs structure and base (got %q over %q)", b.Structure, b.Base)
	}
	var kind indexer.Kind
	switch b.Kind {
	case "", "local":
		kind = indexer.Local
	case "global":
		kind = indexer.Global
	default:
		return indexer.Spec{}, fmt.Errorf("script: binding kind %q, want local or global", b.Kind)
	}
	if b.Partitions < 0 {
		return indexer.Spec{}, fmt.Errorf("script: binding partitions %d, want >= 0", b.Partitions)
	}
	h, ok := r.Get(b.Script)
	if !ok {
		return indexer.Spec{}, fmt.Errorf("script: no script %q registered", b.Script)
	}
	partKey, err := h.prog.PartKeyFunc(b.PartKeyFn, r.limits)
	if err != nil {
		return indexer.Spec{}, fmt.Errorf("script: %s: %w", b.Script, err)
	}
	keys, err := h.prog.KeysFunc(b.KeysFn, r.limits)
	if err != nil {
		return indexer.Spec{}, fmt.Errorf("script: %s: %w", b.Script, err)
	}
	return indexer.Spec{
		Name:       b.Structure,
		Base:       b.Base,
		Kind:       kind,
		Partitions: b.Partitions,
		PartKey:    partKey,
		Keys:       keys,
	}, nil
}

// Binding returns the recorded binding of a structure, if any.
func (r *Registry) Binding(structure string) (SpecBinding, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.bindings[structure]
	return b, ok
}

// RestoreBinding re-records a binding previously captured with Binding,
// without re-validating it against the current script versions. It exists
// for failure-path rollback: a caller whose Bind replaced a binding and then
// failed downstream puts the replaced one back.
func (r *Registry) RestoreBinding(b SpecBinding) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bindings[b.Structure] = b
}

// Unbind drops the persisted binding of a structure (the structure itself,
// if built, is untouched). It reports whether a binding existed.
func (r *Registry) Unbind(structure string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.bindings[structure]
	delete(r.bindings, structure)
	return ok
}

// Bindings snapshots the recorded structure bindings, sorted by structure
// name, for checkpointing.
func (r *Registry) Bindings() []SpecBinding {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpecBinding, 0, len(r.bindings))
	for _, b := range r.bindings {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Structure < out[j].Structure })
	return out
}
