package script

import (
	"fmt"

	"lakeharbor/internal/core"
	"lakeharbor/internal/lake"
)

// The host API: adapters that make a compiled Program implement the engine
// contracts. Every adapter validates its entry function at construction
// time (the registry's validate-at-POST guarantee), and every entry function
// has the same calling convention: two string parameters, the record's
// encoded key and its raw payload.
//
//	fn interpret(key, data) { set("val", …) }          → core.Interpreter
//	fn keep(key, data)      { return … }               → core.Filter (bool)
//	fn ref(key, data)       { emit("file", pk, k) }    → core.Referencer
//	fn partkey(key, data)   { return key }             → indexer.Spec.PartKey
//	fn keys(key, data)      { emit(keyint(…)) }        → indexer.Spec.Keys
//
// Contract-specific builtins (set, emit, emitbroadcast, emitrange, carry,
// carrycomposite) are installed per invocation; a script can only do what
// the contract it serves allows.

// checkEntry validates that fn exists and takes (key, data).
func (p *Program) checkEntry(fn string) error {
	switch n := p.Params(fn); n {
	case -1:
		return &Error{Class: ClassCompile, Fn: fn, Line: 1, Msg: "program declares no function " + fn}
	case 2:
		return nil
	default:
		return &Error{Class: ClassCompile, Fn: fn, Line: 1,
			Msg: fmt.Sprintf("%s takes %d parameters, want 2 (key, data)", fn, n)}
	}
}

func wantStr(fn string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%s takes %d arguments, got %d", fn, n, len(args))
	}
	for i, a := range args {
		if _, ok := a.IsStr(); !ok {
			return fmt.Errorf("%s argument %d is %s, want string", fn, i+1, a.kind)
		}
	}
	return nil
}

// NewInterpreter adapts fn to core.Interpreter. The script names fields via
// set(name, value); values are stored in their text form.
func (p *Program) NewInterpreter(fn string, lim Limits) (core.Interpreter, error) {
	if err := p.checkEntry(fn); err != nil {
		return nil, err
	}
	return func(rec lake.Record) (core.Fields, error) {
		fields := core.Fields{}
		host := map[string]Builtin{
			"set": func(args []Value) (Value, error) {
				if len(args) != 2 {
					return Value{}, fmt.Errorf("set takes 2 arguments, got %d", len(args))
				}
				name, ok := args[0].IsStr()
				if !ok {
					return Value{}, fmt.Errorf("set field name is %s, want string", args[0].kind)
				}
				fields[name] = args[1].Text()
				return Value{}, nil
			},
		}
		if _, err := p.Call(fn, lim, host, Str(string(rec.Key)), Str(string(rec.Data))); err != nil {
			return nil, err
		}
		return fields, nil
	}, nil
}

// NewFilter adapts fn to core.Filter. The script must return a bool.
func (p *Program) NewFilter(fn string, lim Limits) (core.Filter, error) {
	if err := p.checkEntry(fn); err != nil {
		return nil, err
	}
	return func(rec lake.Record) (bool, error) {
		v, err := p.Call(fn, lim, nil, Str(string(rec.Key)), Str(string(rec.Data)))
		if err != nil {
			return false, err
		}
		keep, ok := v.IsBool()
		if !ok {
			return false, &Error{Class: ClassRuntime, Fn: fn, Line: 1,
				Msg: fmt.Sprintf("filter returned %s, want bool", v.kind)}
		}
		return keep, nil
	}, nil
}

// Referencer is a scripted core.Referencer: each invocation evaluates the
// entry function, collecting the pointers it emits.
type Referencer struct {
	label string
	fn    string
	p     *Program
	lim   Limits
}

// NewReferencer adapts fn to core.Referencer. Inside the script:
//
//	emit(file, partkey, key)   a routed point pointer
//	emitbroadcast(file, key)   a broadcast point pointer (all partitions)
//	emitrange(file, lo, hi)    a broadcast range pointer [lo, hi]
//	carry()                    attach this record's payload as carried
//	                           context to every pointer emitted after the
//	                           call (multi-way join state, CarryRecord)
//	carrycomposite()           carry the payload as an existing segment
//	                           list (CarryComposite)
func (p *Program) NewReferencer(label, fn string, lim Limits) (*Referencer, error) {
	if err := p.checkEntry(fn); err != nil {
		return nil, err
	}
	return &Referencer{label: label, fn: fn, p: p, lim: lim}, nil
}

// Name implements core.Referencer.
func (r *Referencer) Name() string { return "Script(" + r.label + ")" }

// Ref implements core.Referencer.
func (r *Referencer) Ref(tc *core.TaskCtx, rec lake.Record) ([]lake.Pointer, error) {
	var out []lake.Pointer
	var carry []byte
	host := map[string]Builtin{
		"emit": func(args []Value) (Value, error) {
			if err := wantStr("emit", args, 3); err != nil {
				return Value{}, err
			}
			out = append(out, lake.Pointer{
				File: args[0].s, PartKey: lake.Key(args[1].s), Key: lake.Key(args[2].s), Carry: carry,
			})
			return Value{}, nil
		},
		"emitbroadcast": func(args []Value) (Value, error) {
			if err := wantStr("emitbroadcast", args, 2); err != nil {
				return Value{}, err
			}
			out = append(out, lake.Pointer{
				File: args[0].s, NoPart: true, Key: lake.Key(args[1].s), Carry: carry,
			})
			return Value{}, nil
		},
		"emitrange": func(args []Value) (Value, error) {
			if err := wantStr("emitrange", args, 3); err != nil {
				return Value{}, err
			}
			out = append(out, lake.Pointer{
				File: args[0].s, NoPart: true, Key: lake.Key(args[1].s), EndKey: lake.Key(args[2].s), Carry: carry,
			})
			return Value{}, nil
		},
		"carry": func(args []Value) (Value, error) {
			if len(args) != 0 {
				return Value{}, fmt.Errorf("carry takes no arguments")
			}
			carry = lake.EncodeSegments(rec.Data)
			return Value{}, nil
		},
		"carrycomposite": func(args []Value) (Value, error) {
			if len(args) != 0 {
				return Value{}, fmt.Errorf("carrycomposite takes no arguments")
			}
			carry = rec.Data
			return Value{}, nil
		},
	}
	if _, err := r.p.Call(r.fn, r.lim, host, Str(string(rec.Key)), Str(string(rec.Data))); err != nil {
		return nil, err
	}
	return out, nil
}

// PartKeyFunc adapts fn to an indexer.Spec.PartKey extractor: the script
// returns the partition key as a string.
func (p *Program) PartKeyFunc(fn string, lim Limits) (func(lake.Record) (lake.Key, error), error) {
	if err := p.checkEntry(fn); err != nil {
		return nil, err
	}
	return func(rec lake.Record) (lake.Key, error) {
		v, err := p.Call(fn, lim, nil, Str(string(rec.Key)), Str(string(rec.Data)))
		if err != nil {
			return "", err
		}
		s, ok := v.IsStr()
		if !ok {
			return "", &Error{Class: ClassRuntime, Fn: fn, Line: 1,
				Msg: fmt.Sprintf("partition-key function returned %s, want string", v.kind)}
		}
		return lake.Key(s), nil
	}, nil
}

// KeysFunc adapts fn to an indexer.Spec.Keys extractor: the script emits
// zero or more index keys via emit(key).
func (p *Program) KeysFunc(fn string, lim Limits) (func(lake.Record) ([]lake.Key, error), error) {
	if err := p.checkEntry(fn); err != nil {
		return nil, err
	}
	return func(rec lake.Record) ([]lake.Key, error) {
		var keys []lake.Key
		host := map[string]Builtin{
			"emit": func(args []Value) (Value, error) {
				if err := wantStr("emit", args, 1); err != nil {
					return Value{}, err
				}
				keys = append(keys, lake.Key(args[0].s))
				return Value{}, nil
			},
		}
		if _, err := p.Call(fn, lim, host, Str(string(rec.Key)), Str(string(rec.Data))); err != nil {
			return nil, err
		}
		return keys, nil
	}, nil
}
