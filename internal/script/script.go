// Package script makes access methods first-class, post-hoc citizens of the
// lake: a small, sandboxed, in-tree interpreter for a deliberately minimal
// expression/statement language whose programs implement the
// core.Interpreter, core.Referencer, and core.Filter contracts (and the
// indexer.Spec extractor functions) against a typed record/key host API.
//
// The paper's premise (§II) is that structures and the functions that
// interpret them can be registered after data lands in the lake. Every other
// access method in this repo is compiled in; this package is the runtime
// path: a user POSTs source text, the registry compiles and validates it
// once, and from then on the program is invoked per record exactly like a
// compiled function — inside the SMPE executor, inside structure builds,
// and across restarts (the source persists in snapshot meta and is
// re-compiled on recovery).
//
// Sandboxing is non-negotiable and enforced here, not by callers:
//
//   - no IO, no imports, no host access beyond the builtins installed for
//     the specific contract being served;
//   - deterministic evaluation (integer arithmetic, strings, booleans; no
//     floats, no clocks, no randomness, no map iteration);
//   - per-invocation step and allocation budgets (Limits) so a runaway loop
//     or an allocation bomb terminates with a typed error;
//   - every error — compile, runtime, or budget — is a *Error, which
//     classifies as permanent (core.Permanent), so the executor fails fast
//     instead of retrying a script that will fail identically forever.
package script

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// Default per-invocation sandbox budgets. One invocation interprets one
// record; these are generous for that (a typical mirror script runs in tens
// of steps) while bounding a hostile one to microseconds.
const (
	// DefaultSteps is the evaluation-step budget: every statement executed
	// and every expression node evaluated costs one step.
	DefaultSteps = 100_000
	// DefaultAllocBytes is the allocation budget: every byte of string a
	// program produces (concatenation, substr, str, key encoding) counts.
	DefaultAllocBytes = 1 << 20
)

// Limits is the per-invocation sandbox budget. The zero value selects the
// defaults; negative values are treated as zero (nothing allowed).
type Limits struct {
	// Steps bounds evaluation steps per invocation.
	Steps int64
	// AllocBytes bounds string bytes produced per invocation.
	AllocBytes int64
}

func (l Limits) withDefaults() Limits {
	if l.Steps == 0 {
		l.Steps = DefaultSteps
	}
	if l.AllocBytes == 0 {
		l.AllocBytes = DefaultAllocBytes
	}
	return l
}

// Class partitions script errors by origin.
type Class int

const (
	// ClassCompile is a lex/parse/validation error: the source is broken.
	ClassCompile Class = iota
	// ClassRuntime is an evaluation error: type mismatch, unknown name,
	// division by zero, a host builtin rejecting its arguments.
	ClassRuntime
	// ClassStepBudget means the invocation exhausted Limits.Steps.
	ClassStepBudget
	// ClassAllocBudget means the invocation exhausted Limits.AllocBytes.
	ClassAllocBudget
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCompile:
		return "compile"
	case ClassStepBudget:
		return "step-budget"
	case ClassAllocBudget:
		return "alloc-budget"
	default:
		return "runtime"
	}
}

// Error is the one error type this package produces. It classifies as a
// permanent failure (lake.IsPermanent / core.Permanent detect the Permanent
// method), so the SMPE executor never retries a broken script: the same
// source evaluates the same way on every attempt.
type Error struct {
	// Class is the error's origin.
	Class Class
	// Fn names the function being evaluated ("" for compile errors).
	Fn string
	// Line is the 1-based source line the error is attributed to.
	Line int
	// Msg describes the failure.
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	where := ""
	if e.Fn != "" {
		where = " in " + e.Fn
	}
	return fmt.Sprintf("script: %s error%s (line %d): %s", e.Class, where, e.Line, e.Msg)
}

// Permanent marks every script error as non-retryable for the executor.
func (e *Error) Permanent() bool { return true }

// kind is a Value's dynamic type.
type kind int

const (
	kindInt kind = iota
	kindStr
	kindBool
)

func (k kind) String() string {
	switch k {
	case kindStr:
		return "string"
	case kindBool:
		return "bool"
	default:
		return "int"
	}
}

// Value is one dynamically-typed script value: int64, string, or bool.
// Keys (lake.Key) travel as strings, which the key* builtins produce in
// order-preserving encoded form.
type Value struct {
	kind kind
	i    int64
	s    string
	b    bool
}

// Int wraps an int64.
func Int(v int64) Value { return Value{kind: kindInt, i: v} }

// Str wraps a string.
func Str(s string) Value { return Value{kind: kindStr, s: s} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{kind: kindBool, b: b} }

// Text renders the value the way the str builtin does: ints in decimal,
// bools as true/false, strings as-is.
func (v Value) Text() string {
	switch v.kind {
	case kindStr:
		return v.s
	case kindBool:
		return strconv.FormatBool(v.b)
	default:
		return strconv.FormatInt(v.i, 10)
	}
}

// IsStr reports whether the value is a string, returning it.
func (v Value) IsStr() (string, bool) { return v.s, v.kind == kindStr }

// IsBool reports whether the value is a bool, returning it.
func (v Value) IsBool() (bool, bool) { return v.b, v.kind == kindBool }

// IsInt reports whether the value is an int, returning it.
func (v Value) IsInt() (int64, bool) { return v.i, v.kind == kindInt }

// Package-wide counters, exported to /debug/metrics as lakeharbor_script_*.
var counters struct {
	compiles      atomic.Int64
	compileErrors atomic.Int64
	invocations   atomic.Int64
	stepTrips     atomic.Int64
	allocTrips    atomic.Int64
}

// CounterSnapshot is one consistent-enough read of the package counters.
type CounterSnapshot struct {
	// Compiles counts successful compilations.
	Compiles int64
	// CompileErrors counts sources rejected at compile time.
	CompileErrors int64
	// Invocations counts program function calls (one per record interpreted,
	// filtered, referenced, or indexed).
	Invocations int64
	// StepTrips counts invocations killed by the step budget.
	StepTrips int64
	// AllocTrips counts invocations killed by the allocation budget.
	AllocTrips int64
}

// Counters snapshots the package-wide script counters.
func Counters() CounterSnapshot {
	return CounterSnapshot{
		Compiles:      counters.compiles.Load(),
		CompileErrors: counters.compileErrors.Load(),
		Invocations:   counters.invocations.Load(),
		StepTrips:     counters.stepTrips.Load(),
		AllocTrips:    counters.allocTrips.Load(),
	}
}
