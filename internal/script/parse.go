package script

import (
	"fmt"
	"strconv"
)

// The parser. Grammar (comments and whitespace elided):
//
//	program := fndecl*
//	fndecl  := "fn" IDENT "(" [ IDENT ("," IDENT)* ] ")" block
//	block   := "{" stmt* "}"
//	stmt    := "let" IDENT "=" expr
//	         | IDENT "=" expr
//	         | "if" expr block [ "else" (block | if-stmt) ]
//	         | "while" expr block
//	         | "return" [ expr ]
//	         | expr
//	expr    := or
//	or      := and  ( "||" and )*
//	and     := cmp  ( "&&" cmp )*
//	cmp     := add  [ ("=="|"!="|"<"|"<="|">"|">=") add ]   (non-chaining)
//	add     := mul  ( ("+"|"-") mul )*
//	mul     := unary ( ("*"|"/"|"%") unary )*
//	unary   := ("!"|"-") unary | primary
//	primary := INT | STRING | "true" | "false" | IDENT
//	         | IDENT "(" [ expr ("," expr)* ] ")" | "(" expr ")"
//
// There are no user-defined function calls: a call resolves to a pure
// builtin or a host builtin at evaluation time, so a program cannot recurse
// and the only loop construct is while — which the step budget bounds.

// maxDepth bounds recursive nesting (parenthesized expressions, call
// arguments, unary chains, nested blocks) so hostile input cannot blow the
// parser's or evaluator's stack.
const maxDepth = 64

// maxParams bounds a function's parameter count.
const maxParams = 8

type fnDecl struct {
	name   string
	params []string
	body   []stmt
	line   int
}

type stmt interface{ stmtLine() int }

type letStmt struct {
	name string
	x    expr
	line int
}

type assignStmt struct {
	name string
	x    expr
	line int
}

type ifStmt struct {
	cond expr
	then []stmt
	// els is nil (no else), a block, or a single nested ifStmt (else-if).
	els  []stmt
	line int
}

type whileStmt struct {
	cond expr
	body []stmt
	line int
}

type returnStmt struct {
	x    expr // nil for a bare return
	line int
}

type exprStmt struct {
	x    expr
	line int
}

func (s *letStmt) stmtLine() int    { return s.line }
func (s *assignStmt) stmtLine() int { return s.line }
func (s *ifStmt) stmtLine() int     { return s.line }
func (s *whileStmt) stmtLine() int  { return s.line }
func (s *returnStmt) stmtLine() int { return s.line }
func (s *exprStmt) stmtLine() int   { return s.line }

type expr interface{ exprLine() int }

type intLit struct {
	v    int64
	line int
}

type strLit struct {
	v    string
	line int
}

type boolLit struct {
	v    bool
	line int
}

type varRef struct {
	name string
	line int
}

type callExpr struct {
	fn   string
	args []expr
	line int
}

type unaryExpr struct {
	op   string
	x    expr
	line int
}

type binExpr struct {
	op   string
	x, y expr
	line int
}

func (e *intLit) exprLine() int    { return e.line }
func (e *strLit) exprLine() int    { return e.line }
func (e *boolLit) exprLine() int   { return e.line }
func (e *varRef) exprLine() int    { return e.line }
func (e *callExpr) exprLine() int  { return e.line }
func (e *unaryExpr) exprLine() int { return e.line }
func (e *binExpr) exprLine() int   { return e.line }

var keywords = map[string]bool{
	"fn": true, "let": true, "if": true, "else": true,
	"while": true, "return": true, "true": true, "false": true,
}

// Program is one compiled, immutable script: a set of named functions. A
// Program is safe for concurrent Call invocations — evaluation state lives
// entirely in the call.
type Program struct {
	src   string
	fns   map[string]*fnDecl
	order []string
}

// Compile lexes, parses, and validates src. All errors are *Error with
// Class == ClassCompile.
func Compile(src string) (*Program, error) {
	p, err := compile(src)
	if err != nil {
		counters.compileErrors.Add(1)
		return nil, err
	}
	counters.compiles.Add(1)
	return p, nil
}

// MustCompile is Compile for sources known good (tests, generated mirrors).
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

func compile(src string) (*Program, *Error) {
	toks, lerr := lex(src)
	if lerr != nil {
		return nil, lerr
	}
	ps := &parser{toks: toks}
	prog := &Program{src: src, fns: map[string]*fnDecl{}}
	for ps.peek().kind != tokEOF {
		fn, err := ps.parseFn()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.fns[fn.name]; dup {
			return nil, &Error{Class: ClassCompile, Line: fn.line, Msg: "duplicate function " + fn.name}
		}
		prog.fns[fn.name] = fn
		prog.order = append(prog.order, fn.name)
	}
	if len(prog.order) == 0 {
		return nil, &Error{Class: ClassCompile, Line: 1, Msg: "program declares no functions"}
	}
	return prog, nil
}

// Source returns the text the program was compiled from.
func (p *Program) Source() string { return p.src }

// Funcs lists the program's function names in declaration order.
func (p *Program) Funcs() []string { return append([]string(nil), p.order...) }

// Has reports whether the program declares fn.
func (p *Program) Has(fn string) bool { _, ok := p.fns[fn]; return ok }

// Params returns the parameter count of fn (-1 when undeclared).
func (p *Program) Params(fn string) int {
	d, ok := p.fns[fn]
	if !ok {
		return -1
	}
	return len(d.params)
}

type parser struct {
	toks  []token
	pos   int
	depth int
}

func (ps *parser) peek() token { return ps.toks[ps.pos] }

func (ps *parser) next() token {
	t := ps.toks[ps.pos]
	if t.kind != tokEOF {
		ps.pos++
	}
	return t
}

func (ps *parser) errf(line int, format string, args ...any) *Error {
	return &Error{Class: ClassCompile, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (ps *parser) expectPunct(p string) *Error {
	t := ps.next()
	if t.kind != tokPunct || t.text != p {
		return ps.errf(t.line, "expected %q, got %s", p, describe(t))
	}
	return nil
}

func describe(t token) string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokStr:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

func (ps *parser) isPunct(p string) bool {
	t := ps.peek()
	return t.kind == tokPunct && t.text == p
}

func (ps *parser) isKeyword(k string) bool {
	t := ps.peek()
	return t.kind == tokIdent && t.text == k
}

func (ps *parser) enter(line int) *Error {
	ps.depth++
	if ps.depth > maxDepth {
		return ps.errf(line, "nesting exceeds depth %d", maxDepth)
	}
	return nil
}

func (ps *parser) leave() { ps.depth-- }

func (ps *parser) parseFn() (*fnDecl, *Error) {
	t := ps.next()
	if t.kind != tokIdent || t.text != "fn" {
		return nil, ps.errf(t.line, "expected \"fn\", got %s", describe(t))
	}
	name := ps.next()
	if name.kind != tokIdent || keywords[name.text] {
		return nil, ps.errf(name.line, "expected function name, got %s", describe(name))
	}
	if err := ps.expectPunct("("); err != nil {
		return nil, err
	}
	fn := &fnDecl{name: name.text, line: t.line}
	seen := map[string]bool{}
	for !ps.isPunct(")") {
		if len(fn.params) > 0 {
			if err := ps.expectPunct(","); err != nil {
				return nil, err
			}
		}
		p := ps.next()
		if p.kind != tokIdent || keywords[p.text] {
			return nil, ps.errf(p.line, "expected parameter name, got %s", describe(p))
		}
		if seen[p.text] {
			return nil, ps.errf(p.line, "duplicate parameter %s", p.text)
		}
		seen[p.text] = true
		fn.params = append(fn.params, p.text)
		if len(fn.params) > maxParams {
			return nil, ps.errf(p.line, "more than %d parameters", maxParams)
		}
	}
	ps.next() // ")"
	body, err := ps.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.body = body
	return fn, nil
}

func (ps *parser) parseBlock() ([]stmt, *Error) {
	open := ps.peek()
	if err := ps.expectPunct("{"); err != nil {
		return nil, err
	}
	if err := ps.enter(open.line); err != nil {
		return nil, err
	}
	defer ps.leave()
	stmts := []stmt{}
	for !ps.isPunct("}") {
		if ps.peek().kind == tokEOF {
			return nil, ps.errf(ps.peek().line, "unterminated block (missing \"}\")")
		}
		s, err := ps.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	ps.next() // "}"
	return stmts, nil
}

func (ps *parser) parseStmt() (stmt, *Error) {
	t := ps.peek()
	switch {
	case ps.isKeyword("let"):
		ps.next()
		name := ps.next()
		if name.kind != tokIdent || keywords[name.text] {
			return nil, ps.errf(name.line, "expected variable name, got %s", describe(name))
		}
		if err := ps.expectPunct("="); err != nil {
			return nil, err
		}
		x, err := ps.parseExpr()
		if err != nil {
			return nil, err
		}
		return &letStmt{name: name.text, x: x, line: t.line}, nil
	case ps.isKeyword("if"):
		return ps.parseIf()
	case ps.isKeyword("while"):
		ps.next()
		cond, err := ps.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := ps.parseBlock()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: t.line}, nil
	case ps.isKeyword("return"):
		ps.next()
		// A bare return ends the statement when the next token cannot start
		// an expression ("}" or EOF is the common case).
		if ps.isPunct("}") || ps.peek().kind == tokEOF {
			return &returnStmt{line: t.line}, nil
		}
		x, err := ps.parseExpr()
		if err != nil {
			return nil, err
		}
		return &returnStmt{x: x, line: t.line}, nil
	case t.kind == tokIdent && !keywords[t.text] && ps.toks[ps.pos+1].kind == tokPunct && ps.toks[ps.pos+1].text == "=":
		ps.next() // name
		ps.next() // "="
		x, err := ps.parseExpr()
		if err != nil {
			return nil, err
		}
		return &assignStmt{name: t.text, x: x, line: t.line}, nil
	default:
		x, err := ps.parseExpr()
		if err != nil {
			return nil, err
		}
		return &exprStmt{x: x, line: t.line}, nil
	}
}

func (ps *parser) parseIf() (stmt, *Error) {
	t := ps.next() // "if"
	cond, err := ps.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := ps.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &ifStmt{cond: cond, then: then, line: t.line}
	if ps.isKeyword("else") {
		ps.next()
		if ps.isKeyword("if") {
			if err := ps.enter(ps.peek().line); err != nil {
				return nil, err
			}
			nested, perr := ps.parseIf()
			ps.leave()
			if perr != nil {
				return nil, perr
			}
			s.els = []stmt{nested}
		} else {
			els, perr := ps.parseBlock()
			if perr != nil {
				return nil, perr
			}
			s.els = els
		}
	}
	return s, nil
}

// Binary operator precedence levels (higher binds tighter). cmp (level 3)
// is non-chaining: a < b < c is a parse error.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

func (ps *parser) parseExpr() (expr, *Error) { return ps.parseBin(1) }

func (ps *parser) parseBin(minPrec int) (expr, *Error) {
	x, err := ps.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := ps.peek()
		if t.kind != tokPunct {
			return x, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return x, nil
		}
		ps.next()
		// Left-associative: the right operand binds at prec+1. For the
		// non-chaining comparison level the right operand also binds at
		// prec+1, which makes a second comparison at the same level
		// unreachable without parentheses — a < b < c fails below.
		y, err := ps.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		if prec == binPrec["=="] {
			if n := ps.peek(); n.kind == tokPunct && binPrec[n.text] == prec {
				return nil, ps.errf(n.line, "comparison chains need parentheses")
			}
		}
		x = &binExpr{op: t.text, x: x, y: y, line: t.line}
	}
}

func (ps *parser) parseUnary() (expr, *Error) {
	t := ps.peek()
	if t.kind == tokPunct && (t.text == "!" || t.text == "-") {
		ps.next()
		if err := ps.enter(t.line); err != nil {
			return nil, err
		}
		x, perr := ps.parseUnary()
		ps.leave()
		if perr != nil {
			return nil, perr
		}
		return &unaryExpr{op: t.text, x: x, line: t.line}, nil
	}
	return ps.parsePrimary()
}

func (ps *parser) parsePrimary() (expr, *Error) {
	t := ps.next()
	switch t.kind {
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, ps.errf(t.line, "integer literal %s overflows int64", t.text)
		}
		return &intLit{v: v, line: t.line}, nil
	case tokStr:
		return &strLit{v: t.text, line: t.line}, nil
	case tokIdent:
		switch t.text {
		case "true":
			return &boolLit{v: true, line: t.line}, nil
		case "false":
			return &boolLit{v: false, line: t.line}, nil
		}
		if keywords[t.text] {
			return nil, ps.errf(t.line, "unexpected keyword %q", t.text)
		}
		if !ps.isPunct("(") {
			return &varRef{name: t.text, line: t.line}, nil
		}
		ps.next() // "("
		if err := ps.enter(t.line); err != nil {
			return nil, err
		}
		defer ps.leave()
		call := &callExpr{fn: t.text, line: t.line}
		for !ps.isPunct(")") {
			if len(call.args) > 0 {
				if err := ps.expectPunct(","); err != nil {
					return nil, err
				}
			}
			arg, err := ps.parseExpr()
			if err != nil {
				return nil, err
			}
			call.args = append(call.args, arg)
			if len(call.args) > maxParams {
				return nil, ps.errf(t.line, "more than %d call arguments", maxParams)
			}
		}
		ps.next() // ")"
		return call, nil
	case tokPunct:
		if t.text == "(" {
			if err := ps.enter(t.line); err != nil {
				return nil, err
			}
			x, perr := ps.parseExpr()
			ps.leave()
			if perr != nil {
				return nil, perr
			}
			if err := ps.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, ps.errf(t.line, "expected expression, got %s", describe(t))
}
