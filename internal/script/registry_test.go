package script

import (
	"strings"
	"testing"

	"lakeharbor/internal/indexer"
)

const regSrc = `fn partkey(key, data) { return key }
fn keys(key, data) { emit(key) }`

func TestRegistryPutGetDeleteList(t *testing.T) {
	reg := NewRegistry(Limits{})
	if _, err := reg.Put("a", "not a program"); err == nil {
		t.Fatal("Put accepted a broken source")
	}
	if _, err := reg.Put("bad name!", regSrc); err == nil {
		t.Fatal("Put accepted an invalid name")
	}
	h, err := reg.Put("a", regSrc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 1 {
		t.Fatalf("first version = %d", h.Version)
	}
	// A failing re-Put leaves the existing version in place.
	if _, err := reg.Put("a", "@@"); err == nil {
		t.Fatal("re-Put accepted a broken source")
	}
	got, ok := reg.Get("a")
	if !ok || got != h {
		t.Fatal("failed re-Put replaced the handle")
	}
	if _, err := reg.Put("b", regSrc); err != nil {
		t.Fatal(err)
	}
	infos := reg.List()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("List = %+v", infos)
	}
	if len(infos[0].Funcs) != 2 || infos[0].Funcs[0] != "partkey" {
		t.Fatalf("Funcs = %v", infos[0].Funcs)
	}
	if !reg.Delete("a") || reg.Delete("a") {
		t.Fatal("Delete semantics broken")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len = %d", reg.Len())
	}
}

func TestRegistryBindValidatesAtPost(t *testing.T) {
	reg := NewRegistry(Limits{})
	if _, err := reg.Put("s", regSrc); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    SpecBinding
		want string
	}{
		{"missing-structure", SpecBinding{Base: "base", Script: "s", PartKeyFn: "partkey", KeysFn: "keys"}, "needs structure"},
		{"bad-kind", SpecBinding{Structure: "i", Base: "base", Kind: "diagonal", Script: "s", PartKeyFn: "partkey", KeysFn: "keys"}, "want local or global"},
		{"unknown-script", SpecBinding{Structure: "i", Base: "base", Script: "nope", PartKeyFn: "partkey", KeysFn: "keys"}, "no script"},
		{"unknown-fn", SpecBinding{Structure: "i", Base: "base", Script: "s", PartKeyFn: "partkey", KeysFn: "missing"}, "declares no function"},
		{"negative-partitions", SpecBinding{Structure: "i", Base: "base", Partitions: -1, Script: "s", PartKeyFn: "partkey", KeysFn: "keys"}, "partitions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := reg.Bind(tc.b); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Bind error %v, want %q", err, tc.want)
			}
		})
	}
	if len(reg.Bindings()) != 0 {
		t.Fatal("failed Binds were recorded")
	}

	spec, err := reg.Bind(SpecBinding{
		Structure: "i", Base: "base", Kind: "global", Partitions: 3,
		Script: "s", PartKeyFn: "partkey", KeysFn: "keys",
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "i" || spec.Kind != indexer.Global || spec.Partitions != 3 {
		t.Fatalf("spec = %+v", spec)
	}
	if bs := reg.Bindings(); len(bs) != 1 || bs[0].Structure != "i" {
		t.Fatalf("Bindings = %+v", bs)
	}
}

func TestDeleteDropsDependentBindings(t *testing.T) {
	reg := NewRegistry(Limits{})
	if _, err := reg.Put("s", regSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Bind(SpecBinding{Structure: "i", Base: "b", Script: "s", PartKeyFn: "partkey", KeysFn: "keys"}); err != nil {
		t.Fatal(err)
	}
	reg.Delete("s")
	if len(reg.Bindings()) != 0 {
		t.Fatal("deleting a script kept its bindings")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	reg := NewRegistry(Limits{})
	if _, err := reg.Put("s", regSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Bind(SpecBinding{Structure: "i", Base: "b", Script: "s", PartKeyFn: "partkey", KeysFn: "keys"}); err != nil {
		t.Fatal(err)
	}
	scripts, bindings := reg.PersistScripts(), reg.Bindings()

	// Boot path: a fresh registry re-Puts the sources and re-Binds.
	fresh := NewRegistry(Limits{})
	for _, pe := range scripts {
		if _, err := fresh.Put(pe.Name, pe.Source); err != nil {
			t.Fatalf("persisted source does not recompile: %v", err)
		}
	}
	for _, b := range bindings {
		if _, err := fresh.Bind(b); err != nil {
			t.Fatalf("persisted binding does not rebind: %v", err)
		}
	}
	if fresh.Len() != 1 || len(fresh.Bindings()) != 1 {
		t.Fatal("recovered registry incomplete")
	}
}

func TestUnbind(t *testing.T) {
	reg := NewRegistry(Limits{})
	if _, err := reg.Put("s", regSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Bind(SpecBinding{Structure: "i", Base: "b", Script: "s", PartKeyFn: "partkey", KeysFn: "keys"}); err != nil {
		t.Fatal(err)
	}
	if !reg.Unbind("i") || reg.Unbind("i") {
		t.Fatal("Unbind semantics broken")
	}
}
