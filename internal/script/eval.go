package script

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// The evaluator: a tree walker with two meters. Every statement executed and
// every expression node evaluated charges one step, and data-proportional
// work (string comparison, find) charges a step per byte touched; every
// string byte a program produces charges the allocation budget. Exceeding
// either budget aborts the invocation with a typed, permanent *Error, so
// the worst a hostile script costs is the budget — never a hung worker,
// never a retried task.

// Builtin is one host-provided function, installed per invocation for the
// contract being served (set for interpreters, emit/carry for referencers,
// …). Argument validation is the builtin's job; a plain error return is
// wrapped into a *Error at the call site.
type Builtin func(args []Value) (Value, error)

// Call evaluates fn with the given sandbox limits, host builtins, and
// arguments, returning the function's return value (the zero Value for a
// bare or missing return). Programs are immutable, so concurrent Calls on
// one Program are safe; each call meters itself independently.
func (p *Program) Call(fn string, lim Limits, host map[string]Builtin, args ...Value) (ret Value, err error) {
	counters.invocations.Add(1)
	// Last line of the sandbox: a panic escaping Call — an evaluator bug or
	// a faulting host builtin — would crash the whole serving process from a
	// user-POSTed script. Convert it into a permanent runtime *Error so the
	// guarantee that a hostile script costs at most its budget holds even
	// against bugs below this point.
	defer func() {
		if r := recover(); r != nil {
			ret = Value{}
			err = &Error{Class: ClassRuntime, Fn: fn, Line: 1,
				Msg: fmt.Sprintf("internal panic: %v", r)}
		}
	}()
	d, ok := p.fns[fn]
	if !ok {
		return Value{}, &Error{Class: ClassRuntime, Fn: fn, Line: 1, Msg: "no such function"}
	}
	if len(args) != len(d.params) {
		return Value{}, &Error{Class: ClassRuntime, Fn: fn, Line: d.line,
			Msg: fmt.Sprintf("%s takes %d arguments, got %d", fn, len(d.params), len(args))}
	}
	ev := &evalState{
		fn:   fn,
		host: host,
		lim:  lim.withDefaults(),
		vars: make(map[string]Value, len(d.params)+4),
	}
	for i, name := range d.params {
		ev.vars[name] = args[i]
	}
	out, _, eerr := ev.execBlock(d.body)
	if eerr != nil {
		return Value{}, eerr
	}
	return out, nil
}

type evalState struct {
	fn    string
	host  map[string]Builtin
	lim   Limits
	vars  map[string]Value
	steps int64
	alloc int64
}

func (ev *evalState) errf(line int, format string, args ...any) *Error {
	return &Error{Class: ClassRuntime, Fn: ev.fn, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// step charges one evaluation step.
func (ev *evalState) step(line int) *Error { return ev.stepN(1, line) }

// stepN charges n evaluation steps at once. Data-proportional work —
// bytewise string comparison, substring search — charges one step per byte
// touched, so the step budget bounds CPU time, not just node count.
func (ev *evalState) stepN(n int64, line int) *Error {
	ev.steps += n
	if ev.steps > ev.lim.Steps {
		counters.stepTrips.Add(1)
		return &Error{Class: ClassStepBudget, Fn: ev.fn, Line: line,
			Msg: fmt.Sprintf("step budget of %d exhausted", ev.lim.Steps)}
	}
	return nil
}

// charge meters n bytes of produced string.
func (ev *evalState) charge(n int, line int) *Error {
	ev.alloc += int64(n)
	if ev.alloc > ev.lim.AllocBytes {
		counters.allocTrips.Add(1)
		return &Error{Class: ClassAllocBudget, Fn: ev.fn, Line: line,
			Msg: fmt.Sprintf("allocation budget of %d bytes exhausted", ev.lim.AllocBytes)}
	}
	return nil
}

// execBlock runs stmts; returned=true means a return statement fired and
// ret carries its value.
func (ev *evalState) execBlock(stmts []stmt) (ret Value, returned bool, err *Error) {
	for _, s := range stmts {
		if err := ev.step(s.stmtLine()); err != nil {
			return Value{}, false, err
		}
		switch s := s.(type) {
		case *letStmt:
			v, err := ev.eval(s.x)
			if err != nil {
				return Value{}, false, err
			}
			ev.vars[s.name] = v
		case *assignStmt:
			if _, ok := ev.vars[s.name]; !ok {
				return Value{}, false, ev.errf(s.line, "assignment to undeclared variable %s (use let)", s.name)
			}
			v, err := ev.eval(s.x)
			if err != nil {
				return Value{}, false, err
			}
			ev.vars[s.name] = v
		case *ifStmt:
			cond, err := ev.evalBool(s.cond)
			if err != nil {
				return Value{}, false, err
			}
			body := s.then
			if !cond {
				body = s.els
			}
			if ret, returned, err := ev.execBlock(body); err != nil || returned {
				return ret, returned, err
			}
		case *whileStmt:
			for {
				if err := ev.step(s.line); err != nil {
					return Value{}, false, err
				}
				cond, err := ev.evalBool(s.cond)
				if err != nil {
					return Value{}, false, err
				}
				if !cond {
					break
				}
				if ret, returned, err := ev.execBlock(s.body); err != nil || returned {
					return ret, returned, err
				}
			}
		case *returnStmt:
			if s.x == nil {
				return Value{}, true, nil
			}
			v, err := ev.eval(s.x)
			if err != nil {
				return Value{}, false, err
			}
			return v, true, nil
		case *exprStmt:
			if _, err := ev.eval(s.x); err != nil {
				return Value{}, false, err
			}
		}
	}
	return Value{}, false, nil
}

func (ev *evalState) evalBool(e expr) (bool, *Error) {
	v, err := ev.eval(e)
	if err != nil {
		return false, err
	}
	if v.kind != kindBool {
		return false, ev.errf(e.exprLine(), "condition is %s, want bool", v.kind)
	}
	return v.b, nil
}

func (ev *evalState) eval(e expr) (Value, *Error) {
	if err := ev.step(e.exprLine()); err != nil {
		return Value{}, err
	}
	switch e := e.(type) {
	case *intLit:
		return Int(e.v), nil
	case *strLit:
		return Str(e.v), nil
	case *boolLit:
		return Bool(e.v), nil
	case *varRef:
		v, ok := ev.vars[e.name]
		if !ok {
			return Value{}, ev.errf(e.line, "undefined variable %s", e.name)
		}
		return v, nil
	case *callExpr:
		return ev.evalCall(e)
	case *unaryExpr:
		x, err := ev.eval(e.x)
		if err != nil {
			return Value{}, err
		}
		switch e.op {
		case "!":
			if x.kind != kindBool {
				return Value{}, ev.errf(e.line, "operator ! on %s, want bool", x.kind)
			}
			return Bool(!x.b), nil
		default: // "-"
			if x.kind != kindInt {
				return Value{}, ev.errf(e.line, "operator - on %s, want int", x.kind)
			}
			if x.i == math.MinInt64 {
				return Value{}, ev.errf(e.line, "integer overflow negating %d", x.i)
			}
			return Int(-x.i), nil
		}
	case *binExpr:
		return ev.evalBin(e)
	}
	return Value{}, ev.errf(e.exprLine(), "unevaluable expression")
}

func (ev *evalState) evalBin(e *binExpr) (Value, *Error) {
	// && and || short-circuit; everything else is strict.
	if e.op == "&&" || e.op == "||" {
		x, err := ev.evalBool(e.x)
		if err != nil {
			return Value{}, err
		}
		if e.op == "&&" && !x || e.op == "||" && x {
			return Bool(x), nil
		}
		y, err := ev.evalBool(e.y)
		if err != nil {
			return Value{}, err
		}
		return Bool(y), nil
	}
	x, err := ev.eval(e.x)
	if err != nil {
		return Value{}, err
	}
	y, err := ev.eval(e.y)
	if err != nil {
		return Value{}, err
	}
	if x.kind != y.kind {
		return Value{}, ev.errf(e.line, "operator %s on mixed %s and %s", e.op, x.kind, y.kind)
	}
	switch x.kind {
	case kindInt:
		return ev.evalIntOp(e, x.i, y.i)
	case kindStr:
		return ev.evalStrOp(e, x.s, y.s)
	default:
		switch e.op {
		case "==":
			return Bool(x.b == y.b), nil
		case "!=":
			return Bool(x.b != y.b), nil
		}
		return Value{}, ev.errf(e.line, "operator %s on bool", e.op)
	}
}

func (ev *evalState) evalIntOp(e *binExpr, x, y int64) (Value, *Error) {
	switch e.op {
	case "+":
		return Int(x + y), nil
	case "-":
		return Int(x - y), nil
	case "*":
		return Int(x * y), nil
	case "/", "%":
		if y == 0 {
			return Value{}, ev.errf(e.line, "division by zero")
		}
		if x == math.MinInt64 && y == -1 {
			return Value{}, ev.errf(e.line, "integer overflow dividing %d by -1", x)
		}
		if e.op == "/" {
			return Int(x / y), nil
		}
		return Int(x % y), nil
	case "==":
		return Bool(x == y), nil
	case "!=":
		return Bool(x != y), nil
	case "<":
		return Bool(x < y), nil
	case "<=":
		return Bool(x <= y), nil
	case ">":
		return Bool(x > y), nil
	case ">=":
		return Bool(x >= y), nil
	}
	return Value{}, ev.errf(e.line, "unknown operator %s", e.op)
}

// evalStrOp: + concatenates (charged against the alloc budget); comparisons
// are bytewise — which on keycodec-encoded keys is exactly key order — and
// charge the step budget per byte of the shorter operand, so a loop
// comparing a large payload burns its budget instead of a worker's CPU.
func (ev *evalState) evalStrOp(e *binExpr, x, y string) (Value, *Error) {
	if e.op == "+" {
		if err := ev.charge(len(x)+len(y), e.line); err != nil {
			return Value{}, err
		}
		return Str(x + y), nil
	}
	if err := ev.stepN(int64(min(len(x), len(y))), e.line); err != nil {
		return Value{}, err
	}
	switch e.op {
	case "==":
		return Bool(x == y), nil
	case "!=":
		return Bool(x != y), nil
	case "<":
		return Bool(x < y), nil
	case "<=":
		return Bool(x <= y), nil
	case ">":
		return Bool(x > y), nil
	case ">=":
		return Bool(x >= y), nil
	}
	return Value{}, ev.errf(e.line, "operator %s on string", e.op)
}

func (ev *evalState) evalCall(e *callExpr) (Value, *Error) {
	args := make([]Value, len(e.args))
	for i, a := range e.args {
		v, err := ev.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	if v, handled, err := ev.pureBuiltin(e, args); handled {
		return v, err
	}
	if fn, ok := ev.host[e.fn]; ok {
		v, err := fn(args)
		if err != nil {
			if serr, ok := err.(*Error); ok {
				return Value{}, serr
			}
			return Value{}, ev.errf(e.line, "%s: %v", e.fn, err)
		}
		return v, nil
	}
	return Value{}, ev.errf(e.line, "unknown function %s", e.fn)
}

// pureBuiltin serves the context-independent builtins. handled=false means
// the name is not a pure builtin and host lookup should proceed.
func (ev *evalState) pureBuiltin(e *callExpr, args []Value) (v Value, handled bool, err *Error) {
	argErr := func(want string) *Error {
		return ev.errf(e.line, "%s takes %s", e.fn, want)
	}
	oneStr := func() (string, *Error) {
		if len(args) != 1 || args[0].kind != kindStr {
			return "", argErr("one string")
		}
		return args[0].s, nil
	}
	switch e.fn {
	case "len":
		s, err := oneStr()
		if err != nil {
			return Value{}, true, err
		}
		return Int(int64(len(s))), true, nil
	case "substr":
		// substr(s, i, j) is s[i:j] with the bounds clamped into range, so
		// substr is total: no index can fault a script.
		if len(args) != 3 || args[0].kind != kindStr || args[1].kind != kindInt || args[2].kind != kindInt {
			return Value{}, true, argErr("a string and two ints")
		}
		s := args[0].s
		i, j := args[1].i, args[2].i
		if i < 0 {
			i = 0
		}
		if j < 0 {
			j = 0
		}
		if j > int64(len(s)) {
			j = int64(len(s))
		}
		if i > j {
			i = j
		}
		out := s[i:j]
		if err := ev.charge(len(out), e.line); err != nil {
			return Value{}, true, err
		}
		return Str(out), true, nil
	case "find":
		// Substring search scans the haystack; charge it like a comparison
		// so find in a loop cannot outrun the step budget.
		if len(args) != 2 || args[0].kind != kindStr || args[1].kind != kindStr {
			return Value{}, true, argErr("two strings")
		}
		if err := ev.stepN(int64(len(args[0].s)), e.line); err != nil {
			return Value{}, true, err
		}
		return Int(int64(strings.Index(args[0].s, args[1].s))), true, nil
	case "int":
		s, err := oneStr()
		if err != nil {
			return Value{}, true, err
		}
		n, perr := strconv.ParseInt(s, 10, 64)
		if perr != nil {
			return Value{}, true, ev.errf(e.line, "int(%q): not an integer", s)
		}
		return Int(n), true, nil
	case "str":
		if len(args) != 1 {
			return Value{}, true, argErr("one value")
		}
		out := args[0].Text()
		if err := ev.charge(len(out), e.line); err != nil {
			return Value{}, true, err
		}
		return Str(out), true, nil
	case "keyint":
		// keyint(n) is the order-preserving key encoding of an int — the
		// script-side keycodec.Int64.
		if len(args) != 1 || args[0].kind != kindInt {
			return Value{}, true, argErr("one int")
		}
		out := keycodec.Int64(args[0].i)
		if err := ev.charge(len(out), e.line); err != nil {
			return Value{}, true, err
		}
		return Str(out), true, nil
	case "keystr":
		s, err := oneStr()
		if err != nil {
			return Value{}, true, err
		}
		out := keycodec.String(s)
		if err := ev.charge(len(out), e.line); err != nil {
			return Value{}, true, err
		}
		return Str(out), true, nil
	case "indexpart", "indexkey":
		// Decode a structure's index entry payload into the indexed record's
		// partition key / primary key — the script-side EntryRef.
		s, err := oneStr()
		if err != nil {
			return Value{}, true, err
		}
		partKey, pk, derr := lake.DecodeIndexEntry([]byte(s))
		if derr != nil {
			return Value{}, true, ev.errf(e.line, "%s: %v", e.fn, derr)
		}
		out := string(partKey)
		if e.fn == "indexkey" {
			out = string(pk)
		}
		if err := ev.charge(len(out), e.line); err != nil {
			return Value{}, true, err
		}
		return Str(out), true, nil
	}
	return Value{}, false, nil
}
