package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegistrationRejectsUnschedulable is the regression for the "hung
// submit" failure mode: a zero-weight tenant can never win pickLocked, so it
// must be impossible to create one, and an unknown tenant must be rejected
// at StartJob — synchronously, with a typed error — never queued.
func TestRegistrationRejectsUnschedulable(t *testing.T) {
	if _, err := New(Options{}, TenantConfig{Name: "z", Weight: 0}); err == nil {
		t.Fatal("zero-weight tenant registered; its submits could never be scheduled")
	}
	if _, err := New(Options{}, TenantConfig{Name: "n", Weight: -3}); err == nil {
		t.Fatal("negative-weight tenant registered")
	}
	if _, err := New(Options{}, TenantConfig{Name: "", Weight: 1}); err == nil {
		t.Fatal("empty tenant name registered")
	}
	if _, err := New(Options{}, TenantConfig{Name: "a", Weight: 1}, TenantConfig{Name: "a", Weight: 2}); err == nil {
		t.Fatal("duplicate tenant registered")
	}

	s, err := New(Options{Workers: 2}, TenantConfig{Name: "a", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan error, 1)
	go func() {
		_, err := s.StartJob("ghost")
		done <- err
	}()
	select {
	case err := <-done:
		var ae *AdmissionError
		if !errors.As(err, &ae) || !errors.Is(err, ErrUnknownTenant) {
			t.Fatalf("unknown tenant: got %v, want *AdmissionError wrapping ErrUnknownTenant", err)
		}
		if ae.RetryAfter != 0 {
			t.Fatalf("unknown tenant got RetryAfter %v; retrying cannot help", ae.RetryAfter)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("StartJob for an unknown tenant hung instead of rejecting")
	}
}

// TestJobQuotaAdmission covers MaxJobs: the quota rejects at admission with
// a Retry-After hint, and Finish releases the slot.
func TestJobQuotaAdmission(t *testing.T) {
	s, err := New(Options{Workers: 2}, TenantConfig{Name: "a", Weight: 1, MaxJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j1, err := s.StartJob("a")
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.StartJob("a")
	var ae *AdmissionError
	if !errors.As(err, &ae) || !errors.Is(err, ErrOverQuota) {
		t.Fatalf("second job: got %v, want ErrOverQuota", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("over-quota rejection carries RetryAfter %v, want > 0", ae.RetryAfter)
	}
	j1.Finish()
	j2, err := s.StartJob("a")
	if err != nil {
		t.Fatalf("after Finish the slot should be free: %v", err)
	}
	j2.Finish()

	st := s.Stats()
	if st.Tenants[0].JobsAdmitted != 2 || st.Tenants[0].JobsRejected != 1 {
		t.Fatalf("admission accounting: admitted=%d rejected=%d, want 2/1",
			st.Tenants[0].JobsAdmitted, st.Tenants[0].JobsRejected)
	}
}

// TestLoadShed covers overload rejection: once the queued backlog exceeds
// ShedDepth, new jobs shed with ErrOverloaded + Retry-After.
func TestLoadShed(t *testing.T) {
	s, err := New(Options{Workers: 4, ShedDepth: 8}, TenantConfig{Name: "a", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.manual = true // no workers: the backlog stays put

	j, err := s.StartJob("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := j.(*Job).Submit(func(int) {}); err != nil {
			t.Fatal(err)
		}
	}
	_, err = s.StartJob("a")
	var ae *AdmissionError
	if !errors.As(err, &ae) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded StartJob: got %v, want ErrOverloaded", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("load-shed rejection carries RetryAfter %v, want > 0", ae.RetryAfter)
	}

	// Drain manually, then admission recovers.
	for {
		s.mu.Lock()
		tk, ok := s.pickLocked()
		s.mu.Unlock()
		if !ok {
			break
		}
		tk.run(0)
		s.taskDone(tk)
	}
	j.Finish()
	if j2, err := s.StartJob("a"); err != nil {
		t.Fatalf("after drain admission should recover: %v", err)
	} else {
		j2.Finish()
	}
}

// TestFairQueueProperties drives seeded random arrival/service sequences
// through the queue in manual mode (no worker goroutines; the test plays
// scheduler) and asserts the core invariants after every step:
//
//   - virtual-time monotonicity: the scheduler clock and every tenant clock
//     never move backwards;
//   - work conservation: pickLocked reports "no work" only when no tenant
//     is both backlogged and under its in-flight cap;
//   - quotas: in-flight never exceeds MaxInFlight, jobs never exceed
//     MaxJobs;
//   - accounting: queueDepth always equals the sum of tenant backlogs, and
//     everything drains to zero at the end.
func TestFairQueueProperties(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfgs := []TenantConfig{
				{Name: "a", Weight: 1 + rng.Intn(9), MaxInFlight: rng.Intn(4)},
				{Name: "b", Weight: 1 + rng.Intn(9), MaxInFlight: rng.Intn(4)},
				{Name: "c", Weight: 1 + rng.Intn(9), Priority: rng.Intn(2), MaxInFlight: rng.Intn(4)},
			}
			s, err := New(Options{Workers: 8, ShedDepth: -1}, cfgs...)
			if err != nil {
				t.Fatal(err)
			}
			s.manual = true

			jobs := map[string]*Job{}
			for _, cfg := range cfgs {
				sj, err := s.StartJob(cfg.Name)
				if err != nil {
					t.Fatal(err)
				}
				jobs[cfg.Name] = sj.(*Job)
			}

			var running []schedTask
			lastVclock := s.vclock
			lastVtime := map[string]float64{}

			check := func(step int) {
				s.mu.Lock()
				defer s.mu.Unlock()
				if s.vclock < lastVclock {
					t.Fatalf("step %d: scheduler vclock went backwards: %g -> %g", step, lastVclock, s.vclock)
				}
				lastVclock = s.vclock
				depth := 0
				for _, tn := range s.order {
					if tn.vtime < lastVtime[tn.cfg.Name] {
						t.Fatalf("step %d: tenant %s vtime went backwards: %g -> %g",
							step, tn.cfg.Name, lastVtime[tn.cfg.Name], tn.vtime)
					}
					lastVtime[tn.cfg.Name] = tn.vtime
					if tn.cfg.MaxInFlight > 0 && tn.inflight > tn.cfg.MaxInFlight {
						t.Fatalf("step %d: tenant %s in-flight %d exceeds cap %d",
							step, tn.cfg.Name, tn.inflight, tn.cfg.MaxInFlight)
					}
					if tn.cfg.MaxJobs > 0 && tn.jobs > tn.cfg.MaxJobs {
						t.Fatalf("step %d: tenant %s jobs %d exceeds cap %d", step, tn.cfg.Name, tn.jobs, tn.cfg.MaxJobs)
					}
					depth += tn.pending()
				}
				if depth != s.queueDepth {
					t.Fatalf("step %d: queueDepth %d != sum of backlogs %d", step, s.queueDepth, depth)
				}
			}

			for step := 0; step < 400; step++ {
				switch op := rng.Intn(3); {
				case op == 0 || (op == 2 && len(running) == 0): // arrival
					name := cfgs[rng.Intn(len(cfgs))].Name
					if _, err := jobs[name].Submit(func(int) {}); err != nil {
						t.Fatalf("step %d: submit: %v", step, err)
					}
				case op == 1: // dispatch
					s.mu.Lock()
					tk, ok := s.pickLocked()
					if !ok {
						// Work conservation: refusal is only legal when
						// nothing is both backlogged and under-cap.
						for _, tn := range s.order {
							if tn.pending() > 0 && (tn.cfg.MaxInFlight == 0 || tn.inflight < tn.cfg.MaxInFlight) {
								s.mu.Unlock()
								t.Fatalf("step %d: pickLocked found no work, but tenant %s has %d runnable tasks",
									step, tn.cfg.Name, tn.pending())
							}
						}
					}
					s.mu.Unlock()
					if ok {
						tk.run(0)
						running = append(running, tk)
					}
				default: // service completion
					i := rng.Intn(len(running))
					tk := running[i]
					running[i] = running[len(running)-1]
					running = running[:len(running)-1]
					s.taskDone(tk)
				}
				check(step)
			}

			// Drain: dispatch and retire everything, then Finish all jobs.
			for {
				s.mu.Lock()
				tk, ok := s.pickLocked()
				s.mu.Unlock()
				if !ok {
					if len(running) == 0 {
						break
					}
					tk = running[len(running)-1]
					running = running[:len(running)-1]
					s.taskDone(tk)
					continue
				}
				tk.run(0)
				s.taskDone(tk)
			}
			for _, j := range jobs {
				j.Finish()
			}
			st := s.Stats()
			if st.QueueDepth != 0 {
				t.Fatalf("after drain: queue depth %d, want 0", st.QueueDepth)
			}
			for _, ts := range st.Tenants {
				if ts.InFlight != 0 || ts.Jobs != 0 {
					t.Fatalf("after drain: tenant %s inflight=%d jobs=%d, want 0/0", ts.Name, ts.InFlight, ts.Jobs)
				}
			}
		})
	}
}

// TestInFlightCapUnderConcurrency brackets MaxInFlight with real workers
// (run under -race in CI's stress job): a tenant capped at 3 never observes
// more than 3 of its tasks executing at once, no matter how many workers
// the pool has.
func TestInFlightCapUnderConcurrency(t *testing.T) {
	const cap = 3
	s, err := New(Options{Workers: 16},
		TenantConfig{Name: "capped", Weight: 1, MaxInFlight: cap},
		TenantConfig{Name: "free", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var cur, max atomic.Int64
	track := func(int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
	}

	cj, err := s.StartJob("capped")
	if err != nil {
		t.Fatal(err)
	}
	fj, err := s.StartJob("free")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := cj.Submit(track); err != nil {
			t.Fatal(err)
		}
		if _, err := fj.Submit(func(int) {}); err != nil {
			t.Fatal(err)
		}
	}
	cj.Finish()
	fj.Finish()

	if got := max.Load(); got > cap {
		t.Fatalf("capped tenant reached %d concurrent tasks, cap is %d", got, cap)
	}
	st := s.Stats()
	for _, ts := range st.Tenants {
		if ts.Name == "capped" && ts.InFlightHigh > cap {
			t.Fatalf("scheduler recorded in-flight high-water %d above cap %d", ts.InFlightHigh, cap)
		}
		if ts.Dispatched != 200 {
			t.Fatalf("tenant %s dispatched %d, want 200", ts.Name, ts.Dispatched)
		}
	}
}

// TestWorkConservationAndCeiling pins both sides of the pool contract with
// blocking tasks: with 4 workers and 12 runnable tasks, exactly 4 run
// concurrently — never more (worker ceiling) — and no worker sits idle
// while the queue is non-empty (work conservation).
func TestWorkConservationAndCeiling(t *testing.T) {
	const workers = 4
	s, err := New(Options{Workers: workers}, TenantConfig{Name: "a", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	release := make(chan struct{})
	var started atomic.Int64
	j, err := s.StartJob("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := j.Submit(func(int) {
			started.Add(1)
			<-release
		}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for started.Load() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers picked up blocked tasks", started.Load(), workers)
		}
		time.Sleep(time.Millisecond)
	}
	// Give extra dispatches a chance to happen wrongly, then assert the
	// ceiling held and nobody idles beside a non-empty queue.
	time.Sleep(20 * time.Millisecond)
	if got := started.Load(); got != workers {
		t.Fatalf("%d tasks running with a %d-worker ceiling", got, workers)
	}
	st := s.Stats()
	if st.Idle != 0 {
		t.Fatalf("%d idle workers coexist with %d queued tasks", st.Idle, st.QueueDepth)
	}
	if st.Spawned > workers {
		t.Fatalf("spawned %d workers, ceiling is %d", st.Spawned, workers)
	}
	close(release)
	j.Finish()
}

// TestWeightedSharesSaturated is the acceptance-criterion fairness check: a
// 9:3:1 mix on a saturated pool must observe task shares within 15%
// (relative) of the configured weights over the all-backlogged window.
func TestWeightedSharesSaturated(t *testing.T) {
	s, err := New(Options{Workers: 4, ShedDepth: -1},
		TenantConfig{Name: "heavy", Weight: 9},
		TenantConfig{Name: "mid", Weight: 3},
		TenantConfig{Name: "light", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const perTenant = 400
	var wg sync.WaitGroup
	for _, name := range []string{"heavy", "mid", "light"} {
		j, err := s.StartJob(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perTenant; i++ {
			if _, err := j.Submit(func(int) { time.Sleep(100 * time.Microsecond) }); err != nil {
				t.Fatal(err)
			}
		}
		wg.Add(1)
		go func() { defer wg.Done(); j.Finish() }()
	}
	wg.Wait()

	st := s.Stats()
	if st.WindowTotal < 100 {
		t.Fatalf("fairness window has only %d samples; mix never saturated", st.WindowTotal)
	}
	for _, ts := range st.Tenants {
		relErr := (ts.WindowShare - ts.FairShare) / ts.FairShare
		if relErr < 0 {
			relErr = -relErr
		}
		t.Logf("tenant %-5s weight=%d fair=%.4f observed=%.4f relerr=%.3f (window %d)",
			ts.Name, ts.Weight, ts.FairShare, ts.WindowShare, relErr, st.WindowTotal)
		if relErr > 0.15 {
			t.Errorf("tenant %s: observed share %.4f deviates %.1f%% from fair share %.4f (bound 15%%)",
				ts.Name, ts.WindowShare, relErr*100, ts.FairShare)
		}
	}
}

// TestPriorityTiersServeHigherFirst: with the pool saturated by a
// priority-0 backlog, a priority-1 arrival is dispatched before the
// remaining priority-0 tasks.
func TestPriorityTiersServeHigherFirst(t *testing.T) {
	s, err := New(Options{Workers: 1},
		TenantConfig{Name: "batch", Weight: 9},
		TenantConfig{Name: "urgent", Weight: 1, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.manual = true

	bj, _ := s.StartJob("batch")
	uj, _ := s.StartJob("urgent")
	var order []string
	for i := 0; i < 5; i++ {
		bj.(*Job).Submit(func(int) { order = append(order, "batch") })
	}
	uj.(*Job).Submit(func(int) { order = append(order, "urgent") })
	for {
		s.mu.Lock()
		tk, ok := s.pickLocked()
		s.mu.Unlock()
		if !ok {
			break
		}
		tk.run(0)
		s.taskDone(tk)
	}
	if len(order) != 6 || order[0] != "urgent" {
		t.Fatalf("dispatch order %v: priority-1 tenant must run first", order)
	}
	bj.Finish()
	uj.Finish()
}

// TestWorkerCeilingRegression is the DefaultThreads=1000 composition fix's
// regression: N concurrent jobs through one scheduler must run on the
// scheduler's worker ceiling, not N per-job pools — i.e. nothing remotely
// like N×1000 goroutines may exist mid-flight.
func TestWorkerCeilingRegression(t *testing.T) {
	const (
		workers = 32
		jobs    = 8
	)
	base := runtime.NumGoroutine()
	s, err := New(Options{Workers: workers, ShedDepth: -1}, TenantConfig{Name: "a", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var peak atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := int64(runtime.NumGoroutine())
			for {
				p := peak.Load()
				if g <= p || peak.CompareAndSwap(p, g) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := s.StartJob("a")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 300; i++ {
				if _, err := j.Submit(func(int) { time.Sleep(20 * time.Microsecond) }); err != nil {
					t.Error(err)
					return
				}
			}
			j.Finish()
		}()
	}
	wg.Wait()
	close(stop)

	// base + submitters + workers + monitor + generous slack, still far
	// below the jobs×DefaultThreads=8000 the per-job path would spawn.
	limit := int64(base + jobs + workers + 64)
	if p := peak.Load(); p > limit {
		t.Fatalf("peak goroutines %d exceeds %d; %d jobs must share the %d-worker pool, not spawn per-job pools",
			p, limit, jobs, workers)
	}
}

// TestCloseRejectsAndDrains: Close stops admission and parked workers exit;
// a job that raced Close has its queued tasks dropped with accounting
// settled so Finish cannot hang.
func TestCloseRejectsAndDrains(t *testing.T) {
	s, err := New(Options{Workers: 2}, TenantConfig{Name: "a", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.manual = true
	j, err := s.StartJob("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		j.(*Job).Submit(func(int) {})
	}
	s.Close()
	if _, err := s.StartJob("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("StartJob after Close: got %v, want ErrClosed", err)
	}
	if _, err := j.(*Job).Submit(func(int) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: got %v, want ErrClosed", err)
	}
	done := make(chan struct{})
	go func() { j.Finish(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Finish hung after Close dropped the job's queued tasks")
	}
	s.Close() // idempotent
}
