// Package sched is the cluster-wide multi-tenant task scheduler: one shared
// worker pool serving every concurrently running job, with weighted-fair
// dispatch across tenants, per-tenant quotas, and admission control.
//
// The SMPE executor historically grew a ~1000-goroutine pool per job
// (core.DefaultThreads), which composes badly the moment a cluster serves
// more than one job: N concurrent jobs spawn N×1000 workers and fight over
// the same storage gates with no notion of who submitted what. A Scheduler
// instead owns ONE worker ceiling for the whole cluster and decides, task by
// task, whose work runs next:
//
//   - Weighted-fair queuing over per-tenant virtual time. Each tenant keeps
//     a FIFO of pending tasks and a virtual clock that advances by 1/weight
//     per dispatched task; workers always run the eligible backlogged tenant
//     with the smallest virtual time, so over any interval in which tenants
//     stay backlogged their task shares converge to their weight shares
//     within one task per tenant. A tenant going idle does not bank credit:
//     on re-arrival its clock is floored to the scheduler's virtual clock.
//   - Strict priority tiers above the fair queue: a higher-Priority tenant's
//     backlog is always served before lower tiers (weights apply within a
//     tier). Use sparingly — a saturated high tier starves lower ones by
//     design.
//   - Per-tenant quotas enforced where they are cheap: MaxJobs at admission
//     (StartJob) and MaxInFlight at dispatch (an over-cap tenant's tasks
//     stay queued; its virtual clock does not advance).
//   - Admission control: StartJob rejects unknown tenants, tenants over
//     their job quota, and — load shedding — any submission while the total
//     queued backlog exceeds ShedDepth. Rejections carry a machine-readable
//     *AdmissionError with a Retry-After hint so edges (httpapi) can answer
//     429 without guessing.
//
// The executor reaches the scheduler through core.TaskScheduler /
// core.SchedJob (set core.Options.Scheduler and core.Options.Tenant); a nil
// scheduler keeps the historical per-job pools byte-for-byte. Stats and
// WriteMetrics expose per-tenant slices (in-flight, queue depth and wait
// quantiles, shed counts, fair-share deficit) as lakeharbor_tenant_* series.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lakeharbor/internal/core"
	"lakeharbor/internal/trace"
)

// DefaultWorkers is the cluster-wide worker ceiling when Options.Workers is
// zero. It is deliberately half of one job's historical pool: capacity is a
// property of the cluster, not of how many jobs happen to be running.
const DefaultWorkers = 512

// DefaultShedDepth is the total queued-task backlog above which admission
// sheds new jobs when Options.ShedDepth is zero.
const DefaultShedDepth = 4096

// Options configures a Scheduler.
type Options struct {
	// Workers caps the shared pool: at most this many tasks execute at
	// once, cluster-wide, no matter how many jobs or tenants are active.
	// Workers are spawned on demand up to the ceiling and parked between
	// tasks. 0 selects DefaultWorkers.
	Workers int
	// ShedDepth is the total queued (undispatched) task count above which
	// StartJob sheds new submissions with ErrOverloaded. 0 selects
	// DefaultShedDepth; negative disables shedding.
	ShedDepth int
}

// TenantConfig declares one tenant to the scheduler.
type TenantConfig struct {
	// Name identifies the tenant; jobs carry it in core.Options.Tenant
	// and HTTP submissions in the X-Lake-Tenant header.
	Name string
	// Weight is the tenant's fair share: backlogged tenants in the same
	// priority tier receive worker time proportional to their weights.
	// It must be positive — a zero-weight tenant could never be scheduled,
	// so registration rejects it rather than letting submits hang.
	Weight int
	// Priority is the tenant's tier; higher tiers are served strictly
	// first. 0 is the default tier.
	Priority int
	// MaxInFlight caps the tenant's concurrently executing tasks
	// (0 = no cap). Excess tasks wait in the tenant's queue.
	MaxInFlight int
	// MaxJobs caps the tenant's concurrently admitted jobs (0 = no cap).
	// Excess jobs are rejected at StartJob with ErrOverQuota.
	MaxJobs int
}

// Admission rejection sentinels, matchable with errors.Is through the
// *AdmissionError StartJob wraps them in.
var (
	// ErrUnknownTenant rejects a tenant no TenantConfig declared.
	ErrUnknownTenant = errors.New("unknown tenant")
	// ErrOverQuota rejects a tenant already running MaxJobs jobs.
	ErrOverQuota = errors.New("tenant over concurrent-job quota")
	// ErrOverloaded sheds a submission because the total queued backlog
	// exceeds the shed depth.
	ErrOverloaded = errors.New("scheduler overloaded")
	// ErrClosed rejects work submitted after Close.
	ErrClosed = errors.New("scheduler closed")
)

// AdmissionError is the typed rejection StartJob returns: which tenant was
// refused, why (Unwrap matches the sentinels above), and how long the caller
// should wait before retrying (0 when retrying cannot help, e.g. an unknown
// tenant).
type AdmissionError struct {
	Tenant     string
	Err        error
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("sched: tenant %q: %v", e.Tenant, e.Err)
}

func (e *AdmissionError) Unwrap() error { return e.Err }

// schedTask is one queued unit of work.
type schedTask struct {
	run func(worker int)
	job *Job
	enq time.Time
}

// tenant is the live state of one registered tenant. All mutable fields are
// guarded by the scheduler's mutex except waitHist, which is internally
// lock-free.
type tenant struct {
	cfg TenantConfig

	q    []schedTask // pending FIFO
	head int

	vtime    float64 // per-tenant virtual clock (advances 1/weight per dispatch)
	inflight int     // dispatched, not yet completed tasks
	jobs     int     // currently admitted jobs

	// Cumulative accounting.
	dispatched    int64
	shed          int64
	jobsAdmitted  int64
	jobsRejected  int64
	inflightHigh  int
	windowServed  int64 // dispatches taken while every tenant was backlogged
	waitHist      trace.Histogram
	starvedChecks int64 // diagnostics: times skipped while at MaxInFlight
}

func (t *tenant) pending() int { return len(t.q) - t.head }

// pop removes the tenant's oldest pending task, releasing spike-sized
// backing arrays the same way core's taskQueue does.
func (t *tenant) pop() schedTask {
	tk := t.q[t.head]
	t.q[t.head] = schedTask{}
	t.head++
	if t.head == len(t.q) {
		if cap(t.q) > 1024 {
			t.q = nil
		} else {
			t.q = t.q[:0]
		}
		t.head = 0
	}
	return tk
}

// Scheduler is the shared multi-tenant dispatcher. Create it with New; it
// satisfies core.TaskScheduler, so plugging it into core.Options.Scheduler
// routes a job's every task through it.
type Scheduler struct {
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // workers wait here for eligible work
	tenants map[string]*tenant
	order   []*tenant // deterministic iteration for picking and stats

	vclock      float64 // virtual time of the last dispatch (arrival floor)
	queueDepth  int     // total queued, undispatched tasks
	windowTotal int64   // dispatches taken while every tenant was backlogged

	spawned int
	idle    int
	closed  bool
	manual  bool // tests: suppress worker spawning and drive pickLocked directly
	wg      sync.WaitGroup
}

// New builds a Scheduler over the given tenants. Every tenant must have a
// unique name and a positive weight — rejecting a zero weight here is what
// guarantees a later Submit can never hang on an unschedulable tenant.
func New(opts Options, tenants ...TenantConfig) (*Scheduler, error) {
	if opts.Workers == 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("sched: Workers must be > 0, got %d", opts.Workers)
	}
	if opts.ShedDepth == 0 {
		opts.ShedDepth = DefaultShedDepth
	}
	s := &Scheduler{opts: opts, tenants: make(map[string]*tenant, len(tenants))}
	s.cond = sync.NewCond(&s.mu)
	for _, cfg := range tenants {
		if err := s.register(cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// register validates and adds one tenant (callers hold no lock: construction
// only).
func (s *Scheduler) register(cfg TenantConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("sched: tenant name must not be empty")
	}
	if cfg.Weight <= 0 {
		return fmt.Errorf("sched: tenant %q: weight must be > 0, got %d (a zero-weight tenant could never be scheduled)", cfg.Name, cfg.Weight)
	}
	if cfg.MaxInFlight < 0 || cfg.MaxJobs < 0 {
		return fmt.Errorf("sched: tenant %q: quotas must be >= 0", cfg.Name)
	}
	if _, dup := s.tenants[cfg.Name]; dup {
		return fmt.Errorf("sched: duplicate tenant %q", cfg.Name)
	}
	t := &tenant{cfg: cfg}
	s.tenants[cfg.Name] = t
	s.order = append(s.order, t)
	sort.Slice(s.order, func(i, j int) bool { return s.order[i].cfg.Name < s.order[j].cfg.Name })
	return nil
}

// StartJob implements core.TaskScheduler: admission control for one job.
// Rejections are immediate errors — never hangs — wrapped in *AdmissionError
// with a Retry-After hint when waiting could help.
func (s *Scheduler) StartJob(name string) (core.SchedJob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, &AdmissionError{Tenant: name, Err: ErrClosed}
	}
	t, ok := s.tenants[name]
	if !ok {
		return nil, &AdmissionError{Tenant: name, Err: ErrUnknownTenant}
	}
	if t.cfg.MaxJobs > 0 && t.jobs >= t.cfg.MaxJobs {
		t.jobsRejected++
		t.shed++
		return nil, &AdmissionError{Tenant: name, Err: ErrOverQuota, RetryAfter: s.retryAfterLocked()}
	}
	if s.opts.ShedDepth > 0 && s.queueDepth > s.opts.ShedDepth {
		t.jobsRejected++
		t.shed++
		return nil, &AdmissionError{Tenant: name, Err: ErrOverloaded, RetryAfter: s.retryAfterLocked()}
	}
	t.jobs++
	t.jobsAdmitted++
	j := &Job{s: s, t: t}
	j.cv = sync.NewCond(&s.mu)
	return j, nil
}

// retryAfterLocked estimates how long a rejected caller should back off:
// one second base, growing with how far the backlog exceeds one "fill" of
// the worker pool, capped at 30s.
func (s *Scheduler) retryAfterLocked() time.Duration {
	d := time.Second
	if s.opts.Workers > 0 {
		d += time.Duration(s.queueDepth/(s.opts.Workers*4)) * time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Job is one admitted job's submission handle (core.SchedJob).
type Job struct {
	s *Scheduler
	t *tenant

	cv       *sync.Cond // on s.mu; signalled when pending reaches zero
	pending  int        // submitted tasks not yet completed (guarded by s.mu)
	finished bool
}

// Submit implements core.SchedJob: enqueue one task on the job's tenant
// fair queue. It returns the tenant's queue depth after the enqueue.
func (j *Job) Submit(run func(worker int)) (int, error) {
	s := j.s
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if j.finished {
		s.mu.Unlock()
		return 0, fmt.Errorf("sched: submit on a finished job (tenant %q)", j.t.cfg.Name)
	}
	t := j.t
	if t.pending() == 0 {
		// Re-arrival after idleness: floor the tenant's clock to the
		// scheduler's virtual time so banked idleness cannot monopolize
		// the workers, but never move the clock backwards.
		if t.vtime < s.vclock {
			t.vtime = s.vclock
		}
	}
	t.q = append(t.q, schedTask{run: run, job: j, enq: time.Now()})
	j.pending++
	s.queueDepth++
	depth := t.pending()
	s.maybeSpawnLocked()
	s.mu.Unlock()
	s.cond.Signal()
	return depth, nil
}

// Finish implements core.SchedJob: wait for every submitted task to run,
// then release the job's admission slot.
func (j *Job) Finish() {
	s := j.s
	s.mu.Lock()
	j.finished = true
	for j.pending > 0 {
		j.cv.Wait()
	}
	j.t.jobs--
	s.mu.Unlock()
}

// maybeSpawnLocked starts a new worker when no worker is idle and the
// ceiling has headroom — pools grow exactly as fast as backlog outpaces
// them, and never past Options.Workers no matter how many jobs are active.
func (s *Scheduler) maybeSpawnLocked() {
	if s.manual || s.idle > 0 || s.spawned >= s.opts.Workers {
		return
	}
	id := s.spawned
	s.spawned++
	s.wg.Add(1)
	go s.worker(id)
}

// worker executes tasks until Close. It parks on the condition variable
// whenever no eligible task exists — by construction it can never be idle
// while an eligible task is queued (work conservation).
func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var tk schedTask
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			var ok bool
			if tk, ok = s.pickLocked(); ok {
				break
			}
			s.idle++
			s.cond.Wait()
			s.idle--
		}
		s.mu.Unlock()
		tk.run(id)
		s.taskDone(tk)
	}
}

// pickLocked chooses and dequeues the next task: the backlogged tenant under
// its in-flight cap with the highest priority, then the smallest virtual
// time, then (ties) the lexicographically first name, so selection is
// deterministic given identical state. The chosen tenant's clock advances by
// 1/weight, keeping task shares proportional to weights across backlogged
// tenants. Dispatches taken while EVERY registered tenant was backlogged and
// eligible are additionally counted into the fairness window — the
// denominator the fair-share deficit metric and the tenancy oracle's
// weighted-share check are computed over, because proportional sharing is
// only defined while everyone is actually asking for service.
func (s *Scheduler) pickLocked() (schedTask, bool) {
	var best *tenant
	eligible := 0
	for _, t := range s.order {
		if t.pending() == 0 {
			continue
		}
		if t.cfg.MaxInFlight > 0 && t.inflight >= t.cfg.MaxInFlight {
			t.starvedChecks++
			continue
		}
		eligible++
		if best == nil || t.beats(best) {
			best = t
		}
	}
	if best == nil {
		return schedTask{}, false
	}
	tk := best.pop()
	s.queueDepth--
	best.inflight++
	if best.inflight > best.inflightHigh {
		best.inflightHigh = best.inflight
	}
	best.dispatched++
	// The scheduler's virtual clock is the high-water mark of dispatched
	// virtual times — monotone by construction. A plain assignment would
	// run it backwards whenever a cap- or priority-delayed tenant with an
	// old (small) clock finally gets served.
	if best.vtime > s.vclock {
		s.vclock = best.vtime
	}
	best.vtime += 1 / float64(best.cfg.Weight)
	if eligible == len(s.order) && len(s.order) > 1 {
		best.windowServed++
		s.windowTotal++
	}
	best.waitHist.RecordDur(time.Since(tk.enq))
	return tk, true
}

// beats reports whether t should be dispatched before o.
func (t *tenant) beats(o *tenant) bool {
	if t.cfg.Priority != o.cfg.Priority {
		return t.cfg.Priority > o.cfg.Priority
	}
	if t.vtime != o.vtime {
		return t.vtime < o.vtime
	}
	return t.cfg.Name < o.cfg.Name
}

// taskDone retires one executed task: the tenant's in-flight slot frees (a
// capped tenant may have become eligible again, so a waiting worker is
// woken) and the owning job's pending count drops, releasing Finish when it
// reaches zero.
func (s *Scheduler) taskDone(tk schedTask) {
	s.mu.Lock()
	t := tk.job.t
	t.inflight--
	tk.job.pending--
	if tk.job.pending == 0 && tk.job.finished {
		tk.job.cv.Broadcast()
	}
	s.mu.Unlock()
	s.cond.Signal()
}

// QueueDepth reports the total queued, undispatched task count — the load
// signal admission shedding runs on.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queueDepth
}

// Close shuts the pool down for tests and process exit: no further jobs are
// admitted, parked workers exit, and Close returns once running tasks
// complete. It must not race active jobs — callers Finish their jobs first;
// any still-queued tasks of a misbehaving caller are dropped with their
// jobs' accounting settled so a late Finish cannot hang.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, t := range s.order {
		for t.pending() > 0 {
			tk := t.pop()
			s.queueDepth--
			tk.job.pending--
			if tk.job.pending == 0 && tk.job.finished {
				tk.job.cv.Broadcast()
			}
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}
