package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"lakeharbor/internal/core"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
)

// newKVFixture builds a small single-table lake: file "kv" with nRecs rows,
// key i, payload "v<i>".
func newKVFixture(t testing.TB, nodes, nRecs int) *dfs.Cluster {
	t.Helper()
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: nodes})
	f, err := c.CreateFile("kv", dfs.Btree, nodes*2, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRecs; i++ {
		k := keycodec.Int64(int64(i))
		if err := dfs.AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// pointJob selects every nRecs/stride-th record starting at off.
func pointJob(t testing.TB, name string, nRecs, off, stride int) (*core.Job, int64) {
	t.Helper()
	var seeds []lake.Pointer
	for i := off; i < nRecs; i += stride {
		k := keycodec.Int64(int64(i))
		seeds = append(seeds, lake.Pointer{File: "kv", PartKey: k, Key: k})
	}
	job, err := core.NewJob(name, seeds, core.LookupDeref{File: "kv"})
	if err != nil {
		t.Fatal(err)
	}
	return job, int64(len(seeds))
}

// TestMultiTenantConcurrentJobs is the PR 5 twelve-job shared-cluster
// stress reshaped into a real multi-tenant workload: twelve concurrent SMPE
// jobs from three tenants with unequal weights and quotas, all riding ONE
// shared scheduler over one cluster (run with -race in CI's stress job).
// Every job's answer must be exact, Execute's built-in accounting check
// must stay clean, and the scheduler must drain to zero with no tenant
// quota breached.
func TestMultiTenantConcurrentJobs(t *testing.T) {
	const nRecs = 240
	cluster := newKVFixture(t, 3, nRecs)
	s, err := New(Options{Workers: 24},
		TenantConfig{Name: "heavy", Weight: 9},
		TenantConfig{Name: "mid", Weight: 3, MaxInFlight: 8},
		TenantConfig{Name: "light", Weight: 1, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tenants := []string{"heavy", "mid", "light"}
	const jobs = 12
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := tenants[w%len(tenants)]
			job, want := pointJob(t, fmt.Sprintf("points-%s-%d", tenant, w), nRecs, w, 5+w%3)
			res, err := core.ExecuteSMPE(context.Background(), job, cluster, cluster, core.Options{
				MaxBatch:  1 + w%4,
				Tenant:    tenant,
				Scheduler: s,
			})
			if err != nil {
				errs <- fmt.Errorf("job %d (%s): %w", w, tenant, err)
				return
			}
			if res.Count != want {
				errs <- fmt.Errorf("job %d (%s): count %d, want %d", w, tenant, res.Count, want)
			}
			if res.Trace.Tenant != tenant {
				errs <- fmt.Errorf("job %d: trace tenant %q, want %q", w, res.Trace.Tenant, tenant)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.QueueDepth != 0 {
		t.Errorf("scheduler drained to queue depth %d, want 0", st.QueueDepth)
	}
	for _, ts := range st.Tenants {
		if ts.InFlight != 0 || ts.Jobs != 0 {
			t.Errorf("tenant %s: inflight=%d jobs=%d after all jobs finished", ts.Name, ts.InFlight, ts.Jobs)
		}
		if ts.Dispatched == 0 {
			t.Errorf("tenant %s dispatched no tasks", ts.Name)
		}
		if ts.JobsAdmitted != int64(jobs/len(tenants)) {
			t.Errorf("tenant %s admitted %d jobs, want %d", ts.Name, ts.JobsAdmitted, jobs/len(tenants))
		}
		switch ts.Name {
		case "mid":
			if ts.InFlightHigh > 8 {
				t.Errorf("tenant mid in-flight high-water %d exceeds cap 8", ts.InFlightHigh)
			}
		case "light":
			if ts.InFlightHigh > 4 {
				t.Errorf("tenant light in-flight high-water %d exceeds cap 4", ts.InFlightHigh)
			}
		}
	}
}
