package sched

import (
	"fmt"
	"io"

	"lakeharbor/internal/trace"
)

// TenantStats is one tenant's point-in-time slice of the scheduler.
type TenantStats struct {
	Name     string `json:"name"`
	Weight   int    `json:"weight"`
	Priority int    `json:"priority,omitempty"`

	Queued   int `json:"queued"`
	InFlight int `json:"inflight"`
	Jobs     int `json:"jobs"`

	Dispatched   int64 `json:"dispatched"`
	Shed         int64 `json:"shed"`
	JobsAdmitted int64 `json:"jobs_admitted"`
	JobsRejected int64 `json:"jobs_rejected"`
	InFlightHigh int   `json:"inflight_high"`

	// FairShare is the tenant's entitled fraction (weight over the sum of
	// all weights); WindowShare is the fraction of fairness-window
	// dispatches (taken while every tenant was backlogged) the tenant
	// actually received; Deficit = FairShare − WindowShare, positive when
	// the tenant is being shortchanged. All zero until the window has
	// samples.
	FairShare   float64 `json:"fair_share"`
	WindowShare float64 `json:"window_share"`
	Deficit     float64 `json:"deficit"`

	// Wait digests the tenant's queue-wait distribution in nanoseconds.
	Wait trace.HistSummary `json:"wait"`

	wait trace.HistSnapshot
}

// Stats is a point-in-time snapshot of the whole scheduler.
type Stats struct {
	Workers     int           `json:"workers"`
	Spawned     int           `json:"spawned"`
	Idle        int           `json:"idle"`
	QueueDepth  int           `json:"queue_depth"`
	ShedDepth   int           `json:"shed_depth"`
	WindowTotal int64         `json:"window_total"`
	Tenants     []TenantStats `json:"tenants"`
}

// Stats snapshots the scheduler. Tenants are sorted by name.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:     s.opts.Workers,
		Spawned:     s.spawned,
		Idle:        s.idle,
		QueueDepth:  s.queueDepth,
		ShedDepth:   s.opts.ShedDepth,
		WindowTotal: s.windowTotal,
	}
	totalWeight := 0
	for _, t := range s.order {
		totalWeight += t.cfg.Weight
	}
	for _, t := range s.order {
		ts := TenantStats{
			Name:         t.cfg.Name,
			Weight:       t.cfg.Weight,
			Priority:     t.cfg.Priority,
			Queued:       t.pending(),
			InFlight:     t.inflight,
			Jobs:         t.jobs,
			Dispatched:   t.dispatched,
			Shed:         t.shed,
			JobsAdmitted: t.jobsAdmitted,
			JobsRejected: t.jobsRejected,
			InFlightHigh: t.inflightHigh,
			wait:         t.waitHist.Snapshot(),
		}
		ts.Wait = ts.wait.Summary()
		if totalWeight > 0 {
			ts.FairShare = float64(t.cfg.Weight) / float64(totalWeight)
		}
		if s.windowTotal > 0 {
			ts.WindowShare = float64(t.windowServed) / float64(s.windowTotal)
			ts.Deficit = ts.FairShare - ts.WindowShare
		}
		st.Tenants = append(st.Tenants, ts)
	}
	return st
}

// WriteMetrics renders the scheduler's state in Prometheus text format:
// pool-level lakeharbor_sched_* gauges plus per-tenant lakeharbor_tenant_*
// series carrying a tenant label — in-flight, queue depth, shed counts,
// fair-share deficit, and queue-wait quantiles.
func (s *Scheduler) WriteMetrics(w io.Writer) {
	st := s.Stats()

	fmt.Fprintf(w, "# HELP lakeharbor_sched_workers Cluster-wide worker ceiling.\n# TYPE lakeharbor_sched_workers gauge\nlakeharbor_sched_workers %d\n", st.Workers)
	fmt.Fprintf(w, "# HELP lakeharbor_sched_workers_spawned Workers actually started (lazy spawn up to the ceiling).\n# TYPE lakeharbor_sched_workers_spawned gauge\nlakeharbor_sched_workers_spawned %d\n", st.Spawned)
	fmt.Fprintf(w, "# HELP lakeharbor_sched_queue_depth Total queued, undispatched tasks across all tenants.\n# TYPE lakeharbor_sched_queue_depth gauge\nlakeharbor_sched_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(w, "# HELP lakeharbor_sched_shed_depth Queue depth above which admission sheds new jobs.\n# TYPE lakeharbor_sched_shed_depth gauge\nlakeharbor_sched_shed_depth %d\n", st.ShedDepth)
	fmt.Fprintf(w, "# HELP lakeharbor_sched_window_total Dispatches taken while every tenant was backlogged (fairness-window denominator).\n# TYPE lakeharbor_sched_window_total counter\nlakeharbor_sched_window_total %d\n", st.WindowTotal)

	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	gauge("lakeharbor_tenant_inflight", "Tasks currently executing per tenant.")
	for _, t := range st.Tenants {
		fmt.Fprintf(w, "lakeharbor_tenant_inflight{tenant=%q} %d\n", t.Name, t.InFlight)
	}
	gauge("lakeharbor_tenant_queued", "Tasks queued, not yet dispatched, per tenant.")
	for _, t := range st.Tenants {
		fmt.Fprintf(w, "lakeharbor_tenant_queued{tenant=%q} %d\n", t.Name, t.Queued)
	}
	gauge("lakeharbor_tenant_jobs", "Jobs currently admitted per tenant.")
	for _, t := range st.Tenants {
		fmt.Fprintf(w, "lakeharbor_tenant_jobs{tenant=%q} %d\n", t.Name, t.Jobs)
	}
	counter("lakeharbor_tenant_dispatched_total", "Tasks dispatched per tenant.")
	for _, t := range st.Tenants {
		fmt.Fprintf(w, "lakeharbor_tenant_dispatched_total{tenant=%q} %d\n", t.Name, t.Dispatched)
	}
	counter("lakeharbor_tenant_shed_total", "Job submissions rejected (quota or load-shed) per tenant.")
	for _, t := range st.Tenants {
		fmt.Fprintf(w, "lakeharbor_tenant_shed_total{tenant=%q} %d\n", t.Name, t.Shed)
	}
	counter("lakeharbor_tenant_jobs_admitted_total", "Jobs admitted per tenant.")
	for _, t := range st.Tenants {
		fmt.Fprintf(w, "lakeharbor_tenant_jobs_admitted_total{tenant=%q} %d\n", t.Name, t.JobsAdmitted)
	}
	gauge("lakeharbor_tenant_fair_share_deficit", "Entitled minus observed dispatch share over the fairness window; positive = shortchanged.")
	for _, t := range st.Tenants {
		fmt.Fprintf(w, "lakeharbor_tenant_fair_share_deficit{tenant=%q} %g\n", t.Name, t.Deficit)
	}

	fmt.Fprintf(w, "# HELP lakeharbor_tenant_queue_wait_seconds Queue wait (enqueue to dispatch) per tenant.\n# TYPE lakeharbor_tenant_queue_wait_seconds summary\n")
	for _, t := range st.Tenants {
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "lakeharbor_tenant_queue_wait_seconds{tenant=%q,quantile=%q} %g\n", t.Name, fmt.Sprintf("%g", q), float64(t.wait.Quantile(q))*1e-9)
		}
		fmt.Fprintf(w, "lakeharbor_tenant_queue_wait_seconds_sum{tenant=%q} %g\n", t.Name, float64(t.wait.Sum)*1e-9)
		fmt.Fprintf(w, "lakeharbor_tenant_queue_wait_seconds_count{tenant=%q} %d\n", t.Name, t.wait.Count)
	}
}
