// Package sim models the hardware the paper ran on: per-node disk latency,
// scan throughput, network round trips, and the bounded I/O queue depth of a
// real storage path.
//
// The paper's testbed (128 nodes, 24 HDDs each behind a RAID controller,
// queue depth 1008, 10 GbE) is replaced by a CostModel: each simulated node
// owns a Gate that admits at most QueueDepth concurrent I/Os and each I/O
// sleeps for its modeled latency. Real goroutine concurrency against these
// gates reproduces the paper's central phenomenon — random-access work
// finishes in time proportional to (accesses × latency ÷ achievable
// concurrency), while scans finish in time proportional to (records ÷
// static parallelism) — at laptop scale.
//
// The zero CostModel is free and instant, which keeps unit tests fast and
// deterministic.
package sim

import (
	"context"
	"sync/atomic"
	"time"
)

// CostModel describes the simulated cost of storage and network operations.
type CostModel struct {
	// LookupLatency is charged per random (point or range) lookup served
	// by a node's disk.
	LookupLatency time.Duration
	// ScanPerRecord is the amortized sequential-scan cost per record.
	ScanPerRecord time.Duration
	// NetworkRTT is added when the requesting node differs from the node
	// owning the partition.
	NetworkRTT time.Duration
	// BatchPerKey is the marginal latency charged for each key after the
	// first in a batched lookup (LookupBatch): the head of the batch pays
	// the full LookupLatency seek, and the sorted keys behind it ride the
	// same arm movement (seek amortization, as in a drive's native command
	// queueing or an LSM multi-get). Zero means marginal keys are free.
	BatchPerKey time.Duration
	// QueueDepth bounds the number of concurrent I/Os a node's storage
	// path admits (the paper configures nr_request/queue_depth = 1008 on
	// each data drive array). Zero means unbounded admission.
	QueueDepth int
	// Spindles bounds the number of I/Os a node *services* concurrently —
	// the drive count of the array (the paper's nodes have 24 data HDDs).
	// Admitted I/Os beyond this wait in the queue. Zero means unbounded
	// service, which makes random I/O throughput infinite; experiments
	// should set it.
	Spindles int
}

// Zero reports whether the model charges no costs at all; gates can then
// skip admission entirely.
func (m CostModel) Zero() bool {
	return m.LookupLatency == 0 && m.ScanPerRecord == 0 && m.NetworkRTT == 0 &&
		m.BatchPerKey == 0 && m.QueueDepth == 0 && m.Spindles == 0
}

// HDDProfile returns the cost model used by the benchmark harnesses: a
// scaled-down stand-in for the paper's nodes (24 × 10K-RPM SAS HDDs behind
// a RAID controller, queue depth 1008, 10 GbE). Latencies are scaled down
// ~10× against real hardware so a full Fig. 7 sweep runs in seconds; all
// arms of an experiment share the model, so relative results are
// unaffected. Per-node random-lookup throughput is Spindles/LookupLatency
// = 60k IOPS, and a partition scan streams on one spindle at
// 1/ScanPerRecord = 50k records/s.
func HDDProfile() CostModel {
	return CostModel{
		LookupLatency: 400 * time.Microsecond,
		ScanPerRecord: 20 * time.Microsecond,
		NetworkRTT:    100 * time.Microsecond,
		BatchPerKey:   50 * time.Microsecond,
		QueueDepth:    1008,
		Spindles:      24,
	}
}

// DelayHook rewrites the modeled service time of one I/O. Chaos injection
// installs hooks that add latency spikes or brownout windows; the hook runs
// on the I/O's goroutine and must be safe for concurrent use.
type DelayHook func(d time.Duration) time.Duration

// Gate is one node's I/O path: an admission semaphore of QueueDepth slots
// feeding a service semaphore of Spindles units. A nil Gate admits
// everything instantly.
type Gate struct {
	slots    chan struct{}
	spindles chan struct{}
	model    CostModel
	// delay is the installed DelayHook (nil when none); it is consulted on
	// every occupy, so installation must be atomic against in-flight I/Os.
	delay atomic.Pointer[DelayHook]
}

// NewGate returns a Gate for the model, or nil if the model is free.
func NewGate(model CostModel) *Gate {
	if model.Zero() {
		return nil
	}
	g := &Gate{model: model}
	if model.QueueDepth > 0 {
		g.slots = make(chan struct{}, model.QueueDepth)
	}
	if model.Spindles > 0 {
		g.spindles = make(chan struct{}, model.Spindles)
	}
	return g
}

// Lookup charges one random lookup, including the network round trip if
// remote. It blocks for the modeled duration while holding a queue slot and
// honors ctx cancellation.
func (g *Gate) Lookup(ctx context.Context, remote bool) error {
	if g == nil {
		return ctx.Err()
	}
	d := g.model.LookupLatency
	if remote {
		d += g.model.NetworkRTT
	}
	return g.occupy(ctx, d)
}

// LookupBatch charges a batch of n point lookups served as ONE admitted
// I/O: the batch takes a single queue slot and a single spindle, pays the
// full LookupLatency for its first key plus BatchPerKey for each key after
// it, and — being one network message — at most one NetworkRTT when remote.
// This is the storage half of the executor's pointer batching: per-key
// admission overhead is replaced by a marginal seek cost.
func (g *Gate) LookupBatch(ctx context.Context, n int, remote bool) error {
	if g == nil {
		return ctx.Err()
	}
	if n <= 0 {
		return ctx.Err()
	}
	d := g.model.LookupLatency + time.Duration(n-1)*g.model.BatchPerKey
	if remote {
		d += g.model.NetworkRTT
	}
	return g.occupy(ctx, d)
}

// Scan charges a sequential scan of n records, including the network round
// trip if remote. Scans hold a single queue slot for their whole modeled
// duration, matching a streaming read.
func (g *Gate) Scan(ctx context.Context, n int, remote bool) error {
	if g == nil {
		return ctx.Err()
	}
	d := time.Duration(n) * g.model.ScanPerRecord
	if remote {
		d += g.model.NetworkRTT
	}
	return g.occupy(ctx, d)
}

// SetDelayHook installs fn as the gate's latency override: every subsequent
// I/O's modeled service time is passed through fn before the gate sleeps.
// A nil fn clears the override. Calling it on a nil Gate (free cost model)
// is a no-op — a free gate never sleeps, so there is nothing to override.
func (g *Gate) SetDelayHook(fn DelayHook) {
	if g == nil {
		return
	}
	if fn == nil {
		g.delay.Store(nil)
		return
	}
	g.delay.Store(&fn)
}

// Hold occupies up to n admission slots without blocking and returns how
// many it took plus a function releasing them. Chaos injection uses it to
// squeeze a node's effective queue depth for a window; a gate without a
// bounded queue (or a nil gate) has nothing to squeeze and reports 0.
// The release function is idempotent.
func (g *Gate) Hold(n int) (taken int, release func()) {
	if g == nil || g.slots == nil || n <= 0 {
		return 0, func() {}
	}
	for taken < n {
		select {
		case g.slots <- struct{}{}:
			taken++
		default:
			// Queue full (or contended): hold what we have.
			n = taken
		}
	}
	var once atomic.Bool
	k := taken
	return taken, func() {
		if !once.CompareAndSwap(false, true) {
			return
		}
		for i := 0; i < k; i++ {
			<-g.slots
		}
	}
}

// occupy takes an admission slot, waits for a spindle, services the I/O
// for d, and releases both.
func (g *Gate) occupy(ctx context.Context, d time.Duration) error {
	if h := g.delay.Load(); h != nil {
		d = (*h)(d)
	}
	if g.slots != nil {
		select {
		case g.slots <- struct{}{}:
			defer func() { <-g.slots }()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if g.spindles != nil {
		select {
		case g.spindles <- struct{}{}:
			defer func() { <-g.spindles }()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
