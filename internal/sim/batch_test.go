package sim

import (
	"context"
	"testing"
	"time"
)

// TestLookupBatchAmortizedCost: a batch of n keys pays one full
// LookupLatency plus (n-1) marginal BatchPerKey costs and, when remote, one
// RTT — not n of each. Lower bounds only; wall-clock upper bounds flake.
func TestLookupBatchAmortizedCost(t *testing.T) {
	m := CostModel{
		LookupLatency: 4 * time.Millisecond,
		BatchPerKey:   1 * time.Millisecond,
		NetworkRTT:    3 * time.Millisecond,
		Spindles:      1,
	}
	g := NewGate(m)
	ctx := context.Background()

	start := time.Now()
	if err := g.LookupBatch(ctx, 5, false); err != nil {
		t.Fatal(err)
	}
	if d, want := time.Since(start), 8*time.Millisecond; d < want {
		t.Errorf("local batch of 5 took %v, want >= %v", d, want)
	}

	start = time.Now()
	if err := g.LookupBatch(ctx, 5, true); err != nil {
		t.Fatal(err)
	}
	if d, want := time.Since(start), 11*time.Millisecond; d < want {
		t.Errorf("remote batch of 5 took %v, want >= %v", d, want)
	}
}

func TestLookupBatchNilAndEmpty(t *testing.T) {
	var g *Gate
	if err := g.LookupBatch(context.Background(), 100, true); err != nil {
		t.Fatalf("nil gate: %v", err)
	}
	real := NewGate(CostModel{LookupLatency: time.Hour, Spindles: 1})
	start := time.Now()
	if err := real.LookupBatch(context.Background(), 0, false); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("empty batch paid for admission")
	}
}
