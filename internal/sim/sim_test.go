package sim

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestZeroModel(t *testing.T) {
	var m CostModel
	if !m.Zero() {
		t.Error("zero CostModel should report Zero")
	}
	if NewGate(m) != nil {
		t.Error("NewGate on zero model should be nil")
	}
	if HDDProfile().Zero() {
		t.Error("HDDProfile should not be Zero")
	}
}

func TestNilGateIsFree(t *testing.T) {
	var g *Gate
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := g.Lookup(context.Background(), true); err != nil {
			t.Fatal(err)
		}
		if err := g.Scan(context.Background(), 1000, false); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) > time.Second {
		t.Error("nil gate took too long; should be free")
	}
}

func TestLookupCharges(t *testing.T) {
	g := NewGate(CostModel{LookupLatency: 20 * time.Millisecond})
	start := time.Now()
	if err := g.Lookup(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("lookup took %v, want >= 20ms", d)
	}
}

func TestRemoteAddsRTT(t *testing.T) {
	g := NewGate(CostModel{LookupLatency: 5 * time.Millisecond, NetworkRTT: 30 * time.Millisecond})
	start := time.Now()
	if err := g.Lookup(context.Background(), true); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 35*time.Millisecond {
		t.Errorf("remote lookup took %v, want >= 35ms", d)
	}
}

func TestQueueDepthSerializes(t *testing.T) {
	// Depth 1, 10ms each, 5 concurrent lookups: must take >= 50ms.
	g := NewGate(CostModel{LookupLatency: 10 * time.Millisecond, QueueDepth: 1})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Lookup(context.Background(), false); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("serialized lookups took %v, want >= 50ms", d)
	}
}

func TestDeepQueueOverlaps(t *testing.T) {
	// Depth 64, 20ms each, 32 concurrent lookups: should overlap and finish
	// far below the serial 640ms.
	g := NewGate(CostModel{LookupLatency: 20 * time.Millisecond, QueueDepth: 64})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Lookup(context.Background(), false); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if d := time.Since(start); d > 320*time.Millisecond {
		t.Errorf("overlapped lookups took %v, want well under 640ms serial time", d)
	}
}

func TestScanScalesWithRecords(t *testing.T) {
	g := NewGate(CostModel{ScanPerRecord: time.Millisecond})
	start := time.Now()
	if err := g.Scan(context.Background(), 30, false); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("scan of 30 records took %v, want >= 30ms", d)
	}
}

func TestContextCancelDuringSleep(t *testing.T) {
	g := NewGate(CostModel{LookupLatency: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Lookup(ctx, false) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled lookup returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled lookup did not return")
	}
}

func TestContextCancelWhileQueued(t *testing.T) {
	g := NewGate(CostModel{LookupLatency: 5 * time.Second, QueueDepth: 1})
	// Occupy the only slot.
	go g.Lookup(context.Background(), false)
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := g.Lookup(ctx, false); err == nil {
		t.Error("queued lookup should fail when its context expires")
	}
}
