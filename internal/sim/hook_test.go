package sim

import (
	"context"
	"testing"
	"time"
)

// TestDelayHookOverridesLatency checks an installed DelayHook rewrites the
// modeled service time of every I/O, and that clearing it restores the
// model's own latency.
func TestDelayHookOverridesLatency(t *testing.T) {
	g := NewGate(CostModel{LookupLatency: time.Nanosecond})
	if g == nil {
		t.Fatal("non-zero model produced a nil gate")
	}
	var calls int
	g.SetDelayHook(func(d time.Duration) time.Duration {
		calls++
		if d != time.Nanosecond {
			t.Errorf("hook saw d = %v, want 1ns", d)
		}
		return 0 // service instantly
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := g.Lookup(ctx, false); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Errorf("hook ran %d times, want 3", calls)
	}
	g.SetDelayHook(nil)
	if err := g.Lookup(ctx, false); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("cleared hook still ran (calls = %d)", calls)
	}
}

// TestDelayHookCanInflate checks a hook-added spike actually delays the I/O
// (the chaos scheduler's latency-spike mechanism).
func TestDelayHookCanInflate(t *testing.T) {
	g := NewGate(CostModel{LookupLatency: time.Nanosecond})
	g.SetDelayHook(func(d time.Duration) time.Duration { return 20 * time.Millisecond })
	start := time.Now()
	if err := g.Lookup(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 15*time.Millisecond {
		t.Errorf("spiked lookup took %v, want >= ~20ms", took)
	}
}

// TestDelayHookOnNilGate pins the no-op contract: a free cost model has no
// gate, and arming chaos against it must not panic.
func TestDelayHookOnNilGate(t *testing.T) {
	var g *Gate
	g.SetDelayHook(func(d time.Duration) time.Duration { return d })
	g.SetDelayHook(nil)
	if n, release := g.Hold(4); n != 0 {
		t.Errorf("nil gate held %d slots", n)
	} else {
		release()
	}
}

// TestHoldSqueezesQueueDepth checks Hold takes admission slots (reducing the
// depth concurrent I/Os can use), never blocks, and releases idempotently.
func TestHoldSqueezesQueueDepth(t *testing.T) {
	g := NewGate(CostModel{LookupLatency: time.Nanosecond, QueueDepth: 4})
	taken, release := g.Hold(3)
	if taken != 3 {
		t.Fatalf("Hold(3) took %d", taken)
	}
	// One slot remains: a lookup still completes.
	done := make(chan error, 1)
	go func() { done <- g.Lookup(context.Background(), false) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("lookup blocked with one free slot")
	}
	// Asking for more than remains takes what's there without blocking.
	taken2, release2 := g.Hold(10)
	if taken2 != 1 {
		t.Errorf("second Hold took %d slots, want 1", taken2)
	}
	// Fully squeezed: a lookup now blocks until release.
	blocked := make(chan error, 1)
	go func() { blocked <- g.Lookup(context.Background(), false) }()
	select {
	case err := <-blocked:
		t.Fatalf("lookup admitted through a fully held queue (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	release2()
	release()
	release() // idempotent
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("lookup still blocked after release")
	}
	// All slots free again.
	if n, rel := g.Hold(4); n != 4 {
		t.Errorf("after release Hold(4) took %d", n)
	} else {
		rel()
	}
}

// TestHoldUnboundedQueue pins that a gate without QueueDepth reports nothing
// to squeeze.
func TestHoldUnboundedQueue(t *testing.T) {
	g := NewGate(CostModel{LookupLatency: time.Nanosecond})
	if n, release := g.Hold(8); n != 0 {
		t.Errorf("unbounded gate held %d slots", n)
	} else {
		release()
	}
}
