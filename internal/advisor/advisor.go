// Package advisor implements the paper's §V-B research direction,
// structure maintenance: deciding *what* structures to build and *when*.
//
// The paper's requirements: (1) weigh data-processing speedup against the
// loading/maintenance overhead of each structure, and (2) adapt to
// workload change. The advisor does both with a decayed workload log:
//
//   - Candidate access methods are registered (the same indexer.Spec the
//     lazy builder uses) but not built.
//   - Each query that *would have used* a candidate reports an observation:
//     how many records it scanned and how many an index would have fetched
//     instead. Observations decay exponentially, so stale workloads stop
//     justifying structures.
//   - Benefit is the modeled time saved across the decayed log; cost is the
//     modeled build scan. When accumulated benefit exceeds the build cost
//     by a configurable factor, AutoBuild materializes the structure
//     through the lazy builder.
//   - Built structures keep reporting usage; structures idle for many
//     observations are recommended for dropping.
package advisor

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"lakeharbor/internal/catalog"
	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
)

// Config tunes the advisor.
type Config struct {
	// DecayFactor multiplies every candidate's accumulated benefit on each
	// Decay call; 0 selects 0.8.
	DecayFactor float64
	// BuildFactor is how many times the build cost the accumulated
	// benefit must reach before AutoBuild materializes a structure; 0
	// selects 2.0 (build once the structure has "paid for itself twice").
	BuildFactor float64
	// IdleObservations is how many global observations may pass without a
	// built structure being used before DropCandidates lists it; 0
	// selects 1000.
	IdleObservations int64
}

func (c Config) withDefaults() Config {
	if c.DecayFactor <= 0 || c.DecayFactor >= 1 {
		c.DecayFactor = 0.8
	}
	if c.BuildFactor <= 0 {
		c.BuildFactor = 2.0
	}
	if c.IdleObservations <= 0 {
		c.IdleObservations = 1000
	}
	return c
}

// CatalogViews is the advisor's window into the versioned metadata service
// (catalog.Service satisfies it): transactional snapshots of the file set.
type CatalogViews interface {
	Snapshot() catalog.View
}

// Advisor tracks candidate structures and the workload that would use them.
type Advisor struct {
	cluster *dfs.Cluster
	cfg     Config
	catalog CatalogViews // nil until AttachCatalog

	mu         sync.Mutex
	candidates map[string]*candidate
	clock      int64 // observation counter; the advisor's notion of time
}

type candidate struct {
	spec indexer.Spec
	// benefitNs is the decayed accumulated time (ns) the structure would
	// have saved.
	benefitNs float64
	// observations counts queries that would have used it (not decayed).
	observations int64
	built        bool
	lastUsed     int64 // clock value of last use/observation
}

// New creates an advisor over the cluster.
func New(cluster *dfs.Cluster, cfg Config) *Advisor {
	return &Advisor{
		cluster:    cluster,
		cfg:        cfg.withDefaults(),
		candidates: make(map[string]*candidate),
	}
}

// AttachCatalog points cost modeling at transactional catalog snapshots:
// each Recommend batch resolves every candidate's base file against ONE
// view, so a single ranking cannot mix two catalog versions, and a base
// dropped concurrently surfaces as "not in catalog at version N" instead
// of a torn read.
func (a *Advisor) AttachCatalog(cv CatalogViews) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.catalog = cv
}

// Register adds a candidate structure. It does not build anything.
func (a *Advisor) Register(spec indexer.Spec) error {
	if spec.Name == "" || spec.Base == "" {
		return fmt.Errorf("advisor: candidate needs Name and Base")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.candidates[spec.Name]; ok {
		return fmt.Errorf("advisor: candidate %q already registered", spec.Name)
	}
	a.candidates[spec.Name] = &candidate{spec: spec}
	return nil
}

// Observe reports that a query filtered or joined on the candidate's key:
// it scanned scannedRows records, where an index would have fetched about
// matchedRows. For an already-built structure this records usage instead.
func (a *Advisor) Observe(name string, scannedRows, matchedRows int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.candidates[name]
	if !ok {
		return fmt.Errorf("advisor: unknown candidate %q", name)
	}
	a.clock++
	c.observations++
	c.lastUsed = a.clock
	if c.built {
		return nil
	}
	cost := a.cluster.Cost()
	scanNs := float64(scannedRows) * float64(cost.ScanPerRecord)
	lookupNs := float64(matchedRows) * float64(cost.LookupLatency)
	if saved := scanNs - lookupNs; saved > 0 {
		c.benefitNs += saved
	}
	return nil
}

// Decay ages the workload log; call it periodically (e.g. every N queries)
// so that structures stop being justified by workloads that ended.
func (a *Advisor) Decay() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, c := range a.candidates {
		c.benefitNs *= a.cfg.DecayFactor
	}
}

// Recommendation is a costed build (or drop) suggestion.
type Recommendation struct {
	// Name is the candidate structure.
	Name string
	// BenefitNs is the decayed accumulated modeled saving.
	BenefitNs float64
	// BuildCostNs is the modeled cost of building now.
	BuildCostNs float64
	// Ratio is BenefitNs / BuildCostNs; AutoBuild triggers at
	// Config.BuildFactor.
	Ratio float64
	// Observations is how many queries would have used it.
	Observations int64
}

// BuildCostNs models (re)building the structure: one streaming scan of the
// base file, overlapped across its partitions. The structure lifecycle
// manager uses it to score eviction victims — among equally cold resident
// structures, the one cheapest to rebuild goes first. It reads only the
// cluster and is safe to call concurrently.
func (a *Advisor) BuildCostNs(spec indexer.Spec) (float64, error) {
	return a.buildCostNs(spec, a.snapshotView())
}

// snapshotView takes one transactional catalog view, or nil when no
// catalog service is attached.
func (a *Advisor) snapshotView() *catalog.View {
	a.mu.Lock()
	cv := a.catalog
	a.mu.Unlock()
	if cv == nil {
		return nil
	}
	v := cv.Snapshot()
	return &v
}

// buildCostNs is BuildCostNs against an already-taken catalog view (nil =
// ask the cluster directly). Catalog facts — base existence, partition
// count — come from the view; the row count is a data-plane fact and
// always comes from the cluster.
func (a *Advisor) buildCostNs(spec indexer.Spec, view *catalog.View) (float64, error) {
	var parts int
	if view != nil {
		meta, ok := view.File(spec.Base)
		if !ok {
			return 0, fmt.Errorf("advisor: base %q not in catalog at version %d",
				spec.Base, view.Version)
		}
		parts = meta.Partitions
	} else {
		f, err := a.cluster.File(spec.Base)
		if err != nil {
			return 0, err
		}
		parts = f.NumPartitions()
	}
	rows, err := a.cluster.Len(spec.Base)
	if err != nil {
		return 0, err
	}
	cost := a.cluster.Cost()
	if parts < 1 {
		parts = 1
	}
	ns := float64(rows) * float64(cost.ScanPerRecord) / float64(parts)
	if ns < 1 {
		ns = 1 // avoid zero cost under the free model; ratios stay finite
	}
	return ns, nil
}

// Recommend lists unbuilt candidates by descending benefit/cost ratio. With
// a catalog attached, the whole batch is costed against one snapshot.
func (a *Advisor) Recommend() ([]Recommendation, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var view *catalog.View
	if a.catalog != nil {
		v := a.catalog.Snapshot()
		view = &v
	}
	var out []Recommendation
	for name, c := range a.candidates {
		if c.built {
			continue
		}
		build, err := a.buildCostNs(c.spec, view)
		if err != nil {
			return nil, err
		}
		out = append(out, Recommendation{
			Name:         name,
			BenefitNs:    c.benefitNs,
			BuildCostNs:  build,
			Ratio:        c.benefitNs / build,
			Observations: c.observations,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out, nil
}

// AutoBuild materializes every unbuilt candidate whose accumulated benefit
// has reached Config.BuildFactor × build cost, returning the names built.
func (a *Advisor) AutoBuild(ctx context.Context) ([]string, error) {
	recs, err := a.Recommend()
	if err != nil {
		return nil, err
	}
	var built []string
	for _, r := range recs {
		if r.Ratio < a.cfg.BuildFactor {
			break // sorted descending: nothing further qualifies
		}
		a.mu.Lock()
		c := a.candidates[r.Name]
		spec := c.spec
		a.mu.Unlock()
		if _, err := indexer.Build(ctx, a.cluster, spec); err != nil {
			return built, fmt.Errorf("advisor: building %q: %w", r.Name, err)
		}
		a.mu.Lock()
		c.built = true
		a.mu.Unlock()
		built = append(built, r.Name)
	}
	return built, nil
}

// Built reports whether the named structure has been materialized by the
// advisor.
func (a *Advisor) Built(name string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.candidates[name]
	return ok && c.built
}

// DropCandidates lists built structures that have not been used for at
// least Config.IdleObservations observations — the maintenance-overhead
// side of the paper's trade-off. Dropping is left to the operator (or a
// test) via dfs.DropFile.
func (a *Advisor) DropCandidates() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for name, c := range a.candidates {
		if c.built && a.clock-c.lastUsed >= a.cfg.IdleObservations {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Drop removes a built structure: the file is dropped from the catalog and
// the candidate returns to the unbuilt pool with its log reset.
func (a *Advisor) Drop(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.candidates[name]
	if !ok {
		return fmt.Errorf("advisor: unknown candidate %q", name)
	}
	if !c.built {
		return fmt.Errorf("advisor: %q is not built", name)
	}
	a.cluster.DropFile(name)
	c.built = false
	c.benefitNs = 0
	return nil
}
