package advisor

import (
	"context"
	"testing"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/indexer"
	"lakeharbor/internal/keycodec"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/sim"
)

// testCluster loads a base file of n rows with a cost model so the
// benefit/cost arithmetic has real numbers to work with.
func testCluster(t testing.TB, n int) *dfs.Cluster {
	t.Helper()
	ctx := context.Background()
	c := dfs.NewCluster(dfs.Config{Nodes: 2, Cost: sim.CostModel{
		LookupLatency: 400 * time.Microsecond,
		ScanPerRecord: 20 * time.Microsecond,
		Spindles:      24,
	}})
	f, err := c.CreateFile("events", dfs.Btree, 4, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := keycodec.Int64(int64(i))
		if err := dfs.AppendRouted(ctx, f, k, lake.Record{Key: k, Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func eventSpec() indexer.Spec {
	return indexer.Spec{
		Name:    "events_idx",
		Base:    "events",
		Kind:    indexer.Global,
		PartKey: func(rec lake.Record) (lake.Key, error) { return rec.Key, nil },
		Keys: func(rec lake.Record) ([]lake.Key, error) {
			return []lake.Key{rec.Key}, nil
		},
	}
}

func TestRegisterValidation(t *testing.T) {
	a := New(testCluster(t, 10), Config{})
	if err := a.Register(indexer.Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if err := a.Register(eventSpec()); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(eventSpec()); err == nil {
		t.Error("duplicate candidate accepted")
	}
	if err := a.Observe("nope", 1, 1); err == nil {
		t.Error("Observe on unknown candidate accepted")
	}
}

func TestBenefitAccumulatesAndTriggersBuild(t *testing.T) {
	ctx := context.Background()
	cluster := testCluster(t, 2000)
	a := New(cluster, Config{BuildFactor: 2})
	if err := a.Register(eventSpec()); err != nil {
		t.Fatal(err)
	}

	// One selective query: scanned 2000 rows where an index would fetch 5.
	// Benefit ≈ 2000×20µs - 5×400µs = 38ms; build ≈ 2000×20µs/4 = 10ms;
	// ratio ≈ 3.8 ≥ 2 → a single observation already justifies the build.
	if err := a.Observe("events_idx", 2000, 5); err != nil {
		t.Fatal(err)
	}
	recs, err := a.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "events_idx" {
		t.Fatalf("Recommend = %+v", recs)
	}
	if recs[0].Ratio < 2 {
		t.Fatalf("ratio = %g, expected >= 2 after a strongly selective query", recs[0].Ratio)
	}
	built, err := a.AutoBuild(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 1 || built[0] != "events_idx" {
		t.Fatalf("AutoBuild = %v", built)
	}
	if !a.Built("events_idx") {
		t.Error("Built not reporting")
	}
	if n, err := cluster.Len("events_idx"); err != nil || n != 2000 {
		t.Fatalf("built index has %d entries (%v)", n, err)
	}
	// Built candidates leave the recommendation list.
	recs, _ = a.Recommend()
	if len(recs) != 0 {
		t.Errorf("built candidate still recommended: %+v", recs)
	}
}

func TestUnselectiveWorkloadDoesNotTrigger(t *testing.T) {
	ctx := context.Background()
	a := New(testCluster(t, 2000), Config{BuildFactor: 2})
	a.Register(eventSpec())
	// Query matches nearly everything: lookups would cost more than the
	// scan, so no benefit accrues.
	for i := 0; i < 50; i++ {
		a.Observe("events_idx", 2000, 1900)
	}
	built, err := a.AutoBuild(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 0 {
		t.Fatalf("unselective workload built %v", built)
	}
}

func TestDecayForgetsOldWorkloads(t *testing.T) {
	a := New(testCluster(t, 2000), Config{BuildFactor: 2, DecayFactor: 0.5})
	a.Register(eventSpec())
	a.Observe("events_idx", 2000, 5)
	before, _ := a.Recommend()
	for i := 0; i < 20; i++ {
		a.Decay()
	}
	after, _ := a.Recommend()
	if after[0].BenefitNs >= before[0].BenefitNs/1000 {
		t.Errorf("decay did not forget: %g -> %g", before[0].BenefitNs, after[0].BenefitNs)
	}
	if after[0].Ratio >= 2 {
		t.Error("decayed candidate still above the build threshold")
	}
}

func TestAccumulationAcrossManyModestQueries(t *testing.T) {
	ctx := context.Background()
	a := New(testCluster(t, 2000), Config{BuildFactor: 2})
	a.Register(eventSpec())
	// Each query saves ~ (2000×20µs − 200×400µs) < 0 ... choose matched
	// rows low enough to save a little each time: 2000×20µs = 40ms scan,
	// 50×400µs = 20ms lookups → ~20ms saved per query; build cost 10ms →
	// threshold 20ms reached after 1 query? BuildFactor 2 → needs 20ms:
	// use matched=80 → saved 8ms/query → needs 3 queries.
	a.Observe("events_idx", 2000, 80)
	if built, _ := a.AutoBuild(ctx); len(built) != 0 {
		t.Fatalf("built too eagerly: %v", built)
	}
	a.Observe("events_idx", 2000, 80)
	a.Observe("events_idx", 2000, 80)
	built, err := a.AutoBuild(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 1 {
		t.Fatalf("accumulated benefit did not trigger build: %v", built)
	}
}

func TestDropCandidatesAndDrop(t *testing.T) {
	ctx := context.Background()
	cluster := testCluster(t, 500)
	a := New(cluster, Config{BuildFactor: 1, IdleObservations: 5})
	a.Register(eventSpec())
	other := eventSpec()
	other.Name = "busy_idx"
	a.Register(other)

	a.Observe("events_idx", 500, 1)
	a.Observe("busy_idx", 500, 1)
	if _, err := a.AutoBuild(ctx); err != nil {
		t.Fatal(err)
	}
	if !a.Built("events_idx") || !a.Built("busy_idx") {
		t.Fatal("both candidates should be built")
	}
	// busy_idx keeps being used; events_idx goes idle.
	for i := 0; i < 10; i++ {
		a.Observe("busy_idx", 10, 1)
	}
	drops := a.DropCandidates()
	if len(drops) != 1 || drops[0] != "events_idx" {
		t.Fatalf("DropCandidates = %v, want [events_idx]", drops)
	}
	if err := a.Drop("events_idx"); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.File("events_idx"); err == nil {
		t.Error("dropped structure still in catalog")
	}
	if a.Built("events_idx") {
		t.Error("dropped structure still marked built")
	}
	// A dropped candidate can be justified and rebuilt again.
	a.Observe("events_idx", 500, 1)
	if built, _ := a.AutoBuild(ctx); len(built) != 1 {
		t.Errorf("rebuild after drop failed: %v", built)
	}
	if err := a.Drop("never-registered"); err == nil {
		t.Error("Drop of unknown candidate accepted")
	}
	if err := a.Drop("events_idx"); err != nil {
		t.Errorf("drop of rebuilt structure failed: %v", err)
	}
	if err := a.Drop("events_idx"); err == nil {
		t.Error("double Drop accepted")
	}
}

func TestRecommendOrdersByRatio(t *testing.T) {
	a := New(testCluster(t, 1000), Config{})
	s1 := eventSpec()
	s1.Name = "hot"
	s2 := eventSpec()
	s2.Name = "cold"
	a.Register(s1)
	a.Register(s2)
	a.Observe("hot", 1000, 1)
	a.Observe("hot", 1000, 1)
	a.Observe("cold", 1000, 900)
	recs, err := a.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "hot" {
		t.Fatalf("Recommend order = %+v", recs)
	}
	if recs[0].Observations != 2 {
		t.Errorf("hot observations = %d", recs[0].Observations)
	}
}
