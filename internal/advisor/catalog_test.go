package advisor

import (
	"strings"
	"testing"

	"lakeharbor/internal/catalog"
)

// countingViews wraps a live catalog.Service, counting snapshots.
type countingViews struct {
	svc       *catalog.Service
	snapshots int
}

func (c *countingViews) Snapshot() catalog.View {
	c.snapshots++
	return c.svc.Snapshot()
}

// TestRecommendCostsWholeBatchAgainstOneSnapshot: a Recommend batch over
// several candidates must take exactly one catalog view, so the ranking
// cannot mix two catalog versions.
func TestRecommendCostsWholeBatchAgainstOneSnapshot(t *testing.T) {
	c := testCluster(t, 200)
	svc := catalog.Attach(c, nil)
	cv := &countingViews{svc: svc}

	a := New(c, Config{})
	a.AttachCatalog(cv)
	for _, name := range []string{"events_idx_a", "events_idx_b", "events_idx_c"} {
		spec := eventSpec()
		spec.Name = name
		if err := a.Register(spec); err != nil {
			t.Fatal(err)
		}
		if err := a.Observe(name, 200, 5); err != nil {
			t.Fatal(err)
		}
	}

	recs, err := a.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d recommendations, want 3", len(recs))
	}
	if cv.snapshots != 1 {
		t.Errorf("Recommend over 3 candidates took %d snapshots, want exactly 1", cv.snapshots)
	}
}

// staleViews serves a fixed view, standing in for a snapshot from before
// the candidate's base file existed.
type staleViews struct{ view catalog.View }

func (s *staleViews) Snapshot() catalog.View { return s.view }

// TestBuildCostRejectsBaseMissingFromSnapshot: with a catalog attached,
// cost modeling answers existence from the view — a base absent at the
// snapshot's version is an error naming that version, even though the live
// cluster has the file.
func TestBuildCostRejectsBaseMissingFromSnapshot(t *testing.T) {
	c := testCluster(t, 50)
	a := New(c, Config{})
	a.AttachCatalog(&staleViews{view: catalog.View{Version: 3}})

	_, err := a.BuildCostNs(eventSpec())
	if err == nil {
		t.Fatal("BuildCostNs succeeded against a snapshot missing the base; want an error")
	}
	if !strings.Contains(err.Error(), "version 3") {
		t.Errorf("error %q does not name the snapshot version", err)
	}
}
