// Package obs is the shared Prometheus-text plumbing of every LakeHarbor
// debug surface: lakeserve's /debug/metrics, the lakenode sidecar, and the
// federation layer all emit through the helpers here, so the components
// cannot disagree on exposition format, and the Sanitize pass gives the
// composed output one writer path — duplicate series (two hooks exporting
// the same name+labels) and repeated HELP/TYPE headers are dropped instead
// of corrupting the scrape.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"lakeharbor/internal/trace"
)

// ContentType is the Prometheus text exposition content type every debug
// metrics endpoint serves.
const ContentType = "text/plain; version=0.0.4"

// Counter emits one unlabeled counter with its HELP/TYPE header.
func Counter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// Gauge emits one unlabeled gauge with its HELP/TYPE header.
func Gauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// GaugeF emits one unlabeled float gauge with its HELP/TYPE header.
func GaugeF(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// Header emits the HELP/TYPE block for a labeled family; follow it with
// Sample calls.
func Header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one labeled sample. labels alternates key, value.
func Sample(w io.Writer, name string, labels []string, v float64) {
	fmt.Fprintf(w, "%s%s %g\n", name, renderLabels(labels), v)
}

// SampleInt emits one labeled integer sample. labels alternates key, value.
func SampleInt(w io.Writer, name string, labels []string, v int64) {
	fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(labels), v)
}

func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Summary emits one labeled quantile summary from a histogram snapshot:
// quantile samples plus _sum and _count, all carrying the given labels.
// scale converts recorded units to the exported unit (1e-9 for ns→s).
// Unlike trace.HistSnapshot.WriteSummary it supports label sets, which the
// per-op node and cluster series need; the HELP/TYPE header must already
// have been written (Header with type "summary").
func Summary(w io.Writer, name string, labels []string, snap trace.HistSnapshot, scale float64, quantiles ...float64) {
	for _, q := range quantiles {
		ql := append(append([]string{}, labels...), "quantile", fmt.Sprintf("%g", q))
		Sample(w, name, ql, float64(snap.Quantile(q))*scale)
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, renderLabels(labels), float64(snap.Sum)*scale)
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), snap.Count)
}

// WriteBuildInfo emits the shared identity series every LakeHarbor debug
// endpoint starts with: lakeharbor_build_info{component,go} 1 and the
// process uptime gauge.
func WriteBuildInfo(w io.Writer, component string, start time.Time) {
	Header(w, "lakeharbor_build_info", "gauge", "Build and runtime identity (always 1).")
	Sample(w, "lakeharbor_build_info", []string{"component", component, "go", runtime.Version()}, 1)
	GaugeF(w, "lakeharbor_uptime_seconds", "Seconds since the process started.", time.Since(start).Seconds())
}

// Sanitize is the one-writer-path guard for composed metrics output: it
// takes the concatenation of several writers' sections and drops exact
// duplicate samples (same series name and label set — the first occurrence
// wins) and repeated HELP/TYPE headers for a name already described. The
// result is a valid exposition no matter how many hooks contributed.
func Sanitize(raw []byte) []byte {
	var out bytes.Buffer
	out.Grow(len(raw))
	seenSeries := make(map[string]bool)
	seenHeader := make(map[string]bool)
	for _, line := range strings.Split(string(raw), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			// "# HELP name ..." / "# TYPE name ..." — dedupe per (kind, name).
			fields := strings.Fields(trimmed)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				key := fields[1] + " " + fields[2]
				if seenHeader[key] {
					continue
				}
				seenHeader[key] = true
			}
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		// A sample line: everything before the final space is the series id
		// (name plus rendered labels; values never contain spaces).
		id := trimmed
		if i := strings.LastIndexByte(trimmed, ' '); i > 0 {
			id = trimmed[:i]
		}
		if seenSeries[id] {
			continue
		}
		seenSeries[id] = true
		out.WriteString(line)
		out.WriteByte('\n')
	}
	return out.Bytes()
}
