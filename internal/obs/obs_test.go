package obs

import (
	"strings"
	"testing"
	"time"

	"lakeharbor/internal/trace"
)

// TestSanitizeDropsDuplicates: two writers exporting the same series must
// yield one sample (first wins) and one HELP/TYPE pair.
func TestSanitizeDropsDuplicates(t *testing.T) {
	var b strings.Builder
	Counter(&b, "lakeharbor_x_total", "first writer.", 7)
	Counter(&b, "lakeharbor_x_total", "second writer disagrees.", 9)
	Header(&b, "lakeharbor_y", "gauge", "labeled family.")
	SampleInt(&b, "lakeharbor_y", []string{"node", "a"}, 1)
	SampleInt(&b, "lakeharbor_y", []string{"node", "a"}, 2)
	SampleInt(&b, "lakeharbor_y", []string{"node", "b"}, 3)

	out := string(Sanitize([]byte(b.String())))
	if got := strings.Count(out, "lakeharbor_x_total 7"); got != 1 {
		t.Fatalf("first sample kept %d times, want 1\n%s", got, out)
	}
	if strings.Contains(out, "lakeharbor_x_total 9") {
		t.Fatalf("duplicate sample survived:\n%s", out)
	}
	if got := strings.Count(out, "# TYPE lakeharbor_x_total"); got != 1 {
		t.Fatalf("TYPE header kept %d times, want 1", got)
	}
	if !strings.Contains(out, `lakeharbor_y{node="a"} 1`) || strings.Contains(out, `lakeharbor_y{node="a"} 2`) {
		t.Fatalf("labeled dedupe wrong:\n%s", out)
	}
	if !strings.Contains(out, `lakeharbor_y{node="b"} 3`) {
		t.Fatalf("distinct label set dropped:\n%s", out)
	}
}

// TestSummaryLabels: labeled summaries carry the labels on quantile, _sum,
// and _count lines.
func TestSummaryLabels(t *testing.T) {
	var h trace.Histogram
	for i := 0; i < 100; i++ {
		h.Record(int64(i+1) * 1000)
	}
	var b strings.Builder
	Summary(&b, "lakeharbor_rpc_seconds", []string{"op", "scan"}, h.Snapshot(), 1e-9, 0.5, 0.99)
	out := b.String()
	for _, want := range []string{
		`lakeharbor_rpc_seconds{op="scan",quantile="0.5"}`,
		`lakeharbor_rpc_seconds{op="scan",quantile="0.99"}`,
		`lakeharbor_rpc_seconds_sum{op="scan"}`,
		`lakeharbor_rpc_seconds_count{op="scan"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteBuildInfo(t *testing.T) {
	var b strings.Builder
	WriteBuildInfo(&b, "lakeserve", time.Now().Add(-time.Minute))
	out := b.String()
	if !strings.Contains(out, `lakeharbor_build_info{component="lakeserve",go="go`) {
		t.Fatalf("build info missing identity labels:\n%s", out)
	}
	if !strings.Contains(out, "lakeharbor_uptime_seconds ") {
		t.Fatalf("uptime gauge missing:\n%s", out)
	}
}
