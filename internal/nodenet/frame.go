// Package nodenet is the networked data plane behind the dfs.NodeTransport
// seam: a compact length-prefixed batch RPC over TCP. The wire unit is the
// PR 2 LookupBatch shape — a whole pointer batch of keys travels in one
// frame and their record groups come back in one frame — so the executor's
// coalescing translates directly into fewer round trips.
//
// Framing: every message is a 4-byte big-endian payload length followed by
// the payload, capped at MaxFrame. Requests carry an op byte and a request
// id; responses echo the id with a status byte. Strings and byte slices are
// uvarint-length-prefixed; small integers are uvarints.
//
// Error classification is part of the protocol contract (see ISSUE 7 /
// DESIGN.md §10): connection-level failures (refused, reset, timeout, short
// read) stay transient so the executor's retry machinery re-drives them,
// while a *malformed* frame — oversize length prefix, undecodable payload,
// mismatched request id, unknown status — is marked lake.AsPermanent,
// because resending the same bytes can never heal a protocol bug.
package nodenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"lakeharbor/internal/lake"
)

// MaxFrame bounds a frame payload (64 MiB). A length prefix above it is a
// protocol error, classified permanent: it means the peer is not speaking
// this protocol (or the stream desynchronised), not that the network
// hiccupped.
const MaxFrame = 64 << 20

// errFrameTooBig marks an oversize length prefix. readFrame returns it
// verbatim so the client can classify it permanent.
var errFrameTooBig = errors.New("nodenet: frame exceeds MaxFrame")

// Request ops. Point lookups do not get their own op: the client sends a
// one-key opLookupBatch, keeping the wire surface minimal.
const (
	opCreate byte = 1 + iota
	opDrop
	opLookupBatch
	opLookupRange
	opScan
	opAppend
	opStat
)

// flagCtx is the trace-context version bit on the request op byte. When set,
// a trace-context block (job, stage, tenant, attempt) sits between the
// request id and the file name; when clear the frame is byte-identical to
// the pre-context wire format, so old and new peers interoperate as long as
// the sender carries no context. An old server receiving a flagged frame
// rejects it as an unknown op (statusPermanent) rather than misparsing it.
const flagCtx byte = 0x80

// TraceContext is the optional per-request trace identity carried on the
// wire: which job caused this RPC, from which stage, for which tenant, and
// on which retry attempt. The zero value means "no context" and encodes
// nothing.
type TraceContext struct {
	Job     string
	Tenant  string
	Stage   int
	Attempt int
}

// Response statuses. The numeric values are wire format — do not reorder.
const (
	statusOK byte = iota
	statusTransient
	statusPermanent
	statusNoFile
	statusNoPartition
)

// Partitioner wire tags (same scheme as the snapshot format).
const (
	partHash  byte = 0
	partRange byte = 1
)

// maxSaneCount bounds decoded collection lengths so a hostile or corrupt
// count cannot drive a huge allocation before the payload bound catches it.
const maxSaneCount = 1 << 24

// writeFrame sends one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w (%d bytes)", errFrameTooBig, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload. Short reads surface as the
// underlying I/O error (transient); an oversize prefix returns
// errFrameTooBig (permanent at the client).
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w (%d bytes)", errFrameTooBig, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// encoder builds a payload in memory; nothing it writes can fail.
type encoder struct{ buf []byte }

func (e *encoder) byte(b byte)  { e.buf = append(e.buf, b) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}
func (e *encoder) string(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// decoder consumes a payload; the first failure sticks and every later read
// returns zero values, so call sites stay linear and check err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("nodenet: %s at offset %d", msg, d.off)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// count decodes a collection length and bounds it.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > maxSaneCount || v > uint64(len(d.buf)-d.off) {
		// Every collection element takes at least one payload byte, so a
		// count beyond the remaining payload is provably corrupt.
		d.fail("absurd collection count")
		return 0
	}
	return int(v)
}

// smallInt decodes a bounded non-negative integer (stage/attempt ordinals);
// anything beyond maxSaneCount is provably corrupt.
func (d *decoder) smallInt(what string) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > maxSaneCount {
		d.fail("absurd " + what)
		return 0
	}
	return int(v)
}

func (d *decoder) string() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated string")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytes() []byte {
	n := d.count()
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated bytes")
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

// finish reports a decode error if one occurred or if trailing bytes remain
// (a frame must be consumed exactly — slack means desync).
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("nodenet: %d trailing bytes after payload", len(d.buf)-d.off)
	}
	return nil
}

// request is the decoded form of a request frame. Only the fields the op
// uses are populated.
type request struct {
	Op    byte
	ReqID uint64
	Ctx   TraceContext // optional; encoded only when non-zero (flagCtx)

	File      string // all ops
	Partition int    // data ops

	Kind       int              // opCreate
	Partitions int              // opCreate
	Part       lake.Partitioner // opCreate

	Keys   []lake.Key    // opLookupBatch
	Lo, Hi lake.Key      // opLookupRange
	Recs   []lake.Record // opAppend
}

func (r *request) encode() []byte {
	e := &encoder{}
	op := r.Op
	hasCtx := r.Ctx != (TraceContext{})
	if hasCtx {
		op |= flagCtx
	}
	e.byte(op)
	e.u64(r.ReqID)
	if hasCtx {
		e.string(r.Ctx.Job)
		e.uvarint(uint64(r.Ctx.Stage))
		e.string(r.Ctx.Tenant)
		e.uvarint(uint64(r.Ctx.Attempt))
	}
	e.string(r.File)
	switch r.Op {
	case opCreate:
		e.uvarint(uint64(r.Kind))
		e.uvarint(uint64(r.Partitions))
		encodePartitioner(e, r.Part)
	case opDrop:
		// file name only
	case opLookupBatch:
		e.uvarint(uint64(r.Partition))
		e.uvarint(uint64(len(r.Keys)))
		for _, k := range r.Keys {
			e.string(k)
		}
	case opLookupRange:
		e.uvarint(uint64(r.Partition))
		e.string(r.Lo)
		e.string(r.Hi)
	case opScan, opStat:
		e.uvarint(uint64(r.Partition))
	case opAppend:
		e.uvarint(uint64(r.Partition))
		e.uvarint(uint64(len(r.Recs)))
		for _, rec := range r.Recs {
			e.string(rec.Key)
			e.bytes(rec.Data)
		}
	}
	return e.buf
}

func decodeRequest(payload []byte) (*request, error) {
	d := &decoder{buf: payload}
	raw := d.byte()
	r := &request{Op: raw &^ flagCtx, ReqID: d.u64()}
	if raw&flagCtx != 0 {
		r.Ctx.Job = d.string()
		r.Ctx.Stage = d.smallInt("trace stage")
		r.Ctx.Tenant = d.string()
		r.Ctx.Attempt = d.smallInt("trace attempt")
	}
	r.File = d.string()
	switch r.Op {
	case opCreate:
		r.Kind = int(d.uvarint())
		r.Partitions = int(d.uvarint())
		r.Part = decodePartitioner(d)
	case opDrop:
	case opLookupBatch:
		r.Partition = int(d.uvarint())
		n := d.count()
		r.Keys = make([]lake.Key, n)
		for i := 0; i < n && d.err == nil; i++ {
			r.Keys[i] = d.string()
		}
	case opLookupRange:
		r.Partition = int(d.uvarint())
		r.Lo = d.string()
		r.Hi = d.string()
	case opScan, opStat:
		r.Partition = int(d.uvarint())
	case opAppend:
		r.Partition = int(d.uvarint())
		r.Recs = decodeRecords(d)
	default:
		d.fail(fmt.Sprintf("unknown op %d", r.Op))
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// response is the decoded form of a response frame. The body layout depends
// on the op it answers, so decodeResponse takes the op.
type response struct {
	Status byte
	ReqID  uint64
	Msg    string // error statuses

	Groups  [][]lake.Record // opLookupBatch: one group per key
	Recs    []lake.Record   // opLookupRange, opScan
	Records int             // opStat
	Bytes   int64           // opStat
}

func (r *response) encode(op byte) []byte {
	e := &encoder{}
	e.byte(r.Status)
	e.u64(r.ReqID)
	if r.Status != statusOK {
		e.string(r.Msg)
		return e.buf
	}
	switch op {
	case opLookupBatch:
		e.uvarint(uint64(len(r.Groups)))
		for _, g := range r.Groups {
			encodeRecords(e, g)
		}
	case opLookupRange, opScan:
		encodeRecords(e, r.Recs)
	case opStat:
		e.uvarint(uint64(r.Records))
		e.uvarint(uint64(r.Bytes))
	}
	return e.buf
}

func decodeResponse(payload []byte, op byte) (*response, error) {
	d := &decoder{buf: payload}
	r := &response{Status: d.byte(), ReqID: d.u64()}
	if d.err == nil && r.Status > statusNoPartition {
		d.fail(fmt.Sprintf("unknown status %d", r.Status))
	}
	if r.Status != statusOK {
		r.Msg = d.string()
		if err := d.finish(); err != nil {
			return nil, err
		}
		return r, nil
	}
	switch op {
	case opLookupBatch:
		n := d.count()
		r.Groups = make([][]lake.Record, n)
		for i := 0; i < n && d.err == nil; i++ {
			r.Groups[i] = decodeRecords(d)
		}
	case opLookupRange, opScan:
		r.Recs = decodeRecords(d)
	case opStat:
		r.Records = int(d.uvarint())
		b := d.uvarint()
		if d.err == nil && b > math.MaxInt64 {
			d.fail("stat bytes overflow")
		}
		r.Bytes = int64(b)
	case opCreate, opDrop, opAppend:
		// empty OK body
	default:
		d.fail(fmt.Sprintf("unknown op %d", op))
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return r, nil
}

func encodeRecords(e *encoder, recs []lake.Record) {
	e.uvarint(uint64(len(recs)))
	for _, r := range recs {
		e.string(r.Key)
		e.bytes(r.Data)
	}
}

func decodeRecords(d *decoder) []lake.Record {
	n := d.count()
	if d.err != nil {
		return nil
	}
	recs := make([]lake.Record, n)
	for i := 0; i < n && d.err == nil; i++ {
		recs[i] = lake.Record{Key: d.string(), Data: d.bytes()}
	}
	return recs
}

func encodePartitioner(e *encoder, p lake.Partitioner) {
	switch p := p.(type) {
	case lake.RangePartitioner:
		e.byte(partRange)
		e.uvarint(uint64(len(p.Bounds)))
		for _, b := range p.Bounds {
			e.string(b)
		}
	default:
		// Hash is the catch-all: an exotic partitioner degrades to hash on
		// the remote side, which only affects routing locality, never
		// correctness (the owner resolves partitions before the RPC).
		e.byte(partHash)
	}
}

func decodePartitioner(d *decoder) lake.Partitioner {
	switch tag := d.byte(); tag {
	case partHash:
		return lake.HashPartitioner{}
	case partRange:
		n := d.count()
		bounds := make([]lake.Key, n)
		for i := 0; i < n && d.err == nil; i++ {
			bounds[i] = d.string()
		}
		return lake.RangePartitioner{Bounds: bounds}
	default:
		d.fail(fmt.Sprintf("unknown partitioner tag %d", tag))
		return nil
	}
}
