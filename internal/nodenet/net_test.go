package nodenet

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

func discard(string, ...any) {}

// startNode spins a lakenode-shaped server (Local over a 1-node cluster) on
// a loopback port and returns its address plus the backing cluster.
func startNode(t *testing.T) (string, *dfs.Cluster, *Server) {
	t.Helper()
	cluster := dfs.NewCluster(dfs.Config{Nodes: 1})
	srv := NewServer(dfs.Local(cluster), discard)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String(), cluster, srv
}

func TestClientServerRoundTrip(t *testing.T) {
	addr, _, _ := startNode(t)
	stats := NewStats()
	c := Dial(addr, Options{}, stats)
	defer c.Close()
	ctx := context.Background()

	if err := c.CreateFile(ctx, "base", dfs.Btree, 3, lake.HashPartitioner{}); err != nil {
		t.Fatalf("create: %v", err)
	}
	recs := []lake.Record{
		{Key: "a", Data: []byte("1")},
		{Key: "b", Data: []byte("2")},
		{Key: "b", Data: []byte("2bis")},
		{Key: "c", Data: []byte("3")},
	}
	if err := c.Append(ctx, "base", 1, recs); err != nil {
		t.Fatalf("append: %v", err)
	}

	got, err := c.Lookup(ctx, "base", 1, "b")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("lookup b: got %d records, want 2", len(got))
	}

	groups, err := c.LookupBatch(ctx, "base", 1, []lake.Key{"a", "nope", "c"})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(groups) != 3 || len(groups[0]) != 1 || len(groups[1]) != 0 || len(groups[2]) != 1 {
		t.Fatalf("batch groups wrong: %+v", groups)
	}

	rng, err := c.LookupRange(ctx, "base", 1, "a", "b")
	if err != nil {
		t.Fatalf("range: %v", err)
	}
	if len(rng) != 3 {
		t.Fatalf("range [a,b]: got %d records, want 3", len(rng))
	}

	var scanned []lake.Record
	err = c.Scan(ctx, "base", 1, func(r lake.Record) error {
		scanned = append(scanned, r)
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(scanned) != 4 {
		t.Fatalf("scan: got %d records, want 4", len(scanned))
	}

	n, bytes, err := c.Stat(ctx, "base", 1)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if n != 4 || bytes <= 0 {
		t.Fatalf("stat: got (%d, %d)", n, bytes)
	}

	if err := c.DropFile(ctx, "base"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if _, err := c.Lookup(ctx, "base", 0, "a"); !errors.Is(err, lake.ErrNoSuchFile) {
		t.Fatalf("lookup after drop: want ErrNoSuchFile, got %v", err)
	}
	if stats.RPCs() == 0 {
		t.Fatal("stats recorded no RPCs")
	}
}

// TestRemoteSentinelErrors: the sentinel error classes must survive the
// network hop so the executor treats remote failures like local ones.
func TestRemoteSentinelErrors(t *testing.T) {
	addr, _, _ := startNode(t)
	c := Dial(addr, Options{}, nil)
	defer c.Close()
	ctx := context.Background()

	_, err := c.Lookup(ctx, "ghost", 0, "k")
	if !errors.Is(err, lake.ErrNoSuchFile) {
		t.Fatalf("want ErrNoSuchFile, got %v", err)
	}
	if !lake.IsPermanent(err) {
		t.Fatalf("ErrNoSuchFile must classify permanent, got %v", err)
	}

	if err := c.CreateFile(ctx, "f", dfs.Heap, 2, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Lookup(ctx, "f", 7, "k")
	if !errors.Is(err, lake.ErrNoSuchPartition) {
		t.Fatalf("want ErrNoSuchPartition, got %v", err)
	}
}

// TestRefusedConnIsTransient is the first classification regression from
// ISSUE 7: a refused connection is a transient error (retried with backoff),
// and the same client succeeds once a server appears on the port.
func TestRefusedConnIsTransient(t *testing.T) {
	// Reserve a port, then close the listener so dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := Dial(addr, Options{RequestTimeout: 150 * time.Millisecond, DialTimeout: 50 * time.Millisecond}, nil)
	defer c.Close()
	_, err = c.Lookup(context.Background(), "f", 0, "k")
	if err == nil {
		t.Fatal("lookup against dead port succeeded")
	}
	if lake.IsPermanent(err) {
		t.Fatalf("refused connection classified permanent: %v", err)
	}

	// A server comes up on the same port: the executor's retry (modeled by
	// this second call) must now go through. Rebinding a just-released
	// loopback port can race another process, so tolerate a bind failure.
	cluster := dfs.NewCluster(dfs.Config{Nodes: 1})
	srv := NewServer(dfs.Local(cluster), discard)
	if _, err := srv.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv.Close()
	if _, err := cluster.CreateFile("f", dfs.Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(context.Background(), "f", 0, "k"); err != nil {
		t.Fatalf("lookup after server start: %v", err)
	}
}

// TestMalformedFrameIsPermanent is the second classification regression: a
// peer answering with garbage (an oversize length prefix here, an
// undecodable payload below) is a protocol error — permanent, no retry.
func TestMalformedFrameIsPermanent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		readFrame(conn) //nolint:errcheck // swallow the request
		// 0xFFFFFFFF length prefix: way past MaxFrame.
		conn.Write([]byte{0xff, 0xff, 0xff, 0xff}) //nolint:errcheck
	}()

	c := Dial(ln.Addr().String(), Options{RequestTimeout: time.Second}, nil)
	defer c.Close()
	_, err = c.Lookup(context.Background(), "f", 0, "k")
	if err == nil {
		t.Fatal("lookup against garbage server succeeded")
	}
	if !lake.IsPermanent(err) {
		t.Fatalf("oversize frame classified transient: %v", err)
	}
	wg.Wait()
}

func TestUndecodablePayloadIsPermanent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		readFrame(conn) //nolint:errcheck
		// A well-framed payload that is not a valid response (status 200).
		payload := []byte{200, 0, 0, 0, 0, 0, 0, 0, 0}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		conn.Write(hdr[:])  //nolint:errcheck
		conn.Write(payload) //nolint:errcheck
	}()

	c := Dial(ln.Addr().String(), Options{RequestTimeout: time.Second}, nil)
	defer c.Close()
	_, err = c.Lookup(context.Background(), "f", 0, "k")
	if err == nil {
		t.Fatal("lookup against undecodable response succeeded")
	}
	if !lake.IsPermanent(err) {
		t.Fatalf("undecodable payload classified transient: %v", err)
	}
	wg.Wait()
}

// TestServerSurvivesMalformedRequest: garbage from a client must not take
// the server down, and the connection is dropped so the next client starts
// clean.
func TestServerSurvivesMalformedRequest(t *testing.T) {
	addr, cluster, srv := startNode(t)
	if _, err := cluster.CreateFile("f", dfs.Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, []byte{99, 1, 2, 3}); err != nil { // unknown op
		t.Fatal(err)
	}
	raw, err := readFrame(conn)
	if err != nil {
		t.Fatalf("no answer to malformed request: %v", err)
	}
	if raw[0] != statusPermanent {
		t.Fatalf("malformed request answered with status %d, want permanent", raw[0])
	}
	conn.Close()

	// Server still serves well-formed clients.
	c := Dial(addr, Options{}, nil)
	defer c.Close()
	if _, err := c.Lookup(context.Background(), "f", 0, "k"); err != nil {
		t.Fatalf("lookup after malformed request: %v", err)
	}
	if srv.Served() == 0 {
		t.Fatal("server served nothing")
	}
}

// slowTransport delays read ops so hedge timers fire deterministically.
type slowTransport struct {
	dfs.NodeTransport
	delay time.Duration
}

func (s slowTransport) LookupBatch(ctx context.Context, file string, partition int, keys []lake.Key) ([][]lake.Record, error) {
	time.Sleep(s.delay)
	return s.NodeTransport.LookupBatch(ctx, file, partition, keys)
}

// TestHedgingFiresAndWins: with a fixed hedge delay far below the server's
// injected latency, every lookup hedges; responses still arrive exactly
// once per logical call and duplicates are suppressed, not surfaced.
func TestHedgingFiresAndWins(t *testing.T) {
	cluster := dfs.NewCluster(dfs.Config{Nodes: 1})
	if _, err := cluster.CreateFile("f", dfs.Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f, err := cluster.File("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(ctx, 0, lake.Record{Key: "k", Data: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(slowTransport{dfs.Local(cluster), 5 * time.Millisecond}, discard)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stats := NewStats()
	c := Dial(addr.String(), Options{HedgeAfter: 500 * time.Microsecond}, stats)
	for i := 0; i < 8; i++ {
		recs, err := c.Lookup(ctx, "f", 0, "k")
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if len(recs) != 1 || string(recs[0].Data) != "v" {
			t.Fatalf("lookup %d: wrong answer %+v", i, recs)
		}
	}
	if stats.HedgeFires() == 0 {
		t.Fatal("no hedged attempt fired despite 5ms server latency and 0.5ms hedge delay")
	}
	// Both attempts of a hedged pair eventually answer: each completed
	// hedge contributes a winner and a suppressed duplicate.
	if stats.HedgeWins()+stats.HedgeDups() == 0 {
		t.Fatal("hedges fired but neither wins nor suppressed duplicates were recorded")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if open := stats.OpenConns(); open != 0 {
		t.Fatalf("%d connections leaked after Close", open)
	}
}

// TestHedgingDisabledForAppends: mutations must never hedge, whatever the
// latency.
func TestHedgingDisabledForAppends(t *testing.T) {
	addr, _, _ := startNode(t)
	stats := NewStats()
	c := Dial(addr, Options{HedgeAfter: time.Nanosecond}, stats)
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, "f", dfs.Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rec := lake.Record{Key: fmt.Sprintf("k%d", i), Data: []byte("v")}
		if err := c.Append(ctx, "f", 0, []lake.Record{rec}); err != nil {
			t.Fatal(err)
		}
	}
	if fires := stats.HedgeFires(); fires != 0 {
		t.Fatalf("appends hedged %d times", fires)
	}
	n, _, err := c.Stat(ctx, "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("got %d records after 20 appends, want exactly 20 (no duplicated mutations)", n)
	}
}

// TestCloseDrainsPool: Close must wait out in-flight requests and bring the
// open-connection gauge to zero — the oracle's leak assertion depends on it.
func TestCloseDrainsPool(t *testing.T) {
	cluster := dfs.NewCluster(dfs.Config{Nodes: 1})
	if _, err := cluster.CreateFile("f", dfs.Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(slowTransport{dfs.Local(cluster), 2 * time.Millisecond}, discard)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stats := NewStats()
	c := Dial(addr.String(), Options{MaxConns: 3}, stats)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Lookup(context.Background(), "f", 0, "k") //nolint:errcheck
		}()
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if open := stats.OpenConns(); open != 0 {
		t.Fatalf("%d connections leaked after Close", open)
	}
	if inflight := stats.InFlight(); inflight != 0 {
		t.Fatalf("pool occupancy %d after Close, want 0", inflight)
	}
	// Requests after Close fail cleanly rather than re-opening conns.
	if _, err := c.Lookup(context.Background(), "f", 0, "k"); err == nil {
		t.Fatal("lookup succeeded on closed client")
	}
	if open := stats.OpenConns(); open != 0 {
		t.Fatalf("closed client re-opened %d connections", open)
	}
}

// TestDeadlineRespected: a context deadline shorter than the server's
// latency must bound the call.
func TestDeadlineRespected(t *testing.T) {
	cluster := dfs.NewCluster(dfs.Config{Nodes: 1})
	if _, err := cluster.CreateFile("f", dfs.Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(slowTransport{dfs.Local(cluster), 500 * time.Millisecond}, discard)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := Dial(addr.String(), Options{HedgeAfter: -1}, nil)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = c.Lookup(ctx, "f", 0, "k")
	if err == nil {
		t.Fatal("lookup beat a 30ms deadline against a 500ms server")
	}
	if lake.IsPermanent(err) {
		t.Fatalf("deadline error classified permanent: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 300*time.Millisecond {
		t.Fatalf("deadline not enforced: call took %v", elapsed)
	}
}

// TestClusterOverNetwork drives a dfs cluster whose nodes are nodenet
// clients against lakenode-shaped servers — the full remote data plane in
// miniature — and checks a round trip plus metrics text.
func TestClusterOverNetwork(t *testing.T) {
	stats := NewStats()
	const nodes = 2
	var transports []dfs.NodeTransport
	for i := 0; i < nodes; i++ {
		addr, _, _ := startNode(t)
		c := Dial(addr, Options{}, stats)
		t.Cleanup(func() { c.Close() })
		transports = append(transports, c)
	}
	cluster, err := dfs.NewClusterWithTransports(dfs.Config{}, transports)
	if err != nil {
		t.Fatal(err)
	}

	f, err := cluster.CreateFile("orders", dfs.Btree, 4, lake.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		rec := lake.Record{Key: fmt.Sprintf("k%02d", i), Data: []byte{byte(i)}}
		part := f.Partitioner().Partition(rec.Key, f.NumPartitions())
		if err := f.Append(ctx, part, rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k%02d", i)
		part := f.Partitioner().Partition(key, f.NumPartitions())
		recs, err := f.Lookup(ctx, part, key)
		if err != nil {
			t.Fatalf("lookup %s: %v", key, err)
		}
		if len(recs) != 1 || recs[0].Data[0] != byte(i) {
			t.Fatalf("lookup %s: wrong answer %+v", key, recs)
		}
	}
	n, err := cluster.Len("orders")
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("cluster.Len = %d, want 40", n)
	}
	sz, err := cluster.FileSizeBytes("orders")
	if err != nil || sz <= 0 {
		t.Fatalf("FileSizeBytes = (%d, %v)", sz, err)
	}
	cluster.DropFile("orders")
	if _, err := cluster.File("orders"); err == nil {
		t.Fatal("file survived drop")
	}

	var buf bytes.Buffer
	stats.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"lakeharbor_net_conns_open",
		"lakeharbor_net_pool_inflight",
		"lakeharbor_net_rpcs_total",
		"lakeharbor_net_hedge_fires_total",
		"lakeharbor_net_rpc_latency_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, out)
		}
	}
}
