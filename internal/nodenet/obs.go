package nodenet

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"lakeharbor/internal/obs"
	"lakeharbor/internal/trace"
)

// opNames maps wire ops to the stable label values the node metrics and the
// federation layer use. Index 0 is the catch-all for undecodable ops.
var opNames = [...]string{
	0:             "unknown",
	opCreate:      "create",
	opDrop:        "drop",
	opLookupBatch: "lookup_batch",
	opLookupRange: "lookup_range",
	opScan:        "scan",
	opAppend:      "append",
	opStat:        "stat",
}

func opName(op byte) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "unknown"
}

// opObs is the per-op counter and latency set of one node.
type opObs struct {
	count    atomic.Int64
	errors   atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	lat      trace.Histogram
}

// spanRingCap bounds the recent-RPC span ring (~a few hundred KB worst
// case); older spans are overwritten.
const spanRingCap = 512

// RPCSpan is one served RPC with its wire trace attribution, as exposed by
// the sidecar's /debug/rpcs endpoint: which job/stage/tenant/attempt caused
// the work, on which file, and how long it took.
type RPCSpan struct {
	Op      string        `json:"op"`
	File    string        `json:"file"`
	Job     string        `json:"job,omitempty"`
	Tenant  string        `json:"tenant,omitempty"`
	Stage   int           `json:"stage"`
	Attempt int           `json:"attempt,omitempty"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"durNs"`
	Status  string        `json:"status,omitempty"` // empty on success
}

// ServerObs is a lakenode's own trace registry: per-op counts, error counts,
// byte volumes, and latency histograms, plus open-connection and partition
// gauges and a bounded ring of recent RPC spans with their wire trace
// context. Attach one to a Server with Server.Observe; all methods are safe
// for concurrent use and nil-receiver safe, so an unobserved server pays
// almost nothing.
type ServerObs struct {
	start time.Time

	conns      atomic.Int64 // open connections gauge
	connsTotal atomic.Int64 // connections accepted counter

	ops [len(opNames)]opObs

	mu    sync.Mutex
	parts map[string]int // file -> partition count, tracked via create/drop
	spans [spanRingCap]RPCSpan
	spanN int64 // total spans recorded (ring write cursor)
}

// NewServerObs returns an empty observability registry stamped with the
// current time as process start.
func NewServerObs() *ServerObs {
	return &ServerObs{start: time.Now(), parts: make(map[string]int)}
}

func (o *ServerObs) connOpened() {
	if o != nil {
		o.conns.Add(1)
		o.connsTotal.Add(1)
	}
}

func (o *ServerObs) connClosed() {
	if o != nil {
		o.conns.Add(-1)
	}
}

// record accounts one served request: op counters, bytes on both directions,
// latency, the partition catalog (create/drop), and the span ring.
func (o *ServerObs) record(req *request, resp *response, d time.Duration, bytesIn, bytesOut int) {
	if o == nil {
		return
	}
	op := req.Op
	if int(op) >= len(opNames) {
		op = 0
	}
	st := &o.ops[op]
	st.count.Add(1)
	st.bytesIn.Add(int64(bytesIn))
	st.bytesOut.Add(int64(bytesOut))
	if resp.Status != statusOK {
		st.errors.Add(1)
	}
	st.lat.RecordDur(d)

	span := RPCSpan{
		Op: opName(op), File: req.File,
		Job: req.Ctx.Job, Tenant: req.Ctx.Tenant, Stage: req.Ctx.Stage, Attempt: req.Ctx.Attempt,
		Start: time.Now().Add(-d), Dur: d,
	}
	if resp.Status != statusOK {
		span.Status = resp.Msg
	}
	o.mu.Lock()
	if resp.Status == statusOK {
		switch req.Op {
		case opCreate:
			o.parts[req.File] = req.Partitions
		case opDrop:
			delete(o.parts, req.File)
		}
	}
	o.spans[o.spanN%spanRingCap] = span
	o.spanN++
	o.mu.Unlock()
}

// Spans returns the retained recent RPC spans, newest last.
func (o *ServerObs) Spans() []RPCSpan {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	n := o.spanN
	if n > spanRingCap {
		n = spanRingCap
	}
	out := make([]RPCSpan, 0, n)
	startAt := o.spanN - n
	for i := startAt; i < o.spanN; i++ {
		out = append(out, o.spans[i%spanRingCap])
	}
	return out
}

// OpState is the mergeable per-op digest the federation layer scrapes: the
// raw counters plus the sparse histogram snapshot (trace.HistSnapshot
// buckets merge losslessly across nodes).
type OpState struct {
	Count    int64              `json:"count"`
	Errors   int64              `json:"errors,omitempty"`
	BytesIn  int64              `json:"bytesIn"`
	BytesOut int64              `json:"bytesOut"`
	Latency  trace.HistSnapshot `json:"latency"`
}

// NodeState is one node's full observability snapshot, served as JSON by the
// sidecar's /debug/state and scraped by the lakeserve federator. Histograms
// travel as sparse bucket snapshots, not pre-digested quantiles, so the
// federator can merge them exactly.
type NodeState struct {
	Component     string             `json:"component"`
	UptimeSeconds float64            `json:"uptimeSeconds"`
	Draining      bool               `json:"draining"`
	OpenConns     int64              `json:"openConns"`
	ConnsTotal    int64              `json:"connsTotal"`
	Served        int64              `json:"served"`
	Files         int                `json:"files"`
	Partitions    int                `json:"partitions"`
	Ops           map[string]OpState `json:"ops"`
}

// State digests the registry into the federation scrape format. srv may be
// nil (Served and Draining then stay zero).
func (o *ServerObs) State(srv *Server) NodeState {
	st := NodeState{Component: "lakenode", Ops: make(map[string]OpState)}
	if o == nil {
		return st
	}
	st.UptimeSeconds = time.Since(o.start).Seconds()
	st.OpenConns = o.conns.Load()
	st.ConnsTotal = o.connsTotal.Load()
	if srv != nil {
		st.Served = srv.Served()
		st.Draining = srv.Draining()
	}
	o.mu.Lock()
	st.Files = len(o.parts)
	for _, n := range o.parts {
		st.Partitions += n
	}
	o.mu.Unlock()
	for op := range o.ops {
		s := &o.ops[op]
		if s.count.Load() == 0 {
			continue
		}
		st.Ops[opName(byte(op))] = OpState{
			Count:    s.count.Load(),
			Errors:   s.errors.Load(),
			BytesIn:  s.bytesIn.Load(),
			BytesOut: s.bytesOut.Load(),
			Latency:  s.lat.Snapshot(),
		}
	}
	return st
}

// WriteMetrics renders the node's own lakeharbor_node_* series in Prometheus
// text format — the sidecar's /debug/metrics body (after build info).
func (o *ServerObs) WriteMetrics(w io.Writer, srv *Server) {
	if o == nil {
		return
	}
	st := o.State(srv)
	obs.Gauge(w, "lakeharbor_node_open_conns", "Live client connections to this node.", st.OpenConns)
	obs.Counter(w, "lakeharbor_node_conns_total", "Client connections accepted.", st.ConnsTotal)
	obs.Counter(w, "lakeharbor_node_requests_total", "RPC requests answered.", st.Served)
	draining := int64(0)
	if st.Draining {
		draining = 1
	}
	obs.Gauge(w, "lakeharbor_node_draining", "1 while the node drains before shutdown.", draining)
	obs.Gauge(w, "lakeharbor_node_files", "Files in the node's catalog.", int64(st.Files))
	obs.Gauge(w, "lakeharbor_node_partitions", "Partitions hosted across all files.", int64(st.Partitions))

	ops := make([]string, 0, len(st.Ops))
	for name := range st.Ops {
		ops = append(ops, name)
	}
	sortStrings(ops)
	obs.Header(w, "lakeharbor_node_rpcs_total", "counter", "RPCs served, by op.")
	for _, name := range ops {
		obs.SampleInt(w, "lakeharbor_node_rpcs_total", []string{"op", name}, st.Ops[name].Count)
	}
	obs.Header(w, "lakeharbor_node_rpc_errors_total", "counter", "RPCs answered with an error status, by op.")
	for _, name := range ops {
		obs.SampleInt(w, "lakeharbor_node_rpc_errors_total", []string{"op", name}, st.Ops[name].Errors)
	}
	obs.Header(w, "lakeharbor_node_bytes_in_total", "counter", "Request payload bytes received, by op.")
	for _, name := range ops {
		obs.SampleInt(w, "lakeharbor_node_bytes_in_total", []string{"op", name}, st.Ops[name].BytesIn)
	}
	obs.Header(w, "lakeharbor_node_bytes_out_total", "counter", "Response payload bytes sent, by op.")
	for _, name := range ops {
		obs.SampleInt(w, "lakeharbor_node_bytes_out_total", []string{"op", name}, st.Ops[name].BytesOut)
	}
	obs.Header(w, "lakeharbor_node_rpc_seconds", "summary", "Server-side RPC service time, by op.")
	for _, name := range ops {
		obs.Summary(w, "lakeharbor_node_rpc_seconds", []string{"op", name}, st.Ops[name].Latency, 1e-9, 0.5, 0.95, 0.99)
	}
}

// sortStrings is an allocation-free insertion sort for the tiny op lists.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
