package nodenet

import (
	"encoding/json"
	"net/http"
	"time"

	"lakeharbor/internal/obs"
)

// DebugHandler is the lakenode introspection sidecar: a plain HTTP handler
// (served on its own -debug listener, never on the RPC port) exposing
//
//	GET /healthz       liveness — 200 while the process runs
//	GET /readyz        readiness — 200 while serving, 503 once draining
//	GET /debug/metrics Prometheus text: build info + lakeharbor_node_* series
//	GET /debug/state   the NodeState JSON the lakeserve federator scrapes
//	GET /debug/rpcs    recent RPC spans with their wire trace attribution
func DebugHandler(srv *Server, o *ServerObs) http.Handler {
	start := time.Now()
	if o != nil {
		start = o.start
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if srv != nil && srv.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	mux.HandleFunc("GET /debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		obs.WriteBuildInfo(w, "lakenode", start)
		o.WriteMetrics(w, srv)
	})
	mux.HandleFunc("GET /debug/state", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(o.State(srv)) //nolint:errcheck
	})
	mux.HandleFunc("GET /debug/rpcs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := o.Spans()
		if spans == nil {
			spans = []RPCSpan{}
		}
		json.NewEncoder(w).Encode(spans) //nolint:errcheck
	})
	return mux
}
