package nodenet

// Wire-compatibility tests for the flagCtx trace-context extension: frames
// produced by pre-context peers must decode unchanged on the new decoder,
// frames the new encoder produces without context must be byte-identical to
// the old layout (so old servers accept them), and context-bearing frames
// must round-trip every field.

import (
	"bytes"
	"reflect"
	"testing"

	"lakeharbor/internal/lake"
)

// encodeOldFormat builds a request payload exactly the way the pre-context
// encoder did: op byte, request id, file, op-specific fields — no flag bit,
// no context block.
func encodeOldFormat(r *request) []byte {
	e := &encoder{}
	e.byte(r.Op)
	e.u64(r.ReqID)
	e.string(r.File)
	switch r.Op {
	case opCreate:
		e.uvarint(uint64(r.Kind))
		e.uvarint(uint64(r.Partitions))
		encodePartitioner(e, r.Part)
	case opDrop:
	case opLookupBatch:
		e.uvarint(uint64(r.Partition))
		e.uvarint(uint64(len(r.Keys)))
		for _, k := range r.Keys {
			e.string(k)
		}
	case opLookupRange:
		e.uvarint(uint64(r.Partition))
		e.string(r.Lo)
		e.string(r.Hi)
	case opScan, opStat:
		e.uvarint(uint64(r.Partition))
	case opAppend:
		e.uvarint(uint64(r.Partition))
		e.uvarint(uint64(len(r.Recs)))
		for _, rec := range r.Recs {
			e.string(rec.Key)
			e.bytes(rec.Data)
		}
	}
	return e.buf
}

// contextFree filters the shared sample set down to old-representable
// requests (no trace context).
func contextFree() []*request {
	var out []*request
	for _, r := range sampleRequests() {
		if r.Ctx == (TraceContext{}) {
			out = append(out, r)
		}
	}
	return out
}

// TestOldFrameDecodesOnNewServer: payloads in the pre-context layout decode
// on the new decoder into the same request, with a zero context.
func TestOldFrameDecodesOnNewServer(t *testing.T) {
	for _, req := range contextFree() {
		got, err := decodeRequest(encodeOldFormat(req))
		if err != nil {
			t.Fatalf("op %d: old-format frame rejected: %v", req.Op, err)
		}
		if got.Ctx != (TraceContext{}) {
			t.Errorf("op %d: old-format frame decoded with context %+v", req.Op, got.Ctx)
		}
		if !reflect.DeepEqual(normalizeRequest(got), normalizeRequest(req)) {
			t.Errorf("op %d: old-format decode mismatch:\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

// TestNewFrameMatchesOldFormat: without context, the new encoder's output is
// byte-identical to the old layout — which is exactly what makes an old
// server accept frames from a new client that carries no trace context.
func TestNewFrameMatchesOldFormat(t *testing.T) {
	for _, req := range contextFree() {
		oldBytes := encodeOldFormat(req)
		newBytes := req.encode()
		if !bytes.Equal(oldBytes, newBytes) {
			t.Errorf("op %d: context-free encoding diverged from old layout:\n old %x\n new %x",
				req.Op, oldBytes, newBytes)
		}
	}
}

// TestContextFrameRoundTrip: a context-bearing frame sets the flag bit and
// round-trips all four context fields.
func TestContextFrameRoundTrip(t *testing.T) {
	req := &request{
		Op: opLookupBatch, ReqID: 77, File: "orders", Partition: 3,
		Keys: []lake.Key{"a", "b"},
		Ctx:  TraceContext{Job: "q7", Tenant: "etl", Stage: 4, Attempt: 2},
	}
	payload := req.encode()
	if payload[0]&flagCtx == 0 {
		t.Fatal("context-bearing frame did not set flagCtx")
	}
	got, err := decodeRequest(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Ctx != req.Ctx {
		t.Fatalf("context mismatch: got %+v, want %+v", got.Ctx, req.Ctx)
	}
	if got.Op != opLookupBatch {
		t.Fatalf("flag bit leaked into op: %d", got.Op)
	}
	// The context block is strictly additive, inserted between the request
	// id and the file: prefix (minus flag bit) and suffix must match the
	// old layout byte for byte.
	old := encodeOldFormat(req)
	if payload[0]&^flagCtx != old[0] || !bytes.Equal(payload[1:9], old[1:9]) {
		t.Error("op/id prefix changed by the context block")
	}
	tail := len(old) - 9 // file + op-specific fields
	if !bytes.Equal(payload[len(payload)-tail:], old[9:]) {
		t.Error("context block is not a pure insertion between id and file")
	}
}

// TestFlaggedFrameRejectedByOldServer simulates the old decoder — which read
// the op byte raw, with no flag masking — against a flagged frame: it must
// fail (unknown op or desync), never silently misparse into a valid request.
func TestFlaggedFrameRejectedByOldServer(t *testing.T) {
	req := &request{
		Op: opScan, ReqID: 5, File: "base", Partition: 0,
		Ctx: TraceContext{Job: "j", Stage: 1},
	}
	payload := req.encode()

	// Old decoder behavior: raw op byte, then id, then file. The raw op
	// opScan|flagCtx matches no case, so the old switch would fail exactly
	// like the new decoder does on a genuinely unknown op.
	d := &decoder{buf: payload}
	rawOp := d.byte()
	if rawOp == opScan {
		t.Fatal("flagged frame carries a clean op byte; old servers would misroute it")
	}
	known := false
	for _, op := range []byte{opCreate, opDrop, opLookupBatch, opLookupRange, opScan, opAppend, opStat} {
		if rawOp == op {
			known = true
		}
	}
	if known {
		t.Fatalf("flagged op byte %d collides with a real op", rawOp)
	}
}

// TestContextBoundsRejected: absurd stage/attempt ordinals are a decode
// error, not a silent huge int.
func TestContextBoundsRejected(t *testing.T) {
	e := &encoder{}
	e.byte(opDrop | flagCtx)
	e.u64(1)
	e.string("job")
	e.uvarint(uint64(maxSaneCount) + 1) // stage out of bounds
	e.string("tenant")
	e.uvarint(0)
	e.string("file")
	if _, err := decodeRequest(e.buf); err == nil {
		t.Fatal("absurd trace stage accepted")
	}
}
