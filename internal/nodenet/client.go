package nodenet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
	"lakeharbor/internal/trace"
)

// Options tunes one per-node client.
type Options struct {
	// MaxConns bounds concurrent connections (and therefore concurrent
	// RPCs) to the node. Default 4.
	MaxConns int
	// DialTimeout bounds one TCP dial attempt. Default 1s.
	DialTimeout time.Duration
	// RequestTimeout is the per-request deadline (dial retries, write, and
	// response read all fit inside it); a sooner context deadline wins.
	// Default 10s.
	RequestTimeout time.Duration
	// HedgeAfter fixes the hedge delay: an idempotent request still
	// unanswered after this long launches a second attempt on another
	// connection, first response wins. Zero derives the delay from the
	// observed p95 RPC latency instead (see hedgeDelay). Negative disables
	// hedging.
	HedgeAfter time.Duration
	// HedgeMin floors the derived hedge delay so a string of microsecond
	// RPCs cannot make the client hedge everything. Default 1ms.
	HedgeMin time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxConns <= 0 {
		o.MaxConns = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = time.Millisecond
	}
	return o
}

// hedgeWarmup is how many RPCs must complete before a derived hedge delay
// is trusted; below it hedging stays off (unless HedgeAfter pins a delay).
const hedgeWarmup = 32

// hedgeRefresh is how often (in completed RPCs) the derived delay is
// recomputed from the latency histogram.
const hedgeRefresh = 64

// Client is the networked dfs.NodeTransport: it speaks the frame protocol
// to one lakenode server through a bounded connection pool, applies
// per-request deadlines, retries dials with backoff inside the deadline,
// and hedges slow idempotent requests.
type Client struct {
	addr  string
	opts  Options
	stats *Stats

	sem      chan struct{} // MaxConns slots; holding a slot = may hold a conn
	closedCh chan struct{} // closed by Close so waiters fail fast
	reqID    atomic.Uint64

	mu     sync.Mutex
	idle   []net.Conn
	closed bool

	lat        trace.Histogram // per-client latency feed for the hedge delay
	hedgeNs    atomic.Int64    // current derived hedge delay, 0 = not ready
	latSamples atomic.Int64
}

var _ dfs.NodeTransport = (*Client)(nil)

// Dial returns a client for the node at addr. No connection is opened until
// the first request; stats may be nil (or shared across clients).
func Dial(addr string, opts Options, stats *Stats) *Client {
	opts = opts.withDefaults()
	return &Client{
		addr:     addr,
		opts:     opts,
		stats:    stats,
		sem:      make(chan struct{}, opts.MaxConns),
		closedCh: make(chan struct{}),
	}
}

// Addr returns the server address the client targets.
func (c *Client) Addr() string { return c.addr }

// Close drains the pool and closes every idle connection. It blocks until
// in-flight requests (including losing hedge attempts) release their slots,
// so after Close returns the client holds zero connections.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.closedCh)
	// Acquiring every slot waits out in-flight attempts; new requests fail
	// fast on closedCh instead of queueing behind the drained pool.
	for i := 0; i < cap(c.sem); i++ {
		c.sem <- struct{}{}
	}
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
		c.stats.connClosed()
	}
	return nil
}

// --- dfs.NodeTransport ---

func (c *Client) CreateFile(ctx context.Context, name string, kind dfs.Kind, partitions int, p lake.Partitioner) error {
	req := &request{Op: opCreate, File: name, Kind: int(kind), Partitions: partitions, Part: p}
	_, err := c.call(ctx, req)
	return err
}

func (c *Client) DropFile(ctx context.Context, name string) error {
	_, err := c.call(ctx, &request{Op: opDrop, File: name})
	return err
}

// Lookup is a one-key LookupBatch on the wire.
func (c *Client) Lookup(ctx context.Context, file string, partition int, key lake.Key) ([]lake.Record, error) {
	out, err := c.LookupBatch(ctx, file, partition, []lake.Key{key})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

func (c *Client) LookupBatch(ctx context.Context, file string, partition int, keys []lake.Key) ([][]lake.Record, error) {
	req := &request{Op: opLookupBatch, File: file, Partition: partition, Keys: keys}
	resp, err := c.call(ctx, req)
	if err != nil {
		return nil, err
	}
	if len(resp.Groups) != len(keys) {
		return nil, lake.AsPermanent(fmt.Errorf("nodenet: batch answer has %d groups for %d keys", len(resp.Groups), len(keys)))
	}
	return resp.Groups, nil
}

func (c *Client) LookupRange(ctx context.Context, file string, partition int, lo, hi lake.Key) ([]lake.Record, error) {
	req := &request{Op: opLookupRange, File: file, Partition: partition, Lo: lo, Hi: hi}
	resp, err := c.call(ctx, req)
	if err != nil {
		return nil, err
	}
	return resp.Recs, nil
}

func (c *Client) Scan(ctx context.Context, file string, partition int, fn func(lake.Record) error) error {
	resp, err := c.call(ctx, &request{Op: opScan, File: file, Partition: partition})
	if err != nil {
		return err
	}
	for _, r := range resp.Recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) Append(ctx context.Context, file string, partition int, recs []lake.Record) error {
	req := &request{Op: opAppend, File: file, Partition: partition, Recs: recs}
	_, err := c.call(ctx, req)
	return err
}

func (c *Client) Stat(ctx context.Context, file string, partition int) (int, int64, error) {
	resp, err := c.call(ctx, &request{Op: opStat, File: file, Partition: partition})
	if err != nil {
		return 0, 0, err
	}
	return resp.Records, resp.Bytes, nil
}

// --- request execution ---

// idempotent ops may be hedged: running them twice server-side changes
// nothing. Appends and catalog mutations never hedge.
func idempotent(op byte) bool {
	switch op {
	case opLookupBatch, opLookupRange, opScan, opStat:
		return true
	}
	return false
}

// call runs one logical request, hedging idempotent ops that outlive the
// hedge delay: a second attempt starts on another pooled connection and the
// first response wins; the loser's response is counted as a suppressed
// duplicate and its connection returns to the pool untainted.
func (c *Client) call(ctx context.Context, req *request) (*response, error) {
	// Forward the executor's RPC trace identity on the wire (flagCtx frame)
	// so the node attributes its spans to the originating job. Untraced
	// callers leave Ctx zero and the frame stays old-format byte-identical.
	if rc := trace.RPCFrom(ctx); rc.Job != "" {
		req.Ctx = TraceContext{Job: rc.Job, Tenant: rc.Tenant, Stage: max(rc.Stage, 0), Attempt: max(rc.Attempt, 0)}
	}
	delay := c.hedgeDelay()
	if !idempotent(req.Op) || delay <= 0 {
		resp, err, _ := c.attempt(ctx, req)
		return resp, err
	}

	type outcome struct {
		resp *response
		err  error
	}
	results := make(chan outcome, 2)
	var won atomic.Bool
	launch := func(hedged bool) {
		// Each attempt re-encodes with a fresh request id so a stale
		// response on a desynced conn can never satisfy the other attempt.
		resp, err, served := c.attempt(ctx, req)
		if served && err == nil {
			if !won.CompareAndSwap(false, true) {
				c.stats.hedgeDup() // the losing attempt's answer, suppressed
			} else if hedged {
				c.stats.hedgeWon()
			}
		}
		results <- outcome{resp, err}
	}

	go launch(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched, failures := 1, 0
	var firstErr error
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				c.stats.hedgeFired()
				go launch(true)
				launched = 2
			}
		case out := <-results:
			if out.err == nil {
				return out.resp, nil
			}
			failures++
			if firstErr == nil {
				firstErr = out.err
			}
			// Every launched attempt failed (a primary failing before the
			// hedge timer is not hedged: its error was not slowness).
			if failures == launched {
				return nil, firstErr
			}
		}
	}
}

// hedgeDelay returns the current hedge delay: the fixed override if set,
// otherwise the p95 of observed RPC latency (recomputed every hedgeRefresh
// completions, floored at HedgeMin), or 0 while hedging is not ready.
func (c *Client) hedgeDelay() time.Duration {
	if c.opts.HedgeAfter != 0 {
		if c.opts.HedgeAfter < 0 {
			return 0
		}
		return c.opts.HedgeAfter
	}
	return time.Duration(c.hedgeNs.Load())
}

// observeLatency feeds the per-client histogram and refreshes the derived
// hedge delay.
func (c *Client) observeLatency(d time.Duration) {
	c.lat.RecordDur(d)
	n := c.latSamples.Add(1)
	if n < hedgeWarmup || n%hedgeRefresh != 0 {
		return
	}
	p95 := c.lat.Snapshot().Quantile(0.95)
	if floor := int64(c.opts.HedgeMin); p95 < floor {
		p95 = floor
	}
	c.hedgeNs.Store(p95)
}

// attempt performs one RPC on one pooled connection. served reports whether
// a response frame actually came back (used for hedge win/dup accounting —
// an attempt that lost the dial race did no server work).
func (c *Client) attempt(ctx context.Context, req *request) (_ *response, _ error, served bool) {
	// A slot bounds both connections and concurrent RPCs.
	select {
	case c.sem <- struct{}{}:
	case <-c.closedCh:
		return nil, errors.New("nodenet: client closed"), false
	case <-ctx.Done():
		return nil, ctx.Err(), false
	}
	c.stats.slot(1)
	defer func() {
		c.stats.slot(-1)
		<-c.sem
	}()

	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, errors.New("nodenet: client closed"), false
	}

	deadline := time.Now().Add(c.opts.RequestTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn, err := c.conn(ctx, deadline)
	if err != nil {
		return nil, err, false // dial failures are transient
	}
	healthy := false
	defer func() {
		if healthy {
			c.putIdle(conn)
		} else {
			conn.Close()
			c.stats.connClosed()
		}
	}()

	conn.SetDeadline(deadline) //nolint:errcheck
	// A context cancelled mid-I/O yanks the deadline to now so the blocked
	// read returns; the conn is then discarded as unhealthy.
	stop := make(chan struct{})
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				conn.SetDeadline(time.Now()) //nolint:errcheck
			case <-stop:
			}
		}()
	}
	defer close(stop)

	// Encode from a shallow copy: hedged attempts share *req concurrently,
	// so the per-attempt id must not be written through the shared pointer.
	id := c.reqID.Add(1)
	attempt := *req
	attempt.ReqID = id
	payload := attempt.encode()
	t0 := time.Now()
	if err := writeFrame(conn, payload); err != nil {
		c.stats.rpcDone(0, true)
		return nil, transportErr(ctx, "write", err), false
	}
	raw, err := readFrame(conn)
	if err != nil {
		c.stats.rpcDone(0, true)
		if errors.Is(err, errFrameTooBig) {
			// The peer is not speaking our protocol; retrying cannot help.
			return nil, lake.AsPermanent(fmt.Errorf("nodenet: %s: %w", c.addr, err)), false
		}
		return nil, transportErr(ctx, "read", err), false
	}
	resp, err := decodeResponse(raw, req.Op)
	if err != nil {
		c.stats.rpcDone(0, true)
		return nil, lake.AsPermanent(fmt.Errorf("nodenet: %s: malformed response: %w", c.addr, err)), true
	}
	if resp.ReqID != id && !(resp.Status == statusPermanent && resp.ReqID == 0) {
		// id 0 is the server's "could not decode your request" answer; any
		// other mismatch means the stream desynchronised.
		c.stats.rpcDone(0, true)
		return nil, lake.AsPermanent(fmt.Errorf("nodenet: %s: response id %d for request %d", c.addr, resp.ReqID, id)), true
	}
	elapsed := time.Since(t0)
	statusErr := statusToError(resp)
	c.stats.rpcDone(int64(elapsed), statusErr != nil)
	if statusErr == nil {
		c.observeLatency(elapsed)
	}
	healthy = true // protocol stayed in sync; conn is reusable either way
	return resp, statusErr, true
}

// transportErr wraps a connection-level failure, preferring the context's
// own error when the deadline watcher caused it. The result is transient.
func transportErr(ctx context.Context, stage string, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("nodenet: %s: %w", stage, err)
}

// statusToError converts an error status into the Go error class the retry
// machinery expects on this side of the wire.
func statusToError(resp *response) error {
	switch resp.Status {
	case statusOK:
		return nil
	case statusNoFile:
		return fmt.Errorf("%w (remote: %s)", lake.ErrNoSuchFile, resp.Msg)
	case statusNoPartition:
		return fmt.Errorf("%w (remote: %s)", lake.ErrNoSuchPartition, resp.Msg)
	case statusPermanent:
		return lake.AsPermanent(fmt.Errorf("nodenet: remote: %s", resp.Msg))
	default: // statusTransient
		return fmt.Errorf("nodenet: remote: %s", resp.Msg)
	}
}

// conn returns an idle pooled connection or dials a new one, retrying
// refused/unreachable dials with exponential backoff until the deadline.
// The caller already holds a pool slot.
func (c *Client) conn(ctx context.Context, deadline time.Time) (net.Conn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()

	backoff := 2 * time.Millisecond
	for {
		d := c.opts.DialTimeout
		if remain := time.Until(deadline); remain < d {
			d = remain
		}
		if d <= 0 {
			return nil, fmt.Errorf("nodenet: dial %s: deadline exhausted", c.addr)
		}
		conn, err := net.DialTimeout("tcp", c.addr, d)
		if err == nil {
			c.stats.dialed()
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("nodenet: dial %s: %w", c.addr, err)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
	}
}

// putIdle returns a healthy connection to the pool (or closes it if the
// client shut down meanwhile).
func (c *Client) putIdle(conn net.Conn) {
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		c.stats.connClosed()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}
