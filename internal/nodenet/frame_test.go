package nodenet

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"lakeharbor/internal/lake"
)

func sampleRequests() []*request {
	return []*request{
		{Op: opCreate, ReqID: 1, File: "base", Kind: 1, Partitions: 4, Part: lake.HashPartitioner{}},
		{Op: opCreate, ReqID: 2, File: "dim", Kind: 0, Partitions: 2,
			Part: lake.RangePartitioner{Bounds: []lake.Key{"b", "m", "x"}}},
		{Op: opDrop, ReqID: 3, File: "base"},
		{Op: opLookupBatch, ReqID: 4, File: "base", Partition: 2,
			Keys: []lake.Key{"k1", "", "k3"}},
		{Op: opLookupRange, ReqID: 5, File: "idx", Partition: 0, Lo: "a", Hi: "zz"},
		{Op: opScan, ReqID: 6, File: "base", Partition: 1},
		{Op: opAppend, ReqID: 7, File: "base", Partition: 3, Recs: []lake.Record{
			{Key: "k", Data: []byte("v")},
			{Key: "", Data: nil},
		}},
		{Op: opStat, ReqID: 8, File: "base", Partition: 0},
		// Trace-context-bearing frames (flagCtx layout).
		{Op: opLookupBatch, ReqID: 9, File: "base", Partition: 1, Keys: []lake.Key{"k"},
			Ctx: TraceContext{Job: "join-q7", Tenant: "etl", Stage: 2, Attempt: 1}},
		{Op: opScan, ReqID: 10, File: "base", Partition: 0,
			Ctx: TraceContext{Job: "scan-all", Stage: 0}},
		{Op: opAppend, ReqID: 11, File: "base", Partition: 2,
			Recs: []lake.Record{{Key: "k", Data: []byte("v")}},
			Ctx:  TraceContext{Job: "ingest", Tenant: "adhoc", Stage: 3, Attempt: 2}},
	}
}

func sampleResponses() []struct {
	op   byte
	resp *response
} {
	return []struct {
		op   byte
		resp *response
	}{
		{opCreate, &response{Status: statusOK, ReqID: 1}},
		{opDrop, &response{Status: statusOK, ReqID: 2}},
		{opLookupBatch, &response{Status: statusOK, ReqID: 3, Groups: [][]lake.Record{
			{{Key: "a", Data: []byte("1")}, {Key: "a", Data: []byte("2")}},
			nil,
			{{Key: "c", Data: nil}},
		}}},
		{opLookupRange, &response{Status: statusOK, ReqID: 4, Recs: []lake.Record{
			{Key: "a", Data: []byte("x")},
		}}},
		{opScan, &response{Status: statusOK, ReqID: 5}},
		{opAppend, &response{Status: statusOK, ReqID: 6}},
		{opStat, &response{Status: statusOK, ReqID: 7, Records: 12, Bytes: 4096}},
		{opLookupBatch, &response{Status: statusTransient, ReqID: 8, Msg: "gate jammed"}},
		{opScan, &response{Status: statusPermanent, ReqID: 9, Msg: "bad frame"}},
		{opLookupBatch, &response{Status: statusNoFile, ReqID: 10, Msg: `no such file "x"`}},
		{opStat, &response{Status: statusNoPartition, ReqID: 11, Msg: "base/9"}},
	}
}

// normalizeRecords maps empty slices to nil so decoded forms compare equal
// to their sources (the codec does not distinguish nil from empty).
func normalizeRecords(recs []lake.Record) []lake.Record {
	if len(recs) == 0 {
		return nil
	}
	for i := range recs {
		if len(recs[i].Data) == 0 {
			recs[i].Data = nil
		}
	}
	return recs
}

func normalizeRequest(r *request) *request {
	cp := *r
	if len(cp.Keys) == 0 {
		cp.Keys = nil
	}
	cp.Recs = normalizeRecords(cp.Recs)
	return &cp
}

func normalizeResponse(r *response) *response {
	cp := *r
	if len(cp.Groups) == 0 {
		cp.Groups = nil
	}
	for i := range cp.Groups {
		cp.Groups[i] = normalizeRecords(cp.Groups[i])
	}
	cp.Recs = normalizeRecords(cp.Recs)
	return &cp
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		got, err := decodeRequest(req.encode())
		if err != nil {
			t.Fatalf("op %d: decode: %v", req.Op, err)
		}
		want := normalizeRequest(req)
		if !reflect.DeepEqual(normalizeRequest(got), want) {
			t.Errorf("op %d: round trip mismatch:\n got %+v\nwant %+v", req.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, tc := range sampleResponses() {
		got, err := decodeResponse(tc.resp.encode(tc.op), tc.op)
		if err != nil {
			t.Fatalf("op %d status %d: decode: %v", tc.op, tc.resp.Status, err)
		}
		want := normalizeResponse(tc.resp)
		if !reflect.DeepEqual(normalizeResponse(got), want) {
			t.Errorf("op %d: round trip mismatch:\n got %+v\nwant %+v", tc.op, got, want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(p), err)
		}
	}
	for _, p := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame mismatch: got %d bytes, want %d", len(got), len(p))
		}
	}
}

// TestFrameShortRead covers torn writes: every strict prefix of a valid
// frame stream must fail with an I/O error (unexpected EOF), never decode.
func TestFrameShortRead(t *testing.T) {
	var buf bytes.Buffer
	req := &request{Op: opLookupBatch, ReqID: 42, File: "base", Partition: 1, Keys: []lake.Key{"k"}}
	if err := writeFrame(&buf, req.encode()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := readFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut=%d: torn frame decoded successfully", cut)
		}
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Fatalf("cut=%d: want EOF-class error, got %v", cut, err)
		}
	}
}

// TestFrameOversize: a length prefix above MaxFrame must return
// errFrameTooBig without attempting the allocation.
func TestFrameOversize(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	_, err := readFrame(bytes.NewReader(hdr))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("exceeds MaxFrame")) {
		t.Fatalf("want frame-too-big error, got %v", err)
	}
}

// TestDecodeTruncatedPayloads: every strict prefix of a valid payload must
// fail to decode (truncation is detected), and decoding must never panic.
func TestDecodeTruncatedPayloads(t *testing.T) {
	for _, req := range sampleRequests() {
		payload := req.encode()
		for cut := 0; cut < len(payload); cut++ {
			if r, err := decodeRequest(payload[:cut]); err == nil {
				t.Fatalf("op %d cut=%d: truncated request decoded: %+v", req.Op, cut, r)
			}
		}
	}
	for _, tc := range sampleResponses() {
		payload := tc.resp.encode(tc.op)
		for cut := 0; cut < len(payload); cut++ {
			if r, err := decodeResponse(payload[:cut], tc.op); err == nil {
				t.Fatalf("op %d cut=%d: truncated response decoded: %+v", tc.op, cut, r)
			}
		}
	}
}

// TestDecodeTrailingGarbage: extra bytes after a valid payload are a
// protocol error, not silently ignored.
func TestDecodeTrailingGarbage(t *testing.T) {
	payload := (&request{Op: opDrop, ReqID: 1, File: "f"}).encode()
	if _, err := decodeRequest(append(payload, 0xee)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// FuzzNodeFrame throws arbitrary payloads at both decoders; any input that
// decodes must re-encode and decode back to the same value (round-trip
// stability), and no input may panic or over-allocate.
func FuzzNodeFrame(f *testing.F) {
	for _, req := range sampleRequests() {
		f.Add(req.encode(), true)
	}
	for _, tc := range sampleResponses() {
		f.Add(tc.resp.encode(tc.op), false)
	}
	f.Add([]byte{}, true)
	f.Add([]byte{opLookupBatch}, true)
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0, 0}, false)
	f.Fuzz(func(t *testing.T, payload []byte, asRequest bool) {
		if asRequest {
			req, err := decodeRequest(payload)
			if err != nil {
				return
			}
			again, err := decodeRequest(req.encode())
			if err != nil {
				t.Fatalf("re-decode of valid request failed: %v", err)
			}
			if !reflect.DeepEqual(normalizeRequest(again), normalizeRequest(req)) {
				t.Fatalf("request round-trip unstable:\nfirst  %+v\nsecond %+v", req, again)
			}
			return
		}
		// Responses need an op to decode; try each and require stability
		// for whichever ops accept the payload.
		for _, op := range []byte{opCreate, opDrop, opLookupBatch, opLookupRange, opScan, opAppend, opStat} {
			resp, err := decodeResponse(payload, op)
			if err != nil {
				continue
			}
			again, err := decodeResponse(resp.encode(op), op)
			if err != nil {
				t.Fatalf("op %d: re-decode of valid response failed: %v", op, err)
			}
			if !reflect.DeepEqual(normalizeResponse(again), normalizeResponse(resp)) {
				t.Fatalf("op %d: response round-trip unstable:\nfirst  %+v\nsecond %+v", op, resp, again)
			}
		}
	})
}
