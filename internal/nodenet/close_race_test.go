package nodenet

// Regression tests for the Close-during-hedge race window (the pool-drain
// leak check extended to hedged pairs) and for graceful server drain.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// TestCloseRacesHedgedRequests: Close while hedged pairs are mid-flight.
// Both attempts of a pair hold pool slots; whichever loses must still return
// its connection (or close it) so the gauges land on zero — under -race this
// also shakes out unsynchronized slot accounting in the race window.
func TestCloseRacesHedgedRequests(t *testing.T) {
	cluster := dfs.NewCluster(dfs.Config{Nodes: 1})
	if _, err := cluster.CreateFile("f", dfs.Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f, err := cluster.File("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(ctx, 0, lake.Record{Key: "k", Data: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(slowTransport{dfs.Local(cluster), 2 * time.Millisecond}, discard)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for iter := 0; iter < 8; iter++ {
		stats := NewStats()
		c := Dial(addr.String(), Options{MaxConns: 4, HedgeAfter: 100 * time.Microsecond}, stats)
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.Lookup(ctx, "f", 0, "k") //nolint:errcheck
			}()
		}
		// Close lands mid-flight: some pairs have a winner chosen and a
		// loser still on the wire, some are still racing for slots.
		time.Sleep(time.Duration(iter) * 500 * time.Microsecond)
		if err := c.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		wg.Wait()
		if open := stats.OpenConns(); open != 0 {
			t.Fatalf("iter %d: %d connections leaked after Close raced hedges", iter, open)
		}
		if inflight := stats.InFlight(); inflight != 0 {
			t.Fatalf("iter %d: pool occupancy %d after Close, want 0", iter, inflight)
		}
	}
}

// TestServerDrainFinishesInFlight: Drain must answer the request already
// executing, flip Draining (and the sidecar's /readyz) before it finishes,
// and leave the listener closed.
func TestServerDrainFinishesInFlight(t *testing.T) {
	cluster := dfs.NewCluster(dfs.Config{Nodes: 1})
	if _, err := cluster.CreateFile("f", dfs.Heap, 1, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f, err := cluster.File("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(ctx, 0, lake.Record{Key: "k", Data: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(slowTransport{dfs.Local(cluster), 20 * time.Millisecond}, discard)
	obs := NewServerObs()
	srv.Observe(obs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dbg := httptest.NewServer(DebugHandler(srv, obs))
	defer dbg.Close()

	c := Dial(addr.String(), Options{}, nil)
	defer c.Close()

	type result struct {
		recs []lake.Record
		err  error
	}
	done := make(chan result, 1)
	go func() {
		recs, err := c.Lookup(ctx, "f", 0, "k")
		done <- result{recs, err}
	}()
	// Wait until the request is actually executing server-side.
	deadline := time.Now().Add(time.Second)
	for obs.State(srv).Ops["lookup_batch"].Count == 0 && obs.conns.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the server")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan struct{})
	go func() {
		srv.Drain(time.Second) //nolint:errcheck
		close(drained)
	}()
	// Draining flips promptly, before the in-flight RPC completes.
	for !srv.Draining() {
		time.Sleep(100 * time.Microsecond)
	}
	if resp, err := http.Get(dbg.URL + "/readyz"); err != nil {
		t.Fatalf("readyz during drain: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz during drain: status %d, want 503", resp.StatusCode)
		}
	}
	if resp, err := http.Get(dbg.URL + "/healthz"); err != nil {
		t.Fatalf("healthz during drain: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz during drain: status %d, want 200 (liveness is not readiness)", resp.StatusCode)
		}
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight lookup failed during drain: %v", r.err)
	}
	if len(r.recs) != 1 || string(r.recs[0].Data) != "v" {
		t.Fatalf("in-flight lookup answered wrong: %+v", r.recs)
	}
	<-drained

	// New connections are refused after drain.
	c2 := Dial(addr.String(), Options{DialTimeout: 200 * time.Millisecond}, nil)
	defer c2.Close()
	if _, err := c2.Lookup(ctx, "f", 0, "k"); err == nil {
		t.Fatal("lookup succeeded against a drained server")
	}
}

// TestDebugMetricsEndpoint: the sidecar's /debug/metrics carries build info
// and per-op node series after traffic.
func TestDebugMetricsEndpoint(t *testing.T) {
	addr, _, srv := startNode(t)
	obs := NewServerObs()
	srv.Observe(obs)
	dbg := httptest.NewServer(DebugHandler(srv, obs))
	defer dbg.Close()

	c := Dial(addr, Options{}, nil)
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, "f", dfs.Heap, 2, lake.HashPartitioner{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(ctx, "f", 0, []lake.Record{{Key: "k", Data: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(ctx, "f", 0, "k"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(dbg.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		`lakeharbor_build_info{component="lakenode"`,
		"lakeharbor_node_open_conns",
		`lakeharbor_node_rpcs_total{op="lookup_batch"}`,
		`lakeharbor_node_rpc_seconds{op="append",quantile="0.99"}`,
		"lakeharbor_node_partitions 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/metrics missing %q", want)
		}
	}

	st := obs.State(srv)
	if st.Ops["lookup_batch"].Count == 0 || st.Partitions != 2 {
		t.Fatalf("node state incomplete: %+v", st)
	}
	spans := obs.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	for _, s := range spans {
		if s.Op == "" || s.File == "" {
			t.Fatalf("span missing op/file: %+v", s)
		}
	}
}
