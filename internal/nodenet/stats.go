package nodenet

import (
	"io"
	"sync/atomic"

	"lakeharbor/internal/obs"
	"lakeharbor/internal/trace"
)

// Stats aggregates client-side transport counters and latency distributions.
// One Stats is normally shared by every per-node Client of a cluster so
// /debug/metrics shows the whole data plane; all methods are safe for
// concurrent use.
type Stats struct {
	dials       atomic.Int64 // TCP connections opened
	connsClosed atomic.Int64 // TCP connections closed (discard, idle drain)
	inFlight    atomic.Int64 // pool slots currently held (occupancy gauge)

	rpcs      atomic.Int64 // completed RPC attempts (any status)
	rpcErrors atomic.Int64 // attempts that returned an error

	hedgeFires atomic.Int64 // hedge timers that launched a second attempt
	hedgeWins  atomic.Int64 // hedged (second) attempts that answered first
	hedgeDups  atomic.Int64 // duplicate responses suppressed after a winner

	lat trace.Histogram // RPC round-trip latency, nanoseconds
}

// NewStats returns an empty Stats.
func NewStats() *Stats { return &Stats{} }

// OpenConns is the live-connection gauge: dials minus closes. A drained
// client pool must bring it to zero — the oracle's leak assertion.
func (s *Stats) OpenConns() int64 {
	if s == nil {
		return 0
	}
	return s.dials.Load() - s.connsClosed.Load()
}

// InFlight is the pool-occupancy gauge: requests currently holding a
// connection slot.
func (s *Stats) InFlight() int64 {
	if s == nil {
		return 0
	}
	return s.inFlight.Load()
}

// HedgeFires returns how many hedged second attempts were launched.
func (s *Stats) HedgeFires() int64 {
	if s == nil {
		return 0
	}
	return s.hedgeFires.Load()
}

// HedgeWins returns how many hedged attempts beat the primary.
func (s *Stats) HedgeWins() int64 {
	if s == nil {
		return 0
	}
	return s.hedgeWins.Load()
}

// HedgeDups returns how many duplicate responses were suppressed (the
// losing attempt of a hedged pair completed after a winner was chosen).
func (s *Stats) HedgeDups() int64 {
	if s == nil {
		return 0
	}
	return s.hedgeDups.Load()
}

// RPCs returns completed RPC attempts.
func (s *Stats) RPCs() int64 {
	if s == nil {
		return 0
	}
	return s.rpcs.Load()
}

// Latency returns a snapshot of the RPC round-trip latency distribution.
func (s *Stats) Latency() trace.HistSnapshot {
	if s == nil {
		return trace.HistSnapshot{}
	}
	return s.lat.Snapshot()
}

// nil-safe recording helpers (a Client may run without Stats in tests).

func (s *Stats) dialed() {
	if s != nil {
		s.dials.Add(1)
	}
}

func (s *Stats) connClosed() {
	if s != nil {
		s.connsClosed.Add(1)
	}
}

func (s *Stats) slot(delta int64) {
	if s != nil {
		s.inFlight.Add(delta)
	}
}

func (s *Stats) rpcDone(latencyNs int64, failed bool) {
	if s == nil {
		return
	}
	s.rpcs.Add(1)
	if failed {
		s.rpcErrors.Add(1)
	} else {
		s.lat.Record(latencyNs)
	}
}

func (s *Stats) hedgeFired() {
	if s != nil {
		s.hedgeFires.Add(1)
	}
}

func (s *Stats) hedgeWon() {
	if s != nil {
		s.hedgeWins.Add(1)
	}
}

func (s *Stats) hedgeDup() {
	if s != nil {
		s.hedgeDups.Add(1)
	}
}

// WriteMetrics renders the transport gauges and counters in Prometheus text
// format, matching the /debug/metrics conventions of the rest of the server.
func (s *Stats) WriteMetrics(w io.Writer) {
	if s == nil {
		return
	}
	obs.Gauge(w, "lakeharbor_net_conns_open", "live TCP connections to lakenode servers", s.OpenConns())
	obs.Gauge(w, "lakeharbor_net_pool_inflight", "requests currently holding a connection-pool slot", s.InFlight())
	obs.Counter(w, "lakeharbor_net_conns_dialed_total", "TCP connections dialed", s.dials.Load())
	obs.Counter(w, "lakeharbor_net_rpcs_total", "node RPC attempts completed", s.rpcs.Load())
	obs.Counter(w, "lakeharbor_net_rpc_errors_total", "node RPC attempts that failed", s.rpcErrors.Load())
	obs.Counter(w, "lakeharbor_net_hedge_fires_total", "hedged second attempts launched", s.hedgeFires.Load())
	obs.Counter(w, "lakeharbor_net_hedge_wins_total", "hedged attempts that answered first", s.hedgeWins.Load())
	obs.Counter(w, "lakeharbor_net_hedge_dups_total", "duplicate hedge responses suppressed", s.hedgeDups.Load())
	s.lat.Snapshot().WriteSummary(w, "lakeharbor_net_rpc_latency_seconds", "node RPC round-trip latency", 1e-9)
}
