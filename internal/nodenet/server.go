package nodenet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// Server speaks the node RPC protocol over TCP and executes decoded requests
// against a dfs.NodeTransport backend — normally dfs.Local over a
// single-node cluster (the lakenode binary), but any transport works, which
// is how tests stack a chaos wrapper under a real socket.
//
// Each connection is served by one goroutine handling requests serially;
// concurrency comes from the client opening multiple pooled connections.
// That keeps the protocol trivially ordered (no response interleaving) and
// makes a hedged request a genuinely independent server-side execution.
type Server struct {
	backend dfs.NodeTransport
	logf    func(format string, args ...any)
	obs     atomic.Pointer[ServerObs] // nil unless Observe; nil-safe recording

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	wg       sync.WaitGroup

	served atomic.Int64 // requests answered, for tests/ops
}

// NewServer wraps the backend. logf receives per-connection error lines; nil
// means log.Printf.
func NewServer(backend dfs.NodeTransport, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = log.Printf
	}
	return &Server{backend: backend, logf: logf, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts the accept loop in the
// background. The bound address is returned so callers can use port 0.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("nodenet: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// Served returns how many requests the server has answered.
func (s *Server) Served() int64 { return s.served.Load() }

// Observe attaches an observability registry; every subsequently served
// request is recorded into it. Safe to call while the server is listening —
// connections opened before the call are counted from their next request.
func (s *Server) Observe(o *ServerObs) { s.obs.Store(o) }

// Draining reports whether the server is in graceful drain (the sidecar's
// /readyz flips to 503 on it).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: it stops accepting, lets every
// in-flight request finish and write its response, then closes. Idle
// connections are poked with an immediate read deadline so their blocked
// reads return; a connection mid-execute is untouched (only reads are
// deadlined) and exits after answering. If the drain outlives grace the
// remaining connections are closed hard. Safe to call more than once.
func (s *Server) Drain(grace time.Duration) error {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.SetReadDeadline(time.Now()) //nolint:errcheck
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
	}
	return s.Close()
}

// Close stops accepting, closes every live connection, and waits for the
// per-connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	obs := s.obs.Load()
	obs.connOpened()
	defer func() {
		conn.Close()
		obs.connClosed()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				s.logf("nodenet: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		req, err := decodeRequest(payload)
		if err != nil {
			// The stream is desynchronised; answer with a permanent error
			// (req id 0 — we could not trust the decoded one) and drop the
			// connection so the client re-dials cleanly.
			s.logf("nodenet: %s: %v", conn.RemoteAddr(), err)
			resp := &response{Status: statusPermanent, Msg: err.Error()}
			writeFrame(conn, resp.encode(0)) //nolint:errcheck
			return
		}
		t0 := time.Now()
		resp := s.execute(req)
		s.served.Add(1)
		out := resp.encode(req.Op)
		s.obs.Load().record(req, resp, time.Since(t0), len(payload), len(out))
		if err := writeFrame(conn, out); err != nil {
			s.logf("nodenet: %s: write: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// isTimeout reports a deadline-induced read failure — the expected way idle
// connections exit during Drain, not worth a log line.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// execute runs one decoded request against the backend and classifies the
// outcome into a wire status.
func (s *Server) execute(req *request) *response {
	ctx := context.Background()
	resp := &response{Status: statusOK, ReqID: req.ReqID}
	var err error
	switch req.Op {
	case opCreate:
		err = s.backend.CreateFile(ctx, req.File, dfs.Kind(req.Kind), req.Partitions, req.Part)
	case opDrop:
		err = s.backend.DropFile(ctx, req.File)
	case opLookupBatch:
		resp.Groups, err = s.backend.LookupBatch(ctx, req.File, req.Partition, req.Keys)
	case opLookupRange:
		resp.Recs, err = s.backend.LookupRange(ctx, req.File, req.Partition, req.Lo, req.Hi)
	case opScan:
		err = s.backend.Scan(ctx, req.File, req.Partition, func(r lake.Record) error {
			resp.Recs = append(resp.Recs, r.Clone())
			return nil
		})
	case opAppend:
		err = s.backend.Append(ctx, req.File, req.Partition, req.Recs)
	case opStat:
		resp.Records, resp.Bytes, err = s.backend.Stat(ctx, req.File, req.Partition)
	default:
		err = lake.AsPermanent(fmt.Errorf("nodenet: unknown op %d", req.Op))
	}
	if err != nil {
		resp.Status, resp.Msg = classify(err), err.Error()
		resp.Groups, resp.Recs = nil, nil
	}
	return resp
}

// classify maps a backend error onto a wire status. The client re-creates
// the matching Go error class on its side, so lake.IsPermanent and the
// ErrNoSuchFile/ErrNoSuchPartition sentinels survive the network hop.
func classify(err error) byte {
	switch {
	case errors.Is(err, lake.ErrNoSuchFile):
		return statusNoFile
	case errors.Is(err, lake.ErrNoSuchPartition):
		return statusNoPartition
	case lake.IsPermanent(err):
		return statusPermanent
	default:
		return statusTransient
	}
}
