package nodenet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"lakeharbor/internal/dfs"
	"lakeharbor/internal/lake"
)

// Server speaks the node RPC protocol over TCP and executes decoded requests
// against a dfs.NodeTransport backend — normally dfs.Local over a
// single-node cluster (the lakenode binary), but any transport works, which
// is how tests stack a chaos wrapper under a real socket.
//
// Each connection is served by one goroutine handling requests serially;
// concurrency comes from the client opening multiple pooled connections.
// That keeps the protocol trivially ordered (no response interleaving) and
// makes a hedged request a genuinely independent server-side execution.
type Server struct {
	backend dfs.NodeTransport
	logf    func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	served atomic.Int64 // requests answered, for tests/ops
}

// NewServer wraps the backend. logf receives per-connection error lines; nil
// means log.Printf.
func NewServer(backend dfs.NodeTransport, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = log.Printf
	}
	return &Server{backend: backend, logf: logf, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts the accept loop in the
// background. The bound address is returned so callers can use port 0.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("nodenet: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// Served returns how many requests the server has answered.
func (s *Server) Served() int64 { return s.served.Load() }

// Close stops accepting, closes every live connection, and waits for the
// per-connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("nodenet: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		req, err := decodeRequest(payload)
		if err != nil {
			// The stream is desynchronised; answer with a permanent error
			// (req id 0 — we could not trust the decoded one) and drop the
			// connection so the client re-dials cleanly.
			s.logf("nodenet: %s: %v", conn.RemoteAddr(), err)
			resp := &response{Status: statusPermanent, Msg: err.Error()}
			writeFrame(conn, resp.encode(0)) //nolint:errcheck
			return
		}
		resp := s.execute(req)
		s.served.Add(1)
		if err := writeFrame(conn, resp.encode(req.Op)); err != nil {
			s.logf("nodenet: %s: write: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// execute runs one decoded request against the backend and classifies the
// outcome into a wire status.
func (s *Server) execute(req *request) *response {
	ctx := context.Background()
	resp := &response{Status: statusOK, ReqID: req.ReqID}
	var err error
	switch req.Op {
	case opCreate:
		err = s.backend.CreateFile(ctx, req.File, dfs.Kind(req.Kind), req.Partitions, req.Part)
	case opDrop:
		err = s.backend.DropFile(ctx, req.File)
	case opLookupBatch:
		resp.Groups, err = s.backend.LookupBatch(ctx, req.File, req.Partition, req.Keys)
	case opLookupRange:
		resp.Recs, err = s.backend.LookupRange(ctx, req.File, req.Partition, req.Lo, req.Hi)
	case opScan:
		err = s.backend.Scan(ctx, req.File, req.Partition, func(r lake.Record) error {
			resp.Recs = append(resp.Recs, r.Clone())
			return nil
		})
	case opAppend:
		err = s.backend.Append(ctx, req.File, req.Partition, req.Recs)
	case opStat:
		resp.Records, resp.Bytes, err = s.backend.Stat(ctx, req.File, req.Partition)
	default:
		err = lake.AsPermanent(fmt.Errorf("nodenet: unknown op %d", req.Op))
	}
	if err != nil {
		resp.Status, resp.Msg = classify(err), err.Error()
		resp.Groups, resp.Recs = nil, nil
	}
	return resp
}

// classify maps a backend error onto a wire status. The client re-creates
// the matching Go error class on its side, so lake.IsPermanent and the
// ErrNoSuchFile/ErrNoSuchPartition sentinels survive the network hop.
func classify(err error) byte {
	switch {
	case errors.Is(err, lake.ErrNoSuchFile):
		return statusNoFile
	case errors.Is(err, lake.ErrNoSuchPartition):
		return statusNoPartition
	case lake.IsPermanent(err):
		return statusPermanent
	default:
		return statusTransient
	}
}
